// The SLO-aware online controller: optimize Case IV once, compile the
// SLO-feasible frontier into a plan library, then let the controller track
// a diurnal day of traffic — switching the live serving runtime between
// cheaper and beefier plans while holding p99 TTFT — and validate the
// switching decisions in the discrete-event simulator.
package main

import (
	"fmt"
	"log"

	"rago"
)

func main() {
	schema := rago.CaseIV(8e9)
	cluster := rago.DefaultCluster()

	o, err := rago.NewOptimizer(schema, rago.DefaultOptions(cluster))
	if err != nil {
		log.Fatal(err)
	}
	front := o.Optimize()

	slo := rago.SLO{TTFT: 0.5}
	lib, err := rago.NewPlanLibrary(o, front, slo)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan library: %d SLO-feasible plans, %d-%d chips\n",
		len(lib.Entries), lib.Entries[0].Chips, lib.Entries[len(lib.Entries)-1].Chips)

	// A bursty diurnal day, compressed: base load at half the biggest
	// plan's capacity, swinging +-80% over a 10-minute cycle.
	base := 0.5 * lib.Entries[len(lib.Entries)-1].QPS
	reqs, err := rago.DiurnalTrace(20000, base, 0.8, 600, 7)
	if err != nil {
		log.Fatal(err)
	}
	span := reqs[len(reqs)-1].Arrival

	ctl, err := rago.NewController(lib, rago.ControlConfig{
		SLO:      slo,
		Window:   30,
		Interval: 10,
		Headroom: 1.3,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := ctl.Run(rago.ServeOptions{Speedup: span / 10.0}, reqs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res)

	sim, err := rago.ReplaySwitches(lib, res, reqs, 0.05, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sim replay: QPS %.2f (runtime/sim ratio %.2f)\n",
		sim.QPS, res.Report.SustainedQPS/sim.QPS)
}
