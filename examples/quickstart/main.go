// Quickstart: describe a RAG serving workload with a RAGSchema, run the
// RAGO optimizer against a cluster, and inspect the Pareto-optimal
// schedules.
package main

import (
	"fmt"
	"log"

	"rago"
)

func main() {
	log.SetFlags(0)

	// A long-context RAG workload (the paper's Case II): users upload
	// ~1M-token documents in real time; a 120M encoder embeds them, a
	// tiny per-request vector database answers retrievals, and a 70B
	// LLM generates from a 512-token retrieval-augmented prompt.
	schema := rago.CaseII(70e9, 1_000_000)
	fmt.Printf("workload: %s\n", schema.Name)

	// The serving environment: 32 host servers, each with 96 CPU cores
	// and four XPU-C accelerators (TPU v5p class) — 128 chips total.
	cluster := rago.LargeCluster()
	fmt.Printf("cluster:  %d hosts, %d XPUs\n\n", cluster.Hosts, cluster.XPUs())

	// Search task placements, resource allocations, and batching
	// policies for the Pareto frontier over TTFT / TPOT / QPS-per-chip.
	front, err := rago.Optimize(schema, rago.DefaultOptions(cluster))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Pareto frontier: %d schedules\n\n", len(front))

	pipe, err := rago.BuildPipeline(schema)
	if err != nil {
		log.Fatal(err)
	}

	// The two operating points a deployment usually cares about.
	if best, ok := rago.MaxQPSPerChip(front); ok {
		fmt.Println("throughput-optimal:")
		fmt.Printf("  %s\n  %s\n\n", best.Metrics, best.Item.Describe(pipe))
	}
	if best, ok := rago.MinTTFT(front); ok {
		fmt.Println("latency-optimal:")
		fmt.Printf("  %s\n  %s\n\n", best.Metrics, best.Item.Describe(pipe))
	}

	// Compare with a naive deployment: an LLM-only serving system with
	// the RAG components bolted onto its prefix tier (§7.1 baseline).
	base, err := rago.Baseline(schema, rago.DefaultOptions(cluster))
	if err != nil {
		log.Fatal(err)
	}
	rb, ok1 := rago.MaxQPSPerChip(front)
	bb, ok2 := rago.MaxQPSPerChip(base)
	if ok1 && ok2 {
		fmt.Printf("RAGO vs LLM-system extension: %.2fx QPS/chip (paper: 1.7x)\n",
			rb.Metrics.QPSPerChip/bb.Metrics.QPSPerChip)
	}
}
