// Observability example: attach the event bus to a serving replay, stream
// live telemetry over HTTP while it runs, and export the per-request span
// timeline as a Chrome trace_event file you can open in Perfetto.
//
// Three consumers ride one bus without touching the dataplane's fast
// path:
//
//   - a MetricsServer exposing /window (JSON snapshot), /stream (SSE),
//     expvar counters, and pprof on a local port;
//   - a Tracer assembling every admit → stage → decode → finish event
//     into per-request spans, written to observability_trace.json
//     (load it at https://ui.perfetto.dev);
//   - a plain subscriber counting events, to show the raw feed.
//
// Run with `go run ./examples/observability`.
package main

import (
	"fmt"
	"log"
	"net/http"
	"os"

	"rago"
)

func main() {
	log.SetFlags(0)

	// 1. A Case I workload on a throughput-optimal schedule.
	schema := rago.CaseI(8e9, 1)
	cluster := rago.DefaultCluster()
	front, err := rago.Optimize(schema, rago.DefaultOptions(cluster))
	if err != nil {
		log.Fatal(err)
	}
	best, ok := rago.MaxQPSPerChip(front)
	if !ok {
		log.Fatal("empty frontier")
	}

	// 2. One bus, three consumers.
	bus := rago.NewBus()

	tracer := rago.NewTracer()
	if err := tracer.Attach(bus, 0); err != nil {
		log.Fatal(err)
	}

	msrv, err := rago.NewMetricsServer(bus, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer msrv.Close()
	fmt.Printf("metrics:   http://%s  (/window /stream /debug/vars /debug/pprof/)\n", msrv.Addr())

	counter := bus.Subscribe(1 << 15)

	// 3. Replay 2000 Poisson arrivals at 1.5x analytical capacity with a
	// telemetry window streamed every 2 virtual seconds.
	const n = 2000
	reqs, err := rago.PoissonTrace(n, 1.5*best.Metrics.QPS, 42)
	if err != nil {
		log.Fatal(err)
	}
	rt, err := rago.NewRuntime(schema, best.Item, cluster, rago.ServeOptions{
		Speedup:     (n / best.Metrics.QPS) / 4.0, // ~4s of wall time
		WindowEvery: 2,
		Bus:         bus,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Peek at the live stream the way an external autoscaler would.
	go func() {
		resp, err := http.Get("http://" + msrv.Addr() + "/stream")
		if err != nil {
			return
		}
		defer resp.Body.Close()
		buf := make([]byte, 4096)
		for {
			k, err := resp.Body.Read(buf)
			if k > 0 {
				os.Stdout.Write(buf[:k])
			}
			if err != nil {
				return
			}
		}
	}()

	rep, err := rt.Serve(reqs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s\n\n", rep)

	// 4. Drain the consumers: raw feed stats, then the span export.
	counter.Close()
	events := 0
	for range counter.Events() {
		events++
	}
	fmt.Printf("raw feed:  %d events delivered, %d dropped (bounded buffer)\n", events, counter.Dropped())

	tracer.Close()
	spans := tracer.Requests()
	fmt.Printf("tracer:    %d requests assembled, first done at %.2fs, last at %.2fs\n",
		len(spans), spans[0].Done, spans[len(spans)-1].Done)

	raw, err := tracer.ChromeTrace()
	if err != nil {
		log.Fatal(err)
	}
	const out = "observability_trace.json"
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace:     wrote %s (%d bytes) — open in https://ui.perfetto.dev\n", out, len(raw))
}
