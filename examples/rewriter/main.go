// Rewriter: the paper's Case IV — a query rewriter and result reranker
// wrapped around hyperscale retrieval. Shows the paper's two findings:
// the extra models barely dent throughput, but the rewriter's
// autoregressive decoding inflates TTFT (paper: 2.4x), and placement
// matters (hybrid collocation-disaggregation wins, §7.2).
package main

import (
	"fmt"
	"log"

	"rago"
)

func main() {
	log.SetFlags(0)
	cluster := rago.DefaultCluster()
	opts := rago.DefaultOptions(cluster)
	opts.NormalizeChips = cluster.XPUs()

	with, err := rago.Optimize(rago.CaseIV(70e9), opts)
	if err != nil {
		log.Fatal(err)
	}
	without, err := rago.Optimize(rago.CaseI(70e9, 1), opts)
	if err != nil {
		log.Fatal(err)
	}

	wQ, _ := rago.MaxQPSPerChip(with)
	woQ, _ := rago.MaxQPSPerChip(without)
	wT, _ := rago.MinTTFT(with)
	woT, _ := rago.MinTTFT(without)

	fmt.Println("Case IV: 8B query rewriter + 120M reranker around hyperscale retrieval (70B LLM)")
	fmt.Printf("%-28s %12s %12s\n", "", "QPS/chip", "min TTFT(s)")
	fmt.Printf("%-28s %12.2f %12.4f\n", "with rewriter+reranker", wQ.Metrics.QPSPerChip, wT.Metrics.TTFT)
	fmt.Printf("%-28s %12.2f %12.4f\n", "without", woQ.Metrics.QPSPerChip, woT.Metrics.TTFT)
	fmt.Printf("\nthroughput cost: %.0f%%  (paper: negligible)\n",
		(1-wQ.Metrics.QPSPerChip/woQ.Metrics.QPSPerChip)*100)
	fmt.Printf("TTFT inflation:  %.2fx (paper: 2.4x — the rewriter decodes autoregressively)\n",
		wT.Metrics.TTFT/woT.Metrics.TTFT)

	// Placement sensitivity: the rewriter's decode phase scales poorly,
	// so collocating it with the main prefix under-utilizes chips.
	pipe, err := rago.BuildPipeline(rago.CaseIV(70e9))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nthroughput-optimal schedule:\n  %s\n", wQ.Item.Describe(pipe))
}
