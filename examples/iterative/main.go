// Iterative: the paper's Case III — decoder-initiated retrievals for
// multi-hop reasoning. Runs the token-level discrete-event simulator to
// show how the iterative batch size trades retrieval efficiency against
// decode idleness (Figs. 9b and 10).
package main

import (
	"fmt"
	"log"

	"rago"
)

func main() {
	log.SetFlags(0)

	// Pure batching idleness (zero-cost retrieval rounds): sequences
	// pause at random token positions until enough of them wait to fill
	// an iterative batch. Matching iterative and decode batches is the
	// worst case (paper: up to 2.77x at 64/64).
	fmt.Println("normalized decode latency from batching idleness (zero-cost rounds)")
	fmt.Printf("%-22s", "iter \\ decode batch")
	decBatches := []int{4, 16, 64, 256}
	for _, bd := range decBatches {
		fmt.Printf("%8d", bd)
	}
	fmt.Println()
	for _, bi := range []int{1, 4, 16, 64} {
		fmt.Printf("%-22d", bi)
		for _, bd := range decBatches {
			if bi > bd {
				fmt.Printf("%8s", "-")
				continue
			}
			res, err := rago.RunIterative(rago.IterativeConfig{
				DecodeBatch:      bd,
				IterBatch:        bi,
				DecodeTokens:     256,
				RetrievalsPerSeq: 3, // 4 retrievals: one up front, three while decoding
				StepTime:         0.01,
				Sequences:        300,
				Seed:             1,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%8.2f", res.NormalizedLatency)
		}
		fmt.Println()
	}

	// With real retrieval costs the trade-off reverses at large decode
	// batches: tiny iterative batches starve the retrieval tier.
	fmt.Println("\nTPOT (ms) with a 21ms-per-round retrieval tier, decode batch 256:")
	for _, bi := range []int{1, 4, 16, 64} {
		res, err := rago.RunIterative(rago.IterativeConfig{
			DecodeBatch:      256,
			IterBatch:        bi,
			DecodeTokens:     256,
			RetrievalsPerSeq: 3,
			StepTime:         0.01,
			RetrievalLatency: func(batch int) float64 { return 0.021 }, // hyperscale tier, <=21 queries
			Sequences:        200,
			Seed:             1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  iterative batch %-4d TPOT = %6.1f ms\n", bi, res.TPOT*1e3)
	}
	fmt.Println("\nlarger iterative batches amortize the tier; the optimum depends on the decode batch (§5.3)")
}
