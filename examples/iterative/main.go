// Iterative: the paper's Case III — decoder-initiated retrievals for
// multi-hop reasoning. Runs the token-level discrete-event simulator to
// show how the iterative batch size trades retrieval efficiency against
// decode idleness (Figs. 9b and 10), then executes the same decode loop
// for real: a compiled Case III plan served by the live concurrent
// runtime, whose measured stall-per-request and saturation QPS land on
// the simulator's and the analytical fixed point's numbers.
package main

import (
	"fmt"
	"log"

	"rago"
)

func main() {
	log.SetFlags(0)

	// Pure batching idleness (zero-cost retrieval rounds): sequences
	// pause at random token positions until enough of them wait to fill
	// an iterative batch. Matching iterative and decode batches is the
	// worst case (paper: up to 2.77x at 64/64).
	fmt.Println("normalized decode latency from batching idleness (zero-cost rounds)")
	fmt.Printf("%-22s", "iter \\ decode batch")
	decBatches := []int{4, 16, 64, 256}
	for _, bd := range decBatches {
		fmt.Printf("%8d", bd)
	}
	fmt.Println()
	for _, bi := range []int{1, 4, 16, 64} {
		fmt.Printf("%-22d", bi)
		for _, bd := range decBatches {
			if bi > bd {
				fmt.Printf("%8s", "-")
				continue
			}
			res, err := rago.RunIterative(rago.IterativeConfig{
				DecodeBatch:      bd,
				IterBatch:        bi,
				DecodeTokens:     256,
				RetrievalsPerSeq: 3, // 4 retrievals: one up front, three while decoding
				StepTime:         0.01,
				Sequences:        300,
				Seed:             1,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%8.2f", res.NormalizedLatency)
		}
		fmt.Println()
	}

	// With real retrieval costs the trade-off reverses at large decode
	// batches: tiny iterative batches starve the retrieval tier.
	fmt.Println("\nTPOT (ms) with a 21ms-per-round retrieval tier, decode batch 256:")
	for _, bi := range []int{1, 4, 16, 64} {
		res, err := rago.RunIterative(rago.IterativeConfig{
			DecodeBatch:      256,
			IterBatch:        bi,
			DecodeTokens:     256,
			RetrievalsPerSeq: 3,
			StepTime:         0.01,
			RetrievalLatency: func(batch int) float64 { return 0.021 }, // hyperscale tier, <=21 queries
			Sequences:        200,
			Seed:             1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  iterative batch %-4d TPOT = %6.1f ms\n", bi, res.TPOT*1e3)
	}
	fmt.Println("\nlarger iterative batches amortize the tier; the optimum depends on the decode batch (§5.3)")

	// The same loop, live: compile a Case III schedule and replay a
	// saturating trace through the concurrent serving runtime. Sequences
	// genuinely park at their trigger tokens, batch on the retrieval
	// tier, pass the new content through the prefix group, and resume —
	// the measured stall is the §5.3 fixed point, not a closed form.
	schema := rago.CaseIII(8e9, 4) // 4 retrievals: 1 up front + 3 iterative
	sched := rago.Schedule{
		Groups:           []rago.GroupSchedule{{Stages: []int{1}, Chips: 16, Batch: 4}},
		RetrievalServers: 16,
		RetrievalBatch:   4,
		DecodeChips:      16,
		DecodeBatch:      32,
		DecodeReplicas:   4,
		IterativeBatch:   16,
	}
	cluster := rago.DefaultCluster()
	plan, err := rago.CompilePlan(schema, sched, cluster)
	if err != nil {
		log.Fatal(err)
	}
	outTokens := plan.Steps[plan.DecodeIdx].Stage.OutTokens
	const n = 3000
	reqs, err := rago.PoissonTrace(n, 1.5*plan.Metrics.QPS, 42)
	if err != nil {
		log.Fatal(err)
	}
	reqs = rago.WithTriggers(reqs, plan.Round.RoundsPerSeq, outTokens, 7)
	rt, err := rago.NewRuntime(schema, sched, cluster, rago.ServeOptions{
		Speedup:      (n / plan.Metrics.QPS) / 6.0, // ~6s of wall time
		FlushTimeout: 0.25,                         // let iterative rounds form full batches
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserving Case III live (decode batch %d, iterative batch %d, %d requests at 1.5x capacity)...\n",
		sched.DecodeBatch, sched.IterativeBatch, n)
	rep, err := rt.Serve(reqs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep)

	// The token-level simulator at the identical operating point.
	tok, err := rago.RunIterative(rago.IterativeConfig{
		DecodeBatch:      sched.DecodeBatch,
		IterBatch:        sched.IterativeBatch,
		DecodeTokens:     outTokens,
		RetrievalsPerSeq: plan.Round.RoundsPerSeq,
		StepTime:         plan.Round.DecodeStep,
		RetrievalLatency: func(b int) float64 { return plan.StepLatency(plan.IterRetrievalSlot(), b) },
		PrefixLatency:    func(b int) float64 { return plan.StepLatency(plan.IterPrefixSlot(), b) },
		Sequences:        400,
		Seed:             3,
	})
	if err != nil {
		log.Fatal(err)
	}
	simStall := tok.MeanLatency - float64(outTokens)*plan.Round.DecodeStep
	fmt.Printf("\nstall-per-request: live %.3fs  |  token sim %.3fs  |  analytical fixed point %.3fs\n",
		rep.Stall.P50, simStall, plan.Iter.StallPerRequest)
	fmt.Printf("saturation QPS:    live %.2f  |  token sim %.2f  |  analytical %.2f\n",
		rep.SustainedQPS, float64(sched.DecodeBatch)/tok.MeanLatency, plan.Metrics.QPS)
}
