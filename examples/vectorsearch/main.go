// Vectorsearch: the retrieval substrate on real data. Builds an IVF-PQ
// index (the algorithm family the paper's hyperscale tier runs, §2) over
// synthetic clustered embeddings and walks the §5.1 trade-off: scanning
// more of the database buys recall and costs bytes — the exact quantity
// the analytical retrieval model prices.
package main

import (
	"fmt"
	"log"

	"rago"
)

func main() {
	log.SetFlags(0)
	const (
		n    = 10_000
		dim  = 32
		k    = 10
		seed = 42
	)
	data := rago.GenClustered(n, dim, 16, 1.0, seed)
	queries := rago.GenClustered(50, dim, 16, 1.0, seed+1)

	// Ground truth from exact brute-force search.
	flat := rago.NewFlatIndex(dim)
	if err := flat.Add(data...); err != nil {
		log.Fatal(err)
	}

	// Two quantization points: 16-byte codes (2 dims/byte, like the
	// paper's 8:1 compression of 768-dim vectors to 96 bytes) and
	// 32-byte codes (1 dim/byte).
	for _, m := range []int{16, 32} {
		ix, err := rago.BuildIVFPQ(data, 128, m, seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("IVF-PQ: %d vectors, %d cells, %d-byte codes\n", ix.Len(), ix.NList(), m)
		fmt.Printf("%-8s %12s %14s %12s\n", "nprobe", "recall@10", "bytes/query", "scan frac")
		for _, nprobe := range []int{1, 2, 4, 8, 16, 32, 128} {
			var recall float64
			for _, q := range queries {
				truth, err := flat.Search(q, k)
				if err != nil {
					log.Fatal(err)
				}
				got, err := ix.Search(q, k, nprobe)
				if err != nil {
					log.Fatal(err)
				}
				recall += rago.Recall(truth, got, k)
			}
			recall /= float64(len(queries))
			frac := ix.VectorsScanned(nprobe) / float64(ix.Len())
			fmt.Printf("%-8d %12.3f %14.0f %11.1f%%\n", nprobe, recall, ix.BytesScanned(nprobe), frac*100)
		}
		fmt.Println()
	}
	fmt.Println("scanning more bytes buys recall up to the quantizer's ceiling;")
	fmt.Println("finer codes raise the ceiling at 2x the scan cost — the trade-off")
	fmt.Println("RAGO's retrieval cost model prices (§5.1, Fig. 7b)")
}
