// Hyperscale: the paper's Case I question — when does retrieval over a
// 64-billion-vector corpus with a small LLM beat serving a big LLM without
// retrieval? Reproduces the Fig. 5 comparison and the query-count
// sensitivity of Fig. 6.
package main

import (
	"fmt"
	"log"

	"rago"
)

func main() {
	log.SetFlags(0)
	cluster := rago.DefaultCluster() // 16 hosts / 64 XPUs, minimum for the 6.1 TB corpus
	opts := rago.DefaultOptions(cluster)
	opts.NormalizeChips = cluster.XPUs() // charge the whole pool, as §5 does

	fmt.Println("RAG with small models vs LLM-only with large models")
	fmt.Printf("%-16s %12s %12s\n", "system", "QPS/chip", "min TTFT(s)")
	show := func(name string, schema rago.Schema) float64 {
		front, err := rago.Optimize(schema, opts)
		if err != nil {
			log.Fatal(err)
		}
		best, _ := rago.MaxQPSPerChip(front)
		fast, _ := rago.MinTTFT(front)
		fmt.Printf("%-16s %12.2f %12.4f\n", name, best.Metrics.QPSPerChip, fast.Metrics.TTFT)
		return best.Metrics.QPSPerChip
	}
	rag1 := show("RAG 1B", rago.CaseI(1e9, 1))
	rag8 := show("RAG 8B", rago.CaseI(8e9, 1))
	llm8 := show("LLM-only 8B", rago.LLMOnly(8e9))
	llm70 := show("LLM-only 70B", rago.LLMOnly(70e9))

	fmt.Printf("\nRAG 8B vs LLM-only 70B: %.1fx QPS/chip (paper: 1.5x)\n", rag8/llm70)
	fmt.Printf("RAG 1B vs RAG 8B:       %.2fx (both retrieval-bound)\n", rag1/rag8)
	fmt.Printf("RAG 1B vs LLM-only 8B:  %.2fx (8x fewer parameters, sub-proportional gain)\n", rag1/llm8)

	// Fig. 6: multi-query retrieval halves throughput per doubling.
	fmt.Println("\nquery vectors per retrieval (RAG 8B):")
	fmt.Printf("%-10s %12s\n", "queries", "QPS/chip")
	for _, q := range []int{1, 2, 4, 8} {
		front, err := rago.Optimize(rago.CaseI(8e9, q), opts)
		if err != nil {
			log.Fatal(err)
		}
		best, _ := rago.MaxQPSPerChip(front)
		fmt.Printf("%-10d %12.2f\n", q, best.Metrics.QPSPerChip)
	}
}
