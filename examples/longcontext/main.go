// Longcontext: the paper's Case II — serving questions over user-uploaded
// documents by treating the document as a retrieval corpus instead of
// stuffing it into the prompt. Shows how the 120M encoder, 600x smaller
// than the generative LLM, becomes the bottleneck, and how RAGO's
// placement and allocation decisions recover the lost throughput.
package main

import (
	"fmt"
	"log"

	"rago"
)

func main() {
	log.SetFlags(0)
	cluster := rago.LargeCluster()
	opts := rago.DefaultOptions(cluster)

	fmt.Println("long-context RAG with a 70B LLM across context lengths")
	fmt.Printf("%-12s %12s %12s %14s\n", "context", "QPS/chip", "minTTFT(s)", "RAGO/baseline")
	for _, ctx := range []int{100_000, 1_000_000, 10_000_000} {
		schema := rago.CaseII(70e9, ctx)
		o, err := rago.NewOptimizer(schema, opts)
		if err != nil {
			log.Fatal(err)
		}
		front := o.Optimize()
		best, _ := rago.MaxQPSPerChip(front)
		fast, _ := rago.MinTTFT(front)
		gain := 0.0
		if bb, ok := rago.MaxQPSPerChip(o.BaselineFrontier()); ok {
			gain = best.Metrics.QPSPerChip / bb.Metrics.QPSPerChip
		}
		fmt.Printf("%-12d %12.3f %12.4f %13.2fx\n", ctx, best.Metrics.QPSPerChip, fast.Metrics.TTFT, gain)
	}

	// Where does the time go? Print the throughput-optimal schedule for
	// the 1M-token configuration: the encoder gets the lion's share of
	// the chips (paper Table 4: 64 of 96).
	schema := rago.CaseII(70e9, 1_000_000)
	front, err := rago.Optimize(schema, opts)
	if err != nil {
		log.Fatal(err)
	}
	pipe, err := rago.BuildPipeline(schema)
	if err != nil {
		log.Fatal(err)
	}
	if best, ok := rago.MaxQPSPerChip(front); ok {
		fmt.Printf("\nthroughput-optimal schedule at 1M tokens:\n  %s\n", best.Item.Describe(pipe))
		fmt.Printf("  (the document encoder dominates: it processes ~2000x more tokens than the prefix)\n")
	}
}
