// Serving example: optimize a workload, pick a Pareto frontier point, then
// actually execute its schedule in the concurrent serving runtime against a
// 10k-request open-loop Poisson trace — the optimize → pick → serve loop
// the rago serve subcommand wraps.
//
// The trace overdrives the schedule at 1.5x its analytical capacity, so
// the report shows true saturation behaviour: sustained QPS pinned at the
// bottleneck tier's throughput (and matching the optimizer's prediction),
// queue-dominated TTFT tails, and full batches everywhere.
package main

import (
	"fmt"
	"log"

	"rago"
)

func main() {
	log.SetFlags(0)

	// 1. Optimize: Case IV (8B query rewriter + 120M reranker, 8B LLM).
	schema := rago.CaseIV(8e9)
	cluster := rago.DefaultCluster()
	front, err := rago.Optimize(schema, rago.DefaultOptions(cluster))
	if err != nil {
		log.Fatal(err)
	}

	// 2. Pick the throughput-optimal frontier point.
	best, ok := rago.MaxQPSPerChip(front)
	if !ok {
		log.Fatal("empty frontier")
	}
	pipe, err := rago.BuildPipeline(schema)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload:  %s\n", schema.Name)
	fmt.Printf("schedule:  %s\n", best.Item.Describe(pipe))
	fmt.Printf("analytic:  %s\n\n", best.Metrics)

	// 3. Serve a 10k-request Poisson trace at 1.5x analytical capacity,
	// compressing the multi-minute replay into a few wall seconds.
	const n = 10000
	reqs, err := rago.PoissonTrace(n, 1.5*best.Metrics.QPS, 42)
	if err != nil {
		log.Fatal(err)
	}
	rt, err := rago.NewRuntime(schema, best.Item, cluster, rago.ServeOptions{
		Speedup: (n / best.Metrics.QPS) / 5.0, // ~5s of wall time
	})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := rt.Serve(reqs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep)
}
