// Command ragochar regenerates the paper's §5 workload characterization:
// Figures 5 through 11. Each figure prints as an ASCII table; pass -figure
// to produce a single one.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"rago/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ragochar: ")
	figure := flag.String("figure", "all", "figure to regenerate: 5|6|7|8|9|10|11|whatif|all")
	full := flag.Bool("full", false, "print full Pareto curves instead of summaries")
	flag.Parse()

	want := func(f string) bool { return *figure == "all" || *figure == f }

	if want("5") {
		series, err := bench.Figure5()
		check(err)
		fmt.Println(render(*full, "Figure 5: RAG vs LLM-only (QPS/chip vs TTFT)", series))
	}
	if want("6") {
		for _, params := range []float64{8e9, 70e9} {
			series, err := bench.Figure6QPS(params)
			check(err)
			fmt.Println(render(*full, fmt.Sprintf("Figure 6: hyperscale retrieval, %s model", size(params)), series))
			bds, err := bench.Figure6Breakdown(params)
			check(err)
			fmt.Println(bench.RenderBreakdowns(fmt.Sprintf("Figure 6 breakdown, %s model", size(params)), bds))
		}
	}
	if want("7") {
		cells, err := bench.Figure7a()
		check(err)
		fmt.Println(bench.RenderHeatmap("Figure 7a: retrieval share (%) across XPU generations", cells))
		cells, err = bench.Figure7b()
		check(err)
		fmt.Println(bench.RenderHeatmap("Figure 7b: retrieval share (%) vs scanned fraction", cells))
		cells, err = bench.Figure7c()
		check(err)
		fmt.Println(bench.RenderHeatmap("Figure 7c: retrieval share (%) vs sequence lengths (8B)", cells))
	}
	if want("8") {
		series, err := bench.Figure8QPS(70e9)
		check(err)
		fmt.Println(render(*full, "Figure 8: long-context RAG (70B)", series))
		bds, err := bench.Figure8Breakdown(70e9)
		check(err)
		fmt.Println(bench.RenderBreakdowns("Figure 8 breakdown (70B)", bds))
		ttftX, qpsX, err := bench.LongContextSpeedup(1_000_000)
		check(err)
		fmt.Printf("§5.2 RAG vs long-context LLM at 1M tokens: TTFT %.0fx, QPS/chip %.0fx\n\n", ttftX, qpsX)
	}
	if want("9") {
		series, err := bench.Figure9a(70e9)
		check(err)
		fmt.Println(bench.RenderSeries("Figure 9a: TPOT vs decode batch (70B)", series))
		series, err = bench.Figure9b(70e9)
		check(err)
		fmt.Println(bench.RenderSeries("Figure 9b: TPOT vs iterative batch (70B, 4 retrievals)", series))
	}
	if want("10") {
		cells, err := bench.Figure10()
		check(err)
		fmt.Println(bench.RenderHeatmap("Figure 10b: normalized decoding latency (zero-cost rounds)", cells))
	}
	if want("11") {
		bds, ratio, err := bench.Figure11()
		check(err)
		fmt.Println(bench.RenderBreakdowns("Figure 11: rewriter + reranker breakdown", bds))
		fmt.Printf("TTFT inflation from the query rewriter: %.2fx (paper: 2.4x)\n\n", ratio)
	}
	if want("whatif") {
		rows, err := bench.WhatIfRetrievalAccelerator(10)
		check(err)
		fmt.Println(bench.RenderWhatIf("What-if (§8): Chameleon-style retrieval accelerator, Case I 8B", rows))
		rows, err = bench.WhatIfKVCacheReuse()
		check(err)
		fmt.Println(bench.RenderWhatIf("What-if (§8): CacheBlend-style document-KV reuse, Case I 8B", rows))
		rows, err = bench.WhatIfPrefetching()
		check(err)
		fmt.Println(bench.RenderWhatIf("What-if (§8): PipeRAG-style iterative prefetching, Case III 70B", rows))
	}
}

func render(full bool, title string, series []bench.Series) string {
	if full {
		return bench.RenderSeries(title, series)
	}
	return bench.RenderFrontierSummary(title, series)
}

func size(params float64) string {
	return strings.TrimSuffix(fmt.Sprintf("%.0fB", params/1e9), ".0")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
