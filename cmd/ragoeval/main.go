// Command ragoeval regenerates the paper's §7 evaluation of RAGO itself:
// Figures 15 through 19 and Table 4. The Case IV searches sweep tens of
// thousands of plans and take tens of seconds.
package main

import (
	"flag"
	"fmt"
	"log"

	"rago/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ragoeval: ")
	figure := flag.String("figure", "all", "artifact to regenerate: 15|16|17|18|19|table4|all")
	skipSlow := flag.Bool("skip-slow", false, "skip the Case IV plan sweeps")
	flag.Parse()

	want := func(f string) bool { return *figure == "all" || *figure == f }

	if want("15") {
		cases := []bench.EvalCase{bench.EvalCaseII}
		if !*skipSlow {
			cases = append(cases, bench.EvalCaseIV)
		}
		for _, c := range cases {
			rago, base, gain, err := bench.Figure15(c)
			check(err)
			fmt.Println(bench.RenderFrontierSummary(
				fmt.Sprintf("Figure 15, %s", c), []bench.Series{rago, base}))
			fmt.Printf("RAGO max-QPS/chip gain over baseline: %.2fx\n\n", gain)
		}
	}
	if want("16") {
		sums, global, err := bench.Figure16(bench.EvalCaseII, 8)
		check(err)
		fmt.Println(bench.RenderPlanSummaries("Figure 16a: per-plan frontiers, Case II (top 8)", sums))
		fmt.Println(bench.RenderFrontierSummary("Figure 16a: global Pareto", []bench.Series{global}))
		if !*skipSlow {
			sums, global, err = bench.Figure16(bench.EvalCaseIV, 8)
			check(err)
			fmt.Println(bench.RenderPlanSummaries("Figure 16b: per-plan frontiers, Case IV (top 8)", sums))
			fmt.Println(bench.RenderFrontierSummary("Figure 16b: global Pareto", []bench.Series{global}))
		}
	}
	if want("17") {
		cases := []bench.EvalCase{bench.EvalCaseII}
		if !*skipSlow {
			cases = append(cases, bench.EvalCaseIV)
		}
		for _, c := range cases {
			classes, err := bench.Figure17(c)
			check(err)
			var series []bench.Series
			for _, cls := range []bench.PlacementClass{bench.PlacementCollocated, bench.PlacementDisaggregated, bench.PlacementHybrid} {
				if s, ok := classes[cls]; ok {
					series = append(series, s)
				}
			}
			fmt.Println(bench.RenderFrontierSummary(fmt.Sprintf("Figure 17, %s: placement comparison", c), series))
		}
	}
	if want("18") {
		for _, collocated := range []bool{true, false} {
			spread, best, worst, err := bench.Figure18(bench.EvalCaseII, collocated)
			check(err)
			style := "disaggregated"
			if collocated {
				style = "collocated/hybrid"
			}
			fmt.Printf("== Figure 18, Case II %s allocations ==\n", style)
			fmt.Printf("max QPS/chip spread: %.1fx (paper: 52.5x collocated, 64.1x disaggregated)\n", spread)
			fmt.Printf("  best:  %.4f  %s\n", best.MaxQPSChip, best.Desc)
			fmt.Printf("  worst: %.4f  %s\n\n", worst.MaxQPSChip, worst.Desc)
		}
	}
	if want("19") {
		cells, err := bench.Figure19CaseI()
		check(err)
		fmt.Println(bench.RenderHeatmap("Figure 19a: TTFT reduction (%) from micro-batching, Case I (70B)", cells))
		cells, err = bench.Figure19CaseII()
		check(err)
		fmt.Println(bench.RenderHeatmap("Figure 19b: TTFT reduction (%), Case II (70B)", cells))
		if !*skipSlow {
			cells, err = bench.Figure19CaseIV()
			check(err)
			fmt.Println(bench.RenderHeatmap("Figure 19c: TTFT reduction (%), Case IV", cells))
		}
	}
	if want("table4") {
		rows, err := bench.Table4()
		check(err)
		fmt.Println(bench.RenderTable4(rows))
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
