// Command rago runs the RAGO schedule optimizer for a RAGSchema and, with
// the serve subcommand, executes an optimized schedule in the live
// concurrent serving runtime against a synthetic or recorded request
// trace — optionally under the SLO-aware online controller.
//
// Usage:
//
//	rago [optimize] -schema workload.json [-hosts 16] [-chip XPU-C] [-normalize 0] [-baseline]
//	rago [optimize] -preset case2 [-context 1000000] [-model 70e9]
//	rago serve -preset case4 [-n 10000] [-rate 0] [-point maxqps] [-db 0] [-json]
//	rago serve -preset case4 -arrivals diurnal [-amplitude 0.8] [-period 300] [-save-trace day.json]
//	rago serve -preset case4 -controller -slo-ttft 1.0 [-trace day.json]
//
// With no -schema, -preset selects one of the paper's Table 3 workloads:
// case1, case2, case3, case4, case5, llm-only. The optimize subcommand (the
// default) prints the performance Pareto frontier with its schedules; the
// serve subcommand replays an open-loop trace through a chosen frontier
// point and prints the measured latency report. With -controller, serve
// instead compiles the SLO-feasible frontier into a plan library and lets
// the online controller hot-swap the live runtime between plans as the
// (typically time-varying: -arrivals diurnal|mmpp|gamma, or a -trace
// file) load shifts, reporting plan switches, chip-seconds against static
// peak provisioning, and a discrete-event replay of the same decisions.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"rago/internal/core"
	"rago/internal/hw"
	"rago/internal/perf"
	"rago/internal/ragschema"
	"rago/internal/vectordb"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rago: ")

	args := os.Args[1:]
	if len(args) > 0 {
		switch args[0] {
		case "serve":
			runServe(args[1:])
			return
		case "optimize":
			args = args[1:]
		}
	}
	runOptimize(args)
}

// workloadFlags registers the schema/cluster selection flags shared by the
// optimize and serve subcommands.
type workloadFlags struct {
	schemaPath *string
	preset     *string
	model      *float64
	queries    *int
	context    *int
	retrievals *int
	sources    *int
	hosts      *int
	chip       *string
}

func addWorkloadFlags(fs *flag.FlagSet) workloadFlags {
	return workloadFlags{
		schemaPath: fs.String("schema", "", "path to a RAGSchema JSON file"),
		preset:     fs.String("preset", "", "preset workload: case1|case2|case3|case4|case5|llm-only"),
		model:      fs.Float64("model", 70e9, "generative model parameters for presets"),
		queries:    fs.Int("queries", 1, "query vectors per retrieval (case1)"),
		context:    fs.Int("context", 1_000_000, "context tokens (case2)"),
		retrievals: fs.Int("retrievals", 4, "retrievals per sequence (case3)"),
		sources:    fs.Int("sources", 2, "parallel retrieval sources (case5)"),
		hosts:      fs.Int("hosts", 16, "host servers (4 XPUs each)"),
		chip:       fs.String("chip", "XPU-C", "accelerator generation: XPU-A|XPU-B|XPU-C"),
	}
}

func (w workloadFlags) load() (ragschema.Schema, hw.Cluster, error) {
	schema, err := loadSchema(*w.schemaPath, *w.preset, *w.model, *w.queries, *w.context, *w.retrievals, *w.sources)
	if err != nil {
		return ragschema.Schema{}, hw.Cluster{}, err
	}
	xpu, err := hw.XPUByName(*w.chip)
	if err != nil {
		return ragschema.Schema{}, hw.Cluster{}, err
	}
	return schema, hw.Cluster{Chip: xpu, Host: hw.EPYCHost, Hosts: *w.hosts}, nil
}

func runOptimize(args []string) {
	fs := flag.NewFlagSet("optimize", flag.ExitOnError)
	wf := addWorkloadFlags(fs)
	var (
		normalize  = fs.Int("normalize", 0, "fixed chip count for QPS/chip normalization (0 = allocated)")
		baseline   = fs.Bool("baseline", false, "also evaluate the LLM-system-extension baseline")
		maxPoints  = fs.Int("max-points", 20, "frontier points to print (0 = all)")
		workers    = fs.Int("workers", 0, "parallel search workers (0 = GOMAXPROCS)")
		shards     = fs.Int("shards", 0, "model the retrieval tier as this many scatter-gather shards, with recall calibrated on a synthetic index (0/1 = single index)")
		nprobes    = fs.String("nprobes", "", "comma-separated nprobe values the search enumerates as schedule knobs (0 = tier base; empty = base only)")
		fanouts    = fs.String("fanouts", "", "comma-separated shard-fanout values the search enumerates (0 = all shards; empty = all shards only)")
		cpuprofile = fs.String("cpuprofile", "", "write a pprof CPU profile of the search to this file")
		memprofile = fs.String("memprofile", "", "write a pprof heap profile after the search to this file")
	)
	fs.Parse(args)

	schema, cluster, err := wf.load()
	if err != nil {
		log.Fatal(err)
	}
	npList, err := parseIntList("-nprobes", *nprobes)
	if err != nil {
		log.Fatal(err)
	}
	foList, err := parseIntList("-fanouts", *fanouts)
	if err != nil {
		log.Fatal(err)
	}
	if *shards <= 1 && len(foList) > 0 {
		log.Fatal("-fanouts needs -shards > 1")
	}

	opts := core.DefaultOptions(cluster)
	opts.NormalizeChips = *normalize
	opts.Workers = *workers
	opts.NProbes = npList
	opts.ShardFanouts = foList

	o, err := core.NewOptimizer(schema, opts)
	if err != nil {
		log.Fatal(err)
	}
	if *shards > 1 {
		// No real corpus on the optimize path: calibrate the recall
		// surface on a small synthetic clustered index sharded the same
		// way, so the frontier carries a measured quality axis.
		data := vectordb.GenClustered(20000, 64, 64, 0.4, 1)
		ix, err := vectordb.BuildIVFPQ(data, 128, 32, 1)
		if err != nil {
			log.Fatal(err)
		}
		sh, err := vectordb.NewSharded(ix, *shards, 1)
		if err != nil {
			log.Fatal(err)
		}
		mod, err := calibratedRecallModel(sh, data, 64, 10, npList, foList, 1)
		if err != nil {
			log.Fatal(err)
		}
		o.Prof.Shards = *shards
		o.Prof.RecallMod = mod
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	front := o.Optimize()
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
	}
	if len(front) == 0 {
		log.Fatal("no feasible schedule under the given resources")
	}

	fmt.Printf("workload: %s\n", schema.Name)
	fmt.Printf("cluster:  %d hosts x %d %s = %d XPUs\n", cluster.Hosts, cluster.Host.XPUsPerHost, cluster.Chip.Name, cluster.XPUs())
	fmt.Printf("%s\n", o.SearchStats())
	fmt.Printf("frontier: %d Pareto-optimal schedules\n\n", len(front))

	printFrontier(o, front, *maxPoints)

	if best, ok := perf.MaxQPSPerChip(front); ok {
		fmt.Printf("\nmax QPS/chip: %s\n  %s\n", best.Metrics, best.Item.Describe(o.Pipe))
	}
	if best, ok := perf.MinTTFT(front); ok {
		fmt.Printf("min TTFT:     %s\n  %s\n", best.Metrics, best.Item.Describe(o.Pipe))
	}

	if *baseline {
		base := o.BaselineFrontier()
		if bb, ok := perf.MaxQPSPerChip(base); ok {
			rb, _ := perf.MaxQPSPerChip(front)
			fmt.Printf("\nbaseline max QPS/chip: %s\n  %s\n", bb.Metrics, bb.Item.Describe(o.Pipe))
			fmt.Printf("RAGO gain: %.2fx QPS/chip\n", rb.Metrics.QPSPerChip/bb.Metrics.QPSPerChip)
		}
	}
}

func loadSchema(path, preset string, model float64, queries, context, retrievals, sources int) (ragschema.Schema, error) {
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return ragschema.Schema{}, err
		}
		return ragschema.DecodeJSON(data)
	}
	switch strings.ToLower(preset) {
	case "case1":
		return ragschema.CaseI(model, queries), nil
	case "case2":
		return ragschema.CaseII(model, context), nil
	case "case3":
		return ragschema.CaseIII(model, retrievals), nil
	case "case4":
		return ragschema.CaseIV(model), nil
	case "case5":
		return ragschema.CaseV(model, sources), nil
	case "llm-only":
		return ragschema.LLMOnly(model), nil
	case "":
		return ragschema.Schema{}, fmt.Errorf("need -schema or -preset (case1|case2|case3|case4|case5|llm-only)")
	default:
		return ragschema.Schema{}, fmt.Errorf("unknown preset %q", preset)
	}
}

func printFrontier(o *core.Optimizer, front []core.SchedulePoint, max int) {
	withRecall := false
	for _, p := range front {
		withRecall = withRecall || p.Metrics.Recall > 0
	}
	if withRecall {
		fmt.Printf("%12s %12s %12s %12s %10s  schedule\n", "TTFT(s)", "TPOT(s)", "QPS", "QPS/chip", "recall")
	} else {
		fmt.Printf("%12s %12s %12s %12s  schedule\n", "TTFT(s)", "TPOT(s)", "QPS", "QPS/chip")
	}
	step := 1
	if max > 0 && len(front) > max {
		step = len(front) / max
	}
	for i := 0; i < len(front); i += step {
		p := front[i]
		if withRecall {
			fmt.Printf("%12.4f %12.4f %12.2f %12.3f %10.3f  %s\n",
				p.Metrics.TTFT, p.Metrics.TPOT, p.Metrics.QPS, p.Metrics.QPSPerChip, p.Metrics.Recall, p.Item.Describe(o.Pipe))
			continue
		}
		fmt.Printf("%12.4f %12.4f %12.2f %12.3f  %s\n",
			p.Metrics.TTFT, p.Metrics.TPOT, p.Metrics.QPS, p.Metrics.QPSPerChip, p.Item.Describe(o.Pipe))
	}
}
