// Command rago runs the RAGO schedule optimizer for a RAGSchema described
// in JSON and prints the performance Pareto frontier with its schedules.
//
// Usage:
//
//	rago -schema workload.json [-hosts 16] [-chip XPU-C] [-normalize 0] [-baseline]
//	rago -preset case2 [-context 1000000] [-model 70e9]
//
// With no -schema, -preset selects one of the paper's Table 3 workloads:
// case1, case2, case3, case4, llm-only.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"rago/internal/core"
	"rago/internal/hw"
	"rago/internal/perf"
	"rago/internal/ragschema"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rago: ")

	var (
		schemaPath = flag.String("schema", "", "path to a RAGSchema JSON file")
		preset     = flag.String("preset", "", "preset workload: case1|case2|case3|case4|llm-only")
		model      = flag.Float64("model", 70e9, "generative model parameters for presets")
		queries    = flag.Int("queries", 1, "query vectors per retrieval (case1)")
		context    = flag.Int("context", 1_000_000, "context tokens (case2)")
		retrievals = flag.Int("retrievals", 4, "retrievals per sequence (case3)")
		hosts      = flag.Int("hosts", 16, "host servers (4 XPUs each)")
		chip       = flag.String("chip", "XPU-C", "accelerator generation: XPU-A|XPU-B|XPU-C")
		normalize  = flag.Int("normalize", 0, "fixed chip count for QPS/chip normalization (0 = allocated)")
		baseline   = flag.Bool("baseline", false, "also evaluate the LLM-system-extension baseline")
		maxPoints  = flag.Int("max-points", 20, "frontier points to print (0 = all)")
	)
	flag.Parse()

	schema, err := loadSchema(*schemaPath, *preset, *model, *queries, *context, *retrievals)
	if err != nil {
		log.Fatal(err)
	}
	xpu, err := hw.XPUByName(*chip)
	if err != nil {
		log.Fatal(err)
	}
	cluster := hw.Cluster{Chip: xpu, Host: hw.EPYCHost, Hosts: *hosts}
	opts := core.DefaultOptions(cluster)
	opts.NormalizeChips = *normalize

	o, err := core.NewOptimizer(schema, opts)
	if err != nil {
		log.Fatal(err)
	}
	front := o.Optimize()
	if len(front) == 0 {
		log.Fatal("no feasible schedule under the given resources")
	}

	fmt.Printf("workload: %s\n", schema.Name)
	fmt.Printf("cluster:  %d hosts x %d %s = %d XPUs\n", *hosts, cluster.Host.XPUsPerHost, xpu.Name, cluster.XPUs())
	fmt.Printf("frontier: %d Pareto-optimal schedules\n\n", len(front))

	printFrontier(o, front, *maxPoints)

	if best, ok := perf.MaxQPSPerChip(front); ok {
		fmt.Printf("\nmax QPS/chip: %s\n  %s\n", best.Metrics, best.Item.Describe(o.Pipe))
	}
	if best, ok := perf.MinTTFT(front); ok {
		fmt.Printf("min TTFT:     %s\n  %s\n", best.Metrics, best.Item.Describe(o.Pipe))
	}

	if *baseline {
		base := o.BaselineFrontier()
		if bb, ok := perf.MaxQPSPerChip(base); ok {
			rb, _ := perf.MaxQPSPerChip(front)
			fmt.Printf("\nbaseline max QPS/chip: %s\n  %s\n", bb.Metrics, bb.Item.Describe(o.Pipe))
			fmt.Printf("RAGO gain: %.2fx QPS/chip\n", rb.Metrics.QPSPerChip/bb.Metrics.QPSPerChip)
		}
	}
}

func loadSchema(path, preset string, model float64, queries, context, retrievals int) (ragschema.Schema, error) {
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return ragschema.Schema{}, err
		}
		return ragschema.DecodeJSON(data)
	}
	switch strings.ToLower(preset) {
	case "case1":
		return ragschema.CaseI(model, queries), nil
	case "case2":
		return ragschema.CaseII(model, context), nil
	case "case3":
		return ragschema.CaseIII(model, retrievals), nil
	case "case4":
		return ragschema.CaseIV(model), nil
	case "llm-only":
		return ragschema.LLMOnly(model), nil
	case "":
		return ragschema.Schema{}, fmt.Errorf("need -schema or -preset (case1|case2|case3|case4|llm-only)")
	default:
		return ragschema.Schema{}, fmt.Errorf("unknown preset %q", preset)
	}
}

func printFrontier(o *core.Optimizer, front []core.SchedulePoint, max int) {
	fmt.Printf("%12s %12s %12s %12s  schedule\n", "TTFT(s)", "TPOT(s)", "QPS", "QPS/chip")
	step := 1
	if max > 0 && len(front) > max {
		step = len(front) / max
	}
	for i := 0; i < len(front); i += step {
		p := front[i]
		fmt.Printf("%12.4f %12.4f %12.2f %12.3f  %s\n",
			p.Metrics.TTFT, p.Metrics.TPOT, p.Metrics.QPS, p.Metrics.QPSPerChip, p.Item.Describe(o.Pipe))
	}
}
