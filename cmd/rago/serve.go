package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"

	"rago/internal/core"
	"rago/internal/perf"
	"rago/internal/pipeline"
	"rago/internal/serve"
	"rago/internal/stageperf"
	"rago/internal/trace"
	"rago/internal/vectordb"
)

// runServe implements `rago serve`: optimize the workload, pick a frontier
// point, replay an open-loop trace through the live serving runtime, and
// print the measured latency report next to the analytical prediction.
func runServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	wf := addWorkloadFlags(fs)
	var (
		point       = fs.String("point", "maxqps", "frontier point to serve: maxqps|minttft|<index>")
		n           = fs.Int("n", 10000, "trace length (requests)")
		rate        = fs.Float64("rate", 0, "Poisson arrival rate in requests/s (0 = 1.5x the point's analytical QPS)")
		burst       = fs.Bool("burst", false, "replay a simultaneous burst instead of Poisson arrivals")
		seed        = fs.Int64("seed", 42, "trace seed")
		speedup     = fs.Float64("speedup", 0, "virtual seconds served per wall second (0 = auto, targeting ~10s wall)")
		flush       = fs.Float64("flush", 0.05, "partial-batch flush timeout in virtual seconds (0 = dispatch partial batches immediately)")
		maxInflight = fs.Int("max-inflight", 0, "admission bound; arrivals beyond it are shed (0 = admit all)")
		dbVectors   = fs.Int("db", 0, "build a real IVF-PQ index of this many vectors on the retrieval path (0 = model-paced only)")
		dbDim       = fs.Int("db-dim", 64, "real index dimensionality")
		k           = fs.Int("k", 10, "neighbors per real query")
		nprobe      = fs.Int("nprobe", 8, "probed cells per real query")
	)
	fs.Parse(args)

	schema, cluster, err := wf.load()
	if err != nil {
		log.Fatal(err)
	}
	if schema.Iterative() {
		log.Fatal("serve: iterative-retrieval workloads (case3) are not executable yet; use the optimize subcommand's models")
	}

	o, err := core.NewOptimizer(schema, core.DefaultOptions(cluster))
	if err != nil {
		log.Fatal(err)
	}
	front := o.Optimize()
	if len(front) == 0 {
		log.Fatal("no feasible schedule under the given resources")
	}
	chosen, err := pickPoint(front, *point)
	if err != nil {
		log.Fatal(err)
	}

	arrivalRate := *rate
	if arrivalRate <= 0 {
		arrivalRate = 1.5 * chosen.Metrics.QPS
	}
	var reqs []trace.Request
	if *burst {
		reqs = trace.Burst(*n)
	} else {
		if reqs, err = trace.Poisson(*n, arrivalRate, *seed); err != nil {
			log.Fatal(err)
		}
	}

	sp := *speedup
	if sp <= 0 {
		// Auto: compress the expected makespan into ~10s wall. The run
		// lasts as long as the slower of serving capacity and arrivals.
		makespan := float64(*n) / chosen.Metrics.QPS
		if !*burst && float64(*n)/arrivalRate > makespan {
			makespan = float64(*n) / arrivalRate
		}
		sp = makespan / 10.0
		if sp < 1 {
			sp = 1
		}
	}

	opts := serve.Options{Speedup: sp, FlushTimeout: *flush, MaxInFlight: *maxInflight}
	if *flush == 0 {
		opts.FlushTimeout = -1 // Options semantics: negative = immediate
	}
	if *dbVectors > 0 {
		fmt.Printf("building IVF-PQ index: %d vectors, dim %d ...\n", *dbVectors, *dbDim)
		data := vectordb.GenClustered(*dbVectors, *dbDim, 64, 0.4, *seed)
		ix, err := vectordb.BuildIVFPQ(data, 128, *dbDim/2, *seed)
		if err != nil {
			log.Fatal(err)
		}
		kk, np := *k, *nprobe
		opts.Searcher = func(queries [][]float32) ([][]vectordb.Result, error) {
			return ix.SearchBatch(queries, kk, np)
		}
		opts.QueryDim = *dbDim
		opts.QuerySeed = *seed
	}

	pipe, err := pipeline.Build(schema)
	if err != nil {
		log.Fatal(err)
	}
	prof := stageperf.New(cluster.Chip, cluster.Host, schema)
	rt, err := serve.New(pipe, prof, chosen.Item, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s\n", schema.Name)
	fmt.Printf("cluster:  %d hosts x %d %s = %d XPUs\n", cluster.Hosts, cluster.Host.XPUsPerHost, cluster.Chip.Name, cluster.XPUs())
	fmt.Printf("schedule: %s\n", chosen.Item.Describe(o.Pipe))
	fmt.Printf("analytic: %s\n", chosen.Metrics)
	if *burst {
		fmt.Printf("trace:    burst of %d requests\n", *n)
	} else {
		fmt.Printf("trace:    %d Poisson arrivals at %.1f req/s (%.2fx analytical capacity)\n",
			*n, arrivalRate, arrivalRate/chosen.Metrics.QPS)
	}
	fmt.Printf("pacing:   speedup %.0fx\n\n", sp)

	rep, err := rt.Serve(reqs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep)
}

// pickPoint resolves the -point flag against the frontier.
func pickPoint(front []core.SchedulePoint, sel string) (core.SchedulePoint, error) {
	switch sel {
	case "maxqps":
		p, ok := perf.MaxQPSPerChip(front)
		if !ok {
			return core.SchedulePoint{}, fmt.Errorf("serve: empty frontier")
		}
		return p, nil
	case "minttft":
		p, ok := perf.MinTTFT(front)
		if !ok {
			return core.SchedulePoint{}, fmt.Errorf("serve: empty frontier")
		}
		return p, nil
	default:
		i, err := strconv.Atoi(sel)
		if err != nil || i < 0 || i >= len(front) {
			return core.SchedulePoint{}, fmt.Errorf("serve: -point must be maxqps, minttft, or an index in [0, %d)", len(front))
		}
		return front[i], nil
	}
}
