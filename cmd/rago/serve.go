package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"

	"rago/internal/cache"
	"rago/internal/control"
	"rago/internal/core"
	"rago/internal/engine"
	"rago/internal/obs"
	"rago/internal/perf"
	"rago/internal/pipeline"
	"rago/internal/retrieval"
	"rago/internal/serve"
	"rago/internal/stageperf"
	"rago/internal/trace"
	"rago/internal/vectordb"
)

// traceFlags selects the request trace: a file, or one of the synthetic
// arrival processes (stationary and time-varying).
type traceFlags struct {
	tracePath *string
	saveTrace *string
	arrivals  *string
	n         *int
	rate      *float64
	seed      *int64
	amplitude *float64
	period    *float64
	shape     *float64
	mmppRates *string
	sojourn   *float64
	promptLen *string
	outLen    *string
	shapeMax  *int

	docZipf         *float64
	docCorpus       *int
	sessions        *int
	sessionAffinity *float64
}

func addTraceFlags(fs *flag.FlagSet) traceFlags {
	return traceFlags{
		tracePath: fs.String("trace", "", "replay a recorded trace file (.json or .csv) instead of generating one"),
		saveTrace: fs.String("save-trace", "", "write the generated trace to this file (.json or .csv)"),
		arrivals:  fs.String("arrivals", "poisson", "arrival process: poisson|burst|diurnal|mmpp|gamma"),
		n:         fs.Int("n", 10000, "trace length (requests)"),
		rate:      fs.Float64("rate", 0, "mean arrival rate in requests/s (0 = auto from the chosen schedule)"),
		seed:      fs.Int64("seed", 42, "trace seed"),
		amplitude: fs.Float64("amplitude", 0.8, "diurnal: sinusoid amplitude in [0,1]"),
		period:    fs.Float64("period", 300, "diurnal: cycle length in virtual seconds"),
		shape:     fs.Float64("shape", 0.5, "gamma: inter-arrival shape (<1 = heavy-tailed bursts)"),
		mmppRates: fs.String("mmpp-rates", "", "mmpp: comma-separated state rates in requests/s (default 0.2x,2x the mean rate)"),
		sojourn:   fs.Float64("mmpp-sojourn", 60, "mmpp: mean state sojourn in virtual seconds"),
		promptLen: fs.String("prompt-len", "", "per-request prompt length distribution: const:N | lognormal:MEDIAN,SIGMA | hist:TOK=W;TOK=W;... (empty = schema constant)"),
		outLen:    fs.String("out-len", "", "per-request output length distribution, same spec syntax as -prompt-len"),
		shapeMax:  fs.Int("shape-max", 8192, "token clamp for sampled lengths (the model-context bound)"),

		docZipf:         fs.Float64("doc-zipf", 0, "tag requests with Zipfian-popular retrieved-chunk IDs at this skew (>1, hotter is larger; 0 = untagged)"),
		docCorpus:       fs.Int("doc-corpus", 10000, "reuse: retrieval corpus size in chunks"),
		sessions:        fs.Int("sessions", 0, "reuse: overlay session affinity across this many concurrent sessions (0 = popularity only)"),
		sessionAffinity: fs.Float64("session-affinity", 0.5, "reuse: probability a session's request re-retrieves its previous context verbatim"),
	}
}

// applyReuse decorates the trace with retrieved-chunk ID tags when
// -doc-zipf is set: Zipfian document popularity, optionally overlaid with
// session affinity. perRequest is the schema's chunks-per-request
// (NeighborsPerQuery x QueriesPerRetrieval). Tags are what the prefix/KV
// cache keys on; an untagged trace leaves any cache idle.
func (tf traceFlags) applyReuse(reqs []trace.Request, desc string, perRequest int) ([]trace.Request, string, error) {
	if *tf.docZipf == 0 {
		return reqs, desc, nil
	}
	// Decorrelate the reuse stream from the arrival and shape streams
	// (same rationale as applyShapes' xor).
	seed := *tf.seed ^ 0x72657573
	var err error
	if *tf.sessions > 0 {
		reqs, err = trace.WithSessions(reqs, *tf.sessions, *tf.sessionAffinity, *tf.docCorpus, perRequest, *tf.docZipf, seed)
		desc = fmt.Sprintf("%s, reuse: zipf %.2f over %d chunks, %d sessions (affinity %.2f)",
			desc, *tf.docZipf, *tf.docCorpus, *tf.sessions, *tf.sessionAffinity)
	} else {
		reqs, err = trace.WithDocZipf(reqs, *tf.docCorpus, perRequest, *tf.docZipf, seed)
		desc = fmt.Sprintf("%s, reuse: zipf %.2f over %d chunks", desc, *tf.docZipf, *tf.docCorpus)
	}
	if err != nil {
		return nil, "", err
	}
	return reqs, desc, nil
}

// parseLengthDist parses a -prompt-len/-out-len spec into a LengthDist.
func parseLengthDist(spec string, maxTok int) (trace.LengthDist, error) {
	if spec == "" {
		return trace.LengthDist{}, nil
	}
	kind, rest, _ := strings.Cut(spec, ":")
	switch kind {
	case "const":
		n, err := strconv.Atoi(rest)
		if err != nil {
			return trace.LengthDist{}, fmt.Errorf("serve: bad const length %q", rest)
		}
		if n > maxTok {
			return trace.LengthDist{}, fmt.Errorf("serve: const length %d exceeds -shape-max %d (the model-context clamp)", n, maxTok)
		}
		return trace.ConstantLengths(n)
	case "lognormal":
		parts := strings.Split(rest, ",")
		if len(parts) != 2 {
			return trace.LengthDist{}, fmt.Errorf("serve: lognormal spec wants MEDIAN,SIGMA, got %q", rest)
		}
		median, err1 := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		sigma, err2 := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err1 != nil || err2 != nil {
			return trace.LengthDist{}, fmt.Errorf("serve: bad lognormal spec %q", rest)
		}
		return trace.LognormalLengths(median, sigma, maxTok)
	case "hist":
		var buckets []trace.LengthBucket
		for _, pair := range strings.Split(rest, ";") {
			tokStr, wStr, ok := strings.Cut(pair, "=")
			if !ok {
				return trace.LengthDist{}, fmt.Errorf("serve: hist entry %q wants TOK=WEIGHT", pair)
			}
			tok, err1 := strconv.Atoi(strings.TrimSpace(tokStr))
			w, err2 := strconv.ParseFloat(strings.TrimSpace(wStr), 64)
			if err1 != nil || err2 != nil {
				return trace.LengthDist{}, fmt.Errorf("serve: bad hist entry %q", pair)
			}
			buckets = append(buckets, trace.LengthBucket{Tokens: tok, Weight: w})
		}
		return trace.EmpiricalLengths(buckets, maxTok)
	default:
		return trace.LengthDist{}, fmt.Errorf("serve: unknown length distribution %q (const|lognormal|hist)", kind)
	}
}

// applyShapes decorates the trace with per-request lengths when either
// spec flag is set (recorded traces included — shaping a replayed arrival
// process is a supported way to stress a trace). The description gains the
// shape summary.
func (tf traceFlags) applyShapes(reqs []trace.Request, desc string) ([]trace.Request, string, error) {
	prompt, err := parseLengthDist(*tf.promptLen, *tf.shapeMax)
	if err != nil {
		return nil, "", err
	}
	output, err := parseLengthDist(*tf.outLen, *tf.shapeMax)
	if err != nil {
		return nil, "", err
	}
	if prompt.IsZero() && output.IsZero() {
		return reqs, desc, nil
	}
	// Decorrelate the shape stream from the arrival stream: both are
	// seeded from -seed, but reusing the identical source would make
	// request lengths a deterministic function of the same uniforms that
	// shaped the inter-arrival gaps.
	reqs = trace.WithShapes(reqs, prompt, output, *tf.seed^0x73686170)
	part := func(name, spec string) string {
		if spec == "" {
			return name + " schema-const"
		}
		return name + " " + spec
	}
	return reqs, fmt.Sprintf("%s, shapes: %s, %s (clamp %d)",
		desc, part("prompt", *tf.promptLen), part("out", *tf.outLen), *tf.shapeMax), nil
}

// build materializes the trace. rate0 is the auto mean rate when -rate is
// unset; perRequest is the schema's retrieved-chunks-per-request, used by
// the reuse decorators. The description is human-readable for the preamble.
func (tf traceFlags) build(rate0 float64, perRequest int) ([]trace.Request, string, error) {
	if *tf.tracePath != "" {
		reqs, err := trace.Load(*tf.tracePath)
		if err != nil {
			return nil, "", err
		}
		if len(reqs) == 0 {
			return nil, "", fmt.Errorf("serve: trace file %s is empty", *tf.tracePath)
		}
		reqs, desc, err := tf.applyShapes(reqs, fmt.Sprintf("%d requests from %s", len(reqs), *tf.tracePath))
		if err != nil {
			return nil, "", err
		}
		reqs, desc, err = tf.applyReuse(reqs, desc, perRequest)
		if err != nil {
			return nil, "", err
		}
		// -save-trace alongside -trace re-persists the loaded trace
		// (format conversion, normalization, added shapes/reuse tags).
		if *tf.saveTrace != "" {
			if err := trace.Save(*tf.saveTrace, reqs); err != nil {
				return nil, "", err
			}
		}
		return reqs, desc, nil
	}
	rate := *tf.rate
	if rate <= 0 {
		rate = rate0
	}
	var (
		reqs []trace.Request
		desc string
		err  error
	)
	switch strings.ToLower(*tf.arrivals) {
	case "poisson":
		reqs, err = trace.Poisson(*tf.n, rate, *tf.seed)
		desc = fmt.Sprintf("%d Poisson arrivals at %.1f req/s", *tf.n, rate)
	case "burst":
		reqs = trace.Burst(*tf.n)
		desc = fmt.Sprintf("burst of %d requests", *tf.n)
	case "diurnal":
		reqs, err = trace.Diurnal(*tf.n, rate, *tf.amplitude, *tf.period, *tf.seed)
		desc = fmt.Sprintf("%d diurnal arrivals, base %.1f req/s, amplitude %.2f, period %.0fs",
			*tf.n, rate, *tf.amplitude, *tf.period)
	case "mmpp":
		rates := []float64{0.2 * rate, 2 * rate}
		if *tf.mmppRates != "" {
			rates = rates[:0]
			for _, f := range strings.Split(*tf.mmppRates, ",") {
				r, perr := strconv.ParseFloat(strings.TrimSpace(f), 64)
				if perr != nil {
					return nil, "", fmt.Errorf("serve: bad -mmpp-rates entry %q", f)
				}
				rates = append(rates, r)
			}
		}
		reqs, err = trace.MMPP(*tf.n, rates, *tf.sojourn, *tf.seed)
		desc = fmt.Sprintf("%d MMPP arrivals, states %v req/s, sojourn %.0fs", *tf.n, rates, *tf.sojourn)
	case "gamma":
		reqs, err = trace.Gamma(*tf.n, rate, *tf.shape, *tf.seed)
		desc = fmt.Sprintf("%d Gamma arrivals at %.1f req/s, shape %.2f", *tf.n, rate, *tf.shape)
	default:
		return nil, "", fmt.Errorf("serve: unknown -arrivals %q (poisson|burst|diurnal|mmpp|gamma)", *tf.arrivals)
	}
	if err != nil {
		return nil, "", err
	}
	if len(reqs) == 0 {
		return nil, "", fmt.Errorf("serve: empty trace (need -n > 0 or a non-empty -trace file)")
	}
	reqs, desc, err = tf.applyShapes(reqs, desc)
	if err != nil {
		return nil, "", err
	}
	reqs, desc, err = tf.applyReuse(reqs, desc, perRequest)
	if err != nil {
		return nil, "", err
	}
	if *tf.saveTrace != "" {
		if err := trace.Save(*tf.saveTrace, reqs); err != nil {
			return nil, "", err
		}
	}
	return reqs, desc, nil
}

// runServe implements `rago serve`: optimize the workload, then either
// replay an open-loop trace through one frontier point's live runtime, or
// (with -controller) put the SLO-aware online controller in charge of a
// plan library built from the whole frontier.
func runServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	wf := addWorkloadFlags(fs)
	tf := addTraceFlags(fs)
	var (
		point        = fs.String("point", "maxqps", "frontier point to serve: maxqps|minttft|<index>")
		speedup      = fs.Float64("speedup", 0, "virtual seconds served per wall second (0 = auto, targeting ~10s wall)")
		flush        = fs.Float64("flush", 0.05, "partial-batch flush timeout in virtual seconds (0 = dispatch partial batches immediately)")
		maxInflight  = fs.Int("max-inflight", 0, "admission bound; arrivals beyond it are shed (0 = admit all)")
		jsonOut      = fs.Bool("json", false, "print the full report as JSON on stdout (preamble goes to stderr)")
		metricsAddr  = fs.String("metrics-addr", "", "serve streaming metrics on this address (/window, /stream SSE, /debug/vars, /debug/pprof/); \":0\" picks a free port")
		spanTrace    = fs.String("span-trace", "", "write a Chrome trace_event JSON of the replay to this file (load in https://ui.perfetto.dev)")
		windowEvery  = fs.Float64("window-every", 2, "stream a telemetry window snapshot onto the bus every this many virtual seconds (with -metrics-addr)")
		cacheTokens  = fs.Int("cache-tokens", 0, "prefix/KV cache token budget over retrieved chunks (0 = no prefix cache; pair with -doc-zipf so requests carry chunk tags)")
		cacheAnswers = fs.Int("cache-answers", 0, "exact-match answer cache entries short-circuiting repeated requests (0 = no answer tier)")
		cacheGain    = fs.Float64("cache-gain", 0, "controller: discount the capacity target by 1/(1+gain*hit-rate) (0 = cache-blind)")
		batchPolicy  = fs.String("batch-policy", "fifo", "prefix batch-formation policy: fifo|bucketed|sorted")
		chunkPrefill = fs.Int("chunk-prefill", 0, "chunked-prefill quantum in tokens (0 = off): prefix batches pad to the quantum instead of the batch max")

		dbVectors = fs.Int("db", 0, "build a real IVF-PQ index of this many vectors on the retrieval path (0 = model-paced only)")
		dbDim     = fs.Int("db-dim", 64, "real index dimensionality")
		k         = fs.Int("k", 10, "neighbors per real query")
		nprobe    = fs.Int("nprobe", 8, "probed cells per real query")
		shards    = fs.Int("shards", 0, "shard the real index across this many scatter-gather shards (requires -db; 0/1 = single index)")
		replicas  = fs.Int("replicas", 1, "replicas per shard in the sharded retrieval tier")
		nprobes   = fs.String("nprobes", "", "comma-separated nprobe values the schedule search enumerates as knobs (0 = tier base; empty = base only)")
		fanouts   = fs.String("fanouts", "", "comma-separated shard-fanout values the schedule search enumerates (0 = all shards; empty = all shards only)")

		controller = fs.Bool("controller", false, "run the SLO-aware online controller over a plan library instead of one static schedule")
		sloTTFT    = fs.Float64("slo-ttft", 1.0, "controller: p99 TTFT objective in virtual seconds")
		sloTPOT    = fs.Float64("slo-tpot", 0, "controller: p99 TPOT objective in virtual seconds (0 = unbounded)")
		ctrlWindow = fs.Float64("ctrl-window", 30, "controller: telemetry window in virtual seconds")
		ctrlTick   = fs.Float64("ctrl-interval", 10, "controller: decision interval in virtual seconds")
		headroom   = fs.Float64("headroom", 1.25, "controller: capacity margin over the observed arrival rate")
		holddown   = fs.Float64("holddown", 0, "controller: minimum virtual seconds between scale-downs (0 = 3 intervals)")
		minRecall  = fs.Float64("min-recall", 0, "controller: recall@k floor plan switches respect under overload (0 = no floor)")
	)
	fs.Parse(args)

	schema, cluster, err := wf.load()
	if err != nil {
		log.Fatal(err)
	}

	// Preamble goes to stderr under -json so stdout stays machine-readable.
	info := os.Stdout
	if *jsonOut {
		info = os.Stderr
	}

	pol, err := engine.ParseBatchPolicy(*batchPolicy)
	if err != nil {
		log.Fatal(err)
	}
	if *chunkPrefill < 0 {
		log.Fatal("-chunk-prefill must be non-negative")
	}

	npList, err := parseIntList("-nprobes", *nprobes)
	if err != nil {
		log.Fatal(err)
	}
	foList, err := parseIntList("-fanouts", *fanouts)
	if err != nil {
		log.Fatal(err)
	}
	if *shards > 1 && *dbVectors <= 0 {
		log.Fatal("-shards needs a real index: set -db")
	}
	if *dbVectors > 0 && *shards <= 1 && (len(npList) > 0 || len(foList) > 0) {
		log.Fatal("-nprobes/-fanouts against a real index need -shards > 1 (the single-index path serves at the fixed -nprobe)")
	}

	fmt.Fprintf(info, "workload: %s\n", schema.Name)
	fmt.Fprintf(info, "cluster:  %d hosts x %d %s = %d XPUs\n", cluster.Hosts, cluster.Host.XPUsPerHost, cluster.Chip.Name, cluster.XPUs())

	opts := serve.Options{Speedup: *speedup, FlushTimeout: *flush, MaxInFlight: *maxInflight}
	if *flush == 0 {
		opts.FlushTimeout = -1 // Options semantics: negative = immediate
	}

	// Chunks per request: what one retrieval round appends to the prompt.
	perRequest := schema.NeighborsPerQuery * schema.QueriesPerRetrieval
	if perRequest < 1 {
		perRequest = 1
	}
	var cacheCfg *cache.Config
	if *cacheTokens > 0 || *cacheAnswers > 0 {
		cfg := cache.Config{PrefixTokens: *cacheTokens, ChunkTokens: schema.ChunkTokens, AnswerEntries: *cacheAnswers}
		c, err := cache.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		opts.Cache = c
		cacheCfg = &cfg
	}

	// Observability wiring: one bus feeds the optional metrics endpoint
	// and the optional span tracer; with neither flag the runtime keeps
	// its nil-bus zero-cost fast path.
	var tracer *obs.Tracer
	if *metricsAddr != "" || *spanTrace != "" {
		bus := obs.NewBus()
		opts.Bus = bus
		opts.WindowEvery = *windowEvery
		if *metricsAddr != "" {
			msrv, err := obs.NewMetricsServer(bus, *metricsAddr)
			if err != nil {
				log.Fatal(err)
			}
			defer msrv.Close()
			fmt.Fprintf(info, "metrics:  http://%s  (/window /stream /debug/vars /debug/pprof/)\n", msrv.Addr())
		}
		if *spanTrace != "" {
			tracer = obs.NewTracer()
			if err := tracer.Attach(bus, 0); err != nil {
				log.Fatal(err)
			}
		}
	}
	// flushTrace renders the recorded spans once the replay drains; both
	// the static and the controlled paths call it before printing reports.
	flushTrace := func() {
		if tracer == nil {
			return
		}
		tracer.Close()
		f, err := os.Create(*spanTrace)
		if err != nil {
			log.Fatal(err)
		}
		if err := tracer.WriteChromeTrace(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(info, "span trace: wrote %s (%d events, %d dropped) — load in https://ui.perfetto.dev\n",
			*spanTrace, len(tracer.Events()), tracer.Dropped())
	}
	var (
		sharded   *vectordb.Sharded
		recallMod *retrieval.RecallModel
	)
	if *dbVectors > 0 {
		fmt.Fprintf(info, "building IVF-PQ index: %d vectors, dim %d ...\n", *dbVectors, *dbDim)
		data := vectordb.GenClustered(*dbVectors, *dbDim, 64, 0.4, *tf.seed)
		ix, err := vectordb.BuildIVFPQ(data, 128, *dbDim/2, *tf.seed)
		if err != nil {
			log.Fatal(err)
		}
		if *shards > 1 {
			sharded, err = vectordb.NewSharded(ix, *shards, *replicas)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(info, "sharding: %d shards x %d replicas; calibrating recall@%d ...\n", *shards, *replicas, *k)
			recallMod, err = calibratedRecallModel(sharded, data, *dbDim, *k, npList, foList, *tf.seed)
			if err != nil {
				log.Fatal(err)
			}
			opts.Sharded = sharded
			opts.SearchK = *k
		} else {
			kk, np := *k, *nprobe
			opts.Searcher = func(queries [][]float32) ([][]vectordb.Result, error) {
				return ix.SearchBatch(queries, kk, np)
			}
		}
		opts.QueryDim = *dbDim
		opts.QuerySeed = *tf.seed
	}

	// The optimizer runs after the substrate wiring so a sharded tier's
	// measured recall surface and merge costs price the frontier; the knob
	// lists make nprobe and shard-fanout schedule dimensions of the search.
	coreOpts := core.DefaultOptions(cluster)
	coreOpts.NProbes = npList
	coreOpts.ShardFanouts = foList
	o, err := core.NewOptimizer(schema, coreOpts)
	if err != nil {
		log.Fatal(err)
	}
	if sharded != nil {
		o.Prof.Shards = sharded.Shards()
		o.Prof.RecallMod = recallMod
	}
	front := o.Optimize()
	if len(front) == 0 {
		log.Fatal("no feasible schedule under the given resources")
	}
	// Stamp the requested formation dimensions onto every frontier point
	// and re-price it (chunking changes the compiled prefix cost; the
	// policy re-prices only shaped traffic).
	if pol != engine.PolicyFIFO || *chunkPrefill > 0 {
		kept := front[:0]
		for _, p := range front {
			p.Item.FormPolicy = pol
			p.Item.ChunkQuantum = *chunkPrefill
			if m, ok := o.Asm.Evaluate(p.Item); ok {
				p.Metrics = m
				kept = append(kept, p)
			}
		}
		front = kept
		if len(front) == 0 {
			log.Fatal("no frontier schedule is feasible under the requested batch formation")
		}
	}

	if *controller {
		runControlled(o, front, tf, opts, info, *jsonOut, control.SLO{TTFT: *sloTTFT, TPOT: *sloTPOT},
			control.Config{Window: *ctrlWindow, Interval: *ctrlTick, Headroom: *headroom, HoldDown: *holddown,
				CacheGain: *cacheGain, MinRecall: *minRecall},
			flushTrace, perRequest, cacheCfg)
		return
	}

	chosen, err := pickPoint(front, *point)
	if err != nil {
		log.Fatal(err)
	}
	reqs, desc, err := tf.build(1.5*chosen.Metrics.QPS, perRequest)
	if err != nil {
		log.Fatal(err)
	}

	if opts.Speedup <= 0 {
		opts.Speedup = autoSpeedup(reqs, chosen.Metrics.QPS)
	}

	pipe, err := pipeline.Build(schema)
	if err != nil {
		log.Fatal(err)
	}
	prof := stageperf.New(cluster.Chip, cluster.Host, schema)
	rt, err := serve.New(pipe, prof, chosen.Item, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Fprintf(info, "schedule: %s\n", chosen.Item.Describe(o.Pipe))
	fmt.Fprintf(info, "analytic: %s\n", chosen.Metrics)
	if shapes := traceShapes(reqs); shapes != nil {
		fmt.Fprintf(info, "analytic (shape-weighted): %s\n", rt.Plan().ShapeMetrics(shapes))
	}
	if cacheCfg != nil && cacheCfg.PrefixTokens > 0 {
		// Cache-aware analytic reference: replay the tagged trace through
		// a fresh cache instance to get the per-request prefix credits the
		// runtime's own cache will grant, then recost with them.
		credits, cst, cerr := cache.ReplayCredits(*cacheCfg, reqs, schema.PrefixTokens)
		if cerr != nil {
			log.Fatal(cerr)
		}
		fmt.Fprintf(info, "analytic (cache-aware): %s\n", rt.Plan().CachedMetrics(traceShapes(reqs), credits))
		fmt.Fprintf(info, "analytic replay %s\n", cst)
	}
	fmt.Fprintf(info, "trace:    %s\n", desc)
	fmt.Fprintf(info, "pacing:   speedup %.0fx\n\n", opts.Speedup)

	rep, err := rt.Serve(reqs)
	if err != nil {
		log.Fatal(err)
	}
	flushTrace()
	if *jsonOut {
		printJSON(rep)
		return
	}
	fmt.Print(rep)
}

// runControlled builds the SLO-filtered plan library from the frontier and
// lets the online controller drive the replay, then cross-checks the
// switching decisions in the discrete-event simulator.
func runControlled(o *core.Optimizer, front []core.SchedulePoint, tf traceFlags,
	opts serve.Options, info *os.File, jsonOut bool, slo control.SLO, cfg control.Config,
	flushTrace func(), perRequest int, cacheCfg *cache.Config) {
	lib, err := control.NewLibrary(o, front, slo)
	if err != nil {
		log.Fatal(err)
	}
	top := lib.Entries[len(lib.Entries)-1]
	reqs, desc, err := tf.build(0.5*top.QPS, perRequest)
	if err != nil {
		log.Fatal(err)
	}
	// On heterogeneous traffic, re-price the capacity staircase by each
	// plan's policy-aware expected pad efficiency before the controller
	// locks onto it: a formation policy that wastes less prefill earns
	// proportionally more admitted load per chip.
	if shapes := traceShapes(reqs); shapes != nil {
		lib.WeightByShapes(shapes)
		top = lib.Entries[len(lib.Entries)-1]
	}
	cfg.SLO = slo
	ctl, err := control.NewController(lib, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if opts.Speedup <= 0 {
		opts.Speedup = autoSpeedup(reqs, top.QPS)
	}

	fmt.Fprintf(info, "library:  %d SLO-feasible plans (TTFT<=%.2fs):\n", len(lib.Entries), slo.TTFT)
	for i, e := range lib.Entries {
		if e.PadEff > 0 {
			fmt.Fprintf(info, "  [%d] %6.1f QPS  %3d chips  pad-eff %.2f  %s\n", i, e.QPS, e.Chips, e.PadEff, e.Schedule)
			continue
		}
		fmt.Fprintf(info, "  [%d] %6.1f QPS  %3d chips  %s\n", i, e.QPS, e.Chips, e.Schedule)
	}
	fmt.Fprintf(info, "trace:    %s\n", desc)
	fmt.Fprintf(info, "pacing:   speedup %.0fx\n\n", opts.Speedup)

	res, err := ctl.Run(opts, reqs)
	if err != nil {
		log.Fatal(err)
	}
	flushTrace()

	// The discrete-event replay of the same decisions validates the live
	// run; the simulator applies the same admission bound — and, when the
	// runtime served with a cache, mirrors it with its own instance — so
	// the cross-check runs whether or not -max-inflight shed arrivals.
	var simRes control.SimResult
	if cacheCfg != nil {
		simRes, err = control.SimReplayCached(lib, res, reqs, opts.FlushTimeout, opts.MaxInFlight, *cacheCfg)
	} else {
		simRes, err = control.SimReplay(lib, res, reqs, opts.FlushTimeout, opts.MaxInFlight)
	}
	if err != nil {
		log.Fatal(err)
	}

	if jsonOut {
		printJSON(struct {
			*control.Result
			SimReplay *control.SimResult `json:"sim_replay,omitempty"`
		}{res, &simRes})
		return
	}
	fmt.Print(res)
	fmt.Printf("sim replay: %d completed (%d rejected), QPS %.2f (runtime/sim ratio %.2f)\n",
		simRes.Completed, simRes.Rejected, simRes.QPS, res.Report.SustainedQPS/simRes.QPS)
}

// traceShapes extracts the per-request shapes, or nil when the whole
// trace runs at the schema constants (no shape-weighted reference needed).
func traceShapes(reqs []trace.Request) []engine.Shape {
	shaped := false
	out := make([]engine.Shape, len(reqs))
	for i, r := range reqs {
		out[i] = engine.Shape{PromptTokens: r.PromptTokens, OutputTokens: r.OutputTokens}
		shaped = shaped || r.Shaped()
	}
	if !shaped {
		return nil
	}
	return out
}

// parseIntList parses a comma-separated knob list ("2,8,32") into ints;
// an empty spec is an empty list.
func parseIntList(name, spec string) ([]int, error) {
	if spec == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("serve: bad %s entry %q", name, f)
		}
		out = append(out, n)
	}
	return out, nil
}

// knobAxis maps searched knob values to the ascending, deduplicated axis
// of effective values a recall calibration grids over: non-positive (and,
// when max > 0, over-max) entries mean the default, which is always on
// the axis so the base configuration interpolates exactly.
func knobAxis(vals []int, def, max int) []int {
	set := map[int]bool{def: true}
	for _, v := range vals {
		if v <= 0 || (max > 0 && v > max) {
			v = def
		}
		set[v] = true
	}
	axis := make([]int, 0, len(set))
	for v := range set {
		axis = append(axis, v)
	}
	sort.Ints(axis)
	return axis
}

// calibratedRecallModel measures the sharded tier's recall@k against exact
// ground truth (a flat index over the same vectors) at every effective
// (nprobe, fanout) the schedule search can visit, and wraps the grid in
// the interpolating surface the analytic planner prices recall from. The
// query sample matches the serving path's synthesized query distribution.
func calibratedRecallModel(sh *vectordb.Sharded, data [][]float32, dim, k int, nprobes, fanouts []int, seed int64) (*retrieval.RecallModel, error) {
	flat := vectordb.NewFlat(dim)
	if err := flat.Add(data...); err != nil {
		return nil, err
	}
	// Decorrelate the calibration sample from the arrival stream (same
	// rationale as applyShapes' xor).
	rng := rand.New(rand.NewSource(seed ^ 0x726563))
	queries := make([][]float32, 64)
	for i := range queries {
		v := make([]float32, dim)
		for d := range v {
			v[d] = rng.Float32() * 10
		}
		queries[i] = v
	}
	npAxis := knobAxis(nprobes, retrieval.BaseNProbe, 0)
	foAxis := knobAxis(fanouts, sh.Shards(), sh.Shards())
	grid, err := sh.CalibrateRecall(flat, queries, k, npAxis, foAxis)
	if err != nil {
		return nil, err
	}
	return retrieval.NewRecallModel(npAxis, foAxis, grid)
}

// autoSpeedup compresses the expected makespan into ~10s wall. The run
// lasts as long as the slower of serving capacity and arrivals.
func autoSpeedup(reqs []trace.Request, qps float64) float64 {
	makespan := float64(len(reqs)) / qps
	if span := reqs[len(reqs)-1].Arrival; span > makespan {
		makespan = span
	}
	sp := makespan / 10.0
	if sp < 1 {
		sp = 1
	}
	return sp
}

func printJSON(v interface{}) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Fatal(err)
	}
}

// pickPoint resolves the -point flag against the frontier.
func pickPoint(front []core.SchedulePoint, sel string) (core.SchedulePoint, error) {
	switch sel {
	case "maxqps":
		p, ok := perf.MaxQPSPerChip(front)
		if !ok {
			return core.SchedulePoint{}, fmt.Errorf("serve: empty frontier")
		}
		return p, nil
	case "minttft":
		p, ok := perf.MinTTFT(front)
		if !ok {
			return core.SchedulePoint{}, fmt.Errorf("serve: empty frontier")
		}
		return p, nil
	default:
		i, err := strconv.Atoi(sel)
		if err != nil || i < 0 || i >= len(front) {
			return core.SchedulePoint{}, fmt.Errorf("serve: -point must be maxqps, minttft, or an index in [0, %d)", len(front))
		}
		return front[i], nil
	}
}
