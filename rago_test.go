package rago

// End-to-end tests of the public API surface: the facade must expose a
// complete, coherent workflow — schema in, Pareto frontier and schedules
// out — plus the simulators and the vector-search substrate.

import (
	"math"
	"testing"
)

func TestPublicAPIOptimizeWorkflow(t *testing.T) {
	schema := CaseI(8e9, 1)
	opts := DefaultOptions(DefaultCluster())
	opts.NormalizeChips = DefaultCluster().XPUs()

	front, err := Optimize(schema, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(front) < 3 {
		t.Fatalf("frontier too small: %d", len(front))
	}
	best, ok := MaxQPSPerChip(front)
	if !ok {
		t.Fatal("no max-QPS point")
	}
	fast, ok := MinTTFT(front)
	if !ok {
		t.Fatal("no min-TTFT point")
	}
	if fast.Metrics.TTFT > best.Metrics.TTFT {
		t.Errorf("min-TTFT point (%v) slower than max-QPS point (%v)", fast.Metrics.TTFT, best.Metrics.TTFT)
	}
	pipe, err := BuildPipeline(schema)
	if err != nil {
		t.Fatal(err)
	}
	if desc := best.Item.Describe(pipe); desc == "" {
		t.Errorf("empty schedule description")
	}
}

func TestPublicAPIBaselineComparison(t *testing.T) {
	schema := CaseII(70e9, 1_000_000)
	opts := DefaultOptions(LargeCluster())
	front, err := Optimize(schema, opts)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Baseline(schema, opts)
	if err != nil {
		t.Fatal(err)
	}
	rb, _ := MaxQPSPerChip(front)
	bb, _ := MaxQPSPerChip(base)
	gain := rb.Metrics.QPSPerChip / bb.Metrics.QPSPerChip
	if gain < 1.3 || gain > 2.3 {
		t.Errorf("headline Case II gain = %.2fx, want ~1.7x", gain)
	}
}

func TestPublicAPIServeWorkflow(t *testing.T) {
	// The full loop the serving runtime exists for: optimize, pick a
	// frontier point, replay an overdriving trace through the live
	// engine, and check the measured throughput tracks the point.
	schema := CaseI(8e9, 1)
	cluster := DefaultCluster()
	front, err := Optimize(schema, DefaultOptions(cluster))
	if err != nil {
		t.Fatal(err)
	}
	best, ok := MaxQPSPerChip(front)
	if !ok {
		t.Fatal("no max-QPS point")
	}
	rt, err := NewRuntime(schema, best.Item, cluster, ServeOptions{Speedup: 1500})
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := PoissonTrace(1500, 1.5*best.Metrics.QPS, 17)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 1500 {
		t.Fatalf("completed %d of 1500", rep.Completed)
	}
	if ratio := rep.SustainedQPS / best.Metrics.QPS; ratio < 0.8 || ratio > 1.2 {
		t.Errorf("served QPS %.2f vs frontier point %.2f (ratio %.2f)", rep.SustainedQPS, best.Metrics.QPS, ratio)
	}
	if rep.TTFT.P99 < rep.TTFT.P50 || rep.TTFT.P50 <= 0 {
		t.Errorf("TTFT quantiles implausible: %+v", rep.TTFT)
	}
}

func TestPublicAPISchemaJSON(t *testing.T) {
	orig := CaseIV(70e9)
	data, err := EncodeSchemaJSON(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeSchemaJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back != orig {
		t.Errorf("JSON round trip mismatch")
	}
}

func TestPublicAPIIterativeSim(t *testing.T) {
	res, err := RunIterative(IterativeConfig{
		DecodeBatch:      64,
		IterBatch:        64,
		DecodeTokens:     256,
		RetrievalsPerSeq: 3,
		StepTime:         0.01,
		Sequences:        200,
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NormalizedLatency < 1.8 || res.NormalizedLatency > 3.8 {
		t.Errorf("64/64 idleness = %.2f, want ~2.8 (paper 2.77)", res.NormalizedLatency)
	}
}

func TestPublicAPIVectorSearch(t *testing.T) {
	data := GenClustered(2000, 16, 8, 0.5, 1)
	flat := NewFlatIndex(16)
	if err := flat.Add(data...); err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIVFPQ(data, 32, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	q := GenClustered(1, 16, 8, 0.5, 2)[0]
	truth, err := flat.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.Search(q, 5, 32)
	if err != nil {
		t.Fatal(err)
	}
	if r := Recall(truth, got, 5); r < 0.4 {
		t.Errorf("full-probe recall = %v, want reasonable approximation", r)
	}
}

func TestPublicAPITraces(t *testing.T) {
	reqs, err := PoissonTrace(100, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 100 {
		t.Fatalf("got %d requests", len(reqs))
	}
	burst := BurstTrace(8)
	for _, r := range burst {
		if r.Arrival != 0 {
			t.Errorf("burst request arrives at %v", r.Arrival)
		}
	}
}

func TestPublicAPIHardwareCatalog(t *testing.T) {
	for _, x := range []XPU{XPUA, XPUB, XPUC} {
		if err := x.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if DefaultCluster().XPUs() != 64 || LargeCluster().XPUs() != 128 {
		t.Errorf("cluster presets changed: %d / %d", DefaultCluster().XPUs(), LargeCluster().XPUs())
	}
	if EPYCHost.Cores != 96 {
		t.Errorf("EPYC host cores = %d", EPYCHost.Cores)
	}
}

func TestPublicAPIMetricsSanity(t *testing.T) {
	// Metrics from the facade behave like perf metrics.
	m := Metrics{TTFT: 0.1, TPOT: 0.01, QPS: 10, QPSPerChip: 1}
	if !m.Valid() {
		t.Errorf("valid metrics rejected")
	}
	bad := Metrics{TTFT: math.Inf(1)}
	if bad.Valid() {
		t.Errorf("infinite TTFT accepted")
	}
}

func TestPublicAPIHeterogeneousShapes(t *testing.T) {
	// The workload-realism loop: shape a trace with heavy-tailed lengths,
	// compile a plan, get the shape-weighted analytical reference, serve,
	// and read per-shape buckets plus padding waste from the report.
	schema := CaseI(8e9, 1)
	cluster := DefaultCluster()
	// A fixed schedule with a fast decode tier, so the completion span is
	// dominated by serving, not by the last sequences' generations (the
	// span-based QPS estimate needs span >> mean generation time).
	sched := Schedule{
		Groups:           []GroupSchedule{{Stages: []int{1}, Chips: 16, Batch: 8}},
		RetrievalServers: 16,
		RetrievalBatch:   8,
		DecodeChips:      16,
		DecodeBatch:      128,
		DecodeReplicas:   4,
	}
	plan, err := CompilePlan(schema, sched, cluster)
	if err != nil {
		t.Fatal(err)
	}

	prompt, err := LognormalLengths(512, 0.8, 4096)
	if err != nil {
		t.Fatal(err)
	}
	output, err := LognormalLengths(256, 0.7, 1024)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	base, err := PoissonTrace(n, 1, 17)
	if err != nil {
		t.Fatal(err)
	}
	reqs := WithShapes(base, prompt, output, 19)
	shapes := make([]Shape, len(reqs))
	for i, r := range reqs {
		shapes[i] = Shape{PromptTokens: r.PromptTokens, OutputTokens: r.OutputTokens}
	}
	want := plan.ShapeMetrics(shapes)
	if !(want.QPS < plan.Metrics.QPS) {
		t.Fatalf("shape-weighted QPS %.2f should undercut constant %.2f", want.QPS, plan.Metrics.QPS)
	}
	for i := range reqs {
		reqs[i].Arrival /= 1.5 * want.QPS
	}

	rt, err := NewRuntime(schema, sched, cluster, ServeOptions{Speedup: (n / want.QPS) / 4.0})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != n {
		t.Fatalf("completed %d of %d", rep.Completed, n)
	}
	if ratio := rep.SustainedQPS / want.QPS; ratio < 0.85 || ratio > 1.15 {
		t.Errorf("served QPS %.2f vs shape-weighted reference %.2f (ratio %.2f)", rep.SustainedQPS, want.QPS, ratio)
	}
	if len(rep.Shapes) < 2 || rep.PadWaste <= 0 {
		t.Errorf("report missing shape artifacts: %d buckets, pad waste %.3f", len(rep.Shapes), rep.PadWaste)
	}

	// Degenerate sampler inputs are rejected descriptively.
	if _, err := ConstantLengths(0); err == nil {
		t.Error("0-token constant length should be rejected")
	}
	if _, err := LognormalLengths(1024, 0.5, 512); err == nil {
		t.Error("median beyond the clamp should be rejected")
	}
}
