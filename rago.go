// Package rago is a systematic performance optimizer for retrieval-
// augmented generation (RAG) serving, reproducing "RAGO: Systematic
// Performance Optimization for Retrieval-Augmented Generation Serving"
// (ISCA 2025).
//
// A RAG serving workload is described by a Schema (the paper's RAGSchema
// abstraction): which optional pipeline components exist — database
// encoder, query rewriter, reranker, iterative retrieval — and their
// configurations (model sizes, database size, queries per retrieval,
// retrieval frequency, sequence lengths). Given a Schema and a hardware
// Cluster, Optimize searches task placements, resource allocations, and
// batching policies, returning the Pareto frontier over time-to-first-
// token (TTFT), time-per-output-token (TPOT), and queries-per-second per
// chip, together with the schedule realizing each point.
//
// Quick start:
//
//	schema := rago.CaseII(70e9, 1_000_000) // long-context RAG, 70B LLM
//	front, err := rago.Optimize(schema, rago.DefaultOptions(rago.LargeCluster()))
//	if err != nil { ... }
//	best, _ := rago.MaxQPSPerChip(front)
//	fmt.Println(best.Metrics, best.Item)
//
// The performance models underneath (an operator-level XPU roofline
// simulator and a ScaNN-style vector-search cost model), the discrete-
// event validators, and a working IVF-PQ vector-search substrate live in
// the internal packages; this package is the stable surface.
package rago

import (
	"rago/internal/control"
	"rago/internal/core"
	"rago/internal/engine"
	"rago/internal/hw"
	"rago/internal/obs"
	"rago/internal/perf"
	"rago/internal/pipeline"
	"rago/internal/ragschema"
	"rago/internal/serve"
	"rago/internal/sim"
	"rago/internal/stageperf"
	"rago/internal/trace"
	"rago/internal/vectordb"
)

// Workload abstraction (the paper's RAGSchema, §3.2).
type (
	// Schema describes one RAG serving workload.
	Schema = ragschema.Schema
)

// Preset workloads from Table 3 of the paper.
var (
	// Default is the §4 baseline workload shape for a generative model
	// size, with no optional components.
	Default = ragschema.Default
	// CaseI is hyperscale retrieval: 64B vectors, 1-8 query vectors.
	CaseI = ragschema.CaseI
	// CaseII is long-context processing: a 120M document encoder over a
	// real-time context, tiny brute-force database.
	CaseII = ragschema.CaseII
	// CaseIII is iterative retrieval: 2-8 retrievals per sequence.
	CaseIII = ragschema.CaseIII
	// CaseIV adds an 8B query rewriter and a 120M reranker.
	CaseIV = ragschema.CaseIV
	// CaseV is a multi-source fan-out beyond the paper: the corpus
	// sharded into N indexes queried in parallel, reranked together.
	// Its pipeline is a stage graph, not a linear chain.
	CaseV = ragschema.CaseV
	// LLMOnly is the no-retrieval comparison system of Fig. 5.
	LLMOnly = ragschema.LLMOnly
	// DecodeSchemaJSON parses and validates a Schema from JSON.
	DecodeSchemaJSON = ragschema.DecodeJSON
	// EncodeSchemaJSON renders a Schema as JSON.
	EncodeSchemaJSON = ragschema.EncodeJSON
)

// Hardware catalog (Table 2 of the paper).
type (
	// XPU is a systolic-array accelerator description.
	XPU = hw.XPU
	// CPUHost is a retrieval host server description.
	CPUHost = hw.CPUHost
	// Cluster is a resource pool of hosts and accelerators.
	Cluster = hw.Cluster
)

// Catalog entries and cluster presets.
var (
	// XPUA, XPUB, XPUC are the paper's three accelerator generations
	// (TPU v5e / v4 / v5p class).
	XPUA = hw.XPUA
	XPUB = hw.XPUB
	XPUC = hw.XPUC
	// EPYCHost is the paper's 96-core retrieval host.
	EPYCHost = hw.EPYCHost
	// DefaultCluster is 16 hosts x 4 XPU-C (the §5 environment).
	DefaultCluster = hw.DefaultCluster
	// LargeCluster is 32 hosts x 4 XPU-C (the §7 environment).
	LargeCluster = hw.LargeCluster
)

// Optimizer surface (the paper's RAGO, §6).
type (
	// Options bounds the schedule search.
	Options = core.Options
	// Optimizer runs the search for one workload.
	Optimizer = core.Optimizer
	// Schedule is one complete scheduling decision.
	Schedule = core.Schedule
	// GroupSchedule is the resolved policy for one XPU placement group.
	GroupSchedule = core.GroupSchedule
	// SchedulePoint couples a schedule with its metrics.
	SchedulePoint = core.SchedulePoint
	// Plan is one (placement, allocation) pair.
	Plan = core.Plan
	// Metrics carries TTFT, TPOT, QPS and QPS/chip.
	Metrics = perf.Metrics
	// Pipeline is the stage sequence derived from a Schema.
	Pipeline = pipeline.Pipeline
)

// DefaultOptions returns the search bounds used for all paper
// reproductions on the given cluster.
func DefaultOptions(cluster Cluster) Options { return core.DefaultOptions(cluster) }

// NewOptimizer builds an optimizer; use it when plan-level introspection
// (PlanFrontier, BurstTTFT, BaselineFrontier) is needed.
func NewOptimizer(schema Schema, opts Options) (*Optimizer, error) {
	return core.NewOptimizer(schema, opts)
}

// Optimize searches scheduling policies for schema and returns the Pareto
// frontier with its schedules, sorted by ascending TTFT.
func Optimize(schema Schema, opts Options) ([]SchedulePoint, error) {
	o, err := core.NewOptimizer(schema, opts)
	if err != nil {
		return nil, err
	}
	return o.Optimize(), nil
}

// Baseline evaluates the paper's comparison system (§7.1): an LLM-only
// serving stack extended with the RAG components collocated into its
// prefix tier, chips split 1:1 between prefix and decode.
func Baseline(schema Schema, opts Options) ([]SchedulePoint, error) {
	o, err := core.NewOptimizer(schema, opts)
	if err != nil {
		return nil, err
	}
	return o.BaselineFrontier(), nil
}

// MaxQPSPerChip returns the frontier point with the highest QPS/chip.
func MaxQPSPerChip(front []SchedulePoint) (SchedulePoint, bool) {
	return perf.MaxQPSPerChip(front)
}

// MinTTFT returns the frontier point with the lowest TTFT.
func MinTTFT(front []SchedulePoint) (SchedulePoint, bool) {
	return perf.MinTTFT(front)
}

// BuildPipeline derives the concrete stage graph (Fig. 3; linear for the
// paper's schemas, fan-out for multi-source ones) for a schema;
// Schedule.Describe renders against it.
func BuildPipeline(schema Schema) (Pipeline, error) { return pipeline.Build(schema) }

// ExecutionPlan is a schedule compiled against its pipeline: per-stage
// steps (resource, batch, replicas, profiled latency), per-resource
// occupancies, the iterative loop structure, and the assembled analytical
// metrics. One compiled plan drives the analytical assembler, the
// discrete-event validator, and the live serving runtime alike.
type ExecutionPlan = engine.Plan

// CompilePlan resolves a schedule into the shared execution plan on the
// given cluster's hardware — the exact object the serving runtime
// executes, with a descriptive error when any component is infeasible.
func CompilePlan(schema Schema, sched Schedule, cluster Cluster) (*ExecutionPlan, error) {
	pipe, err := pipeline.Build(schema)
	if err != nil {
		return nil, err
	}
	return engine.Compile(pipe, sched, stageperf.New(cluster.Chip, cluster.Host, schema))
}

// Discrete-event simulation (§5.3 dynamics and schedule validation).
type (
	// IterativeConfig parameterizes the decode-idleness simulation.
	IterativeConfig = sim.IterativeConfig
	// IterativeResult reports measured decode dynamics.
	IterativeResult = sim.IterativeResult
	// ServeSim executes a schedule on a request trace.
	ServeSim = sim.ServeSim
	// ServeResult reports measured serving behaviour.
	ServeResult = sim.ServeResult
	// Request is one trace entry; its PromptTokens/OutputTokens carry the
	// per-request sequence shape (0 = schema constant).
	Request = trace.Request
	// LengthDist is a per-request token-length distribution (constant,
	// lognormal, or empirical histogram), seed-deterministic and clamped.
	LengthDist = trace.LengthDist
	// LengthBucket is one bin of an empirical length histogram.
	LengthBucket = trace.LengthBucket
	// Shape is the padded sequence shape a batch is costed at; see
	// ExecutionPlan.ShapeMetrics for the shape-weighted analytical
	// reference of a heterogeneous trace.
	Shape = engine.Shape
)

// Simulation entry points and trace generators. The non-stationary
// processes (diurnal sinusoid, Markov-modulated bursts, heavy-tailed
// Gamma inter-arrivals) model production RAG traffic for the online
// controller; all are deterministic by seed. Traces persist to JSON or
// CSV files (SaveTrace/LoadTrace, extension-dispatched).
var (
	// RunIterative executes the §5.3 token-level decode simulation.
	RunIterative = sim.RunIterative
	// PoissonTrace generates open-loop arrivals.
	PoissonTrace = trace.Poisson
	// BurstTrace generates a simultaneous burst (§7.2).
	BurstTrace = trace.Burst
	// DiurnalTrace generates a sinusoid-modulated Poisson process.
	DiurnalTrace = trace.Diurnal
	// MMPPTrace generates Markov-modulated (bursty on/off) arrivals.
	MMPPTrace = trace.MMPP
	// GammaTrace generates Gamma inter-arrival (heavy-tailed) arrivals.
	GammaTrace = trace.Gamma
	// SaveTrace and LoadTrace persist traces as .json or .csv files.
	SaveTrace = trace.Save
	LoadTrace = trace.Load
	// WithTriggers decorates a trace with per-request iterative-retrieval
	// positions (§5.3), so the live runtime and the simulators park every
	// sequence at identical tokens.
	WithTriggers = trace.WithTriggers
	// WithShapes decorates a trace with per-request prompt/output lengths
	// drawn from LengthDists — the heavy-tailed request shapes real RAG
	// traffic shows; both executors cost batches at the padded member
	// maximum and free decode slots at each request's own length.
	WithShapes = trace.WithShapes
	// ConstantLengths, LognormalLengths, and EmpiricalLengths construct
	// validated length distributions (degenerate parameters — 0-token
	// outputs, clamps below a token — are rejected descriptively).
	ConstantLengths  = trace.ConstantLengths
	LognormalLengths = trace.LognormalLengths
	EmpiricalLengths = trace.EmpiricalLengths
)

// Serving runtime (a concurrent, goroutine-based engine that executes a
// Schedule from the optimizer for real under open-loop load: one batching
// worker per placement group, continuous-batching decode slots — running
// the §5.3 iterative decode loop live on iterative workloads — wall-clock
// pacing of profiled stage latencies, admission control, and an online
// p50/p95/p99 metrics collector).
type (
	// Runtime is a live serving engine for one schedule. Single-use:
	// build, Serve one trace, read the Report.
	Runtime = serve.Runtime
	// ServeOptions configures pacing (time compression), batching flush,
	// admission control, and the optional real retrieval substrate.
	ServeOptions = serve.Options
	// ServeReport is the measured latency/throughput report of a replay;
	// on heterogeneous traces it carries per-shape-bucket quantiles
	// (Shapes) and the pad-to-max padding-waste fraction (PadWaste).
	ServeReport = serve.Report
	// ShapeBucketStat is one shape bucket's TTFT/TPOT quantiles.
	ShapeBucketStat = serve.ShapeStat
	// SearchFunc plugs a real vector index (e.g. IVFPQ.SearchBatch) into
	// the runtime's retrieval tier.
	SearchFunc = serve.SearchFunc
)

// NewRuntime builds a serving engine executing sched — typically the Item
// of a frontier point returned by Optimize — for schema on the given
// cluster's hardware generation.
func NewRuntime(schema Schema, sched Schedule, cluster Cluster, opts ServeOptions) (*Runtime, error) {
	pipe, err := pipeline.Build(schema)
	if err != nil {
		return nil, err
	}
	return serve.New(pipe, stageperf.New(cluster.Chip, cluster.Host, schema), sched, opts)
}

// Online control plane (an SLO-aware controller over the serving
// runtime: windowed telemetry, a plan library from the Pareto frontier,
// and live plan switching with drain-and-migrate semantics).
type (
	// TelemetryWindow is a sliding-window snapshot of live serving
	// metrics (arrival rate, windowed p99 TTFT/TPOT, queue depths),
	// pollable mid-replay via Runtime.Telemetry or Server.Telemetry.
	TelemetryWindow = serve.Window
	// Server is a live serving engine that hot-swaps between compiled
	// plans of one pipeline (Switch drains in-flight requests on the
	// old plan while new admissions route to the new one).
	Server = serve.Server
	// ServerReport extends ServeReport with the plan-switching history
	// and chip-second accounting.
	ServerReport = serve.ServerReport
	// SLO is the latency objective the controller enforces.
	SLO = control.SLO
	// PlanLibrary is the controller's menu of SLO-feasible compiled
	// plans, ordered by sustainable QPS and chip cost.
	PlanLibrary = control.Library
	// Controller keeps a Server inside its SLO under time-varying load
	// at minimum chip cost.
	Controller = control.Controller
	// ControlConfig tunes the control loop (window, interval, headroom,
	// hold-down).
	ControlConfig = control.Config
	// ControlResult is a controlled replay's outcome: report, switch
	// events, and chip-seconds versus static peak provisioning.
	ControlResult = control.Result
	// SimReplayResult is the discrete-event replay of a switching
	// history, the reference the live run is validated against.
	SimReplayResult = control.SimResult
)

// NewServer builds a multi-plan serving engine starting on the given
// compiled plan (see CompilePlan).
func NewServer(initial *ExecutionPlan, opts ServeOptions) (*Server, error) {
	return serve.NewServer(initial, opts)
}

// NewPlanLibrary compiles the SLO-feasible subset of a Pareto frontier
// into the controller's plan menu.
func NewPlanLibrary(o *Optimizer, front []SchedulePoint, slo SLO) (*PlanLibrary, error) {
	return control.NewLibrary(o, front, slo)
}

// NewController builds the SLO-aware online controller over a plan
// library; Run replays a trace through a fresh Server, switching plans to
// hold the SLO at minimum chip cost.
func NewController(lib *PlanLibrary, cfg ControlConfig) (*Controller, error) {
	return control.NewController(lib, cfg)
}

// ReplaySwitches re-executes a controlled run's switching decisions in
// the discrete-event validator, applying the same maxInFlight admission
// bound the live run used (0 admits everything); the returned QPS should
// match the live run within the established 15% band.
func ReplaySwitches(lib *PlanLibrary, res *ControlResult, reqs []Request, flushTimeout float64, maxInFlight int) (SimReplayResult, error) {
	return control.SimReplay(lib, res, reqs, flushTimeout, maxInFlight)
}

// Observability: the typed event bus the executors publish onto, the
// span tracer that assembles per-request timelines (exportable as
// Perfetto-loadable Chrome trace JSON), and the streaming metrics
// endpoint (/window, /stream SSE, expvar, pprof).
type (
	// Bus is the bounded fan-out event bus (nil = zero-cost no-op).
	Bus = obs.Bus
	// ObsEvent is one typed observability event.
	ObsEvent = obs.Event
	// Tracer assembles per-request spans from the event stream.
	Tracer = obs.Tracer
	// RequestTrace is one request's assembled span timeline.
	RequestTrace = obs.RequestTrace
	// MetricsServer is the streaming metrics HTTP endpoint.
	MetricsServer = obs.MetricsServer
)

// Observability constructors.
var (
	// NewBus builds an event bus for ServeOptions.Bus / ServeSim.Bus.
	NewBus = obs.NewBus
	// NewTracer builds an empty span tracer (attach it to a Bus).
	NewTracer = obs.NewTracer
	// NewMetricsServer serves streaming metrics from a Bus on an address.
	NewMetricsServer = obs.NewMetricsServer
	// SteadyRate is the peak windowed completion rate over done times.
	SteadyRate = obs.SteadyRate
)

// Vector search substrate (a working IVF-PQ implementation of the
// retrieval tier the paper models analytically).
type (
	// VectorResult is one nearest-neighbor candidate.
	VectorResult = vectordb.Result
	// FlatIndex is exact brute-force kNN.
	FlatIndex = vectordb.FlatIndex
	// IVFPQ is an inverted-file index with product-quantized codes.
	IVFPQ = vectordb.IVFPQ
	// PQ is a product quantizer.
	PQ = vectordb.PQ
)

// Vector search constructors and helpers.
var (
	// NewFlatIndex returns an exact index.
	NewFlatIndex = vectordb.NewFlat
	// BuildIVFPQ trains and populates an IVF-PQ index.
	BuildIVFPQ = vectordb.BuildIVFPQ
	// TrainPQ learns a product quantizer.
	TrainPQ = vectordb.TrainPQ
	// Recall computes recall@k of approximate against exact results.
	Recall = vectordb.Recall
	// GenClustered synthesizes clustered vectors for experiments.
	GenClustered = vectordb.GenClustered
	// GenUniform synthesizes uniform vectors.
	GenUniform = vectordb.GenUniform
)
