module rago

go 1.24
