package rago

// One benchmark per table and figure of the paper, plus ablation
// benchmarks for the design choices DESIGN.md calls out. Each benchmark
// regenerates its artifact through the internal/bench harness and reports
// the headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper's evaluation end to end. EXPERIMENTS.md records the
// paper-vs-measured comparison for every artifact.

import (
	"testing"

	"rago/internal/bench"
	"rago/internal/core"
	"rago/internal/hw"
	"rago/internal/model"
	"rago/internal/perf"
	"rago/internal/pipeline"
	"rago/internal/ragschema"
	"rago/internal/roofline"
	"rago/internal/stageperf"
	"rago/internal/vectordb"
	"rago/internal/xpusim"
)

func reportMax(b *testing.B, name string, s bench.Series) {
	best := 0.0
	for _, y := range s.Y {
		if y > best {
			best = y
		}
	}
	b.ReportMetric(best, name)
}

// BenchmarkTable2XPUCatalog exercises the hardware catalog (Table 2).
func BenchmarkTable2XPUCatalog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, x := range hw.XPUGenerations() {
			if err := x.Validate(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable3Schemas builds the four case-study pipelines (Table 3).
func BenchmarkTable3Schemas(b *testing.B) {
	schemas := []ragschema.Schema{
		ragschema.CaseI(8e9, 1), ragschema.CaseII(70e9, 1_000_000),
		ragschema.CaseIII(8e9, 4), ragschema.CaseIV(70e9),
	}
	for i := 0; i < b.N; i++ {
		for _, s := range schemas {
			if _, err := pipeline.Build(s); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFigure5 regenerates the RAG-vs-LLM-only comparison.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := bench.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportMax(b, "rag8B-qps/chip", series[2])
			reportMax(b, "llm70B-qps/chip", series[3])
		}
	}
}

// BenchmarkFigure6 regenerates the query-count sensitivity (8B model).
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := bench.Figure6QPS(8e9)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := bench.Figure6Breakdown(8e9); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportMax(b, "q1-qps/chip", series[0])
			reportMax(b, "q8-qps/chip", series[3])
		}
	}
}

// BenchmarkFigure7a regenerates the XPU-generation sensitivity.
func BenchmarkFigure7a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure7a(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7b regenerates the scan-fraction sensitivity.
func BenchmarkFigure7b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure7b(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7c regenerates the sequence-length heatmap.
func BenchmarkFigure7c(b *testing.B) {
	var corner float64
	for i := 0; i < b.N; i++ {
		cells, err := bench.Figure7c()
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			if c.Row == "decode=128" && c.Col == "prefix=128" {
				corner = c.Value
			}
		}
	}
	b.ReportMetric(corner, "retrieval%@128/128")
}

// BenchmarkFigure8 regenerates the long-context study.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure8QPS(70e9); err != nil {
			b.Fatal(err)
		}
		if _, err := bench.Figure8Breakdown(70e9); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLongContextSpeedup regenerates the §5.2 headline comparison.
func BenchmarkLongContextSpeedup(b *testing.B) {
	var ttftX, qpsX float64
	for i := 0; i < b.N; i++ {
		var err error
		ttftX, qpsX, err = bench.LongContextSpeedup(1_000_000)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(ttftX, "ttft-speedup-x")
	b.ReportMetric(qpsX, "qps-speedup-x")
}

// BenchmarkFigure9a regenerates TPOT vs decode batch (iterative sim).
func BenchmarkFigure9a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure9a(70e9); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure9b regenerates TPOT vs iterative batch.
func BenchmarkFigure9b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure9b(70e9); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure10 regenerates the decode-idleness heatmap.
func BenchmarkFigure10(b *testing.B) {
	var diag float64
	for i := 0; i < b.N; i++ {
		cells, err := bench.Figure10()
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			if c.Row == "iter=64" && c.Col == "dec=64" {
				diag = c.Value
			}
		}
	}
	b.ReportMetric(diag, "norm-latency@64/64")
}

// BenchmarkFigure11 regenerates the rewriter/reranker study.
func BenchmarkFigure11(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		var err error
		_, ratio, err = bench.Figure11()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(ratio, "rewriter-ttft-x")
}

// BenchmarkFigure15CaseII regenerates the RAGO-vs-baseline frontier for
// the long-context workload.
func BenchmarkFigure15CaseII(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		var err error
		_, _, gain, err = bench.Figure15(bench.EvalCaseII)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(gain, "rago-gain-x")
}

// BenchmarkFigure15CaseIV regenerates the RAGO-vs-baseline frontier for
// the rewriter+reranker workload (a ~35K-plan sweep; slow).
func BenchmarkFigure15CaseIV(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		var err error
		_, _, gain, err = bench.Figure15(bench.EvalCaseIV)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(gain, "rago-gain-x")
}

// BenchmarkFigure16 regenerates the Pareto-composition analysis (C-II).
func BenchmarkFigure16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.Figure16(bench.EvalCaseII, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure17 regenerates the placement sensitivity (C-II).
func BenchmarkFigure17(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure17(bench.EvalCaseII); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure18 regenerates the allocation sensitivity (C-II).
func BenchmarkFigure18(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		var err error
		spread, _, _, err = bench.Figure18(bench.EvalCaseII, false)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(spread, "alloc-spread-x")
}

// BenchmarkFigure19CaseI regenerates micro-batching for hyperscale
// retrieval.
func BenchmarkFigure19CaseI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure19CaseI(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure19CaseII regenerates micro-batching for long context.
func BenchmarkFigure19CaseII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure19CaseII(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4 regenerates the schedule comparison table.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table4(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks (design choices, DESIGN.md §7) ---

// BenchmarkAblationParetoPruning compares the optimizer's incremental
// Pareto-pruned batch search against brute-force enumeration of every
// batching policy for one plan (Algorithm 1's step-1 pruning is what makes
// the full search tractable).
func BenchmarkAblationParetoPruning(b *testing.B) {
	schema := ragschema.CaseI(8e9, 1)
	opts := core.DefaultOptions(hw.DefaultCluster())
	o, err := core.NewOptimizer(schema, opts)
	if err != nil {
		b.Fatal(err)
	}
	plan := core.Plan{
		Placement:   o.Pipe.FullyDisaggregated(),
		GroupChips:  []int{16},
		DecodeChips: 16,
		Servers:     16,
	}
	b.Run("pruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := o.PlanFrontier(plan); len(got) == 0 {
				b.Fatal("empty frontier")
			}
		}
	})
	b.Run("bruteforce", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var pts []core.SchedulePoint
			for _, pb := range roofline.Pow2Range(1, opts.MaxPreBatch) {
				for _, rb := range roofline.Pow2Range(1, opts.MaxRetrievalBatch) {
					for _, db := range roofline.Pow2Range(1, opts.MaxDecodeBatch) {
						for _, r := range []int{1, 2, 4, 8, 16} {
							s := core.Schedule{
								Groups:           []core.GroupSchedule{{Stages: []int{1}, Chips: 16, Batch: pb}},
								RetrievalServers: 16,
								RetrievalBatch:   rb,
								DecodeChips:      16,
								DecodeBatch:      db,
								DecodeReplicas:   r,
							}
							if m, ok := o.Asm.Evaluate(s); ok {
								pts = append(pts, core.SchedulePoint{Metrics: m, Item: s})
							}
						}
					}
				}
			}
			if got := perf.Frontier(pts); len(got) == 0 {
				b.Fatal("empty frontier")
			}
		}
	})
}

// BenchmarkAblationCollocationRule compares RAGO's Fig.-13 neighbor-only
// placement space against the unrestricted contiguous-partition space for
// Case IV, measuring both search cost and resulting frontier quality.
func BenchmarkAblationCollocationRule(b *testing.B) {
	schema := ragschema.CaseIV(70e9)
	run := func(b *testing.B, placements []pipeline.Placement) float64 {
		opts := core.DefaultOptions(hw.DefaultCluster())
		opts.NormalizeChips = 64
		opts.Placements = placements
		o, err := core.NewOptimizer(schema, opts)
		if err != nil {
			b.Fatal(err)
		}
		best := 0.0
		for i := 0; i < b.N; i++ {
			front := o.Optimize()
			if p, ok := perf.MaxQPSPerChip(front); ok {
				best = p.Metrics.QPSPerChip
			}
		}
		return best
	}
	b.Run("neighbor-rule", func(b *testing.B) {
		pipe, err := pipeline.Build(schema)
		if err != nil {
			b.Fatal(err)
		}
		best := run(b, pipe.Placements())
		b.ReportMetric(best, "max-qps/chip")
		b.ReportMetric(float64(len(pipe.Placements())), "placements")
	})
	b.Run("unrestricted", func(b *testing.B) {
		pipe, err := pipeline.Build(schema)
		if err != nil {
			b.Fatal(err)
		}
		placements := append(pipe.Placements(), pipe.BaselinePlacement())
		best := run(b, placements)
		b.ReportMetric(best, "max-qps/chip")
		b.ReportMetric(float64(len(placements)), "placements")
	})
}

// BenchmarkAblationKVPrecision quantifies the decode-throughput effect of
// FP16 versus INT8 KV caches (a §2 what-if on the 8B model).
func BenchmarkAblationKVPrecision(b *testing.B) {
	s := xpusim.New(hw.XPUC)
	run := func(b *testing.B, kvBytes float64) {
		cfg := model.Llama8B
		cfg.KVBytesPerElem = kvBytes
		var thr float64
		for i := 0; i < b.N; i++ {
			r, err := s.DecodeStep(cfg, 256, 640, 1)
			if err != nil {
				b.Fatal(err)
			}
			thr = r.Throughput
		}
		b.ReportMetric(thr, "tokens/s")
	}
	b.Run("fp16-kv", func(b *testing.B) { run(b, 2) })
	b.Run("int8-kv", func(b *testing.B) { run(b, 1) })
}

// BenchmarkAblationSystolicEfficiency contrasts the fill-aware systolic
// model against ideal-peak compute for a short prefix — the reason
// short-prompt inference lands far below accelerator peak.
func BenchmarkAblationSystolicEfficiency(b *testing.B) {
	schema := ragschema.LLMOnly(8e9)
	pipe, err := pipeline.Build(schema)
	if err != nil {
		b.Fatal(err)
	}
	pre := pipe.Stages[pipe.Index(pipeline.KindPrefix)]
	run := func(b *testing.B, sim xpusim.Simulator) {
		prof := stageperf.New(hw.XPUC, hw.EPYCHost, schema)
		prof.Sim = sim
		var lat float64
		for i := 0; i < b.N; i++ {
			pt := prof.Eval(pre, 1, 1)
			if !pt.OK {
				b.Fatal("infeasible")
			}
			lat = pt.Latency
		}
		b.ReportMetric(lat*1e3, "prefix-ms")
	}
	b.Run("fill-aware", func(b *testing.B) { run(b, xpusim.New(hw.XPUC)) })
	b.Run("ideal-peak", func(b *testing.B) {
		s := xpusim.New(hw.XPUC)
		s.Chip.SystolicDim = 1 // disables the fill/padding model
		run(b, s)
	})
}

// BenchmarkWhatIf runs the §8 what-if analyses (retrieval acceleration,
// document-KV reuse, iterative prefetching).
func BenchmarkWhatIf(b *testing.B) {
	var unlocked float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.WhatIfRetrievalAccelerator(10)
		if err != nil {
			b.Fatal(err)
		}
		unlocked = rows[1].QPSPerChip / rows[0].QPSPerChip
		if _, err := bench.WhatIfKVCacheReuse(); err != nil {
			b.Fatal(err)
		}
		if _, err := bench.WhatIfPrefetching(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(unlocked, "accel-unlock-x")
}

// --- Substrate micro-benchmarks ---

// BenchmarkVectorIVFPQSearch measures the real IVF-PQ substrate.
func BenchmarkVectorIVFPQSearch(b *testing.B) {
	data := vectordb.GenClustered(10_000, 32, 16, 1.0, 42)
	ix, err := vectordb.BuildIVFPQ(data, 128, 16, 42)
	if err != nil {
		b.Fatal(err)
	}
	q := vectordb.GenClustered(1, 32, 16, 1.0, 43)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Search(q, 10, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVectorFlatSearch measures exact kNN.
func BenchmarkVectorFlatSearch(b *testing.B) {
	data := vectordb.GenUniform(10_000, 32, 42)
	ix := vectordb.NewFlat(32)
	if err := ix.Add(data...); err != nil {
		b.Fatal(err)
	}
	q := vectordb.GenUniform(1, 32, 43)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Search(q, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizerCaseI measures the end-to-end schedule search on the
// default pool.
func BenchmarkOptimizerCaseI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := core.DefaultOptions(hw.DefaultCluster())
		o, err := core.NewOptimizer(ragschema.CaseI(8e9, 1), opts)
		if err != nil {
			b.Fatal(err)
		}
		if front := o.Optimize(); len(front) == 0 {
			b.Fatal("empty frontier")
		}
	}
}
