package ragschema

import (
	"strings"
	"testing"
)

func TestDefaultsMatchSection4(t *testing.T) {
	s := Default(8e9)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.QuestionTokens != 32 {
		t.Errorf("question tokens = %d, want 32", s.QuestionTokens)
	}
	if s.PrefixTokens != 512 {
		t.Errorf("prefix tokens = %d, want 512", s.PrefixTokens)
	}
	if s.DecodeTokens != 256 {
		t.Errorf("decode tokens = %d, want 256", s.DecodeTokens)
	}
	if s.RetrievedTokens() != 500 {
		t.Errorf("retrieved tokens = %d, want 500 (5 x 100)", s.RetrievedTokens())
	}
	if s.DBVectors != 64e9 {
		t.Errorf("database vectors = %g, want 64e9", s.DBVectors)
	}
	if s.ScanFraction != 0.001 {
		t.Errorf("scan fraction = %v, want 0.001", s.ScanFraction)
	}
	if s.VectorDim != 768 {
		t.Errorf("vector dim = %d, want 768", s.VectorDim)
	}
}

func TestTable3Cases(t *testing.T) {
	// Case 1: no encoder/rewriter/reranker, 1-8 queries per retrieval.
	c1 := CaseI(70e9, 4)
	if err := c1.Validate(); err != nil {
		t.Fatal(err)
	}
	if c1.HasEncoder() || c1.HasRewriter() || c1.HasReranker() || c1.Iterative() {
		t.Errorf("Case I should have no optional stages")
	}
	if c1.QueriesPerRetrieval != 4 {
		t.Errorf("Case I queries = %d, want 4", c1.QueriesPerRetrieval)
	}

	// Case 2: 120M encoder, tiny database derived from context length.
	c2 := CaseII(70e9, 1_000_000)
	if err := c2.Validate(); err != nil {
		t.Fatal(err)
	}
	if !c2.HasEncoder() {
		t.Errorf("Case II must have a document encoder")
	}
	if c2.DBVectors < 7_000 || c2.DBVectors > 8_000 {
		t.Errorf("Case II 1M-token DB = %g vectors, want ~7813", c2.DBVectors)
	}
	if c2.ScanFraction != 1 {
		t.Errorf("Case II should brute-force scan, got fraction %v", c2.ScanFraction)
	}

	// Case 3: iterative retrievals.
	c3 := CaseIII(8e9, 4)
	if err := c3.Validate(); err != nil {
		t.Fatal(err)
	}
	if !c3.Iterative() || c3.RetrievalFrequency != 4 {
		t.Errorf("Case III should iterate 4x, got %d", c3.RetrievalFrequency)
	}

	// Case 4: 8B rewriter + 120M reranker scoring 16 candidates.
	c4 := CaseIV(70e9)
	if err := c4.Validate(); err != nil {
		t.Fatal(err)
	}
	if !c4.HasRewriter() || c4.QueryRewriterParams != 8e9 {
		t.Errorf("Case IV rewriter = %g, want 8e9", c4.QueryRewriterParams)
	}
	if !c4.HasReranker() || c4.RerankerParams != 120e6 {
		t.Errorf("Case IV reranker = %g, want 120e6", c4.RerankerParams)
	}
	if c4.RerankCandidates != 16 {
		t.Errorf("Case IV rerank candidates = %d, want 16", c4.RerankCandidates)
	}
}

func TestLLMOnly(t *testing.T) {
	s := LLMOnly(70e9)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if !s.NoRetrieval() {
		t.Errorf("LLM-only should report NoRetrieval")
	}
	if s.PrefixTokens != 32 {
		t.Errorf("LLM-only prompt = %d tokens, want the bare 32-token question", s.PrefixTokens)
	}
	if Default(8e9).NoRetrieval() {
		t.Errorf("default RAG schema should not be LLM-only")
	}
}

func TestValidationRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Schema)
	}{
		{"no generative model", func(s *Schema) { s.GenerativeParams = 0 }},
		{"no database", func(s *Schema) { s.DBVectors = 0 }},
		{"zero retrieval frequency", func(s *Schema) { s.RetrievalFrequency = 0 }},
		{"zero queries", func(s *Schema) { s.QueriesPerRetrieval = 0 }},
		{"scan fraction > 1", func(s *Schema) { s.ScanFraction = 1.5 }},
		{"prefix shorter than question", func(s *Schema) { s.PrefixTokens = 8 }},
		{"zero decode", func(s *Schema) { s.DecodeTokens = 0 }},
		{"negative context", func(s *Schema) { s.ContextTokens = -1 }},
		{"context without encoder", func(s *Schema) { s.ContextTokens = 1000; s.DocEncoderParams = 0 }},
		{"rerank keeps more than scored", func(s *Schema) {
			s.RerankerParams = 120e6
			s.RerankCandidates = 3 // fewer than 5 neighbors kept
		}},
	}
	for _, c := range cases {
		s := Default(8e9)
		c.mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	orig := CaseIV(70e9)
	data, err := EncodeJSON(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back != orig {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, orig)
	}
}

func TestDecodeJSONRejectsInvalid(t *testing.T) {
	if _, err := DecodeJSON([]byte(`{"name":"x"}`)); err == nil {
		t.Errorf("schema without generative model should fail decode")
	}
	if _, err := DecodeJSON([]byte(`{not json`)); err == nil {
		t.Errorf("malformed JSON should fail decode")
	}
}

func TestNames(t *testing.T) {
	for _, tc := range []struct {
		s    Schema
		want string
	}{
		{CaseI(8e9, 2), "case1-hyperscale-8B-q2"},
		{CaseII(70e9, 1_000_000), "case2-longctx-70B-1M"},
		{CaseII(70e9, 100_000), "case2-longctx-70B-100K"},
		{CaseIII(8e9, 8), "case3-iterative-8B-r8"},
		{CaseIV(70e9), "case4-rewrite-rerank-70B"},
		{Default(120e6), "default-120M"},
	} {
		if tc.s.Name != tc.want {
			t.Errorf("name = %q, want %q", tc.s.Name, tc.want)
		}
	}
	if !strings.HasPrefix(LLMOnly(405e9).Name, "llm-only-405B") {
		t.Errorf("LLM-only name = %q", LLMOnly(405e9).Name)
	}
}

func TestCaseVMultiSource(t *testing.T) {
	s := CaseV(8e9, 2)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if !s.MultiSource() || s.Sources() != 2 {
		t.Errorf("CaseV(2) should report 2 parallel sources")
	}
	if s.RerankerParams <= 0 {
		t.Errorf("CaseV needs a reranker to merge sources")
	}
	if s.RerankCandidates != 32 {
		t.Errorf("rerank candidates = %d, want 16 per source", s.RerankCandidates)
	}
	single := Default(8e9)
	if single.MultiSource() || single.Sources() != 1 {
		t.Errorf("default schema should be single-source")
	}

	bad := CaseV(8e9, 2)
	bad.ParallelSources = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative source count should fail")
	}
	bad = CaseV(8e9, 2)
	bad.NeighborsPerQuery = 0
	bad.RerankCandidates = 0
	bad.RerankerParams = 0
	if err := bad.Validate(); err == nil {
		t.Error("fan-out without retrieval should fail")
	}
	bad = CaseV(8e9, 2)
	bad.RetrievalFrequency = 4
	if err := bad.Validate(); err == nil {
		t.Error("fan-out with iterative retrieval should fail")
	}
	roundTrip, err := DecodeJSON(mustEncode(t, CaseV(70e9, 4)))
	if err != nil {
		t.Fatal(err)
	}
	if roundTrip.ParallelSources != 4 {
		t.Errorf("parallel sources lost in JSON round-trip: %d", roundTrip.ParallelSources)
	}
}

func mustEncode(t *testing.T, s Schema) []byte {
	t.Helper()
	data, err := EncodeJSON(s)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
