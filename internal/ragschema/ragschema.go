// Package ragschema implements RAGSchema, the paper's structured
// abstraction of RAG serving workloads (§3.2, Table 1). A schema names the
// optional pipeline components (database encoder, query rewriter, reranker,
// iterative retrieval) and their performance-relevant configuration (model
// sizes, database size and dimensionality, queries per retrieval, retrieval
// frequency), plus the sequence-length parameters the evaluation fixes in
// §4.
//
// RAGSchema is a workload abstraction, not a quality abstraction: two
// schemas of identical shape can produce very different answer quality
// (§3.2), which is out of scope here exactly as in the paper.
package ragschema

import (
	"encoding/json"
	"fmt"
)

// Schema is one RAG serving workload. Zero-valued optional components are
// absent from the pipeline.
type Schema struct {
	// Name labels the workload (e.g. "case-1-hyperscale-8B").
	Name string `json:"name"`

	// DocEncoderParams is the database/document encoder size in
	// parameters; 0 means no real-time encoding stage (the corpus was
	// embedded offline).
	DocEncoderParams float64 `json:"doc_encoder_params,omitempty"`
	// VectorDim is the embedding dimensionality (Table 1: e.g. 768).
	VectorDim int `json:"vector_dim"`
	// DBVectors is the number of database vectors (per source when
	// retrieval fans out over ParallelSources).
	DBVectors float64 `json:"db_vectors"`
	// RetrievalFrequency is retrievals per generated sequence; 1 is a
	// single up-front retrieval, >1 enables decoder-initiated iterative
	// retrieval (§3.1 paradigm III).
	RetrievalFrequency int `json:"retrieval_frequency"`
	// QueriesPerRetrieval is query vectors per retrieval operation.
	QueriesPerRetrieval int `json:"queries_per_retrieval"`
	// ParallelSources is the number of independent retrieval sources
	// (corpora) queried in parallel per retrieval operation — the
	// multi-source fan-out pipeline shape. Each source is its own corpus
	// of DBVectors vectors on its own server pool; the results are merged
	// (reranked when a reranker is present) before the prefix. 0 or 1 is
	// the single-source linear pipeline.
	ParallelSources int `json:"parallel_sources,omitempty"`
	// QueryRewriterParams is the generative rewriter size; 0 = absent.
	QueryRewriterParams float64 `json:"query_rewriter_params,omitempty"`
	// RerankerParams is the (encoder-only) reranker size; 0 = absent.
	RerankerParams float64 `json:"reranker_params,omitempty"`
	// GenerativeParams is the main generative LLM size (required).
	GenerativeParams float64 `json:"generative_params"`

	// Sequence shape (§4 defaults; see Default).
	QuestionTokens    int `json:"question_tokens"`
	PrefixTokens      int `json:"prefix_tokens"`
	DecodeTokens      int `json:"decode_tokens"`
	ChunkTokens       int `json:"chunk_tokens"`
	NeighborsPerQuery int `json:"neighbors_per_query"`
	// RerankCandidates is how many retrieved passages the reranker
	// scores before keeping NeighborsPerQuery (§5.4: 16 -> 5).
	RerankCandidates int `json:"rerank_candidates,omitempty"`

	// ScanFraction is the fraction of database vectors compared per
	// query (§4 default 0.1%).
	ScanFraction float64 `json:"scan_fraction"`
	// ContextTokens is the real-time uploaded context length for
	// long-context workloads (Case II); it implies DBVectors =
	// ContextTokens/128 chunks and a per-request encoding pass. 0 for
	// offline corpora.
	ContextTokens int `json:"context_tokens,omitempty"`
}

// HasEncoder reports whether a real-time database-encode stage exists.
func (s Schema) HasEncoder() bool { return s.DocEncoderParams > 0 && s.ContextTokens > 0 }

// HasRewriter reports whether a query-rewrite stage exists.
func (s Schema) HasRewriter() bool { return s.QueryRewriterParams > 0 }

// HasReranker reports whether a rerank stage exists.
func (s Schema) HasReranker() bool { return s.RerankerParams > 0 }

// Iterative reports whether decoding issues additional retrievals.
func (s Schema) Iterative() bool { return s.RetrievalFrequency > 1 }

// MultiSource reports whether retrieval fans out over parallel sources.
func (s Schema) MultiSource() bool { return s.ParallelSources > 1 }

// Sources is the retrieval source count, normalizing the zero value.
func (s Schema) Sources() int {
	if s.ParallelSources > 1 {
		return s.ParallelSources
	}
	return 1
}

// RetrievedTokens is the retrieved content appended to the prompt per
// retrieval: NeighborsPerQuery passages of ChunkTokens each.
func (s Schema) RetrievedTokens() int { return s.NeighborsPerQuery * s.ChunkTokens }

// Validate reports an error for inconsistent schemas.
func (s Schema) Validate() error {
	if s.GenerativeParams <= 0 {
		return fmt.Errorf("ragschema: %s: generative LLM is required", s.Name)
	}
	if s.DBVectors <= 0 {
		return fmt.Errorf("ragschema: %s: database must have vectors", s.Name)
	}
	if s.VectorDim <= 0 {
		return fmt.Errorf("ragschema: %s: vector dimensionality must be positive", s.Name)
	}
	if s.RetrievalFrequency < 1 {
		return fmt.Errorf("ragschema: %s: retrieval frequency %d < 1", s.Name, s.RetrievalFrequency)
	}
	if s.QueriesPerRetrieval < 1 {
		return fmt.Errorf("ragschema: %s: queries per retrieval %d < 1", s.Name, s.QueriesPerRetrieval)
	}
	if s.ScanFraction <= 0 || s.ScanFraction > 1 {
		return fmt.Errorf("ragschema: %s: scan fraction %v outside (0,1]", s.Name, s.ScanFraction)
	}
	if s.QuestionTokens <= 0 || s.PrefixTokens <= 0 || s.DecodeTokens <= 0 {
		return fmt.Errorf("ragschema: %s: sequence lengths must be positive", s.Name)
	}
	if s.PrefixTokens < s.QuestionTokens {
		return fmt.Errorf("ragschema: %s: prefix (%d) shorter than question (%d)", s.Name, s.PrefixTokens, s.QuestionTokens)
	}
	if s.NeighborsPerQuery < 0 || s.ChunkTokens < 0 {
		return fmt.Errorf("ragschema: %s: negative retrieval content shape", s.Name)
	}
	if s.HasReranker() && s.RerankCandidates < s.NeighborsPerQuery {
		return fmt.Errorf("ragschema: %s: reranker scores %d candidates but %d neighbors are kept",
			s.Name, s.RerankCandidates, s.NeighborsPerQuery)
	}
	if s.ContextTokens < 0 {
		return fmt.Errorf("ragschema: %s: negative context length", s.Name)
	}
	if s.ContextTokens > 0 && s.DocEncoderParams <= 0 {
		return fmt.Errorf("ragschema: %s: real-time context requires a document encoder", s.Name)
	}
	if s.ParallelSources < 0 {
		return fmt.Errorf("ragschema: %s: negative parallel source count", s.Name)
	}
	if s.MultiSource() && s.NoRetrieval() {
		return fmt.Errorf("ragschema: %s: parallel sources require retrieval", s.Name)
	}
	if s.MultiSource() && s.Iterative() {
		return fmt.Errorf("ragschema: %s: multi-source fan-out with iterative retrieval is not supported", s.Name)
	}
	return nil
}

// MarshalJSON/UnmarshalJSON round-trip via the default struct coding; the
// methods exist so future schema versions can add migration logic in one
// place. Encode/Decode helpers below are the public entry points.

// EncodeJSON renders the schema as indented JSON.
func EncodeJSON(s Schema) ([]byte, error) { return json.MarshalIndent(s, "", "  ") }

// DecodeJSON parses and validates a schema.
func DecodeJSON(data []byte) (Schema, error) {
	var s Schema
	if err := json.Unmarshal(data, &s); err != nil {
		return Schema{}, fmt.Errorf("ragschema: %v", err)
	}
	if err := s.Validate(); err != nil {
		return Schema{}, err
	}
	return s, nil
}
