package ragschema

import "fmt"

// §4 evaluation defaults: 32-token questions, 512-token prompts (question
// plus five 100-token neighbors), 256-token generations, 64-billion-vector
// database scanned at 0.1%.
const (
	defaultQuestion  = 32
	defaultPrefix    = 512
	defaultDecode    = 256
	defaultChunk     = 100
	defaultNeighbors = 5
	defaultScan      = 0.001
	defaultDim       = 768
	hyperscaleVecs   = 64e9
)

// Default returns the §4 baseline workload shape with the given generative
// model size and no optional components — the starting point every Table 3
// case customizes.
func Default(generativeParams float64) Schema {
	return Schema{
		Name:                fmt.Sprintf("default-%s", sizeLabel(generativeParams)),
		VectorDim:           defaultDim,
		DBVectors:           hyperscaleVecs,
		RetrievalFrequency:  1,
		QueriesPerRetrieval: 1,
		GenerativeParams:    generativeParams,
		QuestionTokens:      defaultQuestion,
		PrefixTokens:        defaultPrefix,
		DecodeTokens:        defaultDecode,
		ChunkTokens:         defaultChunk,
		NeighborsPerQuery:   defaultNeighbors,
		ScanFraction:        defaultScan,
	}
}

// CaseI is Table 3's hyperscale-retrieval workload: 64B vectors, one
// retrieval with 1-8 query vectors, generative LLM 1B-405B (§5.1).
func CaseI(generativeParams float64, queriesPerRetrieval int) Schema {
	s := Default(generativeParams)
	s.Name = fmt.Sprintf("case1-hyperscale-%s-q%d", sizeLabel(generativeParams), queriesPerRetrieval)
	s.QueriesPerRetrieval = queriesPerRetrieval
	return s
}

// CaseII is Table 3's long-context workload: a 120M document encoder over
// a real-time uploaded context of 100K-10M tokens, a tiny brute-force
// database (context/128 chunks), and an 8B or 70B generative LLM (§5.2).
func CaseII(generativeParams float64, contextTokens int) Schema {
	s := Default(generativeParams)
	s.Name = fmt.Sprintf("case2-longctx-%s-%s", sizeLabel(generativeParams), tokenLabel(contextTokens))
	s.DocEncoderParams = 120e6
	s.ContextTokens = contextTokens
	s.DBVectors = float64((contextTokens + 127) / 128)
	s.ChunkTokens = 128
	s.ScanFraction = 1 // brute-force kNN (§5.2)
	return s
}

// CaseIII is Table 3's iterative-retrieval workload: hyperscale retrieval
// triggered 2-8 times during the 256-token decode (§5.3).
func CaseIII(generativeParams float64, retrievals int) Schema {
	s := Default(generativeParams)
	s.Name = fmt.Sprintf("case3-iterative-%s-r%d", sizeLabel(generativeParams), retrievals)
	s.RetrievalFrequency = retrievals
	return s
}

// CaseIV is Table 3's rewriter+reranker workload: an 8B query rewriter
// pre-processes the question and a 120M reranker scores 16 candidate
// passages, keeping the top five (§5.4).
func CaseIV(generativeParams float64) Schema {
	s := Default(generativeParams)
	s.Name = fmt.Sprintf("case4-rewrite-rerank-%s", sizeLabel(generativeParams))
	s.QueryRewriterParams = 8e9
	s.RerankerParams = 120e6
	s.RerankCandidates = 16
	return s
}

// CaseV is a multi-source retrieval fan-out workload beyond the paper's
// Table 3: the hyperscale corpus is sharded into `sources` independent
// indexes queried in parallel (each shard on its own server pool, so
// DBVectors here is per source) and a 120M reranker merges the union of
// candidates down to the usual five neighbors before the prefix. The
// pipeline it builds is a stage graph, not a linear chain.
func CaseV(generativeParams float64, sources int) Schema {
	s := Default(generativeParams)
	s.Name = fmt.Sprintf("case5-multisource-%s-s%d", sizeLabel(generativeParams), sources)
	s.ParallelSources = sources
	s.DBVectors = hyperscaleVecs / float64(s.Sources())
	s.RerankerParams = 120e6
	s.RerankCandidates = 16 * s.Sources()
	return s
}

// LLMOnly returns the no-retrieval comparison system of Fig. 5: the bare
// question as the prompt, no database-derived content. The database fields
// stay populated (validation requires them) but retrieval frequency 0 is
// expressed by the pipeline builder skipping retrieval when NoRetrieval.
func LLMOnly(generativeParams float64) Schema {
	s := Default(generativeParams)
	s.Name = fmt.Sprintf("llm-only-%s", sizeLabel(generativeParams))
	s.PrefixTokens = defaultQuestion // prompt is just the question
	s.NeighborsPerQuery = 0
	return s
}

// NoRetrieval reports whether the schema is an LLM-only comparison point
// (no retrieved content reaches the prompt).
func (s Schema) NoRetrieval() bool { return s.NeighborsPerQuery == 0 }

func sizeLabel(params float64) string {
	switch {
	case params >= 1e12:
		return fmt.Sprintf("%.0fT", params/1e12)
	case params >= 1e9:
		return fmt.Sprintf("%.0fB", params/1e9)
	case params >= 1e6:
		return fmt.Sprintf("%.0fM", params/1e6)
	default:
		return fmt.Sprintf("%.0f", params)
	}
}

func tokenLabel(tokens int) string {
	switch {
	case tokens >= 1_000_000:
		return fmt.Sprintf("%dM", tokens/1_000_000)
	case tokens >= 1_000:
		return fmt.Sprintf("%dK", tokens/1_000)
	default:
		return fmt.Sprintf("%d", tokens)
	}
}
