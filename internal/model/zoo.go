package model

// The model zoo mirrors §4: Llama-3-family generative LLMs at four scales
// and a 120M-parameter sentence encoder (Sentence-BERT-class) used as both
// the database encoder and the retrieval reranker. Architectural shapes
// follow the published Llama-3 configurations; parameter counts derived
// from them land on the nominal sizes the paper quotes.

const (
	int8Bytes = 1 // §4: models quantized to 8-bit integer
	fp16Bytes = 2 // KV caches kept at FP16
	llamaVoc  = 128256
)

// Llama1B is a Llama-3.2-1B-class model.
var Llama1B = Config{
	Name: "Llama-1B", Layers: 16, DModel: 2048, FFN: 8192,
	Heads: 32, KVHeads: 8, HeadDim: 64, Vocab: llamaVoc,
	GatedMLP: true, BytesPerParam: int8Bytes, KVBytesPerElem: fp16Bytes,
}

// Llama8B is a Llama-3-8B-class model.
var Llama8B = Config{
	Name: "Llama-8B", Layers: 32, DModel: 4096, FFN: 14336,
	Heads: 32, KVHeads: 8, HeadDim: 128, Vocab: llamaVoc,
	GatedMLP: true, BytesPerParam: int8Bytes, KVBytesPerElem: fp16Bytes,
}

// Llama70B is a Llama-3-70B-class model.
var Llama70B = Config{
	Name: "Llama-70B", Layers: 80, DModel: 8192, FFN: 28672,
	Heads: 64, KVHeads: 8, HeadDim: 128, Vocab: llamaVoc,
	GatedMLP: true, BytesPerParam: int8Bytes, KVBytesPerElem: fp16Bytes,
}

// Llama405B is a Llama-3.1-405B-class model.
var Llama405B = Config{
	Name: "Llama-405B", Layers: 126, DModel: 16384, FFN: 53248,
	Heads: 128, KVHeads: 8, HeadDim: 128, Vocab: llamaVoc,
	GatedMLP: true, BytesPerParam: int8Bytes, KVBytesPerElem: fp16Bytes,
}

// Encoder120M is the 120M-parameter sentence-transformer encoder producing
// 768-dimensional embeddings (§4, [28]); it doubles as the reranker model
// in Case IV.
var Encoder120M = Config{
	Name: "Encoder-120M", Layers: 12, DModel: 768, FFN: 3072,
	Heads: 12, KVHeads: 12, HeadDim: 64, Vocab: 30522,
	GatedMLP: false, EncoderOnly: true,
	BytesPerParam: int8Bytes, KVBytesPerElem: fp16Bytes,
}

// Zoo lists every preset model.
func Zoo() []Config {
	return []Config{Llama1B, Llama8B, Llama70B, Llama405B, Encoder120M}
}

// ByName finds a preset model by its Name field.
func ByName(name string) (Config, bool) {
	for _, c := range Zoo() {
		if c.Name == name {
			return c, true
		}
	}
	return Config{}, false
}

// GenerativeByParams returns the smallest preset generative LLM whose
// derived parameter count is at least params. It lets RAGSchema users
// specify "an 8B rewriter" by size alone.
func GenerativeByParams(params float64) (Config, bool) {
	var best Config
	found := false
	for _, c := range Zoo() {
		if c.EncoderOnly {
			continue
		}
		if c.Params() >= params*0.5 { // tolerate nominal-size rounding
			if !found || c.Params() < best.Params() {
				best, found = c, true
			}
		}
	}
	return best, found
}
