// Package model describes the transformer models the paper serves —
// Llama-3-class generative LLMs at 1B/8B/70B/405B parameters and the 120M
// sentence-encoder used as database encoder and reranker (§4, Table 1) —
// and derives from their architecture the per-operator FLOP and byte counts
// the inference simulator consumes.
//
// The paper only needs models as generators of compute, memory-traffic, and
// memory-footprint numbers; no weights exist here. Models are assumed
// quantized to INT8 (1 byte/parameter, §4) with FP16 KV caches.
package model

import "fmt"

// Config is a dense decoder-only (or encoder-only) transformer description.
type Config struct {
	Name string
	// Layers is the number of transformer blocks.
	Layers int
	// DModel is the residual stream width.
	DModel int
	// FFN is the MLP intermediate width.
	FFN int
	// Heads is the number of attention query heads.
	Heads int
	// KVHeads is the number of key/value heads (grouped-query attention).
	KVHeads int
	// HeadDim is the per-head dimension.
	HeadDim int
	// Vocab is the vocabulary size (LM head / embedding width).
	Vocab int
	// GatedMLP selects Llama-style SwiGLU (three projections) over the
	// classic two-projection MLP used by BERT-class encoders.
	GatedMLP bool
	// EncoderOnly marks bidirectional encoders: they have no decode
	// phase and no KV cache, and attention is not causally masked.
	EncoderOnly bool
	// BytesPerParam is the serving precision of weights (1 = INT8).
	BytesPerParam float64
	// KVBytesPerElem is the KV-cache element size (2 = FP16).
	KVBytesPerElem float64
}

// Validate reports an error for architecturally impossible configs.
func (c Config) Validate() error {
	if c.Layers <= 0 || c.DModel <= 0 || c.FFN <= 0 || c.Heads <= 0 || c.HeadDim <= 0 || c.Vocab <= 0 {
		return fmt.Errorf("model: %q has non-positive dimensions", c.Name)
	}
	if c.KVHeads <= 0 || c.KVHeads > c.Heads || c.Heads%c.KVHeads != 0 {
		return fmt.Errorf("model: %q KV heads %d incompatible with %d query heads", c.Name, c.KVHeads, c.Heads)
	}
	if c.BytesPerParam <= 0 || c.KVBytesPerElem <= 0 {
		return fmt.Errorf("model: %q has non-positive precision", c.Name)
	}
	return nil
}

// Params returns the derived parameter count from the architecture:
// attention projections, MLP projections, and (untied) embedding + LM head.
func (c Config) Params() float64 {
	attn := float64(c.DModel)*float64(c.Heads*c.HeadDim) + // Q
		2*float64(c.DModel)*float64(c.KVHeads*c.HeadDim) + // K, V
		float64(c.Heads*c.HeadDim)*float64(c.DModel) // O
	mlpProj := 2
	if c.GatedMLP {
		mlpProj = 3
	}
	mlp := float64(mlpProj) * float64(c.DModel) * float64(c.FFN)
	perLayer := attn + mlp
	embed := float64(c.Vocab) * float64(c.DModel)
	if !c.EncoderOnly {
		embed *= 2 // input embedding + LM head
	}
	return float64(c.Layers)*perLayer + embed
}

// ParamBytes returns the serving memory footprint of the weights.
func (c Config) ParamBytes() float64 { return c.Params() * c.BytesPerParam }

// KVBytesPerToken returns the KV-cache bytes one token occupies across all
// layers (zero for encoder-only models).
func (c Config) KVBytesPerToken() float64 {
	if c.EncoderOnly {
		return 0
	}
	return 2 * float64(c.Layers) * float64(c.KVHeads) * float64(c.HeadDim) * c.KVBytesPerElem
}

// Op is one simulator operator: a unit of work with a compute cost, a
// memory-traffic cost, and matmul operand dimensions used to estimate
// systolic-array efficiency. Repeat collapses identical per-layer operators.
type Op struct {
	Name string
	// FLOPs is floating-point work for one instance of the op.
	FLOPs float64
	// Bytes is memory traffic (weights + activations + KV) for one
	// instance of the op.
	Bytes float64
	// M, K, N are matmul operand dims (rows, reduction, cols) for the
	// systolic-efficiency model. Non-matmul ops set M=K=N=0 and are
	// charged at full efficiency.
	M, K, N int
	// Repeat is how many times the op runs (usually the layer count).
	Repeat int
	// WeightBytes is the per-instance weight traffic (subset of Bytes),
	// used by parallelism sharding to know what splits across chips.
	WeightBytes float64
}

// TotalFLOPs returns FLOPs summed over all repeats of all ops.
func TotalFLOPs(ops []Op) float64 {
	var s float64
	for _, o := range ops {
		s += o.FLOPs * float64(o.Repeat)
	}
	return s
}

// TotalBytes returns memory traffic summed over all repeats of all ops.
func TotalBytes(ops []Op) float64 {
	var s float64
	for _, o := range ops {
		s += o.Bytes * float64(o.Repeat)
	}
	return s
}

// PrefixOps returns the operator sequence for processing a prompt of seqLen
// tokens at batch size batch (one full forward pass over all positions).
// For encoder-only models this is simply the encoding pass over seqLen
// tokens. Ops are per-layer with Repeat = Layers, plus a final LM-head op
// for generative models.
func (c Config) PrefixOps(seqLen, batch int) []Op {
	if seqLen <= 0 || batch <= 0 {
		return nil
	}
	rows := batch * seqLen
	d := c.DModel
	qkvN := (c.Heads + 2*c.KVHeads) * c.HeadDim
	act := c.BytesPerParam // activations stored at weight precision

	ops := make([]Op, 0, 6)

	// Fused QKV projection.
	wQKV := float64(d) * float64(qkvN) * c.BytesPerParam
	ops = append(ops, Op{
		Name:  "qkv_proj",
		FLOPs: 2 * float64(rows) * float64(d) * float64(qkvN),
		Bytes: wQKV + float64(rows)*float64(d+qkvN)*act,
		M:     rows, K: d, N: qkvN,
		Repeat:      c.Layers,
		WeightBytes: wQKV,
	})

	// Attention: scores QK^T and weighted sum over V. Causal masking for
	// generative models halves the score/value work; encoders attend to
	// all positions. KV cache is written once per token for generative
	// models.
	attnFLOPs := 4 * float64(batch) * float64(c.Heads) * float64(seqLen) * float64(seqLen) * float64(c.HeadDim)
	if !c.EncoderOnly {
		attnFLOPs /= 2
	}
	kvWrite := float64(batch) * float64(seqLen) * 2 * float64(c.KVHeads) * float64(c.HeadDim) * c.KVBytesPerElem
	ops = append(ops, Op{
		Name:  "attention",
		FLOPs: attnFLOPs,
		Bytes: kvWrite + 2*float64(rows)*float64(c.Heads*c.HeadDim)*act,
		M:     seqLen, K: c.HeadDim, N: seqLen,
		Repeat: c.Layers,
	})

	// Output projection.
	wO := float64(c.Heads*c.HeadDim) * float64(d) * c.BytesPerParam
	ops = append(ops, Op{
		Name:  "o_proj",
		FLOPs: 2 * float64(rows) * float64(c.Heads*c.HeadDim) * float64(d),
		Bytes: wO + float64(rows)*float64(c.Heads*c.HeadDim+d)*act,
		M:     rows, K: c.Heads * c.HeadDim, N: d,
		Repeat:      c.Layers,
		WeightBytes: wO,
	})

	// MLP up (and gate, if SwiGLU) then down.
	upN := c.FFN
	if c.GatedMLP {
		upN = 2 * c.FFN
	}
	wUp := float64(d) * float64(upN) * c.BytesPerParam
	ops = append(ops, Op{
		Name:  "mlp_up",
		FLOPs: 2 * float64(rows) * float64(d) * float64(upN),
		Bytes: wUp + float64(rows)*float64(d+upN)*act,
		M:     rows, K: d, N: upN,
		Repeat:      c.Layers,
		WeightBytes: wUp,
	})
	wDown := float64(c.FFN) * float64(d) * c.BytesPerParam
	ops = append(ops, Op{
		Name:  "mlp_down",
		FLOPs: 2 * float64(rows) * float64(c.FFN) * float64(d),
		Bytes: wDown + float64(rows)*float64(c.FFN+d)*act,
		M:     rows, K: c.FFN, N: d,
		Repeat:      c.Layers,
		WeightBytes: wDown,
	})

	if !c.EncoderOnly {
		// LM head for the final position of each sequence only.
		wHead := float64(d) * float64(c.Vocab) * c.BytesPerParam
		ops = append(ops, Op{
			Name:  "lm_head",
			FLOPs: 2 * float64(batch) * float64(d) * float64(c.Vocab),
			Bytes: wHead + float64(batch)*float64(d+c.Vocab)*act,
			M:     batch, K: d, N: c.Vocab,
			Repeat:      1,
			WeightBytes: wHead,
		})
	}
	return ops
}

// DecodeOps returns the operator sequence for one auto-regressive decode
// step at batch size batch where sequences have an average live context of
// ctxLen tokens (the KV cache that must be read). Encoder-only models have
// no decode phase and return nil.
func (c Config) DecodeOps(batch, ctxLen int) []Op {
	if c.EncoderOnly || batch <= 0 || ctxLen < 0 {
		return nil
	}
	rows := batch
	d := c.DModel
	qkvN := (c.Heads + 2*c.KVHeads) * c.HeadDim
	act := c.BytesPerParam

	ops := make([]Op, 0, 6)

	wQKV := float64(d) * float64(qkvN) * c.BytesPerParam
	ops = append(ops, Op{
		Name:  "qkv_proj",
		FLOPs: 2 * float64(rows) * float64(d) * float64(qkvN),
		Bytes: wQKV + float64(rows)*float64(d+qkvN)*act,
		M:     rows, K: d, N: qkvN,
		Repeat:      c.Layers,
		WeightBytes: wQKV,
	})

	// Attention over the KV cache: per sequence, read ctxLen tokens of K
	// and V and do a rank-1 score + weighted-sum per head.
	kvRead := float64(batch) * float64(ctxLen) * 2 * float64(c.KVHeads) * float64(c.HeadDim) * c.KVBytesPerElem
	// Attention kernels batch the rank-1 per-head products across the
	// batch and head dimensions, so the row count feeding the array is
	// the batch size, not 1.
	ops = append(ops, Op{
		Name:  "attention",
		FLOPs: 4 * float64(batch) * float64(c.Heads) * float64(ctxLen) * float64(c.HeadDim),
		Bytes: kvRead + 2*float64(rows)*float64(c.Heads*c.HeadDim)*act,
		M:     batch, K: c.HeadDim, N: ctxLen,
		Repeat: c.Layers,
	})

	wO := float64(c.Heads*c.HeadDim) * float64(d) * c.BytesPerParam
	ops = append(ops, Op{
		Name:  "o_proj",
		FLOPs: 2 * float64(rows) * float64(c.Heads*c.HeadDim) * float64(d),
		Bytes: wO + float64(rows)*float64(c.Heads*c.HeadDim+d)*act,
		M:     rows, K: c.Heads * c.HeadDim, N: d,
		Repeat:      c.Layers,
		WeightBytes: wO,
	})

	upN := c.FFN
	if c.GatedMLP {
		upN = 2 * c.FFN
	}
	wUp := float64(d) * float64(upN) * c.BytesPerParam
	ops = append(ops, Op{
		Name:  "mlp_up",
		FLOPs: 2 * float64(rows) * float64(d) * float64(upN),
		Bytes: wUp + float64(rows)*float64(d+upN)*act,
		M:     rows, K: d, N: upN,
		Repeat:      c.Layers,
		WeightBytes: wUp,
	})
	wDown := float64(c.FFN) * float64(d) * c.BytesPerParam
	ops = append(ops, Op{
		Name:  "mlp_down",
		FLOPs: 2 * float64(rows) * float64(c.FFN) * float64(d),
		Bytes: wDown + float64(rows)*float64(c.FFN+d)*act,
		M:     rows, K: c.FFN, N: d,
		Repeat:      c.Layers,
		WeightBytes: wDown,
	})

	wHead := float64(d) * float64(c.Vocab) * c.BytesPerParam
	ops = append(ops, Op{
		Name:  "lm_head",
		FLOPs: 2 * float64(rows) * float64(d) * float64(c.Vocab),
		Bytes: wHead + float64(rows)*float64(d+c.Vocab)*act,
		M:     rows, K: d, N: c.Vocab,
		Repeat:      1,
		WeightBytes: wHead,
	})
	return ops
}
