package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZooValidatesAndSizes(t *testing.T) {
	// Derived parameter counts should land on the nominal sizes the paper
	// quotes (the "1B" class is 1.2-1.5B in practice).
	nominal := map[string]float64{
		"Llama-1B":     1.24e9,
		"Llama-8B":     8.0e9,
		"Llama-70B":    70.6e9,
		"Llama-405B":   405e9,
		"Encoder-120M": 120e6,
	}
	for _, c := range Zoo() {
		if err := c.Validate(); err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		want := nominal[c.Name]
		got := c.Params()
		if got < want*0.75 || got > want*1.35 {
			t.Errorf("%s Params() = %.3g, want within 35%% of %.3g", c.Name, got, want)
		}
	}
}

func TestExactNominalSizes(t *testing.T) {
	// 8B/70B/405B architectures should derive to their published counts
	// within a few percent.
	for _, c := range []struct {
		cfg  Config
		want float64
	}{{Llama8B, 8.03e9}, {Llama70B, 70.6e9}, {Llama405B, 405.8e9}} {
		got := c.cfg.Params()
		if math.Abs(got-c.want)/c.want > 0.03 {
			t.Errorf("%s Params() = %.4g, want %.4g ±3%%", c.cfg.Name, got, c.want)
		}
	}
}

func TestParamBytesInt8(t *testing.T) {
	// §4: INT8 quantization means memory footprint == parameter count.
	if got, want := Llama70B.ParamBytes(), Llama70B.Params(); got != want {
		t.Errorf("70B ParamBytes = %v, want %v (1 byte/param)", got, want)
	}
}

func TestKVBytesPerToken(t *testing.T) {
	// 70B: 2 (K,V) * 80 layers * 8 KV heads * 128 head dim * 2 bytes.
	want := 2.0 * 80 * 8 * 128 * 2
	if got := Llama70B.KVBytesPerToken(); got != want {
		t.Errorf("70B KV bytes/token = %v, want %v", got, want)
	}
	if got := Encoder120M.KVBytesPerToken(); got != 0 {
		t.Errorf("encoder KV bytes/token = %v, want 0", got)
	}
}

func TestPrefixFLOPsApproximation(t *testing.T) {
	// §3.3: FLOPs_inference ~= 2*M*L for short sequences. Check the
	// operator graph reproduces that within 25% for the paper's default
	// 512-token prefix. The 1B model is embedding-heavy (embeddings do
	// no per-token matmul work), so it gets a wider band.
	for _, tc := range []struct {
		cfg    Config
		lo, hi float64
	}{{Llama1B, 0.60, 1.25}, {Llama8B, 0.80, 1.25}, {Llama70B, 0.80, 1.25}} {
		for _, batch := range []int{1, 4} {
			L := 512
			got := TotalFLOPs(tc.cfg.PrefixOps(L, batch))
			approx := 2 * tc.cfg.Params() * float64(L) * float64(batch)
			if got < approx*tc.lo || got > approx*tc.hi {
				t.Errorf("%s prefix FLOPs (L=%d,B=%d) = %.3g, want within [%v,%v] of ~%.3g",
					tc.cfg.Name, L, batch, got, tc.lo, tc.hi, approx)
			}
		}
	}
}

func TestDecodeStepFLOPs(t *testing.T) {
	// One decode step is ~2*M FLOPs per sequence.
	cfg := Llama8B
	got := TotalFLOPs(cfg.DecodeOps(1, 512))
	approx := 2 * cfg.Params()
	if got < approx*0.8 || got > approx*1.3 {
		t.Errorf("decode FLOPs = %.3g, want ~%.3g", got, approx)
	}
}

func TestDecodeBytesWeightDominated(t *testing.T) {
	// Small-batch decode traffic should be dominated by weight reads.
	cfg := Llama70B
	ops := cfg.DecodeOps(1, 512)
	total := TotalBytes(ops)
	var weights float64
	for _, o := range ops {
		weights += o.WeightBytes * float64(o.Repeat)
	}
	if weights/total < 0.9 {
		t.Errorf("weight fraction of decode traffic = %v, want > 0.9 at batch 1", weights/total)
	}
	// Weights read once per step should be within 6% of the full model
	// footprint (norms/embeddings excluded from the op graph).
	if math.Abs(weights-cfg.ParamBytes())/cfg.ParamBytes() > 0.06 {
		t.Errorf("decode weight traffic = %.4g, want ~ParamBytes %.4g", weights, cfg.ParamBytes())
	}
}

func TestDecodeKVTrafficScalesWithContext(t *testing.T) {
	cfg := Llama8B
	short := TotalBytes(cfg.DecodeOps(64, 128))
	long := TotalBytes(cfg.DecodeOps(64, 2048))
	if long <= short {
		t.Fatalf("KV traffic must grow with context: %v vs %v", short, long)
	}
	// The delta should match the extra KV bytes read.
	wantDelta := float64(64) * float64(2048-128) * cfg.KVBytesPerToken()
	gotDelta := long - short
	if math.Abs(gotDelta-wantDelta)/wantDelta > 0.01 {
		t.Errorf("KV traffic delta = %.4g, want %.4g", gotDelta, wantDelta)
	}
}

func TestEncoderHasNoDecode(t *testing.T) {
	if ops := Encoder120M.DecodeOps(4, 128); ops != nil {
		t.Errorf("encoder DecodeOps = %v, want nil", ops)
	}
	if ops := Encoder120M.PrefixOps(512, 2); len(ops) == 0 {
		t.Errorf("encoder PrefixOps empty, want encoding pass")
	} else {
		for _, o := range ops {
			if o.Name == "lm_head" {
				t.Errorf("encoder should have no LM head")
			}
		}
	}
}

func TestDegenerateOps(t *testing.T) {
	if ops := Llama8B.PrefixOps(0, 4); ops != nil {
		t.Errorf("zero-length prefix should return nil")
	}
	if ops := Llama8B.PrefixOps(128, 0); ops != nil {
		t.Errorf("zero batch should return nil")
	}
	if ops := Llama8B.DecodeOps(0, 128); ops != nil {
		t.Errorf("zero-batch decode should return nil")
	}
}

func TestByName(t *testing.T) {
	if c, ok := ByName("Llama-70B"); !ok || c.Layers != 80 {
		t.Errorf("ByName(Llama-70B) = %+v, %v", c, ok)
	}
	if _, ok := ByName("GPT-5"); ok {
		t.Errorf("unknown model should not resolve")
	}
}

func TestGenerativeByParams(t *testing.T) {
	cases := []struct {
		params float64
		want   string
	}{
		{1e9, "Llama-1B"},
		{8e9, "Llama-8B"},
		{70e9, "Llama-70B"},
		{405e9, "Llama-405B"},
	}
	for _, c := range cases {
		got, ok := GenerativeByParams(c.params)
		if !ok || got.Name != c.want {
			t.Errorf("GenerativeByParams(%g) = %v/%v, want %s", c.params, got.Name, ok, c.want)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	bad := Llama8B
	bad.KVHeads = 7 // does not divide 32 heads
	if err := bad.Validate(); err == nil {
		t.Errorf("indivisible KV heads should fail validation")
	}
	bad = Llama8B
	bad.Layers = 0
	if err := bad.Validate(); err == nil {
		t.Errorf("zero layers should fail validation")
	}
	bad = Llama8B
	bad.BytesPerParam = 0
	if err := bad.Validate(); err == nil {
		t.Errorf("zero precision should fail validation")
	}
}

// Property: prefix FLOPs are linear in batch and superlinear in sequence
// length (attention quadratic term), and always positive.
func TestPrefixScalingProperties(t *testing.T) {
	f := func(rawL, rawB uint8) bool {
		L := int(rawL)%512 + 128 // large enough that the constant LM-head term is small
		B := int(rawB)%8 + 1
		cfg := Llama8B
		f1 := TotalFLOPs(cfg.PrefixOps(L, B))
		f2 := TotalFLOPs(cfg.PrefixOps(L, 2*B))
		if f1 <= 0 {
			return false
		}
		// Linear in batch within rounding (LM head also linear).
		if math.Abs(f2-2*f1)/f1 > 0.01 {
			return false
		}
		// Superlinear in sequence length (attention quadratic term wins
		// over the constant LM-head term at these lengths).
		f4 := TotalFLOPs(cfg.PrefixOps(2*L, B))
		return f4 > 2*f1*0.995
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
