package hw

import "testing"

func TestTable2Catalog(t *testing.T) {
	gens := XPUGenerations()
	if len(gens) != 3 {
		t.Fatalf("XPUGenerations() = %d entries, want 3", len(gens))
	}
	// Table 2 values, exactly as printed.
	want := []struct {
		name   string
		tflops float64
		hbmGiB float64
		bwGBs  float64
		ici    float64
	}{
		{"XPU-A", 197, 16, 819, 200},
		{"XPU-B", 275, 32, 1200, 300},
		{"XPU-C", 459, 96, 2765, 600},
	}
	for i, w := range want {
		g := gens[i]
		if g.Name != w.name {
			t.Errorf("gen %d name = %q, want %q", i, g.Name, w.name)
		}
		if g.PeakFLOPS != w.tflops*1e12 {
			t.Errorf("%s PeakFLOPS = %v, want %v TFLOPS", w.name, g.PeakFLOPS, w.tflops)
		}
		if g.HBMBytes != w.hbmGiB*(1<<30) {
			t.Errorf("%s HBM = %v, want %v GiB", w.name, g.HBMBytes, w.hbmGiB)
		}
		if g.MemBW != w.bwGBs*1e9 {
			t.Errorf("%s MemBW = %v, want %v GB/s", w.name, g.MemBW, w.bwGBs)
		}
		if g.InterChipBW != w.ici*1e9 {
			t.Errorf("%s ICI = %v, want %v GB/s", w.name, g.InterChipBW, w.ici)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s Validate: %v", w.name, err)
		}
	}
	// Monotonically increasing capability across generations.
	for i := 1; i < len(gens); i++ {
		if gens[i].PeakFLOPS <= gens[i-1].PeakFLOPS || gens[i].MemBW <= gens[i-1].MemBW {
			t.Errorf("generation %s not strictly more capable than %s", gens[i].Name, gens[i-1].Name)
		}
	}
}

func TestXPUByName(t *testing.T) {
	x, err := XPUByName("XPU-B")
	if err != nil || x.Name != "XPU-B" {
		t.Errorf("XPUByName(XPU-B) = %v, %v", x, err)
	}
	if _, err := XPUByName("XPU-Z"); err == nil {
		t.Errorf("XPUByName(XPU-Z) should fail")
	}
}

func TestEPYCHost(t *testing.T) {
	h := EPYCHost
	if err := h.Validate(); err != nil {
		t.Fatalf("EPYCHost invalid: %v", err)
	}
	if h.Cores != 96 {
		t.Errorf("cores = %d, want 96 (§4)", h.Cores)
	}
	if h.ScanBWPerCore != 18e9 {
		t.Errorf("per-core scan BW = %v, want 18 GB/s (§4b)", h.ScanBWPerCore)
	}
	if h.MemBWUtil != 0.80 {
		t.Errorf("mem BW util = %v, want 0.80 (§4b)", h.MemBWUtil)
	}
	if h.XPUsPerHost != 4 {
		t.Errorf("XPUs per host = %d, want 4 (§4)", h.XPUsPerHost)
	}
}

func TestXPUValidate(t *testing.T) {
	bad := XPUC
	bad.PeakFLOPS = 0
	if err := bad.Validate(); err == nil {
		t.Errorf("zero-FLOPS XPU should be invalid")
	}
	bad = XPUC
	bad.SystolicDim = -1
	if err := bad.Validate(); err == nil {
		t.Errorf("negative systolic dim should be invalid")
	}
}

func TestHostValidate(t *testing.T) {
	bad := EPYCHost
	bad.MemBWUtil = 1.5
	if err := bad.Validate(); err == nil {
		t.Errorf("util > 1 should be invalid")
	}
	bad = EPYCHost
	bad.Cores = 0
	if err := bad.Validate(); err == nil {
		t.Errorf("zero cores should be invalid")
	}
	bad = EPYCHost
	bad.XPUsPerHost = 0
	if err := bad.Validate(); err == nil {
		t.Errorf("zero XPUs per host should be invalid")
	}
}

func TestClusters(t *testing.T) {
	c := DefaultCluster()
	if err := c.Validate(); err != nil {
		t.Fatalf("default cluster invalid: %v", err)
	}
	if c.XPUs() != 64 {
		t.Errorf("default cluster XPUs = %d, want 64 (16 hosts x 4)", c.XPUs())
	}
	// §4: minimum 16 servers for the 64e9 x 96 B = 6.144 TB database.
	if got, need := c.HostMemBytes(), 64e9*96.0; got < need {
		t.Errorf("default cluster host memory %v < database size %v", got, need)
	}
	l := LargeCluster()
	if l.XPUs() != 128 {
		t.Errorf("large cluster XPUs = %d, want 128", l.XPUs())
	}
	bad := Cluster{Chip: XPUC, Host: EPYCHost, Hosts: 0}
	if err := bad.Validate(); err == nil {
		t.Errorf("zero-host cluster should be invalid")
	}
}
