// Package hw catalogs the hardware the paper evaluates on: three
// generations of XPU (a generic systolic-array ML accelerator modeled on
// TPU v5e/v4/v5p — Table 2 of the paper) and the CPU host servers used for
// retrieval (modeled on AMD EPYC Milan, §4).
//
// All quantities use SI bytes (1 GB = 1e9 bytes) for bandwidth and binary
// bytes (1 GiB = 2^30) for capacities, matching the conventions of vendor
// spec sheets the paper draws from.
package hw

import "fmt"

// XPU describes one accelerator chip.
type XPU struct {
	// Name identifies the generation, e.g. "XPU-C".
	Name string
	// PeakFLOPS is the peak compute rate in FLOP/s (dense INT8/BF16
	// systolic ops as reported in Table 2; e.g. 459e12 for XPU-C).
	PeakFLOPS float64
	// HBMBytes is the on-chip high-bandwidth-memory capacity in bytes.
	HBMBytes float64
	// MemBW is the HBM bandwidth in bytes/s.
	MemBW float64
	// InterChipBW is the aggregate inter-chip interconnect bandwidth in
	// bytes/s (e.g. six 100 GB/s links for XPU-C).
	InterChipBW float64
	// SystolicDim is the side length of the systolic MAC array. It
	// controls the fill/drain efficiency loss on small matrices. The
	// paper's XPUs are TPU-like with 256x256 MXUs.
	SystolicDim int
}

// Validate reports an error when a spec is not physically meaningful.
func (x XPU) Validate() error {
	if x.PeakFLOPS <= 0 || x.HBMBytes <= 0 || x.MemBW <= 0 || x.InterChipBW <= 0 {
		return fmt.Errorf("hw: XPU %q has non-positive capability", x.Name)
	}
	if x.SystolicDim <= 0 {
		return fmt.Errorf("hw: XPU %q has non-positive systolic dimension", x.Name)
	}
	return nil
}

// CPUHost describes one retrieval host server.
type CPUHost struct {
	Name string
	// Cores is the number of physical cores available for query scans.
	Cores int
	// MemBytes is host DRAM capacity in bytes.
	MemBytes float64
	// MemBW is host DRAM bandwidth in bytes/s.
	MemBW float64
	// ScanBWPerCore is the measured per-core PQ-code scan throughput in
	// bytes/s (the paper benchmarks ScaNN at 18 GB/s per core on EPYC).
	ScanBWPerCore float64
	// MemBWUtil is the achievable fraction of MemBW during batched scans
	// (the paper measures ~80%).
	MemBWUtil float64
	// XPUsPerHost is how many accelerators each server hosts (§4: 4).
	XPUsPerHost int
}

// Validate reports an error when a spec is not physically meaningful.
func (h CPUHost) Validate() error {
	if h.Cores <= 0 || h.MemBytes <= 0 || h.MemBW <= 0 || h.ScanBWPerCore <= 0 {
		return fmt.Errorf("hw: host %q has non-positive capability", h.Name)
	}
	if h.MemBWUtil <= 0 || h.MemBWUtil > 1 {
		return fmt.Errorf("hw: host %q has memory BW utilization %v outside (0,1]", h.Name, h.MemBWUtil)
	}
	if h.XPUsPerHost <= 0 {
		return fmt.Errorf("hw: host %q hosts no XPUs", h.Name)
	}
	return nil
}

const (
	gb  = 1e9
	gib = 1 << 30
)

// Table 2 of the paper: three versions of XPUs. XPU-C is the default.
var (
	// XPUA resembles TPU v5e.
	XPUA = XPU{Name: "XPU-A", PeakFLOPS: 197e12, HBMBytes: 16 * gib, MemBW: 819 * gb, InterChipBW: 200 * gb, SystolicDim: 256}
	// XPUB resembles TPU v4.
	XPUB = XPU{Name: "XPU-B", PeakFLOPS: 275e12, HBMBytes: 32 * gib, MemBW: 1200 * gb, InterChipBW: 300 * gb, SystolicDim: 256}
	// XPUC resembles TPU v5p; the paper reports on XPU-C by default.
	XPUC = XPU{Name: "XPU-C", PeakFLOPS: 459e12, HBMBytes: 96 * gib, MemBW: 2765 * gb, InterChipBW: 600 * gb, SystolicDim: 256}
)

// XPUGenerations lists the Table 2 catalog in ascending capability order.
func XPUGenerations() []XPU { return []XPU{XPUA, XPUB, XPUC} }

// XPUByName returns the Table 2 entry with the given name.
func XPUByName(name string) (XPU, error) {
	for _, x := range XPUGenerations() {
		if x.Name == name {
			return x, nil
		}
	}
	return XPU{}, fmt.Errorf("hw: unknown XPU %q", name)
}

// EPYCHost is the paper's retrieval host: 96 cores, 384 GB DRAM,
// 460 GB/s memory bandwidth, 18 GB/s per-core PQ scan throughput at 80%
// achievable memory bandwidth, hosting 4 XPUs.
var EPYCHost = CPUHost{
	Name:          "EPYC-Milan",
	Cores:         96,
	MemBytes:      384 * gb, // SI gigabytes: 64e9 vectors x 96 B / 384 GB = exactly 16 hosts (§4)
	MemBW:         460 * gb,
	ScanBWPerCore: 18 * gb,
	MemBWUtil:     0.80,
	XPUsPerHost:   4,
}

// Cluster is a resource pool available to the optimizer: a homogeneous set
// of XPUs spread across identical host servers.
type Cluster struct {
	Chip  XPU
	Host  CPUHost
	Hosts int
}

// Validate reports an error when the cluster is malformed.
func (c Cluster) Validate() error {
	if err := c.Chip.Validate(); err != nil {
		return err
	}
	if err := c.Host.Validate(); err != nil {
		return err
	}
	if c.Hosts <= 0 {
		return fmt.Errorf("hw: cluster has %d hosts, need at least 1", c.Hosts)
	}
	return nil
}

// XPUs returns the total number of accelerator chips in the pool.
func (c Cluster) XPUs() int { return c.Hosts * c.Host.XPUsPerHost }

// HostMemBytes returns aggregate host DRAM across the pool.
func (c Cluster) HostMemBytes() float64 { return float64(c.Hosts) * c.Host.MemBytes }

// DefaultCluster is the paper's default serving environment: 16 hosts, 4
// XPU-C per host (64 chips), the minimum that fits the 5.6 TiB quantized
// database in host memory (§4).
func DefaultCluster() Cluster { return Cluster{Chip: XPUC, Host: EPYCHost, Hosts: 16} }

// LargeCluster is the upper end of the paper's environment: 32 hosts / 128
// XPUs, used for the RAGO evaluation (§7, Table 4 allocates up to 128).
func LargeCluster() Cluster { return Cluster{Chip: XPUC, Host: EPYCHost, Hosts: 32} }
