package bench

import (
	"strings"
	"testing"
)

func TestWhatIfRetrievalAccelerator(t *testing.T) {
	rows, err := WhatIfRetrievalAccelerator(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	base, accel := rows[0], rows[1]
	// §8: retrieval acceleration shifts the workload toward being
	// inference-bound — share drops and throughput rises.
	if accel.RetrievalShare >= base.RetrievalShare {
		t.Errorf("accelerated retrieval share %.1f%% should fall below %.1f%%",
			accel.RetrievalShare, base.RetrievalShare)
	}
	if accel.QPSPerChip <= base.QPSPerChip {
		t.Errorf("accelerated QPS/chip %.2f should exceed %.2f", accel.QPSPerChip, base.QPSPerChip)
	}
	// Case I 8B was retrieval-bound; a 10x accelerator lifts throughput
	// until the inference tiers become the new bottleneck (Amdahl: the
	// end-to-end gain is far below 10x).
	if accel.QPSPerChip < base.QPSPerChip*1.1 {
		t.Errorf("10x retrieval should unlock >1.1x end-to-end: %.2f vs %.2f",
			accel.QPSPerChip, base.QPSPerChip)
	}
	if accel.QPSPerChip > base.QPSPerChip*5 {
		t.Errorf("end-to-end gain %.2f should be Amdahl-limited well below 10x",
			accel.QPSPerChip/base.QPSPerChip)
	}
	if _, err := WhatIfRetrievalAccelerator(0); err == nil {
		t.Errorf("zero speedup should error")
	}
}

func TestWhatIfKVCacheReuse(t *testing.T) {
	rows, err := WhatIfKVCacheReuse()
	if err != nil {
		t.Fatal(err)
	}
	base, cached := rows[0], rows[1]
	// §8: precomputing the retrieved documents' KV cache removes most
	// prefix work, raising the relative weight of retrieval.
	if cached.RetrievalShare <= base.RetrievalShare {
		t.Errorf("KV reuse should raise the retrieval share: %.1f%% vs %.1f%%",
			cached.RetrievalShare, base.RetrievalShare)
	}
	if cached.QPSPerChip < base.QPSPerChip {
		t.Errorf("KV reuse should not lose throughput: %.2f vs %.2f",
			cached.QPSPerChip, base.QPSPerChip)
	}
}

func TestWhatIfPrefetching(t *testing.T) {
	rows, err := WhatIfPrefetching()
	if err != nil {
		t.Fatal(err)
	}
	sync, prefetch := rows[0], rows[1]
	// §8: prefetching hides retrieval stalls during decoding.
	if prefetch.TPOT >= sync.TPOT {
		t.Errorf("prefetching should cut TPOT: %.4f vs %.4f", prefetch.TPOT, sync.TPOT)
	}
}

func TestRenderWhatIf(t *testing.T) {
	out := RenderWhatIf("t", []WhatIfRow{
		{Scenario: "a", QPSPerChip: 1.5, RetrievalShare: 42},
		{Scenario: "b", TPOT: 0.01},
	})
	for _, want := range []string{"a", "1.500", "42.0%", "10.00ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderWhatIf missing %q in %q", want, out)
		}
	}
}
