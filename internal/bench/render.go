package bench

import (
	"fmt"
	"sort"
	"strings"
)

// RenderSeries prints labeled curves as aligned columns of (x, y) pairs.
func RenderSeries(title string, series []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	for _, s := range series {
		fmt.Fprintf(&b, "-- %s (%s vs %s)\n", s.Name, s.XLabel, s.YLabel)
		for i := range s.X {
			fmt.Fprintf(&b, "   %12.5f  %12.4f\n", s.X[i], s.Y[i])
		}
	}
	return b.String()
}

// RenderFrontierSummary prints only the extremes of each curve — the
// numbers the paper quotes in prose.
func RenderFrontierSummary(title string, series []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	for _, s := range series {
		if len(s.X) == 0 {
			fmt.Fprintf(&b, "%-24s (empty)\n", s.Name)
			continue
		}
		minX, maxY := s.X[0], s.Y[0]
		for i := range s.X {
			if s.X[i] < minX {
				minX = s.X[i]
			}
			if s.Y[i] > maxY {
				maxY = s.Y[i]
			}
		}
		fmt.Fprintf(&b, "%-24s points=%-3d min %s=%.4f  max %s=%.4f\n",
			s.Name, len(s.X), s.XLabel, minX, s.YLabel, maxY)
	}
	return b.String()
}

// RenderHeatmap prints cells as a row-major table.
func RenderHeatmap(title string, cells []Cell) string {
	rows, cols := orderedKeys(cells)
	byKey := make(map[[2]string]float64, len(cells))
	for _, c := range cells {
		byKey[[2]string{c.Row, c.Col}] = c.Value
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n%-14s", title, "")
	for _, c := range cols {
		fmt.Fprintf(&b, "%12s", c)
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s", r)
		for _, c := range cols {
			if v, ok := byKey[[2]string{r, c}]; ok {
				fmt.Fprintf(&b, "%12.2f", v)
			} else {
				fmt.Fprintf(&b, "%12s", "-")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// orderedKeys returns row and column labels in first-appearance order.
func orderedKeys(cells []Cell) (rows, cols []string) {
	seenR := map[string]bool{}
	seenC := map[string]bool{}
	for _, c := range cells {
		if !seenR[c.Row] {
			seenR[c.Row] = true
			rows = append(rows, c.Row)
		}
		if !seenC[c.Col] {
			seenC[c.Col] = true
			cols = append(cols, c.Col)
		}
	}
	return rows, cols
}

// RenderBreakdowns prints stage-share tables (shares in percent).
func RenderBreakdowns(title string, bds []Breakdown) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	for _, bd := range bds {
		fmt.Fprintf(&b, "-- %s\n", bd.Label)
		for i, st := range bd.Stages {
			fmt.Fprintf(&b, "   %-16s %6.1f%%\n", st, bd.Shares[i])
		}
	}
	return b.String()
}

// RenderTable4 prints the Table 4 comparison.
func RenderTable4(rows []Table4Row) string {
	var b strings.Builder
	b.WriteString("== Table 4: RAGO vs baseline schedules (Case II) ==\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-26s TTFT=%8.4fs  QPS/chip=%7.3f  %s\n", r.Name, r.TTFT, r.QPSPerChip, r.Desc)
	}
	return b.String()
}

// RenderPlanSummaries prints per-plan frontier extremes.
func RenderPlanSummaries(title string, sums []PlanSummary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	for _, s := range sums {
		fmt.Fprintf(&b, "maxQPS/chip=%7.3f  minTTFT=%8.4fs  points=%-3d  %s\n",
			s.MaxQPSChip, s.MinTTFT, s.Points, s.Desc)
	}
	return b.String()
}

// SortPlanSummaries orders plan summaries by descending max QPS/chip.
func SortPlanSummaries(sums []PlanSummary) {
	sort.SliceStable(sums, func(i, j int) bool { return sums[i].MaxQPSChip > sums[j].MaxQPSChip })
}
