// Package bench is the experiment harness: one function per table and
// figure in the paper's characterization (§5) and evaluation (§7)
// sections, each returning typed rows/series that cmd/ragochar,
// cmd/ragoeval, and the repository's benchmarks render. EXPERIMENTS.md
// records how each output compares with the paper's reported values.
package bench

import (
	"fmt"
	"sort"

	"rago/internal/core"
	"rago/internal/hw"
	"rago/internal/perf"
	"rago/internal/pipeline"
	"rago/internal/ragschema"
	"rago/internal/stageperf"
)

// Series is one labeled curve: (x, y) points, e.g. a Pareto frontier with
// x = TTFT seconds and y = QPS/chip.
type Series struct {
	Name   string
	X, Y   []float64
	XLabel string
	YLabel string
}

// Cell is one heatmap entry.
type Cell struct {
	Row, Col string
	Value    float64
}

// Breakdown is a normalized time/resource share split for one
// configuration (§5's breakdown plots: values sum to 100).
type Breakdown struct {
	Label  string
	Stages []string
	Shares []float64
}

// pool64 returns the default §5 environment (16 hosts, 64 XPU-C).
func pool64() hw.Cluster { return hw.DefaultCluster() }

// pool128 returns the §7 environment (32 hosts, 128 XPU-C).
func pool128() hw.Cluster { return hw.LargeCluster() }

// optimize builds and runs the optimizer for a schema.
func optimize(s ragschema.Schema, cluster hw.Cluster, norm int) (*core.Optimizer, []core.SchedulePoint, error) {
	opts := core.DefaultOptions(cluster)
	opts.NormalizeChips = norm
	o, err := core.NewOptimizer(s, opts)
	if err != nil {
		return nil, nil, err
	}
	return o, o.Optimize(), nil
}

// frontierSeries converts a schedule frontier to a TTFT-vs-QPS/chip curve.
func frontierSeries(name string, pts []core.SchedulePoint) Series {
	s := Series{Name: name, XLabel: "TTFT (s)", YLabel: "QPS/chip"}
	for _, p := range pts {
		s.X = append(s.X, p.Metrics.TTFT)
		s.Y = append(s.Y, p.Metrics.QPSPerChip)
	}
	return s
}

// maxQPSPerChip extracts the best throughput point of a frontier.
func maxQPSPerChip(pts []core.SchedulePoint) (core.SchedulePoint, error) {
	best, ok := perf.MaxQPSPerChip(pts)
	if !ok {
		return core.SchedulePoint{}, fmt.Errorf("bench: empty frontier")
	}
	return best, nil
}

// componentCost is the §5 breakdown methodology: each component's share is
// its resource-time per request at its own maximum QPS per chip-equivalent
// (one CPU host counts as its four XPUs, §5 "4 XPUs per host server").
// Lower max throughput means more resource-seconds per request.
func componentCost(prof *stageperf.Profiler, st pipeline.Stage, maxBatch int) (float64, error) {
	switch st.Kind {
	case pipeline.KindRetrieval:
		servers := prof.MinRetrievalServers()
		best := 0.0
		for b := 1; b <= 1024; b <<= 1 {
			if pt := prof.Eval(st, servers, b); pt.OK && pt.QPS > best {
				best = pt.QPS
			}
		}
		if best <= 0 {
			return 0, fmt.Errorf("bench: retrieval infeasible")
		}
		chipEq := float64(servers) * float64(prof.Host.XPUsPerHost)
		return chipEq / best, nil
	default:
		// Smallest chip count that fits the model, replication-free;
		// per-chip throughput maximized over batch.
		chips := prof.Sim.MinChips(st.Model)
		if chips == 0 {
			return 0, fmt.Errorf("bench: %v does not fit any chip count", st.Kind)
		}
		best := 0.0
		for b := 1; b <= maxBatch; b <<= 1 {
			if pt := prof.Eval(st, chips, b); pt.OK && pt.QPS > best {
				best = pt.QPS
			}
		}
		if best <= 0 {
			return 0, fmt.Errorf("bench: %v infeasible", st.Kind)
		}
		return float64(chips) / best, nil
	}
}

// breakdown computes the normalized resource-time shares of a schema's
// stages (§5 plots). Decode-type stages use large batches (continuous
// batching); pre-decode stages are capped at maxPreBatch.
func breakdown(schema ragschema.Schema, chip hw.XPU, label string) (Breakdown, error) {
	pipe, err := pipeline.Build(schema)
	if err != nil {
		return Breakdown{}, err
	}
	prof := stageperf.New(chip, hw.EPYCHost, schema)
	out := Breakdown{Label: label}
	var total float64
	costs := make([]float64, 0, len(pipe.Stages))
	for _, st := range pipe.Stages {
		maxBatch := 32
		if st.Kind.Autoregressive() {
			maxBatch = 2048
		}
		c, err := componentCost(prof, st, maxBatch)
		if err != nil {
			return Breakdown{}, err
		}
		// Iterative retrieval repeats the retrieval cost.
		if st.Kind == pipeline.KindRetrieval {
			c *= float64(schema.RetrievalFrequency)
		}
		costs = append(costs, c)
		total += c
		out.Stages = append(out.Stages, st.Kind.String())
	}
	for _, c := range costs {
		out.Shares = append(out.Shares, c/total*100)
	}
	return out, nil
}

// shareOf returns the percentage share of one stage kind in a breakdown.
func (b Breakdown) shareOf(kind string) float64 {
	for i, s := range b.Stages {
		if s == kind {
			return b.Shares[i]
		}
	}
	return 0
}

// RetrievalShare is the "% time spent on retrieval" quantity Fig. 7 plots.
func RetrievalShare(schema ragschema.Schema, chip hw.XPU) (float64, error) {
	b, err := breakdown(schema, chip, "")
	if err != nil {
		return 0, err
	}
	return b.shareOf("retrieval"), nil
}

// sortCells orders cells deterministically for stable rendering.
func sortCells(cells []Cell) {
	sort.SliceStable(cells, func(i, j int) bool {
		if cells[i].Row != cells[j].Row {
			return cells[i].Row < cells[j].Row
		}
		return cells[i].Col < cells[j].Col
	})
}
