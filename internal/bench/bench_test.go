package bench

import (
	"strings"
	"testing"

	"rago/internal/hw"
	"rago/internal/ragschema"
)

func cellValue(t *testing.T, cells []Cell, row, col string) float64 {
	t.Helper()
	for _, c := range cells {
		if c.Row == row && c.Col == col {
			return c.Value
		}
	}
	t.Fatalf("no cell (%s, %s)", row, col)
	return 0
}

func maxY(s Series) float64 {
	best := 0.0
	for _, y := range s.Y {
		if y > best {
			best = y
		}
	}
	return best
}

func TestFigure5Shapes(t *testing.T) {
	series, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("got %d series", len(series))
	}
	byName := map[string]Series{}
	for _, s := range series {
		byName[s.Name] = s
	}
	rag1, rag8 := maxY(byName["RAG 1B"]), maxY(byName["RAG 8B"])
	llm8, llm70 := maxY(byName["LLM-only 8B"]), maxY(byName["LLM-only 70B"])
	// Takeaway 1: RAG 8B beats LLM-only 70B (paper: 1.5x).
	if rag8 <= llm70 {
		t.Errorf("RAG 8B (%.2f) should beat LLM-only 70B (%.2f)", rag8, llm70)
	}
	// Takeaway 2: RAG 1B ~ RAG 8B (both retrieval-bound).
	if rag1 < rag8*0.85 || rag1 > rag8*1.15 {
		t.Errorf("RAG 1B (%.2f) should tie RAG 8B (%.2f)", rag1, rag8)
	}
	// Takeaway 3: RAG 1B's QPS/chip does not scale 8x over LLM-only 8B
	// (retrieval overhead outweighs the smaller model).
	if rag1 > llm8*8 {
		t.Errorf("RAG 1B (%.2f) scaling vs LLM-only 8B (%.2f) should be sub-proportional", rag1, llm8)
	}
}

func TestFigure6QueryScaling(t *testing.T) {
	series, err := Figure6QPS(8e9)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: as query counts double, QPS nearly halves (retrieval-bound
	// 8B model).
	q1, q2, q4, q8 := maxY(series[0]), maxY(series[1]), maxY(series[2]), maxY(series[3])
	for _, r := range []struct {
		name string
		a, b float64
	}{{"1->2", q1, q2}, {"2->4", q2, q4}, {"4->8", q4, q8}} {
		ratio := r.a / r.b
		if ratio < 1.7 || ratio > 2.3 {
			t.Errorf("queries %s: QPS ratio %.2f, want ~2 (retrieval halves)", r.name, ratio)
		}
	}
	// The no-retrieval reference (same prefix) beats all retrieval
	// configurations.
	noRetr := maxY(series[4])
	if noRetr <= q1 {
		t.Errorf("no-retrieval (%.2f) should beat 1-query (%.2f)", noRetr, q1)
	}
}

func TestFigure6BreakdownShares(t *testing.T) {
	bds, err := Figure6Breakdown(8e9)
	if err != nil {
		t.Fatal(err)
	}
	if len(bds) != 4 {
		t.Fatalf("got %d breakdowns", len(bds))
	}
	prev := 0.0
	for _, b := range bds {
		var sum float64
		for _, s := range b.Shares {
			sum += s
		}
		if sum < 99.9 || sum > 100.1 {
			t.Errorf("%s: shares sum to %.2f, want 100", b.Label, sum)
		}
		retr := b.shareOf("retrieval")
		if retr <= prev {
			t.Errorf("retrieval share should grow with query count: %v after %v", retr, prev)
		}
		prev = retr
	}
	// Paper: the 8B model at default config spends >50% in retrieval.
	if bds[0].shareOf("retrieval") < 50 {
		t.Errorf("8B 1-query retrieval share = %.1f%%, want > 50%%", bds[0].shareOf("retrieval"))
	}
}

func TestFigure7aXPUTrend(t *testing.T) {
	cells, err := Figure7a()
	if err != nil {
		t.Fatal(err)
	}
	// Retrieval share grows with accelerator generation for every model
	// (paper: up to +25% A->C).
	for _, size := range []string{"1B", "8B", "70B", "405B"} {
		a := cellValue(t, cells, "XPU-A", size)
		b := cellValue(t, cells, "XPU-B", size)
		c := cellValue(t, cells, "XPU-C", size)
		if !(a < b && b < c) {
			t.Errorf("%s: retrieval share not increasing across generations: %v %v %v", size, a, b, c)
		}
	}
	// Small models are retrieval-dominant; 405B is inference-dominant.
	if v := cellValue(t, cells, "XPU-C", "1B"); v < 50 {
		t.Errorf("1B on XPU-C retrieval share = %.1f, want > 50", v)
	}
	if v := cellValue(t, cells, "XPU-C", "405B"); v > 30 {
		t.Errorf("405B on XPU-C retrieval share = %.1f, want < 30", v)
	}
}

func TestFigure7bScanTrend(t *testing.T) {
	cells, err := Figure7b()
	if err != nil {
		t.Fatal(err)
	}
	// More scanned vectors -> more retrieval share, for every model.
	for _, size := range []string{"1B", "8B", "70B", "405B"} {
		lo := cellValue(t, cells, "0.01%", size)
		mid := cellValue(t, cells, "0.10%", size)
		hi := cellValue(t, cells, "1.00%", size)
		if !(lo < mid && mid < hi) {
			t.Errorf("%s: retrieval share not increasing with scan fraction: %v %v %v", size, lo, mid, hi)
		}
	}
}

func TestFigure7cMatchesPaperAnchors(t *testing.T) {
	cells, err := Figure7c()
	if err != nil {
		t.Fatal(err)
	}
	// Paper's corners: 86.3% at (prefix 128, decode 128) and 30.9% at
	// (prefix 2048, decode 512). Allow +-8 percentage points.
	hi := cellValue(t, cells, "decode=128", "prefix=128")
	if hi < 78 || hi > 94 {
		t.Errorf("short-sequence retrieval share = %.1f%%, want ~86.3%%", hi)
	}
	lo := cellValue(t, cells, "decode=512", "prefix=2048")
	if lo < 23 || lo > 39 {
		t.Errorf("long-sequence retrieval share = %.1f%%, want ~30.9%%", lo)
	}
	// Monotone: share falls with prefix length at fixed decode.
	for _, dec := range []string{"decode=128", "decode=256", "decode=512"} {
		prev := 101.0
		for _, pre := range []string{"prefix=128", "prefix=256", "prefix=512", "prefix=1024", "prefix=2048"} {
			v := cellValue(t, cells, dec, pre)
			if v >= prev {
				t.Errorf("%s/%s: share %v not decreasing", dec, pre, v)
			}
			prev = v
		}
	}
}

func TestFigure8ContextDegradation(t *testing.T) {
	series, err := Figure8QPS(70e9)
	if err != nil {
		t.Fatal(err)
	}
	// QPS/chip falls monotonically as context grows (encode dominates).
	for i := 1; i < len(series); i++ {
		if maxY(series[i]) >= maxY(series[i-1]) {
			t.Errorf("QPS should fall with context: %s %.3f >= %s %.3f",
				series[i].Name, maxY(series[i]), series[i-1].Name, maxY(series[i-1]))
		}
	}
}

func TestFigure8EncodeDominates(t *testing.T) {
	bds, err := Figure8Breakdown(70e9)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: at >= 1M tokens the database encoder is the bottleneck,
	// and retrieval is negligible (<1%).
	for _, b := range bds[1:] { // 1M and 10M
		if b.shareOf("encode") < 50 {
			t.Errorf("%s: encode share = %.1f%%, want > 50%%", b.Label, b.shareOf("encode"))
		}
		if b.shareOf("retrieval") > 1 {
			t.Errorf("%s: retrieval share = %.2f%%, want < 1%%", b.Label, b.shareOf("retrieval"))
		}
	}
	// Encode share grows with context length.
	if !(bds[0].shareOf("encode") < bds[1].shareOf("encode")) {
		t.Errorf("encode share should grow with context")
	}
}

func TestLongContextSpeedupOrders(t *testing.T) {
	ttftX, qpsX, err := LongContextSpeedup(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 2852x TTFT, 6634x QPS/chip. Our model lands within the
	// same orders of magnitude; the win must be enormous either way.
	if ttftX < 100 {
		t.Errorf("TTFT speedup = %.0fx, want >= 100x", ttftX)
	}
	if qpsX < 20 {
		t.Errorf("QPS/chip speedup = %.0fx, want >= 20x", qpsX)
	}
}

func TestFigure10PaperAnchors(t *testing.T) {
	cells, err := Figure10()
	if err != nil {
		t.Fatal(err)
	}
	// Diagonal anchors (paper): 1.71 at 4/4, 2.77 at 64/64.
	d4 := cellValue(t, cells, "iter=4", "dec=4")
	if d4 < 1.4 || d4 > 2.1 {
		t.Errorf("4/4 normalized latency = %.2f, want ~1.71", d4)
	}
	d64 := cellValue(t, cells, "iter=64", "dec=64")
	if d64 < 2.3 || d64 > 3.4 {
		t.Errorf("64/64 normalized latency = %.2f, want ~2.77", d64)
	}
	// Off-diagonal anchor: 1.14 at iter=16/dec=64.
	o := cellValue(t, cells, "iter=16", "dec=64")
	if o < 1.0 || o > 1.35 {
		t.Errorf("16/64 normalized latency = %.2f, want ~1.14", o)
	}
	// Bottom row: iterative batch 1 costs nothing.
	if v := cellValue(t, cells, "iter=1", "dec=256"); v > 1.05 {
		t.Errorf("1/256 normalized latency = %.2f, want ~1.0", v)
	}
}

func TestFigure9aShapes(t *testing.T) {
	series, err := Figure9a(70e9)
	if err != nil {
		t.Fatal(err)
	}
	// At the largest decode batch, TPOT strictly grows with retrieval
	// frequency (paper: the gap widens at large batches).
	last := func(s Series) float64 { return s.Y[len(s.Y)-1] }
	for i := 1; i < len(series); i++ {
		if last(series[i]) <= last(series[i-1]) {
			t.Errorf("TPOT at max batch should grow with frequency: %s %.4f vs %s %.4f",
				series[i].Name, last(series[i]), series[i-1].Name, last(series[i-1]))
		}
	}
	// And TPOT grows with decode batch beyond the small-batch region.
	for _, s := range series {
		if s.Y[len(s.Y)-1] <= s.Y[2] {
			t.Errorf("%s: TPOT at batch 1024 (%.4f) should exceed batch 16 (%.4f)", s.Name, s.Y[len(s.Y)-1], s.Y[2])
		}
	}
}

func TestFigure9bReversal(t *testing.T) {
	series, err := Figure9b(70e9)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Series{}
	for _, s := range series {
		byName[s.Name] = s
	}
	// Paper: at decode batch 256 larger iterative batches REDUCE TPOT;
	// at decode batch 64 the curve is non-monotone (minimum in the
	// middle, climbing again at 64).
	d256 := byName["dec batch 256"]
	if d256.Y[0] <= d256.Y[len(d256.Y)-1] {
		t.Errorf("dec=256: TPOT should fall from iter=1 (%.4f) to iter=64 (%.4f)", d256.Y[0], d256.Y[len(d256.Y)-1])
	}
	d64 := byName["dec batch 64"]
	min := d64.Y[0]
	for _, y := range d64.Y {
		if y < min {
			min = y
		}
	}
	if !(min < d64.Y[0] && min < d64.Y[len(d64.Y)-1]) {
		t.Errorf("dec=64: expected interior TPOT minimum, got %v", d64.Y)
	}
}

func TestFigure11RewriterTTFT(t *testing.T) {
	bds, ratio, err := Figure11()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: rewriter+reranker barely consume resources...
	for _, b := range bds {
		if s := b.shareOf("rewrite-prefix") + b.shareOf("rewrite-decode") + b.shareOf("rerank"); s > 15 {
			t.Errorf("%s: rewriter+reranker share = %.1f%%, want small", b.Label, s)
		}
	}
	// ...but the rewriter's autoregressive decode inflates TTFT
	// (paper: 2.4x; accept 1.4-3.5x).
	if ratio < 1.4 || ratio > 3.5 {
		t.Errorf("rewriter TTFT inflation = %.2fx, want ~2.4x", ratio)
	}
}

func TestFigure15CaseII(t *testing.T) {
	rago, base, gain, err := Figure15(EvalCaseII)
	if err != nil {
		t.Fatal(err)
	}
	if gain < 1.3 || gain > 2.3 {
		t.Errorf("Case II RAGO gain = %.2fx, want ~1.7x", gain)
	}
	if len(rago.X) == 0 || len(base.X) == 0 {
		t.Errorf("empty frontiers")
	}
}

func TestFigure16ComposesGlobalPareto(t *testing.T) {
	sums, global, err := Figure16(EvalCaseII, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) < 2 {
		t.Fatalf("want multiple plans, got %d", len(sums))
	}
	// The global frontier's best throughput equals the best plan's.
	if maxY(global) < sums[0].MaxQPSChip*0.999 {
		t.Errorf("global Pareto (%.3f) below best plan (%.3f)", maxY(global), sums[0].MaxQPSChip)
	}
	// Different plans should win at different objectives (the paper's
	// "no one-size-fits-all"): min-TTFT plan != max-QPS plan.
	minTTFTPlan := sums[0]
	for _, s := range sums {
		if s.MinTTFT < minTTFTPlan.MinTTFT {
			minTTFTPlan = s
		}
	}
	if minTTFTPlan.Desc == sums[0].Desc {
		t.Logf("note: one plan wins both objectives in Case II (allowed, but unusual)")
	}
}

func TestFigure17CaseIIPlacementInsensitive(t *testing.T) {
	classes, err := Figure17(EvalCaseII)
	if err != nil {
		t.Fatal(err)
	}
	dis, ok1 := classes[PlacementDisaggregated]
	col, ok2 := classes[PlacementCollocated]
	if !ok1 || !ok2 {
		t.Fatalf("missing placement classes: %v", classes)
	}
	// Paper: only ~2% max-QPS difference between collocated and
	// disaggregated in Case II. Allow 10%.
	a, b := maxY(dis), maxY(col)
	ratio := a / b
	if ratio < 1/1.10 || ratio > 1.10 {
		t.Errorf("Case II placement sensitivity = %.2f, want within 10%%", ratio)
	}
}

func TestFigure18AllocationSpread(t *testing.T) {
	spread, best, worst, err := Figure18(EvalCaseII, false)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 64.1x spread across disaggregated allocations in Case II.
	if spread < 10 {
		t.Errorf("allocation spread = %.1fx, want >> 10x (paper 64.1x)", spread)
	}
	if best.MaxQPSChip <= worst.MaxQPSChip {
		t.Errorf("best (%.3f) must beat worst (%.4f)", best.MaxQPSChip, worst.MaxQPSChip)
	}
}

func TestFigure19CaseIIReductions(t *testing.T) {
	cells, err := Figure19CaseII()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 1M context reaches ~55% reduction at burst 32 and is
	// already effective (>= 15%) at burst 2.
	v32 := cellValue(t, cells, "ctx=1M", "burst=32")
	if v32 < 40 || v32 > 70 {
		t.Errorf("1M burst-32 reduction = %.1f%%, want ~55%%", v32)
	}
	v2 := cellValue(t, cells, "ctx=1M", "burst=2")
	if v2 < 15 {
		t.Errorf("1M burst-2 reduction = %.1f%%, want >= 15%% (paper 18.7%%)", v2)
	}
	// Reduction grows with burst size.
	prev := -1.0
	for _, b := range []string{"burst=2", "burst=4", "burst=8", "burst=16", "burst=32"} {
		v := cellValue(t, cells, "ctx=1M", b)
		if v < prev {
			t.Errorf("reduction should grow with burst: %s = %v after %v", b, v, prev)
		}
		prev = v
	}
}

func TestTable4Shape(t *testing.T) {
	rows, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	get := func(name string) Table4Row {
		for _, r := range rows {
			if r.Name == name {
				return r
			}
		}
		t.Fatalf("missing row %q", name)
		return Table4Row{}
	}
	ragoMax := get("RAGO (Max QPS/Chip)")
	ragoMin := get("RAGO (Min TTFT)")
	baseMax := get("Baseline (Max QPS/Chip)")
	if ragoMax.QPSPerChip <= baseMax.QPSPerChip {
		t.Errorf("RAGO max QPS/chip (%.3f) must beat baseline (%.3f)", ragoMax.QPSPerChip, baseMax.QPSPerChip)
	}
	if ragoMin.TTFT >= ragoMax.TTFT {
		t.Errorf("min-TTFT schedule (%.3f) must be faster than max-QPS schedule (%.3f)", ragoMin.TTFT, ragoMax.TTFT)
	}
	// The paper's Table 4 max-QPS schedule dedicates most XPUs to the
	// encoder (64 of 96); ours must likewise give encode the largest
	// share.
	encodeChips := ragoMax.Schedule.Groups[0].Chips
	if encodeChips <= ragoMax.Schedule.DecodeChips {
		t.Errorf("encode chips (%d) should dominate decode chips (%d)", encodeChips, ragoMax.Schedule.DecodeChips)
	}
}

func TestRetrievalShareHelper(t *testing.T) {
	share, err := RetrievalShare(ragschema.CaseI(8e9, 1), hw.XPUC)
	if err != nil {
		t.Fatal(err)
	}
	if share < 40 || share > 85 {
		t.Errorf("default 8B retrieval share = %.1f%%, want 40-85%%", share)
	}
}

func TestRenderers(t *testing.T) {
	s := []Series{{Name: "a", X: []float64{1, 2}, Y: []float64{3, 4}, XLabel: "x", YLabel: "y"}}
	if out := RenderSeries("t", s); !strings.Contains(out, "a") || !strings.Contains(out, "3.0") {
		t.Errorf("RenderSeries output %q", out)
	}
	if out := RenderFrontierSummary("t", s); !strings.Contains(out, "max y=4.0000") {
		t.Errorf("RenderFrontierSummary output %q", out)
	}
	if out := RenderFrontierSummary("t", []Series{{Name: "e"}}); !strings.Contains(out, "empty") {
		t.Errorf("empty series should render: %q", out)
	}
	cells := []Cell{{Row: "r1", Col: "c1", Value: 1.5}, {Row: "r1", Col: "c2", Value: 2.5}}
	out := RenderHeatmap("h", cells)
	if !strings.Contains(out, "r1") || !strings.Contains(out, "1.50") {
		t.Errorf("RenderHeatmap output %q", out)
	}
	bd := []Breakdown{{Label: "l", Stages: []string{"s"}, Shares: []float64{100}}}
	if out := RenderBreakdowns("b", bd); !strings.Contains(out, "100.0%") {
		t.Errorf("RenderBreakdowns output %q", out)
	}
}
