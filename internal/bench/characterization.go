package bench

import (
	"fmt"
	"math"

	"rago/internal/hw"
	"rago/internal/model"
	"rago/internal/perf"
	"rago/internal/pipeline"
	"rago/internal/ragschema"
	"rago/internal/sim"
	"rago/internal/stageperf"
	"rago/internal/xpusim"
)

// Figure5 reproduces Fig. 5: QPS/chip-vs-TTFT Pareto frontiers for RAG
// with small models against LLM-only systems with larger models, on the
// 64-chip pool.
func Figure5() ([]Series, error) {
	configs := []struct {
		name   string
		schema ragschema.Schema
	}{
		{"RAG 1B", ragschema.CaseI(1e9, 1)},
		{"LLM-only 8B", ragschema.LLMOnly(8e9)},
		{"RAG 8B", ragschema.CaseI(8e9, 1)},
		{"LLM-only 70B", ragschema.LLMOnly(70e9)},
	}
	var out []Series
	for _, c := range configs {
		_, front, err := optimize(c.schema, pool64(), pool64().XPUs())
		if err != nil {
			return nil, err
		}
		out = append(out, frontierSeries(c.name, front))
	}
	return out, nil
}

// Figure6QPS reproduces Fig. 6a/6b: Case I Pareto frontiers at 1/2/4/8
// query vectors per retrieval, plus the no-retrieval reference with the
// same prefix length.
func Figure6QPS(generativeParams float64) ([]Series, error) {
	var out []Series
	for _, q := range []int{1, 2, 4, 8} {
		_, front, err := optimize(ragschema.CaseI(generativeParams, q), pool64(), pool64().XPUs())
		if err != nil {
			return nil, err
		}
		out = append(out, frontierSeries(fmt.Sprintf("%d queries", q), front))
	}
	// "No retrieval (same prefix len)": the full 512-token prompt
	// without the retrieval stage.
	noRetr := ragschema.LLMOnly(generativeParams)
	noRetr.PrefixTokens = 512
	noRetr.Name = "no-retrieval-same-prefix"
	_, front, err := optimize(noRetr, pool64(), pool64().XPUs())
	if err != nil {
		return nil, err
	}
	out = append(out, frontierSeries("no retrieval", front))
	return out, nil
}

// Figure6Breakdown reproduces Fig. 6c/6d: normalized resource-time shares
// of retrieval/prefix/decode across query counts.
func Figure6Breakdown(generativeParams float64) ([]Breakdown, error) {
	var out []Breakdown
	for _, q := range []int{1, 2, 4, 8} {
		b, err := breakdown(ragschema.CaseI(generativeParams, q), hw.XPUC,
			fmt.Sprintf("%d queries", q))
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// Figure7a reproduces Fig. 7a: retrieval share across XPU generations and
// model scales.
func Figure7a() ([]Cell, error) {
	var out []Cell
	for _, chip := range hw.XPUGenerations() {
		for _, params := range []float64{1e9, 8e9, 70e9, 405e9} {
			share, err := RetrievalShare(ragschema.CaseI(params, 1), chip)
			if err != nil {
				return nil, err
			}
			out = append(out, Cell{Row: chip.Name, Col: sizeName(params), Value: share})
		}
	}
	sortCells(out)
	return out, nil
}

// Figure7b reproduces Fig. 7b: retrieval share versus the scanned
// database fraction.
func Figure7b() ([]Cell, error) {
	var out []Cell
	for _, scan := range []float64{0.0001, 0.001, 0.01} {
		for _, params := range []float64{1e9, 8e9, 70e9, 405e9} {
			s := ragschema.CaseI(params, 1)
			s.ScanFraction = scan
			share, err := RetrievalShare(s, hw.XPUC)
			if err != nil {
				return nil, err
			}
			out = append(out, Cell{
				Row:   fmt.Sprintf("%.2f%%", scan*100),
				Col:   sizeName(params),
				Value: share,
			})
		}
	}
	sortCells(out)
	return out, nil
}

// Figure7c reproduces Fig. 7c: the retrieval-share heatmap over prefix
// length (128-2048) and decode length (128-512) for the 8B model.
func Figure7c() ([]Cell, error) {
	var out []Cell
	for _, decode := range []int{128, 256, 512} {
		for _, prefix := range []int{128, 256, 512, 1024, 2048} {
			s := ragschema.CaseI(8e9, 1)
			s.PrefixTokens = prefix
			s.DecodeTokens = decode
			share, err := RetrievalShare(s, hw.XPUC)
			if err != nil {
				return nil, err
			}
			out = append(out, Cell{
				Row:   fmt.Sprintf("decode=%d", decode),
				Col:   fmt.Sprintf("prefix=%d", prefix),
				Value: share,
			})
		}
	}
	return out, nil
}

// Figure8QPS reproduces Fig. 8a: Case II Pareto frontiers across context
// lengths, with the no-long-context reference.
func Figure8QPS(generativeParams float64) ([]Series, error) {
	var out []Series
	ref := ragschema.CaseI(generativeParams, 1)
	ref.Name = "no-long-context"
	_, front, err := optimize(ref, pool64(), pool64().XPUs())
	if err != nil {
		return nil, err
	}
	out = append(out, frontierSeries("no long context", front))
	for _, ctx := range []int{100_000, 1_000_000, 10_000_000} {
		_, front, err := optimize(ragschema.CaseII(generativeParams, ctx), pool64(), pool64().XPUs())
		if err != nil {
			return nil, err
		}
		out = append(out, frontierSeries(fmt.Sprintf("context %s", ctxName(ctx)), front))
	}
	return out, nil
}

// Figure8Breakdown reproduces Fig. 8b: encode/retrieval/prefix/decode
// shares across context lengths.
func Figure8Breakdown(generativeParams float64) ([]Breakdown, error) {
	var out []Breakdown
	for _, ctx := range []int{100_000, 1_000_000, 10_000_000} {
		b, err := breakdown(ragschema.CaseII(generativeParams, ctx), hw.XPUC,
			fmt.Sprintf("context %s", ctxName(ctx)))
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// LongContextSpeedup reproduces §5.2's headline comparison: RAG over a
// 1M-token uploaded document versus feeding the document to an efficient
// sparse-attention long-context LLM (global attention in one of every four
// layers, 128-token local windows elsewhere). Returns the TTFT and
// QPS/chip speedup factors (paper: 2852x and 6633x). The RAG side assumes
// cached document embeddings (§5.2 recommends caching; 15 MB for 1M
// tokens), matching the paper's per-query comparison.
func LongContextSpeedup(contextTokens int) (ttftX, qpsX float64, err error) {
	const genParams = 70e9
	cluster := pool64()
	simulator := xpusim.New(cluster.Chip)
	cfg, ok := model.GenerativeByParams(genParams)
	if !ok {
		return 0, 0, fmt.Errorf("bench: no 70B model")
	}

	// RAG side: retrieval over the tiny document database plus a
	// 512-token prefix; decode unchanged. Encode excluded (cached).
	schema := ragschema.CaseII(genParams, contextTokens)
	prof := stageperf.New(cluster.Chip, cluster.Host, schema)
	pipe, err := pipeline.Build(schema)
	if err != nil {
		return 0, 0, err
	}
	retrStage := pipe.Stages[pipe.Index(pipeline.KindRetrieval)]
	retr := prof.Eval(retrStage, 1, 1)
	pre, err := simulator.Prefix(cfg, schema.PrefixTokens, 1, cluster.XPUs())
	if err != nil {
		return 0, 0, err
	}
	ragTTFT := retr.Latency + pre.Latency
	// RAG throughput per chip: best prefix+decode split (prefix cost is
	// tiny; decode dominates).
	_, front, err := optimize(withoutEncoder(schema), cluster, cluster.XPUs())
	if err != nil {
		return 0, 0, err
	}
	ragBest, err := maxQPSPerChip(front)
	if err != nil {
		return 0, 0, err
	}

	// Long-context LLM side, computed from first principles with the
	// same roofline constants. Prefix: linear weight work for L tokens
	// plus sparse attention.
	L := float64(contextTokens)
	p := simulator.P
	effComp := cluster.Chip.PeakFLOPS * p.ComputeDerate * float64(cluster.XPUs())
	effMem := cluster.Chip.MemBW * p.MemUtil * float64(cluster.XPUs())
	linear := 2 * cfg.Params() * L
	heads, hd := float64(cfg.Heads), float64(cfg.HeadDim)
	layers := float64(cfg.Layers)
	globalLayers := layers / 4
	localLayers := layers - globalLayers
	attn := globalLayers*4*heads*hd*L*L/2 + localLayers*4*heads*hd*L*128
	llmTTFT := (linear + attn) / effComp
	if t := (cfg.ParamBytes() + L*cfg.KVBytesPerToken()) / effMem; t > llmTTFT {
		llmTTFT = t
	}

	// Long-context LLM decode: each step reads the full KV cache. The
	// KV footprint caps the batch; QPS/chip follows the step time.
	kvPerSeq := L * cfg.KVBytesPerToken()
	usable := cluster.Chip.HBMBytes*(1-p.HBMReserve)*float64(cluster.XPUs()) - cfg.ParamBytes()
	maxBatch := math.Max(1, math.Floor(usable/kvPerSeq))
	stepTime := (cfg.ParamBytes() + maxBatch*kvPerSeq) / effMem
	llmQPS := maxBatch / (float64(schema.DecodeTokens) * stepTime)
	llmQPSPerChip := llmQPS / float64(cluster.XPUs())

	return llmTTFT / ragTTFT, ragBest.Metrics.QPSPerChip / llmQPSPerChip, nil
}

// withoutEncoder strips the encode stage (cached embeddings) for the RAG
// side of the long-context comparison.
func withoutEncoder(s ragschema.Schema) ragschema.Schema {
	s.DocEncoderParams = 0
	s.ContextTokens = 0
	s.Name += "-cached-embeddings"
	return s
}

// Figure9a reproduces Fig. 9a: TPOT versus decode batch size for 1-8
// retrievals per sequence, via the token-level iterative simulator with
// real retrieval and iterative-prefix round latencies.
func Figure9a(generativeParams float64) ([]Series, error) {
	var out []Series
	for _, freq := range []int{1, 2, 4, 8} {
		s := Series{
			Name:   fmt.Sprintf("%d retrievals", freq),
			XLabel: "decode batch", YLabel: "TPOT (s)",
		}
		for _, bd := range []int{1, 4, 16, 64, 256, 1024} {
			tpot, err := iterativeTPOT(generativeParams, freq, bd, minInt(bd, 16))
			if err != nil {
				return nil, err
			}
			s.X = append(s.X, float64(bd))
			s.Y = append(s.Y, tpot)
		}
		out = append(out, s)
	}
	return out, nil
}

// Figure9b reproduces Fig. 9b: TPOT versus iterative batch size at fixed
// decode batches (4 retrievals per sequence).
func Figure9b(generativeParams float64) ([]Series, error) {
	var out []Series
	for _, bd := range []int{4, 16, 64, 256} {
		s := Series{
			Name:   fmt.Sprintf("dec batch %d", bd),
			XLabel: "iterative batch", YLabel: "TPOT (s)",
		}
		for _, bi := range []int{1, 4, 16, 64} {
			tpot, err := iterativeTPOT(generativeParams, 4, bd, bi)
			if err != nil {
				return nil, err
			}
			s.X = append(s.X, float64(bi))
			s.Y = append(s.Y, tpot)
		}
		out = append(out, s)
	}
	return out, nil
}

// iterativeTPOT runs the §5.3 token-level simulation for one operating
// point: the decode tier holds half the pool, retrieval the minimum
// servers, and each iterative round pays retrieval plus a prefix pass over
// the retrieved content.
func iterativeTPOT(generativeParams float64, freq, decodeBatch, iterBatch int) (float64, error) {
	schema := ragschema.CaseIII(generativeParams, maxInt(freq, 2))
	schema.RetrievalFrequency = freq // allow freq==1 (no iteration)
	pipe, err := pipeline.Build(schema)
	if err != nil {
		return 0, err
	}
	cluster := pool64()
	prof := stageperf.New(cluster.Chip, cluster.Host, schema)
	decIdx := pipe.Index(pipeline.KindDecode)
	decChips := cluster.XPUs() / 2
	// The decode tier cooperates on the batch (tensor/pipeline
	// parallelism across its chips): latency-optimal sharding, as Fig. 9
	// plots per-tier TPOT rather than replicated throughput.
	dec := prof.Eval(pipe.Stages[decIdx], decChips, decodeBatch)
	if !dec.OK {
		return 0, fmt.Errorf("bench: decode batch %d infeasible", decodeBatch)
	}
	stepTime := dec.StepLatency

	servers := prof.MinRetrievalServers()
	retrStage := pipe.Stages[pipe.Index(pipeline.KindRetrieval)]
	prefIdx := pipe.Index(pipeline.KindPrefix)
	iterPrefix := pipe.Stages[prefIdx]
	iterPrefix.SeqLen = schema.RetrievedTokens()
	prefChips := cluster.XPUs() - decChips

	res, err := sim.RunIterative(sim.IterativeConfig{
		DecodeBatch:      decodeBatch,
		IterBatch:        iterBatch,
		DecodeTokens:     schema.DecodeTokens,
		RetrievalsPerSeq: freq - 1,
		StepTime:         stepTime,
		RetrievalLatency: func(batch int) float64 {
			if rt := prof.Eval(retrStage, servers, batch); rt.OK {
				return rt.Latency
			}
			return math.Inf(1)
		},
		PrefixLatency: func(batch int) float64 {
			if pt := bestThroughputPoint(prof, iterPrefix, prefChips, batch); pt.OK {
				return pt.Latency
			}
			return math.Inf(1)
		},
		Sequences: 200,
		Seed:      1,
	})
	if err != nil {
		return 0, err
	}
	return res.TPOT, nil
}

// Figure10 reproduces Fig. 10b: the normalized decoding latency heatmap
// under zero-cost retrieval rounds, isolating batching idleness.
func Figure10() ([]Cell, error) {
	var out []Cell
	for _, bi := range []int{1, 2, 4, 8, 16, 64, 128, 256} {
		for _, bd := range []int{4, 8, 16, 64, 128, 256} {
			if bi > bd {
				continue // the paper's triangle: iterative batch <= decode batch
			}
			res, err := sim.RunIterative(sim.IterativeConfig{
				DecodeBatch:      bd,
				IterBatch:        bi,
				DecodeTokens:     256,
				RetrievalsPerSeq: 3,
				StepTime:         0.01,
				Sequences:        300,
				Seed:             1,
			})
			if err != nil {
				return nil, err
			}
			out = append(out, Cell{
				Row:   fmt.Sprintf("iter=%d", bi),
				Col:   fmt.Sprintf("dec=%d", bd),
				Value: res.NormalizedLatency,
			})
		}
	}
	return out, nil
}

// Figure11 reproduces Fig. 11: Case IV resource-time breakdowns and the
// TTFT inflation the rewriter causes (paper: 2.4x).
func Figure11() ([]Breakdown, float64, error) {
	var bds []Breakdown
	for _, params := range []float64{8e9, 70e9} {
		b, err := breakdown(ragschema.CaseIV(params), hw.XPUC, sizeName(params)+" LLM")
		if err != nil {
			return nil, 0, err
		}
		bds = append(bds, b)
	}
	// TTFT with and without the rewriter+reranker, at min-TTFT schedules.
	_, withFront, err := optimize(ragschema.CaseIV(70e9), pool64(), pool64().XPUs())
	if err != nil {
		return nil, 0, err
	}
	_, withoutFront, err := optimize(ragschema.CaseI(70e9, 1), pool64(), pool64().XPUs())
	if err != nil {
		return nil, 0, err
	}
	w, ok1 := perf.MinTTFT(withFront)
	wo, ok2 := perf.MinTTFT(withoutFront)
	if !ok1 || !ok2 {
		return nil, 0, fmt.Errorf("bench: empty frontier")
	}
	return bds, w.Metrics.TTFT / wo.Metrics.TTFT, nil
}

// bestThroughputPoint picks the max-QPS replication for a stage.
func bestThroughputPoint(prof *stageperf.Profiler, st pipeline.Stage, chips, batch int) stageperf.Point {
	var best stageperf.Point
	for _, c := range prof.Candidates(st, chips, batch) {
		if !best.OK || c.QPS > best.QPS {
			best = c
		}
	}
	return best
}

func sizeName(params float64) string {
	switch {
	case params >= 1e9:
		return fmt.Sprintf("%.0fB", params/1e9)
	default:
		return fmt.Sprintf("%.0fM", params/1e6)
	}
}

func ctxName(tokens int) string {
	if tokens >= 1_000_000 {
		return fmt.Sprintf("%dM", tokens/1_000_000)
	}
	return fmt.Sprintf("%dK", tokens/1_000)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
