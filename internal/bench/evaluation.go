package bench

import (
	"fmt"
	"sort"

	"rago/internal/core"
	"rago/internal/hw"
	"rago/internal/perf"
	"rago/internal/pipeline"
	"rago/internal/ragschema"
)

// EvalCase identifies the §7 evaluation workloads.
type EvalCase int

// The two case studies §7 evaluates placement/allocation on (C-I appears
// only in the micro-batching study).
const (
	EvalCaseII EvalCase = iota
	EvalCaseIV
)

func (c EvalCase) schema() ragschema.Schema {
	if c == EvalCaseII {
		return ragschema.CaseII(70e9, 1_000_000)
	}
	return ragschema.CaseIV(70e9)
}

func (c EvalCase) String() string {
	if c == EvalCaseII {
		return "Case II (long-context 1M, 70B)"
	}
	return "Case IV (rewriter+reranker, 70B)"
}

// Figure15 reproduces Fig. 15: the RAGO Pareto frontier against the
// LLM-system-extension baseline, returning both curves and the max-QPS/chip
// gain (paper: 1.7x for C-II, 1.5x for C-IV).
func Figure15(c EvalCase) (rago, baseline Series, gain float64, err error) {
	o, front, err := optimize(c.schema(), pool128(), 0)
	if err != nil {
		return Series{}, Series{}, 0, err
	}
	base := o.BaselineFrontier()
	ragoBest, err := maxQPSPerChip(front)
	if err != nil {
		return Series{}, Series{}, 0, err
	}
	baseBest, err := maxQPSPerChip(base)
	if err != nil {
		return Series{}, Series{}, 0, err
	}
	return frontierSeries("RAGO", front), frontierSeries("baseline", base),
		ragoBest.Metrics.QPSPerChip / baseBest.Metrics.QPSPerChip, nil
}

// PlanSummary is one placement+allocation plan's frontier extremes, the
// unit Fig. 16 plots and Fig. 18 aggregates.
type PlanSummary struct {
	Plan       core.Plan
	Desc       string
	MaxQPSChip float64
	MinTTFT    float64
	Points     int
}

// Figure16 reproduces Fig. 16: per-(placement, allocation) Pareto
// frontiers whose upper envelope is the global frontier. It returns plan
// summaries sorted by max QPS/chip (best first) plus the global frontier.
func Figure16(c EvalCase, topN int) ([]PlanSummary, Series, error) {
	opts := core.DefaultOptions(pool128())
	o, err := core.NewOptimizer(c.schema(), opts)
	if err != nil {
		return nil, Series{}, err
	}
	var sums []PlanSummary
	var all []core.SchedulePoint
	for _, plan := range o.Plans() {
		front := o.PlanFrontier(plan)
		if len(front) == 0 {
			continue
		}
		bestQ, _ := perf.MaxQPSPerChip(front)
		bestT, _ := perf.MinTTFT(front)
		sums = append(sums, PlanSummary{
			Plan:       plan,
			Desc:       plan.Describe(o.Pipe),
			MaxQPSChip: bestQ.Metrics.QPSPerChip,
			MinTTFT:    bestT.Metrics.TTFT,
			Points:     len(front),
		})
		all = append(all, front...)
	}
	sort.SliceStable(sums, func(i, j int) bool { return sums[i].MaxQPSChip > sums[j].MaxQPSChip })
	if topN > 0 && len(sums) > topN {
		sums = sums[:topN]
	}
	global := perf.Frontier(all)
	return sums, frontierSeries("global Pareto", global), nil
}

// PlacementClass buckets plans by their placement style for Fig. 17.
type PlacementClass int

// Placement styles compared in Fig. 17.
const (
	PlacementCollocated PlacementClass = iota
	PlacementDisaggregated
	PlacementHybrid
)

func (p PlacementClass) String() string {
	switch p {
	case PlacementCollocated:
		return "collocated"
	case PlacementDisaggregated:
		return "disaggregated"
	default:
		return "hybrid"
	}
}

// classify assigns a placement to its Fig. 17 bucket: fully singleton
// groups are disaggregated, a single all-stage group is collocated, and
// anything else is hybrid.
func classify(pl pipeline.Placement, stages int) PlacementClass {
	if len(pl.Groups) == stages {
		return PlacementDisaggregated
	}
	if len(pl.Groups) == 1 {
		return PlacementCollocated
	}
	return PlacementHybrid
}

// Figure17 reproduces Fig. 17: per-placement-class Pareto frontiers. For
// Case II the collocated variant places the encoder with the prefix on one
// pool (crossing the trivial document-retrieval stage, as the paper's
// comparison does); sensitivity there should be minimal, while Case IV
// shows up to 1.5x spread (paper).
func Figure17(c EvalCase) (map[PlacementClass]Series, error) {
	schema := c.schema()
	opts := core.DefaultOptions(pool128())
	o, err := core.NewOptimizer(schema, opts)
	if err != nil {
		return nil, err
	}
	nStages := len(o.Pipe.PreDecodeXPUStages())
	placements := o.Pipe.Placements()
	// Add the fully collocated (cross-retrieval) variant, which the
	// Fig. 13 rule excludes from RAGO's own search but Fig. 17 compares.
	placements = append(placements, o.Pipe.BaselinePlacement())

	groups := map[PlacementClass][]core.SchedulePoint{}
	for _, pl := range placements {
		sub := core.DefaultOptions(pool128())
		sub.Placements = []pipeline.Placement{pl}
		so, err := core.NewOptimizer(schema, sub)
		if err != nil {
			return nil, err
		}
		cls := classify(pl, nStages)
		groups[cls] = append(groups[cls], so.Optimize()...)
	}
	out := map[PlacementClass]Series{}
	for cls, pts := range groups {
		front := perf.Frontier(pts)
		out[cls] = frontierSeries(cls.String(), front)
	}
	return out, nil
}

// Figure18 reproduces Fig. 18: resource-allocation sensitivity. For one
// placement style it returns the spread between the best and worst
// full-budget allocation's max QPS/chip (paper: 52.5x collocated, 64.1x
// disaggregated for Case II). The collocated style puts every pre-decode
// stage on one pool (the comparison placement of §7.2, crossing Case II's
// trivial document-retrieval stage).
func Figure18(c EvalCase, collocated bool) (spread float64, best, worst PlanSummary, err error) {
	schema := c.schema()
	opts := core.DefaultOptions(pool128())
	probe, err := core.NewOptimizer(schema, opts)
	if err != nil {
		return 0, PlanSummary{}, PlanSummary{}, err
	}
	if collocated {
		opts.Placements = []pipeline.Placement{probe.Pipe.BaselinePlacement()}
	} else {
		opts.Placements = []pipeline.Placement{probe.Pipe.FullyDisaggregated()}
	}
	o, err := core.NewOptimizer(schema, opts)
	if err != nil {
		return 0, PlanSummary{}, PlanSummary{}, err
	}
	found := false
	for _, plan := range o.Plans() {
		// Fig. 18 compares deployed allocations: imbalance, not gross
		// under-allocation, should drive the spread.
		used := plan.DecodeChips
		for _, g := range plan.GroupChips {
			used += g
		}
		if used < pool128().XPUs()/2 {
			continue
		}
		front := o.PlanFrontier(plan)
		if len(front) == 0 {
			continue
		}
		bq, _ := perf.MaxQPSPerChip(front)
		sum := PlanSummary{Plan: plan, Desc: plan.Describe(o.Pipe), MaxQPSChip: bq.Metrics.QPSPerChip, Points: len(front)}
		if !found {
			best, worst, found = sum, sum, true
			continue
		}
		if sum.MaxQPSChip > best.MaxQPSChip {
			best = sum
		}
		if sum.MaxQPSChip < worst.MaxQPSChip {
			worst = sum
		}
	}
	if !found {
		return 0, PlanSummary{}, PlanSummary{}, fmt.Errorf("bench: no feasible allocation")
	}
	return best.MaxQPSChip / worst.MaxQPSChip, best, worst, nil
}

// Figure19 reproduces Fig. 19: TTFT reduction from micro-batching a burst
// of requests, as a heatmap over a per-case parameter and the burst size.
func Figure19CaseI() ([]Cell, error) {
	var out []Cell
	for _, q := range []int{1, 2, 4, 8} {
		schema := ragschema.CaseI(70e9, q)
		for _, burst := range []int{2, 4, 8, 16, 32} {
			red, err := microBatchReduction(schema, pool64(), burst)
			if err != nil {
				return nil, err
			}
			out = append(out, Cell{Row: fmt.Sprintf("queries=%d", q), Col: fmt.Sprintf("burst=%d", burst), Value: red})
		}
	}
	return out, nil
}

// Figure19CaseII sweeps context lengths.
func Figure19CaseII() ([]Cell, error) {
	var out []Cell
	for _, ctx := range []int{100_000, 1_000_000, 10_000_000} {
		schema := ragschema.CaseII(70e9, ctx)
		for _, burst := range []int{2, 4, 8, 16, 32} {
			red, err := microBatchReduction(schema, pool64(), burst)
			if err != nil {
				return nil, err
			}
			out = append(out, Cell{Row: "ctx=" + ctxName(ctx), Col: fmt.Sprintf("burst=%d", burst), Value: red})
		}
	}
	return out, nil
}

// Figure19CaseIV sweeps generative model sizes.
func Figure19CaseIV() ([]Cell, error) {
	var out []Cell
	for _, params := range []float64{8e9, 70e9} {
		schema := ragschema.CaseIV(params)
		for _, burst := range []int{2, 4, 8, 16, 32} {
			red, err := microBatchReduction(schema, pool64(), burst)
			if err != nil {
				return nil, err
			}
			out = append(out, Cell{Row: sizeName(params), Col: fmt.Sprintf("burst=%d", burst), Value: red})
		}
	}
	return out, nil
}

// microBatchReduction computes the TTFT reduction of splitting a burst
// into micro-batches of every power of two below it, keeping the best —
// the paper reports the best micro-batch size per cell.
func microBatchReduction(schema ragschema.Schema, cluster hw.Cluster, burst int) (float64, error) {
	opts := core.DefaultOptions(cluster)
	opts.NormalizeChips = cluster.XPUs()
	o, err := core.NewOptimizer(schema, opts)
	if err != nil {
		return 0, err
	}
	plan, err := balancedPlan(o)
	if err != nil {
		return 0, err
	}
	best := 0.0
	for m := 1; m < burst; m <<= 1 {
		red, err := o.BurstTTFTReduction(plan, burst, m)
		if err != nil {
			continue
		}
		if red > best {
			best = red
		}
	}
	return best, nil
}

// balancedPlan derives the plan of the max-QPS/chip schedule — the
// deployment whose burst behaviour Fig. 19 studies.
func balancedPlan(o *core.Optimizer) (core.Plan, error) {
	best, err := maxQPSPerChip(o.Optimize())
	if err != nil {
		return core.Plan{}, err
	}
	s := best.Item
	plan := core.Plan{
		Placement:   pipeline.Placement{},
		DecodeChips: s.DecodeChips,
		Servers:     s.RetrievalServers,
	}
	for _, g := range s.Groups {
		plan.Placement.Groups = append(plan.Placement.Groups, pipeline.Group{Stages: g.Stages})
		plan.GroupChips = append(plan.GroupChips, g.Chips)
	}
	return plan, nil
}

// Table4Row mirrors one row of the paper's Table 4.
type Table4Row struct {
	Name       string
	TTFT       float64
	QPSPerChip float64
	Schedule   core.Schedule
	Desc       string
}

// Table4 reproduces Table 4: RAGO's max-QPS/chip and min-TTFT schedules
// against the baseline's, for Case II at 1M context on the 128-XPU pool.
func Table4() ([]Table4Row, error) {
	o, front, err := optimize(EvalCaseII.schema(), pool128(), 0)
	if err != nil {
		return nil, err
	}
	base := o.BaselineFrontier()
	rows := make([]Table4Row, 0, 4)
	add := func(name string, p core.SchedulePoint) {
		rows = append(rows, Table4Row{
			Name:       name,
			TTFT:       p.Metrics.TTFT,
			QPSPerChip: p.Metrics.QPSPerChip,
			Schedule:   p.Item,
			Desc:       p.Item.Describe(o.Pipe),
		})
	}
	if p, ok := perf.MaxQPSPerChip(front); ok {
		add("RAGO (Max QPS/Chip)", p)
	}
	if p, ok := perf.MinTTFT(front); ok {
		add("RAGO (Min TTFT)", p)
	}
	if p, ok := perf.MaxQPSPerChip(base); ok {
		add("Baseline (Max QPS/Chip)", p)
	}
	if p, ok := perf.MinTTFT(base); ok {
		add("Baseline (Min TTFT)", p)
	}
	return rows, nil
}
