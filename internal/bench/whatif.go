package bench

import (
	"fmt"

	"rago/internal/hw"
	"rago/internal/pipeline"
	"rago/internal/ragschema"
	"rago/internal/sim"
	"rago/internal/stageperf"
)

// The paper's related-work section (§8) sketches how adjacent systems
// would shift RAG workload balance: retrieval accelerators (Chameleon)
// make serving more inference-bound, KV-cache reuse (CacheBlend/RAGCache)
// removes most prefix work, and iterative-retrieval prefetching
// (PipeRAG/RaLMSpec) hides decode stalls. These what-if experiments
// quantify each shift with the same models RAGO uses.

// WhatIfRow is one scenario outcome.
type WhatIfRow struct {
	Scenario   string
	QPSPerChip float64
	// RetrievalShare is the breakdown share (%) of retrieval, where the
	// scenario changes it.
	RetrievalShare float64
	// TPOT applies to the prefetching scenario.
	TPOT float64
}

// WhatIfRetrievalAccelerator evaluates Case I (8B) with the retrieval
// tier sped up by the given factor (a Chameleon-style accelerator):
// reports max QPS/chip and the retrieval breakdown share before/after.
func WhatIfRetrievalAccelerator(speedup float64) ([]WhatIfRow, error) {
	if speedup <= 0 {
		return nil, fmt.Errorf("bench: speedup must be positive")
	}
	base := ragschema.CaseI(8e9, 1)
	// A speedup of k is equivalent to scanning 1/k of the bytes per
	// query in the roofline model: scale the scan fraction.
	accel := base
	accel.ScanFraction = base.ScanFraction / speedup
	accel.Name = fmt.Sprintf("%s-retrieval-x%.0f", base.Name, speedup)

	var rows []WhatIfRow
	for _, c := range []struct {
		name   string
		schema ragschema.Schema
	}{{"baseline retrieval", base}, {fmt.Sprintf("%.0fx retrieval accelerator", speedup), accel}} {
		_, front, err := optimize(c.schema, pool64(), pool64().XPUs())
		if err != nil {
			return nil, err
		}
		best, err := maxQPSPerChip(front)
		if err != nil {
			return nil, err
		}
		share, err := RetrievalShare(c.schema, hw.XPUC)
		if err != nil {
			return nil, err
		}
		rows = append(rows, WhatIfRow{
			Scenario:       c.name,
			QPSPerChip:     best.Metrics.QPSPerChip,
			RetrievalShare: share,
		})
	}
	return rows, nil
}

// WhatIfKVCacheReuse evaluates Case I (8B) when the KV cache of retrieved
// documents is served from a cache (CacheBlend/RAGCache-style): the
// prefix only processes the question tokens, not the retrieved content.
func WhatIfKVCacheReuse() ([]WhatIfRow, error) {
	base := ragschema.CaseI(8e9, 1)
	cached := base
	cached.PrefixTokens = base.QuestionTokens // retrieved-content KV reused
	cached.Name = base.Name + "-kv-reuse"

	var rows []WhatIfRow
	for _, c := range []struct {
		name   string
		schema ragschema.Schema
	}{{"full prefix", base}, {"cached document KV", cached}} {
		_, front, err := optimize(c.schema, pool64(), pool64().XPUs())
		if err != nil {
			return nil, err
		}
		best, err := maxQPSPerChip(front)
		if err != nil {
			return nil, err
		}
		share, err := RetrievalShare(c.schema, hw.XPUC)
		if err != nil {
			return nil, err
		}
		rows = append(rows, WhatIfRow{
			Scenario:       c.name,
			QPSPerChip:     best.Metrics.QPSPerChip,
			RetrievalShare: share,
		})
	}
	return rows, nil
}

// WhatIfPrefetching evaluates Case III (70B, 4 retrievals) with PipeRAG-
// style approximate prefetching: iterative rounds overlap decoding
// instead of stalling it. Compares worst-case TPOT with and without the
// stall at decode batch 64 / iterative batch 16.
func WhatIfPrefetching() ([]WhatIfRow, error) {
	schema := ragschema.CaseIII(70e9, 4)
	pipe, err := pipeline.Build(schema)
	if err != nil {
		return nil, err
	}
	cluster := pool64()
	prof := stageperf.New(cluster.Chip, cluster.Host, schema)
	decIdx := pipe.Index(pipeline.KindDecode)
	dec := prof.Eval(pipe.Stages[decIdx], cluster.XPUs()/2, 64)
	if !dec.OK {
		return nil, fmt.Errorf("bench: decode infeasible")
	}
	servers := prof.MinRetrievalServers()
	retrStage := pipe.Stages[pipe.Index(pipeline.KindRetrieval)]

	run := func(prefetch bool) (float64, error) {
		cfg := sim.IterativeConfig{
			DecodeBatch:      64,
			IterBatch:        16,
			DecodeTokens:     schema.DecodeTokens,
			RetrievalsPerSeq: schema.RetrievalFrequency - 1,
			StepTime:         dec.StepLatency,
			Sequences:        200,
			Seed:             1,
		}
		if !prefetch {
			cfg.RetrievalLatency = func(batch int) float64 {
				if rt := prof.Eval(retrStage, servers, batch); rt.OK {
					return rt.Latency
				}
				return 0
			}
			// Prefix over retrieved content still stalls; prefetching
			// hides only the retrieval round.
			iterPrefix := pipe.Stages[pipe.Index(pipeline.KindPrefix)]
			iterPrefix.SeqLen = schema.RetrievedTokens()
			cfg.PrefixLatency = func(batch int) float64 {
				if pt := bestThroughputPoint(prof, iterPrefix, cluster.XPUs()/2, batch); pt.OK {
					return pt.Latency
				}
				return 0
			}
		}
		res, err := sim.RunIterative(cfg)
		if err != nil {
			return 0, err
		}
		return res.TPOT, nil
	}
	stall, err := run(false)
	if err != nil {
		return nil, err
	}
	prefetch, err := run(true)
	if err != nil {
		return nil, err
	}
	return []WhatIfRow{
		{Scenario: "synchronous iterative retrieval", TPOT: stall},
		{Scenario: "prefetched (PipeRAG-style)", TPOT: prefetch},
	}, nil
}

// RenderWhatIf prints scenario rows.
func RenderWhatIf(title string, rows []WhatIfRow) string {
	out := fmt.Sprintf("== %s ==\n", title)
	for _, r := range rows {
		out += fmt.Sprintf("%-34s", r.Scenario)
		if r.QPSPerChip > 0 {
			out += fmt.Sprintf("  QPS/chip=%7.3f", r.QPSPerChip)
		}
		if r.RetrievalShare > 0 {
			out += fmt.Sprintf("  retrieval=%5.1f%%", r.RetrievalShare)
		}
		if r.TPOT > 0 {
			out += fmt.Sprintf("  TPOT=%7.2fms", r.TPOT*1e3)
		}
		out += "\n"
	}
	return out
}
