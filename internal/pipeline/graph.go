package pipeline

import "fmt"

// The stage graph. A Pipeline's Stages are nodes in topological order;
// Succ lists each node's forward edges. A nil Succ is the common linear
// case (stage i feeds stage i+1), which every classic Fig. 3 schema
// builds; multi-source schemas build explicit fan-out/join edges. All
// graph accessors treat the two representations uniformly, so executors
// written against Succs/Preds/Entries run linear chains unchanged.

// Linear reports whether the pipeline is a plain chain.
func (p Pipeline) Linear() bool { return p.Succ == nil }

// Succs returns the successor stage indices of stage i.
func (p Pipeline) Succs(i int) []int {
	if p.Succ == nil {
		if i+1 < len(p.Stages) {
			return []int{i + 1}
		}
		return nil
	}
	return p.Succ[i]
}

// Preds returns, per stage, its predecessor stage indices.
func (p Pipeline) Preds() [][]int {
	preds := make([][]int, len(p.Stages))
	for i := range p.Stages {
		for _, s := range p.Succs(i) {
			preds[s] = append(preds[s], i)
		}
	}
	return preds
}

// Entries returns the stages with no predecessors — where a request
// starts. A linear pipeline has exactly one.
func (p Pipeline) Entries() []int {
	indeg := make([]int, len(p.Stages))
	for i := range p.Stages {
		for _, s := range p.Succs(i) {
			indeg[s]++
		}
	}
	var out []int
	for i, d := range indeg {
		if d == 0 {
			out = append(out, i)
		}
	}
	return out
}

// Reaches reports whether a forward path of at least one edge leads from
// stage a to stage b.
func (p Pipeline) Reaches(a, b int) bool {
	if p.Succ == nil {
		return a < b
	}
	if a == b {
		return false
	}
	// Edges only go forward (ValidateGraph), so a bounded scan suffices.
	seen := make([]bool, len(p.Stages))
	stack := []int{a}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range p.Succs(n) {
			if s == b {
				return true
			}
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// Indices returns every stage index of the given kind, in topological
// order (Index returns just the first).
func (p Pipeline) Indices(k Kind) []int {
	var out []int
	for i, st := range p.Stages {
		if st.Kind == k {
			out = append(out, i)
		}
	}
	return out
}

// ValidateGraph checks the structural invariants every executor relies
// on: stages are topologically ordered (edges strictly forward), the
// pipeline has exactly one prefix and one decode stage, decode is the
// unique exit, and every non-entry stage is fed by some edge.
func (p Pipeline) ValidateGraph() error {
	n := len(p.Stages)
	if n == 0 {
		return fmt.Errorf("pipeline: no stages")
	}
	if p.Succ != nil && len(p.Succ) != n {
		return fmt.Errorf("pipeline: %d stages but %d successor lists", n, len(p.Succ))
	}
	if d := len(p.Indices(KindDecode)); d != 1 {
		return fmt.Errorf("pipeline: has %d decode stages, want exactly 1 (a schedule's decode tier has nothing to run)", d)
	}
	if d := len(p.Indices(KindPrefix)); d != 1 {
		return fmt.Errorf("pipeline: has %d prefix stages, want exactly 1", d)
	}
	decIdx := p.Index(KindDecode)
	indeg := make([]int, n)
	for i := range p.Stages {
		succs := p.Succs(i)
		if len(succs) == 0 && i != decIdx {
			return fmt.Errorf("pipeline: stage %d (%v) is a dead end; only decode may terminate the graph", i, p.Stages[i].Kind)
		}
		for _, s := range p.Succs(i) {
			if s <= i || s >= n {
				return fmt.Errorf("pipeline: edge %d -> %d violates topological stage order", i, s)
			}
			indeg[s]++
		}
	}
	if indeg[decIdx] == 0 && n > 1 {
		return fmt.Errorf("pipeline: decode stage is unreachable")
	}
	return nil
}
