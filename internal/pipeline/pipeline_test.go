package pipeline

import (
	"testing"

	"rago/internal/ragschema"
)

func mustBuild(t *testing.T, s ragschema.Schema) Pipeline {
	t.Helper()
	p, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func kinds(p Pipeline) []Kind {
	out := make([]Kind, len(p.Stages))
	for i, st := range p.Stages {
		out[i] = st.Kind
	}
	return out
}

func kindsEqual(a, b []Kind) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBuildCaseI(t *testing.T) {
	p := mustBuild(t, ragschema.CaseI(8e9, 1))
	want := []Kind{KindRetrieval, KindPrefix, KindDecode}
	if !kindsEqual(kinds(p), want) {
		t.Fatalf("stages = %v, want %v", kinds(p), want)
	}
	pre := p.Stages[p.Index(KindPrefix)]
	if pre.SeqLen != 512 || pre.Items != 1 {
		t.Errorf("prefix shape = %d x %d, want 512 x 1", pre.SeqLen, pre.Items)
	}
	dec := p.Stages[p.Index(KindDecode)]
	if dec.OutTokens != 256 {
		t.Errorf("decode generates %d tokens, want 256", dec.OutTokens)
	}
	if dec.CtxLen != 512+128 {
		t.Errorf("decode avg context = %d, want 640", dec.CtxLen)
	}
	if dec.Model.Name != "Llama-8B" {
		t.Errorf("generative model = %s, want Llama-8B", dec.Model.Name)
	}
}

func TestBuildCaseII(t *testing.T) {
	p := mustBuild(t, ragschema.CaseII(70e9, 1_000_000))
	want := []Kind{KindEncode, KindRetrieval, KindPrefix, KindDecode}
	if !kindsEqual(kinds(p), want) {
		t.Fatalf("stages = %v, want %v", kinds(p), want)
	}
	enc := p.Stages[p.Index(KindEncode)]
	if enc.Model.Name != "Encoder-120M" {
		t.Errorf("encoder model = %s", enc.Model.Name)
	}
	if enc.SeqLen != 128 {
		t.Errorf("encode chunk = %d, want 128", enc.SeqLen)
	}
	if enc.Items != 7813 {
		t.Errorf("encode chunks for 1M tokens = %d, want 7813", enc.Items)
	}
	if got := enc.TokensPerRequest(); got < 1_000_000 || got > 1_000_200 {
		t.Errorf("encode tokens per request = %d, want ~1M", got)
	}
}

func TestBuildCaseIV(t *testing.T) {
	p := mustBuild(t, ragschema.CaseIV(70e9))
	want := []Kind{KindRewritePrefix, KindRewriteDecode, KindRetrieval, KindRerank, KindPrefix, KindDecode}
	if !kindsEqual(kinds(p), want) {
		t.Fatalf("stages = %v, want %v", kinds(p), want)
	}
	rw := p.Stages[p.Index(KindRewriteDecode)]
	if rw.OutTokens != 32 {
		t.Errorf("rewriter generates %d tokens, want 32 (same-length question)", rw.OutTokens)
	}
	if rw.Model.Name != "Llama-8B" {
		t.Errorf("rewriter model = %s, want Llama-8B", rw.Model.Name)
	}
	rr := p.Stages[p.Index(KindRerank)]
	if rr.Items != 16 || rr.SeqLen != 100 {
		t.Errorf("rerank shape = %d x %d, want 16 x 100", rr.Items, rr.SeqLen)
	}
}

func TestBuildLLMOnly(t *testing.T) {
	p := mustBuild(t, ragschema.LLMOnly(70e9))
	want := []Kind{KindPrefix, KindDecode}
	if !kindsEqual(kinds(p), want) {
		t.Fatalf("stages = %v, want %v", kinds(p), want)
	}
	if p.Stages[0].SeqLen != 32 {
		t.Errorf("LLM-only prompt = %d tokens, want 32", p.Stages[0].SeqLen)
	}
}

func TestBuildRejectsInvalidSchema(t *testing.T) {
	bad := ragschema.Default(8e9)
	bad.GenerativeParams = 0
	if _, err := Build(bad); err == nil {
		t.Errorf("invalid schema should not build")
	}
	weird := ragschema.Default(8e9)
	weird.RerankerParams = 30e9 // no 30B encoder architecture
	weird.RerankCandidates = 16
	if _, err := Build(weird); err == nil {
		t.Errorf("30B reranker should have no encoder architecture")
	}
}

func TestKindProperties(t *testing.T) {
	if KindRetrieval.OnXPU() {
		t.Errorf("retrieval must not run on XPUs")
	}
	for _, k := range []Kind{KindEncode, KindRewritePrefix, KindRewriteDecode, KindRerank, KindPrefix, KindDecode} {
		if !k.OnXPU() {
			t.Errorf("%v should run on XPUs", k)
		}
	}
	if !KindDecode.Autoregressive() || !KindRewriteDecode.Autoregressive() {
		t.Errorf("decode kinds should be autoregressive")
	}
	if KindPrefix.Autoregressive() {
		t.Errorf("prefix is not autoregressive")
	}
	if Kind(99).String() == "" {
		t.Errorf("unknown kind should still render")
	}
}

func TestPlacementsCaseIV(t *testing.T) {
	// Case IV pre-decode XPU stages: [rewrite-prefix rewrite-decode] |
	// retrieval | [rerank prefix]. Contiguous partitions: 2 x 2 = 4.
	p := mustBuild(t, ragschema.CaseIV(70e9))
	pls := p.Placements()
	if len(pls) != 4 {
		t.Fatalf("placements = %d, want 4", len(pls))
	}
	for _, pl := range pls {
		if err := pl.Validate(p); err != nil {
			t.Errorf("illegal placement %s: %v", pl.Describe(p), err)
		}
		// No group may span the retrieval stage.
		ret := p.Index(KindRetrieval)
		for _, g := range pl.Groups {
			lo, hi := g.Stages[0], g.Stages[len(g.Stages)-1]
			if lo < ret && hi > ret {
				t.Errorf("placement %s spans retrieval", pl.Describe(p))
			}
		}
	}
}

func TestPlacementsCaseII(t *testing.T) {
	// Case II: [encode] | retrieval | [prefix] -> exactly one pre, one
	// post partition each = 1 placement (all singletons).
	p := mustBuild(t, ragschema.CaseII(70e9, 100_000))
	pls := p.Placements()
	if len(pls) != 1 {
		t.Fatalf("placements = %d, want 1", len(pls))
	}
	if pls[0].Collocated() {
		t.Errorf("singleton placement should not be collocated")
	}
}

func TestPlacementHelpers(t *testing.T) {
	p := mustBuild(t, ragschema.CaseIV(70e9))
	dis := p.FullyDisaggregated()
	if err := dis.Validate(p); err != nil {
		t.Fatal(err)
	}
	if dis.Collocated() {
		t.Errorf("fully disaggregated placement reports collocation")
	}
	if len(dis.Groups) != 4 {
		t.Errorf("disaggregated groups = %d, want 4", len(dis.Groups))
	}
	base := p.BaselinePlacement()
	if err := base.Validate(p); err != nil {
		t.Fatal(err)
	}
	if !base.Collocated() || len(base.Groups) != 1 {
		t.Errorf("baseline should collocate everything pre-decode in one group")
	}
	// The baseline (cross-retrieval collocation) must NOT appear among
	// RAGO's legal placements.
	for _, pl := range p.Placements() {
		if len(pl.Groups) == 1 {
			t.Errorf("RAGO placement %s illegally spans retrieval", pl.Describe(p))
		}
	}
}

func TestPlacementValidateRejects(t *testing.T) {
	p := mustBuild(t, ragschema.CaseIV(70e9))
	if err := (Placement{}).Validate(p); err == nil {
		t.Errorf("empty placement should fail")
	}
	if err := (Placement{Groups: []Group{{}}}).Validate(p); err == nil {
		t.Errorf("empty group should fail")
	}
	// Wrong order.
	bad := Placement{Groups: []Group{{Stages: []int{1, 0}}, {Stages: []int{3, 4}}}}
	if err := bad.Validate(p); err == nil {
		t.Errorf("out-of-order placement should fail")
	}
}

func TestDescribe(t *testing.T) {
	p := mustBuild(t, ragschema.CaseIV(70e9))
	got := p.BaselinePlacement().Describe(p)
	want := "[rewrite-prefix+rewrite-decode+rerank+prefix]"
	if got != want {
		t.Errorf("Describe = %q, want %q", got, want)
	}
}
