package pipeline

import (
	"testing"

	"rago/internal/ragschema"
)

func mustBuild(t *testing.T, s ragschema.Schema) Pipeline {
	t.Helper()
	p, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func kinds(p Pipeline) []Kind {
	out := make([]Kind, len(p.Stages))
	for i, st := range p.Stages {
		out[i] = st.Kind
	}
	return out
}

func kindsEqual(a, b []Kind) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBuildCaseI(t *testing.T) {
	p := mustBuild(t, ragschema.CaseI(8e9, 1))
	want := []Kind{KindRetrieval, KindPrefix, KindDecode}
	if !kindsEqual(kinds(p), want) {
		t.Fatalf("stages = %v, want %v", kinds(p), want)
	}
	pre := p.Stages[p.Index(KindPrefix)]
	if pre.SeqLen != 512 || pre.Items != 1 {
		t.Errorf("prefix shape = %d x %d, want 512 x 1", pre.SeqLen, pre.Items)
	}
	dec := p.Stages[p.Index(KindDecode)]
	if dec.OutTokens != 256 {
		t.Errorf("decode generates %d tokens, want 256", dec.OutTokens)
	}
	if dec.CtxLen != 512+128 {
		t.Errorf("decode avg context = %d, want 640", dec.CtxLen)
	}
	if dec.Model.Name != "Llama-8B" {
		t.Errorf("generative model = %s, want Llama-8B", dec.Model.Name)
	}
}

func TestBuildCaseII(t *testing.T) {
	p := mustBuild(t, ragschema.CaseII(70e9, 1_000_000))
	want := []Kind{KindEncode, KindRetrieval, KindPrefix, KindDecode}
	if !kindsEqual(kinds(p), want) {
		t.Fatalf("stages = %v, want %v", kinds(p), want)
	}
	enc := p.Stages[p.Index(KindEncode)]
	if enc.Model.Name != "Encoder-120M" {
		t.Errorf("encoder model = %s", enc.Model.Name)
	}
	if enc.SeqLen != 128 {
		t.Errorf("encode chunk = %d, want 128", enc.SeqLen)
	}
	if enc.Items != 7813 {
		t.Errorf("encode chunks for 1M tokens = %d, want 7813", enc.Items)
	}
	if got := enc.TokensPerRequest(); got < 1_000_000 || got > 1_000_200 {
		t.Errorf("encode tokens per request = %d, want ~1M", got)
	}
}

func TestBuildCaseIV(t *testing.T) {
	p := mustBuild(t, ragschema.CaseIV(70e9))
	want := []Kind{KindRewritePrefix, KindRewriteDecode, KindRetrieval, KindRerank, KindPrefix, KindDecode}
	if !kindsEqual(kinds(p), want) {
		t.Fatalf("stages = %v, want %v", kinds(p), want)
	}
	rw := p.Stages[p.Index(KindRewriteDecode)]
	if rw.OutTokens != 32 {
		t.Errorf("rewriter generates %d tokens, want 32 (same-length question)", rw.OutTokens)
	}
	if rw.Model.Name != "Llama-8B" {
		t.Errorf("rewriter model = %s, want Llama-8B", rw.Model.Name)
	}
	rr := p.Stages[p.Index(KindRerank)]
	if rr.Items != 16 || rr.SeqLen != 100 {
		t.Errorf("rerank shape = %d x %d, want 16 x 100", rr.Items, rr.SeqLen)
	}
}

func TestBuildLLMOnly(t *testing.T) {
	p := mustBuild(t, ragschema.LLMOnly(70e9))
	want := []Kind{KindPrefix, KindDecode}
	if !kindsEqual(kinds(p), want) {
		t.Fatalf("stages = %v, want %v", kinds(p), want)
	}
	if p.Stages[0].SeqLen != 32 {
		t.Errorf("LLM-only prompt = %d tokens, want 32", p.Stages[0].SeqLen)
	}
}

func TestBuildRejectsInvalidSchema(t *testing.T) {
	bad := ragschema.Default(8e9)
	bad.GenerativeParams = 0
	if _, err := Build(bad); err == nil {
		t.Errorf("invalid schema should not build")
	}
	weird := ragschema.Default(8e9)
	weird.RerankerParams = 30e9 // no 30B encoder architecture
	weird.RerankCandidates = 16
	if _, err := Build(weird); err == nil {
		t.Errorf("30B reranker should have no encoder architecture")
	}
}

func TestKindProperties(t *testing.T) {
	if KindRetrieval.OnXPU() {
		t.Errorf("retrieval must not run on XPUs")
	}
	for _, k := range []Kind{KindEncode, KindRewritePrefix, KindRewriteDecode, KindRerank, KindPrefix, KindDecode} {
		if !k.OnXPU() {
			t.Errorf("%v should run on XPUs", k)
		}
	}
	if !KindDecode.Autoregressive() || !KindRewriteDecode.Autoregressive() {
		t.Errorf("decode kinds should be autoregressive")
	}
	if KindPrefix.Autoregressive() {
		t.Errorf("prefix is not autoregressive")
	}
	if Kind(99).String() == "" {
		t.Errorf("unknown kind should still render")
	}
}

func TestPlacementsCaseIV(t *testing.T) {
	// Case IV pre-decode XPU stages: [rewrite-prefix rewrite-decode] |
	// retrieval | [rerank prefix]. Contiguous partitions: 2 x 2 = 4.
	p := mustBuild(t, ragschema.CaseIV(70e9))
	pls := p.Placements()
	if len(pls) != 4 {
		t.Fatalf("placements = %d, want 4", len(pls))
	}
	for _, pl := range pls {
		if err := pl.Validate(p); err != nil {
			t.Errorf("illegal placement %s: %v", pl.Describe(p), err)
		}
		// No group may span the retrieval stage.
		ret := p.Index(KindRetrieval)
		for _, g := range pl.Groups {
			lo, hi := g.Stages[0], g.Stages[len(g.Stages)-1]
			if lo < ret && hi > ret {
				t.Errorf("placement %s spans retrieval", pl.Describe(p))
			}
		}
	}
}

func TestPlacementsCaseII(t *testing.T) {
	// Case II: [encode] | retrieval | [prefix] -> exactly one pre, one
	// post partition each = 1 placement (all singletons).
	p := mustBuild(t, ragschema.CaseII(70e9, 100_000))
	pls := p.Placements()
	if len(pls) != 1 {
		t.Fatalf("placements = %d, want 1", len(pls))
	}
	if pls[0].Collocated() {
		t.Errorf("singleton placement should not be collocated")
	}
}

func TestPlacementHelpers(t *testing.T) {
	p := mustBuild(t, ragschema.CaseIV(70e9))
	dis := p.FullyDisaggregated()
	if err := dis.Validate(p); err != nil {
		t.Fatal(err)
	}
	if dis.Collocated() {
		t.Errorf("fully disaggregated placement reports collocation")
	}
	if len(dis.Groups) != 4 {
		t.Errorf("disaggregated groups = %d, want 4", len(dis.Groups))
	}
	base := p.BaselinePlacement()
	if err := base.Validate(p); err != nil {
		t.Fatal(err)
	}
	if !base.Collocated() || len(base.Groups) != 1 {
		t.Errorf("baseline should collocate everything pre-decode in one group")
	}
	// The baseline (cross-retrieval collocation) must NOT appear among
	// RAGO's legal placements.
	for _, pl := range p.Placements() {
		if len(pl.Groups) == 1 {
			t.Errorf("RAGO placement %s illegally spans retrieval", pl.Describe(p))
		}
	}
}

func TestPlacementValidateRejects(t *testing.T) {
	p := mustBuild(t, ragschema.CaseIV(70e9))
	if err := (Placement{}).Validate(p); err == nil {
		t.Errorf("empty placement should fail")
	}
	if err := (Placement{Groups: []Group{{}}}).Validate(p); err == nil {
		t.Errorf("empty group should fail")
	}
	// Wrong order.
	bad := Placement{Groups: []Group{{Stages: []int{1, 0}}, {Stages: []int{3, 4}}}}
	if err := bad.Validate(p); err == nil {
		t.Errorf("out-of-order placement should fail")
	}
}

func TestDescribe(t *testing.T) {
	p := mustBuild(t, ragschema.CaseIV(70e9))
	got := p.BaselinePlacement().Describe(p)
	want := "[rewrite-prefix+rewrite-decode+rerank+prefix]"
	if got != want {
		t.Errorf("Describe = %q, want %q", got, want)
	}
}

// --- Stage-graph tests (multi-source fan-out) ---

func TestBuildCaseVFanOut(t *testing.T) {
	p := mustBuild(t, ragschema.CaseV(8e9, 2))
	want := []Kind{KindRetrieval, KindRetrieval, KindRerank, KindPrefix, KindDecode}
	if !kindsEqual(kinds(p), want) {
		t.Fatalf("stages = %v, want %v", kinds(p), want)
	}
	if p.Linear() {
		t.Fatal("fan-out pipeline must carry explicit edges")
	}
	if err := p.ValidateGraph(); err != nil {
		t.Fatal(err)
	}
	// Both retrievals are entries and join on the reranker.
	entries := p.Entries()
	if len(entries) != 2 || entries[0] != 0 || entries[1] != 1 {
		t.Errorf("entries = %v, want the two retrieval sources", entries)
	}
	for _, r := range []int{0, 1} {
		succs := p.Succs(r)
		if len(succs) != 1 || succs[0] != 2 {
			t.Errorf("retrieval %d successors = %v, want the rerank join", r, succs)
		}
	}
	preds := p.Preds()
	if len(preds[2]) != 2 {
		t.Errorf("rerank predecessors = %v, want both sources", preds[2])
	}
	if got := p.Indices(KindRetrieval); len(got) != 2 {
		t.Errorf("Indices(retrieval) = %v, want 2", got)
	}
	if p.Reaches(0, 4) != true || p.Reaches(0, 1) != false {
		t.Errorf("reachability wrong: source->decode must hold, source->source must not")
	}
	// Rerank candidates fan in from both sources.
	if rr := p.Stages[2]; rr.Items != 32 {
		t.Errorf("rerank scores %d candidates, want 16 per source", rr.Items)
	}
}

func TestBuildCaseVWithRewriter(t *testing.T) {
	s := ragschema.CaseV(8e9, 3)
	s.QueryRewriterParams = 8e9
	p := mustBuild(t, s)
	want := []Kind{KindRewritePrefix, KindRewriteDecode, KindRetrieval, KindRetrieval, KindRetrieval, KindRerank, KindPrefix, KindDecode}
	if !kindsEqual(kinds(p), want) {
		t.Fatalf("stages = %v, want %v", kinds(p), want)
	}
	// The rewrite decode fans out to all three sources.
	if succs := p.Succs(1); len(succs) != 3 {
		t.Errorf("rewrite-decode successors = %v, want 3-way fan-out", succs)
	}
	if entries := p.Entries(); len(entries) != 1 || entries[0] != 0 {
		t.Errorf("entries = %v, want just the rewriter", entries)
	}
	if err := p.ValidateGraph(); err != nil {
		t.Fatal(err)
	}
	// Placement split: rewriter stages sit upstream of retrieval, the
	// rerank+prefix downstream -> 2 x 2 contiguous partitions.
	if pls := p.Placements(); len(pls) != 4 {
		t.Errorf("placements = %d, want 4", len(pls))
	}
}

func TestLinearGraphAccessors(t *testing.T) {
	p := mustBuild(t, ragschema.CaseIV(70e9))
	if !p.Linear() {
		t.Fatal("classic schema should build a linear chain")
	}
	if err := p.ValidateGraph(); err != nil {
		t.Fatal(err)
	}
	if entries := p.Entries(); len(entries) != 1 || entries[0] != 0 {
		t.Errorf("linear entries = %v, want [0]", entries)
	}
	if succs := p.Succs(len(p.Stages) - 1); succs != nil {
		t.Errorf("decode successors = %v, want none", succs)
	}
	preds := p.Preds()
	for i := 1; i < len(p.Stages); i++ {
		if len(preds[i]) != 1 || preds[i][0] != i-1 {
			t.Errorf("linear preds[%d] = %v", i, preds[i])
		}
	}
	if !p.Reaches(0, 3) || p.Reaches(3, 0) {
		t.Errorf("linear reachability must follow stage order")
	}
}

func TestValidateGraphRejects(t *testing.T) {
	p := mustBuild(t, ragschema.CaseI(8e9, 1))
	noDecode := p
	noDecode.Stages = p.Stages[:len(p.Stages)-1]
	if err := noDecode.ValidateGraph(); err == nil {
		t.Error("pipeline without decode must fail graph validation")
	}
	backEdge := mustBuild(t, ragschema.CaseV(8e9, 2))
	backEdge.Succ = append([][]int(nil), backEdge.Succ...)
	backEdge.Succ[3] = []int{2} // prefix -> rerank, backwards
	if err := backEdge.ValidateGraph(); err == nil {
		t.Error("backward edge must fail graph validation")
	}
	deadEnd := mustBuild(t, ragschema.CaseV(8e9, 2))
	deadEnd.Succ = append([][]int(nil), deadEnd.Succ...)
	deadEnd.Succ[1] = nil // second source feeds nothing
	if err := deadEnd.ValidateGraph(); err == nil {
		t.Error("non-decode dead end must fail graph validation")
	}
}
