package pipeline

import (
	"fmt"
	"strings"
)

// Group is a set of stages time-multiplexed on one pool of XPUs, stored as
// indices into Pipeline.Stages in pipeline order.
type Group struct {
	Stages []int
}

// Placement assigns every pre-decode XPU stage to a group. Retrieval and
// decode are always their own (implicit) resources: retrieval runs on CPU
// servers, decode on its own XPUs (§6.1 assumptions).
type Placement struct {
	Groups []Group
}

// Collocated reports whether any group multiplexes more than one stage.
func (pl Placement) Collocated() bool {
	for _, g := range pl.Groups {
		if len(g.Stages) > 1 {
			return true
		}
	}
	return false
}

// Describe renders the placement against a pipeline, e.g.
// "[encode]+[rewrite-prefix rewrite-decode] | [rerank prefix]".
func (pl Placement) Describe(p Pipeline) string {
	var groups []string
	for _, g := range pl.Groups {
		var names []string
		for _, idx := range g.Stages {
			names = append(names, p.Stages[idx].Kind.String())
		}
		groups = append(groups, "["+strings.Join(names, "+")+"]")
	}
	return strings.Join(groups, " ")
}

// Validate checks that a placement covers exactly the pre-decode XPU
// stages of p, each once, in order within groups.
func (pl Placement) Validate(p Pipeline) error {
	want := p.PreDecodeXPUStages()
	var got []int
	for _, g := range pl.Groups {
		if len(g.Stages) == 0 {
			return fmt.Errorf("pipeline: empty placement group")
		}
		got = append(got, g.Stages...)
	}
	if len(got) != len(want) {
		return fmt.Errorf("pipeline: placement covers %d stages, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("pipeline: placement stage order %v, want %v", got, want)
		}
	}
	return nil
}

// Placements enumerates the legal task placements per Fig. 13: contiguous
// partitions of the pre-retrieval XPU stages and, separately, of the
// post-retrieval stages up to prefix. Collocation never spans the
// retrieval stage (it lives on CPUs between the two segments).
func (p Pipeline) Placements() []Placement {
	pre, post := p.splitByRetrieval()
	preParts := contiguousPartitions(pre)
	postParts := contiguousPartitions(post)
	var out []Placement
	for _, a := range preParts {
		for _, b := range postParts {
			var groups []Group
			groups = append(groups, a...)
			groups = append(groups, b...)
			out = append(out, Placement{Groups: groups})
		}
	}
	return out
}

// FullyDisaggregated places every XPU stage on its own pool.
func (p Pipeline) FullyDisaggregated() Placement {
	var groups []Group
	for _, idx := range p.PreDecodeXPUStages() {
		groups = append(groups, Group{Stages: []int{idx}})
	}
	return Placement{Groups: groups}
}

// BaselinePlacement is the LLM-system-extension baseline of §7.1: every
// additional RAG component collocated with the main LLM's prefix on one
// pool (this deliberately ignores the Fig. 13 neighbor rule — it is the
// strawman RAGO is compared against, not a RAGO candidate).
func (p Pipeline) BaselinePlacement() Placement {
	return Placement{Groups: []Group{{Stages: p.PreDecodeXPUStages()}}}
}

// splitByRetrieval partitions pre-decode XPU stage indices into those
// upstream of the retrieval tier (some retrieval stage is reachable from
// them) and those downstream. On a linear pipeline this is the classic
// before/after-the-retrieval-index split.
func (p Pipeline) splitByRetrieval() (pre, post []int) {
	retr := p.Indices(KindRetrieval)
	for _, idx := range p.PreDecodeXPUStages() {
		upstream := false
		for _, r := range retr {
			if p.Reaches(idx, r) {
				upstream = true
				break
			}
		}
		if upstream {
			pre = append(pre, idx)
		} else {
			post = append(post, idx)
		}
	}
	return pre, post
}

// contiguousPartitions returns every way to cut the ordered list into
// contiguous groups (2^(n-1) of them). An empty list yields one empty
// partition.
func contiguousPartitions(stages []int) [][]Group {
	if len(stages) == 0 {
		return [][]Group{nil}
	}
	var out [][]Group
	n := len(stages)
	for mask := 0; mask < 1<<(n-1); mask++ {
		var groups []Group
		cur := Group{Stages: []int{stages[0]}}
		for i := 1; i < n; i++ {
			if mask&(1<<(i-1)) != 0 {
				groups = append(groups, cur)
				cur = Group{Stages: []int{stages[i]}}
			} else {
				cur.Stages = append(cur.Stages, stages[i])
			}
		}
		groups = append(groups, cur)
		out = append(out, groups)
	}
	return out
}
