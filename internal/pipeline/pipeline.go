// Package pipeline turns a RAGSchema into the concrete stage sequence of
// Fig. 3 — Database Encode, Rewrite (prefix), Rewrite (decode), Retrieval,
// Rerank, Prefix, Decode — and enumerates the task placements RAGO may
// consider: per Fig. 13, neighboring stages up to the prefix phase may be
// collocated on the same XPUs, retrieval always runs disaggregated on CPU
// servers, and the main LLM's decode is always disaggregated from its
// prefix.
package pipeline

import (
	"fmt"

	"rago/internal/model"
	"rago/internal/ragschema"
)

// Kind identifies a pipeline stage type.
type Kind int

// Stage kinds in pipeline order (Fig. 3).
const (
	KindEncode Kind = iota
	KindRewritePrefix
	KindRewriteDecode
	KindRetrieval
	KindRerank
	KindPrefix
	KindDecode
)

var kindNames = map[Kind]string{
	KindEncode:        "encode",
	KindRewritePrefix: "rewrite-prefix",
	KindRewriteDecode: "rewrite-decode",
	KindRetrieval:     "retrieval",
	KindRerank:        "rerank",
	KindPrefix:        "prefix",
	KindDecode:        "decode",
}

func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// OnXPU reports whether the stage runs on accelerators; retrieval runs on
// CPU hosts (§6.1).
func (k Kind) OnXPU() bool { return k != KindRetrieval }

// Autoregressive reports whether the stage generates tokens one at a time.
func (k Kind) Autoregressive() bool { return k == KindDecode || k == KindRewriteDecode }

// Stage is one executable pipeline component with its workload shape.
type Stage struct {
	Kind  Kind
	Model model.Config // zero for retrieval

	// SeqLen and Items describe prefix-type work: Items forward passes
	// of SeqLen tokens per request (rerank scores Items candidate
	// passages; encode processes Items context chunks).
	SeqLen int
	Items  int

	// OutTokens and CtxLen describe decode-type work: OutTokens
	// generated auto-regressively with an average live context CtxLen.
	OutTokens int
	CtxLen    int

	// NProbe and ShardFanout tune retrieval-type work: IVF cells probed
	// per query and shards consulted by the scatter-gather (0 means the
	// tier's base configuration). They live on the stage value — not the
	// schedule alone — so profiler memoization and plan costing key on
	// them like any other workload shape.
	NProbe      int
	ShardFanout int
}

// Tuned returns the stage with retrieval knobs applied; non-retrieval
// stages are returned unchanged (the knobs are meaningless there).
func (st Stage) Tuned(nprobe, fanout int) Stage {
	if st.Kind != KindRetrieval {
		return st
	}
	st.NProbe = nprobe
	st.ShardFanout = fanout
	return st
}

// TokensPerRequest is the total tokens the stage touches per request.
func (st Stage) TokensPerRequest() int {
	if st.Kind.Autoregressive() {
		return st.OutTokens
	}
	return st.SeqLen * st.Items
}

// Pipeline is the stage graph for one schema: Stages are the nodes in
// topological order, Succ the forward edges. A nil Succ is the common
// linear chain (stage i feeds stage i+1); multi-source schemas carry
// explicit fan-out/join edges. See graph.go for the graph accessors.
type Pipeline struct {
	Schema ragschema.Schema
	Stages []Stage
	// Succ[i] lists the successor stage indices of stage i; nil means
	// the linear chain.
	Succ [][]int
}

// modelFor maps a parameter count to the nearest zoo architecture.
func modelFor(params float64, encoder bool) (model.Config, error) {
	if encoder {
		// One encoder family; accept sizes within 4x of it.
		ratio := params / model.Encoder120M.Params()
		if ratio < 0.25 || ratio > 4 {
			return model.Config{}, fmt.Errorf("pipeline: no encoder architecture near %.3g parameters", params)
		}
		return model.Encoder120M, nil
	}
	cfg, ok := model.GenerativeByParams(params)
	if !ok {
		return model.Config{}, fmt.Errorf("pipeline: no generative architecture near %.3g parameters", params)
	}
	return cfg, nil
}

// Build derives the stage sequence for a schema.
func Build(s ragschema.Schema) (Pipeline, error) {
	if err := s.Validate(); err != nil {
		return Pipeline{}, err
	}
	gen, err := modelFor(s.GenerativeParams, false)
	if err != nil {
		return Pipeline{}, err
	}
	var stages []Stage

	if s.HasEncoder() {
		enc, err := modelFor(s.DocEncoderParams, true)
		if err != nil {
			return Pipeline{}, err
		}
		chunk := s.ChunkTokens
		if chunk <= 0 {
			chunk = 128
		}
		stages = append(stages, Stage{
			Kind:   KindEncode,
			Model:  enc,
			SeqLen: chunk,
			Items:  (s.ContextTokens + chunk - 1) / chunk,
		})
	}
	if s.HasRewriter() {
		rw, err := modelFor(s.QueryRewriterParams, false)
		if err != nil {
			return Pipeline{}, err
		}
		stages = append(stages,
			Stage{Kind: KindRewritePrefix, Model: rw, SeqLen: s.QuestionTokens, Items: 1},
			Stage{
				Kind:      KindRewriteDecode,
				Model:     rw,
				OutTokens: s.QuestionTokens, // §5.4: rephrased question of the same length
				CtxLen:    s.QuestionTokens + s.QuestionTokens/2,
			},
		)
	}
	retrFirst, retrCount := -1, 0
	if !s.NoRetrieval() {
		retrFirst = len(stages)
		retrCount = s.Sources()
		for i := 0; i < retrCount; i++ {
			stages = append(stages, Stage{Kind: KindRetrieval})
		}
	}
	if s.HasReranker() {
		rr, err := modelFor(s.RerankerParams, true)
		if err != nil {
			return Pipeline{}, err
		}
		stages = append(stages, Stage{
			Kind:   KindRerank,
			Model:  rr,
			SeqLen: s.ChunkTokens,
			Items:  s.RerankCandidates,
		})
	}
	stages = append(stages,
		Stage{Kind: KindPrefix, Model: gen, SeqLen: s.PrefixTokens, Items: 1},
		Stage{
			Kind:      KindDecode,
			Model:     gen,
			OutTokens: s.DecodeTokens,
			CtxLen:    s.PrefixTokens + s.DecodeTokens/2,
		},
	)
	p := Pipeline{Schema: s, Stages: stages}
	if retrCount > 1 {
		p.Succ = fanOutEdges(len(stages), retrFirst, retrCount)
	}
	return p, nil
}

// fanOutEdges builds the multi-source stage graph: the chain before the
// retrieval block fans out to `count` parallel retrieval stages starting
// at `first`, which all join on the next stage (the reranker when
// present, the prefix otherwise); everything else chains linearly.
func fanOutEdges(n, first, count int) [][]int {
	succ := make([][]int, n)
	join := first + count
	for i := 0; i < n-1; i++ {
		switch {
		case i == first-1: // fan out
			for j := 0; j < count; j++ {
				succ[i] = append(succ[i], first+j)
			}
		case i >= first && i < join: // join
			succ[i] = []int{join}
		default:
			succ[i] = []int{i + 1}
		}
	}
	return succ
}

// Index returns the position of the first stage of the given kind, or -1.
func (p Pipeline) Index(k Kind) int {
	for i, st := range p.Stages {
		if st.Kind == k {
			return i
		}
	}
	return -1
}

// PreDecodeXPUStages returns indices of accelerator stages before decode,
// in pipeline order — the stages whose placement RAGO chooses.
func (p Pipeline) PreDecodeXPUStages() []int {
	var out []int
	for i, st := range p.Stages {
		if st.Kind == KindDecode {
			break
		}
		if st.Kind.OnXPU() {
			out = append(out, i)
		}
	}
	return out
}
