package xpusim

import (
	"testing"

	"rago/internal/hw"
	"rago/internal/model"
)

func TestCollectiveLatencyPenalizesWideTP(t *testing.T) {
	// Decoding a small model across a wide tensor-parallel group must
	// pay per-layer collective latency: with the constant zeroed the
	// wide sharding looks much faster than physics allows.
	withLat := New(hw.XPUC)
	noLat := New(hw.XPUC)
	noLat.P.CollectiveLatency = 0

	var wide, wideNoLat float64
	for _, c := range withLat.DecodeStepCandidates(model.Llama8B, 8, 128, 32) {
		if c.TP == 32 {
			wide = c.Latency
		}
	}
	for _, c := range noLat.DecodeStepCandidates(model.Llama8B, 8, 128, 32) {
		if c.TP == 32 {
			wideNoLat = c.Latency
		}
	}
	if wide == 0 || wideNoLat == 0 {
		t.Fatal("missing tp=32 candidates")
	}
	// 32 layers x 2 all-reduces x 5us x log2(32) = 1.6ms of pure latency.
	if wide-wideNoLat < 1e-3 {
		t.Errorf("collective latency adds %.2gs at tp=32, want >= 1ms", wide-wideNoLat)
	}
	// Single-chip decode is unaffected.
	a, err := withLat.DecodeStep(model.Llama8B, 8, 128, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := noLat.DecodeStep(model.Llama8B, 8, 128, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Latency != b.Latency {
		t.Errorf("tp=1 should not pay collective latency: %v vs %v", a.Latency, b.Latency)
	}
}

func TestWideTPDiminishingReturns(t *testing.T) {
	// Latency gains from tensor parallelism must flatten for small
	// models: going 1 -> 4 chips helps much more than 16 -> 64.
	s := New(hw.XPUC)
	lat := func(chips int) float64 {
		r, err := s.DecodeStep(model.Llama1B, 4, 128, chips)
		if err != nil {
			t.Fatalf("chips=%d: %v", chips, err)
		}
		return r.Latency
	}
	gainSmall := lat(1) / lat(4)
	gainLarge := lat(16) / lat(64)
	if gainSmall <= gainLarge {
		t.Errorf("parallelism returns should diminish: 1->4 gain %.2f vs 16->64 gain %.2f", gainSmall, gainLarge)
	}
}
