package xpusim

import (
	"testing"

	"rago/internal/hw"
	"rago/internal/model"
)

func sim() Simulator { return New(hw.XPUC) }

func TestMinChips(t *testing.T) {
	s := sim()
	cases := []struct {
		cfg  model.Config
		want int
	}{
		{model.Llama1B, 1},
		{model.Llama8B, 1},
		{model.Llama70B, 1},  // 70.6 GB fits in 96 GB * 0.9
		{model.Llama405B, 8}, // 405 GB needs 8 x 86.4 GB
		{model.Encoder120M, 1},
	}
	for _, c := range cases {
		if got := s.MinChips(c.cfg); got != c.want {
			t.Errorf("MinChips(%s) = %d, want %d", c.cfg.Name, got, c.want)
		}
	}
}

func TestDecodeWeightBandwidthFloor(t *testing.T) {
	// Batch-1 decode of a 70B model is weight-read bound: latency should
	// be close to ParamBytes / effective HBM bandwidth.
	s := sim()
	r, err := s.DecodeStep(model.Llama70B, 1, 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	floor := model.Llama70B.ParamBytes() / (s.Chip.MemBW * s.P.MemUtil)
	if r.Latency < floor {
		t.Errorf("decode latency %.4f below physical floor %.4f", r.Latency, floor)
	}
	if r.Latency > 2.0*floor {
		t.Errorf("decode latency %.4f more than 2x the weight-read floor %.4f", r.Latency, floor)
	}
}

func TestPrefixLatencyRange(t *testing.T) {
	// 8B, 512-token prefix, batch 1, one chip: the paper's setup implies
	// tens of milliseconds.
	s := sim()
	r, err := s.Prefix(model.Llama8B, 512, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Latency < 0.010 || r.Latency > 0.080 {
		t.Errorf("8B/512 prefix latency = %.4fs, want 10-80ms", r.Latency)
	}
}

func TestPrefixScalesWithChips(t *testing.T) {
	s := sim()
	prev, err := s.Prefix(model.Llama70B, 512, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, chips := range []int{2, 4, 8} {
		r, err := s.Prefix(model.Llama70B, 512, 4, chips)
		if err != nil {
			t.Fatal(err)
		}
		if r.Latency >= prev.Latency {
			t.Errorf("prefix latency did not improve at %d chips: %v >= %v", chips, r.Latency, prev.Latency)
		}
		prev = r
	}
}

func TestDecodeThroughputGrowsWithBatch(t *testing.T) {
	s := sim()
	var prevThr float64
	for _, b := range []int{1, 4, 16, 64, 256} {
		r, err := s.DecodeStep(model.Llama8B, b, 640, 1)
		if err != nil {
			t.Fatal(err)
		}
		if r.Throughput <= prevThr {
			t.Errorf("decode tokens/s did not grow at batch %d: %v <= %v", b, r.Throughput, prevThr)
		}
		prevThr = r.Throughput
	}
}

func TestDecodeLatencyGrowsWithContext(t *testing.T) {
	s := sim()
	short, err := s.DecodeStep(model.Llama8B, 128, 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	long, err := s.DecodeStep(model.Llama8B, 128, 4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	if long.Latency <= short.Latency {
		t.Errorf("KV growth should slow decode: %v <= %v", long.Latency, short.Latency)
	}
}

func TestInfeasibleConfigurations(t *testing.T) {
	s := sim()
	// 405B cannot fit on one chip.
	if _, err := s.Prefix(model.Llama405B, 512, 1, 1); err == nil {
		t.Errorf("405B on 1 chip should be infeasible")
	}
	if cands := s.DecodeStepCandidates(model.Llama405B, 1, 512, 4); cands != nil {
		t.Errorf("405B decode on 4 chips should yield no candidates")
	}
	// Encoders have no decode phase.
	if _, err := s.DecodeStep(model.Encoder120M, 1, 128, 1); err == nil {
		t.Errorf("encoder decode should be infeasible")
	}
	// Degenerate inputs.
	if cands := s.PrefixCandidates(model.Llama8B, 0, 1, 1); cands != nil {
		t.Errorf("zero-length prefix should yield no candidates")
	}
}

func TestShardingEnumeration(t *testing.T) {
	s := sim()
	cands := s.PrefixCandidates(model.Llama70B, 512, 8, 8)
	if len(cands) < 3 {
		t.Fatalf("want >= 3 shardings of 8 chips (tp/pp splits), got %d", len(cands))
	}
	seen := map[[2]int]bool{}
	for _, c := range cands {
		if c.TP*c.PP != 8 {
			t.Errorf("sharding %dx%d does not use 8 chips", c.TP, c.PP)
		}
		key := [2]int{c.TP, c.PP}
		if seen[key] {
			t.Errorf("duplicate sharding %v", key)
		}
		seen[key] = true
	}
}

func TestPipelineThroughputExceedsSerial(t *testing.T) {
	// With pipeline parallelism, steady-state prompt throughput should
	// exceed batch/latency (stages overlap across consecutive batches).
	s := sim()
	cands := s.PrefixCandidates(model.Llama70B, 512, 16, 8)
	foundPP := false
	for _, c := range cands {
		if c.PP > 1 {
			foundPP = true
			serial := float64(16) / c.Latency
			if c.Throughput <= serial {
				t.Errorf("pp=%d throughput %.2f <= serial %.2f", c.PP, c.Throughput, serial)
			}
		}
	}
	if !foundPP {
		t.Fatalf("no pipeline-parallel candidate found")
	}
}

func TestMaxDecodeBatch(t *testing.T) {
	s := sim()
	b1 := s.MaxDecodeBatch(model.Llama70B, 512, 1)
	if b1 < 1 {
		t.Fatalf("70B should support decode on one chip, got max batch %d", b1)
	}
	b8 := s.MaxDecodeBatch(model.Llama70B, 512, 8)
	if b8 <= b1 {
		t.Errorf("more chips should allow larger batches: %d <= %d", b8, b1)
	}
	bLong := s.MaxDecodeBatch(model.Llama70B, 8192, 1)
	if bLong > b1 {
		t.Errorf("longer context should shrink max batch: %d > %d", bLong, b1)
	}
	if got := s.MaxDecodeBatch(model.Llama405B, 512, 1); got != 0 {
		t.Errorf("405B decode on one chip should be impossible, got %d", got)
	}
}

func TestXPUGenerationsOrdering(t *testing.T) {
	// The same workload must run faster on newer XPUs (Table 2).
	var prev float64 = 1e9
	for _, chip := range hw.XPUGenerations() {
		s := New(chip)
		r, err := s.Prefix(model.Llama8B, 512, 4, 4)
		if err != nil {
			t.Fatalf("%s: %v", chip.Name, err)
		}
		if r.Latency >= prev {
			t.Errorf("%s prefix latency %.4f not faster than previous gen %.4f", chip.Name, r.Latency, prev)
		}
		prev = r.Latency
	}
}

func TestTensorParallelHelpsLargeModelLatency(t *testing.T) {
	s := sim()
	cands := s.DecodeStepCandidates(model.Llama70B, 8, 512, 8)
	var tp1, tp8 float64
	for _, c := range cands {
		if c.TP == 1 && c.PP == 8 {
			tp1 = c.Latency
		}
		if c.TP == 8 && c.PP == 1 {
			tp8 = c.Latency
		}
	}
	if tp1 == 0 || tp8 == 0 {
		t.Fatalf("missing tp=1/pp=8 or tp=8/pp=1 candidates")
	}
	if tp8 >= tp1 {
		t.Errorf("tensor parallelism should beat pure pipeline for decode latency: tp8=%v tp1=%v", tp8, tp1)
	}
}
