// Package xpusim is the XPU inference performance simulator (§4a of the
// paper). It models a model's prefix and decode phases as sequences of
// operators; each operator is timed with a roofline (max of compute and
// memory time, Fig. 4), compute rates are derated by a systolic-array
// fill-efficiency model, and multi-chip execution pays interconnect costs
// for tensor-parallel all-reduces and pipeline-parallel activation
// transfers.
//
// The simulator searches over tensor/pipeline/hybrid sharding strategies
// exactly as the paper describes, returning either all feasible candidates
// (for Pareto exploration) or the latency-optimal one.
package xpusim

import (
	"fmt"
	"math"

	"rago/internal/hw"
	"rago/internal/model"
	"rago/internal/roofline"
)

// Params are the simulator calibration constants. The paper's in-house
// simulator is calibrated against production accelerators; we expose the
// three standard knobs and fix them (see DESIGN.md §4) so the model
// reproduces the paper's published anchor numbers.
type Params struct {
	// ComputeDerate is the achievable fraction of peak FLOPS on top of
	// systolic fill efficiency (compiler/kernel overheads).
	ComputeDerate float64
	// MemUtil is the achievable fraction of peak HBM bandwidth.
	MemUtil float64
	// NetUtil is the achievable fraction of peak interconnect bandwidth.
	NetUtil float64
	// OpOverhead is a fixed per-operator dispatch overhead in seconds.
	OpOverhead float64
	// CollectiveLatency is the fixed per-hop latency of an all-reduce
	// step in seconds; the bandwidth-optimal ring pays log2(n) of them.
	// It is what makes very wide tensor parallelism of small models
	// unprofitable even when the bandwidth term is negligible.
	CollectiveLatency float64
	// HBMReserve is the fraction of HBM reserved for activations and
	// runtime scratch, unavailable to weights and KV cache.
	HBMReserve float64
	// MaxTensorParallel caps the tensor-parallel degree (all-reduce
	// latency and head-count limits make very wide TP unprofitable).
	MaxTensorParallel int
}

// DefaultParams returns the calibration used for all paper reproductions.
func DefaultParams() Params {
	return Params{
		ComputeDerate:     0.85,
		MemUtil:           0.85,
		NetUtil:           0.80,
		OpOverhead:        3e-6,
		CollectiveLatency: 5e-6,
		HBMReserve:        0.10,
		MaxTensorParallel: 64,
	}
}

// Simulator evaluates inference phases on a given chip.
type Simulator struct {
	Chip hw.XPU
	P    Params
}

// New returns a simulator for the chip with default calibration.
func New(chip hw.XPU) Simulator { return Simulator{Chip: chip, P: DefaultParams()} }

// Result is one evaluated (sharding, batch) operating point.
type Result struct {
	// Latency is seconds to process the batch: for prefix, the full
	// prompt pass; for decode, one auto-regressive step.
	Latency float64
	// Throughput is the steady-state rate: prompts/s for prefix
	// (pipeline-parallel stages overlap consecutive batches) and
	// tokens/s for decode.
	Throughput float64
	// TP and PP are the chosen tensor- and pipeline-parallel degrees.
	TP, PP int
	// Chips = TP*PP.
	Chips int
}

func (r Result) String() string {
	return fmt.Sprintf("lat=%.4fs thr=%.1f/s tp=%d pp=%d", r.Latency, r.Throughput, r.TP, r.PP)
}

// shardedOpTime returns the execution time of one instance of op under
// tensor parallelism of degree tp.
func (s Simulator) shardedOpTime(op model.Op, tp int) float64 {
	flops := op.FLOPs / float64(tp)
	bytes := op.Bytes / float64(tp)
	m, k, n := op.M, op.K, op.N

	compRate := s.Chip.PeakFLOPS * s.P.ComputeDerate
	if m > 0 && k > 0 && n > 0 {
		// Weighted ops shard their output (column-parallel) or
		// reduction (row-parallel) dimension; either way the per-chip
		// matmul shrinks on one non-row axis. We shard N when
		// possible, else K, matching Megatron-style layouts.
		if n >= tp {
			n = n / tp
		} else if k >= tp {
			k = k / tp
		}
		compRate *= roofline.MatmulEfficiency(m, k, n, s.Chip.SystolicDim)
	}
	memRate := s.Chip.MemBW * s.P.MemUtil
	return roofline.OpTime(flops, bytes, compRate, memRate) + s.P.OpOverhead
}

// phaseTime evaluates an operator list under (tp, pp) sharding.
//
// rows is the activation row count crossing layer boundaries (batch*seqLen
// for prefix, batch for decode) and width the residual-stream bytes per
// row; together they size tensor-parallel all-reduce payloads and
// pipeline-stage boundary transfers.
//
// It returns the end-to-end latency (all stages traversed) and the
// bottleneck stage time (the pipelined steady-state interval).
func (s Simulator) phaseTime(ops []model.Op, layers, tp, pp, rows int, width float64) (latency, bottleneck float64) {
	if len(ops) == 0 {
		return 0, 0
	}
	// Per-layer time: ops with Repeat == layers are per-layer; others
	// (LM head) run once in the final stage.
	var perLayer, once float64
	for _, op := range ops {
		t := s.shardedOpTime(op, tp)
		if op.Repeat == layers {
			perLayer += t
		} else {
			once += t * float64(op.Repeat)
		}
	}
	// Tensor-parallel all-reduces: two per layer (post-attention,
	// post-MLP), ring all-reduce of the full activation block plus the
	// fixed per-hop collective latency.
	if tp > 1 {
		payload := float64(rows) * width
		perChip := roofline.AllReduceBytes(payload, tp)
		hop := s.P.CollectiveLatency * math.Log2(float64(tp))
		perLayer += 2 * (roofline.CommTime(perChip, s.Chip.InterChipBW*s.P.NetUtil) + hop)
	}

	layersPerStage := float64(layers) / float64(pp)
	stage := perLayer * layersPerStage
	lastStage := stage + once

	// Pipeline boundary transfers.
	var comm float64
	if pp > 1 {
		boundary := roofline.CommTime(float64(rows)*width, s.Chip.InterChipBW*s.P.NetUtil)
		comm = float64(pp-1) * boundary
	}
	latency = stage*float64(pp-1) + lastStage + comm
	bottleneck = math.Max(stage, lastStage)
	return latency, bottleneck
}

// memFeasible reports whether weights plus KV cache fit across the chips.
func (s Simulator) memFeasible(cfg model.Config, kvTokens float64, chips int) bool {
	usable := s.Chip.HBMBytes * (1 - s.P.HBMReserve) * float64(chips)
	need := cfg.ParamBytes() + kvTokens*cfg.KVBytesPerToken()
	return need <= usable
}

// shardings enumerates (tp, pp) splits of chips (all powers of two).
func (s Simulator) shardings(chips, layers int) [][2]int {
	var out [][2]int
	for _, tp := range roofline.Pow2Range(1, chips) {
		if tp > s.P.MaxTensorParallel {
			continue
		}
		pp := chips / tp
		if tp*pp != chips || pp > layers {
			continue
		}
		out = append(out, [2]int{tp, pp})
	}
	return out
}

// PrefixCandidates evaluates every feasible sharding for processing a
// batch of seqLen-token prompts on chips accelerators. It returns nil when
// the model cannot fit.
func (s Simulator) PrefixCandidates(cfg model.Config, seqLen, batch, chips int) []Result {
	if seqLen <= 0 || batch <= 0 || chips <= 0 {
		return nil
	}
	kvTokens := float64(batch) * float64(seqLen)
	if !s.memFeasible(cfg, kvTokens, chips) {
		return nil
	}
	ops := cfg.PrefixOps(seqLen, batch)
	rows := batch * seqLen
	width := float64(cfg.DModel) * cfg.BytesPerParam
	var out []Result
	for _, sh := range s.shardings(chips, cfg.Layers) {
		tp, pp := sh[0], sh[1]
		lat, bottleneck := s.phaseTime(ops, cfg.Layers, tp, pp, rows, width)
		if math.IsInf(lat, 1) || lat <= 0 {
			continue
		}
		out = append(out, Result{
			Latency:    lat,
			Throughput: float64(batch) / bottleneck,
			TP:         tp, PP: pp, Chips: chips,
		})
	}
	return out
}

// Prefix returns the latency-optimal sharding for the prefix phase, or an
// error when no sharding fits.
func (s Simulator) Prefix(cfg model.Config, seqLen, batch, chips int) (Result, error) {
	cands := s.PrefixCandidates(cfg, seqLen, batch, chips)
	if len(cands) == 0 {
		return Result{}, fmt.Errorf("xpusim: %s prefix (L=%d B=%d) infeasible on %d chips", cfg.Name, seqLen, batch, chips)
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c.Latency < best.Latency {
			best = c
		}
	}
	return best, nil
}

// DecodeStepCandidates evaluates every feasible sharding for one decode
// step at the given batch and average live context length.
func (s Simulator) DecodeStepCandidates(cfg model.Config, batch, ctxLen, chips int) []Result {
	if cfg.EncoderOnly || batch <= 0 || ctxLen < 0 || chips <= 0 {
		return nil
	}
	kvTokens := float64(batch) * float64(ctxLen)
	if !s.memFeasible(cfg, kvTokens, chips) {
		return nil
	}
	ops := cfg.DecodeOps(batch, ctxLen)
	width := float64(cfg.DModel) * cfg.BytesPerParam
	var out []Result
	for _, sh := range s.shardings(chips, cfg.Layers) {
		tp, pp := sh[0], sh[1]
		lat, _ := s.phaseTime(ops, cfg.Layers, tp, pp, batch, width)
		if math.IsInf(lat, 1) || lat <= 0 {
			continue
		}
		// Decode is auto-regressive: the next token of a batch cannot
		// start before the previous finishes, so the step interval is
		// the full traversal; pipeline parallelism does not shorten it.
		out = append(out, Result{
			Latency:    lat,
			Throughput: float64(batch) / lat,
			TP:         tp, PP: pp, Chips: chips,
		})
	}
	return out
}

// DecodeStep returns the latency-optimal sharding for one decode step, or
// an error when no sharding fits.
func (s Simulator) DecodeStep(cfg model.Config, batch, ctxLen, chips int) (Result, error) {
	cands := s.DecodeStepCandidates(cfg, batch, ctxLen, chips)
	if len(cands) == 0 {
		return Result{}, fmt.Errorf("xpusim: %s decode (B=%d ctx=%d) infeasible on %d chips", cfg.Name, batch, ctxLen, chips)
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c.Latency < best.Latency {
			best = c
		}
	}
	return best, nil
}

// MaxDecodeBatch returns the largest power-of-two batch whose KV cache
// fits alongside the weights on chips accelerators at the given context
// length; zero when even batch 1 does not fit.
func (s Simulator) MaxDecodeBatch(cfg model.Config, ctxLen, chips int) int {
	best := 0
	for b := 1; b <= 1<<20; b <<= 1 {
		if s.memFeasible(cfg, float64(b)*float64(ctxLen), chips) {
			best = b
		} else {
			break
		}
	}
	return best
}

// MinChips returns the smallest power-of-two chip count on which the model
// weights fit (with reserve), independent of KV cache.
func (s Simulator) MinChips(cfg model.Config) int {
	for c := 1; c <= 1<<16; c <<= 1 {
		if s.memFeasible(cfg, 0, c) {
			return c
		}
	}
	return 0
}
