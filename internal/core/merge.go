package core

import (
	"math"
	"sort"

	"rago/internal/engine"
	"rago/internal/perf"
	"rago/internal/pipeline"
	"rago/internal/retrieval"
	"rago/internal/roofline"
	"rago/internal/stageperf"
)

// spart is one partially assembled schedule during the per-plan batch
// search, compacted for the hot loop: metrics accumulate inline (TTFT
// adds, TPOT is set only by decode, throughput is a running min) and the
// group-choice chain is an arena parent pointer instead of a copied
// Groups slice, so extending a partial allocates nothing. Because the
// components contribute independently, Pareto-pruning partials between
// components is lossless: a dominated partial stays dominated after any
// extension.
type spart struct {
	ttft float64
	tpot float64
	qps  float64
	// node indexes searchCtx.nodes (the last group's choice; parents
	// chain backwards through the groups), -1 before any group commits.
	node int32
	// retrB, decB, decR carry the scalar schedule fields until
	// materialization.
	retrB int32
	decB  int32
	decR  int32
}

// gnode is one arena entry of the group-choice chain.
type gnode struct {
	parent   int32
	batch    int32
	replicas []int // memo-owned; copied at materialization
}

// qpsUnbounded stands in for "no throughput constraint yet"; finite so the
// shared Pareto machinery (which rejects infinities) can prune partials.
const qpsUnbounded = 1e15

// groupChoice is one evaluated batching/replication option for a whole
// placement group: the latency added to TTFT, the per-request occupancy of
// the group, and the per-stage replica counts that realize it.
type groupChoice struct {
	ttft     float64
	occ      float64
	batch    int
	replicas []int
}

// searchCtx is one worker's reusable state for the per-plan search:
// the scratch metrics evaluator, the partial/arena buffers, and the
// hoisted power-of-two batch ranges. Not safe for concurrent use.
type searchCtx struct {
	o  *Optimizer
	ev *engine.Evaluator

	preBatches  []int
	retrBatches []int
	decBatches  []int
	iterBatches []int

	// Formation search dimensions (batch policy x chunk quantum), and
	// whether any of them — or a shape sample — departs from the
	// historical FIFO/unchunked/unshaped search.
	policies   []engine.BatchPolicy
	quanta     []int
	formActive bool

	// Retrieval search dimensions (nprobe x shard fanout), whether they
	// depart from the base-configuration search, and the cheapest searched
	// knob pair — the pair whose tuned scan is optimistic against every
	// stamping, used for the partials' proxy retrieval pricing.
	nprobes    []int
	fanouts    []int
	retrActive bool
	cheapNP    int
	cheapFO    int

	nodes  []gnode
	parts  []spart
	next   []spart
	stairs []partialCorner
	idx    []int32

	probeGroups []GroupSchedule
}

type partialCorner struct{ tpot, qps float64 }

// newSearchCtx builds a worker context. The scratch evaluator runs the
// exact compile arithmetic Assembler.Evaluate runs, without per-schedule
// plan allocation; on the (already validated) pipelines the optimizer
// builds it cannot fail, but a failure falls back to the Assembler.
func (o *Optimizer) newSearchCtx() *searchCtx {
	ctx := &searchCtx{
		o:           o,
		preBatches:  roofline.Pow2Range(1, o.Opts.MaxPreBatch),
		retrBatches: roofline.Pow2Range(1, o.Opts.MaxRetrievalBatch),
		decBatches:  roofline.Pow2Range(1, o.Opts.MaxDecodeBatch),
		iterBatches: []int{0},
	}
	if o.Pipe.Schema.Iterative() {
		ctx.iterBatches = roofline.Pow2Range(1, o.Opts.MaxDecodeBatch)
	}
	ctx.policies = o.Opts.Policies
	if len(ctx.policies) == 0 {
		ctx.policies = []engine.BatchPolicy{engine.PolicyFIFO}
	}
	ctx.quanta = o.Opts.ChunkQuanta
	if len(ctx.quanta) == 0 {
		ctx.quanta = []int{0}
	}
	ctx.formActive = len(o.Opts.Shapes) > 0 ||
		len(ctx.policies) != 1 || ctx.policies[0] != engine.PolicyFIFO ||
		len(ctx.quanta) != 1 || ctx.quanta[0] != 0
	ctx.nprobes, ctx.fanouts = o.searchedKnobs()
	ctx.retrActive = len(ctx.nprobes) != 1 || ctx.nprobes[0] != 0 ||
		len(ctx.fanouts) != 1 || ctx.fanouts[0] != 0
	ctx.cheapNP, ctx.cheapFO = o.cheapestKnobs(ctx.nprobes, ctx.fanouts)
	if ev, err := engine.NewEvaluator(o.Pipe, o.Prof); err == nil {
		ctx.ev = ev
	}
	return ctx
}

// searchedKnobs returns the normalized retrieval knob sets: the configured
// dimensions, or the single base configuration when unset. A retrieval-free
// pipeline searches only the base pair regardless — stamping knobs onto its
// schedules would fail validation without changing any metric.
func (o *Optimizer) searchedKnobs() (nprobes, fanouts []int) {
	nprobes, fanouts = o.Opts.NProbes, o.Opts.ShardFanouts
	if o.Pipe.Index(pipeline.KindRetrieval) < 0 {
		nprobes, fanouts = nil, nil
	}
	if len(nprobes) == 0 {
		nprobes = []int{0}
	}
	if len(fanouts) == 0 {
		fanouts = []int{0}
	}
	return nprobes, fanouts
}

// cheapestKnobs picks the searched (nprobe, fanout) pair with the smallest
// tuned scan and gather cost — the pair every other stamping prices at or
// above, so proxy pricing at it stays optimistic. The two axes minimize
// independently: scan volume scales with effective nprobe and with effective
// fanout, gather with effective fanout alone.
func (o *Optimizer) cheapestKnobs(nprobes, fanouts []int) (np, fo int) {
	effNP := func(n int) int {
		if n > 0 {
			return n
		}
		return retrieval.BaseNProbe
	}
	shards := o.Prof.Shards
	effFO := func(f int) int {
		if shards > 1 && f >= 1 && f <= shards {
			return f
		}
		if shards > 1 {
			return shards
		}
		return 1
	}
	np, fo = nprobes[0], fanouts[0]
	for _, n := range nprobes[1:] {
		if effNP(n) < effNP(np) {
			np = n
		}
	}
	for _, f := range fanouts[1:] {
		if effFO(f) < effFO(fo) {
			fo = f
		}
	}
	return np, fo
}

// evaluate assembles end-to-end metrics for one schedule through the
// scratch evaluator, applying the Assembler's QPS/chip normalization.
// Results are bit-identical to Assembler.Evaluate.
func (c *searchCtx) evaluate(s Schedule) (perf.Metrics, bool) {
	if c.ev == nil {
		return c.o.Asm.Evaluate(s)
	}
	var m perf.Metrics
	var ok bool
	if len(c.o.Opts.Shapes) > 0 {
		m, ok = c.ev.EvaluateShaped(s, c.o.Opts.Shapes)
	} else {
		m, ok = c.ev.Evaluate(s)
	}
	if !ok {
		return perf.Metrics{}, false
	}
	if n := c.o.Asm.NormalizeChips; n > 0 {
		m.QPSPerChip = m.QPS / float64(n)
	}
	return m, true
}

// materialize expands a surviving partial into a complete schedule,
// walking the group-choice chain backwards (replica slices are copied out
// of the shared memo).
func (c *searchCtx) materialize(plan Plan, bIter int, p spart) Schedule {
	ng := len(plan.Placement.Groups)
	var groups []GroupSchedule
	if ng > 0 {
		groups = make([]GroupSchedule, ng)
		node := p.node
		for gi := ng - 1; gi >= 0; gi-- {
			nd := c.nodes[node]
			groups[gi] = GroupSchedule{
				Stages:   plan.Placement.Groups[gi].Stages,
				Chips:    plan.GroupChips[gi],
				Batch:    int(nd.batch),
				Replicas: append([]int(nil), nd.replicas...),
			}
			node = nd.parent
		}
	}
	return Schedule{
		Groups:           groups,
		RetrievalServers: plan.Servers,
		RetrievalBatch:   int(p.retrB),
		DecodeChips:      plan.DecodeChips,
		DecodeBatch:      int(p.decB),
		DecodeReplicas:   int(p.decR),
		IterativeBatch:   bIter,
	}
}

// planCandidates enumerates batch policies for one plan at a fixed
// iterative batch (bIter == 0 for non-iterative workloads), pruning
// dominated combinations after each component. When inc is non-nil, the
// branch-and-bound pass additionally discards partials whose optimistic
// completion (the plan bound with the partial's own throughput ceiling,
// relaxed by boundEps for float drift) is strictly dominated by the
// incumbent frontier — lossless for the final frontier. Survivors are
// returned as complete schedules; callers re-evaluate them through the
// scratch evaluator.
func (o *Optimizer) planCandidates(ctx *searchCtx, plan Plan, bIter int, inc *perf.Incremental, bound perf.Metrics) []Schedule {
	prefixIdx := o.Pipe.Index(pipeline.KindPrefix)
	retrIdx := o.Pipe.Index(pipeline.KindRetrieval)
	decIdx := o.Pipe.Index(pipeline.KindDecode)

	// Iterative occupancy terms for this bIter (coupled to the prefix
	// group's chips and the retrieval servers, both fixed by the plan).
	var iterPrefOcc, iterRetrOcc float64
	if bIter > 0 {
		n := float64(o.Pipe.Schema.RetrievalFrequency - 1)
		prefChips, ok := o.planPrefixChips(plan, prefixIdx)
		if !ok || retrIdx < 0 {
			return nil
		}
		rt := o.Prof.Eval(o.Pipe.Stages[retrIdx].Tuned(ctx.cheapNP, ctx.cheapFO), plan.Servers, bIter)
		if !rt.OK {
			return nil
		}
		iterStage := o.Pipe.Stages[prefixIdx]
		iterStage.SeqLen = o.Pipe.Schema.RetrievedTokens()
		var pt stageperf.Point
		for _, cand := range o.Prof.Candidates(iterStage, prefChips, bIter) {
			if !pt.OK || cand.QPS > pt.QPS {
				pt = cand
			}
		}
		if !pt.OK {
			return nil
		}
		iterRetrOcc = n / rt.QPS
		iterPrefOcc = n / pt.QPS
	}

	normChips := float64(plan.chips())
	if o.Opts.NormalizeChips > 0 {
		normChips = float64(o.Opts.NormalizeChips)
	}

	ctx.nodes = ctx.nodes[:0]
	parts := append(ctx.parts[:0], spart{qps: qpsUnbounded, node: -1})
	next := ctx.next[:0]

	// Pre-decode XPU groups.
	for gi, g := range plan.Placement.Groups {
		chips := plan.GroupChips[gi]
		occExtra := 0.0
		if groupHasStage(g, prefixIdx) {
			occExtra = iterPrefOcc
		}
		choices := o.groupChoicesFor(ctx, g, chips, plan.Servers, prefixIdx, occExtra)
		if len(choices) == 0 {
			ctx.parts, ctx.next = parts, next
			return nil
		}
		next = next[:0]
		for _, c := range choices {
			for _, p := range parts {
				ctx.nodes = append(ctx.nodes, gnode{parent: p.node, batch: int32(c.batch), replicas: c.replicas})
				np := p
				np.ttft += c.ttft
				np.qps = math.Min(np.qps, 1/c.occ)
				np.node = int32(len(ctx.nodes) - 1)
				next = append(next, np)
			}
		}
		parts = prunePartialsInto(ctx, next, parts[:0])
		parts = ctx.pruneAgainstIncumbent(parts, inc, bound, normChips)
		if len(parts) == 0 {
			ctx.parts, ctx.next = parts, next
			return nil
		}
	}

	// Retrieval tier. Partials price the cheapest searched knob pair —
	// identical to the base stage when the knob dimensions are off, and an
	// optimistic proxy every stamping re-prices upward when they are on.
	if retrIdx >= 0 {
		transfer := o.Prof.RetrievalTransferLatency()
		rstage := o.Pipe.Stages[retrIdx].Tuned(ctx.cheapNP, ctx.cheapFO)
		next = next[:0]
		for _, b := range ctx.retrBatches {
			rt := o.Prof.Eval(rstage, plan.Servers, b)
			if !rt.OK {
				continue
			}
			tierQPS := 1 / (1/rt.QPS + iterRetrOcc)
			for _, p := range parts {
				np := p
				np.ttft += rt.Latency + transfer
				np.qps = math.Min(np.qps, tierQPS)
				np.retrB = int32(b)
				next = append(next, np)
			}
		}
		parts = prunePartialsInto(ctx, next, parts[:0])
		parts = ctx.pruneAgainstIncumbent(parts, inc, bound, normChips)
		if len(parts) == 0 {
			ctx.parts, ctx.next = parts, next
			return nil
		}
	}

	// Decode tier (sets TPOT).
	outTokens := float64(o.Pipe.Stages[decIdx].OutTokens)
	next = next[:0]
	for _, bd := range ctx.decBatches {
		for _, cand := range o.Prof.Candidates(o.Pipe.Stages[decIdx], plan.DecodeChips, bd) {
			var stall float64
			if bIter > 0 {
				probe := ctx.probeSchedule(plan, bIter)
				probe.DecodeBatch = bd
				probe.DecodeReplicas = cand.Replicas
				ic, ok := engine.IterativeCost(o.Pipe, o.Prof, probe)
				if !ok {
					continue
				}
				stall = ic.StallPerRequest
			}
			genTime := cand.Latency + stall
			tierQPS := float64(bd) / genTime
			tpot := genTime / outTokens
			for _, p := range parts {
				np := p
				np.tpot = tpot
				np.qps = math.Min(np.qps, tierQPS)
				np.decB = int32(bd)
				np.decR = int32(cand.Replicas)
				next = append(next, np)
			}
		}
	}
	parts = prunePartialsInto(ctx, next, parts[:0])

	out := make([]Schedule, len(parts))
	for i, p := range parts {
		out[i] = ctx.materialize(plan, bIter, p)
	}
	ctx.parts, ctx.next = parts, next
	return out
}

// probeSchedule builds the minimal schedule IterativeCost needs from the
// plan: the stall model reads only the prefix group's chip count, the
// retrieval servers, and the decode/iterative configuration, never the
// groups' batch policies.
func (c *searchCtx) probeSchedule(plan Plan, bIter int) Schedule {
	c.probeGroups = c.probeGroups[:0]
	for gi, g := range plan.Placement.Groups {
		c.probeGroups = append(c.probeGroups, GroupSchedule{
			Stages: g.Stages,
			Chips:  plan.GroupChips[gi],
			Batch:  1,
		})
	}
	return Schedule{
		Groups:           c.probeGroups,
		RetrievalServers: plan.Servers,
		DecodeChips:      plan.DecodeChips,
		IterativeBatch:   bIter,
	}
}

// pruneAgainstIncumbent drops partials whose optimistic completion bound —
// the plan's admissible bound capped by the partial's own throughput, with
// a boundEps relaxation absorbing accumulation-order float drift — is
// strictly dominated by the shared incumbent frontier. inc == nil (the
// exhaustive reference) disables the pass.
func (c *searchCtx) pruneAgainstIncumbent(parts []spart, inc *perf.Incremental, bound perf.Metrics, normChips float64) []spart {
	if inc == nil || len(parts) == 0 {
		return parts
	}
	kept := parts[:0]
	for _, p := range parts {
		q := math.Min(p.qps, bound.QPS)
		m := relax(perf.Metrics{
			TTFT:       bound.TTFT,
			TPOT:       bound.TPOT,
			QPS:        q,
			QPSPerChip: q / normChips,
			Recall:     bound.Recall,
		}, boundEps)
		if !inc.DominatedBy(m) {
			kept = append(kept, p)
		}
	}
	if d := len(parts) - len(kept); d > 0 {
		c.o.prunedPartials.Add(int64(d))
	}
	return kept
}

// groupHasStage reports whether the placement group serves stage idx.
func groupHasStage(g pipeline.Group, idx int) bool {
	for _, s := range g.Stages {
		if s == idx {
			return true
		}
	}
	return false
}

// groupKey memoizes pruned group choices across plans: the choice set
// depends only on the group's stage set, its chip count, the retrieval
// server count (pause pricing), and the iterative prefix occupancy — not
// on the rest of the plan, which is why the same predecode group recurs
// across every decode-chip and sibling-allocation variation.
type groupKey struct {
	mask    uint64
	chips   int
	servers int
	occBits uint64
}

// groupChoicesFor returns the Pareto-pruned batching/replication choices
// for one placement group on chips, memoized across plans. The returned
// slice is shared: callers must not mutate it.
func (o *Optimizer) groupChoicesFor(ctx *searchCtx, g pipeline.Group, chips, servers, prefixIdx int, iterPrefOcc float64) []groupChoice {
	key := groupKey{chips: chips, servers: servers, occBits: math.Float64bits(iterPrefOcc)}
	for _, s := range g.Stages {
		key.mask |= 1 << uint(s)
	}
	o.gmu.Lock()
	if o.gcache == nil {
		o.gcache = make(map[groupKey][]groupChoice)
	}
	cs, ok := o.gcache[key]
	o.gmu.Unlock()
	if ok {
		return cs
	}
	var choices []groupChoice
	for _, b := range ctx.preBatches {
		pause, ok := engine.RetrievalPause(o.Pipe, o.Prof, g.Stages, servers, b, ctx.cheapNP, ctx.cheapFO)
		if !ok {
			continue
		}
		choices = append(choices, o.groupChoices(g, chips, b, prefixIdx, iterPrefOcc, pause)...)
	}
	choices = pruneGroupChoices(choices)
	o.gmu.Lock()
	o.gcache[key] = choices
	o.gmu.Unlock()
	return choices
}

// groupChoices evaluates every per-stage replication combination of a
// group at one batch size, returning (ttft, occupancy) aggregates. pause
// is the per-request retrieval wait for groups spanning the retrieval
// stage (zero otherwise).
func (o *Optimizer) groupChoices(g pipeline.Group, chips, batch, prefixIdx int, iterPrefOcc, pause float64) []groupChoice {
	perStage := make([][]stageperf.Point, len(g.Stages))
	for i, idx := range g.Stages {
		cands := o.Prof.Candidates(o.Pipe.Stages[idx], chips, batch)
		// Time-multiplexed groups run one phase at a time (Fig. 14):
		// during a phase only that batch's work exists, so data-
		// parallel replication is bounded by the work items available
		// — batch*Items forward passes for encoder-type stages, batch
		// sequences for autoregressive ones. This is why collocating
		// an autoregressive rewriter with the prefix underutilizes
		// wide pools at small batches (§7.1). Dedicated single-stage
		// pools serve a stream of batches and replicate freely.
		// Candidates returns the profiler's shared cache slice, so the
		// filter builds a fresh slice instead of compacting in place.
		if len(g.Stages) > 1 {
			limit := engine.MaxPhaseReplicas(o.Pipe.Stages[idx], batch)
			kept := make([]stageperf.Point, 0, len(cands))
			for _, c := range cands {
				if c.Replicas <= limit {
					kept = append(kept, c)
				}
			}
			cands = kept
		}
		if len(cands) == 0 {
			return nil
		}
		perStage[i] = cands
	}
	var out []groupChoice
	var rec func(i int, ttft, occ float64, reps []int)
	rec = func(i int, ttft, occ float64, reps []int) {
		if i == len(perStage) {
			out = append(out, groupChoice{
				ttft:     ttft,
				occ:      occ + pause,
				batch:    batch,
				replicas: append([]int(nil), reps...),
			})
			return
		}
		for _, pt := range perStage[i] {
			extra := 0.0
			if g.Stages[i] == prefixIdx {
				extra = iterPrefOcc
			}
			rec(i+1, ttft+pt.Latency, occ+1/pt.QPS+extra, append(reps, pt.Replicas))
		}
	}
	rec(0, 0, 0, nil)
	return out
}

// pruneGroupChoices keeps Pareto-optimal (ttft, occupancy) choices via a
// sort-and-staircase sweep: sorted by (ttft asc, occ asc), a choice
// survives iff it strictly lowers the running occupancy minimum, or
// exactly duplicates the choice that set it (equal points dominate
// neither way). Output preserves input order, matching the O(n²) pairwise
// reference the differential test keeps around.
func pruneGroupChoices(cs []groupChoice) []groupChoice {
	if len(cs) <= 1 {
		return cs
	}
	idx := make([]int, len(cs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		x, y := cs[idx[a]], cs[idx[b]]
		if x.ttft != y.ttft {
			return x.ttft < y.ttft
		}
		return x.occ < y.occ
	})
	keep := make([]bool, len(cs))
	minOcc, minTTFT := math.Inf(1), math.Inf(1)
	for _, i := range idx {
		c := cs[i]
		if c.occ < minOcc {
			keep[i] = true
			minOcc, minTTFT = c.occ, c.ttft
		} else if c.occ == minOcc && c.ttft == minTTFT {
			keep[i] = true
		}
	}
	out := make([]groupChoice, 0, len(cs))
	for i, c := range cs {
		if keep[i] {
			out = append(out, c)
		}
	}
	return out
}

// planPrefixChips returns the chip count of the plan group holding the
// main prefix stage.
func (o *Optimizer) planPrefixChips(plan Plan, prefixIdx int) (int, bool) {
	for gi, g := range plan.Placement.Groups {
		for _, idx := range g.Stages {
			if idx == prefixIdx {
				return plan.GroupChips[gi], true
			}
		}
	}
	return 0, false
}

// prunePartialsInto keeps the Pareto-optimal partials (lower TTFT and
// TPOT, higher throughput), appending survivors to dst and returning it.
// It is perf.Frontier specialized to the compact spart representation —
// identical validity filtering, identical stable (TTFT, TPOT, qps)
// ordering, identical staircase including exact-duplicate collapse — so
// the surviving set and its order match what the generic path produced,
// without boxing each partial into a Point and re-sorting large structs.
// src is reordered in place.
func prunePartialsInto(ctx *searchCtx, src []spart, dst []spart) []spart {
	if len(src) <= 1 {
		return append(dst, src...)
	}
	valid := src[:0]
	for _, p := range src {
		if partialValid(p) {
			valid = append(valid, p)
		}
	}
	// Sort an index slice instead of the partials themselves: stability
	// (which the exact-duplicate collapse needs) comes from the final
	// index tiebreak, and the unstable pdqsort only swaps 4-byte indices
	// instead of rotating 40-byte structs.
	idx := ctx.idx[:0]
	for i := range valid {
		idx = append(idx, int32(i))
	}
	ctx.idx = idx
	sort.Slice(idx, func(a, b int) bool {
		x, y := &valid[idx[a]], &valid[idx[b]]
		if x.ttft != y.ttft {
			return x.ttft < y.ttft
		}
		if x.tpot != y.tpot {
			return x.tpot < y.tpot
		}
		if x.qps != y.qps {
			return x.qps > y.qps
		}
		return idx[a] < idx[b]
	})
	stairs := ctx.stairs[:0]
	for _, pi := range idx {
		p := valid[pi]
		i := sort.Search(len(stairs), func(k int) bool { return stairs[k].tpot > p.tpot }) - 1
		if i >= 0 && stairs[i].qps >= p.qps {
			continue // dominated (or an exact duplicate)
		}
		dst = append(dst, p)
		// Replace the corners in [ins, end) — now dominated — with the
		// new corner, in place.
		ins := i + 1
		end := ins
		for end < len(stairs) && stairs[end].qps <= p.qps {
			end++
		}
		n := len(stairs)
		if end == ins {
			stairs = append(stairs, partialCorner{})
			copy(stairs[ins+1:], stairs[ins:n])
		} else {
			copy(stairs[ins+1:], stairs[end:n])
			stairs = stairs[:n-(end-ins)+1]
		}
		stairs[ins] = partialCorner{p.tpot, p.qps}
	}
	ctx.stairs = stairs
	sort.SliceStable(dst, func(i, j int) bool {
		a, b := dst[i], dst[j]
		if a.ttft != b.ttft {
			return a.ttft < b.ttft
		}
		return a.qps > b.qps
	})
	return dst
}

// partialValid mirrors perf.Metrics.Valid on a partial's accumulated
// metrics.
func partialValid(p spart) bool {
	for _, v := range []float64{p.ttft, p.tpot, p.qps} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return false
		}
	}
	return true
}
