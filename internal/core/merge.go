package core

import (
	"math"

	"rago/internal/engine"
	"rago/internal/perf"
	"rago/internal/pipeline"
	"rago/internal/roofline"
	"rago/internal/stageperf"
)

// partial tracks incrementally assembled metrics during the per-plan batch
// search. Because components contribute independently (TTFT adds, TPOT is
// set only by decode, throughput is a min), Pareto-pruning partials between
// components is lossless: a dominated partial stays dominated after any
// extension.
type partial struct {
	ttft float64
	tpot float64
	qps  float64
	s    Schedule
}

// qpsUnbounded stands in for "no throughput constraint yet"; finite so the
// shared Pareto machinery (which rejects infinities) can prune partials.
const qpsUnbounded = 1e15

// groupChoice is one evaluated batching/replication option for a whole
// placement group: the latency added to TTFT, the per-request occupancy of
// the group, and the per-stage replica counts that realize it.
type groupChoice struct {
	ttft     float64
	occ      float64
	batch    int
	replicas []int
}

// planCandidates enumerates batch policies for one plan at a fixed
// iterative batch (bIter == 0 for non-iterative workloads), pruning
// dominated combinations after each component. Survivors are returned as
// complete schedules; callers re-evaluate them through the Assembler.
func (o *Optimizer) planCandidates(plan Plan, bIter int) []Schedule {
	preBatches := roofline.Pow2Range(1, o.Opts.MaxPreBatch)
	retrBatches := roofline.Pow2Range(1, o.Opts.MaxRetrievalBatch)
	decBatches := roofline.Pow2Range(1, o.Opts.MaxDecodeBatch)
	prefixIdx := o.Pipe.Index(pipeline.KindPrefix)
	retrIdx := o.Pipe.Index(pipeline.KindRetrieval)
	decIdx := o.Pipe.Index(pipeline.KindDecode)

	// Iterative occupancy terms for this bIter (coupled to the prefix
	// group's chips and the retrieval servers, both fixed by the plan).
	var iterPrefOcc, iterRetrOcc float64
	if bIter > 0 {
		n := float64(o.Pipe.Schema.RetrievalFrequency - 1)
		prefChips, ok := o.planPrefixChips(plan, prefixIdx)
		if !ok || retrIdx < 0 {
			return nil
		}
		rt := o.Prof.Eval(o.Pipe.Stages[retrIdx], plan.Servers, bIter)
		if !rt.OK {
			return nil
		}
		iterStage := o.Pipe.Stages[prefixIdx]
		iterStage.SeqLen = o.Pipe.Schema.RetrievedTokens()
		var pt stageperf.Point
		for _, cand := range o.Prof.Candidates(iterStage, prefChips, bIter) {
			if !pt.OK || cand.QPS > pt.QPS {
				pt = cand
			}
		}
		if !pt.OK {
			return nil
		}
		iterRetrOcc = n / rt.QPS
		iterPrefOcc = n / pt.QPS
	}

	parts := []partial{{
		qps: qpsUnbounded,
		s: Schedule{
			RetrievalServers: plan.Servers,
			DecodeChips:      plan.DecodeChips,
			IterativeBatch:   bIter,
		},
	}}

	// Pre-decode XPU groups.
	for gi, g := range plan.Placement.Groups {
		chips := plan.GroupChips[gi]
		var choices []groupChoice
		for _, b := range preBatches {
			pause, ok := engine.RetrievalPause(o.Pipe, o.Prof, g.Stages, plan.Servers, b)
			if !ok {
				continue
			}
			choices = append(choices, o.groupChoices(g, chips, b, prefixIdx, iterPrefOcc, pause)...)
		}
		choices = pruneGroupChoices(choices)
		if len(choices) == 0 {
			return nil
		}
		var next []partial
		for _, c := range choices {
			for _, p := range parts {
				np := p
				np.ttft += c.ttft
				np.qps = math.Min(np.qps, 1/c.occ)
				np.s.Groups = append(append([]GroupSchedule(nil), p.s.Groups...), GroupSchedule{
					Stages:   g.Stages,
					Chips:    chips,
					Batch:    c.batch,
					Replicas: c.replicas,
				})
				next = append(next, np)
			}
		}
		parts = prunePartials(next)
		if len(parts) == 0 {
			return nil
		}
	}

	// Retrieval tier.
	if retrIdx >= 0 {
		transfer := o.Prof.RetrievalTransferLatency()
		var next []partial
		for _, b := range retrBatches {
			rt := o.Prof.Eval(o.Pipe.Stages[retrIdx], plan.Servers, b)
			if !rt.OK {
				continue
			}
			tierQPS := 1 / (1/rt.QPS + iterRetrOcc)
			for _, p := range parts {
				np := p
				np.ttft += rt.Latency + transfer
				np.qps = math.Min(np.qps, tierQPS)
				np.s.RetrievalBatch = b
				next = append(next, np)
			}
		}
		parts = prunePartials(next)
		if len(parts) == 0 {
			return nil
		}
	}

	// Decode tier (sets TPOT).
	outTokens := float64(o.Pipe.Stages[decIdx].OutTokens)
	var next []partial
	for _, bd := range decBatches {
		for _, cand := range o.Prof.Candidates(o.Pipe.Stages[decIdx], plan.DecodeChips, bd) {
			var stall float64
			if bIter > 0 {
				probe := parts[0].s
				probe.DecodeBatch = bd
				probe.DecodeReplicas = cand.Replicas
				ic, ok := engine.IterativeCost(o.Pipe, o.Prof, probe)
				if !ok {
					continue
				}
				stall = ic.StallPerRequest
			}
			genTime := cand.Latency + stall
			tierQPS := float64(bd) / genTime
			tpot := genTime / outTokens
			for _, p := range parts {
				np := p
				np.tpot = tpot
				np.qps = math.Min(np.qps, tierQPS)
				np.s.DecodeBatch = bd
				np.s.DecodeReplicas = cand.Replicas
				next = append(next, np)
			}
		}
	}
	parts = prunePartials(next)

	out := make([]Schedule, len(parts))
	for i, p := range parts {
		out[i] = p.s
	}
	return out
}

// groupChoices evaluates every per-stage replication combination of a
// group at one batch size, returning (ttft, occupancy) aggregates. pause
// is the per-request retrieval wait for groups spanning the retrieval
// stage (zero otherwise).
func (o *Optimizer) groupChoices(g pipeline.Group, chips, batch, prefixIdx int, iterPrefOcc, pause float64) []groupChoice {
	perStage := make([][]stageperf.Point, len(g.Stages))
	for i, idx := range g.Stages {
		cands := o.Prof.Candidates(o.Pipe.Stages[idx], chips, batch)
		// Time-multiplexed groups run one phase at a time (Fig. 14):
		// during a phase only that batch's work exists, so data-
		// parallel replication is bounded by the work items available
		// — batch*Items forward passes for encoder-type stages, batch
		// sequences for autoregressive ones. This is why collocating
		// an autoregressive rewriter with the prefix underutilizes
		// wide pools at small batches (§7.1). Dedicated single-stage
		// pools serve a stream of batches and replicate freely.
		if len(g.Stages) > 1 {
			limit := engine.MaxPhaseReplicas(o.Pipe.Stages[idx], batch)
			kept := cands[:0]
			for _, c := range cands {
				if c.Replicas <= limit {
					kept = append(kept, c)
				}
			}
			cands = kept
		}
		if len(cands) == 0 {
			return nil
		}
		perStage[i] = cands
	}
	var out []groupChoice
	var rec func(i int, ttft, occ float64, reps []int)
	rec = func(i int, ttft, occ float64, reps []int) {
		if i == len(perStage) {
			out = append(out, groupChoice{
				ttft:     ttft,
				occ:      occ + pause,
				batch:    batch,
				replicas: append([]int(nil), reps...),
			})
			return
		}
		for _, pt := range perStage[i] {
			extra := 0.0
			if g.Stages[i] == prefixIdx {
				extra = iterPrefOcc
			}
			rec(i+1, ttft+pt.Latency, occ+1/pt.QPS+extra, append(reps, pt.Replicas))
		}
	}
	rec(0, 0, 0, nil)
	return out
}

// pruneGroupChoices keeps Pareto-optimal (ttft, occupancy) choices.
func pruneGroupChoices(cs []groupChoice) []groupChoice {
	var out []groupChoice
	for i, a := range cs {
		dominated := false
		for j, b := range cs {
			if i == j {
				continue
			}
			if b.ttft <= a.ttft && b.occ <= a.occ && (b.ttft < a.ttft || b.occ < a.occ) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, a)
		}
	}
	return out
}

// planPrefixChips returns the chip count of the plan group holding the
// main prefix stage.
func (o *Optimizer) planPrefixChips(plan Plan, prefixIdx int) (int, bool) {
	for gi, g := range plan.Placement.Groups {
		for _, idx := range g.Stages {
			if idx == prefixIdx {
				return plan.GroupChips[gi], true
			}
		}
	}
	return 0, false
}

// prunePartials keeps the Pareto-optimal partials (lower TTFT and TPOT,
// higher throughput).
func prunePartials(ps []partial) []partial {
	if len(ps) <= 1 {
		return ps
	}
	pts := make([]perf.Point[partial], len(ps))
	for i, p := range ps {
		pts[i] = perf.Point[partial]{
			Metrics: perf.Metrics{TTFT: p.ttft, TPOT: p.tpot, QPS: p.qps, QPSPerChip: p.qps},
			Item:    p,
		}
	}
	front := perf.Frontier(pts)
	out := make([]partial, len(front))
	for i, f := range front {
		out[i] = f.Item
	}
	return out
}
