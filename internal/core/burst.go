package core

import (
	"fmt"
	"math"

	"rago/internal/pipeline"
)

// BurstTTFT models §7.2's micro-batching study (Fig. 19): a burst of
// `burst` simultaneous user requests is split into micro-batches of size
// `micro` that flow through the pre-decode pipeline stages back to back.
// Stages overlap across micro-batches (stage i works on micro-batch m+1
// while stage i+1 works on m), so a request's TTFT is the pipeline
// traversal of its own micro-batch plus the queueing of the micro-batches
// ahead of it at the bottleneck stage.
//
// It returns the mean TTFT across the burst. micro == burst reduces to the
// unsplit baseline the paper's reduction percentages are computed against.
func (o *Optimizer) BurstTTFT(plan Plan, burst, micro int) (float64, error) {
	if burst < 1 || micro < 1 {
		return 0, fmt.Errorf("core: burst %d / micro-batch %d must be positive", burst, micro)
	}
	if micro > burst {
		micro = burst
	}
	nBatches := (burst + micro - 1) / micro

	// Per-micro-batch service time at each sequential resource: each
	// placement group is one resource; retrieval is one resource.
	var stageTimes []float64
	for gi, g := range plan.Placement.Groups {
		var t float64
		for _, idx := range g.Stages {
			pt := o.Prof.Eval(o.Pipe.Stages[idx], plan.GroupChips[gi], micro)
			if !pt.OK {
				return 0, fmt.Errorf("core: stage %v infeasible at micro-batch %d",
					o.Pipe.Stages[idx].Kind, micro)
			}
			t += pt.Latency
		}
		stageTimes = append(stageTimes, t)
	}
	if retrIdx := o.Pipe.Index(pipeline.KindRetrieval); retrIdx >= 0 {
		pt := o.Prof.Eval(o.Pipe.Stages[retrIdx], plan.Servers, micro)
		if !pt.OK {
			return 0, fmt.Errorf("core: retrieval infeasible at micro-batch %d", micro)
		}
		// Insert retrieval at its pipeline position: after the groups
		// whose stages precede it.
		pos := 0
		for gi, g := range plan.Placement.Groups {
			if g.Stages[0] < retrIdx {
				pos = gi + 1
			}
		}
		stageTimes = append(stageTimes[:pos], append([]float64{pt.Latency + o.Prof.RetrievalTransferLatency()}, stageTimes[pos:]...)...)
	}

	var traversal, bottleneck float64
	for _, t := range stageTimes {
		traversal += t
		bottleneck = math.Max(bottleneck, t)
	}
	// Micro-batch m (0-based) finishes ~ m*bottleneck + traversal; the
	// mean over the burst averages the queueing term.
	mean := traversal + float64(nBatches-1)/2*bottleneck
	return mean, nil
}

// BurstTTFTReduction returns the percentage TTFT reduction micro-batching
// at size micro achieves over processing the whole burst as one batch
// (the quantity Fig. 19 tabulates).
func (o *Optimizer) BurstTTFTReduction(plan Plan, burst, micro int) (float64, error) {
	whole, err := o.BurstTTFT(plan, burst, burst)
	if err != nil {
		return 0, err
	}
	split, err := o.BurstTTFT(plan, burst, micro)
	if err != nil {
		return 0, err
	}
	if whole <= 0 {
		return 0, fmt.Errorf("core: degenerate zero baseline TTFT")
	}
	red := (1 - split/whole) * 100
	if red < 0 {
		red = 0 // splitting never *has* to be used; report no gain
	}
	return red, nil
}
