package core

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"rago/internal/engine"
	"rago/internal/hw"
	"rago/internal/perf"
	"rago/internal/pipeline"
	"rago/internal/ragschema"
	"rago/internal/roofline"
	"rago/internal/stageperf"
)

// Options configures the schedule search.
type Options struct {
	// Cluster is the resource pool (XPU budget = Cluster.XPUs(),
	// retrieval server budget = Cluster.Hosts).
	Cluster hw.Cluster
	// MaxPreBatch bounds pre-decode stage batch sizes (powers of two).
	MaxPreBatch int
	// MaxRetrievalBatch bounds the initial-retrieval batch size.
	MaxRetrievalBatch int
	// MaxDecodeBatch bounds the continuous-batching decode batch and
	// the iterative retrieval/prefix batch.
	MaxDecodeBatch int
	// NormalizeChips, when positive, fixes the QPS/chip denominator
	// (used by §5's characterization, which charges the whole pool).
	NormalizeChips int
	// Placements overrides the Fig. 13 legal enumeration when non-nil.
	Placements []pipeline.Placement
	// Shapes, when non-empty, scores every candidate schedule by the
	// policy-aware shape-weighted metrics (engine.ShapeMetricsWithPolicy)
	// over this per-request length sample instead of the schema constants.
	// Heterogeneous traffic is what differentiates formation policies; the
	// plan bounds relax onto the sample minima to stay admissible against
	// the shaped pricing.
	Shapes []engine.Shape
	// Policies enumerates batch-formation policies as a schedule search
	// dimension. Empty searches only FIFO — byte-compatible with the
	// historical search.
	Policies []engine.BatchPolicy
	// ChunkQuanta enumerates chunked-prefill quanta alongside the batch
	// search (0 = chunking off). Empty searches only 0.
	ChunkQuanta []int
	// NProbes enumerates retrieval probe counts (IVF cells scanned per
	// query) as a schedule search dimension; 0 means the tier's base
	// configuration. Empty searches only the base — byte-compatible with
	// the historical search. More probes buy recall (when the profiler
	// carries a calibrated RecallModel) for proportionally more scan.
	NProbes []int
	// ShardFanouts enumerates scatter-gather fanouts (shards consulted
	// per query) on a sharded retrieval tier; 0 means all shards. Empty
	// searches only all-shards.
	ShardFanouts []int
	// NoPrune disables branch-and-bound pruning and bound-ordered
	// dispatch, forcing the exhaustive reference search. The frontier is
	// provably identical either way (the differential test pins it);
	// the knob exists for that proof and for bound-quality debugging.
	NoPrune bool
	// Workers caps search concurrency; 0 means GOMAXPROCS.
	Workers int
}

// DefaultOptions returns the search bounds used throughout the paper
// reproduction: batches in powers of two up to 32 for pre-decode stages,
// 256 for retrieval, and 2048 for the decode tier (the tier batch divides
// across data-parallel replicas; Table 4 schedules run per-tier batches of
// 1024). §6.2 grants users the power-of-two granularity knob.
func DefaultOptions(cluster hw.Cluster) Options {
	return Options{
		Cluster:           cluster,
		MaxPreBatch:       32,
		MaxRetrievalBatch: 256,
		MaxDecodeBatch:    2048,
	}
}

// Optimizer runs the schedule search for one workload.
type Optimizer struct {
	Pipe pipeline.Pipeline
	Prof *stageperf.Profiler
	Asm  *Assembler
	Opts Options

	// fb caches the formation-dimension bound relaxation terms
	// (formBoundTerms); reset at the top of each Optimize.
	fb *formBound

	// gmu guards gcache, the cross-plan memo of pruned per-group
	// batching choices (see groupChoicesFor): the same (group, chips,
	// servers) triple recurs across every decode-chip variation of the
	// allocation enumeration.
	gmu    sync.Mutex
	gcache map[groupKey][]groupChoice

	// stats describes the most recent Optimize call; the atomics are the
	// live counters the concurrent workers increment while it runs.
	stats          SearchStats
	prunedPlans    atomic.Int64
	searchedPlans  atomic.Int64
	prunedPartials atomic.Int64
}

// SearchStats summarizes one Optimize call's branch-and-bound behaviour:
// how much of the enumeration the admissible bounds eliminated, and how
// tight those bounds were against what the search actually achieved. A
// NoPrune (exhaustive reference) run reports only Plans/Searched — it
// computes no bounds, so the pruning counters and gaps stay zero.
type SearchStats struct {
	// Plans is the full enumeration size; Infeasible the plans skipped
	// because no schedule of theirs compiles; PrunedPlans the feasible
	// plans skipped whole because the incumbent frontier dominated their
	// bound; Searched the plans whose batching space was explored.
	Plans       int `json:"plans"`
	Infeasible  int `json:"infeasible"`
	PrunedPlans int `json:"pruned_plans"`
	Searched    int `json:"searched"`
	// PrunedPartials counts partial schedule extensions discarded
	// mid-plan against the incumbent (pruneAgainstIncumbent drops).
	PrunedPartials int64 `json:"pruned_partials"`
	// TTFTGap, TPOTGap, and QPSGap are per-objective bound-to-achieved
	// ratios, each >= 1 when defined (0 when not): the frontier's best
	// achieved value over the best optimistic bound for the latency
	// objectives, and the inverse for throughput. 1.0 means the bound is
	// exact on that axis; large values mean it is loose there and prunes
	// little.
	TTFTGap float64 `json:"ttft_gap"`
	TPOTGap float64 `json:"tpot_gap"`
	QPSGap  float64 `json:"qps_gap"`
}

// String renders the stats as the two CLI lines `rago optimize` prints.
func (s SearchStats) String() string {
	out := fmt.Sprintf("search: %d plans (%d infeasible, %d pruned by bound, %d searched), %d partials pruned",
		s.Plans, s.Infeasible, s.PrunedPlans, s.Searched, s.PrunedPartials)
	if s.TTFTGap > 0 || s.TPOTGap > 0 || s.QPSGap > 0 {
		out += fmt.Sprintf("\nbound gap (achieved/bound): TTFT %.2fx, TPOT %.2fx, QPS %.2fx",
			s.TTFTGap, s.TPOTGap, s.QPSGap)
	}
	return out
}

// SearchStats returns the statistics of the most recent Optimize call
// (zero-valued before the first). Not synchronized with a concurrently
// running Optimize.
func (o *Optimizer) SearchStats() SearchStats { return o.stats }

// NewOptimizer builds an optimizer for schema under opts.
func NewOptimizer(schema ragschema.Schema, opts Options) (*Optimizer, error) {
	if err := opts.Cluster.Validate(); err != nil {
		return nil, err
	}
	if opts.MaxPreBatch < 1 || opts.MaxRetrievalBatch < 1 || opts.MaxDecodeBatch < 1 {
		return nil, fmt.Errorf("core: batch bounds must be positive")
	}
	pipe, err := pipeline.Build(schema)
	if err != nil {
		return nil, err
	}
	prof := stageperf.New(opts.Cluster.Chip, opts.Cluster.Host, schema)
	return &Optimizer{
		Pipe: pipe,
		Prof: prof,
		Asm:  &Assembler{Pipe: pipe, Prof: prof, NormalizeChips: opts.NormalizeChips},
		Opts: opts,
	}, nil
}

// Plan is one (placement, allocation) pair — the unit whose batch-policy
// frontier Fig. 16 plots individually.
type Plan struct {
	Placement   pipeline.Placement
	GroupChips  []int
	DecodeChips int
	Servers     int
}

// Describe renders the plan compactly.
func (p Plan) Describe(pipe pipeline.Pipeline) string {
	return fmt.Sprintf("%s chips=%v decode=%d servers=%d",
		p.Placement.Describe(pipe), p.GroupChips, p.DecodeChips, p.Servers)
}

// placements returns the search's placement candidates.
func (o *Optimizer) placements() []pipeline.Placement {
	if o.Opts.Placements != nil {
		return o.Opts.Placements
	}
	return o.Pipe.Placements()
}

// serverOptions returns per-tier retrieval server counts to consider. A
// multi-source pipeline provisions one tier per source, so the host
// budget divides across the sources; a corpus whose minimum server count
// does not fit its share yields no options (and hence no plans).
func (o *Optimizer) serverOptions() []int {
	sources := len(o.Pipe.Indices(pipeline.KindRetrieval))
	if sources == 0 {
		return []int{0}
	}
	budget := o.Opts.Cluster.Hosts / sources
	min := o.Prof.MinRetrievalServers()
	if min > budget {
		return nil
	}
	if min <= 1 && budget >= 1 {
		return []int{1}
	}
	opts := []int{min}
	for _, p := range roofline.Pow2Range(min, budget) {
		if p != min {
			opts = append(opts, p)
		}
	}
	return opts
}

// Plans enumerates every (placement, allocation) combination within the
// chip budget (Algorithm 1: getPlacementOptions x getAllocationOptions).
func (o *Optimizer) Plans() []Plan {
	budget := o.Opts.Cluster.XPUs()
	chipOpts := roofline.Pow2Range(1, budget)
	decodeMin := o.Prof.Sim.MinChips(o.Pipe.Stages[o.Pipe.Index(pipeline.KindDecode)].Model)
	// Invariant across the whole enumeration; the recursion below used
	// to recompute it in its innermost decode loop.
	srvOpts := o.serverOptions()
	var plans []Plan
	for _, pl := range o.placements() {
		mins := o.groupMinChips(pl)
		var rec func(gi, used int, acc []int)
		rec = func(gi, used int, acc []int) {
			if gi == len(pl.Groups) {
				for _, dc := range chipOpts {
					if dc < decodeMin || used+dc > budget {
						continue
					}
					for _, srv := range srvOpts {
						plans = append(plans, Plan{
							Placement:   pl,
							GroupChips:  append([]int(nil), acc...),
							DecodeChips: dc,
							Servers:     srv,
						})
					}
				}
				return
			}
			for _, c := range chipOpts {
				if c < mins[gi] || used+c > budget {
					continue
				}
				rec(gi+1, used+c, append(acc, c))
			}
		}
		rec(0, 0, nil)
	}
	return plans
}

// groupMinChips returns, per group, the minimum chips that fit the
// collocated models' weights.
func (o *Optimizer) groupMinChips(pl pipeline.Placement) []int {
	usablePerChip := o.Prof.Sim.Chip.HBMBytes * (1 - o.Prof.Sim.P.HBMReserve)
	mins := make([]int, len(pl.Groups))
	for gi, g := range pl.Groups {
		seen := make(map[string]bool)
		var need float64
		for _, idx := range g.Stages {
			m := o.Pipe.Stages[idx].Model
			if m.Name == "" || seen[m.Name] {
				continue
			}
			seen[m.Name] = true
			need += m.ParamBytes()
		}
		mins[gi] = roofline.Pow2Up(int(math.Ceil(need / usablePerChip)))
	}
	return mins
}

// PlanFrontier searches batching policies within one plan and returns its
// Pareto frontier. Metrics are recomputed through the engine's compile
// arithmetic for every surviving schedule, so the output is exactly
// Evaluate-consistent.
func (o *Optimizer) PlanFrontier(plan Plan) []SchedulePoint {
	return o.planFrontier(o.newSearchCtx(), plan, nil, perf.Metrics{})
}

// planFrontier is PlanFrontier on a worker's reusable context, optionally
// pruning partial extensions against the shared incumbent (inc nil
// disables; bound is the plan's admissible bound when inc is set).
func (o *Optimizer) planFrontier(ctx *searchCtx, plan Plan, inc *perf.Incremental, bound perf.Metrics) []SchedulePoint {
	if ctx.formActive || ctx.retrActive {
		// Within-plan partial pruning prices the FIFO/unchunked/unshaped/
		// base-knob proxy. The batch ladder survives it (TTFT strictly
		// orders batch sizes, so every batch choice keeps a frontier
		// representative for the stamped dimensions to re-price), but a
		// partial's proxy metrics are not a bound on its shaped or
		// knob-tuned completions — so the mid-plan incumbent cut is
		// disabled and only the admissible plan-level bound (planBound's
		// formation relaxation and cheapest-knob retrieval envelope)
		// prunes.
		inc = nil
	}
	var pts []SchedulePoint
	for _, bIter := range ctx.iterBatches {
		for _, s := range o.planCandidates(ctx, plan, bIter, inc, bound) {
			for _, pol := range ctx.policies {
				for _, q := range ctx.quanta {
					for _, np := range ctx.nprobes {
						for _, fo := range ctx.fanouts {
							sc := s
							sc.FormPolicy = pol
							sc.ChunkQuantum = q
							sc.NProbe = np
							sc.ShardFanout = fo
							if m, ok := ctx.evaluate(sc); ok {
								pts = append(pts, SchedulePoint{Metrics: m, Item: sc})
							}
						}
					}
				}
			}
		}
	}
	front := perf.Frontier(pts)
	sortSchedules(front)
	return front
}

// Optimize runs the full search and returns the global Pareto frontier
// with its schedules (Algorithm 1's P_RAG). The search is branch-and-
// bound: every plan gets an admissible optimistic bound (planBound), plans
// are dispatched best-bound-first so the shared incumbent frontier
// tightens early, and a plan — or a partial extension inside one — is
// skipped when an incumbent point strictly dominates its bound, which is
// provably lossless for the returned frontier. Results are concatenated
// in original enumeration order before the final frontier pass, so the
// output is bit-identical to the exhaustive NoPrune reference, including
// which schedule represents each set of exactly-equal metric points.
func (o *Optimizer) Optimize() []SchedulePoint {
	plans := o.Plans()
	o.fb = nil
	o.stats = SearchStats{Plans: len(plans)}
	o.prunedPlans.Store(0)
	o.searchedPlans.Store(0)
	o.prunedPartials.Store(0)
	workers := o.Opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(plans) {
		workers = len(plans)
	}
	if workers < 1 {
		workers = 1
	}

	order := make([]int, len(plans))
	for i := range order {
		order[i] = i
	}
	var bounds []perf.Metrics
	var feasible []bool
	var inc *perf.Incremental
	if !o.Opts.NoPrune {
		bounds = make([]perf.Metrics, len(plans))
		feasible = make([]bool, len(plans))
		for i, p := range plans {
			bounds[i], feasible[i] = o.planBound(p)
		}
		// Best-bound-first: plans whose optimistic metrics look
		// strongest are searched first, so their real frontier points
		// enter the incumbent early and prune the long tail.
		sort.SliceStable(order, func(a, b int) bool {
			i, j := order[a], order[b]
			if feasible[i] != feasible[j] {
				return feasible[i]
			}
			bi, bj := bounds[i], bounds[j]
			if bi.QPSPerChip != bj.QPSPerChip {
				return bi.QPSPerChip > bj.QPSPerChip
			}
			if bi.TTFT != bj.TTFT {
				return bi.TTFT < bj.TTFT
			}
			return bi.TPOT < bj.TPOT
		})
		inc = &perf.Incremental{}
	}

	results := make([][]SchedulePoint, len(plans))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := o.newSearchCtx()
			for i := range next {
				if inc == nil {
					o.searchedPlans.Add(1)
					results[i] = o.planFrontier(ctx, plans[i], nil, perf.Metrics{})
					continue
				}
				if !feasible[i] {
					continue // no schedule of the plan compiles
				}
				if inc.DominatedBy(bounds[i]) {
					o.prunedPlans.Add(1)
					continue // every completion strictly dominated
				}
				o.searchedPlans.Add(1)
				pts := o.planFrontier(ctx, plans[i], inc, bounds[i])
				results[i] = pts
				for _, p := range pts {
					inc.Insert(p.Metrics)
				}
			}
		}()
	}
	for _, i := range order {
		next <- i
	}
	close(next)
	wg.Wait()

	var all []SchedulePoint
	for _, r := range results {
		all = append(all, r...)
	}
	front := perf.Frontier(all)
	sortSchedules(front)

	o.stats.PrunedPlans = int(o.prunedPlans.Load())
	o.stats.Searched = int(o.searchedPlans.Load())
	o.stats.PrunedPartials = o.prunedPartials.Load()
	if inc != nil {
		for i := range plans {
			if !feasible[i] {
				o.stats.Infeasible++
			}
		}
		o.fillBoundGaps(front, bounds, feasible)
	}
	return front
}

// fillBoundGaps computes the per-objective bound-to-achieved ratios: the
// frontier's best value on each axis against the best admissible bound
// over the feasible plans. Each ratio is >= 1 when both sides are
// positive (the bound is optimistic by construction) and 0 when either
// side is undefined (empty frontier, no feasible plan).
func (o *Optimizer) fillBoundGaps(front []SchedulePoint, bounds []perf.Metrics, feasible []bool) {
	if len(front) == 0 {
		return
	}
	var bTTFT, bTPOT, bQPS float64
	seen := false
	for i, b := range bounds {
		if !feasible[i] {
			continue
		}
		if !seen || b.TTFT < bTTFT {
			bTTFT = b.TTFT
		}
		if !seen || b.TPOT < bTPOT {
			bTPOT = b.TPOT
		}
		if !seen || b.QPSPerChip > bQPS {
			bQPS = b.QPSPerChip
		}
		seen = true
	}
	if !seen {
		return
	}
	aTTFT, aTPOT, aQPS := front[0].Metrics.TTFT, front[0].Metrics.TPOT, front[0].Metrics.QPSPerChip
	for _, p := range front[1:] {
		aTTFT = math.Min(aTTFT, p.Metrics.TTFT)
		aTPOT = math.Min(aTPOT, p.Metrics.TPOT)
		aQPS = math.Max(aQPS, p.Metrics.QPSPerChip)
	}
	if bTTFT > 0 {
		o.stats.TTFTGap = aTTFT / bTTFT
	}
	if bTPOT > 0 {
		o.stats.TPOTGap = aTPOT / bTPOT
	}
	if aQPS > 0 {
		o.stats.QPSGap = bQPS / aQPS
	}
}

// BaselineFrontier evaluates the §7.1 comparison system: all additional
// RAG components collocated with the main LLM's prefix tier, prefix and
// decode chips split 1:1 over the full budget, retrieval on the minimum
// server count; batching policies are still tuned (the baseline is "an
// extension of LLM-only systems", not a strawman with silly batches).
func (o *Optimizer) BaselineFrontier() []SchedulePoint {
	budget := o.Opts.Cluster.XPUs()
	half := budget / 2
	if half < 1 {
		half = 1
	}
	servers := 0
	if o.Pipe.Index(pipeline.KindRetrieval) >= 0 {
		servers = o.Prof.MinRetrievalServers()
	}
	plan := Plan{
		Placement:   o.Pipe.BaselinePlacement(),
		GroupChips:  []int{half},
		DecodeChips: half,
		Servers:     servers,
	}
	return o.PlanFrontier(plan)
}
