package core

import (
	"rago/internal/engine"
	"rago/internal/perf"
	"rago/internal/pipeline"
	"rago/internal/stageperf"
)

// SchedulePoint couples a complete schedule with its assembled metrics.
type SchedulePoint = perf.Point[Schedule]

// Assembler evaluates complete schedules by compiling them through
// internal/engine and reading the assembled metrics (Algorithm 1 step 3:
// assemblePerf). The same compiled plan drives the discrete-event
// validator and the live serving runtime, so the three layers cannot
// drift apart.
type Assembler struct {
	Pipe pipeline.Pipeline
	Prof *stageperf.Profiler
	// NormalizeChips, when positive, normalizes QPS/chip by this fixed
	// pool size instead of the chips a schedule allocates (§5's
	// characterization fixes the pool; §7's evaluation normalizes by
	// allocated chips as in Table 4).
	NormalizeChips int
}

// Evaluate assembles end-to-end metrics for one schedule. The boolean is
// false when any component of the schedule is infeasible.
func (a *Assembler) Evaluate(s Schedule) (perf.Metrics, bool) {
	plan, err := engine.Compile(a.Pipe, s, a.Prof)
	if err != nil {
		return perf.Metrics{}, false
	}
	m := plan.Metrics
	if a.NormalizeChips > 0 {
		m.QPSPerChip = m.QPS / float64(a.NormalizeChips)
	}
	return m, true
}

// Compile exposes the compiled execution plan for one schedule — what the
// executors run — with the engine's descriptive error on infeasibility.
func (a *Assembler) Compile(s Schedule) (*engine.Plan, error) {
	return engine.Compile(a.Pipe, s, a.Prof)
}
