package core

import (
	"math"

	"rago/internal/perf"
	"rago/internal/pipeline"
	"rago/internal/stageperf"
)

// SchedulePoint couples a complete schedule with its assembled metrics.
type SchedulePoint = perf.Point[Schedule]

// Assembler evaluates complete schedules by composing per-stage costs
// (Algorithm 1 step 3: assemblePerf).
type Assembler struct {
	Pipe pipeline.Pipeline
	Prof *stageperf.Profiler
	// NormalizeChips, when positive, normalizes QPS/chip by this fixed
	// pool size instead of the chips a schedule allocates (§5's
	// characterization fixes the pool; §7's evaluation normalizes by
	// allocated chips as in Table 4).
	NormalizeChips int
}

// Evaluate assembles end-to-end metrics for one schedule. The boolean is
// false when any component of the schedule is infeasible.
func (a *Assembler) Evaluate(s Schedule) (perf.Metrics, bool) {
	if err := s.Validate(a.Pipe); err != nil {
		return perf.Metrics{}, false
	}

	// Iterative-retrieval costs (zero-valued for single-retrieval
	// workloads) are needed both for the decode stall and for the extra
	// load on the retrieval tier and prefix group.
	iter, ok := a.iterativeCost(s)
	if !ok {
		return perf.Metrics{}, false
	}

	var ttft float64
	qps := math.Inf(1)
	prefixIdx := a.Pipe.Index(pipeline.KindPrefix)

	// Pre-decode XPU groups: time-multiplexed members contribute their
	// batch latency to TTFT and their summed per-request occupancy to
	// the group's throughput (§6.1). The group hosting the main prefix
	// additionally absorbs the iterative prefix passes.
	for _, g := range s.Groups {
		if !a.groupMemOK(g) {
			return perf.Metrics{}, false
		}
		var occupancy float64 // seconds of group time per request
		for i, idx := range g.Stages {
			// Time-multiplexed groups bound per-phase replication by
			// the work one batch exposes (Fig. 14); see groupChoices.
			if len(g.Stages) > 1 && g.ReplicasFor(i) > maxPhaseReplicas(a.Pipe.Stages[idx], g.Batch) {
				return perf.Metrics{}, false
			}
			pt := a.Prof.EvalR(a.Pipe.Stages[idx], g.Chips, g.Batch, g.ReplicasFor(i))
			if !pt.OK {
				return perf.Metrics{}, false
			}
			ttft += pt.Latency
			occupancy += 1 / pt.QPS
			if idx == prefixIdx {
				occupancy += iter.prefixOccupancy
			}
		}
		// Fig. 14: when a retrieval separates collocated stages, the
		// group pauses for the retrieval round before resuming the
		// next inference phase (§7.1's second baseline inefficiency).
		if wait, ok := a.retrievalPause(g.Stages, s, g.Batch); ok {
			occupancy += wait
		} else {
			return perf.Metrics{}, false
		}
		qps = math.Min(qps, 1/occupancy)
	}

	// Retrieval tier: the initial retrieval latency sits on the TTFT
	// path; iterative retrievals consume tier throughput (TPOT path).
	if retrIdx := a.Pipe.Index(pipeline.KindRetrieval); retrIdx >= 0 {
		rt := a.Prof.Eval(a.Pipe.Stages[retrIdx], s.RetrievalServers, s.RetrievalBatch)
		if !rt.OK {
			return perf.Metrics{}, false
		}
		ttft += rt.Latency + a.Prof.RetrievalTransferLatency()
		qps = math.Min(qps, 1/(1/rt.QPS+iter.retrievalOccupancy))
	}

	// Decode tier: continuous batching; worst-case TPOT is the step
	// latency plus iterative stalls amortized per token (§5.3).
	decIdx := a.Pipe.Index(pipeline.KindDecode)
	dec := a.Prof.EvalR(a.Pipe.Stages[decIdx], s.DecodeChips, s.DecodeBatch, s.DecodeReplicasOrOne())
	if !dec.OK {
		return perf.Metrics{}, false
	}
	outTokens := float64(a.Pipe.Stages[decIdx].OutTokens)
	genTime := dec.Latency + iter.stallPerRequest
	tpot := genTime / outTokens
	qps = math.Min(qps, float64(s.DecodeBatch)/genTime)

	norm := s.ChipsUsed()
	if a.NormalizeChips > 0 {
		norm = a.NormalizeChips
	}
	m := perf.Metrics{
		TTFT:       ttft,
		TPOT:       tpot,
		QPS:        qps,
		QPSPerChip: qps / float64(norm),
	}
	if !m.Valid() {
		return perf.Metrics{}, false
	}
	return m, true
}

// retrievalPause returns the per-request group idle time when the group's
// stages span the retrieval stage (it must wait for retrieval results
// between its phases, batch latency amortized over the batch). The
// boolean is false when the retrieval tier is infeasible.
func (a *Assembler) retrievalPause(stages []int, s Schedule, batch int) (float64, bool) {
	retrIdx := a.Pipe.Index(pipeline.KindRetrieval)
	if retrIdx < 0 {
		return 0, true
	}
	before, after := false, false
	for _, idx := range stages {
		if idx < retrIdx {
			before = true
		}
		if idx > retrIdx {
			after = true
		}
	}
	if !before || !after {
		return 0, true
	}
	rt := a.Prof.Eval(a.Pipe.Stages[retrIdx], s.RetrievalServers, batch)
	if !rt.OK {
		return 0, false
	}
	return rt.Latency / float64(batch), true
}

// groupOf finds which schedule group serves pipeline stage idx, or -1.
func (a *Assembler) groupOf(idx int, s Schedule) int {
	for gi, g := range s.Groups {
		for _, st := range g.Stages {
			if st == idx {
				return gi
			}
		}
	}
	return -1
}

// groupMemOK checks that the models collocated on a group fit together in
// the group's aggregate HBM: each distinct model is resident once per
// replica of the widest replication any of its stages uses (per-stage
// checks inside xpusim only see one model at a time).
func (a *Assembler) groupMemOK(g GroupSchedule) bool {
	reps := make(map[string]int, len(g.Stages))
	bytes := make(map[string]float64, len(g.Stages))
	for i, idx := range g.Stages {
		m := a.Pipe.Stages[idx].Model
		if m.Name == "" {
			continue // retrieval has no model
		}
		if r := g.ReplicasFor(i); r > reps[m.Name] {
			reps[m.Name] = r
		}
		bytes[m.Name] = m.ParamBytes()
	}
	var need float64
	for name, r := range reps {
		need += bytes[name] * float64(r)
	}
	usable := a.Prof.Sim.Chip.HBMBytes * (1 - a.Prof.Sim.P.HBMReserve) * float64(g.Chips)
	return need <= usable
}
