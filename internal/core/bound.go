package core

import (
	"math"

	"rago/internal/engine"
	"rago/internal/perf"
	"rago/internal/pipeline"
	"rago/internal/stageperf"
)

// formBound carries the formation-dimension relaxation terms the plan
// bounds need when the search prices batch policies, chunk quanta, or a
// shape sample: the sample's minimum raw prompt / padded prompt / output
// length (schema constants for unshaped entries), and the candidate chunk
// quanta. Computed once per Optimize (planBound runs serially before the
// workers start).
type formBound struct {
	active bool // any dimension beyond FIFO/unchunked/unshaped
	shaped bool // a shape sample re-prices batches
	minPrompt, padMin, minOut int
	quanta                    []int
}

// formBoundTerms lazily computes the relaxation terms.
func (o *Optimizer) formBoundTerms() *formBound {
	if o.fb != nil {
		return o.fb
	}
	fb := &formBound{}
	for _, q := range o.Opts.ChunkQuanta {
		if q > 0 {
			fb.quanta = append(fb.quanta, q)
		}
	}
	fb.shaped = len(o.Opts.Shapes) > 0
	fb.active = fb.shaped || len(fb.quanta) > 0
	schemaPrompt := o.Pipe.Schema.PrefixTokens
	decIdx := o.Pipe.Index(pipeline.KindDecode)
	schemaOut := o.Pipe.Stages[decIdx].OutTokens
	fb.minPrompt, fb.minOut = schemaPrompt, schemaOut
	for _, s := range o.Opts.Shapes {
		pt, out := s.PromptTokens, s.OutputTokens
		if pt <= 0 {
			pt = schemaPrompt
		}
		if out <= 0 {
			out = schemaOut
		}
		fb.minPrompt = min(fb.minPrompt, pt)
		fb.minOut = min(fb.minOut, out)
	}
	if fb.minOut < 1 {
		fb.minOut = 1
	}
	fb.padMin = engine.PadTokens(fb.minPrompt)
	o.fb = fb
	return fb
}

// prefixFormBound is the optimistic (latency, occupancy) floor of the
// prefix stage on chips over every formation dimension the search may
// pick. Shaped batches are priced at padded member maxima, all of which
// are at least the sample's padded minimum, so the min-padded shaped
// envelope lower-bounds every policy's expected latency (roofline costs
// are monotone in sequence length). Chunked prefill completes a batch's
// first member after at least one chunk (TTFT floor) and occupies the
// resource for at least the shortest request's own chunk count
// (occupancy floor), per candidate quantum.
func (o *Optimizer) prefixFormBound(st pipeline.Stage, chips int) (minLat, occLB float64, ok bool) {
	fb := o.formBoundTerms()
	base := st
	if fb.shaped {
		base = stageperf.ShapedStage(st, fb.padMin)
	}
	env := o.Prof.Envelope(base, chips, o.Opts.MaxPreBatch)
	if !env.OK {
		return 0, 0, false
	}
	minLat = env.MinLatency
	occLB = 1 / env.MaxQPS
	for _, q := range fb.quanta {
		cl := o.Prof.EvalR(stageperf.ShapedStage(st, q), chips, 1, 1)
		if !cl.OK {
			continue
		}
		minLat = math.Min(minLat, cl.Latency)
		occLB = math.Min(occLB, float64((fb.minPrompt+q-1)/q)*cl.Latency)
	}
	return minLat, occLB, true
}

// planBound computes an admissible optimistic bound for one plan: metrics
// at least as good, on every objective, as any schedule the plan can
// produce. The branch-and-bound search prunes a plan without evaluating a
// single schedule when an incumbent frontier point strictly dominates its
// bound — every completion is then strictly dominated too, so the final
// frontier is provably unchanged (the differential test pins this).
//
// The bound composes per-resource envelopes (stageperf.Envelope — roofline
// minima/maxima over every batch and replication the search may pick):
//
//   - TTFT >= the longest path to the prefix stage over per-stage minimum
//     latencies (retrieval stages add the CPU-to-XPU transfer); every real
//     schedule walks the same DAG with latencies >= these minima, and
//     drops the non-negative retrieval-pause and iterative terms.
//   - TPOT >= the decode tier's minimum latency over output tokens
//     (iterative stalls only add).
//   - QPS <= the loosest saturation throughput of every resource: a
//     group's occupancy is at least the sum of its stages' minimum
//     per-request service times, a retrieval tier's at least 1/MaxQPS,
//     and the decode tier's bd/genTime is at most its envelope MaxQPS.
//
// ok is false when some stage is infeasible at every batch/replication on
// the plan's resources: no schedule of the plan compiles, so the caller
// skips the plan outright.
func (o *Optimizer) planBound(plan Plan) (perf.Metrics, bool) {
	pipe := o.Pipe
	n := len(pipe.Stages)
	prefixIdx := pipe.Index(pipeline.KindPrefix)
	decIdx := pipe.Index(pipeline.KindDecode)
	transfer := o.Prof.RetrievalTransferLatency()

	// Per-stage optimistic latency and saturation throughput on the
	// plan's resources.
	minLat := make([]float64, n)
	qpsUB := math.Inf(1)

	// Pre-decode groups: stages share the group's chips; batches range
	// over the pre-decode bound.
	fb := o.formBoundTerms()
	for gi, g := range plan.Placement.Groups {
		chips := plan.GroupChips[gi]
		var occLB float64
		for _, idx := range g.Stages {
			if idx == prefixIdx && fb.active {
				lat, occ, ok := o.prefixFormBound(pipe.Stages[idx], chips)
				if !ok {
					return perf.Metrics{}, false
				}
				minLat[idx] = lat
				occLB += occ
				continue
			}
			env := o.Prof.Envelope(pipe.Stages[idx], chips, o.Opts.MaxPreBatch)
			if !env.OK {
				return perf.Metrics{}, false
			}
			minLat[idx] = env.MinLatency
			occLB += 1 / env.MaxQPS
		}
		qpsUB = math.Min(qpsUB, 1/occLB)
	}

	// Retrieval tiers (one per source, each on the plan's server count).
	// With nprobe/fanout searched, every knob pair's envelope contributes
	// to the optimistic union — the bound's latency floors and throughput
	// ceilings hold for whichever stamping the search picks.
	nprobes, fanouts := o.searchedKnobs()
	for _, ridx := range pipe.Indices(pipeline.KindRetrieval) {
		rMinLat, rMaxQPS := math.Inf(1), 0.0
		any := false
		for _, np := range nprobes {
			for _, fo := range fanouts {
				env := o.Prof.Envelope(pipe.Stages[ridx].Tuned(np, fo), plan.Servers, o.Opts.MaxRetrievalBatch)
				if !env.OK {
					continue
				}
				any = true
				rMinLat = math.Min(rMinLat, env.MinLatency)
				rMaxQPS = math.Max(rMaxQPS, env.MaxQPS)
			}
		}
		if !any {
			return perf.Metrics{}, false
		}
		minLat[ridx] = rMinLat + transfer
		qpsUB = math.Min(qpsUB, rMaxQPS)
	}

	// Decode tier. A shape sample re-prices decode at each request's own
	// live KV context and output length: the envelope moves to the
	// sample's minimum context (per-token pace is monotone in context, so
	// it floors every request's pace), and the throughput ceiling scales
	// by the schema-to-minimum output ratio (slots free after at least
	// minOut tokens at the floored pace).
	dstage := pipe.Stages[decIdx]
	outRatio := 1.0
	if fb.shaped {
		dstage = stageperf.ShapedDecodeStage(dstage, engine.PadTokens(fb.minPrompt+fb.minOut/2))
		outRatio = float64(pipe.Stages[decIdx].OutTokens) / float64(fb.minOut)
	}
	denv := o.Prof.Envelope(dstage, plan.DecodeChips, o.Opts.MaxDecodeBatch)
	if !denv.OK {
		return perf.Metrics{}, false
	}
	qpsUB = math.Min(qpsUB, denv.MaxQPS*outRatio)
	tpotLB := denv.MinLatency / float64(pipe.Stages[decIdx].OutTokens)

	// TTFT: longest path to the prefix over minimum latencies. Stage
	// indices are topologically ordered (ValidateGraph), so one forward
	// sweep resolves the DAG.
	finish := make([]float64, n)
	preds := pipe.Preds()
	for i := 0; i < n; i++ {
		if i == decIdx {
			continue
		}
		start := 0.0
		for _, j := range preds[i] {
			if j == decIdx {
				continue
			}
			if finish[j] > start {
				start = finish[j]
			}
		}
		finish[i] = start + minLat[i]
	}
	ttftLB := finish[prefixIdx]

	norm := plan.chips()
	if o.Opts.NormalizeChips > 0 {
		norm = o.Opts.NormalizeChips
	}
	return perf.Metrics{
		TTFT:       ttftLB,
		TPOT:       tpotLB,
		QPS:        qpsUB,
		QPSPerChip: qpsUB / float64(norm),
		// No schedule's measured recall exceeds the calibrated surface's
		// maximum (bilinear interpolation never leaves the grid's hull),
		// so MaxRecall is an exact ceiling — admissible without margin.
		Recall: o.Prof.MaxRecall(),
	}, true
}

// chips is the XPU total every schedule of the plan occupies (groups plus
// decode; retrieval servers are CPU hosts and never count).
func (p Plan) chips() int {
	total := p.DecodeChips
	for _, c := range p.GroupChips {
		total += c
	}
	return total
}

// boundEps is the relative optimism margin partial-extension pruning adds
// on top of the plan bound: partial accumulations (sums, running minima)
// and the engine's compiled metrics agree only to float rounding, so the
// incumbent must beat a partial's bound by at least this factor before the
// partial is discarded. Plan-level bounds need no margin — they are
// composed purely of envelope minima that every compiled metric includes
// termwise.
const boundEps = 1e-9

// relax widens m optimistically by eps on every objective (lower TTFT and
// TPOT, higher throughput), turning an accumulated estimate into a bound
// that tolerates rounding drift against engine-compiled metrics.
func relax(m perf.Metrics, eps float64) perf.Metrics {
	return perf.Metrics{
		TTFT:       m.TTFT * (1 - eps),
		TPOT:       m.TPOT * (1 - eps),
		QPS:        m.QPS * (1 + eps),
		QPSPerChip: m.QPSPerChip * (1 + eps),
		// Recall carries exactly: the plan bound's recall ceiling is not an
		// accumulated estimate, so it needs no drift margin (and inflating
		// it could push past Valid's [0, 1] range).
		Recall: m.Recall,
	}
}
