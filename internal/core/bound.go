package core

import (
	"math"

	"rago/internal/perf"
	"rago/internal/pipeline"
)

// planBound computes an admissible optimistic bound for one plan: metrics
// at least as good, on every objective, as any schedule the plan can
// produce. The branch-and-bound search prunes a plan without evaluating a
// single schedule when an incumbent frontier point strictly dominates its
// bound — every completion is then strictly dominated too, so the final
// frontier is provably unchanged (the differential test pins this).
//
// The bound composes per-resource envelopes (stageperf.Envelope — roofline
// minima/maxima over every batch and replication the search may pick):
//
//   - TTFT >= the longest path to the prefix stage over per-stage minimum
//     latencies (retrieval stages add the CPU-to-XPU transfer); every real
//     schedule walks the same DAG with latencies >= these minima, and
//     drops the non-negative retrieval-pause and iterative terms.
//   - TPOT >= the decode tier's minimum latency over output tokens
//     (iterative stalls only add).
//   - QPS <= the loosest saturation throughput of every resource: a
//     group's occupancy is at least the sum of its stages' minimum
//     per-request service times, a retrieval tier's at least 1/MaxQPS,
//     and the decode tier's bd/genTime is at most its envelope MaxQPS.
//
// ok is false when some stage is infeasible at every batch/replication on
// the plan's resources: no schedule of the plan compiles, so the caller
// skips the plan outright.
func (o *Optimizer) planBound(plan Plan) (perf.Metrics, bool) {
	pipe := o.Pipe
	n := len(pipe.Stages)
	prefixIdx := pipe.Index(pipeline.KindPrefix)
	decIdx := pipe.Index(pipeline.KindDecode)
	transfer := o.Prof.RetrievalTransferLatency()

	// Per-stage optimistic latency and saturation throughput on the
	// plan's resources.
	minLat := make([]float64, n)
	qpsUB := math.Inf(1)

	// Pre-decode groups: stages share the group's chips; batches range
	// over the pre-decode bound.
	for gi, g := range plan.Placement.Groups {
		chips := plan.GroupChips[gi]
		var occLB float64
		for _, idx := range g.Stages {
			env := o.Prof.Envelope(pipe.Stages[idx], chips, o.Opts.MaxPreBatch)
			if !env.OK {
				return perf.Metrics{}, false
			}
			minLat[idx] = env.MinLatency
			occLB += 1 / env.MaxQPS
		}
		qpsUB = math.Min(qpsUB, 1/occLB)
	}

	// Retrieval tiers (one per source, each on the plan's server count).
	for _, ridx := range pipe.Indices(pipeline.KindRetrieval) {
		env := o.Prof.Envelope(pipe.Stages[ridx], plan.Servers, o.Opts.MaxRetrievalBatch)
		if !env.OK {
			return perf.Metrics{}, false
		}
		minLat[ridx] = env.MinLatency + transfer
		qpsUB = math.Min(qpsUB, env.MaxQPS)
	}

	// Decode tier.
	denv := o.Prof.Envelope(pipe.Stages[decIdx], plan.DecodeChips, o.Opts.MaxDecodeBatch)
	if !denv.OK {
		return perf.Metrics{}, false
	}
	qpsUB = math.Min(qpsUB, denv.MaxQPS)
	tpotLB := denv.MinLatency / float64(pipe.Stages[decIdx].OutTokens)

	// TTFT: longest path to the prefix over minimum latencies. Stage
	// indices are topologically ordered (ValidateGraph), so one forward
	// sweep resolves the DAG.
	finish := make([]float64, n)
	preds := pipe.Preds()
	for i := 0; i < n; i++ {
		if i == decIdx {
			continue
		}
		start := 0.0
		for _, j := range preds[i] {
			if j == decIdx {
				continue
			}
			if finish[j] > start {
				start = finish[j]
			}
		}
		finish[i] = start + minLat[i]
	}
	ttftLB := finish[prefixIdx]

	norm := plan.chips()
	if o.Opts.NormalizeChips > 0 {
		norm = o.Opts.NormalizeChips
	}
	return perf.Metrics{
		TTFT:       ttftLB,
		TPOT:       tpotLB,
		QPS:        qpsUB,
		QPSPerChip: qpsUB / float64(norm),
	}, true
}

// chips is the XPU total every schedule of the plan occupies (groups plus
// decode; retrieval servers are CPU hosts and never count).
func (p Plan) chips() int {
	total := p.DecodeChips
	for _, c := range p.GroupChips {
		total += c
	}
	return total
}

// boundEps is the relative optimism margin partial-extension pruning adds
// on top of the plan bound: partial accumulations (sums, running minima)
// and the engine's compiled metrics agree only to float rounding, so the
// incumbent must beat a partial's bound by at least this factor before the
// partial is discarded. Plan-level bounds need no margin — they are
// composed purely of envelope minima that every compiled metric includes
// termwise.
const boundEps = 1e-9

// relax widens m optimistically by eps on every objective (lower TTFT and
// TPOT, higher throughput), turning an accumulated estimate into a bound
// that tolerates rounding drift against engine-compiled metrics.
func relax(m perf.Metrics, eps float64) perf.Metrics {
	return perf.Metrics{
		TTFT:       m.TTFT * (1 - eps),
		TPOT:       m.TPOT * (1 - eps),
		QPS:        m.QPS * (1 + eps),
		QPSPerChip: m.QPSPerChip * (1 + eps),
	}
}
