package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"rago/internal/hw"
	"rago/internal/perf"
	"rago/internal/ragschema"
)

// TestBranchAndBoundMatchesExhaustive is the branch-and-bound acceptance
// test: on every case preset, the pruned concurrent search must return a
// frontier identical — schedules and metrics, in order — to the NoPrune
// exhaustive reference. Pruning is only allowed to skip work that is
// provably strictly dominated, so any divergence here is a bound
// admissibility bug.
func TestBranchAndBoundMatchesExhaustive(t *testing.T) {
	cases := []struct {
		name    string
		schema  ragschema.Schema
		cluster hw.Cluster
		norm    int
	}{
		{"caseI", ragschema.CaseI(8e9, 1), hw.DefaultCluster(), 64},
		{"caseII", ragschema.CaseII(70e9, 1_000_000), hw.DefaultCluster(), 0},
		{"caseIII", ragschema.CaseIII(70e9, 4), hw.DefaultCluster(), 64},
		{"caseIV", ragschema.CaseIV(8e9), hw.DefaultCluster(), 0},
		{"caseV", ragschema.CaseV(8e9, 2), hw.DefaultCluster(), 64},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := DefaultOptions(tc.cluster)
			opts.NormalizeChips = tc.norm

			exOpts := opts
			exOpts.NoPrune = true
			exhaustive, err := NewOptimizer(tc.schema, exOpts)
			if err != nil {
				t.Fatal(err)
			}
			want := exhaustive.Optimize()

			pruned, err := NewOptimizer(tc.schema, opts)
			if err != nil {
				t.Fatal(err)
			}
			got := pruned.Optimize()

			if len(want) == 0 {
				t.Fatal("exhaustive frontier is empty — the case is not exercising the search")
			}
			if len(got) != len(want) {
				t.Fatalf("frontier size diverged: pruned %d vs exhaustive %d", len(got), len(want))
			}
			for i := range want {
				if got[i].Metrics != want[i].Metrics {
					t.Errorf("point %d metrics diverged:\npruned     %v\nexhaustive %v", i, got[i].Metrics, want[i].Metrics)
				}
				if !reflect.DeepEqual(got[i].Item, want[i].Item) {
					t.Errorf("point %d schedule diverged:\npruned     %+v\nexhaustive %+v", i, got[i].Item, want[i].Item)
				}
			}
		})
	}
}

// TestPlanBoundAdmissible checks the bound's defining property directly:
// no schedule on a plan's frontier may beat the plan's optimistic bound on
// any objective.
func TestPlanBoundAdmissible(t *testing.T) {
	o := newOpt(t, ragschema.CaseIV(8e9), hw.DefaultCluster(), 0)
	plans := o.Plans()
	checked := 0
	for i, plan := range plans {
		if i%97 != 0 { // sample; every plan costs a full sub-search
			continue
		}
		bound, ok := o.planBound(plan)
		front := o.PlanFrontier(plan)
		if !ok {
			if len(front) != 0 {
				t.Fatalf("plan %d: bound says infeasible but frontier has %d points", i, len(front))
			}
			continue
		}
		for _, p := range front {
			m := p.Metrics
			if m.TTFT < bound.TTFT || m.TPOT < bound.TPOT || m.QPS > bound.QPS || m.QPSPerChip > bound.QPSPerChip {
				t.Fatalf("plan %d: point %v beats admissible bound %v", i, m, bound)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no plans checked")
	}
}

// TestWorkersOption pins that capping search concurrency changes neither
// the frontier nor determinism.
func TestWorkersOption(t *testing.T) {
	opts := DefaultOptions(hw.DefaultCluster())
	opts.NormalizeChips = 64
	opts.Workers = 1
	serial, err := NewOptimizer(ragschema.CaseI(8e9, 1), opts)
	if err != nil {
		t.Fatal(err)
	}
	got := serial.Optimize()
	want := newOpt(t, ragschema.CaseI(8e9, 1), hw.DefaultCluster(), 64).Optimize()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Workers=1 frontier diverged from default")
	}
}

// pruneGroupChoicesRef is the retired O(n²) pairwise implementation, kept
// as the reference the staircase sweep is differential-tested against.
func pruneGroupChoicesRef(cs []groupChoice) []groupChoice {
	var out []groupChoice
	for i, a := range cs {
		dominated := false
		for j, b := range cs {
			if i == j {
				continue
			}
			if b.ttft <= a.ttft && b.occ <= a.occ && (b.ttft < a.ttft || b.occ < a.occ) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, a)
		}
	}
	return out
}

// TestPruneGroupChoicesDifferential drives the staircase sweep against the
// pairwise reference on random inputs, including heavy ties and exact
// duplicates (which dominate neither way and must all survive, in input
// order).
func TestPruneGroupChoicesDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(40)
		cs := make([]groupChoice, n)
		for i := range cs {
			// Coarse grid to force ties and duplicates.
			cs[i] = groupChoice{
				ttft:  float64(rng.Intn(6)) * 0.01,
				occ:   float64(rng.Intn(6)) * 0.001,
				batch: 1 << uint(rng.Intn(4)),
			}
		}
		got := pruneGroupChoices(append([]groupChoice(nil), cs...))
		want := pruneGroupChoicesRef(cs)
		if len(got) != len(want) {
			t.Fatalf("trial %d: kept %d choices, reference kept %d\ninput: %+v", trial, len(got), len(want), cs)
		}
		for i := range want {
			if got[i].ttft != want[i].ttft || got[i].occ != want[i].occ || got[i].batch != want[i].batch {
				t.Fatalf("trial %d: choice %d diverged: %+v vs %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestPlanCountGolden pins the size of the (placement, allocation)
// enumeration per case preset on the default cluster, so any change to the
// enumeration — intended or not — is visible in review.
func TestPlanCountGolden(t *testing.T) {
	cases := []struct {
		name   string
		schema ragschema.Schema
		want   int
	}{
		{"caseI", ragschema.CaseI(8e9, 1), 36},
		{"caseII", ragschema.CaseII(70e9, 1_000_000), 200},
		{"caseIII", ragschema.CaseIII(70e9, 4), 36},
		{"caseIV", ragschema.CaseIV(8e9), 7810},
		{"caseV", ragschema.CaseV(8e9, 2), 236},
	}
	for _, tc := range cases {
		o := newOpt(t, tc.schema, hw.DefaultCluster(), 0)
		if got := len(o.Plans()); got != tc.want {
			t.Errorf("%s: %d plans, golden %d — update the golden if the enumeration change is intended", tc.name, got, tc.want)
		}
	}
}

// TestRelaxWidens sanity-checks the float-drift margin helper: the relaxed
// bound must be weakly better on every objective.
func TestRelaxWidens(t *testing.T) {
	m := perf.Metrics{TTFT: 0.1, TPOT: 0.01, QPS: 100, QPSPerChip: 1.5}
	r := relax(m, 1e-9)
	if r.TTFT > m.TTFT || r.TPOT > m.TPOT || r.QPS < m.QPS || r.QPSPerChip < m.QPSPerChip {
		t.Fatalf("relax did not widen: %v -> %v", m, r)
	}
	if math.IsNaN(r.TTFT) {
		t.Fatal("NaN")
	}
}
