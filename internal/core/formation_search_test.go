package core

import (
	"reflect"
	"testing"

	"rago/internal/engine"
	"rago/internal/hw"
	"rago/internal/ragschema"
)

// formationShapes is a heavy-tailed sample: mostly short prompts plus a
// long tail, the regime where formation policy and chunking matter.
func formationShapes() []engine.Shape {
	var out []engine.Shape
	for i := 0; i < 28; i++ {
		out = append(out, engine.Shape{PromptTokens: 200 + (i*41)%320, OutputTokens: 192 + (i*29)%128})
	}
	for i := 0; i < 4; i++ {
		out = append(out, engine.Shape{PromptTokens: 2200 + i*400, OutputTokens: 256})
	}
	return out
}

// TestFormationSearchMatchesExhaustive extends the branch-and-bound
// acceptance test to the formation dimensions: with per-request shapes,
// a policy sweep, and chunk quanta all active, the pruned search must
// return a frontier identical to the NoPrune exhaustive reference. The
// plan-level bounds are relaxed for shaped costing (min-padded envelope,
// per-quantum chunk floors, min-context decode envelope); any divergence
// here means a relaxation stopped being admissible.
func TestFormationSearchMatchesExhaustive(t *testing.T) {
	for _, tc := range []struct {
		name   string
		schema ragschema.Schema
	}{
		{"caseI", ragschema.CaseI(8e9, 1)},
		{"caseV", ragschema.CaseV(8e9, 2)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := DefaultOptions(hw.DefaultCluster())
			opts.NormalizeChips = 64
			opts.Shapes = formationShapes()
			opts.Policies = []engine.BatchPolicy{engine.PolicyFIFO, engine.PolicyBucketed, engine.PolicySorted}
			opts.ChunkQuanta = []int{0, 256}

			exOpts := opts
			exOpts.NoPrune = true
			exhaustive, err := NewOptimizer(tc.schema, exOpts)
			if err != nil {
				t.Fatal(err)
			}
			want := exhaustive.Optimize()

			pruned, err := NewOptimizer(tc.schema, opts)
			if err != nil {
				t.Fatal(err)
			}
			got := pruned.Optimize()

			if len(want) == 0 {
				t.Fatal("exhaustive formation frontier is empty")
			}
			if len(got) != len(want) {
				t.Fatalf("frontier size diverged: pruned %d vs exhaustive %d", len(got), len(want))
			}
			for i := range want {
				if got[i].Metrics != want[i].Metrics || !reflect.DeepEqual(got[i].Item, want[i].Item) {
					t.Errorf("point %d diverged:\npruned     %+v %v\nexhaustive %+v %v",
						i, got[i].Item, got[i].Metrics, want[i].Item, want[i].Metrics)
				}
			}

			// The dimensions must actually engage: on a heavy-tailed mix the
			// frontier should hold at least one non-FIFO or chunked point
			// (bucketed formation weakly dominates FIFO per schedule here).
			nonDefault := false
			for _, p := range want {
				if p.Item.FormPolicy != engine.PolicyFIFO || p.Item.ChunkQuantum > 0 {
					nonDefault = true
					break
				}
			}
			if !nonDefault {
				t.Error("no frontier point uses a formation policy or chunking — the dimensions never engaged")
			}
		})
	}
}

// TestFormationSearchShapedScoring: with shapes but the default
// (FIFO-only) formation dimensions, the search scores candidates by
// shape-weighted metrics — the frontier QPS must sit below the
// constant-shape frontier's on the same heavy-tailed sample.
func TestFormationSearchShapedScoring(t *testing.T) {
	opts := DefaultOptions(hw.DefaultCluster())
	opts.NormalizeChips = 64
	plain, err := NewOptimizer(ragschema.CaseI(8e9, 1), opts)
	if err != nil {
		t.Fatal(err)
	}
	plainFront := plain.Optimize()

	opts.Shapes = formationShapes()
	shaped, err := NewOptimizer(ragschema.CaseI(8e9, 1), opts)
	if err != nil {
		t.Fatal(err)
	}
	shapedFront := shaped.Optimize()
	if len(plainFront) == 0 || len(shapedFront) == 0 {
		t.Fatal("empty frontier")
	}
	maxQPS := func(front []SchedulePoint) float64 {
		best := 0.0
		for _, p := range front {
			if p.Metrics.QPS > best {
				best = p.Metrics.QPS
			}
		}
		return best
	}
	if !(maxQPS(shapedFront) < maxQPS(plainFront)) {
		t.Errorf("heavy-tailed shaped frontier QPS %.2f should undercut constant-shape %.2f",
			maxQPS(shapedFront), maxQPS(plainFront))
	}
}
