package core

import (
	"reflect"
	"testing"

	"rago/internal/hw"
	"rago/internal/ragschema"
	"rago/internal/retrieval"
)

// testRecallModel is a plausible calibrated recall@10 surface: monotone in
// both probe count and fanout, saturating toward 1 at full scan.
func testRecallModel(t *testing.T) *retrieval.RecallModel {
	t.Helper()
	m, err := retrieval.NewRecallModel(
		[]int{1, 8, 32},
		[]int{1, 4, 8},
		[][]float64{
			{0.30, 0.42, 0.48},
			{0.55, 0.74, 0.82},
			{0.72, 0.90, 0.97},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// shardedOptimizer builds an optimizer whose profiler carries an 8-shard
// retrieval tier and the calibrated recall surface.
func shardedOptimizer(t *testing.T, schema ragschema.Schema, opts Options) *Optimizer {
	t.Helper()
	o, err := NewOptimizer(schema, opts)
	if err != nil {
		t.Fatal(err)
	}
	o.Prof.Shards = 8
	o.Prof.RecallMod = testRecallModel(t)
	return o
}

// TestRetrievalKnobSearchMatchesExhaustive extends the branch-and-bound
// acceptance test to the retrieval knob dimensions: with nprobe and shard
// fanout both searched on a sharded tier with a recall surface, the pruned
// search must return a frontier identical to the NoPrune exhaustive
// reference. The plan bound prices the retrieval envelope over every knob
// pair and carries the surface's recall ceiling; any divergence here means
// one of those relaxations stopped being admissible.
func TestRetrievalKnobSearchMatchesExhaustive(t *testing.T) {
	for _, tc := range []struct {
		name   string
		schema ragschema.Schema
	}{
		{"caseI", ragschema.CaseI(8e9, 1)},
		{"caseII", ragschema.CaseII(70e9, 1_000_000)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := DefaultOptions(hw.DefaultCluster())
			opts.NormalizeChips = 64
			opts.NProbes = []int{2, 0, 32}
			opts.ShardFanouts = []int{2, 0}

			exOpts := opts
			exOpts.NoPrune = true
			want := shardedOptimizer(t, tc.schema, exOpts).Optimize()
			got := shardedOptimizer(t, tc.schema, opts).Optimize()

			if len(want) == 0 {
				t.Fatal("exhaustive knob frontier is empty")
			}
			if len(got) != len(want) {
				t.Fatalf("frontier size diverged: pruned %d vs exhaustive %d", len(got), len(want))
			}
			for i := range want {
				if got[i].Metrics != want[i].Metrics || !reflect.DeepEqual(got[i].Item, want[i].Item) {
					t.Errorf("point %d diverged:\npruned     %+v %v\nexhaustive %+v %v",
						i, got[i].Item, got[i].Metrics, want[i].Item, want[i].Metrics)
				}
			}

			// The recall axis must actually engage: the frontier has to hold
			// points at distinct measured recall levels — low-recall points
			// survive only by beating high-recall ones on speed, i.e. the
			// search found the recall/latency trade-off the knobs encode.
			recalls := map[float64]bool{}
			for _, p := range want {
				if p.Metrics.Recall <= 0 || p.Metrics.Recall > 1 {
					t.Fatalf("frontier point has unmeasured or invalid recall %v", p.Metrics.Recall)
				}
				recalls[p.Metrics.Recall] = true
			}
			if len(recalls) < 2 {
				t.Errorf("frontier holds %d distinct recall levels, want >= 2 — the knob dimensions never engaged", len(recalls))
			}
		})
	}
}

// TestRetrievalKnobPlanBoundAdmissible checks the bound's defining property
// with the knob dimensions active: no schedule on a plan's frontier may
// beat the plan's optimistic bound on any objective, recall included.
func TestRetrievalKnobPlanBoundAdmissible(t *testing.T) {
	opts := DefaultOptions(hw.DefaultCluster())
	opts.NormalizeChips = 64
	opts.NProbes = []int{2, 0, 32}
	opts.ShardFanouts = []int{2, 0}
	o := shardedOptimizer(t, ragschema.CaseI(8e9, 1), opts)
	plans := o.Plans()
	checked := 0
	for i, plan := range plans {
		if i%5 != 0 { // sample; every plan costs a full sub-search
			continue
		}
		bound, ok := o.planBound(plan)
		front := o.PlanFrontier(plan)
		if !ok {
			if len(front) != 0 {
				t.Fatalf("plan %d: bound says infeasible but frontier has %d points", i, len(front))
			}
			continue
		}
		for _, p := range front {
			m := p.Metrics
			if m.TTFT < bound.TTFT || m.TPOT < bound.TPOT || m.QPS > bound.QPS ||
				m.QPSPerChip > bound.QPSPerChip || m.Recall > bound.Recall {
				t.Fatalf("plan %d: point %v beats admissible bound %v", i, m, bound)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no plans checked")
	}
}

// TestRetrievalKnobsOffIsByteCompatible pins that leaving the knob
// dimensions unset — even with a sharded profiler and a recall surface —
// changes nothing except the measured recall stamped on each point: the
// schedules and the three performance objectives must match a run with no
// recall surface at all, at the tier's base configuration.
func TestRetrievalKnobsOffIsByteCompatible(t *testing.T) {
	opts := DefaultOptions(hw.DefaultCluster())
	opts.NormalizeChips = 64

	plain, err := NewOptimizer(ragschema.CaseI(8e9, 1), opts)
	if err != nil {
		t.Fatal(err)
	}
	want := plain.Optimize()

	measured, err := NewOptimizer(ragschema.CaseI(8e9, 1), opts)
	if err != nil {
		t.Fatal(err)
	}
	measured.Prof.RecallMod = testRecallModel(t)
	got := measured.Optimize()

	if len(want) == 0 || len(got) != len(want) {
		t.Fatalf("frontier size diverged: measured %d vs plain %d", len(got), len(want))
	}
	base := measured.Prof.RecallMod.Recall(0, 0)
	for i := range want {
		gm, wm := got[i].Metrics, want[i].Metrics
		if gm.TTFT != wm.TTFT || gm.TPOT != wm.TPOT || gm.QPS != wm.QPS || gm.QPSPerChip != wm.QPSPerChip {
			t.Errorf("point %d performance diverged: %v vs %v", i, gm, wm)
		}
		if gm.Recall != base {
			t.Errorf("point %d recall = %v, want base-configuration %v", i, gm.Recall, base)
		}
		if !reflect.DeepEqual(got[i].Item, want[i].Item) {
			t.Errorf("point %d schedule diverged", i)
		}
	}
}
