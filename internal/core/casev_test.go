package core

import (
	"testing"

	"rago/internal/hw"
	"rago/internal/perf"
	"rago/internal/ragschema"
)

// TestCaseVOptimize runs the full schedule search over the multi-source
// fan-out pipeline — a stage graph, not a chain — proving new workload
// shapes are data through the optimizer, not new code: placement
// enumeration, the per-plan batch search, and the engine-backed assembly
// all operate on the graph unchanged.
func TestCaseVOptimize(t *testing.T) {
	o := newOpt(t, ragschema.CaseV(8e9, 2), hw.DefaultCluster(), 64)
	front := o.Optimize()
	if len(front) < 3 {
		t.Fatalf("fan-out frontier too small: %d", len(front))
	}
	best, ok := perf.MaxQPSPerChip(front)
	if !ok {
		t.Fatal("empty frontier")
	}
	// Two sources double the per-request retrieval work but run on
	// parallel tiers, so the ceiling stays at the single-tier retrieval
	// bound (~15 QPS/chip on the 64-chip pool, like Case I).
	if best.Metrics.QPSPerChip < 10 || best.Metrics.QPSPerChip > 16 {
		t.Errorf("Case V max QPS/chip = %.2f, want ~15 (per-source retrieval bound)", best.Metrics.QPSPerChip)
	}
	for _, p := range front {
		if err := p.Item.Validate(o.Pipe); err != nil {
			t.Fatalf("frontier schedule invalid: %v", err)
		}
		if m, ok := o.Asm.Evaluate(p.Item); !ok || m != p.Metrics {
			t.Fatalf("frontier point not Evaluate-consistent: %v vs %v", p.Metrics, m)
		}
	}
}
