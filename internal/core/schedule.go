// Package core implements RAGO itself (§6): the systematic search over RAG
// serving schedules — task placement, resource allocation, and batching
// policy — that produces the TTFT/TPOT/QPS-per-chip Pareto frontier for a
// RAGSchema under a resource constraint (Algorithm 1).
//
// The schedule representation and its compilation into an executable plan
// live in internal/engine; core re-exports the schedule types and owns the
// search. The package also provides the paper's comparison baseline (an
// LLM-only serving system extended with RAG components collocated into its
// prefix tier, §7.1) and the micro-batched burst TTFT model of §7.2.
package core

import (
	"sort"

	"rago/internal/engine"
)

// GroupSchedule is the resolved policy for one XPU placement group.
type GroupSchedule = engine.GroupSchedule

// Schedule is one complete scheduling decision: where every stage runs,
// with how many resources, at which batch sizes. It is engine.Schedule;
// core aliases it so the optimizer's public surface stays in one package.
type Schedule = engine.Schedule

// sortSchedules orders schedules deterministically for stable output.
func sortSchedules(points []SchedulePoint) {
	sort.SliceStable(points, func(i, j int) bool {
		a, b := points[i].Metrics, points[j].Metrics
		if a.TTFT != b.TTFT {
			return a.TTFT < b.TTFT
		}
		return a.QPSPerChip > b.QPSPerChip
	})
}
