package core

import (
	"testing"

	"rago/internal/hw"
	"rago/internal/ragschema"
)

// BenchmarkOptimizeCaseIV measures the full schedule search on the richest
// non-iterative workload (rewriter + retrieval + reranker) with and
// without the stageperf memoization layers — the engine's hot path. The
// memoized variant is the production configuration; the no-memo variant
// re-runs the underlying roofline/vector-search models for every one of
// the (stage, chips, batch, replicas) tuples the search revisits, which is
// what every Optimize call paid before the caches existed.
func BenchmarkOptimizeCaseIV(b *testing.B) {
	run := func(b *testing.B, noMemo bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			o, err := NewOptimizer(ragschema.CaseIV(8e9), DefaultOptions(hw.DefaultCluster()))
			if err != nil {
				b.Fatal(err)
			}
			o.Prof.NoMemo = noMemo
			if front := o.Optimize(); len(front) == 0 {
				b.Fatal("empty frontier")
			}
		}
	}
	b.Run("memoized", func(b *testing.B) { run(b, false) })
	b.Run("no-memo", func(b *testing.B) { run(b, true) })
}

// BenchmarkOptimizeCaseV measures the search on the iterative-retrieval
// workload, whose per-candidate IterativePlan probe makes the inner loop
// shape different from Case IV, with branch-and-bound pruning on (the
// production path) and off (the exhaustive reference the differential test
// compares against).
func BenchmarkOptimizeCaseV(b *testing.B) {
	run := func(b *testing.B, noPrune bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			opts := DefaultOptions(hw.DefaultCluster())
			opts.NoPrune = noPrune
			o, err := NewOptimizer(ragschema.CaseV(8e9, 2), opts)
			if err != nil {
				b.Fatal(err)
			}
			if front := o.Optimize(); len(front) == 0 {
				b.Fatal("empty frontier")
			}
		}
	}
	b.Run("pruned", func(b *testing.B) { run(b, false) })
	b.Run("exhaustive", func(b *testing.B) { run(b, true) })
}
