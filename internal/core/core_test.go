package core

import (
	"math"
	"strings"
	"testing"

	"rago/internal/engine"
	"rago/internal/hw"
	"rago/internal/perf"
	"rago/internal/ragschema"
)

func newOpt(t *testing.T, s ragschema.Schema, cluster hw.Cluster, norm int) *Optimizer {
	t.Helper()
	opts := DefaultOptions(cluster)
	opts.NormalizeChips = norm
	o, err := NewOptimizer(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func caseISchedule() Schedule {
	return Schedule{
		Groups:           []GroupSchedule{{Stages: []int{1}, Chips: 16, Batch: 4}},
		RetrievalServers: 16,
		RetrievalBatch:   16,
		DecodeChips:      16,
		DecodeBatch:      256,
		DecodeReplicas:   4,
	}
}

func TestScheduleValidateAndDescribe(t *testing.T) {
	o := newOpt(t, ragschema.CaseI(8e9, 1), hw.DefaultCluster(), 0)
	s := caseISchedule()
	if err := s.Validate(o.Pipe); err != nil {
		t.Fatal(err)
	}
	if s.ChipsUsed() != 32 {
		t.Errorf("ChipsUsed = %d, want 32", s.ChipsUsed())
	}
	desc := s.Describe(o.Pipe)
	for _, want := range []string{"prefix", "retrieval servers=16", "decode chips=16 batch=256 x4"} {
		if !strings.Contains(desc, want) {
			t.Errorf("Describe = %q, missing %q", desc, want)
		}
	}

	bad := s
	bad.DecodeBatch = 0
	if err := bad.Validate(o.Pipe); err == nil {
		t.Errorf("zero decode batch should fail")
	}
	bad = s
	bad.RetrievalServers = 0
	if err := bad.Validate(o.Pipe); err == nil {
		t.Errorf("missing retrieval servers should fail")
	}
	bad = s
	bad.DecodeReplicas = 3
	if err := bad.Validate(o.Pipe); err == nil {
		t.Errorf("non-dividing decode replicas should fail")
	}
	bad = s
	bad.Groups = []GroupSchedule{{Stages: []int{1}, Chips: 16, Batch: 4, Replicas: []int{1, 2}}}
	if err := bad.Validate(o.Pipe); err == nil {
		t.Errorf("replicas/stages mismatch should fail")
	}
}

func TestEvaluateKnownSchedule(t *testing.T) {
	o := newOpt(t, ragschema.CaseI(8e9, 1), hw.DefaultCluster(), 64)
	m, ok := o.Asm.Evaluate(caseISchedule())
	if !ok {
		t.Fatal("schedule should be feasible")
	}
	// TTFT includes prefix (~tens of ms at batch 4) plus retrieval
	// (~21ms) — expect 30-120 ms.
	if m.TTFT < 0.030 || m.TTFT > 0.120 {
		t.Errorf("TTFT = %v, want 30-120ms", m.TTFT)
	}
	// Retrieval saturates near 950 QPS at most; QPS cannot exceed it.
	if m.QPS > 960 {
		t.Errorf("QPS = %v exceeds the retrieval tier's saturation", m.QPS)
	}
	if m.TPOT <= 0 || m.TPOT > 0.1 {
		t.Errorf("TPOT = %v out of range", m.TPOT)
	}
}

func TestEvaluateRejectsInfeasible(t *testing.T) {
	o := newOpt(t, ragschema.CaseI(405e9, 1), hw.DefaultCluster(), 0)
	s := caseISchedule()
	s.Groups[0].Chips = 1 // 405B prefix cannot fit one chip
	if _, ok := o.Asm.Evaluate(s); ok {
		t.Errorf("405B prefix on one chip should be infeasible")
	}
	// 8 retrieval servers cannot hold the 6.1 TB corpus.
	o8 := newOpt(t, ragschema.CaseI(8e9, 1), hw.DefaultCluster(), 0)
	s = caseISchedule()
	s.RetrievalServers = 8
	if _, ok := o8.Asm.Evaluate(s); ok {
		t.Errorf("8-server retrieval should be infeasible")
	}
}

func TestGroupMemoryCheck(t *testing.T) {
	// Collocating the 70B prefix with the 8B rewriter on one chip needs
	// 78.6 GB resident; one 96 GB chip (86.4 usable) fits, but the 405B
	// prefix plus rewriter on 4 chips (345 GB usable) does not.
	o := newOpt(t, ragschema.CaseIV(405e9), hw.LargeCluster(), 0)
	pre := o.Pipe.PreDecodeXPUStages()
	g := GroupSchedule{Stages: pre, Chips: 4, Batch: 1}
	if engine.GroupMemFits(o.Pipe, o.Prof, g) {
		t.Errorf("405B + 8B rewriter on 4 chips should not fit")
	}
	g.Chips = 8
	if !engine.GroupMemFits(o.Pipe, o.Prof, g) {
		t.Errorf("405B + 8B rewriter on 8 chips should fit")
	}
}

func TestPlansRespectBudgetAndMinima(t *testing.T) {
	o := newOpt(t, ragschema.CaseII(70e9, 1_000_000), hw.DefaultCluster(), 0)
	plans := o.Plans()
	if len(plans) == 0 {
		t.Fatal("no plans enumerated")
	}
	budget := hw.DefaultCluster().XPUs()
	for _, p := range plans {
		total := p.DecodeChips
		for _, c := range p.GroupChips {
			total += c
		}
		if total > budget {
			t.Fatalf("plan %v exceeds budget %d", p, budget)
		}
		if p.Servers != 1 {
			t.Errorf("long-context retrieval needs exactly 1 server, got %d", p.Servers)
		}
	}
}

func TestOptimizeFrontierProperties(t *testing.T) {
	o := newOpt(t, ragschema.CaseI(8e9, 1), hw.DefaultCluster(), 64)
	front := o.Optimize()
	if len(front) < 3 {
		t.Fatalf("frontier too small: %d", len(front))
	}
	for i, p := range front {
		// Every schedule must re-evaluate to exactly the reported
		// metrics (the search's incremental merge and the assembler
		// must agree).
		m, ok := o.Asm.Evaluate(p.Item)
		if !ok {
			t.Fatalf("frontier schedule %d infeasible on re-evaluation", i)
		}
		if math.Abs(m.TTFT-p.Metrics.TTFT) > 1e-12 || math.Abs(m.QPSPerChip-p.Metrics.QPSPerChip) > 1e-9 {
			t.Fatalf("frontier point %d: merge metrics %v != evaluate %v", i, p.Metrics, m)
		}
		for j, q := range front {
			if i != j && p.Metrics.Dominates(q.Metrics) {
				t.Fatalf("frontier point %d dominates %d", i, j)
			}
		}
	}
}

func TestOptimizeDeterministic(t *testing.T) {
	a := newOpt(t, ragschema.CaseI(8e9, 1), hw.DefaultCluster(), 64).Optimize()
	b := newOpt(t, ragschema.CaseI(8e9, 1), hw.DefaultCluster(), 64).Optimize()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic frontier size: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Metrics != b[i].Metrics {
			t.Fatalf("non-deterministic frontier at %d: %v vs %v", i, a[i].Metrics, b[i].Metrics)
		}
	}
}

func TestCaseIRetrievalBound(t *testing.T) {
	// §5.1: hyperscale retrieval bounds the 8B RAG system; with the
	// 64-chip pool the ceiling is retrieval's ~950 QPS -> ~15 QPS/chip.
	o := newOpt(t, ragschema.CaseI(8e9, 1), hw.DefaultCluster(), 64)
	best, ok := perf.MaxQPSPerChip(o.Optimize())
	if !ok {
		t.Fatal("empty frontier")
	}
	if best.Metrics.QPSPerChip < 10 || best.Metrics.QPSPerChip > 16 {
		t.Errorf("Case I 8B max QPS/chip = %.2f, want ~15 (retrieval bound)", best.Metrics.QPSPerChip)
	}
	// 1B and 8B should tie at the retrieval bound (Fig. 5 takeaway).
	o1 := newOpt(t, ragschema.CaseI(1e9, 1), hw.DefaultCluster(), 64)
	best1, _ := perf.MaxQPSPerChip(o1.Optimize())
	if math.Abs(best1.Metrics.QPSPerChip-best.Metrics.QPSPerChip)/best.Metrics.QPSPerChip > 0.15 {
		t.Errorf("RAG 1B (%.2f) and RAG 8B (%.2f) should both sit at the retrieval bound",
			best1.Metrics.QPSPerChip, best.Metrics.QPSPerChip)
	}
}

func TestRAGBeatsLLMOnly70B(t *testing.T) {
	// Fig. 5: RAG 8B outperforms LLM-only 70B in QPS/chip (paper: 1.5x;
	// our calibration lands higher but the winner must hold).
	rag := newOpt(t, ragschema.CaseI(8e9, 1), hw.DefaultCluster(), 64)
	llm := newOpt(t, ragschema.LLMOnly(70e9), hw.DefaultCluster(), 64)
	ragBest, _ := perf.MaxQPSPerChip(rag.Optimize())
	llmBest, _ := perf.MaxQPSPerChip(llm.Optimize())
	if ragBest.Metrics.QPSPerChip <= llmBest.Metrics.QPSPerChip {
		t.Errorf("RAG 8B (%.2f) should beat LLM-only 70B (%.2f) in QPS/chip",
			ragBest.Metrics.QPSPerChip, llmBest.Metrics.QPSPerChip)
	}
}

func TestRAGOBeatsBaselineCaseII(t *testing.T) {
	// Fig. 15a: RAGO achieves ~1.7x the baseline's max QPS/chip on the
	// long-context workload.
	o := newOpt(t, ragschema.CaseII(70e9, 1_000_000), hw.LargeCluster(), 0)
	ragoBest, ok := perf.MaxQPSPerChip(o.Optimize())
	if !ok {
		t.Fatal("empty RAGO frontier")
	}
	baseBest, ok := perf.MaxQPSPerChip(o.BaselineFrontier())
	if !ok {
		t.Fatal("empty baseline frontier")
	}
	gain := ragoBest.Metrics.QPSPerChip / baseBest.Metrics.QPSPerChip
	if gain < 1.3 || gain > 2.3 {
		t.Errorf("RAGO/baseline gain = %.2fx, want ~1.7x (paper Fig. 15a)", gain)
	}
}

func TestIterativeRetrievalRaisesTPOT(t *testing.T) {
	// §5.3: more retrievals per sequence mean higher worst-case TPOT at
	// the same schedule.
	var prev float64
	for _, freq := range []int{2, 4, 8} {
		o := newOpt(t, ragschema.CaseIII(70e9, freq), hw.DefaultCluster(), 64)
		s := caseISchedule()
		s.Groups[0].Chips = 16
		s.DecodeChips = 16
		s.IterativeBatch = 16
		m, ok := o.Asm.Evaluate(s)
		if !ok {
			t.Fatalf("freq %d: schedule infeasible", freq)
		}
		if m.TPOT <= prev {
			t.Errorf("TPOT at freq %d (%v) not above freq-lower (%v)", freq, m.TPOT, prev)
		}
		prev = m.TPOT
	}
}

func TestIterativeStallModel(t *testing.T) {
	o := newOpt(t, ragschema.CaseIII(70e9, 4), hw.DefaultCluster(), 64)
	base := caseISchedule()
	base.IterativeBatch = 4
	ic, ok := engine.IterativeCost(o.Pipe, o.Prof, base)
	if !ok {
		t.Fatal("iterative cost infeasible")
	}
	if ic.StallPerRequest <= 0 {
		t.Errorf("iterative stall = %v, want positive", ic.StallPerRequest)
	}
	if ic.RetrievalOccupancy <= 0 || ic.PrefixOccupancy <= 0 {
		t.Errorf("iterative occupancies must be positive: %+v", ic)
	}
	// Fig. 9b, small decode batch: growing the iterative batch toward
	// the decode batch inflates the stall (batch-formation wait).
	small := base
	small.DecodeBatch = 16
	small.IterativeBatch = 1
	icSmall, ok := engine.IterativeCost(o.Pipe, o.Prof, small)
	if !ok {
		t.Fatal("small iterative cost infeasible")
	}
	small.IterativeBatch = 16
	icBig, ok := engine.IterativeCost(o.Pipe, o.Prof, small)
	if !ok {
		t.Fatal("big iterative cost infeasible")
	}
	if icBig.StallPerRequest <= icSmall.StallPerRequest {
		t.Errorf("stall should grow with iterative batch at small decode batch: %v vs %v",
			icBig.StallPerRequest, icSmall.StallPerRequest)
	}
	// Non-iterative workloads cost nothing.
	o1 := newOpt(t, ragschema.CaseI(8e9, 1), hw.DefaultCluster(), 64)
	ic0, ok := engine.IterativeCost(o1.Pipe, o1.Prof, caseISchedule())
	if !ok || ic0 != (engine.IterCost{}) {
		t.Errorf("non-iterative cost = %+v, want zero", ic0)
	}
}

func TestBurstMicroBatching(t *testing.T) {
	o := newOpt(t, ragschema.CaseII(70e9, 1_000_000), hw.LargeCluster(), 0)
	plan := Plan{
		Placement:   o.Pipe.FullyDisaggregated(),
		GroupChips:  []int{32, 8},
		DecodeChips: 8,
		Servers:     1,
	}
	whole, err := o.BurstTTFT(plan, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	split, err := o.BurstTTFT(plan, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	if split >= whole {
		t.Errorf("micro-batching should cut burst TTFT: %v vs %v", split, whole)
	}
	red, err := o.BurstTTFTReduction(plan, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 19b: double-digit percentage reductions for Case II.
	if red < 10 || red >= 100 {
		t.Errorf("Case II micro-batch reduction = %.1f%%, want 10-100%%", red)
	}
	if _, err := o.BurstTTFT(plan, 0, 2); err == nil {
		t.Errorf("zero burst should error")
	}
}

func TestBaselinePlacementShape(t *testing.T) {
	o := newOpt(t, ragschema.CaseIV(70e9), hw.DefaultCluster(), 0)
	front := o.BaselineFrontier()
	if len(front) == 0 {
		t.Fatal("empty baseline frontier")
	}
	for _, p := range front {
		if len(p.Item.Groups) != 1 {
			t.Fatalf("baseline must collocate all pre-decode stages in one group")
		}
		if p.Item.Groups[0].Chips != p.Item.DecodeChips {
			t.Fatalf("baseline must split chips 1:1, got %d vs %d",
				p.Item.Groups[0].Chips, p.Item.DecodeChips)
		}
	}
}

func TestPlanDescribe(t *testing.T) {
	o := newOpt(t, ragschema.CaseI(8e9, 1), hw.DefaultCluster(), 0)
	plan := Plan{Placement: o.Pipe.FullyDisaggregated(), GroupChips: []int{16}, DecodeChips: 16, Servers: 16}
	d := plan.Describe(o.Pipe)
	if !strings.Contains(d, "prefix") || !strings.Contains(d, "servers=16") {
		t.Errorf("Plan.Describe = %q", d)
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := NewOptimizer(ragschema.CaseI(8e9, 1), Options{}); err == nil {
		t.Errorf("zero options should fail")
	}
	opts := DefaultOptions(hw.DefaultCluster())
	opts.MaxPreBatch = 0
	if _, err := NewOptimizer(ragschema.CaseI(8e9, 1), opts); err == nil {
		t.Errorf("zero batch bound should fail")
	}
	bad := ragschema.CaseI(8e9, 1)
	bad.GenerativeParams = 0
	if _, err := NewOptimizer(bad, DefaultOptions(hw.DefaultCluster())); err == nil {
		t.Errorf("invalid schema should fail")
	}
}
