package perf

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// frontierRef is the brute-force O(n²) reference for Frontier's contract:
// drop invalid points, drop strictly dominated points, collapse exact
// duplicates to their first occurrence, and stable-sort the survivors by
// (TTFT asc, QPS/chip desc).
func frontierRef(pts []Point[int]) []Point[int] {
	var valid []Point[int]
	for _, p := range pts {
		if p.Metrics.Valid() {
			valid = append(valid, p)
		}
	}
	var kept []Point[int]
	for i, p := range valid {
		dominated := false
		for _, q := range valid {
			if q.Metrics.Dominates(p.Metrics) {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		// Duplicates collapse on the four objectives; raw QPS is not
		// one (the paper normalizes throughput by chip count).
		dup := false
		for _, q := range valid[:i] {
			if q.Metrics.TTFT == p.Metrics.TTFT && q.Metrics.TPOT == p.Metrics.TPOT &&
				q.Metrics.QPSPerChip == p.Metrics.QPSPerChip && q.Metrics.Recall == p.Metrics.Recall {
				dup = true
				break
			}
		}
		if !dup {
			kept = append(kept, p)
		}
	}
	sort.SliceStable(kept, func(i, j int) bool {
		a, b := kept[i].Metrics, kept[j].Metrics
		if a.TTFT != b.TTFT {
			return a.TTFT < b.TTFT
		}
		if a.QPSPerChip != b.QPSPerChip {
			return a.QPSPerChip > b.QPSPerChip
		}
		if a.TPOT != b.TPOT {
			return a.TPOT < b.TPOT
		}
		return a.Recall > b.Recall
	})
	return kept
}

// gridMetrics draws metrics from a coarse grid (forcing ties and exact
// duplicates) with occasional NaN/Inf/negative pollution. Recall draws
// from the same grid (a valid [0, 0.4] range) with zero common — the
// unmeasured quality axis must coexist with measured points.
func gridMetrics(rng *rand.Rand) Metrics {
	grid := func() float64 { return float64(rng.Intn(5)) * 0.1 }
	m := Metrics{TTFT: grid(), TPOT: grid(), QPS: grid() * 100, QPSPerChip: grid() * 10, Recall: grid()}
	if rng.Intn(10) == 0 {
		bad := []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1}
		f := bad[rng.Intn(len(bad))]
		switch rng.Intn(5) {
		case 0:
			m.TTFT = f
		case 1:
			m.TPOT = f
		case 2:
			m.QPS = f
		case 3:
			m.Recall = bad[rng.Intn(2)] // NaN or out-of-range high
			if m.Recall > 1 {
				m.Recall = 1.5
			}
		default:
			m.QPSPerChip = f
		}
	}
	return m
}

// TestFrontierMatchesBruteForce drives the staircase sweep against the
// quadratic reference on random point sets.
func TestFrontierMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 400; trial++ {
		n := rng.Intn(60)
		pts := make([]Point[int], n)
		for i := range pts {
			pts[i] = Point[int]{Metrics: gridMetrics(rng), Item: i}
		}
		got := Frontier(pts)
		want := frontierRef(pts)
		if len(got) != len(want) {
			t.Fatalf("trial %d: frontier size %d, reference %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i].Metrics != want[i].Metrics || got[i].Item != want[i].Item {
				t.Fatalf("trial %d: point %d diverged: %+v vs %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestIncrementalMatchesFrontier cross-checks the branch-and-bound
// incumbent against the batch staircase: inserting every point one by one
// must converge to the same non-dominated metric set Frontier computes,
// and DominatedBy must agree with the brute-force strict-dominance test
// for every input point.
func TestIncrementalMatchesFrontier(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(50)
		pts := make([]Point[int], n)
		var inc Incremental
		for i := range pts {
			pts[i] = Point[int]{Metrics: gridMetrics(rng), Item: i}
			inc.Insert(pts[i].Metrics)
		}
		want := map[Metrics]bool{}
		for _, p := range Frontier(pts) {
			want[p.Metrics] = true
		}
		got := inc.Points()
		if len(got) != len(want) {
			t.Fatalf("trial %d: incumbent holds %d points, frontier %d", trial, len(got), len(want))
		}
		for i, m := range got {
			if !want[m] {
				t.Fatalf("trial %d: incumbent point %v not on batch frontier", trial, m)
			}
			if i > 0 && got[i-1].TTFT > m.TTFT {
				t.Fatalf("trial %d: incumbent points not TTFT-sorted", trial)
			}
		}
		for _, p := range pts {
			if !p.Metrics.Valid() {
				continue
			}
			dominated := false
			for m := range want {
				if m.Dominates(p.Metrics) {
					dominated = true
					break
				}
			}
			if inc.DominatedBy(p.Metrics) != dominated {
				t.Fatalf("trial %d: DominatedBy(%v) = %v, brute force says %v", trial, p.Metrics, !dominated, dominated)
			}
		}
	}
}

// TestIncrementalInsertSemantics pins the incumbent's edge cases: invalid
// points, exact duplicates, and eviction of newly dominated members.
func TestIncrementalInsertSemantics(t *testing.T) {
	var inc Incremental
	if inc.Insert(Metrics{TTFT: math.NaN(), TPOT: 1, QPS: 1, QPSPerChip: 1}) {
		t.Fatal("inserted NaN metrics")
	}
	if inc.Insert(Metrics{TTFT: math.Inf(1), TPOT: 1, QPS: 1, QPSPerChip: 1}) {
		t.Fatal("inserted Inf metrics")
	}
	m := Metrics{TTFT: 1, TPOT: 0.1, QPS: 10, QPSPerChip: 1}
	if !inc.Insert(m) {
		t.Fatal("rejected a valid first point")
	}
	if inc.Insert(m) {
		t.Fatal("inserted an exact duplicate")
	}
	if inc.Len() != 1 {
		t.Fatalf("Len = %d, want 1", inc.Len())
	}
	// A dominating point evicts.
	better := Metrics{TTFT: 0.5, TPOT: 0.05, QPS: 20, QPSPerChip: 2}
	if !inc.Insert(better) {
		t.Fatal("rejected a dominating point")
	}
	if inc.Len() != 1 || inc.Points()[0] != better {
		t.Fatalf("dominated member not evicted: %v", inc.Points())
	}
	// Equal points do not dominate: a bound exactly on the frontier must
	// not be prunable.
	if inc.DominatedBy(better) {
		t.Fatal("a frontier member reads as dominated")
	}
	// An incomparable point coexists.
	side := Metrics{TTFT: 0.1, TPOT: 0.5, QPS: 1, QPSPerChip: 0.5}
	if !inc.Insert(side) || inc.Len() != 2 {
		t.Fatalf("incomparable point rejected; frontier %v", inc.Points())
	}
}
