// Package perf defines the performance metrics used throughout RAGO —
// time-to-first-token (TTFT), time-per-output-token (TPOT), and
// queries-per-second normalized by chip count (QPS/chip) — together with
// generic Pareto-frontier machinery over those metrics.
//
// The paper's optimizer (Algorithm 1) reduces every scheduling decision to
// points in this metric space and reports only the Pareto-optimal subset;
// the helpers here are shared by the per-stage profiler, the end-to-end
// assembler, and the benchmark harness.
package perf

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Metrics is one evaluated operating point of a system or stage.
//
// TTFT and TPOT are in seconds. QPS is end-to-end requests per second and
// QPSPerChip is QPS normalized by the number of accelerator chips the
// schedule uses (the paper's cost-efficiency metric).
type Metrics struct {
	TTFT       float64
	TPOT       float64
	QPS        float64
	QPSPerChip float64
	// Recall is the schedule's measured retrieval quality (recall@k of its
	// nprobe/fanout operating point), higher better. 0 means unmeasured —
	// deployments without a calibrated recall surface — in which case the
	// quality axis is inert and every frontier computation reduces exactly
	// to the original three objectives.
	Recall float64
}

// Valid reports whether the metrics are physically meaningful: latencies
// non-negative and finite, throughputs non-negative and finite, recall
// inside [0, 1].
func (m Metrics) Valid() bool {
	for _, v := range []float64{m.TTFT, m.TPOT, m.QPS, m.QPSPerChip} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return false
		}
	}
	return !math.IsNaN(m.Recall) && m.Recall >= 0 && m.Recall <= 1
}

// Dominates reports whether m is at least as good as other on every
// objective and strictly better on at least one. Lower TTFT and TPOT are
// better; higher QPSPerChip and Recall are better. Absolute QPS is
// intentionally not an objective: the paper normalizes throughput by chip
// count.
func (m Metrics) Dominates(other Metrics) bool {
	if m.TTFT > other.TTFT || m.TPOT > other.TPOT || m.QPSPerChip < other.QPSPerChip || m.Recall < other.Recall {
		return false
	}
	return m.TTFT < other.TTFT || m.TPOT < other.TPOT || m.QPSPerChip > other.QPSPerChip || m.Recall > other.Recall
}

func (m Metrics) String() string {
	s := fmt.Sprintf("TTFT=%.4fs TPOT=%.4fs QPS=%.2f QPS/chip=%.3f", m.TTFT, m.TPOT, m.QPS, m.QPSPerChip)
	if m.Recall > 0 {
		s += fmt.Sprintf(" recall=%.3f", m.Recall)
	}
	return s
}

// Point couples metrics with an arbitrary payload (typically a schedule
// description) so frontier computation can carry provenance along.
type Point[T any] struct {
	Metrics Metrics
	Item    T
}

// Frontier computes the Pareto-optimal subset of pts under
// Metrics.Dominates and returns it sorted by ascending TTFT (ties broken by
// descending QPS/chip). Points with exactly equal metrics are collapsed to
// the first occurrence. The input slice is not modified.
//
// The implementation sorts by (TTFT asc, TPOT asc, QPS/chip desc, Recall
// desc) and sweeps with a staircase over (TPOT, QPS/chip) per distinct
// recall level: a candidate is dominated iff some already-kept point
// (necessarily with TTFT <= its own, by sort order) at a recall level >=
// its own has TPOT <= and QPS/chip >= its values. Recall takes few
// distinct values in practice (one per calibrated nprobe/fanout operating
// point) so complexity is O(n log n · levels); with the quality axis
// unmeasured there is a single level and the sweep is the original
// three-objective staircase, point for point.
func Frontier[T any](pts []Point[T]) []Point[T] {
	valid := make([]Point[T], 0, len(pts))
	for _, p := range pts {
		if p.Metrics.Valid() {
			valid = append(valid, p)
		}
	}
	sort.SliceStable(valid, func(i, j int) bool {
		a, b := valid[i].Metrics, valid[j].Metrics
		if a.TTFT != b.TTFT {
			return a.TTFT < b.TTFT
		}
		if a.TPOT != b.TPOT {
			return a.TPOT < b.TPOT
		}
		if a.QPSPerChip != b.QPSPerChip {
			return a.QPSPerChip > b.QPSPerChip
		}
		return a.Recall > b.Recall
	})

	// Each recall level holds kept (tpot, qps) corners with tpot strictly
	// increasing and qps strictly increasing: bestQPSAtOrBelow(tpot) is
	// the qps of the last corner with tpot' <= tpot. levels is sorted by
	// descending recall so a candidate checks the levels that can
	// dominate it (recall >= its own) as a prefix.
	type corner struct{ tpot, qps float64 }
	type level struct {
		recall float64
		stairs []corner
	}
	var levels []level
	var front []Point[T]
	for _, p := range valid {
		m := p.Metrics
		dominated := false
		for li := range levels {
			if levels[li].recall < m.Recall {
				break
			}
			stairs := levels[li].stairs
			// Find the rightmost corner with tpot <= m.TPOT.
			i := sort.Search(len(stairs), func(k int) bool { return stairs[k].tpot > m.TPOT }) - 1
			if i >= 0 && stairs[i].qps >= m.QPSPerChip {
				dominated = true // dominated (or an exact duplicate)
				break
			}
		}
		if dominated {
			continue
		}
		front = append(front, p)
		// Insert the new corner into its own recall level (created on
		// first use) and drop now-redundant successors.
		li := sort.Search(len(levels), func(k int) bool { return levels[k].recall <= m.Recall })
		if li == len(levels) || levels[li].recall != m.Recall {
			levels = append(levels, level{})
			copy(levels[li+1:], levels[li:])
			levels[li] = level{recall: m.Recall}
		}
		stairs := levels[li].stairs
		i := sort.Search(len(stairs), func(k int) bool { return stairs[k].tpot > m.TPOT }) - 1
		ins := i + 1
		end := ins
		for end < len(stairs) && stairs[end].qps <= m.QPSPerChip {
			end++
		}
		levels[li].stairs = append(stairs[:ins], append([]corner{{m.TPOT, m.QPSPerChip}}, stairs[end:]...)...)
	}
	sort.SliceStable(front, func(i, j int) bool {
		a, b := front[i].Metrics, front[j].Metrics
		if a.TTFT != b.TTFT {
			return a.TTFT < b.TTFT
		}
		if a.QPSPerChip != b.QPSPerChip {
			return a.QPSPerChip > b.QPSPerChip
		}
		// With the recall axis, points can tie on (TTFT, QPS/chip)
		// without dominance; order them deterministically.
		if a.TPOT != b.TPOT {
			return a.TPOT < b.TPOT
		}
		return a.Recall > b.Recall
	})
	return front
}

// Incremental is a Pareto frontier of Metrics maintained point by point —
// the incumbent set of a branch-and-bound search. Where Frontier computes
// the staircase once over a complete point set, Incremental keeps the same
// (TTFT asc)-sorted staircase live under interleaved Insert and DominatedBy
// queries, and is safe for concurrent use: the schedule search's workers
// share one incumbent, inserting each plan frontier as it completes and
// probing optimistic plan bounds against it before paying for a search.
//
// Only metrics participate; payloads do not. Pruning a search node whose
// admissible bound b satisfies DominatedBy(b) is lossless: every completion
// of the node is weakly worse than b on all objectives, hence strictly
// dominated by whichever incumbent point strictly dominates b.
type Incremental struct {
	mu  sync.RWMutex
	pts []Metrics // non-dominated, sorted by (TTFT asc, TPOT asc)
}

// DominatedBy reports whether some current member strictly dominates m.
// Equal points do not dominate, so a bound exactly on the frontier is not
// prunable (its completions may tie rather than lose).
func (inc *Incremental) DominatedBy(m Metrics) bool {
	inc.mu.RLock()
	defer inc.mu.RUnlock()
	// Only points with TTFT <= m.TTFT can dominate; they are a prefix.
	n := sort.Search(len(inc.pts), func(i int) bool { return inc.pts[i].TTFT > m.TTFT })
	for i := 0; i < n; i++ {
		if inc.pts[i].Dominates(m) {
			return true
		}
	}
	return false
}

// Insert adds m to the incumbent set, evicting members it dominates. It
// returns false — leaving the set unchanged — when m is invalid, dominated
// by a member, or a duplicate on the four objectives (raw QPS is not an
// objective, matching Frontier's duplicate collapse).
func (inc *Incremental) Insert(m Metrics) bool {
	if !m.Valid() {
		return false
	}
	inc.mu.Lock()
	defer inc.mu.Unlock()
	for _, p := range inc.pts {
		if (p.TTFT == m.TTFT && p.TPOT == m.TPOT && p.QPSPerChip == m.QPSPerChip && p.Recall == m.Recall) || p.Dominates(m) {
			return false
		}
	}
	kept := inc.pts[:0]
	for _, p := range inc.pts {
		if !m.Dominates(p) {
			kept = append(kept, p)
		}
	}
	i := sort.Search(len(kept), func(k int) bool {
		if kept[k].TTFT != m.TTFT {
			return kept[k].TTFT > m.TTFT
		}
		return kept[k].TPOT > m.TPOT
	})
	kept = append(kept, Metrics{})
	copy(kept[i+1:], kept[i:])
	kept[i] = m
	inc.pts = kept
	return true
}

// Len returns the current frontier size.
func (inc *Incremental) Len() int {
	inc.mu.RLock()
	defer inc.mu.RUnlock()
	return len(inc.pts)
}

// Points returns a snapshot copy of the current frontier, sorted by
// ascending TTFT.
func (inc *Incremental) Points() []Metrics {
	inc.mu.RLock()
	defer inc.mu.RUnlock()
	return append([]Metrics(nil), inc.pts...)
}

// MaxQPSPerChip returns the frontier point with the highest QPS/chip.
// The boolean is false when pts is empty.
func MaxQPSPerChip[T any](pts []Point[T]) (Point[T], bool) {
	var best Point[T]
	found := false
	for _, p := range pts {
		if !p.Metrics.Valid() {
			continue
		}
		if !found || p.Metrics.QPSPerChip > best.Metrics.QPSPerChip {
			best, found = p, true
		}
	}
	return best, found
}

// MinTTFT returns the frontier point with the lowest TTFT, breaking ties by
// higher QPS/chip. The boolean is false when pts is empty.
func MinTTFT[T any](pts []Point[T]) (Point[T], bool) {
	var best Point[T]
	found := false
	for _, p := range pts {
		if !p.Metrics.Valid() {
			continue
		}
		if !found || p.Metrics.TTFT < best.Metrics.TTFT ||
			(p.Metrics.TTFT == best.Metrics.TTFT && p.Metrics.QPSPerChip > best.Metrics.QPSPerChip) {
			best, found = p, true
		}
	}
	return best, found
}
