package perf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMetricsValid(t *testing.T) {
	cases := []struct {
		name string
		m    Metrics
		want bool
	}{
		{"zero", Metrics{}, true},
		{"typical", Metrics{TTFT: 0.05, TPOT: 0.01, QPS: 100, QPSPerChip: 1.5}, true},
		{"negative ttft", Metrics{TTFT: -1}, false},
		{"nan tpot", Metrics{TPOT: math.NaN()}, false},
		{"inf qps", Metrics{QPS: math.Inf(1)}, false},
		{"neg qps per chip", Metrics{QPSPerChip: -0.1}, false},
	}
	for _, c := range cases {
		if got := c.m.Valid(); got != c.want {
			t.Errorf("%s: Valid() = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestDominates(t *testing.T) {
	a := Metrics{TTFT: 0.1, TPOT: 0.01, QPSPerChip: 2}
	b := Metrics{TTFT: 0.2, TPOT: 0.02, QPSPerChip: 1}
	if !a.Dominates(b) {
		t.Errorf("a should dominate b")
	}
	if b.Dominates(a) {
		t.Errorf("b should not dominate a")
	}
	if a.Dominates(a) {
		t.Errorf("a should not dominate itself (needs strict improvement)")
	}
	// Incomparable: a faster TTFT, c higher throughput.
	c := Metrics{TTFT: 0.3, TPOT: 0.01, QPSPerChip: 5}
	if a.Dominates(c) || c.Dominates(a) {
		t.Errorf("a and c should be incomparable")
	}
}

func TestFrontierBasic(t *testing.T) {
	pts := []Point[string]{
		{Metrics{TTFT: 0.1, TPOT: 0.01, QPSPerChip: 1}, "low-lat"},
		{Metrics{TTFT: 0.5, TPOT: 0.01, QPSPerChip: 5}, "high-qps"},
		{Metrics{TTFT: 0.6, TPOT: 0.01, QPSPerChip: 4}, "dominated"},
		{Metrics{TTFT: 0.3, TPOT: 0.01, QPSPerChip: 3}, "mid"},
	}
	front := Frontier(pts)
	if len(front) != 3 {
		t.Fatalf("frontier size = %d, want 3: %v", len(front), front)
	}
	for _, p := range front {
		if p.Item == "dominated" {
			t.Errorf("dominated point survived")
		}
	}
	// Sorted by TTFT ascending.
	for i := 1; i < len(front); i++ {
		if front[i].Metrics.TTFT < front[i-1].Metrics.TTFT {
			t.Errorf("frontier not sorted by TTFT")
		}
	}
}

func TestFrontierDropsInvalid(t *testing.T) {
	pts := []Point[int]{
		{Metrics{TTFT: math.NaN()}, 1},
		{Metrics{TTFT: 0.1, QPSPerChip: 1}, 2},
	}
	front := Frontier(pts)
	if len(front) != 1 || front[0].Item != 2 {
		t.Fatalf("frontier = %v, want single valid point", front)
	}
}

func TestFrontierEmpty(t *testing.T) {
	if got := Frontier[int](nil); len(got) != 0 {
		t.Errorf("Frontier(nil) = %v, want empty", got)
	}
}

func TestFrontierTPOTAxis(t *testing.T) {
	// Same TTFT and QPS/chip but better TPOT must dominate.
	pts := []Point[string]{
		{Metrics{TTFT: 0.1, TPOT: 0.02, QPSPerChip: 1}, "slow-tpot"},
		{Metrics{TTFT: 0.1, TPOT: 0.01, QPSPerChip: 1}, "fast-tpot"},
	}
	front := Frontier(pts)
	if len(front) != 1 || front[0].Item != "fast-tpot" {
		t.Fatalf("frontier = %+v, want only fast-tpot", front)
	}
}

func TestMaxQPSPerChipAndMinTTFT(t *testing.T) {
	pts := []Point[string]{
		{Metrics{TTFT: 0.1, QPSPerChip: 1}, "a"},
		{Metrics{TTFT: 0.5, QPSPerChip: 9}, "b"},
		{Metrics{TTFT: 0.1, QPSPerChip: 3}, "c"},
	}
	if best, ok := MaxQPSPerChip(pts); !ok || best.Item != "b" {
		t.Errorf("MaxQPSPerChip = %+v, want b", best)
	}
	if best, ok := MinTTFT(pts); !ok || best.Item != "c" {
		t.Errorf("MinTTFT = %+v, want c (tie broken by QPS/chip)", best)
	}
	if _, ok := MaxQPSPerChip[string](nil); ok {
		t.Errorf("MaxQPSPerChip(nil) should report not found")
	}
	if _, ok := MinTTFT[string](nil); ok {
		t.Errorf("MinTTFT(nil) should report not found")
	}
}

// randMetrics builds a bounded random metrics value for property tests.
func randMetrics(r *rand.Rand) Metrics {
	return Metrics{
		TTFT:       r.Float64() * 10,
		TPOT:       r.Float64(),
		QPS:        r.Float64() * 1000,
		QPSPerChip: r.Float64() * 50,
	}
}

// Property: no frontier point dominates another frontier point, and every
// non-frontier input is dominated by (or equal in metrics to) some frontier
// point.
func TestFrontierProperties(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		pts := make([]Point[int], int(n)%64)
		for i := range pts {
			pts[i] = Point[int]{randMetrics(r), i}
		}
		front := Frontier(pts)
		inFront := make(map[int]Metrics, len(front))
		for i, p := range front {
			for j, q := range front {
				if i != j && p.Metrics.Dominates(q.Metrics) {
					return false
				}
			}
			inFront[p.Item] = p.Metrics
		}
		for _, p := range pts {
			if _, ok := inFront[p.Item]; ok {
				continue
			}
			covered := false
			for _, f := range front {
				if f.Metrics.Dominates(p.Metrics) || f.Metrics == p.Metrics {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: dominance is irreflexive and antisymmetric.
func TestDominanceProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randMetrics(r), randMetrics(r)
		if a.Dominates(a) {
			return false
		}
		if a.Dominates(b) && b.Dominates(a) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Frontier is idempotent — Frontier(Frontier(x)) == Frontier(x).
func TestFrontierIdempotent(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		pts := make([]Point[int], int(n)%48)
		for i := range pts {
			pts[i] = Point[int]{randMetrics(r), i}
		}
		once := Frontier(pts)
		twice := Frontier(once)
		if len(once) != len(twice) {
			return false
		}
		for i := range once {
			if once[i].Item != twice[i].Item {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
