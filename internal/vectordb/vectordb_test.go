package vectordb

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestFlatExactness(t *testing.T) {
	// FlatIndex must agree with a naive sort over all distances.
	data := GenUniform(500, 16, 1)
	ix := NewFlat(16)
	if err := ix.Add(data...); err != nil {
		t.Fatal(err)
	}
	q := GenUniform(1, 16, 2)[0]
	got, err := ix.Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	type pair struct {
		id int
		d  float32
	}
	all := make([]pair, len(data))
	for i, v := range data {
		all[i] = pair{i, SquaredL2(q, v)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].d != all[j].d {
			return all[i].d < all[j].d
		}
		return all[i].id < all[j].id
	})
	for i := range got {
		if got[i].ID != all[i].id {
			t.Fatalf("rank %d: got id %d, want %d", i, got[i].ID, all[i].id)
		}
	}
	// Results sorted ascending.
	for i := 1; i < len(got); i++ {
		if got[i].Dist < got[i-1].Dist {
			t.Errorf("results not sorted at %d", i)
		}
	}
}

func TestFlatErrors(t *testing.T) {
	ix := NewFlat(8)
	if err := ix.Add(make([]float32, 4)); err == nil {
		t.Errorf("dim mismatch on Add should error")
	}
	if err := ix.Add(make([]float32, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Search(make([]float32, 4), 1); err == nil {
		t.Errorf("dim mismatch on Search should error")
	}
	if _, err := ix.Search(make([]float32, 8), 0); err == nil {
		t.Errorf("k=0 should error")
	}
}

func TestFlatBytesScanned(t *testing.T) {
	ix := NewFlat(768)
	if err := ix.Add(GenUniform(100, 768, 3)...); err != nil {
		t.Fatal(err)
	}
	if got, want := ix.BytesScanned(), 100.0*768*4; got != want {
		t.Errorf("BytesScanned = %v, want %v", got, want)
	}
}

func TestKMeansConvergesOnSeparatedClusters(t *testing.T) {
	// Three well-separated blobs: k-means must place one centroid near
	// each center.
	data := GenClustered(600, 8, 3, 0.05, 7)
	cents, err := KMeans(data, 3, 25, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(cents) != 3 {
		t.Fatalf("got %d centroids, want 3", len(cents))
	}
	// Within-cluster distance must be far smaller than between-centroid
	// distance.
	minBetween := float32(math.MaxFloat32)
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			if d := SquaredL2(cents[i], cents[j]); d < minBetween {
				minBetween = d
			}
		}
	}
	var maxWithin float32
	for _, v := range data {
		c := nearestCentroid(v, cents)
		if d := SquaredL2(v, cents[c]); d > maxWithin {
			maxWithin = d
		}
	}
	if maxWithin*4 > minBetween {
		t.Errorf("clusters not separated: within=%v between=%v", maxWithin, minBetween)
	}
}

func TestKMeansDeterministic(t *testing.T) {
	data := GenClustered(200, 4, 4, 0.1, 11)
	a, err := KMeans(data, 4, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(data, 4, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for d := range a[i] {
			if a[i][d] != b[i][d] {
				t.Fatalf("non-deterministic centroid %d", i)
			}
		}
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	if _, err := KMeans(nil, 2, 5, 1); err == nil {
		t.Errorf("empty dataset should error")
	}
	if _, err := KMeans(GenUniform(5, 2, 1), 0, 5, 1); err == nil {
		t.Errorf("k=0 should error")
	}
	// k >= n is legal: every point its own centroid.
	cents, err := KMeans(GenUniform(3, 2, 1), 5, 5, 1)
	if err != nil || len(cents) != 5 {
		t.Errorf("k>n: got %d centroids, err %v; want 5 centroids", len(cents), err)
	}
}

func TestPQRoundTrip(t *testing.T) {
	data := GenClustered(800, 32, 8, 0.3, 13)
	pq, err := TrainPQ(data, 8, 13)
	if err != nil {
		t.Fatal(err)
	}
	if pq.CodeBytes() != 8 {
		t.Errorf("CodeBytes = %d, want 8", pq.CodeBytes())
	}
	code, err := pq.Encode(data[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(code) != 8 {
		t.Errorf("code length = %d, want 8", len(code))
	}
	rec, err := pq.Decode(code)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) != 32 {
		t.Errorf("decoded dim = %d, want 32", len(rec))
	}
	dist, err := pq.QuantizationError(data[:100])
	if err != nil {
		t.Fatal(err)
	}
	if dist > 0.15 {
		t.Errorf("normalized distortion = %v, want < 0.15 on clustered data", dist)
	}
}

func TestPQMoreSubspacesLessError(t *testing.T) {
	// §2: PQ trades bytes for accuracy — more code bytes, less
	// distortion.
	data := GenClustered(600, 32, 6, 0.5, 17)
	var prev float64 = math.MaxFloat64
	for _, m := range []int{2, 8, 32} {
		pq, err := TrainPQ(data, m, 17)
		if err != nil {
			t.Fatal(err)
		}
		dist, err := pq.QuantizationError(data[:150])
		if err != nil {
			t.Fatal(err)
		}
		if dist >= prev {
			t.Errorf("m=%d distortion %v not below m-smaller %v", m, dist, prev)
		}
		prev = dist
	}
}

func TestPQADCApproximatesTrueDistance(t *testing.T) {
	data := GenClustered(500, 16, 4, 0.2, 19)
	pq, err := TrainPQ(data, 4, 19)
	if err != nil {
		t.Fatal(err)
	}
	q := data[7]
	table, err := pq.DistTable(q)
	if err != nil {
		t.Fatal(err)
	}
	// ADC distance must equal the exact distance to the reconstruction.
	for _, v := range data[:50] {
		code, err := pq.Encode(v)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := pq.Decode(code)
		if err != nil {
			t.Fatal(err)
		}
		adc := pq.ADC(table, code)
		exact := SquaredL2(q, rec)
		if math.Abs(float64(adc-exact)) > 1e-3*(1+float64(exact)) {
			t.Fatalf("ADC %v != distance-to-reconstruction %v", adc, exact)
		}
	}
}

func TestPQErrors(t *testing.T) {
	data := GenUniform(100, 16, 1)
	if _, err := TrainPQ(data, 5, 1); err == nil {
		t.Errorf("m not dividing dim should error")
	}
	if _, err := TrainPQ(nil, 4, 1); err == nil {
		t.Errorf("empty dataset should error")
	}
	pq, err := TrainPQ(data, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pq.Encode(make([]float32, 3)); err == nil {
		t.Errorf("bad encode dim should error")
	}
	if _, err := pq.Decode(make([]byte, 3)); err == nil {
		t.Errorf("bad code length should error")
	}
	if _, err := pq.DistTable(make([]float32, 3)); err == nil {
		t.Errorf("bad query dim should error")
	}
	if _, err := pq.QuantizationError(nil); err == nil {
		t.Errorf("empty sample should error")
	}
}

func TestIVFPQRecallGrowsWithNprobe(t *testing.T) {
	// The fundamental retrieval trade-off of §5.1: scanning more of the
	// database (larger nprobe) buys recall.
	data := GenClustered(3000, 32, 32, 0.4, 23)
	ix, err := BuildIVFPQ(data, 32, 16, 23)
	if err != nil {
		t.Fatal(err)
	}
	flat := NewFlat(32)
	if err := flat.Add(data...); err != nil {
		t.Fatal(err)
	}
	queries := GenClustered(20, 32, 32, 0.4, 29)
	recallAt := func(nprobe int) float64 {
		var sum float64
		for _, q := range queries {
			truth, err := flat.Search(q, 10)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ix.Search(q, 10, nprobe)
			if err != nil {
				t.Fatal(err)
			}
			sum += Recall(truth, got, 10)
		}
		return sum / float64(len(queries))
	}
	r1, r4, r32 := recallAt(1), recallAt(4), recallAt(32)
	if !(r32 >= r4 && r4 >= r1) {
		t.Errorf("recall not monotone in nprobe: %v %v %v", r1, r4, r32)
	}
	if r32 < 0.70 {
		t.Errorf("full-probe PQ recall = %v, want >= 0.70", r32)
	}
	if r1 > r32 {
		t.Errorf("probing one cell should not beat probing all")
	}
}

func TestIVFPQRecallGrowsWithCodeBytes(t *testing.T) {
	// §2: PQ memory efficiency trades against accuracy — larger codes,
	// higher recall at fixed scan fraction.
	data := GenClustered(3000, 32, 32, 0.4, 23)
	flat := NewFlat(32)
	if err := flat.Add(data...); err != nil {
		t.Fatal(err)
	}
	queries := GenClustered(15, 32, 32, 0.4, 29)
	var prev float64 = -1
	for _, m := range []int{8, 16, 32} {
		ix, err := BuildIVFPQ(data, 32, m, 23)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, q := range queries {
			truth, err := flat.Search(q, 10)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ix.Search(q, 10, 32)
			if err != nil {
				t.Fatal(err)
			}
			sum += Recall(truth, got, 10)
		}
		r := sum / float64(len(queries))
		if r <= prev {
			t.Errorf("recall at m=%d (%v) not above smaller code (%v)", m, r, prev)
		}
		prev = r
	}
}

func TestIVFPQBytesScanned(t *testing.T) {
	data := GenClustered(2000, 32, 16, 0.4, 31)
	ix, err := BuildIVFPQ(data, 16, 8, 31)
	if err != nil {
		t.Fatal(err)
	}
	// Scanning 4 of 16 cells touches ~1/4 of vectors.
	frac := ix.VectorsScanned(4) / float64(ix.Len())
	if math.Abs(frac-0.25) > 0.01 {
		t.Errorf("scan fraction = %v, want 0.25", frac)
	}
	if got, want := ix.BytesScanned(4), ix.VectorsScanned(4)*8; got != want {
		t.Errorf("BytesScanned = %v, want %v", got, want)
	}
	if got := ix.VectorsScanned(100); got != float64(ix.Len()) {
		t.Errorf("over-probing should scan everything: %v", got)
	}
}

func TestIVFPQErrors(t *testing.T) {
	data := GenUniform(100, 8, 1)
	if _, err := BuildIVFPQ(nil, 4, 2, 1); err == nil {
		t.Errorf("empty dataset should error")
	}
	if _, err := BuildIVFPQ(data, 0, 2, 1); err == nil {
		t.Errorf("nlist=0 should error")
	}
	ix, err := BuildIVFPQ(data, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Search(make([]float32, 3), 5, 1); err == nil {
		t.Errorf("bad query dim should error")
	}
	if _, err := ix.Search(make([]float32, 8), 0, 1); err == nil {
		t.Errorf("k=0 should error")
	}
	if _, err := ix.Search(make([]float32, 8), 5, 0); err == nil {
		t.Errorf("nprobe=0 should error")
	}
}

func TestRecallHelper(t *testing.T) {
	truth := []Result{{ID: 1}, {ID: 2}, {ID: 3}}
	got := []Result{{ID: 2}, {ID: 9}, {ID: 1}}
	if r := Recall(truth, got, 3); math.Abs(r-2.0/3) > 1e-9 {
		t.Errorf("recall = %v, want 2/3", r)
	}
	if r := Recall(truth, got, 0); r != 0 {
		t.Errorf("recall@0 = %v, want 0", r)
	}
	if r := Recall(truth, truth, 5); r != 1 {
		t.Errorf("recall of truth against itself = %v, want 1", r)
	}
}

// Property: ADC(table(q), Encode(v)) equals SquaredL2(q, Decode(Encode(v)))
// for random vectors (asymmetric distance is exact w.r.t. reconstruction).
func TestADCProperty(t *testing.T) {
	data := GenUniform(300, 8, 37)
	pq, err := TrainPQ(data, 4, 37)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := make([]float32, 8)
		v := make([]float32, 8)
		for i := range q {
			q[i], v[i] = rng.Float32(), rng.Float32()
		}
		table, err := pq.DistTable(q)
		if err != nil {
			return false
		}
		code, err := pq.Encode(v)
		if err != nil {
			return false
		}
		rec, err := pq.Decode(code)
		if err != nil {
			return false
		}
		adc := float64(pq.ADC(table, code))
		exact := float64(SquaredL2(q, rec))
		return math.Abs(adc-exact) <= 1e-3*(1+exact)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: top-k results from FlatIndex are a subset of top-(k+5) and in
// consistent order.
func TestTopKNesting(t *testing.T) {
	data := GenUniform(400, 8, 41)
	ix := NewFlat(8)
	if err := ix.Add(data...); err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, rawK uint8) bool {
		k := int(rawK)%20 + 1
		rng := rand.New(rand.NewSource(seed))
		q := make([]float32, 8)
		for i := range q {
			q[i] = rng.Float32()
		}
		small, err := ix.Search(q, k)
		if err != nil {
			return false
		}
		big, err := ix.Search(q, k+5)
		if err != nil {
			return false
		}
		for i := range small {
			if small[i].ID != big[i].ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
