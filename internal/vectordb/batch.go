package vectordb

import (
	"fmt"
	"runtime"
	"sync"
)

// SearchBatch answers a batch of queries concurrently, fanning them out
// across up to GOMAXPROCS workers. Indexes are immutable after Build, so
// queries share the index without synchronization; each query is answered
// exactly as a sequential Search call would (results are positionally
// parallel to queries and bit-identical to the serial path, so recall is
// unchanged). This is the parallel scan path the serving runtime's
// retrieval tier executes per formed batch.
func (ix *IVFPQ) SearchBatch(queries [][]float32, k, nprobe int) ([][]Result, error) {
	return searchBatch(len(queries), func(i int) ([]Result, error) {
		return ix.Search(queries[i], k, nprobe)
	})
}

// SearchBatch is the exact-kNN batched counterpart of FlatIndex.Search,
// with the same fan-out and result-parity guarantees as IVFPQ.SearchBatch.
func (f *FlatIndex) SearchBatch(queries [][]float32, k int) ([][]Result, error) {
	return searchBatch(len(queries), func(i int) ([]Result, error) {
		return f.Search(queries[i], k)
	})
}

// searchBatch runs one(i) for every i in [0, n) on a striped worker pool and
// gathers results in order. The first per-query error (lowest index) wins.
func searchBatch(n int, one func(i int) ([]Result, error)) ([][]Result, error) {
	if n == 0 {
		return nil, fmt.Errorf("vectordb: empty query batch")
	}
	out := make([][]Result, n)
	errs := make([]error, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				out[i], errs[i] = one(i)
			}
		}(w)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("vectordb: batch query %d: %w", i, err)
		}
	}
	return out, nil
}
