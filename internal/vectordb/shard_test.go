package vectordb

import (
	"sync"
	"testing"
	"testing/quick"
)

func buildShardedFixture(t *testing.T, shards, replicas int) (*Sharded, *IVFPQ, *FlatIndex, [][]float32) {
	t.Helper()
	data := GenClustered(3000, 32, 32, 0.4, 23)
	ix, err := BuildIVFPQ(data, 32, 16, 23)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewSharded(ix, shards, replicas)
	if err != nil {
		t.Fatal(err)
	}
	flat := NewFlat(32)
	if err := flat.Add(data...); err != nil {
		t.Fatal(err)
	}
	queries := GenClustered(25, 32, 32, 0.4, 29)
	return sh, ix, flat, queries
}

// At full fanout the sharded scatter-gather must return bit-identical
// results to the single-index scan: the probed cell set is the same and
// topK's total order on (dist, ID) makes the merge order-independent.
func TestShardedFullFanoutBitParity(t *testing.T) {
	sh, ix, _, queries := buildShardedFixture(t, 4, 1)
	for _, nprobe := range []int{1, 4, 8, 32} {
		for _, q := range queries {
			want, err := ix.Search(q, 10, nprobe)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sh.Search(q, 10, nprobe, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("nprobe=%d: %d results, want %d", nprobe, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("nprobe=%d rank %d: sharded %+v != single %+v", nprobe, i, got[i], want[i])
				}
			}
		}
	}
}

// Property (acceptance criterion): equal total nprobe at full fanout gives
// exactly the single-index recall on the golden dataset, for any shard
// count dividing into the cell set.
func TestShardedRecallParityProperty(t *testing.T) {
	data := GenClustered(3000, 32, 32, 0.4, 23)
	ix, err := BuildIVFPQ(data, 32, 16, 23)
	if err != nil {
		t.Fatal(err)
	}
	flat := NewFlat(32)
	if err := flat.Add(data...); err != nil {
		t.Fatal(err)
	}
	queries := GenClustered(15, 32, 32, 0.4, 29)
	truths, err := flat.SearchBatch(queries, 10)
	if err != nil {
		t.Fatal(err)
	}
	f := func(rawShards, rawProbe uint8) bool {
		shards := int(rawShards)%8 + 1
		nprobe := int(rawProbe)%32 + 1
		sh, err := NewSharded(ix, shards, 1)
		if err != nil {
			return false
		}
		for i, q := range queries {
			single, err := ix.Search(q, 10, nprobe)
			if err != nil {
				return false
			}
			sharded, err := sh.Search(q, 10, nprobe, shards, nil)
			if err != nil {
				return false
			}
			if Recall(truths[i], sharded, 10) != Recall(truths[i], single, 10) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// One replica down must not change results: the pick falls back to a
// healthy replica of the same shard (same data), the fallback is counted,
// and every query is answered.
func TestShardedReplicaFailure(t *testing.T) {
	sh, _, _, queries := buildShardedFixture(t, 4, 2)
	healthy, err := sh.SearchBatch(queries, 10, 8, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.SetReplicaHealth(1, 0, false); err != nil {
		t.Fatal(err)
	}
	infos := make([]ShardQuery, len(queries))
	degraded, err := sh.SearchBatch(queries, 10, 8, 0, infos)
	if err != nil {
		t.Fatal(err)
	}
	if len(degraded) != len(queries) {
		t.Fatalf("lost requests: %d answers for %d queries", len(degraded), len(queries))
	}
	for i := range queries {
		if len(degraded[i]) != len(healthy[i]) {
			t.Fatalf("query %d: %d results with replica down, want %d", i, len(degraded[i]), len(healthy[i]))
		}
		for j := range degraded[i] {
			if degraded[i][j] != healthy[i][j] {
				t.Fatalf("query %d rank %d: result changed with one replica down", i, j)
			}
		}
		if infos[i].Lost != 0 {
			t.Fatalf("query %d: shard reported lost with a healthy replica remaining", i)
		}
	}
	if sh.Fallbacks() == 0 {
		t.Errorf("no fallbacks counted despite a down replica on a consulted shard")
	}
	// Consulted picks must never name the down replica.
	for i, info := range infos {
		for _, p := range info.Consulted {
			if p.Shard == 1 && p.Replica == 0 {
				t.Fatalf("query %d consulted the down replica", i)
			}
		}
	}
	// Recovery: back up, fallback counter stops advancing.
	if err := sh.SetReplicaHealth(1, 0, true); err != nil {
		t.Fatal(err)
	}
	before := sh.Fallbacks()
	if _, err := sh.SearchBatch(queries, 10, 8, 0, nil); err != nil {
		t.Fatal(err)
	}
	if sh.Fallbacks() != before {
		t.Errorf("fallbacks advanced after recovery")
	}
}

// A whole shard down degrades gracefully: remaining shards answer, the loss
// is reported, and recall at full health is at least the degraded recall.
func TestShardedWholeShardDownDegrades(t *testing.T) {
	sh, _, flat, queries := buildShardedFixture(t, 4, 1)
	truths, err := flat.SearchBatch(queries, 10)
	if err != nil {
		t.Fatal(err)
	}
	full, err := sh.SearchBatch(queries, 10, 16, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.SetReplicaHealth(2, 0, false); err != nil {
		t.Fatal(err)
	}
	infos := make([]ShardQuery, len(queries))
	degraded, err := sh.SearchBatch(queries, 10, 16, 0, infos)
	if err != nil {
		t.Fatal(err)
	}
	lostSeen := false
	var fullR, degR float64
	for i := range queries {
		fullR += Recall(truths[i], full[i], 10)
		degR += Recall(truths[i], degraded[i], 10)
		if infos[i].Lost > 0 {
			lostSeen = true
		}
	}
	if !lostSeen {
		t.Errorf("no query reported the lost shard at nprobe=16 over 4 shards")
	}
	if degR > fullR {
		t.Errorf("degraded recall %v above healthy recall %v", degR, fullR)
	}
}

// Restricting fanout trades recall for scan volume, monotonically.
func TestShardedFanoutMonotoneRecall(t *testing.T) {
	sh, _, flat, queries := buildShardedFixture(t, 8, 1)
	truths, err := flat.SearchBatch(queries, 10)
	if err != nil {
		t.Fatal(err)
	}
	recallAt := func(fanout int) float64 {
		got, err := sh.SearchBatch(queries, 10, 16, fanout, nil)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for i := range queries {
			sum += Recall(truths[i], got[i], 10)
		}
		return sum / float64(len(queries))
	}
	r1, r4, r8 := recallAt(1), recallAt(4), recallAt(8)
	if !(r8 >= r4 && r4 >= r1) {
		t.Errorf("recall not monotone in fanout: %v %v %v", r1, r4, r8)
	}
	if sh.VectorsScanned(16, 4) >= sh.VectorsScanned(16, 8) {
		t.Errorf("scan volume not reduced by fanout restriction")
	}
	if sh.BytesScanned(16, 8) != sh.BytesScanned(16, 0) {
		t.Errorf("fanout 0 should price as full fanout")
	}
}

func TestShardedCalibrateRecall(t *testing.T) {
	sh, _, flat, queries := buildShardedFixture(t, 4, 1)
	nprobes := []int{2, 8, 32}
	fanouts := []int{1, 2, 4}
	grid, err := sh.CalibrateRecall(flat, queries, 10, nprobes, fanouts)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != len(nprobes) || len(grid[0]) != len(fanouts) {
		t.Fatalf("grid shape %dx%d, want %dx%d", len(grid), len(grid[0]), len(nprobes), len(fanouts))
	}
	// Recall must be monotone along both axes and in [0,1].
	for pi := range grid {
		for fi := range grid[pi] {
			r := grid[pi][fi]
			if r < 0 || r > 1 {
				t.Fatalf("recall out of range: %v", r)
			}
			if pi > 0 && grid[pi][fi]+1e-9 < grid[pi-1][fi] {
				t.Errorf("recall not monotone in nprobe at grid[%d][%d]", pi, fi)
			}
			if fi > 0 && grid[pi][fi]+1e-9 < grid[pi][fi-1] {
				t.Errorf("recall not monotone in fanout at grid[%d][%d]", pi, fi)
			}
		}
	}
	if grid[2][2] < 0.70 {
		t.Errorf("full-probe full-fanout recall %v, want >= 0.70", grid[2][2])
	}
}

// Health toggles racing concurrent searches must be safe (run under -race)
// and every query must still be answered.
func TestShardedConcurrentHealthToggles(t *testing.T) {
	sh, _, _, queries := buildShardedFixture(t, 4, 2)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			sh.SetReplicaHealth(i%4, i%2, i%3 == 0)
		}
	}()
	for iter := 0; iter < 20; iter++ {
		out, err := sh.SearchBatch(queries, 10, 8, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != len(queries) {
			t.Fatalf("lost queries under concurrent health toggles")
		}
	}
	close(stop)
	wg.Wait()
	for s := 0; s < 4; s++ {
		for r := 0; r < 2; r++ {
			sh.SetReplicaHealth(s, r, true)
		}
	}
}

func TestShardedErrors(t *testing.T) {
	data := GenUniform(200, 8, 1)
	ix, err := BuildIVFPQ(data, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSharded(nil, 2, 1); err == nil {
		t.Errorf("nil index should error")
	}
	if _, err := NewSharded(ix, 0, 1); err == nil {
		t.Errorf("shards=0 should error")
	}
	if _, err := NewSharded(ix, 2, 0); err == nil {
		t.Errorf("replicas=0 should error")
	}
	if _, err := NewSharded(ix, 8, 1); err == nil {
		t.Errorf("more shards than cells should error")
	}
	sh, err := NewSharded(ix, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.SetReplicaHealth(5, 0, false); err == nil {
		t.Errorf("out-of-range shard should error")
	}
	if _, err := sh.Search(make([]float32, 3), 5, 1, 0, nil); err == nil {
		t.Errorf("bad query dim should error")
	}
	if _, err := sh.Search(make([]float32, 8), 0, 1, 0, nil); err == nil {
		t.Errorf("k=0 should error")
	}
	if _, err := sh.Search(make([]float32, 8), 5, 0, 0, nil); err == nil {
		t.Errorf("nprobe=0 should error")
	}
	if _, err := sh.SearchBatch(make([][]float32, 2), 5, 1, 0, make([]ShardQuery, 1)); err == nil {
		t.Errorf("mismatched infos length should error")
	}
}
