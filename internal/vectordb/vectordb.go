// Package vectordb is a working vector-search substrate: exact kNN, k-means
// clustering, product quantization (PQ), and IVF-PQ indexes of the kind the
// paper's retrieval tier models analytically (§2, §4b).
//
// The hyperscale experiments use the analytical model in
// rago/internal/retrieval (64 billion vectors do not fit a test machine),
// but this package grounds that model: it exhibits the same
// recall-vs-bytes-scanned trade-off on real data, implements the 1-byte-per-
// 8-dims PQ compression the paper assumes, and serves as the retrieval
// engine for runnable examples.
package vectordb

import (
	"container/heap"
	"fmt"
)

// Result is one nearest-neighbor candidate.
type Result struct {
	ID   int
	Dist float32
}

// SquaredL2 returns the squared Euclidean distance between two vectors of
// equal dimensionality. It is the metric used throughout the package (the
// paper's retrieval compares L2 or cosine; squared L2 orders identically
// to L2).
func SquaredL2(a, b []float32) float32 {
	var s float32
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// resultHeap is a max-heap on (distance, ID) so the worst candidate sits on
// top and can be evicted in O(log k). Ordering by the full (Dist, ID) key —
// not distance alone — makes top-k selection a total order: the k kept
// candidates are independent of offer order, which is what lets the sharded
// scatter-gather merge return bit-identical results to a single-index scan.
type resultHeap []Result

func (h resultHeap) Len() int            { return len(h) }
func (h resultHeap) Less(i, j int) bool  { return less(h[j], h[i]) }
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(Result)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// topK accumulates the k smallest-distance results seen so far.
type topK struct {
	k int
	h resultHeap
}

func newTopK(k int) *topK { return &topK{k: k, h: make(resultHeap, 0, k)} }

func (t *topK) offer(id int, dist float32) {
	if len(t.h) < t.k {
		heap.Push(&t.h, Result{ID: id, Dist: dist})
		return
	}
	if less(Result{ID: id, Dist: dist}, t.h[0]) {
		t.h[0] = Result{ID: id, Dist: dist}
		heap.Fix(&t.h, 0)
	}
}

// results returns candidates ordered by ascending distance (ties by ID).
func (t *topK) results() []Result {
	out := make([]Result, len(t.h))
	copy(out, t.h)
	// Heap order is not sorted; selection sort is fine for small k but
	// use a simple insertion sort for clarity.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && less(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func less(a, b Result) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.ID < b.ID
}

// FlatIndex is an exact brute-force kNN index — the search mode Case II
// uses for small real-time databases (§5.2).
type FlatIndex struct {
	dim  int
	vecs [][]float32
}

// NewFlat returns an empty exact index over dim-dimensional vectors.
func NewFlat(dim int) *FlatIndex { return &FlatIndex{dim: dim} }

// Dim returns the index dimensionality.
func (f *FlatIndex) Dim() int { return f.dim }

// Len returns the number of stored vectors.
func (f *FlatIndex) Len() int { return len(f.vecs) }

// Add appends vectors; IDs are assigned densely in insertion order.
func (f *FlatIndex) Add(vecs ...[]float32) error {
	for _, v := range vecs {
		if len(v) != f.dim {
			return fmt.Errorf("vectordb: vector dim %d != index dim %d", len(v), f.dim)
		}
		f.vecs = append(f.vecs, v)
	}
	return nil
}

// Search returns the k exact nearest neighbors of q.
func (f *FlatIndex) Search(q []float32, k int) ([]Result, error) {
	if len(q) != f.dim {
		return nil, fmt.Errorf("vectordb: query dim %d != index dim %d", len(q), f.dim)
	}
	if k < 1 {
		return nil, fmt.Errorf("vectordb: k = %d < 1", k)
	}
	t := newTopK(k)
	for id, v := range f.vecs {
		t.offer(id, SquaredL2(q, v))
	}
	return t.results(), nil
}

// BytesScanned reports the bytes a full scan touches (float32 storage);
// used to cross-check the analytical retrieval model's accounting.
func (f *FlatIndex) BytesScanned() float64 {
	return float64(f.Len()) * float64(f.dim) * 4
}

// Recall computes recall@k: the fraction of true neighbors found.
// truth and got are result lists; only IDs matter.
func Recall(truth, got []Result, k int) float64 {
	if k <= 0 {
		return 0
	}
	if k > len(truth) {
		k = len(truth)
	}
	if k == 0 {
		return 0
	}
	want := make(map[int]bool, k)
	for _, r := range truth[:k] {
		want[r.ID] = true
	}
	hit := 0
	for i, r := range got {
		if i >= k {
			break
		}
		if want[r.ID] {
			hit++
		}
	}
	return float64(hit) / float64(k)
}

// checkDataset validates a training/build dataset.
func checkDataset(data [][]float32, dim int) error {
	if len(data) == 0 {
		return fmt.Errorf("vectordb: empty dataset")
	}
	for i, v := range data {
		if len(v) != dim {
			return fmt.Errorf("vectordb: vector %d has dim %d, want %d", i, len(v), dim)
		}
	}
	return nil
}
