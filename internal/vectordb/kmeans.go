package vectordb

import (
	"fmt"
	"math/rand"
)

// KMeans clusters data into k centroids with Lloyd's algorithm seeded by
// k-means++ initialization. It is deterministic for a given seed. iters
// bounds the refinement passes; the loop exits early on convergence.
func KMeans(data [][]float32, k, iters int, seed int64) ([][]float32, error) {
	if k < 1 {
		return nil, fmt.Errorf("vectordb: kmeans k = %d < 1", k)
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("vectordb: kmeans on empty dataset")
	}
	dim := len(data[0])
	if err := checkDataset(data, dim); err != nil {
		return nil, err
	}
	if k >= len(data) {
		// Degenerate but legal: every point its own centroid, padded by
		// repeats.
		cents := make([][]float32, k)
		for i := range cents {
			cents[i] = append([]float32(nil), data[i%len(data)]...)
		}
		return cents, nil
	}

	rng := rand.New(rand.NewSource(seed))
	cents := kmeansPlusPlus(data, k, rng)

	assign := make([]int, len(data))
	for it := 0; it < iters; it++ {
		changed := 0
		for i, v := range data {
			c := nearestCentroid(v, cents)
			if assign[i] != c {
				assign[i] = c
				changed++
			}
		}
		if it > 0 && changed == 0 {
			break
		}
		// Recompute means.
		sums := make([][]float64, k)
		counts := make([]int, k)
		for i := range sums {
			sums[i] = make([]float64, dim)
		}
		for i, v := range data {
			c := assign[i]
			counts[c]++
			for d, x := range v {
				sums[c][d] += float64(x)
			}
		}
		for c := range cents {
			if counts[c] == 0 {
				// Re-seed an empty cluster with a random point.
				cents[c] = append([]float32(nil), data[rng.Intn(len(data))]...)
				continue
			}
			for d := range cents[c] {
				cents[c][d] = float32(sums[c][d] / float64(counts[c]))
			}
		}
	}
	return cents, nil
}

// kmeansPlusPlus picks k initial centroids with D^2 weighting.
func kmeansPlusPlus(data [][]float32, k int, rng *rand.Rand) [][]float32 {
	cents := make([][]float32, 0, k)
	cents = append(cents, append([]float32(nil), data[rng.Intn(len(data))]...))
	d2 := make([]float64, len(data))
	for len(cents) < k {
		var total float64
		last := cents[len(cents)-1]
		for i, v := range data {
			d := float64(SquaredL2(v, last))
			if len(cents) == 1 || d < d2[i] {
				d2[i] = d
			}
			total += d2[i]
		}
		if total == 0 {
			// All remaining points coincide with centroids.
			cents = append(cents, append([]float32(nil), data[rng.Intn(len(data))]...))
			continue
		}
		r := rng.Float64() * total
		idx := 0
		for i, w := range d2 {
			r -= w
			if r <= 0 {
				idx = i
				break
			}
		}
		cents = append(cents, append([]float32(nil), data[idx]...))
	}
	return cents
}

// nearestCentroid returns the index of the centroid closest to v.
func nearestCentroid(v []float32, cents [][]float32) int {
	best, bestD := 0, float32(0)
	for i, c := range cents {
		d := SquaredL2(v, c)
		if i == 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best
}
