package vectordb

import "math/rand"

// GenUniform returns n dim-dimensional vectors with coordinates uniform in
// [0, 1), deterministic for a given seed.
func GenUniform(n, dim int, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float32, n)
	for i := range out {
		v := make([]float32, dim)
		for d := range v {
			v[d] = rng.Float32()
		}
		out[i] = v
	}
	return out
}

// GenClustered returns n vectors drawn around `clusters` random centers
// with Gaussian spread — the clustered geometry under which IVF indexes
// (and the recall-vs-scan trade-off of §5.1) are meaningful.
func GenClustered(n, dim, clusters int, spread float64, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, clusters)
	for i := range centers {
		c := make([]float64, dim)
		for d := range c {
			c[d] = rng.Float64() * 10
		}
		centers[i] = c
	}
	out := make([][]float32, n)
	for i := range out {
		c := centers[rng.Intn(clusters)]
		v := make([]float32, dim)
		for d := range v {
			v[d] = float32(c[d] + rng.NormFloat64()*spread)
		}
		out[i] = v
	}
	return out
}
