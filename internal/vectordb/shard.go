package vectordb

import (
	"fmt"
	"sync/atomic"
)

// Sharded partitions a trained IVF-PQ index across N shards, each served by
// R replicas, and answers queries by scatter-gather: the coarse quantizer
// ranks cells globally, the probed cells map onto their owning shards, each
// consulted shard scans its lists into a partial top-k, and the partials
// merge exactly (same total order as a single-index scan).
//
// Sharding is by whole inverted list: cell c lives on shard c mod N. Because
// the cell ranking stays global, probing the globally-top-nprobe cells
// touches exactly the vectors a single-index Search with the same nprobe
// touches — so at full fanout the sharded result is bit-identical and recall
// parity holds by construction. Restricting fanout to fewer shards drops the
// probed cells on excluded shards: that is the quality/latency knob the
// optimizer searches over (fewer shards consulted, fewer bytes scanned,
// lower recall).
//
// Replicas model the serving tier's redundancy: all R replicas of a shard
// hold the same read-only lists, a query picks one round-robin among the
// healthy ones, and a replica marked down is skipped (a fallback, counted
// and reportable) without changing results. Only a whole shard down — every
// replica unhealthy — degrades answers, by merging the surviving shards.
type Sharded struct {
	ix       *IVFPQ
	shards   int
	replicas int

	// down[s*replicas+r] marks replica r of shard s unhealthy. Atomic so
	// health toggles race-free against concurrent searches.
	down []atomic.Bool
	// rr is the per-shard round-robin cursor for replica selection.
	rr []atomic.Uint64
	// fallbacks counts replica selections that skipped a down replica.
	fallbacks atomic.Int64
}

// NewSharded shards a trained index across shards×replicas. The underlying
// index is shared read-only; building is O(1).
func NewSharded(ix *IVFPQ, shards, replicas int) (*Sharded, error) {
	if ix == nil {
		return nil, fmt.Errorf("vectordb: NewSharded on nil index")
	}
	if shards < 1 {
		return nil, fmt.Errorf("vectordb: shards = %d < 1", shards)
	}
	if replicas < 1 {
		return nil, fmt.Errorf("vectordb: replicas = %d < 1", replicas)
	}
	if shards > ix.NList() {
		return nil, fmt.Errorf("vectordb: %d shards exceed %d coarse cells (a shard would be empty)", shards, ix.NList())
	}
	return &Sharded{
		ix:       ix,
		shards:   shards,
		replicas: replicas,
		down:     make([]atomic.Bool, shards*replicas),
		rr:       make([]atomic.Uint64, shards),
	}, nil
}

// Shards returns the shard count N.
func (s *Sharded) Shards() int { return s.shards }

// Replicas returns the per-shard replica count R.
func (s *Sharded) Replicas() int { return s.replicas }

// Len returns the number of indexed vectors across all shards.
func (s *Sharded) Len() int { return s.ix.Len() }

// ShardOfCell returns the shard owning coarse cell c.
func (s *Sharded) ShardOfCell(c int) int { return c % s.shards }

// SetReplicaHealth marks replica r of shard sh up or down. Searches never
// block on an unhealthy replica: they fall back to the next healthy one.
func (s *Sharded) SetReplicaHealth(sh, r int, up bool) error {
	if sh < 0 || sh >= s.shards || r < 0 || r >= s.replicas {
		return fmt.Errorf("vectordb: replica (%d,%d) out of range %dx%d", sh, r, s.shards, s.replicas)
	}
	s.down[sh*s.replicas+r].Store(!up)
	return nil
}

// Fallbacks returns how many replica selections skipped a down replica.
func (s *Sharded) Fallbacks() int64 { return s.fallbacks.Load() }

// EffectiveFanout normalizes a fanout knob against the shard count: values
// outside [1, N] mean consult every shard.
func (s *Sharded) EffectiveFanout(fanout int) int {
	if fanout >= 1 && fanout <= s.shards {
		return fanout
	}
	return s.shards
}

// pickReplica selects a healthy replica of shard sh round-robin, reporting
// whether the pick had to fall back past a down replica. ok=false means the
// whole shard is down.
func (s *Sharded) pickReplica(sh int) (replica int, fellBack, ok bool) {
	start := int(s.rr[sh].Add(1)-1) % s.replicas
	for i := 0; i < s.replicas; i++ {
		r := (start + i) % s.replicas
		if !s.down[sh*s.replicas+r].Load() {
			if i > 0 {
				s.fallbacks.Add(1)
			}
			return r, i > 0, true
		}
	}
	return -1, true, false
}

// ShardQuery describes the scatter plan for one query: which shards are
// consulted (after fanout restriction and health filtering), which were
// probed but excluded by the fanout budget, and whether any replica
// selection fell back or any whole shard was lost.
type ShardQuery struct {
	// Consulted lists shard IDs actually scanned, each with the replica
	// that served it.
	Consulted []ShardPick
	// Excluded counts probed shards dropped by the fanout budget.
	Excluded int
	// Lost counts probed shards with every replica down (degraded answer).
	Lost int
	// FellBack reports whether any consulted shard skipped a down replica.
	FellBack bool
}

// ShardPick is one (shard, replica) scan assignment.
type ShardPick struct{ Shard, Replica int }

// Search answers one query over the sharded index: probe the globally
// nearest nprobe cells, consult at most fanout shards (0 or >= Shards()
// means all), and merge per-shard partial top-k exactly. The optional info
// out-parameter receives the scatter plan (pass nil to skip).
func (s *Sharded) Search(q []float32, k, nprobe, fanout int, info *ShardQuery) ([]Result, error) {
	if len(q) != s.ix.dim {
		return nil, fmt.Errorf("vectordb: query dim %d != %d", len(q), s.ix.dim)
	}
	if k < 1 {
		return nil, fmt.Errorf("vectordb: k = %d < 1", k)
	}
	if nprobe < 1 {
		return nil, fmt.Errorf("vectordb: nprobe = %d < 1", nprobe)
	}
	if nprobe > len(s.ix.centroids) {
		nprobe = len(s.ix.centroids)
	}
	if fanout <= 0 || fanout > s.shards {
		fanout = s.shards
	}

	// Global cell ranking — identical to the single-index probe set.
	cells := s.ix.nearestCells(q, nprobe)

	// Scatter: group probed cells by owning shard, preserving rank order
	// so a shard's first cell is its best (closest) one.
	cellsOf := make(map[int][]int, s.shards)
	order := make([]int, 0, s.shards) // shards by best-cell rank
	for _, c := range cells {
		sh := s.ShardOfCell(c)
		if _, seen := cellsOf[sh]; !seen {
			order = append(order, sh)
		}
		cellsOf[sh] = append(cellsOf[sh], c)
	}
	// Fanout budget: keep the fanout shards holding the best-ranked cells.
	consulted := order
	excluded := 0
	if len(order) > fanout {
		consulted = order[:fanout]
		excluded = len(order) - fanout
	}

	table, err := s.ix.pq.DistTable(q)
	if err != nil {
		return nil, err
	}
	t := newTopK(k)
	lost := 0
	fellBack := false
	var picks []ShardPick
	if info != nil {
		picks = make([]ShardPick, 0, len(consulted))
	}
	for _, sh := range consulted {
		r, fb, ok := s.pickReplica(sh)
		if !ok {
			lost++
			continue
		}
		fellBack = fellBack || fb
		if info != nil {
			picks = append(picks, ShardPick{Shard: sh, Replica: r})
		}
		// Per-shard scan into the shared accumulator. topK's total order
		// on (dist, ID) makes the merge exact: the k survivors are the
		// same set a single sequential scan of these cells keeps.
		for _, c := range cellsOf[sh] {
			ids := s.ix.listIDs[c]
			codes := s.ix.listCodes[c]
			for i, id := range ids {
				t.offer(id, s.ix.pq.ADC(table, codes[i]))
			}
		}
	}
	if info != nil {
		*info = ShardQuery{Consulted: picks, Excluded: excluded, Lost: lost, FellBack: fellBack}
	}
	return t.results(), nil
}

// SearchBatch answers a batch of queries with the scatter-gather plan of
// Search, fanning queries across a striped worker pool. infos, when
// non-nil, must have len(queries) slots and receives each query's scatter
// plan positionally.
func (s *Sharded) SearchBatch(queries [][]float32, k, nprobe, fanout int, infos []ShardQuery) ([][]Result, error) {
	if infos != nil && len(infos) != len(queries) {
		return nil, fmt.Errorf("vectordb: infos len %d != queries len %d", len(infos), len(queries))
	}
	return searchBatch(len(queries), func(i int) ([]Result, error) {
		var info *ShardQuery
		if infos != nil {
			info = &infos[i]
		}
		return s.Search(queries[i], k, nprobe, fanout, info)
	})
}

// VectorsScanned estimates the database vectors one query touches at the
// given nprobe and fanout: the single-index scan volume scaled by the
// expected fraction of probed cells that land on consulted shards
// (fanout/N for a balanced round-robin cell assignment).
func (s *Sharded) VectorsScanned(nprobe, fanout int) float64 {
	if fanout <= 0 || fanout > s.shards {
		fanout = s.shards
	}
	return s.ix.VectorsScanned(nprobe) * float64(fanout) / float64(s.shards)
}

// BytesScanned prices the PQ-code bytes of VectorsScanned, the quantity the
// analytical retrieval model's roofline charges.
func (s *Sharded) BytesScanned(nprobe, fanout int) float64 {
	if fanout <= 0 || fanout > s.shards {
		fanout = s.shards
	}
	return s.ix.BytesScanned(nprobe) * float64(fanout) / float64(s.shards)
}

// CalibrateRecall measures recall@k of the sharded index against exact
// ground truth over a query sample, for every (nprobe, fanout) pair of the
// given grids. The returned grid is indexed [nprobe-index][fanout-index].
// This is the measured-recall surface the analytic retrieval model
// interpolates (retrieval.RecallModel) so the optimizer can put quality on
// the Pareto frontier.
func (s *Sharded) CalibrateRecall(flat *FlatIndex, queries [][]float32, k int, nprobes, fanouts []int) ([][]float64, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("vectordb: CalibrateRecall with no queries")
	}
	truths, err := flat.SearchBatch(queries, k)
	if err != nil {
		return nil, err
	}
	grid := make([][]float64, len(nprobes))
	for pi, np := range nprobes {
		grid[pi] = make([]float64, len(fanouts))
		for fi, fo := range fanouts {
			got, err := s.SearchBatch(queries, k, np, fo, nil)
			if err != nil {
				return nil, err
			}
			sum := 0.0
			for i := range queries {
				sum += Recall(truths[i], got[i], k)
			}
			grid[pi][fi] = sum / float64(len(queries))
		}
	}
	return grid, nil
}
