package vectordb

import (
	"fmt"
	"math"
)

// PQ is a product quantizer: the vector space is split into M subspaces and
// each subspace is vector-quantized against its own 256-entry codebook, so
// a vector compresses to M bytes. With dim=768 and M=96 this is the paper's
// 1-byte-per-8-dimensions compression (§2, §4).
type PQ struct {
	dim       int
	m         int // number of subspaces == code bytes
	subDim    int
	codebooks [][][]float32 // [m][256][subDim]
}

// pqCentroids is the codebook size per subspace; one byte addresses it.
const pqCentroids = 256

// TrainPQ learns a product quantizer from data. m must divide the vector
// dimensionality. Training runs k-means independently per subspace.
func TrainPQ(data [][]float32, m int, seed int64) (*PQ, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("vectordb: TrainPQ on empty dataset")
	}
	dim := len(data[0])
	if err := checkDataset(data, dim); err != nil {
		return nil, err
	}
	if m < 1 || dim%m != 0 {
		return nil, fmt.Errorf("vectordb: PQ subspaces %d must divide dim %d", m, dim)
	}
	sub := dim / m
	pq := &PQ{dim: dim, m: m, subDim: sub, codebooks: make([][][]float32, m)}
	slice := make([][]float32, len(data))
	for s := 0; s < m; s++ {
		for i, v := range data {
			slice[i] = v[s*sub : (s+1)*sub]
		}
		k := pqCentroids
		if len(data) < k {
			k = len(data)
		}
		cents, err := KMeans(slice, k, 10, seed+int64(s))
		if err != nil {
			return nil, err
		}
		// Pad codebooks to 256 entries so codes are always one byte.
		for len(cents) < pqCentroids {
			cents = append(cents, append([]float32(nil), cents[len(cents)%k]...))
		}
		pq.codebooks[s] = cents
	}
	return pq, nil
}

// Dim returns the full vector dimensionality.
func (p *PQ) Dim() int { return p.dim }

// CodeBytes returns the compressed size of one vector (== M).
func (p *PQ) CodeBytes() int { return p.m }

// Encode compresses v to an M-byte code.
func (p *PQ) Encode(v []float32) ([]byte, error) {
	if len(v) != p.dim {
		return nil, fmt.Errorf("vectordb: encode dim %d != %d", len(v), p.dim)
	}
	code := make([]byte, p.m)
	for s := 0; s < p.m; s++ {
		sub := v[s*p.subDim : (s+1)*p.subDim]
		code[s] = byte(nearestCentroid(sub, p.codebooks[s]))
	}
	return code, nil
}

// Decode reconstructs the approximate vector for a code.
func (p *PQ) Decode(code []byte) ([]float32, error) {
	if len(code) != p.m {
		return nil, fmt.Errorf("vectordb: code length %d != %d", len(code), p.m)
	}
	out := make([]float32, p.dim)
	for s, c := range code {
		copy(out[s*p.subDim:(s+1)*p.subDim], p.codebooks[s][c])
	}
	return out, nil
}

// DistTable precomputes, for a query, the squared distance from each query
// subvector to every codebook entry — the asymmetric distance computation
// (ADC) lookup tables that make PQ scanning a pure table-walk (this is the
// byte-scan workload the analytical retrieval model times).
func (p *PQ) DistTable(q []float32) ([][]float32, error) {
	if len(q) != p.dim {
		return nil, fmt.Errorf("vectordb: query dim %d != %d", len(q), p.dim)
	}
	table := make([][]float32, p.m)
	for s := 0; s < p.m; s++ {
		sub := q[s*p.subDim : (s+1)*p.subDim]
		row := make([]float32, pqCentroids)
		for c, cent := range p.codebooks[s] {
			row[c] = SquaredL2(sub, cent)
		}
		table[s] = row
	}
	return table, nil
}

// ADC returns the approximate squared distance of the encoded vector from
// the query whose DistTable is given.
func (p *PQ) ADC(table [][]float32, code []byte) float32 {
	var d float32
	for s, c := range code {
		d += table[s][c]
	}
	return d
}

// QuantizationError returns the mean squared reconstruction error of the
// quantizer over a sample, normalized by the mean squared vector norm —
// a unitless distortion in [0, ~1] that shrinks as M grows.
func (p *PQ) QuantizationError(sample [][]float32) (float64, error) {
	if len(sample) == 0 {
		return 0, fmt.Errorf("vectordb: empty sample")
	}
	var errSum, normSum float64
	for _, v := range sample {
		code, err := p.Encode(v)
		if err != nil {
			return 0, err
		}
		rec, err := p.Decode(code)
		if err != nil {
			return 0, err
		}
		errSum += float64(SquaredL2(v, rec))
		var n float64
		for _, x := range v {
			n += float64(x) * float64(x)
		}
		normSum += n
	}
	if normSum == 0 {
		return 0, nil
	}
	e := errSum / normSum
	if math.IsNaN(e) {
		return 0, fmt.Errorf("vectordb: NaN distortion")
	}
	return e, nil
}
