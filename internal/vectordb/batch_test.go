package vectordb

import (
	"reflect"
	"sync"
	"testing"
)

// batchFixture builds a clustered dataset, an IVF-PQ index over it, and a
// query set drawn from the same distribution.
func batchFixture(t *testing.T) (data, queries [][]float32, ix *IVFPQ) {
	t.Helper()
	const (
		n   = 3000
		dim = 32
		nq  = 64
	)
	all := GenClustered(n+nq, dim, 24, 0.4, 7)
	data, queries = all[:n], all[n:]
	ix, err := BuildIVFPQ(data, 32, dim/2, 11)
	if err != nil {
		t.Fatal(err)
	}
	return data, queries, ix
}

func TestSearchBatchMatchesSequential(t *testing.T) {
	_, queries, ix := batchFixture(t)
	const k, nprobe = 10, 8
	got, err := ix.SearchBatch(queries, k, nprobe)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(queries) {
		t.Fatalf("got %d result lists for %d queries", len(got), len(queries))
	}
	for i, q := range queries {
		want, err := ix.Search(q, k, nprobe)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("query %d: batch results diverge from sequential Search", i)
		}
	}
}

func TestSearchBatchRecallParity(t *testing.T) {
	data, queries, ix := batchFixture(t)
	const k, nprobe = 10, 20
	flat := NewFlat(len(data[0]))
	if err := flat.Add(data...); err != nil {
		t.Fatal(err)
	}
	batch, err := ix.SearchBatch(queries, k, nprobe)
	if err != nil {
		t.Fatal(err)
	}
	var batchRecall, seqRecall float64
	for i, q := range queries {
		truth, err := flat.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := ix.Search(q, k, nprobe)
		if err != nil {
			t.Fatal(err)
		}
		batchRecall += Recall(truth, batch[i], k)
		seqRecall += Recall(truth, seq, k)
	}
	batchRecall /= float64(len(queries))
	seqRecall /= float64(len(queries))
	if batchRecall != seqRecall {
		t.Errorf("recall@%d parity broken: batch %.4f vs sequential %.4f", k, batchRecall, seqRecall)
	}
	if batchRecall < 0.5 {
		t.Errorf("recall@%d = %.4f, implausibly low for nprobe=%d", k, batchRecall, nprobe)
	}
}

func TestFlatSearchBatchMatchesSequential(t *testing.T) {
	data, queries, _ := batchFixture(t)
	flat := NewFlat(len(data[0]))
	if err := flat.Add(data...); err != nil {
		t.Fatal(err)
	}
	const k = 5
	got, err := flat.SearchBatch(queries, k)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		want, err := flat.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("query %d: flat batch results diverge from sequential Search", i)
		}
	}
}

// TestSearchBatchConcurrent hammers one shared index from many goroutines —
// the shape the serving runtime's retrieval tier produces. Run under -race.
func TestSearchBatchConcurrent(t *testing.T) {
	_, queries, ix := batchFixture(t)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < len(errs); g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				if _, err := ix.SearchBatch(queries, 10, 4); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("goroutine %d: %v", g, err)
		}
	}
}

func TestSearchBatchErrors(t *testing.T) {
	_, queries, ix := batchFixture(t)
	if _, err := ix.SearchBatch(nil, 10, 4); err == nil {
		t.Error("empty batch should error")
	}
	if _, err := ix.SearchBatch(queries, 0, 4); err == nil {
		t.Error("k = 0 should error")
	}
	if _, err := ix.SearchBatch(queries, 10, 0); err == nil {
		t.Error("nprobe = 0 should error")
	}
	bad := [][]float32{queries[0], make([]float32, 3)}
	if _, err := ix.SearchBatch(bad, 10, 4); err == nil {
		t.Error("dimension mismatch should error")
	}
	flat := NewFlat(len(queries[0]))
	if err := flat.Add(queries...); err != nil {
		t.Fatal(err)
	}
	if _, err := flat.SearchBatch(nil, 5); err == nil {
		t.Error("empty flat batch should error")
	}
	if _, err := flat.SearchBatch(bad, 5); err == nil {
		t.Error("flat dimension mismatch should error")
	}
}
