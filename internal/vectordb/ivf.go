package vectordb

import (
	"fmt"
	"sort"
)

// IVFPQ is an inverted-file index with product-quantized residual-free
// codes: vectors are partitioned into nlist cells by a coarse k-means
// quantizer; a query scans only the nprobe nearest cells, computing
// approximate distances via PQ lookup tables. This is the IVF-PQ family
// the paper identifies as the standard for hyperscale RAG retrieval (§2).
type IVFPQ struct {
	dim       int
	centroids [][]float32
	listIDs   [][]int
	listCodes [][][]byte
	pq        *PQ
	count     int
}

// BuildIVFPQ trains a coarse quantizer with nlist cells and an m-byte
// product quantizer, then assigns and encodes every vector.
func BuildIVFPQ(data [][]float32, nlist, m int, seed int64) (*IVFPQ, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("vectordb: BuildIVFPQ on empty dataset")
	}
	dim := len(data[0])
	if err := checkDataset(data, dim); err != nil {
		return nil, err
	}
	if nlist < 1 {
		return nil, fmt.Errorf("vectordb: nlist = %d < 1", nlist)
	}
	cents, err := KMeans(data, nlist, 12, seed)
	if err != nil {
		return nil, err
	}
	pq, err := TrainPQ(data, m, seed+1)
	if err != nil {
		return nil, err
	}
	ix := &IVFPQ{
		dim:       dim,
		centroids: cents,
		listIDs:   make([][]int, nlist),
		listCodes: make([][][]byte, nlist),
		pq:        pq,
	}
	for id, v := range data {
		cell := nearestCentroid(v, cents)
		code, err := pq.Encode(v)
		if err != nil {
			return nil, err
		}
		ix.listIDs[cell] = append(ix.listIDs[cell], id)
		ix.listCodes[cell] = append(ix.listCodes[cell], code)
		ix.count++
	}
	return ix, nil
}

// Len returns the number of indexed vectors.
func (ix *IVFPQ) Len() int { return ix.count }

// NList returns the number of coarse cells.
func (ix *IVFPQ) NList() int { return len(ix.centroids) }

// Search returns the approximate k nearest neighbors of q, probing the
// nprobe closest inverted lists.
func (ix *IVFPQ) Search(q []float32, k, nprobe int) ([]Result, error) {
	if len(q) != ix.dim {
		return nil, fmt.Errorf("vectordb: query dim %d != %d", len(q), ix.dim)
	}
	if k < 1 {
		return nil, fmt.Errorf("vectordb: k = %d < 1", k)
	}
	if nprobe < 1 {
		return nil, fmt.Errorf("vectordb: nprobe = %d < 1", nprobe)
	}
	if nprobe > len(ix.centroids) {
		nprobe = len(ix.centroids)
	}
	cells := ix.nearestCells(q, nprobe)
	table, err := ix.pq.DistTable(q)
	if err != nil {
		return nil, err
	}
	t := newTopK(k)
	for _, c := range cells {
		ids := ix.listIDs[c]
		codes := ix.listCodes[c]
		for i, id := range ids {
			t.offer(id, ix.pq.ADC(table, codes[i]))
		}
	}
	return t.results(), nil
}

// nearestCells ranks cells by centroid distance and returns the closest n.
func (ix *IVFPQ) nearestCells(q []float32, n int) []int {
	type cd struct {
		cell int
		dist float32
	}
	ds := make([]cd, len(ix.centroids))
	for i, c := range ix.centroids {
		ds[i] = cd{i, SquaredL2(q, c)}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].dist < ds[j].dist })
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = ds[i].cell
	}
	return out
}

// VectorsScanned returns how many database vectors a query with the given
// nprobe touches on average (expected over cells, using actual list
// occupancy). Dividing by Len gives the empirical P_scan of §3.3.
func (ix *IVFPQ) VectorsScanned(nprobe int) float64 {
	if nprobe > len(ix.listIDs) {
		nprobe = len(ix.listIDs)
	}
	if nprobe < 1 || ix.count == 0 {
		return 0
	}
	// Average list length times probes approximates expected scan work
	// for a balanced index.
	return float64(ix.count) / float64(len(ix.listIDs)) * float64(nprobe)
}

// BytesScanned returns the PQ-code bytes the scan touches; this is the
// quantity the analytical retrieval model prices (§3.3: N*B*P_scan).
func (ix *IVFPQ) BytesScanned(nprobe int) float64 {
	return ix.VectorsScanned(nprobe) * float64(ix.pq.CodeBytes())
}
