package control

import (
	"testing"

	"rago/internal/serve"
	"rago/internal/trace"
)

// BenchmarkControllerDiurnal is the control-plane perf trajectory point CI
// uploads (BENCH_serve.json): the SLO-aware controller tracking the
// deterministic diurnal Case IV trace, reporting the chip-seconds saved
// against static peak provisioning and the p99 TTFT it held.
func BenchmarkControllerDiurnal(b *testing.B) {
	lib := caseIVLadder(b)
	const (
		base      = 45.0
		amplitude = 0.8
		period    = 150.0
		cycles    = 2.5
	)
	n := int(base * period * cycles)
	reqs, err := trace.Diurnal(n, base, amplitude, period, 17)
	if err != nil {
		b.Fatal(err)
	}
	span := reqs[len(reqs)-1].Arrival
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctl, err := NewController(lib, Config{
			SLO:      SLO{TTFT: 1.0},
			Window:   12,
			Interval: 4,
			Headroom: 1.3,
			HoldDown: 12,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := ctl.Run(serve.Options{Speedup: span / 5.0}, reqs)
		if err != nil {
			b.Fatal(err)
		}
		if res.Report.Completed != n {
			b.Fatalf("completed %d of %d", res.Report.Completed, n)
		}
		b.ReportMetric(100*res.Saved, "chipSecSaved_pct")
		b.ReportMetric(res.Report.TTFT.P99, "p99TTFT_s")
		b.ReportMetric(float64(len(res.Events)), "switches")
	}
}
