package control

import (
	"errors"
	"fmt"

	"rago/internal/engine"
	"rago/internal/obs"
	"rago/internal/serve"
	"rago/internal/trace"
)

// Config tunes the control loop. All times are virtual (schedule)
// seconds.
type Config struct {
	// SLO is the objective the controller enforces.
	SLO SLO `json:"slo"`
	// Window is the telemetry sliding window the decisions read.
	// Default 30.
	Window float64 `json:"window"`
	// Interval is the control period: one decision per tick. Default 10.
	Interval float64 `json:"interval"`
	// Headroom is the capacity margin: the controller targets a plan
	// sustaining ArrivalRate*Headroom. Default 1.25.
	Headroom float64 `json:"headroom"`
	// HoldDown is the minimum time after any switch before the
	// controller may scale *down* (up-switches are never held down,
	// an SLO is at stake). Default 3*Interval.
	HoldDown float64 `json:"hold_down"`
	// MinSamples is the fewest windowed completions a latency quantile
	// needs before it may trigger an SLO reaction. Default 20.
	MinSamples int `json:"min_samples"`
	// CacheGain weights the capacity staircase by the observed reuse-cache
	// hit rate: a hit rate h discounts the load-tracking target rate by
	// 1/(1 + CacheGain*h) — a prefix-cached plan sustains more QPS than
	// its (cache-blind) analytic capacity, so the controller may sit one
	// step lower on the staircase under hot traffic. 0 (the default)
	// ignores the cache entirely, keeping cache-less deployments
	// bit-identical. Calibrate against the measured cached-vs-uncached QPS
	// ratio (e.g. BENCH_cache.json); SLO upshifts still override, so an
	// optimistic gain degrades to a reactive correction, not a violation.
	CacheGain float64 `json:"cache_gain,omitempty"`
	// MinRecall is the retrieval-quality floor (recall@k, in [0, 1]): the
	// controller degrades recall gracefully under overload — stepping to
	// cheaper low-nprobe/low-fanout entries when the load demands it —
	// but never onto an entry whose measured recall is below the floor.
	// 0 (the default) disables the floor; entries with unmeasured recall
	// always pass, so cache-less capacity-only libraries are unaffected.
	MinRecall float64 `json:"min_recall,omitempty"`
}

func (c Config) withDefaults() Config {
	if c.Window == 0 {
		c.Window = 30
	}
	if c.Interval == 0 {
		c.Interval = 10
	}
	if c.Headroom == 0 {
		c.Headroom = 1.25
	}
	if c.HoldDown == 0 {
		c.HoldDown = 3 * c.Interval
	}
	if c.MinSamples == 0 {
		c.MinSamples = 20
	}
	return c
}

func (c Config) validate() error {
	if c.Window < 0 || c.Interval < 0 || c.Headroom < 0 || c.HoldDown < 0 || c.MinSamples < 0 || c.CacheGain < 0 {
		return fmt.Errorf("control: negative Config fields")
	}
	if c.MinRecall < 0 || c.MinRecall > 1 {
		return fmt.Errorf("control: MinRecall must be in [0, 1], got %g", c.MinRecall)
	}
	if c.Headroom != 0 && c.Headroom < 1 {
		return fmt.Errorf("control: Headroom must be >= 1 (capacity margin over observed load), got %g", c.Headroom)
	}
	return nil
}

// Event is one plan switch the controller made.
type Event struct {
	// AtV is the virtual decision time; From/To index Library.Entries.
	AtV  float64 `json:"at_v"`
	From int     `json:"from"`
	To   int     `json:"to"`
	// Reason is "load" (rate-driven resize) or "slo" (reactive upshift
	// on a windowed p99 violation).
	Reason string `json:"reason"`
	// Rate and P99TTFT are the telemetry the decision saw.
	Rate    float64 `json:"rate"`
	P99TTFT float64 `json:"p99_ttft"`
	// DrainSeconds is how long the retired plan's in-flight requests took
	// to finish on its outgoing workers (the double-provisioned overlap
	// the chip-second accounting charges). Filled in after the run drains.
	DrainSeconds float64 `json:"drain_seconds"`
}

// Result is the outcome of one controlled replay.
type Result struct {
	// Report is the live runtime's measured report, switching history
	// included.
	Report *serve.ServerReport `json:"report"`
	// Events are the switches, in order; Ticks the control decisions
	// taken; Start the initial library entry.
	Events []Event `json:"events,omitempty"`
	Ticks  int     `json:"ticks"`
	Start  int     `json:"start"`
	// MaxEntry is the most capable entry ever active — what static peak
	// provisioning would have had to run for the whole trace.
	MaxEntry int `json:"max_entry"`
	// ChipSeconds is the controller's integrated cost;
	// StaticChipSeconds the peak plan held for the full duration; Saved
	// the relative reduction.
	ChipSeconds       float64 `json:"chip_seconds"`
	StaticChipSeconds float64 `json:"static_chip_seconds"`
	Saved             float64 `json:"saved"`
	// SLO echoes the enforced objective.
	SLO SLO `json:"slo"`
}

// Controller drives a serve.Server through a plan library to track a
// time-varying load.
type Controller struct {
	Lib *Library
	Cfg Config
}

// NewController validates the pieces and applies Config defaults.
func NewController(lib *Library, cfg Config) (*Controller, error) {
	if lib == nil || len(lib.Entries) == 0 {
		return nil, fmt.Errorf("control: empty plan library")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Controller{Lib: lib, Cfg: cfg.withDefaults()}, nil
}

// decide picks the target library entry given the current one and a
// telemetry window.
func (c *Controller) decide(cur int, w serve.Window) (want int, reason string) {
	target := w.ArrivalRate * c.Cfg.Headroom
	if c.Cfg.CacheGain > 0 && w.CacheHitRate > 0 {
		// Cache-aware capacity weighting: hot reuse traffic needs less
		// staircase capacity per arrival than the cache-blind analytic
		// assumes (hits prefill only their uncached suffix).
		target /= 1 + c.Cfg.CacheGain*w.CacheHitRate
	}
	want, reason = c.Lib.IndexForFloor(target, c.Cfg.MinRecall), "load"
	quantileTrusted := w.Completions >= c.Cfg.MinSamples
	// Reactive upshift: a windowed p99 TTFT violation means the rate
	// estimate is lying (queues are building faster than completions
	// report), so take at least one step up regardless.
	if quantileTrusted && c.Cfg.SLO.TTFT > 0 && w.TTFT.P99 > c.Cfg.SLO.TTFT && want <= cur {
		if cur+1 < len(c.Lib.Entries) {
			want, reason = cur+1, "slo"
		}
	}
	if quantileTrusted && c.Cfg.SLO.TPOT > 0 && w.TPOT.P99 > c.Cfg.SLO.TPOT && want <= cur {
		if cur+1 < len(c.Lib.Entries) {
			want, reason = cur+1, "slo"
		}
	}
	// Never scale down while either latency is anywhere near its
	// objective — the hysteresis that keeps a just-upshifted run from
	// flapping straight back down.
	if want < cur && quantileTrusted {
		if c.Cfg.SLO.TTFT > 0 && w.TTFT.P99 > 0.7*c.Cfg.SLO.TTFT {
			want = cur
		}
		if c.Cfg.SLO.TPOT > 0 && w.TPOT.P99 > 0.7*c.Cfg.SLO.TPOT {
			want = cur
		}
	}
	return want, reason
}

// Run replays the trace through a fresh multi-plan Server, starting on
// the cheapest plan able to carry the trace's opening window (so a trace
// that begins at crest load is not admitted onto the trough plan),
// polling telemetry every Interval and switching plans to hold the SLO
// at minimum chip cost. It blocks until the replay drains.
func (c *Controller) Run(opts serve.Options, reqs []trace.Request) (*Result, error) {
	start := c.startEntry(reqs)
	srv, err := serve.NewServer(c.Lib.Entries[start].Plan, opts)
	if err != nil {
		return nil, err
	}
	res := &Result{Start: start, MaxEntry: start, SLO: c.Cfg.SLO}

	var rep *serve.ServerReport
	var serveErr error
	done := make(chan struct{})
	go func() {
		rep, serveErr = srv.Serve(reqs)
		close(done)
	}()
	select {
	case <-srv.Started():
	case <-done:
		return nil, serveErr
	}

	cur := start
	lastSwitch := 0.0
	lastReweight := 0.0
	for k := 1; ; k++ {
		select {
		case <-done:
			if serveErr != nil {
				return nil, serveErr
			}
			res.Report = rep
			c.account(res, rep)
			return res, nil
		case <-srv.AfterVirtual(float64(k) * c.Cfg.Interval):
			res.Ticks++
			w := srv.Telemetry(c.Cfg.Window)
			// Online staircase re-pricing: the library's shape weighting was
			// priced once at startup, and a trace whose shape mix drifts
			// (long-prompt afternoon after a short-prompt morning) leaves
			// every QPS estimate stale — the controller then tracks load
			// against capacities no plan delivers. Re-weight from the live
			// window's bucket mix, hold-down gated so a noisy window cannot
			// thrash the pricing, and in place (Reweight, not WeightByShapes)
			// so cur and the recorded events keep indexing the same plans.
			if w.Completions >= c.Cfg.MinSamples && w.Now-lastReweight >= c.Cfg.HoldDown {
				if shapes := shapesFromWindow(w.Shapes); len(shapes) > 0 {
					c.Lib.Reweight(shapes)
					lastReweight = w.Now
				}
			}
			want, reason := c.decide(cur, w)
			if opts.Bus.Active() {
				opts.Bus.Publish(obs.Event{Kind: obs.KindDecision, T: w.Now,
					N: res.Ticks, Track: "controller", Payload: obs.DecisionInfo{
						Cur: cur, Want: want, Reason: reason,
						Rate: w.ArrivalRate, P99TTFT: w.TTFT.P99,
						QPS: w.QPS, InFlight: w.InFlight,
					}})
			}
			if want == cur {
				continue
			}
			if want < cur && w.Now-lastSwitch < c.Cfg.HoldDown {
				continue
			}
			if err := srv.Switch(c.Lib.Entries[want].Plan); err != nil {
				// A tick can race the replay draining; the next select
				// iteration observes done and finishes up.
				if errors.Is(err, serve.ErrServeEnded) {
					continue
				}
				return nil, fmt.Errorf("control: switch at tick %d: %w", k, err)
			}
			res.Events = append(res.Events, Event{
				AtV: w.Now, From: cur, To: want, Reason: reason,
				Rate: w.ArrivalRate, P99TTFT: w.TTFT.P99,
			})
			cur = want
			lastSwitch = w.Now
			if want > res.MaxEntry {
				res.MaxEntry = want
			}
		}
	}
}

// shapesFromWindow turns a telemetry window's shape-bucket mix into a
// weighted shape sample for library re-pricing: each bucket contributes
// its mean observed shape, replicated in proportion to its share of the
// window's completions (ceil, out of 64, so rare buckets still appear).
// Buckets without token means (a window predating shape telemetry)
// contribute nothing; an all-empty result tells the caller to skip.
func shapesFromWindow(stats []serve.ShapeStat) []engine.Shape {
	total := 0
	for _, s := range stats {
		total += s.Count
	}
	if total == 0 {
		return nil
	}
	var shapes []engine.Shape
	for _, s := range stats {
		if s.MeanPromptTokens <= 0 || s.MeanOutputTokens <= 0 {
			continue
		}
		n := (64*s.Count + total - 1) / total
		for i := 0; i < n; i++ {
			shapes = append(shapes, engine.Shape{
				PromptTokens: s.MeanPromptTokens,
				OutputTokens: s.MeanOutputTokens,
			})
		}
	}
	return shapes
}

// startEntry sizes the initial plan from the trace's opening window: the
// arrival rate over the first Window virtual seconds, with the same
// headroom the steady-state decisions use.
func (c *Controller) startEntry(reqs []trace.Request) int {
	if len(reqs) == 0 || c.Cfg.Window <= 0 {
		return 0
	}
	early := 0
	for _, r := range reqs {
		if r.Arrival > c.Cfg.Window {
			break
		}
		early++
	}
	return c.Lib.IndexFor(float64(early) / c.Cfg.Window * c.Cfg.Headroom)
}

// account fills in the cost comparison once the run has drained, and
// back-fills each switch event with its retired epoch's measured drain
// time (switch i retires epoch i — epochs and events are both in switch
// order, with epochs carrying one extra leading entry for the start plan).
func (c *Controller) account(res *Result, rep *serve.ServerReport) {
	res.ChipSeconds = rep.ChipSeconds
	res.StaticChipSeconds = float64(c.Lib.Entries[res.MaxEntry].Chips) * rep.DurationV
	if res.StaticChipSeconds > 0 {
		res.Saved = 1 - res.ChipSeconds/res.StaticChipSeconds
	}
	for i := range res.Events {
		if i >= len(rep.Epochs) {
			break
		}
		e := rep.Epochs[i]
		if d := e.DrainedV - e.RetiredV; d > 0 {
			res.Events[i].DrainSeconds = d
		}
	}
}

// String renders the controlled run for the CLI.
func (r *Result) String() string {
	out := r.Report.String()
	out += fmt.Sprintf("controller: %d ticks, %d switches, chip-seconds %.0f vs %.0f static peak (%.1f%% saved)\n",
		r.Ticks, len(r.Events), r.ChipSeconds, r.StaticChipSeconds, 100*r.Saved)
	for _, e := range r.Events {
		out += fmt.Sprintf("  t=%8.1fs  %d -> %d  (%s: rate %.1f/s, p99 TTFT %.3fs, drain %.1fs)\n",
			e.AtV, e.From, e.To, e.Reason, e.Rate, e.P99TTFT, e.DrainSeconds)
	}
	return out
}
