// Package control is the SLO-aware online control plane over the serving
// runtime: it precomputes a library of compiled execution plans from the
// optimizer's Pareto frontier, watches the runtime's windowed telemetry
// under a time-varying trace, and hot-swaps the live Server between plans
// (drain-and-migrate) so p99 TTFT/TPOT stay inside the configured SLOs
// while chip-seconds track the load instead of peak provisioning.
//
// RAGO itself (§6-§7) picks one Pareto-optimal schedule offline; this
// package is what keeps a deployment *on* that frontier as traffic swings
// — production RAG load is diurnal and bursty, and the cheapest
// SLO-feasible schedule at the trough is not the one that survives the
// crest. The controller's decisions are deterministic functions of the
// telemetry windows it samples, so a recorded switching history can be
// replayed through the discrete-event validator (SimReplay) and checked
// against the live run.
package control

import (
	"fmt"
	"sort"

	"rago/internal/core"
	"rago/internal/engine"
)

// SLO is the serving objective the controller enforces: latency quantile
// ceilings in seconds. A zero field disables that bound.
type SLO struct {
	// TTFT bounds windowed p99 time-to-first-token.
	TTFT float64 `json:"ttft,omitempty"`
	// TPOT bounds windowed p99 time-per-output-token.
	TPOT float64 `json:"tpot,omitempty"`
}

// Entry is one deployable operating point of the library: a compiled
// plan, its sustainable throughput, and its chip cost.
type Entry struct {
	// Plan is the compiled execution plan the Server runs.
	Plan *engine.Plan `json:"-"`
	// Schedule renders the plan's schedule for reports.
	Schedule string `json:"schedule"`
	// QPS is the plan's analytical saturation throughput — the load it
	// can sustain; TTFT its unloaded first-token latency.
	QPS  float64 `json:"qps"`
	TTFT float64 `json:"ttft"`
	// Chips is the XPU count the plan occupies (its cost).
	Chips int `json:"chips"`
	// Recall is the plan's measured retrieval quality (recall@k of its
	// nprobe/fanout operating point); 0 when unmeasured. Entries that
	// buy recall instead of throughput stay on the staircase, so the
	// controller can trade quality for capacity under overload — and
	// back — without leaving the library.
	Recall float64 `json:"recall,omitempty"`
	// PadEff is the plan's expected effective-to-padded prefill token
	// ratio on the shape sample the library was last weighted by
	// (WeightByShapes); 0 until weighted, 1 means zero padding waste.
	PadEff float64 `json:"pad_eff,omitempty"`
}

// Library is the controller's precomputed plan menu: SLO-feasible
// schedules compiled once, ordered by ascending sustainable QPS and
// ascending chip cost (entries costing more without sustaining more are
// pruned). Index i+1 is the next plan "up" from i.
type Library struct {
	Entries []Entry
}

// NewLibrary builds a plan library from an optimizer's Pareto frontier:
// points violating the SLO analytically (unloaded TTFT over the TTFT
// bound, steady-state TPOT over the TPOT bound) are excluded, the rest
// are compiled through the optimizer's assembler, and the cost/capacity
// staircase is pruned to plans that buy throughput with their chips.
func NewLibrary(o *core.Optimizer, front []core.SchedulePoint, slo SLO) (*Library, error) {
	var plans []*engine.Plan
	for _, p := range front {
		if slo.TTFT > 0 && p.Metrics.TTFT > slo.TTFT {
			continue
		}
		if slo.TPOT > 0 && p.Metrics.TPOT > slo.TPOT {
			continue
		}
		plan, err := o.Asm.Compile(p.Item)
		if err != nil {
			// Frontier points assembled once already; a compile failure
			// here means the schedule went stale, not a user error.
			return nil, fmt.Errorf("control: frontier schedule no longer compiles: %w", err)
		}
		plans = append(plans, plan)
	}
	if len(plans) == 0 {
		return nil, fmt.Errorf("control: no frontier point satisfies the SLO (TTFT<=%.3fs TPOT<=%.4fs)", slo.TTFT, slo.TPOT)
	}
	return NewLibraryFromPlans(plans)
}

// NewLibraryFromPlans builds a library from already-compiled plans (all of
// the same pipeline), pruning cost-dominated entries.
func NewLibraryFromPlans(plans []*engine.Plan) (*Library, error) {
	if len(plans) == 0 {
		return nil, fmt.Errorf("control: empty plan library")
	}
	for _, p := range plans[1:] {
		if !plans[0].CompatibleWith(p) {
			return nil, fmt.Errorf("control: library plans execute different stage graphs; all must share one pipeline")
		}
	}
	entries := make([]Entry, 0, len(plans))
	for _, p := range plans {
		entries = append(entries, Entry{
			Plan:     p,
			Schedule: p.Sched.Describe(p.Pipe),
			QPS:      p.Metrics.QPS,
			TTFT:     p.Metrics.TTFT,
			Chips:    p.Sched.ChipsUsed(),
			Recall:   p.Metrics.Recall,
		})
	}
	return &Library{Entries: append([]Entry(nil), staircase(entries)...)}, nil
}

// staircase orders entries cheapest-first (highest capacity among equal
// costs, higher recall breaking ties) and prunes entries whose extra chips
// buy neither extra QPS nor extra recall. With every recall unmeasured
// (all zero) this is exactly the historical capacity-only staircase; with
// a recall axis, a high-recall/low-QPS entry and a low-recall/high-QPS
// entry coexist — the menu the controller degrades across under overload.
func staircase(entries []Entry) []Entry {
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].Chips != entries[j].Chips {
			return entries[i].Chips < entries[j].Chips
		}
		if entries[i].QPS != entries[j].QPS {
			return entries[i].QPS > entries[j].QPS
		}
		return entries[i].Recall > entries[j].Recall
	})
	kept := entries[:0]
	bestQPS, bestRecall := 0.0, 0.0
	for _, e := range entries {
		if len(kept) > 0 && e.QPS <= bestQPS && e.Recall <= bestRecall {
			continue
		}
		kept = append(kept, e)
		if e.QPS > bestQPS {
			bestQPS = e.QPS
		}
		if e.Recall > bestRecall {
			bestRecall = e.Recall
		}
	}
	return kept
}

// WeightByShapes re-prices the capacity staircase for a heterogeneous
// shape sample: each entry's sustainable QPS and unloaded TTFT become its
// plan's policy-aware shape-weighted predictions (ShapeMetrics at the
// plan's own formation policy and chunk quantum), and PadEff records the
// expected effective-to-padded prefill token ratio — a plan whose
// formation policy wastes less prefill earns proportionally more admitted
// load before the controller steps the staircase up. The staircase is
// re-sorted and re-pruned under the new capacities (entries whose shaped
// capacity no longer justifies their chips drop out). Empty samples leave
// the library unchanged.
func (l *Library) WeightByShapes(shapes []engine.Shape) {
	if len(shapes) == 0 {
		return
	}
	l.Reweight(shapes)
	l.Entries = staircase(l.Entries)
}

// Reweight re-prices every entry for a shape sample IN PLACE: the same
// per-entry pricing WeightByShapes applies, without the re-sort/re-prune
// pass. Entry indices stay stable, which is what lets a controller
// re-weight its library mid-run — its current-plan index, its recorded
// switch events, and any replay of them keep pointing at the same plans.
// A startup-priced staircase goes stale the moment the live shape mix
// drifts from the sample it was priced on; the controller calls this from
// its tick loop (hold-down gated) with the telemetry window's bucket mix.
func (l *Library) Reweight(shapes []engine.Shape) {
	if len(shapes) == 0 {
		return
	}
	for i := range l.Entries {
		e := &l.Entries[i]
		m := e.Plan.ShapeMetrics(shapes)
		e.QPS = m.QPS
		e.TTFT = m.TTFT
		e.PadEff = e.Plan.PadEfficiency(shapes)
	}
}

// IndexFor returns the cheapest entry sustaining at least targetQPS, or
// the most capable entry when none does.
func (l *Library) IndexFor(targetQPS float64) int {
	return l.IndexForFloor(targetQPS, 0)
}

// IndexForFloor is IndexFor restricted to entries whose measured recall is
// at least minRecall: the cheapest floor-respecting entry sustaining
// targetQPS, the most capable floor-respecting entry when none does, and
// the plain IndexFor answer when the floor excludes everything (a floor
// above the library's best recall must not strand the controller).
// Unmeasured entries (recall 0) pass any floor — deployments without a
// calibrated recall surface keep the historical capacity-only behaviour.
func (l *Library) IndexForFloor(targetQPS, minRecall float64) int {
	if len(l.Entries) == 0 {
		return -1
	}
	best := -1
	for i, e := range l.Entries {
		if minRecall > 0 && e.Recall > 0 && e.Recall < minRecall {
			continue
		}
		if e.QPS >= targetQPS {
			return i
		}
		if best < 0 || e.QPS > l.Entries[best].QPS {
			best = i
		}
	}
	if best >= 0 {
		return best
	}
	return l.IndexFor(targetQPS)
}
