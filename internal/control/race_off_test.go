//go:build !race

package control

const raceEnabled = false
