package control

import (
	"math"
	"testing"

	"rago/internal/core"
	"rago/internal/engine"
	"rago/internal/hw"
	"rago/internal/pipeline"
	"rago/internal/ragschema"
	"rago/internal/serve"
	"rago/internal/sim"
	"rago/internal/stageperf"
	"rago/internal/trace"
)

// caseIVLadder compiles a small/mid/large capacity ladder of Case IV
// schedules (~30 / ~58 / ~119 QPS at 20 / 36 / 72 chips).
func caseIVLadder(t testing.TB) *Library {
	t.Helper()
	schema := ragschema.CaseIV(8e9)
	pipe, err := pipeline.Build(schema)
	if err != nil {
		t.Fatal(err)
	}
	prof := stageperf.New(hw.XPUC, hw.EPYCHost, schema)
	mk := func(gc1, gc2, b, dc, db, dr, rb int) core.Schedule {
		return core.Schedule{
			Groups: []core.GroupSchedule{
				{Stages: []int{0, 1}, Chips: gc1, Batch: b},
				{Stages: []int{3, 4}, Chips: gc2, Batch: b},
			},
			RetrievalServers: 16, RetrievalBatch: rb,
			DecodeChips: dc, DecodeBatch: db, DecodeReplicas: dr,
		}
	}
	var plans []*engine.Plan
	for _, s := range []core.Schedule{
		mk(4, 8, 4, 8, 16, 2, 4),    // ~30 QPS, 20 chips
		mk(4, 16, 4, 16, 64, 4, 4),  // ~58 QPS, 36 chips
		mk(8, 32, 8, 32, 128, 8, 8), // ~119 QPS, 72 chips
	} {
		plan, err := engine.Compile(pipe, s, prof)
		if err != nil {
			t.Fatal(err)
		}
		plans = append(plans, plan)
	}
	lib, err := NewLibraryFromPlans(plans)
	if err != nil {
		t.Fatal(err)
	}
	if len(lib.Entries) != 3 {
		t.Fatalf("ladder pruned to %d entries, want 3", len(lib.Entries))
	}
	return lib
}

func TestLibraryStaircaseAndIndexFor(t *testing.T) {
	lib := caseIVLadder(t)
	for i := 1; i < len(lib.Entries); i++ {
		if lib.Entries[i].QPS <= lib.Entries[i-1].QPS || lib.Entries[i].Chips <= lib.Entries[i-1].Chips {
			t.Fatalf("entries not a strict cost/capacity staircase: %+v", lib.Entries)
		}
	}
	if got := lib.IndexFor(1); got != 0 {
		t.Errorf("tiny target should pick the cheapest entry, got %d", got)
	}
	mid := lib.Entries[1].QPS
	if got := lib.IndexFor(mid - 1); got != 1 {
		t.Errorf("target under mid capacity should pick entry 1, got %d", got)
	}
	if got := lib.IndexFor(1e9); got != len(lib.Entries)-1 {
		t.Errorf("unreachable target should pick the most capable entry, got %d", got)
	}
	// Duplicated plans (same cost, same QPS) must prune away.
	dup := append([]*engine.Plan{}, lib.Entries[0].Plan, lib.Entries[0].Plan, lib.Entries[2].Plan)
	pruned, err := NewLibraryFromPlans(dup)
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned.Entries) != 2 {
		t.Errorf("duplicate plans should prune, got %d entries", len(pruned.Entries))
	}
	if _, err := NewLibraryFromPlans(nil); err == nil {
		t.Error("empty library should error")
	}
}

// TestNewLibraryFromFrontier runs a bounded optimizer search and checks
// the SLO filter and compilation path.
func TestNewLibraryFromFrontier(t *testing.T) {
	schema := ragschema.CaseIV(8e9)
	cluster := hw.Cluster{Chip: hw.XPUC, Host: hw.EPYCHost, Hosts: 16}
	opts := core.DefaultOptions(cluster)
	opts.MaxPreBatch = 8
	opts.MaxRetrievalBatch = 32
	opts.MaxDecodeBatch = 256
	o, err := core.NewOptimizer(schema, opts)
	if err != nil {
		t.Fatal(err)
	}
	front := o.Optimize()
	if len(front) == 0 {
		t.Fatal("empty frontier")
	}
	slo := SLO{TTFT: 0.5}
	lib, err := NewLibrary(o, front, slo)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range lib.Entries {
		if e.TTFT > slo.TTFT {
			t.Errorf("entry %d violates the TTFT SLO analytically: %+v", i, e)
		}
		if e.Plan == nil || e.QPS <= 0 || e.Chips <= 0 {
			t.Errorf("entry %d incomplete: %+v", i, e)
		}
	}
	if _, err := NewLibrary(o, front, SLO{TTFT: 1e-9}); err == nil {
		t.Error("unsatisfiable SLO should error")
	}
}

// TestControllerDiurnalHoldsSLO is the acceptance test: on a
// deterministic diurnal trace the controller must hold p99 TTFT inside
// the SLO, spend measurably fewer chip-seconds than static peak
// provisioning, switch plans in both directions without dropping or
// double-serving a single request, and agree with the discrete-event
// replay of its own switching decisions within 15%.
func TestControllerDiurnalHoldsSLO(t *testing.T) {
	lib := caseIVLadder(t)
	const (
		base      = 45.0 // mean arrival rate (requests/s)
		amplitude = 0.8
		period    = 150.0 // virtual seconds per diurnal cycle
		cycles    = 2.5
		sloTTFT   = 1.0
	)
	n := int(base * period * cycles)
	reqs, err := trace.Diurnal(n, base, amplitude, period, 17)
	if err != nil {
		t.Fatal(err)
	}
	span := reqs[len(reqs)-1].Arrival
	wallBudget := 5.0 // seconds of wall time for the replay
	if raceEnabled {
		wallBudget = 15.0
	}
	speedup := span / wallBudget

	ctl, err := NewController(lib, Config{
		SLO:      SLO{TTFT: sloTTFT},
		Window:   12,
		Interval: 4,
		Headroom: 1.3,
		HoldDown: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctl.Run(serve.Options{Speedup: speedup}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report

	// Drain-and-migrate correctness: every request served exactly once.
	if rep.Completed != n || rep.Rejected != 0 {
		t.Fatalf("completed %d rejected %d of %d: switches dropped or double-served requests", rep.Completed, rep.Rejected, n)
	}
	var admitted int64
	for _, e := range rep.Epochs {
		admitted += e.Admitted
	}
	if admitted != int64(n) {
		t.Fatalf("epoch admissions sum to %d, want %d", admitted, n)
	}

	// The controller must actually track the wave: up- and down-switches.
	up, down := 0, 0
	for _, e := range res.Events {
		if e.To > e.From {
			up++
		} else {
			down++
		}
	}
	if up == 0 || down == 0 {
		t.Fatalf("controller never tracked the diurnal wave: %d up, %d down switches (%+v)", up, down, res.Events)
	}

	// SLO held: run-wide p99 TTFT inside the objective.
	if rep.TTFT.P99 > sloTTFT {
		t.Errorf("p99 TTFT %.3fs exceeds the %.1fs SLO", rep.TTFT.P99, sloTTFT)
	}

	// Cheaper than static peak provisioning, by a measurable margin.
	if res.ChipSeconds >= res.StaticChipSeconds {
		t.Errorf("controller spent %.0f chip-seconds, static peak %.0f — no saving", res.ChipSeconds, res.StaticChipSeconds)
	}
	if res.Saved < 0.10 {
		t.Errorf("chip-seconds saving %.1f%% not measurable (want >= 10%%)", 100*res.Saved)
	}

	// The sim replay of the same switching decisions must agree.
	simRes, err := SimReplay(lib, res, reqs, 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	if simRes.Completed != n {
		t.Fatalf("sim replay completed %d of %d", simRes.Completed, n)
	}
	ratio := rep.SustainedQPS / simRes.QPS
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("runtime QPS %.2f vs sim replay QPS %.2f (ratio %.2f), want within 15%%",
			rep.SustainedQPS, simRes.QPS, ratio)
	}
	if math.IsNaN(res.Saved) {
		t.Errorf("accounting produced NaN: %+v", res)
	}
}

// TestControllerSimReplayWithAdmissionBound is the cross-check that used
// to be skipped whenever -max-inflight shed arrivals: the discrete-event
// replay now applies the same shed-on-full bound, so a controlled run
// with admission control must still agree with its sim replay within the
// 15% band — and both sides must actually have shed load.
func TestControllerSimReplayWithAdmissionBound(t *testing.T) {
	lib := caseIVLadder(t)
	// Flat load near the mid plan's capacity with a bound below the
	// steady-state in-flight population, so shedding is systematic
	// rather than a startup transient.
	rate := 0.9 * lib.Entries[1].QPS
	const dur = 120.0
	const bound = 32
	n := int(rate * dur)
	reqs, err := trace.Poisson(n, rate, 29)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewController(lib, Config{
		SLO:      SLO{TTFT: 1.0},
		Window:   12,
		Interval: 4,
		Headroom: 1.3,
		HoldDown: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	wallBudget := 3.0
	if raceEnabled {
		wallBudget = 9.0
	}
	res, err := ctl.Run(serve.Options{Speedup: dur / wallBudget, MaxInFlight: bound}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if rep.Completed+rep.Rejected != n {
		t.Fatalf("completed %d + rejected %d != %d", rep.Completed, rep.Rejected, n)
	}
	if rep.Rejected == 0 {
		t.Fatalf("bound %d against ~%.0f in-flight demand should shed load", bound, rate)
	}

	simRes, err := SimReplay(lib, res, reqs, 0.05, bound)
	if err != nil {
		t.Fatal(err)
	}
	if simRes.Rejected == 0 {
		t.Errorf("sim replay with the same bound should shed load too")
	}
	if d := float64(simRes.Completed-rep.Completed) / float64(rep.Completed); d < -0.15 || d > 0.15 {
		t.Errorf("sim replay completed %d vs live %d (%.0f%% apart), want within 15%%",
			simRes.Completed, rep.Completed, 100*d)
	}
	ratio := rep.SustainedQPS / simRes.QPS
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("runtime QPS %.2f vs sim replay QPS %.2f (ratio %.2f), want within 15%%",
			rep.SustainedQPS, simRes.QPS, ratio)
	}
}

// TestControllerStaticLoad: on a flat trace comfortably inside one plan's
// capacity the controller must settle instead of hunting. A couple of
// switches are tolerated: heavy CPU contention can lag the paced replay
// behind the virtual clock, briefly deflating a telemetry window's
// arrival rate (a harness artifact of time compression, not a policy
// bug), and the post-trace drain tick may legitimately scale down.
func TestControllerStaticLoad(t *testing.T) {
	lib := caseIVLadder(t)
	rate := 0.6 * lib.Entries[1].QPS
	const dur = 120.0
	n := int(rate * dur)
	reqs, err := trace.Poisson(n, rate, 23)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewController(lib, Config{
		SLO:      SLO{TTFT: 1.0},
		Window:   12,
		Interval: 4,
		Headroom: 1.3,
		HoldDown: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	wallBudget := 3.0
	if raceEnabled {
		wallBudget = 9.0
	}
	res, err := ctl.Run(serve.Options{Speedup: dur / wallBudget}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Completed != n {
		t.Fatalf("completed %d of %d", res.Report.Completed, n)
	}
	if len(res.Events) > 4 {
		t.Errorf("flat load should settle, got %d switches: %+v", len(res.Events), res.Events)
	}
	if res.Report.TTFT.P99 > 1.0 {
		t.Errorf("flat load p99 TTFT %.3fs exceeds the 1.0s SLO", res.Report.TTFT.P99)
	}
}

// TestSimReplayShapePassthrough: per-request prompt/output shapes ride
// through the controller's discrete-event replay untouched — a shaped
// tenure segment simulates exactly like a direct ServeSim run of the same
// shaped requests, so the runtime/sim cross-check stays meaningful on
// heterogeneous traces.
func TestSimReplayShapePassthrough(t *testing.T) {
	lib := caseIVLadder(t)
	entry := lib.Entries[len(lib.Entries)-1]
	base, err := trace.Poisson(1500, 1.2*entry.QPS, 6)
	if err != nil {
		t.Fatal(err)
	}
	prompt, err := trace.LognormalLengths(512, 0.8, 4096)
	if err != nil {
		t.Fatal(err)
	}
	output, err := trace.LognormalLengths(256, 0.7, 1024)
	if err != nil {
		t.Fatal(err)
	}
	reqs := trace.WithShapes(base, prompt, output, 9)

	// Single tenure on the top entry: the replay must reduce to a direct
	// simulation of the shaped trace on that plan.
	res := &Result{Start: len(lib.Entries) - 1}
	got, err := SimReplay(lib, res, reqs, 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.NewServeFromPlan(entry.Plan)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.Run(reqs, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if got.Completed != want.Completed || got.QPS != want.QPS {
		t.Errorf("shaped replay diverged from direct sim: %+v vs %+v", got, want)
	}
	if want.PadWaste <= 0 {
		t.Errorf("shaped segment recorded no padding waste; shapes were dropped on the way into the replay")
	}
	// And the shaped mix must genuinely cost throughput vs the same
	// arrivals unshaped, proving the fields were honored, not ignored.
	sPlain, err := sim.NewServeFromPlan(entry.Plan)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := sPlain.Run(base, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !(want.QPS < plain.QPS) {
		t.Errorf("shaped QPS %.2f should undercut constant-shape %.2f", want.QPS, plain.QPS)
	}
}
