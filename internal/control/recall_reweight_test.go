package control

import (
	"math"
	"testing"

	"rago/internal/engine"
	"rago/internal/serve"
	"rago/internal/trace"
)

// TestRecallStaircaseKeepsQualityEntries: the staircase must keep an
// entry that buys recall instead of throughput at equal cost, prune one
// that buys neither, and IndexForFloor must route around entries below
// the recall floor — falling back to the plain answer when the floor
// excludes the whole library.
func TestRecallStaircaseKeepsQualityEntries(t *testing.T) {
	lib := &Library{Entries: staircase([]Entry{
		{Schedule: "D", QPS: 150, Chips: 8, Recall: 0.60},
		{Schedule: "A", QPS: 100, Chips: 4, Recall: 0.55},
		{Schedule: "C", QPS: 80, Chips: 8, Recall: 0.70},
		{Schedule: "B", QPS: 60, Chips: 4, Recall: 0.95},
	})}
	var kept []string
	for _, e := range lib.Entries {
		kept = append(kept, e.Schedule)
	}
	// A leads at 4 chips; B matches its cost but trades QPS for recall, so
	// it survives; C costs more and improves neither axis over {A,B}; D
	// buys throughput with its chips.
	want := []string{"A", "B", "D"}
	if len(kept) != len(want) {
		t.Fatalf("staircase kept %v, want %v", kept, want)
	}
	for i := range want {
		if kept[i] != want[i] {
			t.Fatalf("staircase kept %v, want %v", kept, want)
		}
	}

	if got := lib.IndexForFloor(50, 0); got != 0 {
		t.Errorf("no floor: want cheapest sustaining entry A (0), got %d", got)
	}
	if got := lib.IndexForFloor(50, 0.9); got != 1 {
		t.Errorf("floor 0.9: only B qualifies, want 1, got %d", got)
	}
	// Overload with a floor: the most capable floor-respecting entry, not
	// the most capable overall — the controller degrades capacity before
	// it degrades quality below the floor.
	if got := lib.IndexForFloor(1e9, 0.9); got != 1 {
		t.Errorf("overload with floor 0.9: want B (1), got %d", got)
	}
	// A floor above the library's best recall must not strand the
	// controller: plain IndexFor answer.
	if got := lib.IndexForFloor(50, 0.99); got != 0 {
		t.Errorf("unsatisfiable floor: want plain IndexFor answer 0, got %d", got)
	}

	// Unmeasured libraries (every recall zero) ignore any floor.
	plain := &Library{Entries: staircase([]Entry{
		{Schedule: "x", QPS: 30, Chips: 2},
		{Schedule: "y", QPS: 90, Chips: 6},
	})}
	for _, target := range []float64{1, 50, 1e9} {
		if a, b := plain.IndexForFloor(target, 0.9), plain.IndexFor(target); a != b {
			t.Errorf("unmeasured library: IndexForFloor(%g, 0.9)=%d diverges from IndexFor=%d", target, a, b)
		}
	}
}

func TestConfigMinRecallValidation(t *testing.T) {
	lib := &Library{Entries: []Entry{{Schedule: "a", QPS: 1, Chips: 1}}}
	if _, err := NewController(lib, Config{MinRecall: -0.1}); err == nil {
		t.Error("negative MinRecall should be rejected")
	}
	if _, err := NewController(lib, Config{MinRecall: 1.5}); err == nil {
		t.Error("MinRecall above 1 should be rejected")
	}
	if _, err := NewController(lib, Config{MinRecall: 0.9}); err != nil {
		t.Errorf("MinRecall 0.9 should validate, got %v", err)
	}
}

// TestReweightPreservesEntryIndices: Reweight must re-price in place —
// same entries, same order — because the controller calls it mid-run
// while its current index, recorded events, and any replay of them still
// point into the library.
func TestReweightPreservesEntryIndices(t *testing.T) {
	lib := caseIVLadder(t)
	var order []string
	for _, e := range lib.Entries {
		order = append(order, e.Schedule)
	}
	shapes := []engine.Shape{{PromptTokens: 3072, OutputTokens: 384}}
	lib.Reweight(shapes)
	if len(lib.Entries) != len(order) {
		t.Fatalf("Reweight changed entry count: %d -> %d", len(order), len(lib.Entries))
	}
	for i, e := range lib.Entries {
		if e.Schedule != order[i] {
			t.Fatalf("Reweight reordered entries: %v -> %v", order, lib.Entries)
		}
		if want := e.Plan.ShapeMetrics(shapes).QPS; math.Abs(e.QPS-want) > 1e-9 {
			t.Errorf("entry %d QPS %.3f, want shaped prediction %.3f", i, e.QPS, want)
		}
		if e.PadEff <= 0 || e.PadEff > 1 {
			t.Errorf("entry %d PadEff %.3f outside (0, 1]", i, e.PadEff)
		}
	}
}

// TestControllerReweightsOnShapeDrift is the staleness regression test: a
// library priced at startup for a short-prompt mix must be re-priced
// online when the trace's shape mix flips halfway to long prompts.
// Before the fix, WeightByShapes ran once before Run and every capacity
// estimate stayed priced for the dead morning mix; the assertion that the
// post-run library carries the *late* window's pricing fails on that
// code. The re-weight is hold-down gated and in place, so plan identity
// per index must also survive the run.
func TestControllerReweightsOnShapeDrift(t *testing.T) {
	lib := caseIVLadder(t)
	short := engine.Shape{PromptTokens: 128, OutputTokens: 64}
	long := engine.Shape{PromptTokens: 3072, OutputTokens: 384}

	// Startup pricing on the opening (short) mix — the historical,
	// startup-only path.
	lib.WeightByShapes([]engine.Shape{short})
	startupQPS := make([]float64, len(lib.Entries))
	plans := make([]*engine.Plan, len(lib.Entries))
	for i, e := range lib.Entries {
		startupQPS[i] = e.QPS
		plans[i] = e.Plan
	}

	// A flat trace whose shape mix flips halfway: short prompts for the
	// first half, long for the second. Rate sits inside the mid plan's
	// long-shaped capacity so the run completes either way — the bug is
	// in the pricing, not the admission.
	const dur = 90.0
	rate := 0.5 * plans[1].ShapeMetrics([]engine.Shape{long}).QPS
	n := int(rate * dur)
	reqs, err := trace.Poisson(n, rate, 41)
	if err != nil {
		t.Fatal(err)
	}
	flip := reqs[len(reqs)-1].Arrival / 2
	for i := range reqs {
		s := short
		if reqs[i].Arrival >= flip {
			s = long
		}
		reqs[i].PromptTokens, reqs[i].OutputTokens = s.PromptTokens, s.OutputTokens
	}

	ctl, err := NewController(lib, Config{
		SLO:      SLO{TTFT: 2.0},
		Window:   12,
		Interval: 4,
		Headroom: 1.3,
		HoldDown: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	wallBudget := 4.0
	if raceEnabled {
		wallBudget = 12.0
	}
	res, err := ctl.Run(serve.Options{Speedup: dur / wallBudget}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Completed != n {
		t.Fatalf("completed %d of %d", res.Report.Completed, n)
	}

	for i, e := range lib.Entries {
		if e.Plan != plans[i] {
			t.Fatalf("entry %d no longer points at its original plan: online re-weighting must not reorder the library", i)
		}
		lateQPS := plans[i].ShapeMetrics([]engine.Shape{long}).QPS
		if math.Abs(startupQPS[i]-lateQPS) < 1e-6 {
			t.Fatalf("entry %d: short and long pricing coincide (%.3f); the trace does not exercise drift", i, startupQPS[i])
		}
		// The last hold-down-gated re-weight reads a window that is all
		// long-shaped (the flip is more than a window before the drain),
		// so the post-run pricing must match the late mix, not startup's.
		if d := math.Abs(e.QPS-lateQPS) / lateQPS; d > 0.02 {
			t.Errorf("entry %d QPS %.3f still ~%.0f%% from the late-mix pricing %.3f (startup was %.3f): library went stale",
				i, e.QPS, 100*d, lateQPS, startupQPS[i])
		}
	}
}
