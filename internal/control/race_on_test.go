//go:build race

package control

// raceEnabled flags -race runs: the detector's instrumentation slows the
// process severalfold, so wall-clock-paced tests get a proportionally
// larger wall budget (less time compression) to keep scheduling jitter
// small relative to virtual time.
const raceEnabled = true
