package control

import (
	"fmt"
	"math"

	"rago/internal/cache"
	"rago/internal/sim"
	"rago/internal/trace"
)

// SimResult is the discrete-event replay of a recorded switching history.
type SimResult struct {
	// Completed counts simulated completions; QPS is completions over
	// the union completion span.
	Completed int     `json:"completed"`
	QPS       float64 `json:"qps"`
	// Rejected counts arrivals the admission bound shed across tenures.
	Rejected int `json:"rejected,omitempty"`
	// Segments is how many plan tenures actually served requests.
	Segments int `json:"segments"`
	// PerSegment annotates each served tenure: which library entry ran
	// it, the slice of the trace it carried, and its own completion rate.
	PerSegment []SegmentSim `json:"per_segment,omitempty"`
	// Cache is the replay's reuse-cache statistics (SimReplayCached only).
	Cache *cache.Stats `json:"cache,omitempty"`
}

// SegmentSim is one plan tenure of a simulated switching replay.
type SegmentSim struct {
	// Entry indexes Library.Entries; FromV is the tenure's start (0 for
	// the initial plan).
	Entry int     `json:"entry"`
	FromV float64 `json:"from_v"`
	// Requests/Completed/Rejected count the tenure's trace slice.
	Requests  int `json:"requests"`
	Completed int `json:"completed"`
	Rejected  int `json:"rejected,omitempty"`
	// FirstDone/LastDone bound the tenure's completions in absolute trace
	// time; QPS is the tenure's own windowed completion rate.
	FirstDone float64 `json:"first_done"`
	LastDone  float64 `json:"last_done"`
	QPS       float64 `json:"qps"`
}

// SimReplay replays a controller Result's switching decisions through the
// discrete-event validator: each request is simulated on the plan that
// was current at its arrival, on that plan's own resources — exactly the
// drain-and-migrate semantics of the live Server, where epochs never
// share workers — and the per-tenure results are combined over the union
// completion span. maxInFlight applies the live runtime's admission bound
// (shed-on-full, 0 admits everything) per tenure; the live Server bounds
// in-flight requests globally across draining epochs, so under heavy
// shedding the per-tenure replay is an approximation — accurate away from
// switch instants. The returned QPS is the reference the live runtime is
// cross-checked against (the two must agree within the established 15%
// band).
func SimReplay(lib *Library, res *Result, reqs []trace.Request, flushTimeout float64, maxInFlight int) (SimResult, error) {
	return simReplay(lib, res, reqs, flushTimeout, maxInFlight, nil)
}

// SimReplayCached is SimReplay with the simulator mirroring the live
// Server's reuse cache: one cache built from cfg spans every tenure, the
// way Options.Cache is server-scoped in the runtime (plan switches never
// flush it). The replay's cache statistics land in SimResult.Cache.
func SimReplayCached(lib *Library, res *Result, reqs []trace.Request, flushTimeout float64, maxInFlight int, cfg cache.Config) (SimResult, error) {
	c, err := cache.New(cfg)
	if err != nil {
		return SimResult{}, err
	}
	out, err := simReplay(lib, res, reqs, flushTimeout, maxInFlight, c)
	if err == nil {
		st := c.Stats()
		out.Cache = &st
	}
	return out, err
}

func simReplay(lib *Library, res *Result, reqs []trace.Request, flushTimeout float64, maxInFlight int, c *cache.Cache) (SimResult, error) {
	if lib == nil || len(lib.Entries) == 0 {
		return SimResult{}, fmt.Errorf("control: empty plan library")
	}
	if res == nil {
		return SimResult{}, fmt.Errorf("control: nil controller result")
	}
	if len(reqs) == 0 {
		return SimResult{}, fmt.Errorf("control: empty trace")
	}
	if maxInFlight < 0 {
		return SimResult{}, fmt.Errorf("control: maxInFlight must be non-negative (0 admits everything), got %d", maxInFlight)
	}
	// Reconstruct the plan timeline: entry indices over [bound, next).
	type tenure struct {
		entry int
		from  float64
	}
	timeline := []tenure{{entry: res.Start}}
	for _, e := range res.Events {
		if e.To < 0 || e.To >= len(lib.Entries) {
			return SimResult{}, fmt.Errorf("control: event targets entry %d outside the library", e.To)
		}
		timeline = append(timeline, tenure{entry: e.To, from: e.AtV})
	}

	out := SimResult{}
	first, last := math.Inf(1), math.Inf(-1)
	lo := 0
	// Pool one simulator per library entry: an oscillating controller
	// revisits the same few entries across many tenures, and ServeSim.Run
	// keeps no cross-run state, so re-running a pooled instance is exactly
	// one fresh construction per distinct entry instead of one per segment
	// (the pool-scratch discipline the executors' hot paths already use).
	sims := make(map[int]*sim.ServeSim, len(lib.Entries))
	for i, tn := range timeline {
		hi := len(reqs)
		if i+1 < len(timeline) {
			next := timeline[i+1].from
			for hi = lo; hi < len(reqs) && reqs[hi].Arrival < next; hi++ {
			}
		}
		seg := reqs[lo:hi]
		lo = hi
		if len(seg) == 0 {
			continue
		}
		s := sims[tn.entry]
		if s == nil {
			var err error
			s, err = sim.NewServeFromPlan(lib.Entries[tn.entry].Plan)
			if err != nil {
				return SimResult{}, err
			}
			sims[tn.entry] = s
		}
		s.MaxInFlight = maxInFlight
		s.Cache = c
		r, err := s.Run(seg, flushTimeout)
		if err != nil {
			return SimResult{}, err
		}
		out.Completed += r.Completed
		out.Rejected += r.Rejected
		out.Segments++
		segQPS := 0.0
		if sp := r.LastDone - r.FirstDone; sp > 0 && r.Completed > 1 {
			segQPS = float64(r.Completed-1) / sp
		}
		out.PerSegment = append(out.PerSegment, SegmentSim{
			Entry: tn.entry, FromV: tn.from,
			Requests: len(seg), Completed: r.Completed, Rejected: r.Rejected,
			FirstDone: r.FirstDone, LastDone: r.LastDone, QPS: segQPS,
		})
		if r.FirstDone < first {
			first = r.FirstDone
		}
		if r.LastDone > last {
			last = r.LastDone
		}
	}
	if out.Completed == 0 {
		return SimResult{}, fmt.Errorf("control: sim replay completed nothing")
	}
	if span := last - first; span > 0 && out.Completed > 1 {
		out.QPS = float64(out.Completed-1) / span
	}
	return out, nil
}
