package serve

import "sort"

// Telemetry: the windowed metrics feed the online controller polls
// mid-replay. Where Report summarizes a whole run after the fact, a
// Window is a live snapshot over the trailing W virtual seconds —
// arrival rate, completion rate, TTFT/TPOT quantiles, and per-stage
// queue depth — cheap enough to take every few virtual seconds.

// StageDepth is one stage's live queue occupancy (queued plus in-service
// requests across all active dataplanes).
type StageDepth struct {
	Stage string `json:"stage"`
	Depth int    `json:"depth"`
}

// Window is a sliding-window snapshot of live serving behaviour. All
// times are virtual (schedule) seconds.
type Window struct {
	// Now is the virtual time of the snapshot; Span the width actually
	// covered (smaller than the requested window early in a run).
	Now  float64 `json:"now"`
	Span float64 `json:"span"`

	// Arrivals counts arrivals (admitted and rejected) inside the window
	// and ArrivalRate is Arrivals/Span — the controller's load estimate.
	Arrivals    int     `json:"arrivals"`
	ArrivalRate float64 `json:"arrival_rate"`

	// Completions counts requests finished inside the window; QPS is
	// Completions/Span.
	Completions int     `json:"completions"`
	QPS         float64 `json:"qps"`

	// TTFT and TPOT are quantiles over the window's completions.
	TTFT Quantiles `json:"ttft"`
	TPOT Quantiles `json:"tpot"`

	// Shapes breaks the window's TTFT/TPOT down by per-request shape
	// bucket (empty on constant-shape traffic) — the signal a
	// shape-aware autoscaler or SLO controller would subscribe to.
	Shapes []ShapeStat `json:"shapes,omitempty"`

	// InFlight is the number of admitted, unfinished requests right now;
	// Depths the live per-stage queue occupancy.
	InFlight int          `json:"in_flight"`
	Depths   []StageDepth `json:"depths,omitempty"`

	// CacheHitRate and CacheSavedTokens surface the reuse cache's
	// lifetime prefix hit rate and total saved prefill tokens at snapshot
	// time (both zero when no cache is configured) — the signal the
	// controller's cache-aware capacity weighting consumes.
	CacheHitRate     float64 `json:"cache_hit_rate,omitempty"`
	CacheSavedTokens int64   `json:"cache_saved_tokens,omitempty"`

	// Cumulative counters since the start of the run.
	Admitted  int `json:"admitted"`
	Rejected  int `json:"rejected"`
	Completed int `json:"completed"`
}

// snapshot computes the trailing-window view at virtual time now.
func (c *collector) snapshot(now, window float64, inflight int) Window {
	c.mu.Lock()
	defer c.mu.Unlock()
	lo := now - window
	if lo < 0 {
		lo = 0
	}
	w := Window{
		Now:       now,
		Span:      now - lo,
		InFlight:  inflight,
		Admitted:  c.admitted,
		Rejected:  c.rejected,
		Completed: c.completed,
	}
	// Arrivals are recorded in order, so the window is a suffix.
	for i := len(c.arrV) - 1; i >= 0; i-- {
		if c.arrV[i] <= lo {
			break
		}
		w.Arrivals++
	}
	// Completions finish only roughly in order (decode slots overlap),
	// but the prefix maximum of done times is monotone: everything
	// before the first index where it exceeds lo is certainly outside
	// the window, so only the suffix needs the exact filter.
	var ttft, tpot []float64
	var shapeP, shapeO []int
	shaped := false
	from := sort.Search(len(c.donePMax), func(i int) bool { return c.donePMax[i] > lo })
	for i := from; i < len(c.doneV); i++ {
		if d := c.doneV[i]; d > lo && d <= now {
			ttft = append(ttft, c.ttft[i])
			tpot = append(tpot, c.tpot[i])
			shapeP = append(shapeP, c.shapeP[i])
			shapeO = append(shapeO, c.shapeO[i])
			shaped = shaped || c.shapeP[i] != 0 || c.shapeO[i] != 0
		}
	}
	w.Completions = len(ttft)
	if shaped {
		w.Shapes = shapeStats(ttft, tpot, shapeP, shapeO)
	}
	if w.Span > 0 {
		w.ArrivalRate = float64(w.Arrivals) / w.Span
		w.QPS = float64(w.Completions) / w.Span
	}
	w.TTFT = quantilesOf(ttft)
	w.TPOT = quantilesOf(tpot)
	for i, name := range c.stageNames {
		if c.depthNow[i] > 0 {
			w.Depths = append(w.Depths, StageDepth{Stage: name, Depth: c.depthNow[i]})
		}
	}
	return w
}
