package serve

// decodeTier is the continuous-batching decode pool. The plan's
// DecodeBatch slots are a bounded channel of slot leases, each lease
// carrying the virtual time its slot frees up: acquiring a lease and
// max-ing it with the request's queue-exit time gives the drift-free start
// of that sequence's generation. Each admitted sequence occupies its slot
// for the full profiled generation latency (the profile already assumes
// all slots decode concurrently), sleeping it out in scaled wall time on
// its own goroutine — so up to DecodeBatch generations genuinely overlap.
type decodeTier struct {
	dp      *dataplane
	inbox   chan *request
	slots   chan float64 // free-at virtual times; cap == DecodeBatch
	latency float64      // full-batch generation wall time (virtual)
}

func (d *decodeTier) start(bound int) {
	d.inbox = make(chan *request, bound)
	batch := d.dp.plan.Sched.DecodeBatch
	d.slots = make(chan float64, batch)
	for i := 0; i < batch; i++ {
		d.slots <- 0
	}
}

// run admits queued sequences into free slots in arrival order.
func (d *decodeTier) run() {
	decIdx := d.dp.plan.DecodeIdx
	for {
		var q *request
		select {
		case q = <-d.inbox:
		case <-d.dp.quit:
			return
		}
		var free float64
		select {
		case free = <-d.slots:
		case <-d.dp.quit:
			return
		}
		q.decStart = maxf(free, q.enqV[decIdx])
		go d.finish(q, q.decStart+d.latency)
	}
}

// finish sleeps out one sequence's generation, returns the slot lease, and
// retires the request.
func (d *decodeTier) finish(q *request, done float64) {
	d.dp.clock.sleepUntil(done)
	d.slots <- done
	d.dp.complete(q, done)
}
