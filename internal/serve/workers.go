package serve

import (
	"rago/internal/engine"
	"rago/internal/obs"
)

// decodeTier is the continuous-batching decode pool. The plan's
// DecodeBatch slots are a bounded channel of slot leases, each lease
// carrying the virtual time its slot frees up: acquiring a lease and
// max-ing it with the request's queue-exit time gives the drift-free start
// of that sequence's generation. Each admitted sequence occupies its slot
// for the full profiled generation latency (the profile already assumes
// all slots decode concurrently), sleeping it out in scaled wall time on
// its own goroutine — so up to DecodeBatch generations genuinely overlap.
//
// On iterative plans (§5.3) a sequence additionally owns a decode loop:
// it decodes at the plan's per-token step pace until a trigger position,
// parks — holding its slot, exactly like the token-level simulator and
// the analytical fixed point assume — while a retrieval+prefix round runs
// through the iterative batcher slots on the regular workers, then
// resumes at the round's finish time. The parked seconds accumulate as
// the sequence's stall.
type decodeTier struct {
	dp        *dataplane
	inbox     chan *request
	slots     chan float64      // free-at virtual times; cap == DecodeBatch
	outTokens int               // schema-constant generation length
	round     *engine.IterRound // nil on single-retrieval plans
}

func (d *decodeTier) start(bound int) {
	d.inbox = make(chan *request, bound)
	batch := d.dp.plan.Sched.DecodeBatch
	d.slots = make(chan float64, batch)
	for i := 0; i < batch; i++ {
		d.slots <- 0
	}
}

// run admits queued sequences into free slots in arrival order.
func (d *decodeTier) run() {
	decIdx := d.dp.plan.DecodeIdx
	for {
		var q *request
		select {
		case q = <-d.inbox:
		case <-d.dp.quit:
			return
		}
		var free float64
		select {
		case free = <-d.slots:
		case <-d.dp.quit:
			return
		}
		q.decStart = maxf(free, q.enqV[decIdx])
		if d.dp.bus.Active() {
			d.dp.bus.Publish(obs.Event{Kind: obs.KindDecodeLease, T: q.decStart, Req: q.id,
				Slot: decIdx, Stage: d.dp.slotName[decIdx], Track: "decode"})
		}
		go d.generate(q)
	}
}

// generate runs one sequence's decode: a single sleep for the request's
// own generation length on single-retrieval plans (the precompiled
// constant-shape latency when the request is unshaped), or the §5.3
// decode loop — decode to each trigger, park for an iterative
// retrieval+prefix round, resume — on iterative ones. The sequence holds
// its decode slot throughout, parks included (continuous batching refills
// slots only on completion), and frees it at its own output length, which
// is what makes saturation throughput DecodeBatch over the mean stalled
// generation time, as the shape-weighted analytical model prices it.
func (d *decodeTier) generate(q *request) {
	if d.round == nil || len(q.triggers) == 0 {
		// Shape-dependent pacing: a long prompt grows the live KV context
		// and slows its own decode steps (GenTimeForShape); unshaped
		// requests hold the precompiled constant bit for bit.
		d.finish(q, q.decStart+d.dp.plan.GenTimeForShape(q.promptTok, q.outTok))
		return
	}
	outTokens := d.outTokens
	if q.outTok > 0 {
		outTokens = q.outTok
	}
	t, tok := q.decStart, 0
	for ri, trig := range q.triggers {
		// Clamp recorded positions into [tok, outTokens]: decode only
		// moves forward, so an out-of-range or out-of-order trigger
		// parks at the nearest legal token instead of rewinding time.
		if trig > outTokens {
			trig = outTokens
		}
		if trig < tok {
			trig = tok
		}
		t += float64(trig-tok) * d.round.DecodeStep
		tok = trig
		d.dp.clock.sleepUntil(t)
		q.parkedV = t
		if d.dp.bus.Active() {
			d.dp.bus.Publish(obs.Event{Kind: obs.KindDecodePark, T: t, Req: q.id,
				Slot: d.dp.plan.DecodeIdx, Stage: "decode", Track: "decode", N: ri + 1})
		}
		q.enqV[d.dp.plan.IterRetrievalSlot()] = t
		d.dp.submit(q, d.dp.plan.IterRetrievalSlot())
		resumed := <-q.resume
		q.stall += resumed - q.parkedV
		if d.dp.bus.Active() {
			d.dp.bus.Publish(obs.Event{Kind: obs.KindDecodeResume, T: resumed, Req: q.id,
				Slot: d.dp.plan.DecodeIdx, Stage: "decode", Track: "decode",
				N: ri + 1, Dur: resumed - q.parkedV})
		}
		t = resumed
	}
	t += float64(outTokens-tok) * d.round.DecodeStep
	d.finish(q, t)
}

// finish sleeps out the remainder of one sequence's generation, returns
// the slot lease, and retires the request.
func (d *decodeTier) finish(q *request, done float64) {
	d.dp.clock.sleepUntil(done)
	if d.dp.bus.Active() {
		d.dp.bus.Publish(obs.Event{Kind: obs.KindDecodeFinish, T: done, Req: q.id,
			Slot: d.dp.plan.DecodeIdx, Stage: "decode", Track: "decode",
			Dur: done - q.decStart})
	}
	d.slots <- done
	d.dp.complete(q, done)
}
