package serve

import (
	"encoding/json"
	"testing"
	"time"

	"rago/internal/core"
	"rago/internal/engine"
	"rago/internal/hw"
	"rago/internal/pipeline"
	"rago/internal/ragschema"
	"rago/internal/stageperf"
	"rago/internal/trace"
)

// TestOptionsValidation: negative Speedup and MaxInFlight must be rejected
// with a descriptive error instead of being silently mapped to defaults.
func TestOptionsValidation(t *testing.T) {
	pipe, prof, sched := caseISetup(t)
	if _, err := New(pipe, prof, sched, Options{Speedup: -1}); err == nil {
		t.Error("negative Speedup should be rejected")
	}
	if _, err := New(pipe, prof, sched, Options{MaxInFlight: -5}); err == nil {
		t.Error("negative MaxInFlight should be rejected")
	}
	plan, err := engine.Compile(pipe, sched, prof)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewServer(plan, Options{Speedup: -1}); err == nil {
		t.Error("NewServer should reject negative Speedup")
	}
	if _, err := NewServer(nil, Options{}); err == nil {
		t.Error("NewServer should reject a nil plan")
	}
	// Zero remains "default", not an error.
	if _, err := New(pipe, prof, sched, Options{}); err != nil {
		t.Errorf("zero options should be fine: %v", err)
	}
}

// TestQuantilesOfEdgeCases: empty and single-sample distributions.
func TestQuantilesOfEdgeCases(t *testing.T) {
	if q := quantilesOf(nil); q != (Quantiles{}) {
		t.Errorf("empty distribution should be all-zero, got %+v", q)
	}
	q := quantilesOf([]float64{0.25})
	if q.Mean != 0.25 || q.P50 != 0.25 || q.P95 != 0.25 || q.P99 != 0.25 || q.Max != 0.25 {
		t.Errorf("single sample should pin every quantile to it, got %+v", q)
	}
	q = quantilesOf([]float64{3, 1, 2})
	if q.P50 != 2 || q.Max != 3 || q.Mean != 2 {
		t.Errorf("unsorted input mishandled: %+v", q)
	}
}

// TestReportJSON: the full report must marshal as machine-readable JSON
// (the -json CLI flag and CI artifacts depend on it).
func TestReportJSON(t *testing.T) {
	pipe, prof, sched := caseISetup(t)
	rt, err := New(pipe, prof, sched, Options{Speedup: 400})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Serve(trace.Burst(50))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Completed != rep.Completed || back.TTFT.P99 != rep.TTFT.P99 {
		t.Errorf("JSON roundtrip lost data: %+v vs %+v", back, rep)
	}
}

// TestRuntimeTelemetry polls the windowed feed mid-replay and checks it
// converges on the cumulative truth.
func TestRuntimeTelemetry(t *testing.T) {
	pipe, prof, sched := caseISetup(t)
	want, ok := (&core.Assembler{Pipe: pipe, Prof: prof}).Evaluate(sched)
	if !ok {
		t.Fatal("schedule infeasible analytically")
	}
	const n = 3000
	reqs, err := trace.Poisson(n, want.QPS, 21)
	if err != nil {
		t.Fatal(err)
	}
	speedup := (float64(n) / want.QPS) / 2.0
	rt, err := New(pipe, prof, sched, Options{Speedup: speedup})
	if err != nil {
		t.Fatal(err)
	}
	if w := rt.Telemetry(10); w.Admitted != 0 || w.Now != 0 {
		t.Errorf("pre-Serve telemetry should be zero, got %+v", w)
	}
	done := make(chan struct{})
	var rep *Report
	go func() {
		rep, err = rt.Serve(reqs)
		close(done)
	}()
	sawLoad := false
	for alive := true; alive; {
		select {
		case <-done:
			alive = false
		case <-time.After(100 * time.Millisecond):
			w := rt.Telemetry(30)
			if w.Arrivals > 0 && w.Completions > 0 && w.TTFT.P99 > 0 {
				sawLoad = true
				if w.ArrivalRate <= 0 || w.QPS <= 0 || w.Span <= 0 {
					t.Errorf("inconsistent mid-run window: %+v", w)
				}
			}
		}
	}
	if err != nil {
		t.Fatal(err)
	}
	if !sawLoad {
		t.Error("telemetry never observed live load mid-replay")
	}
	if w := rt.Telemetry(1e9); w.Completed != rep.Completed || w.Admitted != rep.Admitted {
		t.Errorf("final cumulative window %+v disagrees with report %d/%d", w, rep.Admitted, rep.Completed)
	}
}

// serverSetup compiles two Case IV plans of different capacity for the
// same pipeline: a small one and the serve_test schedule.
func serverSetup(t testing.TB) (small, large *engine.Plan) {
	t.Helper()
	pipe, prof, sched := caseIVSetup(t)
	smallSched := sched
	smallSched.DecodeChips = 8
	smallSched.DecodeBatch = 16
	smallSched.DecodeReplicas = 2
	var err error
	small, err = engine.Compile(pipe, smallSched, prof)
	if err != nil {
		t.Fatal(err)
	}
	large, err = engine.Compile(pipe, sched, prof)
	if err != nil {
		t.Fatal(err)
	}
	return small, large
}

// TestServerSwitchDrainAndMigrate is the drain-semantics assertion: a
// mid-replay switch must route new admissions to the new plan while every
// in-flight request finishes on the old one — nothing dropped, nothing
// double-served — and the old epoch's workers must shut down after
// draining. Runs under -race in CI.
func TestServerSwitchDrainAndMigrate(t *testing.T) {
	small, large := serverSetup(t)
	const n = 4000
	rate := 1.2 * small.Metrics.QPS
	reqs, err := trace.Poisson(n, rate, 13)
	if err != nil {
		t.Fatal(err)
	}
	speedup := (float64(n) / rate) / 3.0
	s, err := NewServer(small, Options{Speedup: speedup})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Switch(large); err == nil {
		t.Fatal("Switch before Serve should error")
	}
	var rep *ServerReport
	done := make(chan struct{})
	go func() {
		rep, err = s.Serve(reqs)
		close(done)
	}()
	<-s.Started()
	// Switch up roughly mid-trace, then back down later.
	midV := reqs[n/2].Arrival
	<-s.AfterVirtual(midV)
	if err := s.Switch(large); err != nil {
		t.Errorf("switch up: %v", err)
	}
	if got := s.Plan(); got != large {
		t.Errorf("current plan not swapped")
	}
	<-s.AfterVirtual(reqs[3*n/4].Arrival)
	if err := s.Switch(small); err != nil {
		t.Errorf("switch down: %v", err)
	}
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != n || rep.Rejected != 0 {
		t.Fatalf("completed %d rejected %d, want %d/0: drain dropped or double-served", rep.Completed, rep.Rejected, n)
	}
	if rep.Switches != 2 || len(rep.Epochs) != 3 {
		t.Fatalf("switch history wrong: %d switches, %d epochs", rep.Switches, len(rep.Epochs))
	}
	var admitted int64
	for i, e := range rep.Epochs {
		admitted += e.Admitted
		if e.Admitted == 0 {
			t.Errorf("epoch %d admitted nothing", i)
		}
		if e.DrainedV < e.RetiredV || e.RetiredV < e.StartV {
			t.Errorf("epoch %d lifecycle out of order: %+v", i, e)
		}
		if e.ChipSeconds <= 0 {
			t.Errorf("epoch %d chip-seconds not accounted: %+v", i, e)
		}
	}
	if admitted != int64(n) {
		t.Errorf("epoch admissions sum to %d, want %d (each request on exactly one plan)", admitted, n)
	}
	if rep.DurationV <= 0 || rep.ChipSeconds <= 0 {
		t.Errorf("report accounting empty: %+v", rep)
	}
}

// TestServerSwitchRejectsIncompatible: plans of a different pipeline must
// not be hot-swappable.
func TestServerSwitchRejectsIncompatible(t *testing.T) {
	small, _ := serverSetup(t)
	otherSchema := ragschema.CaseI(8e9, 1)
	otherPipe, err := pipeline.Build(otherSchema)
	if err != nil {
		t.Fatal(err)
	}
	otherProf := stageperf.New(hw.XPUC, hw.EPYCHost, otherSchema)
	otherPlan, err := engine.Compile(otherPipe, core.Schedule{
		Groups:           []core.GroupSchedule{{Stages: []int{1}, Chips: 16, Batch: 8}},
		RetrievalServers: 16,
		RetrievalBatch:   8,
		DecodeChips:      16,
		DecodeBatch:      128,
		DecodeReplicas:   4,
	}, otherProf)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(small, Options{Speedup: 500})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		s.Serve(trace.Burst(200))
		close(done)
	}()
	<-s.Started()
	if err := s.Switch(otherPlan); err == nil {
		t.Error("incompatible plan should be rejected")
	}
	if err := s.Switch(nil); err == nil {
		t.Error("nil plan should be rejected")
	}
	if err := s.Switch(small); err != nil {
		t.Errorf("no-op switch to the current plan should succeed: %v", err)
	}
	<-done
	if err := s.Switch(small); err != ErrServeEnded {
		t.Errorf("Switch after the replay drained should return ErrServeEnded, got %v", err)
	}
	if _, err := s.Serve(trace.Burst(10)); err == nil {
		t.Error("second Serve on a single-use server should error")
	}
}
