package serve

import (
	"testing"

	"rago/internal/engine"
	"rago/internal/obs"
	"rago/internal/sim"
	"rago/internal/trace"
)

// tracedServe replays reqs through the live runtime with a deep-buffered
// Tracer attached and returns the report plus the assembled per-request
// timelines.
func tracedServe(t *testing.T, opts Options, reqs []trace.Request) (*Report, []obs.RequestTrace) {
	t.Helper()
	pipe, prof, sched := caseIIISetup(t)
	bus := obs.NewBus()
	tr := obs.NewTracer()
	if err := tr.Attach(bus, 1<<17); err != nil {
		t.Fatal(err)
	}
	opts.Bus = bus
	rt, err := New(pipe, prof, sched, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	tr.Close()
	if tr.Dropped() != 0 {
		t.Fatalf("tracer dropped %d events with a deep buffer", tr.Dropped())
	}
	return rep, tr.Requests()
}

// TestObsSpanParityServeVsSim is the structural cross-check the tracer
// makes possible: the live concurrent runtime and the discrete-event
// simulator, replaying the identical Case III trace (same seed, same
// trigger positions), must produce per-request timelines with the same
// admit set, the same ordered stage visits, and the same iterative stall
// rounds. Timestamps differ (that is the point of having both); the
// structure must not.
func TestObsSpanParityServeVsSim(t *testing.T) {
	pipe, prof, sched := caseIIISetup(t)
	plan, err := engine.Compile(pipe, sched, prof)
	if err != nil {
		t.Fatal(err)
	}
	const n = 160
	reqs, err := trace.Poisson(n, 1.5*plan.Metrics.QPS, 42)
	if err != nil {
		t.Fatal(err)
	}
	reqs = trace.WithTriggers(reqs, plan.Round.RoundsPerSeq, pipe.Stages[plan.DecodeIdx].OutTokens, 7)

	speedup := (float64(n) / plan.Metrics.QPS) / 4.0
	_, live := tracedServe(t, Options{Speedup: speedup, FlushTimeout: iterFlush}, reqs)

	simBus := obs.NewBus()
	simTr := obs.NewTracer()
	if err := simTr.Attach(simBus, 1<<17); err != nil {
		t.Fatal(err)
	}
	des, err := sim.NewServeFromPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	des.Bus = simBus
	if _, err := des.Run(reqs, iterFlush); err != nil {
		t.Fatal(err)
	}
	simTr.Close()
	simulated := simTr.Requests()

	if len(live) != n || len(simulated) != n {
		t.Fatalf("assembled %d live / %d sim requests, want %d each", len(live), len(simulated), n)
	}
	for i := range live {
		lv, sv := live[i], simulated[i]
		if lv.ID != sv.ID {
			t.Fatalf("request %d: live ID %d vs sim ID %d", i, lv.ID, sv.ID)
		}
		if lv.Rejected || sv.Rejected {
			t.Fatalf("req %d rejected (live %v, sim %v) with no admission bound", lv.ID, lv.Rejected, sv.Rejected)
		}
		lvVisits, svVisits := lv.StageVisits(), sv.StageVisits()
		if len(lvVisits) != len(svVisits) {
			t.Fatalf("req %d visits: live %v vs sim %v", lv.ID, lvVisits, svVisits)
		}
		for j := range lvVisits {
			if lvVisits[j] != svVisits[j] {
				t.Fatalf("req %d visit %d: live %q vs sim %q (full: %v vs %v)",
					lv.ID, j, lvVisits[j], svVisits[j], lvVisits, svVisits)
			}
		}
		if len(lv.Stalls) != len(sv.Stalls) {
			t.Fatalf("req %d stall rounds: live %d vs sim %d", lv.ID, len(lv.Stalls), len(sv.Stalls))
		}
		for j := range lv.Stalls {
			if lv.Stalls[j].Round != sv.Stalls[j].Round {
				t.Fatalf("req %d stall %d round: live %d vs sim %d",
					lv.ID, j, lv.Stalls[j].Round, sv.Stalls[j].Round)
			}
		}
		if lv.Done <= 0 || sv.Done <= 0 {
			t.Fatalf("req %d unfinished: live done %g, sim done %g", lv.ID, lv.Done, sv.Done)
		}
	}

	// Both sides saw the §5.3 loop: every request parked once per
	// decode-initiated round.
	wantRounds := plan.Round.RoundsPerSeq
	if len(live[0].Stalls) != wantRounds {
		t.Fatalf("live stall rounds %d, want %d", len(live[0].Stalls), wantRounds)
	}
}

// TestObsBackpressureSlowSubscriber: a subscriber that never reads must
// cost the dataplane nothing but dropped events — the replay completes,
// the report's counts match a bus-free baseline, and every undelivered
// event shows up in the drop counters. Runs under -race in CI.
func TestObsBackpressureSlowSubscriber(t *testing.T) {
	pipe, prof, sched := caseISetup(t)
	plan, err := engine.Compile(pipe, sched, prof)
	if err != nil {
		t.Fatal(err)
	}
	const n = 600
	reqs, err := trace.Poisson(n, 1.5*plan.Metrics.QPS, 42)
	if err != nil {
		t.Fatal(err)
	}
	speedup := (float64(n) / plan.Metrics.QPS) / 2.0

	run := func(bus *obs.Bus) *Report {
		rt, err := New(pipe, prof, sched, Options{Speedup: speedup, Bus: bus})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := rt.Serve(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	base := run(nil)

	bus := obs.NewBus()
	stuck := bus.Subscribe(1) // one-slot buffer, never read
	rep := run(bus)

	if rep.Completed != base.Completed || rep.Rejected != base.Rejected || rep.Admitted != base.Admitted {
		t.Fatalf("slow subscriber changed the outcome: %d/%d/%d vs baseline %d/%d/%d",
			rep.Admitted, rep.Rejected, rep.Completed, base.Admitted, base.Rejected, base.Completed)
	}
	if ratio := rep.SustainedQPS / base.SustainedQPS; ratio < 0.6 || ratio > 1.67 {
		t.Errorf("slow subscriber shifted sustained QPS by %.2fx (%.2f vs %.2f)",
			ratio, rep.SustainedQPS, base.SustainedQPS)
	}
	published, dropped := bus.Stats()
	if published == 0 {
		t.Fatal("bus saw no events during an instrumented replay")
	}
	if dropped == 0 || stuck.Dropped() == 0 {
		t.Fatalf("stuck subscriber dropped nothing (bus %d, sub %d) — was the dataplane blocking on it?",
			dropped, stuck.Dropped())
	}
	// Everything that didn't fit its one-slot buffer is accounted for.
	if stuck.Dropped() < published-1 {
		t.Errorf("drop accounting leaks: published %d, sub dropped only %d", published, stuck.Dropped())
	}
	stuck.Close()
}

// TestObsWindowStreamAndSteadyQPS: with WindowEvery set the runtime
// streams tiling Window snapshots onto the bus, and the report's windowed
// SteadyQPS lands near (and is less dilutable than) the span-based rate.
func TestObsWindowStreamAndSteadyQPS(t *testing.T) {
	pipe, prof, sched := caseISetup(t)
	plan, err := engine.Compile(pipe, sched, prof)
	if err != nil {
		t.Fatal(err)
	}
	const n = 600
	reqs, err := trace.Poisson(n, 1.5*plan.Metrics.QPS, 42)
	if err != nil {
		t.Fatal(err)
	}
	speedup := (float64(n) / plan.Metrics.QPS) / 2.0
	every := (float64(n) / plan.Metrics.QPS) / 6.0 // ~6 windows over the replay

	bus := obs.NewBus()
	sub := bus.Subscribe(1 << 15)
	rt, err := New(pipe, prof, sched, Options{Speedup: speedup, Bus: bus, WindowEvery: every})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	sub.Close()

	var windows []Window
	lastN := 0
	for ev := range sub.Events() {
		if ev.Kind != obs.KindWindow {
			continue
		}
		w, ok := ev.Payload.(Window)
		if !ok {
			t.Fatalf("window event payload is %T, not serve.Window", ev.Payload)
		}
		if ev.N <= lastN {
			t.Fatalf("window sequence numbers not increasing: %d after %d", ev.N, lastN)
		}
		lastN = ev.N
		windows = append(windows, w)
	}
	if len(windows) < 2 {
		t.Fatalf("streamed %d window snapshots, want >= 2 (every %.2fs over the run)", len(windows), every)
	}
	var streamed int
	for _, w := range windows {
		streamed += w.Completions
	}
	if streamed == 0 {
		t.Fatal("no completions landed in any streamed window")
	}

	if rep.SteadyQPS <= 0 {
		t.Fatalf("SteadyQPS %g after %d completions", rep.SteadyQPS, rep.Completed)
	}
	if rep.SteadyQPS < 0.5*rep.SustainedQPS || rep.SteadyQPS > 3*rep.SustainedQPS {
		t.Errorf("SteadyQPS %.2f implausible against sustained %.2f", rep.SteadyQPS, rep.SustainedQPS)
	}
}

// TestObsSimSteadyQPS: the simulator's report carries the same windowed
// rate, and it agrees with the live runtime's within the usual tower
// tolerance.
func TestObsSimSteadyQPS(t *testing.T) {
	pipe, prof, sched := caseISetup(t)
	plan, err := engine.Compile(pipe, sched, prof)
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	reqs, err := trace.Poisson(n, 1.5*plan.Metrics.QPS, 42)
	if err != nil {
		t.Fatal(err)
	}
	des, err := sim.NewServeFromPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	res, err := des.Run(reqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.SteadyQPS <= 0 {
		t.Fatalf("sim SteadyQPS %g after %d completions", res.SteadyQPS, res.Completed)
	}
	if res.SteadyQPS < 0.5*res.QPS || res.SteadyQPS > 3*res.QPS {
		t.Errorf("sim SteadyQPS %.2f implausible against span QPS %.2f", res.SteadyQPS, res.QPS)
	}
}
