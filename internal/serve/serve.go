// Package serve executes RAGO schedules for real: it turns a compiled
// execution plan (internal/engine) straight out of the optimizer into a
// concurrent, goroutine-based serving runtime and replays open-loop
// request traces through it under wall-clock pacing.
//
// The engine mirrors the structure the plan describes. Every XPU
// placement group becomes one serial batching worker that time-multiplexes
// its collocated stages (oldest-waiting-head first, like the discrete-event
// validator); each retrieval tier becomes its own batching worker that can
// additionally run real batched IVF-PQ queries against the
// internal/vectordb substrate on the serving path; the decode tier is a
// pool of continuous-batching slots implemented as a bounded channel of
// slot leases. On iterative plans (§5.3) decode slots run the decode loop
// live: sequences park at their trigger positions while iterative
// retrieval+prefix rounds batch — at the schedule's IterativeBatch, as
// virtual stage slots on the same serial workers the initial pass uses —
// then resume, accumulating the measured stall the analytical fixed
// point prices. Requests traverse the pipeline's stage graph: fan-out
// branches run concurrently across workers and a join stage admits a
// request only once its last predecessor finishes (an atomic countdown per
// stage), so multi-source pipelines serve through the same data plane as
// linear chains. Tiers are connected by bounded channels sized by the
// admission bound times the stages a worker serves, so the whole data
// plane is allocation-bounded: admission control sheds arrivals once
// MaxInFlight requests are in the system, which in turn guarantees no
// internal channel send can block and no cross-tier cycle can deadlock.
//
// Pacing uses a virtual clock: one virtual second is Speedup wall seconds
// compressed. Stage service times come from the compiled plan (partial
// batches re-profiled through the memoizing stageperf.Profiler) and are
// slept for in wall time, but timestamps advance on a drift-free ledger —
// each resource's next batch starts at max(busyUntil, batch-formable time),
// both exact virtual quantities — so measured saturation throughput
// reflects the schedule, not OS timer jitter, while the concurrency
// (channels, goroutines, shared indexes) is entirely real and race-tested.
//
// Two front ends drive the same data plane. Runtime executes one plan for
// one trace. Server executes a sequence of plans: Switch hot-swaps it onto
// a new compiled plan with drain-and-migrate semantics — in-flight
// requests finish on the old plan's workers while new admissions route to
// the new plan's — which is what the SLO-aware controller in
// internal/control drives. Both publish windowed telemetry (Telemetry)
// that can be polled mid-replay.
package serve

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"rago/internal/cache"
	"rago/internal/engine"
	"rago/internal/obs"
	"rago/internal/perf"
	"rago/internal/pipeline"
	"rago/internal/retrieval"
	"rago/internal/stageperf"
	"rago/internal/trace"
	"rago/internal/vectordb"
)

// SearchFunc executes one batch of real vector-search queries on the
// retrieval serving path (e.g. a closure over vectordb.IVFPQ.SearchBatch).
// It runs concurrently with the modeled retrieval latency; its wall time is
// reported so the substrate can be compared against the analytical model.
type SearchFunc func(queries [][]float32) ([][]vectordb.Result, error)

// Options configures a Runtime or Server.
type Options struct {
	// Speedup compresses time: one virtual second of schedule latency is
	// served in 1/Speedup wall seconds. 0 means 1 (real time); negative
	// values are rejected.
	Speedup float64
	// FlushTimeout is how long (virtual seconds) a partially filled batch
	// may wait before dispatching anyway. 0 means the 0.05 s default; any
	// negative value dispatches partial batches immediately (what
	// unloaded-latency measurements want).
	FlushTimeout float64
	// MaxInFlight is the admission bound: arrivals finding this many
	// requests already in the system are rejected (open-loop shedding).
	// 0 admits the whole trace; negative values are rejected.
	MaxInFlight int
	// Bus, when set, receives typed observability events for the run —
	// request admit/reject, stage enqueue/start/finish, decode slot
	// lease/park/resume/finish, plan-switch begin/commit/drain, and
	// (with WindowEvery) streamed Window snapshots. A nil Bus, or one
	// with no subscriber attached, keeps every instrumentation site on
	// its zero-cost fast path; subscribers are bounded and drop-counted,
	// so no consumer can ever stall the dataplane.
	Bus *obs.Bus
	// WindowEvery streams a Telemetry window snapshot (width WindowEvery,
	// so consecutive snapshots tile the run) onto Bus every WindowEvery
	// virtual seconds while Serve runs. 0 disables the stream; negative
	// values are rejected.
	WindowEvery float64
	// Cache, when set, is the retrieved-context reuse cache
	// (internal/cache) this engine consults: the prefix tier at batch
	// formation (tagged requests prefill only their uncached suffix, at
	// the discounted shaped cost) and the answer tier at admission (an
	// exact-match hit completes the request immediately). A nil Cache
	// keeps every hot path on the historical no-cache behaviour —
	// untagged traces are bit-identical either way. Executors being
	// cross-checked against each other should each own their own
	// instance, so their hit sequences stay independent.
	Cache *cache.Cache
	// Searcher, when set, runs real vector search per retrieval batch.
	Searcher SearchFunc
	// Sharded, when set, runs each retrieval batch through the real
	// sharded scatter-gather instead of a flat Searcher: per-shard top-k
	// on a healthy replica of every consulted shard (round-robin with
	// failure fallback), merged exactly. The compiled schedule's NProbe
	// and ShardFanout knobs drive the probe count and fanout, and the
	// batch emits shard-scatter/gather/fallback events on Bus. Mutually
	// exclusive with Searcher; requires QueryDim.
	Sharded *vectordb.Sharded
	// SearchK is the per-query neighbor count for Sharded (0 means 10,
	// the recall@10 evaluation point).
	SearchK int
	// QueryDim is the dimensionality of synthesized queries for Searcher.
	QueryDim int
	// QuerySeed makes synthesized query batches deterministic.
	QuerySeed int64
}

// searchOn reports whether a real retrieval substrate is configured.
func (o Options) searchOn() bool { return o.Searcher != nil || o.Sharded != nil }

// validate rejects nonsensical options with a descriptive error instead of
// silently mapping them to defaults.
func (o Options) validate() error {
	if o.Speedup < 0 {
		return fmt.Errorf("serve: Speedup must be non-negative (0 means real time), got %g", o.Speedup)
	}
	if o.MaxInFlight < 0 {
		return fmt.Errorf("serve: MaxInFlight must be non-negative (0 admits everything), got %d", o.MaxInFlight)
	}
	if o.WindowEvery < 0 {
		return fmt.Errorf("serve: WindowEvery must be non-negative (0 disables the window stream), got %g", o.WindowEvery)
	}
	if o.WindowEvery > 0 && o.Bus == nil {
		return fmt.Errorf("serve: WindowEvery without a Bus has nowhere to stream")
	}
	if o.searchOn() && o.QueryDim < 1 {
		return fmt.Errorf("serve: Searcher requires a positive QueryDim")
	}
	if o.Searcher != nil && o.Sharded != nil {
		return fmt.Errorf("serve: Searcher and Sharded are mutually exclusive")
	}
	if o.SearchK < 0 {
		return fmt.Errorf("serve: SearchK must be non-negative (0 means 10), got %d", o.SearchK)
	}
	return nil
}

func (o Options) withDefaults() Options {
	if o.Speedup == 0 {
		o.Speedup = 1
	}
	switch {
	case o.FlushTimeout == 0:
		o.FlushTimeout = 0.05
	case o.FlushTimeout < 0:
		o.FlushTimeout = 0
	}
	return o
}

// request is one in-flight trace entry traversing the stage graph.
type request struct {
	id      int
	arrival float64 // virtual
	// pending counts unfinished predecessors per stage; the goroutine
	// that decrements a stage's count to zero owns the hand-off.
	pending []atomic.Int32
	// enqV records the virtual time the request entered each stage's
	// queue (virtual iterative slots included). Pipeline slots are
	// written exactly once, before the channel send that publishes them
	// to the reading worker; the iterative slots are rewritten per
	// round, always by the goroutine about to publish the request.
	enqV     []float64
	ttft     float64
	decStart float64

	// promptTok and outTok are the request's sequence shape (0 = schema
	// constant): prefix batches are costed at their members' padded
	// maximum and the decode slot is held for the request's own output
	// length.
	promptTok int
	outTok    int

	// chunkIDs are the retrieved document chunks the prompt is built from
	// — the prefix/KV cache key. Empty requests bypass the cache.
	chunkIDs []int

	// Iterative decode-loop state (nil/zero on single-retrieval plans).
	// triggers are the decode token positions the sequence parks at;
	// resume carries the virtual time each round finished back to the
	// parked decode goroutine (buffered: one round in flight at a time);
	// stall accumulates the total parked seconds.
	triggers []int
	resume   chan float64
	parkedV  float64
	stall    float64
}

// item is one unit of inbox work: a request ready at one stage.
type item struct {
	q   *request
	idx int // pipeline stage index
}

// dataplane is the per-plan concurrent execution fabric: the batching
// workers, decode slot pool, and bounded channels executing one compiled
// plan. A Runtime owns exactly one; a Server owns one per epoch, all
// sharing the clock and the metrics collector, so in-flight requests keep
// draining on a retired plan's workers while a newer dataplane admits.
type dataplane struct {
	plan  *engine.Plan
	opts  Options
	clock clock
	coll  *collector

	// bus is the observability event sink; slotName/slotTrack precompute
	// the stable per-slot span names so hot-path publishes allocate
	// nothing (both nil when no bus is configured — every publish site
	// guards on bus.Active()).
	bus       *obs.Bus
	slotName  []string
	slotTrack []string

	resources []*resource
	decode    *decodeTier
	quit      chan struct{}
	stopOnce  sync.Once

	// inflight counts requests admitted to this dataplane and not yet
	// completed; the owner uses it for admission control and (Server)
	// drain detection.
	inflight atomic.Int64

	// shapedAny flips once any admitted request carries an explicit
	// shape; while false, workers skip per-batch shape aggregation
	// entirely (the common constant-shape fast path). The store in
	// newRequest happens before the channel send publishing the request,
	// so a worker batching a shaped request always observes true.
	// taggedAny is the same latch for retrieved-chunk tags: with it false
	// (or no cache configured) prefix workers never consult the cache.
	shapedAny atomic.Bool
	taggedAny atomic.Bool

	// cache is the reuse cache (nil = caching off); cacheOn precomputes
	// whether its prefix tier is enabled, so the batcher's dispatch path
	// pays one bool load.
	cache   *cache.Cache
	cacheOn bool

	// arena slab-allocates the per-request bookkeeping (request structs,
	// pending counters, enqueue-time vectors): three allocations per
	// arenaSlab admissions instead of three per request. newRequest is
	// only ever called from the owner's sequential replay goroutine, so
	// the arena needs no lock.
	arena reqArena

	// onComplete retires a finished request with the owner (WaitGroup,
	// drain bookkeeping). onSearchErr records a real-retrieval failure.
	onComplete  func(q *request, done float64)
	onSearchErr func(error)
}

// newDataplane builds the workers and channels for one plan. bound is the
// in-flight admission bound; channel capacity is bound times the stages a
// worker serves, so no send in the data plane can ever block: a request
// occupies at most one slot per member stage (fan-out branches can queue a
// request at several stages of one worker concurrently).
func newDataplane(plan *engine.Plan, opts Options, ck clock, coll *collector, bound int,
	onComplete func(*request, float64), onSearchErr func(error)) *dataplane {
	dp := &dataplane{
		plan:        plan,
		opts:        opts,
		clock:       ck,
		coll:        coll,
		bus:         opts.Bus,
		cache:       opts.Cache,
		cacheOn:     opts.Cache.PrefixOn(),
		quit:        make(chan struct{}),
		onComplete:  onComplete,
		onSearchErr: onSearchErr,
	}
	if dp.bus != nil {
		dp.slotName = plan.SlotNames()
		dp.slotTrack = plan.TrackNames()
	}
	for ri, res := range plan.Resources {
		// ResourceStages appends the decode loop's virtual round slots
		// to their owning resources, so round batches contend with (and
		// are picked against) the regular stages on the same worker.
		r := newResource(dp, res.Name, plan.ResourceStages(ri))
		r.inbox = make(chan item, bound*len(r.stages))
		dp.resources = append(dp.resources, r)
	}
	dp.decode = &decodeTier{
		dp:        dp,
		outTokens: plan.Steps[plan.DecodeIdx].Stage.OutTokens,
		round:     plan.Round,
	}
	dp.decode.start(bound)
	return dp
}

// reqArena holds the slabs newRequest carves per-request bookkeeping out
// of. Slabs are never recycled — requests keep their slices until they
// retire — so this is purely allocation batching, with no lifetime hazard.
type reqArena struct {
	reqs    []request
	pending []atomic.Int32
	enqV    []float64
}

// arenaSlab is how many requests one slab serves.
const arenaSlab = 256

// newRequest builds the per-request bookkeeping for this dataplane's plan,
// synthesizing deterministic trigger positions (seeded by the request ID)
// when an iterative plan's trace entry carries none. Called only from the
// owner's sequential replay goroutine (see reqArena).
func (dp *dataplane) newRequest(r trace.Request) *request {
	nSteps, nSlots := len(dp.plan.Steps), dp.plan.NumSlots()
	a := &dp.arena
	if len(a.reqs) == 0 {
		a.reqs = make([]request, arenaSlab)
	}
	if len(a.pending) < nSteps {
		a.pending = make([]atomic.Int32, arenaSlab*nSteps)
	}
	if len(a.enqV) < nSlots {
		a.enqV = make([]float64, arenaSlab*nSlots)
	}
	q := &a.reqs[0]
	a.reqs = a.reqs[1:]
	q.pending, a.pending = a.pending[:nSteps:nSteps], a.pending[nSteps:]
	q.enqV, a.enqV = a.enqV[:nSlots:nSlots], a.enqV[nSlots:]
	q.id = r.ID
	q.arrival = r.Arrival
	q.promptTok = r.PromptTokens
	q.outTok = r.OutputTokens
	q.chunkIDs = r.ChunkIDs
	if r.Shaped() && !dp.shapedAny.Load() {
		dp.shapedAny.Store(true)
	}
	if r.Tagged() && !dp.taggedAny.Load() {
		dp.taggedAny.Store(true)
	}
	if dp.plan.Round != nil {
		q.resume = make(chan float64, 1)
		q.triggers = r.Triggers
		if q.triggers == nil {
			out := dp.decode.outTokens
			if q.outTok > 0 {
				out = q.outTok
			}
			q.triggers = trace.TriggersFor(r.ID, dp.plan.Round.RoundsPerSeq, out)
		}
	}
	return q
}

// launch starts the worker goroutines.
func (dp *dataplane) launch() {
	for _, r := range dp.resources {
		go r.run()
	}
	go dp.decode.run()
}

// stop shuts the workers down. Idempotent; safe once no request is
// in flight on this dataplane.
func (dp *dataplane) stop() {
	dp.stopOnce.Do(func() { close(dp.quit) })
}

// admit registers a request arriving at virtual time at and routes it to
// the plan's entry stages. The caller has already accounted it in
// dp.inflight (so drain detection cannot race admission). An exact-match
// answer-cache hit short-circuits the whole pipeline: the request
// completes at its arrival instant without touching any worker.
func (dp *dataplane) admit(q *request, at float64) {
	if dp.cache.AnswerOn() && len(q.chunkIDs) > 0 &&
		dp.cache.AnswerLookup(q.chunkIDs, q.promptTok, q.outTok) {
		if dp.bus.Active() {
			dp.bus.Publish(obs.Event{Kind: obs.KindCacheAnswerHit, T: at, Req: q.id})
		}
		dp.coll.complete(0, 0, 0, at, 0, q.promptTok, q.outTok)
		dp.inflight.Add(-1)
		dp.onComplete(q, at)
		return
	}
	for st, ps := range dp.plan.Preds {
		q.pending[st].Store(int32(len(ps)))
	}
	for _, e := range dp.plan.Entries {
		q.enqV[e] = at
		dp.submit(q, e)
	}
}

// submit routes a request, ready at stage idx (real or virtual), to the
// owning worker.
func (dp *dataplane) submit(q *request, idx int) {
	if dp.bus.Active() {
		dp.bus.Publish(obs.Event{Kind: obs.KindEnqueue, T: q.enqV[idx], Req: q.id,
			Slot: idx, Stage: dp.slotName[idx], Track: dp.slotTrack[idx]})
	}
	if st := dp.plan.StepAt(idx); st.Resource >= 0 {
		dp.resources[st.Resource].inbox <- item{q, idx}
		return
	}
	dp.coll.enqueued(dp.plan.DecodeIdx, len(dp.decode.inbox)+1)
	dp.decode.inbox <- q
}

// advance moves a request past stage idx, which completed at virtual
// time t: successors whose last predecessor this was become ready. The
// iterative round's virtual slots chain outside the stage graph: the
// retrieval half feeds the prefix half, and the prefix half hands the
// finish time back to the parked decode goroutine.
func (dp *dataplane) advance(q *request, idx int, t float64) {
	if dp.plan.Round != nil {
		switch idx {
		case dp.plan.IterRetrievalSlot():
			q.enqV[dp.plan.IterPrefixSlot()] = t
			dp.submit(q, dp.plan.IterPrefixSlot())
			return
		case dp.plan.IterPrefixSlot():
			q.resume <- t
			return
		}
	}
	if idx == dp.plan.PrefixIdx {
		q.ttft = t - q.arrival
	}
	for _, succ := range dp.plan.Succs[idx] {
		if q.pending[succ].Add(-1) == 0 {
			q.enqV[succ] = t
			dp.submit(q, succ)
		}
	}
}

// complete retires a fully generated request.
func (dp *dataplane) complete(q *request, done float64) {
	out := dp.plan.Steps[dp.plan.DecodeIdx].Stage.OutTokens
	if q.outTok > 0 {
		out = q.outTok
	}
	tpot := 0.0
	if out > 0 {
		tpot = (done - q.decStart) / float64(out)
	}
	dp.coll.release(dp.plan.DecodeIdx, 1)
	dp.coll.complete(q.ttft, tpot, done-q.arrival, done, q.stall, q.promptTok, q.outTok)
	if dp.cache.AnswerOn() && len(q.chunkIDs) > 0 {
		dp.cache.AnswerStore(q.chunkIDs, q.promptTok, q.outTok)
	}
	dp.inflight.Add(-1)
	dp.onComplete(q, done)
}

// searchResult is one retrieval batch's real-substrate outcome: the error
// (if any) plus the sharded scatter-gather's fallback bookkeeping — how
// many replica picks skipped unhealthy replicas, and how many consulted
// shards had to be dropped from the merge with every replica down.
type searchResult struct {
	err      error
	fellBack int
	lost     int
}

// runSearch synthesizes the batch's query vectors and executes them against
// the real retrieval substrate, concurrently with the modeled pacing.
func (dp *dataplane) runSearch(batch []*request, done chan<- searchResult) {
	qpr := dp.plan.Pipe.Schema.QueriesPerRetrieval
	if qpr < 1 {
		qpr = 1
	}
	rng := rand.New(rand.NewSource(dp.opts.QuerySeed + int64(batch[0].id)))
	queries := make([][]float32, 0, len(batch)*qpr)
	for range batch {
		for j := 0; j < qpr; j++ {
			v := make([]float32, dp.opts.QueryDim)
			for d := range v {
				v[d] = rng.Float32() * 10
			}
			queries = append(queries, v)
		}
	}
	start := time.Now()
	var res searchResult
	if sh := dp.opts.Sharded; sh != nil {
		k := dp.opts.SearchK
		if k == 0 {
			k = 10
		}
		np := dp.plan.Sched.NProbe
		if np <= 0 {
			// Knob off means the tier's base configuration, same as the
			// analytic cost model's DB.Tuned.
			np = retrieval.BaseNProbe
		}
		infos := make([]vectordb.ShardQuery, len(queries))
		_, err := sh.SearchBatch(queries, k, np, dp.plan.Sched.ShardFanout, infos)
		res.err = err
		for _, info := range infos {
			if info.FellBack {
				res.fellBack++
			}
			res.lost += info.Lost
		}
	} else {
		_, res.err = dp.opts.Searcher(queries)
	}
	dp.coll.searchServed(len(queries), time.Since(start).Seconds())
	if res.fellBack > 0 || res.lost > 0 {
		dp.coll.shardDegraded(res.fellBack, res.lost)
	}
	done <- res
}

// Runtime is a live serving engine for one compiled plan: the
// single-plan facade over Server (one epoch, never switched, analytical
// reference attached). It is single-use: build, Serve one trace, read
// the Report.
type Runtime struct {
	plan *engine.Plan
	srv  *Server
}

// New compiles (pipeline, schedule) through the shared engine and builds
// a runtime executing the resulting plan. Negative Options are rejected
// (NewServer's validation), as are plans the engine cannot execute live
// (Executable).
func New(pipe pipeline.Pipeline, prof *stageperf.Profiler, sched engine.Schedule, opts Options) (*Runtime, error) {
	plan, err := engine.Compile(pipe, sched, prof)
	if err != nil {
		return nil, err
	}
	srv, err := NewServer(plan, opts)
	if err != nil {
		return nil, err
	}
	return &Runtime{plan: plan, srv: srv}, nil
}

// Executable reports whether the serving engine can execute plans of this
// compiled plan's shape, with a descriptive error naming the schema when
// it cannot. Every schema the engine compiles today is servable —
// iterative decode loops included — so this only rejects structurally
// incomplete plans (an iterative schema whose plan carries no round
// structure, which engine.Compile never produces but hand-built plans
// could).
func Executable(plan *engine.Plan) error {
	if plan == nil {
		return fmt.Errorf("serve: nil plan")
	}
	if plan.Pipe.Schema.Iterative() && plan.Round == nil {
		return fmt.Errorf("serve: schema %q is iterative but its plan carries no decode-loop round structure; compile it through engine.Compile",
			plan.Pipe.Schema.Name)
	}
	return nil
}

// Plan returns the compiled execution plan the runtime executes.
func (rt *Runtime) Plan() *engine.Plan { return rt.plan }

// Analytic returns the assembled analytical metrics of the plan (the
// reference the measured report is compared against).
func (rt *Runtime) Analytic() (perf.Metrics, bool) { return rt.plan.Metrics, true }

// Serve replays the trace through the live engine and blocks until every
// request has completed or been rejected. Arrival times are virtual
// seconds; they are paced in wall time at the configured Speedup.
func (rt *Runtime) Serve(reqs []trace.Request) (*Report, error) {
	rep, err := rt.srv.Serve(reqs)
	if rep == nil {
		return nil, err
	}
	return &rep.Report, err
}

// Telemetry snapshots the sliding-window serving metrics over the trailing
// window virtual seconds. It is safe to call concurrently with Serve, at
// any time; before Serve starts it returns the zero Window.
func (rt *Runtime) Telemetry(window float64) Window { return rt.srv.Telemetry(window) }

// clock maps virtual schedule time onto compressed wall time.
type clock struct {
	start   time.Time
	speedup float64
}

func newClock(speedup float64) clock { return clock{start: time.Now(), speedup: speedup} }

// now returns the current virtual time.
func (c clock) now() float64 { return time.Since(c.start).Seconds() * c.speedup }

// wallAt returns the wall-clock instant of virtual time v.
func (c clock) wallAt(v float64) time.Time {
	return c.start.Add(time.Duration(v / c.speedup * float64(time.Second)))
}

// sleepUntil blocks until virtual time v has passed.
func (c clock) sleepUntil(v float64) {
	if d := time.Until(c.wallAt(v)); d > 0 {
		time.Sleep(d)
	}
}

// maxf is a float64 max without the math import ceremony at call sites.
func maxf(a, b float64) float64 { return math.Max(a, b) }
