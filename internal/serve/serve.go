// Package serve executes RAGO schedules for real: it turns a core.Schedule
// straight out of the optimizer into a concurrent, goroutine-based serving
// runtime and replays open-loop request traces through it under wall-clock
// pacing.
//
// The engine mirrors the structure the schedule describes. Every XPU
// placement group becomes one serial batching worker that time-multiplexes
// its collocated stages (oldest-waiting-head first, like the discrete-event
// validator); the retrieval tier becomes its own batching worker that can
// additionally run real batched IVF-PQ queries against the
// internal/vectordb substrate on the serving path; the decode tier is a
// pool of continuous-batching slots implemented as a bounded channel of
// slot leases. Tiers are connected by bounded channels sized by the
// admission bound, so the whole data plane is allocation-bounded:
// admission control sheds arrivals once MaxInFlight requests are in the
// system, which in turn guarantees no internal channel send can block and
// no cross-tier cycle (a group hosting stages on both sides of retrieval)
// can deadlock.
//
// Pacing uses a virtual clock: one virtual second is Speedup wall seconds
// compressed. Stage service times come from stageperf.Profiler and are
// slept for in wall time, but timestamps advance on a drift-free ledger —
// each resource's next batch starts at max(busyUntil, batch-formable time),
// both exact virtual quantities — so measured saturation throughput
// reflects the schedule, not OS timer jitter, while the concurrency
// (channels, goroutines, shared indexes) is entirely real and race-tested.
package serve

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"rago/internal/core"
	"rago/internal/perf"
	"rago/internal/pipeline"
	"rago/internal/stageperf"
	"rago/internal/trace"
	"rago/internal/vectordb"
)

// SearchFunc executes one batch of real vector-search queries on the
// retrieval serving path (e.g. a closure over vectordb.IVFPQ.SearchBatch).
// It runs concurrently with the modeled retrieval latency; its wall time is
// reported so the substrate can be compared against the analytical model.
type SearchFunc func(queries [][]float32) ([][]vectordb.Result, error)

// Options configures a Runtime.
type Options struct {
	// Speedup compresses time: one virtual second of schedule latency is
	// served in 1/Speedup wall seconds. 0 means 1 (real time).
	Speedup float64
	// FlushTimeout is how long (virtual seconds) a partially filled batch
	// may wait before dispatching anyway. 0 means the 0.05 s default; any
	// negative value dispatches partial batches immediately (what
	// unloaded-latency measurements want).
	FlushTimeout float64
	// MaxInFlight is the admission bound: arrivals finding this many
	// requests already in the system are rejected (open-loop shedding).
	// 0 admits the whole trace.
	MaxInFlight int
	// Searcher, when set, runs real vector search per retrieval batch.
	Searcher SearchFunc
	// QueryDim is the dimensionality of synthesized queries for Searcher.
	QueryDim int
	// QuerySeed makes synthesized query batches deterministic.
	QuerySeed int64
}

func (o Options) withDefaults() Options {
	if o.Speedup <= 0 {
		o.Speedup = 1
	}
	switch {
	case o.FlushTimeout == 0:
		o.FlushTimeout = 0.05
	case o.FlushTimeout < 0:
		o.FlushTimeout = 0
	}
	return o
}

// step describes how one pipeline stage executes under the schedule.
type step struct {
	stage    pipeline.Stage
	resource int // index into Runtime.resources; -1 for the decode tier
	batch    int
	latency  float64 // service time for a full batch (virtual seconds)
}

// request is one in-flight trace entry.
type request struct {
	id       int
	arrival  float64 // virtual
	enqV     float64 // virtual time it entered its current stage queue
	pos      int     // index of the NEXT pipeline stage to run
	ttft     float64
	decStart float64
}

// Runtime is a live serving engine for one (pipeline, schedule) pair. It is
// single-use: build, Serve one trace, read the Report.
type Runtime struct {
	pipe     pipeline.Pipeline
	prof     *stageperf.Profiler
	sched    core.Schedule
	opts     Options
	analytic perf.Metrics
	hasAnaly bool

	steps     []step
	decIdx    int
	prefixIdx int

	resources []*resource
	decode    *decodeTier
	clock     clock
	coll      collector
	quit      chan struct{}
	wg        sync.WaitGroup

	inflight    atomic.Int64
	maxInflight int64
	served      atomic.Bool

	searchMu  sync.Mutex
	searchErr error
}

// New builds a runtime for a validated (pipeline, schedule) pair.
// Iterative-retrieval workloads are not executable by this engine yet (the
// §5.3 decode-loop dynamics live in sim.RunIterative) and are rejected.
func New(pipe pipeline.Pipeline, prof *stageperf.Profiler, sched core.Schedule, opts Options) (*Runtime, error) {
	if pipe.Schema.Iterative() {
		return nil, fmt.Errorf("serve: iterative-retrieval workloads are not executable; use sim.RunIterative")
	}
	if err := sched.Validate(pipe); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if opts.Searcher != nil && opts.QueryDim < 1 {
		return nil, fmt.Errorf("serve: Searcher requires a positive QueryDim")
	}
	rt := &Runtime{
		pipe:  pipe,
		prof:  prof,
		sched: sched,
		opts:  opts,
		steps: make([]step, len(pipe.Stages)),
	}
	for gi, g := range sched.Groups {
		for i, idx := range g.Stages {
			pt := prof.EvalR(pipe.Stages[idx], g.Chips, g.Batch, g.ReplicasFor(i))
			if !pt.OK {
				return nil, fmt.Errorf("serve: stage %v infeasible under schedule", pipe.Stages[idx].Kind)
			}
			rt.steps[idx] = step{stage: pipe.Stages[idx], resource: gi, batch: g.Batch, latency: pt.Latency}
		}
		rt.resources = append(rt.resources, newResource(rt, fmt.Sprintf("group%d", gi), g.Stages))
	}
	if retrIdx := pipe.Index(pipeline.KindRetrieval); retrIdx >= 0 {
		pt := prof.Eval(pipe.Stages[retrIdx], sched.RetrievalServers, sched.RetrievalBatch)
		if !pt.OK {
			return nil, fmt.Errorf("serve: retrieval infeasible under schedule")
		}
		rt.steps[retrIdx] = step{
			stage:    pipe.Stages[retrIdx],
			resource: len(rt.resources),
			batch:    sched.RetrievalBatch,
			latency:  pt.Latency + prof.RetrievalTransferLatency(),
		}
		rt.resources = append(rt.resources, newResource(rt, "retrieval", []int{retrIdx}))
	}
	rt.decIdx = pipe.Index(pipeline.KindDecode)
	rt.prefixIdx = pipe.Index(pipeline.KindPrefix)
	dec := prof.EvalR(pipe.Stages[rt.decIdx], sched.DecodeChips, sched.DecodeBatch, sched.DecodeReplicasOrOne())
	if !dec.OK {
		return nil, fmt.Errorf("serve: decode infeasible under schedule")
	}
	rt.steps[rt.decIdx] = step{stage: pipe.Stages[rt.decIdx], resource: -1, batch: sched.DecodeBatch, latency: dec.Latency}
	rt.decode = &decodeTier{rt: rt, latency: dec.Latency}
	if m, ok := (&core.Assembler{Pipe: pipe, Prof: prof}).Evaluate(sched); ok {
		rt.analytic, rt.hasAnaly = m, true
	}
	return rt, nil
}

// Analytic returns the assembled analytical metrics of the schedule (the
// reference the measured report is compared against); false when the
// assembler deems the schedule infeasible.
func (rt *Runtime) Analytic() (perf.Metrics, bool) { return rt.analytic, rt.hasAnaly }

// Serve replays the trace through the live engine and blocks until every
// request has completed or been rejected. Arrival times are virtual
// seconds; they are paced in wall time at the configured Speedup.
func (rt *Runtime) Serve(reqs []trace.Request) (*Report, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("serve: empty trace")
	}
	if !rt.served.CompareAndSwap(false, true) {
		return nil, fmt.Errorf("serve: Runtime is single-use; build a new one per trace")
	}
	bound := rt.opts.MaxInFlight
	if bound <= 0 {
		bound = len(reqs)
	}
	rt.maxInflight = int64(bound)
	// Channel capacity equals the in-flight bound, so no send in the data
	// plane can ever block: a request occupies at most one channel slot.
	for _, r := range rt.resources {
		r.inbox = make(chan *request, bound)
	}
	rt.decode.start(bound)
	rt.quit = make(chan struct{})
	rt.coll.init(rt.pipe)
	rt.clock = newClock(rt.opts.Speedup)
	for _, r := range rt.resources {
		go r.run()
	}
	go rt.decode.run()
	rt.wg.Add(len(reqs))
	go rt.replay(reqs)
	rt.wg.Wait()
	close(rt.quit)
	rep := rt.coll.report(rt)
	rt.searchMu.Lock()
	err := rt.searchErr
	rt.searchMu.Unlock()
	return rep, err
}

// replay paces open-loop arrivals and applies admission control.
func (rt *Runtime) replay(reqs []trace.Request) {
	for i := range reqs {
		r := reqs[i]
		rt.clock.sleepUntil(r.Arrival)
		if rt.inflight.Load() >= rt.maxInflight {
			rt.coll.reject()
			rt.wg.Done()
			continue
		}
		rt.inflight.Add(1)
		rt.coll.admit()
		rt.submit(&request{id: r.ID, arrival: r.Arrival, enqV: r.Arrival})
	}
}

// submit routes a request to the resource owning its current stage.
func (rt *Runtime) submit(q *request) {
	if st := rt.steps[q.pos]; st.resource >= 0 {
		rt.resources[st.resource].inbox <- q
		return
	}
	rt.decode.inbox <- q
}

// advance moves a request past the stage that completed at virtual time t.
func (rt *Runtime) advance(q *request, t float64) {
	if q.pos == rt.prefixIdx {
		q.ttft = t - q.arrival
	}
	q.pos++
	q.enqV = t
	rt.submit(q)
}

// complete retires a fully generated request.
func (rt *Runtime) complete(q *request, done float64) {
	tpot := 0.0
	if out := rt.steps[rt.decIdx].stage.OutTokens; out > 0 {
		tpot = (done - q.decStart) / float64(out)
	}
	rt.coll.complete(q.ttft, tpot, done-q.arrival, done)
	rt.inflight.Add(-1)
	rt.wg.Done()
}

// runSearch synthesizes the batch's query vectors and executes them against
// the real retrieval substrate, concurrently with the modeled pacing.
func (rt *Runtime) runSearch(batch []*request, done chan<- error) {
	qpr := rt.pipe.Schema.QueriesPerRetrieval
	if qpr < 1 {
		qpr = 1
	}
	rng := rand.New(rand.NewSource(rt.opts.QuerySeed + int64(batch[0].id)))
	queries := make([][]float32, 0, len(batch)*qpr)
	for range batch {
		for j := 0; j < qpr; j++ {
			v := make([]float32, rt.opts.QueryDim)
			for d := range v {
				v[d] = rng.Float32() * 10
			}
			queries = append(queries, v)
		}
	}
	start := time.Now()
	_, err := rt.opts.Searcher(queries)
	rt.coll.searchServed(len(queries), time.Since(start).Seconds())
	done <- err
}

func (rt *Runtime) setSearchErr(err error) {
	rt.searchMu.Lock()
	if rt.searchErr == nil {
		rt.searchErr = err
	}
	rt.searchMu.Unlock()
}

// stageLatency returns the service time of stage idx at the actually formed
// batch size n (partial batches are re-profiled at their real size).
func (rt *Runtime) stageLatency(idx, n int) float64 {
	st := rt.steps[idx]
	if n == st.batch {
		return st.latency
	}
	if st.stage.Kind == pipeline.KindRetrieval {
		if pt := rt.prof.Eval(st.stage, rt.sched.RetrievalServers, n); pt.OK {
			return pt.Latency + rt.prof.RetrievalTransferLatency()
		}
		return st.latency
	}
	g := rt.sched.Groups[st.resource]
	for i, sidx := range g.Stages {
		if sidx != idx {
			continue
		}
		r := g.ReplicasFor(i)
		if r > n {
			r = n
		}
		if pt := rt.prof.EvalR(st.stage, g.Chips, n, r); pt.OK {
			return pt.Latency
		}
	}
	return st.latency
}

// clock maps virtual schedule time onto compressed wall time.
type clock struct {
	start   time.Time
	speedup float64
}

func newClock(speedup float64) clock { return clock{start: time.Now(), speedup: speedup} }

// now returns the current virtual time.
func (c clock) now() float64 { return time.Since(c.start).Seconds() * c.speedup }

// wallAt returns the wall-clock instant of virtual time v.
func (c clock) wallAt(v float64) time.Time {
	return c.start.Add(time.Duration(v / c.speedup * float64(time.Second)))
}

// sleepUntil blocks until virtual time v has passed.
func (c clock) sleepUntil(v float64) {
	if d := time.Until(c.wallAt(v)); d > 0 {
		time.Sleep(d)
	}
}

// maxf is a float64 max without the math import ceremony at call sites.
func maxf(a, b float64) float64 { return math.Max(a, b) }
