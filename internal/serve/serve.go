// Package serve executes RAGO schedules for real: it turns a compiled
// execution plan (internal/engine) straight out of the optimizer into a
// concurrent, goroutine-based serving runtime and replays open-loop
// request traces through it under wall-clock pacing.
//
// The engine mirrors the structure the plan describes. Every XPU
// placement group becomes one serial batching worker that time-multiplexes
// its collocated stages (oldest-waiting-head first, like the discrete-event
// validator); each retrieval tier becomes its own batching worker that can
// additionally run real batched IVF-PQ queries against the
// internal/vectordb substrate on the serving path; the decode tier is a
// pool of continuous-batching slots implemented as a bounded channel of
// slot leases. Requests traverse the pipeline's stage graph: fan-out
// branches run concurrently across workers and a join stage admits a
// request only once its last predecessor finishes (an atomic countdown per
// stage), so multi-source pipelines serve through the same data plane as
// linear chains. Tiers are connected by bounded channels sized by the
// admission bound times the stages a worker serves, so the whole data
// plane is allocation-bounded: admission control sheds arrivals once
// MaxInFlight requests are in the system, which in turn guarantees no
// internal channel send can block and no cross-tier cycle can deadlock.
//
// Pacing uses a virtual clock: one virtual second is Speedup wall seconds
// compressed. Stage service times come from the compiled plan (partial
// batches re-profiled through the memoizing stageperf.Profiler) and are
// slept for in wall time, but timestamps advance on a drift-free ledger —
// each resource's next batch starts at max(busyUntil, batch-formable time),
// both exact virtual quantities — so measured saturation throughput
// reflects the schedule, not OS timer jitter, while the concurrency
// (channels, goroutines, shared indexes) is entirely real and race-tested.
package serve

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"rago/internal/engine"
	"rago/internal/perf"
	"rago/internal/pipeline"
	"rago/internal/stageperf"
	"rago/internal/trace"
	"rago/internal/vectordb"
)

// SearchFunc executes one batch of real vector-search queries on the
// retrieval serving path (e.g. a closure over vectordb.IVFPQ.SearchBatch).
// It runs concurrently with the modeled retrieval latency; its wall time is
// reported so the substrate can be compared against the analytical model.
type SearchFunc func(queries [][]float32) ([][]vectordb.Result, error)

// Options configures a Runtime.
type Options struct {
	// Speedup compresses time: one virtual second of schedule latency is
	// served in 1/Speedup wall seconds. 0 means 1 (real time).
	Speedup float64
	// FlushTimeout is how long (virtual seconds) a partially filled batch
	// may wait before dispatching anyway. 0 means the 0.05 s default; any
	// negative value dispatches partial batches immediately (what
	// unloaded-latency measurements want).
	FlushTimeout float64
	// MaxInFlight is the admission bound: arrivals finding this many
	// requests already in the system are rejected (open-loop shedding).
	// 0 admits the whole trace.
	MaxInFlight int
	// Searcher, when set, runs real vector search per retrieval batch.
	Searcher SearchFunc
	// QueryDim is the dimensionality of synthesized queries for Searcher.
	QueryDim int
	// QuerySeed makes synthesized query batches deterministic.
	QuerySeed int64
}

func (o Options) withDefaults() Options {
	if o.Speedup <= 0 {
		o.Speedup = 1
	}
	switch {
	case o.FlushTimeout == 0:
		o.FlushTimeout = 0.05
	case o.FlushTimeout < 0:
		o.FlushTimeout = 0
	}
	return o
}

// request is one in-flight trace entry traversing the stage graph.
type request struct {
	id      int
	arrival float64 // virtual
	// pending counts unfinished predecessors per stage; the goroutine
	// that decrements a stage's count to zero owns the hand-off.
	pending []atomic.Int32
	// enqV records the virtual time the request entered each stage's
	// queue. Each slot is written exactly once, before the channel send
	// that publishes it to the reading worker.
	enqV     []float64
	ttft     float64
	decStart float64
}

// item is one unit of inbox work: a request ready at one stage.
type item struct {
	q   *request
	idx int // pipeline stage index
}

// Runtime is a live serving engine for one compiled plan. It is
// single-use: build, Serve one trace, read the Report.
type Runtime struct {
	plan *engine.Plan
	opts Options

	resources []*resource
	decode    *decodeTier
	clock     clock
	coll      collector
	quit      chan struct{}
	wg        sync.WaitGroup

	inflight    atomic.Int64
	maxInflight int64
	served      atomic.Bool

	searchMu  sync.Mutex
	searchErr error
}

// New compiles (pipeline, schedule) through the shared engine and builds
// a runtime executing the resulting plan. Iterative-retrieval workloads
// are not executable by this engine yet (the §5.3 decode-loop dynamics
// live in sim.RunIterative) and are rejected.
func New(pipe pipeline.Pipeline, prof *stageperf.Profiler, sched engine.Schedule, opts Options) (*Runtime, error) {
	if pipe.Schema.Iterative() {
		return nil, fmt.Errorf("serve: iterative-retrieval workloads are not executable; use sim.RunIterative")
	}
	opts = opts.withDefaults()
	if opts.Searcher != nil && opts.QueryDim < 1 {
		return nil, fmt.Errorf("serve: Searcher requires a positive QueryDim")
	}
	plan, err := engine.Compile(pipe, sched, prof)
	if err != nil {
		return nil, err
	}
	rt := &Runtime{plan: plan, opts: opts}
	for _, res := range plan.Resources {
		rt.resources = append(rt.resources, newResource(rt, res.Name, res.Stages))
	}
	rt.decode = &decodeTier{rt: rt, latency: plan.Steps[plan.DecodeIdx].Latency}
	return rt, nil
}

// Plan returns the compiled execution plan the runtime executes.
func (rt *Runtime) Plan() *engine.Plan { return rt.plan }

// Analytic returns the assembled analytical metrics of the plan (the
// reference the measured report is compared against).
func (rt *Runtime) Analytic() (perf.Metrics, bool) { return rt.plan.Metrics, true }

// Serve replays the trace through the live engine and blocks until every
// request has completed or been rejected. Arrival times are virtual
// seconds; they are paced in wall time at the configured Speedup.
func (rt *Runtime) Serve(reqs []trace.Request) (*Report, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("serve: empty trace")
	}
	if !rt.served.CompareAndSwap(false, true) {
		return nil, fmt.Errorf("serve: Runtime is single-use; build a new one per trace")
	}
	bound := rt.opts.MaxInFlight
	if bound <= 0 {
		bound = len(reqs)
	}
	rt.maxInflight = int64(bound)
	// Channel capacity is the in-flight bound times the stages a worker
	// serves, so no send in the data plane can ever block: a request
	// occupies at most one slot per member stage (fan-out branches can
	// queue a request at several stages of one worker concurrently).
	for _, r := range rt.resources {
		r.inbox = make(chan item, bound*len(r.stages))
	}
	rt.decode.start(bound)
	rt.quit = make(chan struct{})
	rt.coll.init(rt.plan.Pipe)
	rt.clock = newClock(rt.opts.Speedup)
	for _, r := range rt.resources {
		go r.run()
	}
	go rt.decode.run()
	rt.wg.Add(len(reqs))
	go rt.replay(reqs)
	rt.wg.Wait()
	close(rt.quit)
	rep := rt.coll.report(rt)
	rt.searchMu.Lock()
	err := rt.searchErr
	rt.searchMu.Unlock()
	return rep, err
}

// replay paces open-loop arrivals and applies admission control.
func (rt *Runtime) replay(reqs []trace.Request) {
	nStages := len(rt.plan.Steps)
	for i := range reqs {
		r := reqs[i]
		rt.clock.sleepUntil(r.Arrival)
		if rt.inflight.Load() >= rt.maxInflight {
			rt.coll.reject()
			rt.wg.Done()
			continue
		}
		rt.inflight.Add(1)
		rt.coll.admit()
		q := &request{
			id:      r.ID,
			arrival: r.Arrival,
			pending: make([]atomic.Int32, nStages),
			enqV:    make([]float64, nStages),
		}
		for st, ps := range rt.plan.Preds {
			q.pending[st].Store(int32(len(ps)))
		}
		for _, e := range rt.plan.Entries {
			q.enqV[e] = r.Arrival
			rt.submit(q, e)
		}
	}
}

// submit routes a request, ready at stage idx, to the owning worker.
func (rt *Runtime) submit(q *request, idx int) {
	if st := rt.plan.Steps[idx]; st.Resource >= 0 {
		rt.resources[st.Resource].inbox <- item{q, idx}
		return
	}
	rt.decode.inbox <- q
}

// advance moves a request past stage idx, which completed at virtual
// time t: successors whose last predecessor this was become ready.
func (rt *Runtime) advance(q *request, idx int, t float64) {
	if idx == rt.plan.PrefixIdx {
		q.ttft = t - q.arrival
	}
	for _, succ := range rt.plan.Succs[idx] {
		if q.pending[succ].Add(-1) == 0 {
			q.enqV[succ] = t
			rt.submit(q, succ)
		}
	}
}

// complete retires a fully generated request.
func (rt *Runtime) complete(q *request, done float64) {
	tpot := 0.0
	if out := rt.plan.Steps[rt.plan.DecodeIdx].Stage.OutTokens; out > 0 {
		tpot = (done - q.decStart) / float64(out)
	}
	rt.coll.complete(q.ttft, tpot, done-q.arrival, done)
	rt.inflight.Add(-1)
	rt.wg.Done()
}

// runSearch synthesizes the batch's query vectors and executes them against
// the real retrieval substrate, concurrently with the modeled pacing.
func (rt *Runtime) runSearch(batch []*request, done chan<- error) {
	qpr := rt.plan.Pipe.Schema.QueriesPerRetrieval
	if qpr < 1 {
		qpr = 1
	}
	rng := rand.New(rand.NewSource(rt.opts.QuerySeed + int64(batch[0].id)))
	queries := make([][]float32, 0, len(batch)*qpr)
	for range batch {
		for j := 0; j < qpr; j++ {
			v := make([]float32, rt.opts.QueryDim)
			for d := range v {
				v[d] = rng.Float32() * 10
			}
			queries = append(queries, v)
		}
	}
	start := time.Now()
	_, err := rt.opts.Searcher(queries)
	rt.coll.searchServed(len(queries), time.Since(start).Seconds())
	done <- err
}

func (rt *Runtime) setSearchErr(err error) {
	rt.searchMu.Lock()
	if rt.searchErr == nil {
		rt.searchErr = err
	}
	rt.searchMu.Unlock()
}

// clock maps virtual schedule time onto compressed wall time.
type clock struct {
	start   time.Time
	speedup float64
}

func newClock(speedup float64) clock { return clock{start: time.Now(), speedup: speedup} }

// now returns the current virtual time.
func (c clock) now() float64 { return time.Since(c.start).Seconds() * c.speedup }

// wallAt returns the wall-clock instant of virtual time v.
func (c clock) wallAt(v float64) time.Time {
	return c.start.Add(time.Duration(v / c.speedup * float64(time.Second)))
}

// sleepUntil blocks until virtual time v has passed.
func (c clock) sleepUntil(v float64) {
	if d := time.Until(c.wallAt(v)); d > 0 {
		time.Sleep(d)
	}
}

// maxf is a float64 max without the math import ceremony at call sites.
func maxf(a, b float64) float64 { return math.Max(a, b) }
