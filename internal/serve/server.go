package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rago/internal/engine"
	"rago/internal/obs"
	"rago/internal/perf"
	"rago/internal/trace"
)

// ErrServeEnded is returned by Server.Switch when the replay has already
// drained: there is nothing left to migrate, so the switch is refused
// rather than starting workers no request will ever reach. Controllers
// racing the end of a run should treat it as a benign stop signal.
var ErrServeEnded = errors.New("serve: replay has already drained")

// epoch is one plan's tenure on the Server: the dataplane executing it
// plus the lifecycle timestamps the chip-second accounting needs.
type epoch struct {
	dp   *dataplane
	plan *engine.Plan

	// idx is the epoch's ordinal (0 = initial plan); bus, when non-nil,
	// receives the drain event once the last in-flight request retires.
	idx int
	bus *obs.Bus

	startV   float64
	admitted atomic.Int64

	// retired flips when the epoch stops admitting; the dataplane keeps
	// running until its in-flight count drains to zero, then closes.
	retired  atomic.Bool
	retiredV float64
	drainedV float64
	closed   sync.Once
}

// close shuts the epoch's workers down once, recording the drain time.
func (e *epoch) close(v float64) {
	e.closed.Do(func() {
		e.drainedV = v
		e.dp.stop()
		if e.bus.Active() && e.retired.Load() {
			e.bus.Publish(obs.Event{Kind: obs.KindSwitchDrain, T: v, N: e.idx,
				Dur: v - e.retiredV, Track: "control"})
		}
	})
}

// EpochStat describes one plan's tenure in a ServerReport.
type EpochStat struct {
	// Schedule renders the plan's schedule; Chips is the XPUs it holds.
	Schedule string `json:"schedule"`
	Chips    int    `json:"chips"`
	// AnalyticQPS is the plan's assembled saturation throughput.
	AnalyticQPS float64 `json:"analytic_qps"`
	// StartV/RetiredV/DrainedV are the virtual times the epoch began
	// admitting, stopped admitting, and finished its last request
	// (RetiredV and DrainedV are the run end for the final epoch).
	StartV   float64 `json:"start_v"`
	RetiredV float64 `json:"retired_v"`
	DrainedV float64 `json:"drained_v"`
	// Admitted counts requests this epoch's plan served.
	Admitted int64 `json:"admitted"`
	// ChipSeconds is Chips times the epoch's resource-holding span
	// (activation through drain).
	ChipSeconds float64 `json:"chip_seconds"`
}

// ServerReport extends the per-run Report with the plan-switching
// history: one EpochStat per plan tenure and the integrated chip-seconds
// the switching spent (each epoch charged from activation until its last
// in-flight request drained — overlapping drains are genuinely
// double-provisioned, so they are double-charged).
type ServerReport struct {
	Report
	Epochs []EpochStat `json:"epochs"`
	// ChipSeconds is the sum over epochs; DurationV the virtual length
	// of the whole run. Static provisioning at P chips for comparison
	// costs P * DurationV.
	ChipSeconds float64 `json:"chip_seconds"`
	DurationV   float64 `json:"duration_v"`
	// Switches is the number of plan changes (epochs minus one).
	Switches int `json:"switches"`
}

// Server is a live serving engine that can hot-swap between compiled
// plans of the same pipeline mid-replay. New admissions route to the
// current plan's dataplane; a Switch retires the old plan, whose
// in-flight requests finish on its own workers before they shut down
// (drain-and-migrate — no request is dropped or served twice). Like
// Runtime it is single-use: build, Serve one trace, read the report.
// Switch and Telemetry are safe to call concurrently with Serve; the
// SLO-aware controller in internal/control is the intended caller.
type Server struct {
	opts Options

	clock clock
	coll  collector

	// mu orders admissions against switches: replay admits under RLock,
	// Switch swaps the current epoch under Lock, so once Switch returns
	// no new request can land on the retired epoch.
	mu     sync.RWMutex
	cur    *epoch
	epochs []*epoch

	wg          sync.WaitGroup
	inflight    atomic.Int64
	maxInflight int64
	bound       int

	served  atomic.Bool
	live    atomic.Bool
	started chan struct{}
	ended   bool // under mu: replay drained, no further switches
	endV    float64

	searchMu  sync.Mutex
	searchErr error
}

// NewServer builds a multi-plan serving engine starting on the given
// compiled plan (see engine.Compile or core.Assembler.Compile).
// Inexecutable plans (Executable) and negative Options are rejected.
func NewServer(initial *engine.Plan, opts Options) (*Server, error) {
	if err := Executable(initial); err != nil {
		return nil, err
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	s := &Server{opts: opts.withDefaults(), started: make(chan struct{})}
	s.cur = &epoch{plan: initial}
	return s, nil
}

// Plan returns the compiled plan currently receiving admissions.
func (s *Server) Plan() *engine.Plan {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cur.plan
}

// Started is closed when Serve has begun replaying (the virtual clock is
// live); controllers wait on it before polling telemetry.
func (s *Server) Started() <-chan struct{} { return s.started }

// Now returns the current virtual time (0 before Serve starts).
func (s *Server) Now() float64 {
	if !s.live.Load() {
		return 0
	}
	return s.clock.now()
}

// AfterVirtual returns a channel that fires once virtual time v has
// passed. Only valid after Started.
func (s *Server) AfterVirtual(v float64) <-chan time.Time {
	return time.After(time.Until(s.clock.wallAt(v)))
}

// Telemetry snapshots the sliding-window serving metrics over the
// trailing window virtual seconds; the zero Window before Serve starts.
func (s *Server) Telemetry(window float64) Window {
	if !s.live.Load() {
		return Window{}
	}
	w := s.coll.snapshot(s.clock.now(), window, int(s.inflight.Load()))
	if s.opts.Cache != nil {
		st := s.opts.Cache.Stats()
		w.CacheHitRate = st.HitRate
		w.CacheSavedTokens = st.SavedTokens
	}
	return w
}

// Switch hot-swaps admissions onto plan, which must execute the same
// stage graph as the running plans (a schedule of the same pipeline).
// The retired plan's in-flight requests finish on its own workers, which
// shut down once drained; the new plan's workers begin admitting
// immediately. Safe to call concurrently with Serve. Switching to the
// plan already current is a no-op.
func (s *Server) Switch(plan *engine.Plan) error {
	if plan == nil {
		return fmt.Errorf("serve: nil plan")
	}
	if !s.live.Load() {
		return fmt.Errorf("serve: Switch before Serve has started")
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return ErrServeEnded
	}
	old := s.cur
	if old.plan == plan {
		s.mu.Unlock()
		return nil
	}
	if !old.plan.CompatibleWith(plan) {
		s.mu.Unlock()
		return fmt.Errorf("serve: plan executes a different stage graph; only schedules of the same pipeline are hot-swappable")
	}
	now := s.clock.now()
	next := &epoch{plan: plan, startV: now, idx: len(s.epochs), bus: s.opts.Bus}
	if s.opts.Bus.Active() {
		s.opts.Bus.Publish(obs.Event{Kind: obs.KindSwitchBegin, T: now, N: next.idx,
			Track: "control", Payload: obs.SwitchInfo{
				Epoch: next.idx,
				From:  old.plan.Sched.Describe(old.plan.Pipe),
				To:    plan.Sched.Describe(plan.Pipe),
			}})
	}
	next.dp = newDataplane(plan, s.opts, s.clock, &s.coll, s.bound, s.onComplete(next), s.setSearchErr)
	next.dp.launch()
	s.cur = next
	s.epochs = append(s.epochs, next)
	old.retiredV = now
	old.retired.Store(true)
	s.mu.Unlock()
	if s.opts.Bus.Active() {
		s.opts.Bus.Publish(obs.Event{Kind: obs.KindSwitchCommit, T: now, N: next.idx,
			Track: "control", Payload: obs.SwitchInfo{
				Epoch: next.idx,
				From:  old.plan.Sched.Describe(old.plan.Pipe),
				To:    plan.Sched.Describe(plan.Pipe),
			}})
	}
	// If the old epoch was already idle there is no completion left to
	// observe the retirement flag; close it here. sync.Once makes the
	// race with a concurrent last completion benign.
	if old.dp.inflight.Load() == 0 {
		old.close(now)
	}
	return nil
}

// onComplete returns the completion callback wiring an epoch's dataplane
// back into the Server's global bookkeeping and drain detection.
func (s *Server) onComplete(e *epoch) func(*request, float64) {
	return func(_ *request, done float64) {
		s.inflight.Add(-1)
		if e.retired.Load() && e.dp.inflight.Load() == 0 {
			e.close(done)
		}
		s.wg.Done()
	}
}

// Serve replays the trace, routing each admission to the plan current at
// its arrival, and blocks until every request has completed or been
// rejected. Single-use.
func (s *Server) Serve(reqs []trace.Request) (*ServerReport, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("serve: empty trace")
	}
	if !s.served.CompareAndSwap(false, true) {
		return nil, fmt.Errorf("serve: Server is single-use; build a new one per trace")
	}
	bound := s.opts.MaxInFlight
	if bound <= 0 {
		bound = len(reqs)
	}
	s.bound = bound
	s.maxInflight = int64(bound)
	s.coll.init(s.cur.plan)
	s.clock = newClock(s.opts.Speedup)
	first := s.cur
	first.bus = s.opts.Bus
	first.dp = newDataplane(first.plan, s.opts, s.clock, &s.coll, bound, s.onComplete(first), s.setSearchErr)
	first.dp.launch()
	s.epochs = append(s.epochs, first)
	s.live.Store(true)
	close(s.started)

	var windowsDone chan struct{}
	var stopWindows chan struct{}
	if s.opts.Bus != nil && s.opts.WindowEvery > 0 {
		windowsDone = make(chan struct{})
		stopWindows = make(chan struct{})
		go s.streamWindows(stopWindows, windowsDone)
	}

	s.wg.Add(len(reqs))
	go s.replay(reqs)
	s.wg.Wait()
	if stopWindows != nil {
		close(stopWindows)
		<-windowsDone
	}

	s.mu.Lock()
	s.ended = true
	s.endV = s.clock.now()
	for _, e := range s.epochs {
		if !e.retired.Load() {
			e.retiredV = s.endV
			e.retired.Store(true)
		}
		e.close(s.endV)
	}
	rep := s.buildReport()
	s.mu.Unlock()

	s.searchMu.Lock()
	err := s.searchErr
	s.searchMu.Unlock()
	return rep, err
}

// replay paces open-loop arrivals, applying admission control and routing
// each admission to the epoch current at its arrival.
func (s *Server) replay(reqs []trace.Request) {
	bus := s.opts.Bus
	for i := range reqs {
		r := reqs[i]
		s.clock.sleepUntil(r.Arrival)
		if s.inflight.Load() >= s.maxInflight {
			s.coll.reject(r.Arrival)
			if bus.Active() {
				bus.Publish(obs.Event{Kind: obs.KindReject, T: r.Arrival, Req: r.ID})
			}
			s.wg.Done()
			continue
		}
		if bus.Active() {
			bus.Publish(obs.Event{Kind: obs.KindAdmit, T: r.Arrival, Req: r.ID})
		}
		// Admission happens under the read lock so a concurrent Switch
		// cannot retire an epoch between choosing it and counting the
		// request on it: after Switch returns, the retired dataplane's
		// in-flight count can only fall.
		s.mu.RLock()
		e := s.cur
		s.inflight.Add(1)
		e.dp.inflight.Add(1)
		e.admitted.Add(1)
		s.mu.RUnlock()
		s.coll.admit(r.Arrival)
		e.dp.admit(e.dp.newRequest(r), r.Arrival)
	}
}

// streamWindows publishes a KindWindow snapshot onto the bus every
// WindowEvery virtual seconds (the snapshot's trailing window is the same
// width), until stopped at the end of the replay. The snapshots ride the
// bus as Payload, so obs stays free of serve types.
func (s *Server) streamWindows(stop, done chan struct{}) {
	defer close(done)
	every := s.opts.WindowEvery
	for k := 1; ; k++ {
		v := float64(k) * every
		select {
		case <-s.AfterVirtual(v):
		case <-stop:
			return
		}
		w := s.Telemetry(every)
		s.opts.Bus.Publish(obs.Event{Kind: obs.KindWindow, T: w.Now,
			Track: "telemetry", N: k, Payload: w})
	}
}

// buildReport assembles the ServerReport. Called under s.mu after the
// WaitGroup barrier, so no concurrent mutation remains. A single-epoch
// run carries its plan's analytical reference; a multi-plan run has no
// single reference, so Analytic stays zero with HasAnalytic false.
func (s *Server) buildReport() *ServerReport {
	var analytic perf.Metrics
	hasAnalytic := len(s.epochs) == 1
	if hasAnalytic {
		analytic = s.epochs[0].plan.Metrics
	}
	base := s.coll.report(analytic, hasAnalytic, s.opts.Speedup,
		time.Since(s.clock.start).Seconds())
	if hasAnalytic {
		base.BatchPolicy = s.epochs[0].plan.Sched.FormPolicy.String()
		base.ChunkQuantum = s.epochs[0].plan.Sched.ChunkQuantum
	}
	if s.opts.Cache != nil {
		st := s.opts.Cache.Stats()
		base.Cache = &st
	}
	rep := &ServerReport{Report: *base, DurationV: s.endV, Switches: len(s.epochs) - 1}
	for _, e := range s.epochs {
		end := e.drainedV
		if end < e.retiredV {
			end = e.retiredV
		}
		cs := float64(e.plan.Sched.ChipsUsed()) * (end - e.startV)
		rep.Epochs = append(rep.Epochs, EpochStat{
			Schedule:    e.plan.Sched.Describe(e.plan.Pipe),
			Chips:       e.plan.Sched.ChipsUsed(),
			AnalyticQPS: e.plan.Metrics.QPS,
			StartV:      e.startV,
			RetiredV:    e.retiredV,
			DrainedV:    e.drainedV,
			Admitted:    e.admitted.Load(),
			ChipSeconds: cs,
		})
		rep.ChipSeconds += cs
	}
	return rep
}

func (s *Server) setSearchErr(err error) {
	s.searchMu.Lock()
	if s.searchErr == nil {
		s.searchErr = err
	}
	s.searchMu.Unlock()
}

// String renders the switching report under the base latency report.
func (r *ServerReport) String() string {
	out := r.Report.String()
	out += fmt.Sprintf("plan switches %d, chip-seconds %.0f over %.1fs virtual\n", r.Switches, r.ChipSeconds, r.DurationV)
	for i, e := range r.Epochs {
		out += fmt.Sprintf("epoch %d  [%7.1fs, %7.1fs] drain %7.1fs  chips %3d  admitted %6d  %s\n",
			i, e.StartV, e.RetiredV, e.DrainedV, e.Chips, e.Admitted, e.Schedule)
	}
	return out
}
