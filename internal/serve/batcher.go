package serve

import (
	"math"
	"time"

	"rago/internal/engine"
	"rago/internal/obs"
	"rago/internal/pipeline"
)

// resource is one serial execution unit of the compiled plan — an XPU
// placement group or a CPU retrieval tier. It owns a bounded inbox
// channel, forms continuous batches per member stage, and paces their
// service on the drift-free virtual ledger. Exactly one goroutine (run)
// touches its queues and ledger, so the only shared state is the inbox
// channel and the metrics collector.
type resource struct {
	dp     *dataplane
	name   string
	stages []int // pipeline stage indices served, in pipeline order
	inbox  chan item

	// queues[i][heads[i]:] is stage i's live FIFO: exec consumes a batch
	// by advancing the head offset instead of re-copying the tail (one
	// allocation per served batch, at batch-formation rate), and the
	// storage resets to the front when the queue drains. Only run's
	// goroutine touches either.
	queues    [][]*request // parallel to stages
	heads     []int        // consumed-prefix offsets, parallel to queues
	prompts   []int        // scratch for per-batch shape aggregation
	busyUntil float64      // virtual time the resource frees up

	// former is the prefix stage's batch-formation state machine — the
	// SAME engine.Former code the discrete-event simulator consults, so
	// both executors form identical batches from identical windows.
	// usePolicy short-circuits the historical FIFO fast path when the
	// plan's policy is the default; chunked turns prefix batches into
	// quantum-sized chunk runs (ChunkPrefill).
	former    engine.Former
	usePolicy bool
	chunked   bool
	batchBuf  []*request // scratch for non-contiguous (policy) batches
	doneAt    []float64  // scratch for chunked per-member completions
}

func newResource(dp *dataplane, name string, stages []int) *resource {
	r := &resource{dp: dp, name: name, stages: stages,
		queues: make([][]*request, len(stages)), heads: make([]int, len(stages))}
	for _, idx := range stages {
		if idx == dp.plan.PrefixIdx {
			r.former = dp.plan.Former()
			r.former.Flush = dp.opts.FlushTimeout
			r.usePolicy = dp.plan.Sched.FormPolicy != engine.PolicyFIFO
			r.chunked = dp.plan.Sched.ChunkQuantum > 0
		}
	}
	return r
}

// reqWindow adapts a stage queue onto the executor-neutral view the
// shared formation policy decides over.
type reqWindow struct {
	qu  []*request
	idx int
}

func (w reqWindow) Len() int                 { return len(w.qu) }
func (w reqWindow) EnqueuedAt(i int) float64 { return w.qu[i].enqV[w.idx] }
func (w reqWindow) PromptTokens(i int) int   { return w.qu[i].promptTok }

// queue returns stage slot i's live (unconsumed) FIFO window.
func (r *resource) queue(i int) []*request { return r.queues[i][r.heads[i]:] }

// run is the worker loop: drain arrivals, pick the most overdue
// dispatchable batch, execute it, repeat; park when nothing is ready.
func (r *resource) run() {
	for {
		r.drain()
		si, n, formV, sel := r.pick()
		if si < 0 {
			if !r.park() {
				return
			}
			continue
		}
		r.exec(si, n, formV, sel)
	}
}

// drain moves every waiting inbox entry into its stage queue.
func (r *resource) drain() {
	for {
		select {
		case it := <-r.inbox:
			r.enqueue(it)
		default:
			return
		}
	}
}

func (r *resource) enqueue(it item) {
	for i, idx := range r.stages {
		if idx == it.idx {
			// Compact a mostly-consumed queue before growing it, so a
			// backlog that never fully drains cannot grow the backing
			// array (and pin served requests) without bound. Safe here:
			// no exec batch alias is live outside exec itself.
			if h := r.heads[i]; h >= 64 && 2*h >= len(r.queues[i]) {
				live := copy(r.queues[i], r.queues[i][h:])
				for j := live; j < len(r.queues[i]); j++ {
					r.queues[i][j] = nil
				}
				r.queues[i] = r.queues[i][:live]
				r.heads[i] = 0
			}
			r.queues[i] = append(r.queues[i], it.q)
			r.dp.coll.enqueued(idx, len(r.queue(i)))
			return
		}
	}
}

// pick chooses the next batch to serve: among member stages whose queue
// either fills a batch or whose head has waited past the flush timeout,
// take the one with the oldest waiting head (the same fairness rule as the
// discrete-event validator). It returns the stage slot, the batch size,
// the exact virtual time the batch became dispatchable, and — for
// non-FIFO formation policies — the selected queue positions (nil means
// the FIFO prefix). The prefix stage consults the plan's formation
// policy; every other stage keeps the historical FIFO rule.
func (r *resource) pick() (si, n int, formV float64, sel []int) {
	now := r.dp.clock.now()
	flush := r.dp.opts.FlushTimeout
	best := -1
	bestAge := math.Inf(-1)
	polN, polFormV := 0, 0.0
	var polSel []int
	for i, idx := range r.stages {
		qu := r.queue(i)
		if len(qu) == 0 {
			continue
		}
		headAge := now - qu[0].enqV[idx]
		if r.usePolicy && idx == r.dp.plan.PrefixIdx {
			pn, pf, ps := r.former.Form(reqWindow{qu, idx}, now)
			if pn == 0 {
				continue
			}
			polN, polFormV, polSel = pn, pf, ps
			if headAge > bestAge {
				bestAge, best = headAge, i
			}
			continue
		}
		b := r.dp.plan.StepAt(idx).Batch
		if len(qu) < b && headAge < flush {
			continue
		}
		if headAge > bestAge {
			bestAge, best = headAge, i
		}
	}
	if best < 0 {
		return -1, 0, 0, nil
	}
	idx := r.stages[best]
	if r.usePolicy && idx == r.dp.plan.PrefixIdx {
		return best, polN, polFormV, polSel
	}
	b := r.dp.plan.StepAt(idx).Batch
	qu := r.queue(best)
	n = b
	if n > len(qu) {
		n = len(qu)
	}
	// Formable time: when the last selected member entered the queue —
	// or, for a flush-dispatched partial batch, the head's flush
	// deadline. Both are exact virtual quantities computed upstream, so
	// the ledger never absorbs wall-clock wakeup jitter.
	for _, q := range qu[:n] {
		formV = maxf(formV, q.enqV[idx])
	}
	if n < b {
		formV = maxf(formV, qu[0].enqV[idx]+flush)
	}
	return best, n, formV, nil
}

// park blocks until new work arrives, a flush deadline passes, or the
// dataplane shuts down. Returns false on shutdown.
func (r *resource) park() bool {
	var timerC <-chan time.Time
	var timer *time.Timer
	deadline, has := math.Inf(1), false
	for i, idx := range r.stages {
		qu := r.queue(i)
		if len(qu) == 0 {
			continue
		}
		if d := qu[0].enqV[idx] + r.dp.opts.FlushTimeout; d < deadline {
			deadline, has = d, true
		}
	}
	if has {
		d := time.Until(r.dp.clock.wallAt(deadline))
		if d < 0 {
			d = 0
		}
		timer = time.NewTimer(d)
		timerC = timer.C
	}
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	select {
	case it := <-r.inbox:
		r.enqueue(it)
		return true
	case <-timerC:
		return true
	case <-r.dp.quit:
		return false
	}
}

// exec serves one batch: advance the ledger, sleep out the scaled service
// time (running real retrieval concurrently when configured), then hand
// every member to its next stage. Prefix batches carrying mixed
// per-request shapes are costed at their members' padded maximum prompt
// length, and the padding overhead is recorded; under chunked prefill the
// batch runs as quantum-sized chunks and each member advances at its own
// chunk boundary instead of batch end.
func (r *resource) exec(si, n int, formV float64, sel []int) {
	idx := r.stages[si]
	var batch []*request
	if sel == nil {
		// The batch aliases the queue's consumed prefix; nothing appends
		// to this stage's queue until exec returns (run's goroutine is the
		// only writer), so the alias is stable for the call.
		batch = r.queue(si)[:n:n]
		r.heads[si] += n
		if r.heads[si] == len(r.queues[si]) {
			r.queues[si] = r.queues[si][:0]
			r.heads[si] = 0
		}
	} else {
		// A formation policy selected non-contiguous queue positions:
		// gather them into scratch and compact the survivors in place.
		r.batchBuf = r.batchBuf[:0]
		q := r.queues[si]
		h := r.heads[si]
		for _, pos := range sel {
			r.batchBuf = append(r.batchBuf, q[h+pos])
		}
		ln := len(q) - h
		w := h + sel[0]
		k := 0
		for pos := sel[0]; pos < ln; pos++ {
			if k < len(sel) && pos == sel[k] {
				k++
				continue
			}
			q[w] = q[h+pos]
			w++
		}
		for j := w; j < len(q); j++ {
			q[j] = nil
		}
		r.queues[si] = q[:w]
		if r.heads[si] == len(r.queues[si]) {
			r.queues[si] = r.queues[si][:0]
			r.heads[si] = 0
		}
		batch = r.batchBuf
	}

	lat := r.dp.plan.StepLatency(idx, n)
	tok, pad, chunks := 0, 0, 0
	consult := r.dp.cacheOn && r.dp.taggedAny.Load()
	chunked := r.chunked && idx == r.dp.plan.PrefixIdx
	if idx == r.dp.plan.PrefixIdx && (chunked || r.dp.shapedAny.Load() || consult) {
		r.prompts = r.prompts[:0]
		for _, q := range batch {
			pt := q.promptTok
			if consult && len(q.chunkIDs) > 0 {
				// Prefix-cache lookup at batch formation: the member
				// prefills only its uncached suffix. Access both queries
				// and admits, so the batch's own chunks are resident for
				// every later batch — the prefix stage lives on exactly
				// one worker goroutine, so lookups happen in dispatch
				// order, the same serialization the simulator replays.
				base := pt
				if base <= 0 {
					base = r.dp.plan.Pipe.Schema.PrefixTokens
				}
				credit := r.dp.cache.Access(q.chunkIDs, base)
				pt = r.dp.plan.EffectivePrompt(pt, credit)
				if r.dp.bus.Active() {
					kind := obs.KindCacheMiss
					if credit > 0 {
						kind = obs.KindCacheHit
					}
					r.dp.bus.Publish(obs.Event{Kind: kind, T: formV, Req: q.id,
						Slot: idx, Stage: r.dp.slotName[idx], Track: r.name, N: credit})
				}
			}
			r.prompts = append(r.prompts, pt)
		}
		if chunked {
			var total float64
			r.doneAt, total, tok, pad = r.dp.plan.ChunkPrefill(r.prompts, r.doneAt)
			lat = total
			chunks = pad / r.dp.plan.Sched.ChunkQuantum
		} else if sh, sum := r.dp.plan.PrefixBatchShape(r.prompts); sh != (engine.Shape{}) {
			lat = r.dp.plan.StepLatencyShaped(idx, n, sh)
			tok, pad = sum, n*sh.PromptTokens
		}
	}
	start := maxf(r.busyUntil, formV)
	done := start + lat
	r.busyUntil = done

	if chunked {
		// Chunk pipelining: member i's first token unblocks as soon as its
		// own chunks are done; the resource stays busy until the last
		// chunk (busyUntil above).
		for i, q := range batch {
			md := start + r.doneAt[i]
			r.dp.clock.sleepUntil(md)
			if r.dp.bus.Active() {
				r.dp.bus.Publish(obs.Event{Kind: obs.KindStageStart, T: start, Req: q.id,
					Slot: idx, Stage: r.dp.slotName[idx], Track: r.name, N: n})
				r.dp.bus.Publish(obs.Event{Kind: obs.KindStageFinish, T: md, Req: q.id,
					Slot: idx, Stage: r.dp.slotName[idx], Track: r.name, N: n, Dur: r.doneAt[i]})
			}
			r.dp.advance(q, idx, md)
		}
		r.dp.coll.batchServed(idx, n, r.dp.plan.StepAt(idx).Batch, tok, pad, chunks)
		return
	}

	var search chan searchResult
	sharded := r.dp.opts.Sharded
	if r.dp.plan.StepAt(idx).Stage.Kind == pipeline.KindRetrieval && r.dp.opts.searchOn() {
		search = make(chan searchResult, 1)
		go r.dp.runSearch(batch, search)
		if sharded != nil && r.dp.bus.Active() {
			r.dp.bus.Publish(obs.Event{Kind: obs.KindShardScatter, T: start, Req: batch[0].id,
				Slot: idx, Stage: r.dp.slotName[idx], Track: r.name, N: sharded.EffectiveFanout(r.dp.plan.Sched.ShardFanout)})
		}
	}
	r.dp.clock.sleepUntil(done)
	if search != nil {
		res := <-search
		if res.err != nil {
			r.dp.onSearchErr(res.err)
		}
		if sharded != nil && r.dp.bus.Active() {
			if res.fellBack > 0 || res.lost > 0 {
				r.dp.bus.Publish(obs.Event{Kind: obs.KindShardFallback, T: done, Req: batch[0].id,
					Slot: idx, Stage: r.dp.slotName[idx], Track: r.name, N: res.fellBack + res.lost})
			}
			r.dp.bus.Publish(obs.Event{Kind: obs.KindShardGather, T: done, Req: batch[0].id,
				Slot: idx, Stage: r.dp.slotName[idx], Track: r.name, N: sharded.EffectiveFanout(r.dp.plan.Sched.ShardFanout), Dur: lat})
		}
	}
	r.dp.coll.batchServed(idx, n, r.dp.plan.StepAt(idx).Batch, tok, pad, 0)
	if r.dp.bus.Active() {
		for _, q := range batch {
			r.dp.bus.Publish(obs.Event{Kind: obs.KindStageStart, T: start, Req: q.id,
				Slot: idx, Stage: r.dp.slotName[idx], Track: r.name, N: n})
			r.dp.bus.Publish(obs.Event{Kind: obs.KindStageFinish, T: done, Req: q.id,
				Slot: idx, Stage: r.dp.slotName[idx], Track: r.name, N: n, Dur: lat})
		}
	}
	for _, q := range batch {
		r.dp.advance(q, idx, done)
	}
}
