package serve

import (
	"math"
	"time"

	"rago/internal/engine"
	"rago/internal/obs"
	"rago/internal/pipeline"
)

// resource is one serial execution unit of the compiled plan — an XPU
// placement group or a CPU retrieval tier. It owns a bounded inbox
// channel, forms continuous batches per member stage, and paces their
// service on the drift-free virtual ledger. Exactly one goroutine (run)
// touches its queues and ledger, so the only shared state is the inbox
// channel and the metrics collector.
type resource struct {
	dp     *dataplane
	name   string
	stages []int // pipeline stage indices served, in pipeline order
	inbox  chan item

	// queues[i][heads[i]:] is stage i's live FIFO: exec consumes a batch
	// by advancing the head offset instead of re-copying the tail (one
	// allocation per served batch, at batch-formation rate), and the
	// storage resets to the front when the queue drains. Only run's
	// goroutine touches either.
	queues    [][]*request // parallel to stages
	heads     []int        // consumed-prefix offsets, parallel to queues
	prompts   []int        // scratch for per-batch shape aggregation
	busyUntil float64      // virtual time the resource frees up
}

func newResource(dp *dataplane, name string, stages []int) *resource {
	return &resource{dp: dp, name: name, stages: stages,
		queues: make([][]*request, len(stages)), heads: make([]int, len(stages))}
}

// queue returns stage slot i's live (unconsumed) FIFO window.
func (r *resource) queue(i int) []*request { return r.queues[i][r.heads[i]:] }

// run is the worker loop: drain arrivals, pick the most overdue
// dispatchable batch, execute it, repeat; park when nothing is ready.
func (r *resource) run() {
	for {
		r.drain()
		si, n, formV := r.pick()
		if si < 0 {
			if !r.park() {
				return
			}
			continue
		}
		r.exec(si, n, formV)
	}
}

// drain moves every waiting inbox entry into its stage queue.
func (r *resource) drain() {
	for {
		select {
		case it := <-r.inbox:
			r.enqueue(it)
		default:
			return
		}
	}
}

func (r *resource) enqueue(it item) {
	for i, idx := range r.stages {
		if idx == it.idx {
			// Compact a mostly-consumed queue before growing it, so a
			// backlog that never fully drains cannot grow the backing
			// array (and pin served requests) without bound. Safe here:
			// no exec batch alias is live outside exec itself.
			if h := r.heads[i]; h >= 64 && 2*h >= len(r.queues[i]) {
				live := copy(r.queues[i], r.queues[i][h:])
				for j := live; j < len(r.queues[i]); j++ {
					r.queues[i][j] = nil
				}
				r.queues[i] = r.queues[i][:live]
				r.heads[i] = 0
			}
			r.queues[i] = append(r.queues[i], it.q)
			r.dp.coll.enqueued(idx, len(r.queue(i)))
			return
		}
	}
}

// pick chooses the next batch to serve: among member stages whose queue
// either fills a batch or whose head has waited past the flush timeout,
// take the one with the oldest waiting head (the same fairness rule as the
// discrete-event validator). It returns the stage slot, the batch size,
// and the exact virtual time the batch became dispatchable.
func (r *resource) pick() (si, n int, formV float64) {
	now := r.dp.clock.now()
	flush := r.dp.opts.FlushTimeout
	best := -1
	bestAge := math.Inf(-1)
	for i, idx := range r.stages {
		qu := r.queue(i)
		if len(qu) == 0 {
			continue
		}
		b := r.dp.plan.StepAt(idx).Batch
		headAge := now - qu[0].enqV[idx]
		if len(qu) < b && headAge < flush {
			continue
		}
		if headAge > bestAge {
			bestAge, best = headAge, i
		}
	}
	if best < 0 {
		return -1, 0, 0
	}
	idx := r.stages[best]
	b := r.dp.plan.StepAt(idx).Batch
	qu := r.queue(best)
	n = b
	if n > len(qu) {
		n = len(qu)
	}
	// Formable time: when the last selected member entered the queue —
	// or, for a flush-dispatched partial batch, the head's flush
	// deadline. Both are exact virtual quantities computed upstream, so
	// the ledger never absorbs wall-clock wakeup jitter.
	for _, q := range qu[:n] {
		formV = maxf(formV, q.enqV[idx])
	}
	if n < b {
		formV = maxf(formV, qu[0].enqV[idx]+flush)
	}
	return best, n, formV
}

// park blocks until new work arrives, a flush deadline passes, or the
// dataplane shuts down. Returns false on shutdown.
func (r *resource) park() bool {
	var timerC <-chan time.Time
	var timer *time.Timer
	deadline, has := math.Inf(1), false
	for i, idx := range r.stages {
		qu := r.queue(i)
		if len(qu) == 0 {
			continue
		}
		if d := qu[0].enqV[idx] + r.dp.opts.FlushTimeout; d < deadline {
			deadline, has = d, true
		}
	}
	if has {
		d := time.Until(r.dp.clock.wallAt(deadline))
		if d < 0 {
			d = 0
		}
		timer = time.NewTimer(d)
		timerC = timer.C
	}
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	select {
	case it := <-r.inbox:
		r.enqueue(it)
		return true
	case <-timerC:
		return true
	case <-r.dp.quit:
		return false
	}
}

// exec serves one batch: advance the ledger, sleep out the scaled service
// time (running real retrieval concurrently when configured), then hand
// every member to its next stage. Prefix batches carrying mixed
// per-request shapes are costed at their members' padded maximum prompt
// length, and the padding overhead is recorded.
func (r *resource) exec(si, n int, formV float64) {
	idx := r.stages[si]
	// The batch aliases the queue's consumed prefix; nothing appends to
	// this stage's queue until exec returns (run's goroutine is the only
	// writer), so the alias is stable for the call.
	batch := r.queue(si)[:n:n]
	r.heads[si] += n
	if r.heads[si] == len(r.queues[si]) {
		r.queues[si] = r.queues[si][:0]
		r.heads[si] = 0
	}

	lat := r.dp.plan.StepLatency(idx, n)
	tok, pad := 0, 0
	consult := r.dp.cacheOn && r.dp.taggedAny.Load()
	if idx == r.dp.plan.PrefixIdx && (r.dp.shapedAny.Load() || consult) {
		r.prompts = r.prompts[:0]
		for _, q := range batch {
			pt := q.promptTok
			if consult && len(q.chunkIDs) > 0 {
				// Prefix-cache lookup at batch formation: the member
				// prefills only its uncached suffix. Access both queries
				// and admits, so the batch's own chunks are resident for
				// every later batch — the prefix stage lives on exactly
				// one worker goroutine, so lookups happen in dispatch
				// order, the same serialization the simulator replays.
				base := pt
				if base <= 0 {
					base = r.dp.plan.Pipe.Schema.PrefixTokens
				}
				credit := r.dp.cache.Access(q.chunkIDs, base)
				pt = r.dp.plan.EffectivePrompt(pt, credit)
				if r.dp.bus.Active() {
					kind := obs.KindCacheMiss
					if credit > 0 {
						kind = obs.KindCacheHit
					}
					r.dp.bus.Publish(obs.Event{Kind: kind, T: formV, Req: q.id,
						Slot: idx, Stage: r.dp.slotName[idx], Track: r.name, N: credit})
				}
			}
			r.prompts = append(r.prompts, pt)
		}
		if sh, sum := r.dp.plan.PrefixBatchShape(r.prompts); sh != (engine.Shape{}) {
			lat = r.dp.plan.StepLatencyShaped(idx, n, sh)
			tok, pad = sum, n*sh.PromptTokens
		}
	}
	start := maxf(r.busyUntil, formV)
	done := start + lat
	r.busyUntil = done

	var search chan error
	if r.dp.plan.StepAt(idx).Stage.Kind == pipeline.KindRetrieval && r.dp.opts.Searcher != nil {
		search = make(chan error, 1)
		go r.dp.runSearch(batch, search)
	}
	r.dp.clock.sleepUntil(done)
	if search != nil {
		if err := <-search; err != nil {
			r.dp.onSearchErr(err)
		}
	}
	r.dp.coll.batchServed(idx, n, r.dp.plan.StepAt(idx).Batch, tok, pad)
	if r.dp.bus.Active() {
		for _, q := range batch {
			r.dp.bus.Publish(obs.Event{Kind: obs.KindStageStart, T: start, Req: q.id,
				Slot: idx, Stage: r.dp.slotName[idx], Track: r.name, N: n})
			r.dp.bus.Publish(obs.Event{Kind: obs.KindStageFinish, T: done, Req: q.id,
				Slot: idx, Stage: r.dp.slotName[idx], Track: r.name, N: n, Dur: lat})
		}
	}
	for _, q := range batch {
		r.dp.advance(q, idx, done)
	}
}
