package serve

import (
	"math"
	"testing"
	"time"

	"rago/internal/engine"
	"rago/internal/sim"
	"rago/internal/trace"
)

// heavyShapes decorates a trace with the heavy-tailed per-request
// prompt/output lengths real RAG traffic shows (RAGPulse): lognormal
// prompts around the schema's 512-token constant and lognormal outputs
// around the 256-token constant, both with fat tails.
func heavyShapes(t testing.TB, reqs []trace.Request) []trace.Request {
	t.Helper()
	prompt, err := trace.LognormalLengths(512, 0.8, 4096)
	if err != nil {
		t.Fatal(err)
	}
	output, err := trace.LognormalLengths(256, 0.7, 1024)
	if err != nil {
		t.Fatal(err)
	}
	return trace.WithShapes(reqs, prompt, output, 77)
}

func shapesOf(reqs []trace.Request) []engine.Shape {
	out := make([]engine.Shape, len(reqs))
	for i, r := range reqs {
		out[i] = engine.Shape{PromptTokens: r.PromptTokens, OutputTokens: r.OutputTokens}
	}
	return out
}

// TestRuntimeHeterogeneousCrossCheck is the acceptance check for
// heterogeneous request shapes: on a seeded heavy-tailed Case I trace, the
// live runtime's saturation QPS must agree with both the discrete-event
// simulator on the same trace and the shape-weighted analytical estimate
// within 15%, and the two executors must report consistent padding waste.
func TestRuntimeHeterogeneousCrossCheck(t *testing.T) {
	pipe, prof, sched := caseISetup(t)
	plan, err := engine.Compile(pipe, sched, prof)
	if err != nil {
		t.Fatal(err)
	}

	const n = 6000
	base, err := trace.Poisson(n, 1, 42) // arrival times rescaled below
	if err != nil {
		t.Fatal(err)
	}
	reqs := heavyShapes(t, base)
	want := plan.ShapeMetrics(shapesOf(reqs))
	if !(want.QPS < plan.Metrics.QPS) {
		t.Fatalf("heavy-tailed shape-weighted QPS %.2f should undercut constant %.2f", want.QPS, plan.Metrics.QPS)
	}
	// Overdrive at 1.5x the shape-weighted capacity: rescale the unit-rate
	// Poisson arrivals so the shape draw stays pinned to the request.
	for i := range reqs {
		reqs[i].Arrival /= 1.5 * want.QPS
	}

	speedup := (float64(n) / want.QPS) / 4.0
	rt, err := New(pipe, prof, sched, Options{Speedup: speedup})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != n {
		t.Fatalf("completed %d of %d", rep.Completed, n)
	}

	des, err := sim.NewServeFromPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	res, err := des.Run(reqs, 0.05)
	if err != nil {
		t.Fatal(err)
	}

	within(t, "runtime QPS vs shape-weighted analytic", rep.SustainedQPS, want.QPS, 0.15)
	within(t, "runtime QPS vs event-sim", rep.SustainedQPS, res.QPS, 0.15)
	within(t, "runtime mean TTFT vs event-sim", rep.TTFT.Mean, res.MeanTTFT, 0.15)
	within(t, "runtime mean TPOT vs shape-weighted analytic", rep.TPOT.Mean, want.TPOT, 0.15)

	// Pad-to-max is genuinely wasteful on this mix, and both executors
	// must agree on how wasteful.
	if rep.PadWaste <= 0.05 || rep.PadWaste >= 0.9 {
		t.Errorf("runtime padding waste %.3f implausible for a heavy-tailed mix", rep.PadWaste)
	}
	if math.Abs(rep.PadWaste-res.PadWaste) > 0.1 {
		t.Errorf("padding waste disagrees: runtime %.3f vs sim %.3f", rep.PadWaste, res.PadWaste)
	}
	// Per-shape-bucket quantiles: several buckets, and long-output
	// requests must show the same per-token pace as short ones (TPOT is
	// shape-invariant at a fixed decode batch) while spanning TTFTs.
	if len(rep.Shapes) < 3 {
		t.Fatalf("expected several shape buckets, got %+v", rep.Shapes)
	}
	var total int
	for _, s := range rep.Shapes {
		total += s.Count
		if s.Bucket == "schema" {
			t.Errorf("fully shaped trace produced a schema bucket")
		}
	}
	if total != n {
		t.Errorf("shape buckets cover %d of %d completions", total, n)
	}
}

// TestRuntimeHeterogeneousUnloadedTTFT pins the latency end of the
// cross-check: at batch 1 and trivial load, the measured mean TTFT over a
// shaped trace must match the shape-weighted analytical chain (which at
// batch 1 is the plain expectation over the prompt distribution) and the
// discrete-event simulator within 15%.
func TestRuntimeHeterogeneousUnloadedTTFT(t *testing.T) {
	pipe, prof, sched := caseISetup(t)
	sched.Groups[0].Batch = 1
	sched.RetrievalBatch = 1
	plan, err := engine.Compile(pipe, sched, prof)
	if err != nil {
		t.Fatal(err)
	}
	base, err := trace.Poisson(80, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	reqs := heavyShapes(t, base)
	want := plan.ShapeMetrics(shapesOf(reqs))
	if !(want.TTFT > plan.Metrics.TTFT) {
		t.Fatalf("heavy prompts should stretch analytic TTFT: %.4f vs %.4f", want.TTFT, plan.Metrics.TTFT)
	}

	rt, err := New(pipe, prof, sched, Options{Speedup: 200, FlushTimeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != len(reqs) {
		t.Fatalf("completed %d of %d", rep.Completed, len(reqs))
	}
	des, err := sim.NewServeFromPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	res, err := des.Run(reqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "unloaded shaped TTFT vs shape-weighted analytic", rep.TTFT.Mean, want.TTFT, 0.15)
	within(t, "unloaded shaped TTFT vs event-sim", rep.TTFT.Mean, res.MeanTTFT, 0.15)
}

// TestRuntimeConstantShapeRegression: explicitly shaping every request at
// the schema constants must reproduce the unshaped replay's behaviour —
// the constant-shape path is the same code, so drift here means the
// shape-aware refactor changed historical results.
func TestRuntimeConstantShapeRegression(t *testing.T) {
	pipe, prof, sched := caseISetup(t)
	plan, err := engine.Compile(pipe, sched, prof)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := trace.Poisson(2000, 1.5*plan.Metrics.QPS, 42)
	if err != nil {
		t.Fatal(err)
	}
	schemaShaped := make([]trace.Request, len(reqs))
	for i, r := range reqs {
		r.PromptTokens = pipe.Schema.PrefixTokens
		r.OutputTokens = pipe.Schema.DecodeTokens
		schemaShaped[i] = r
	}

	// The discrete-event sim is deterministic, so equality here is exact.
	desA, err := sim.NewServeFromPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := desA.Run(reqs, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	desB, err := sim.NewServeFromPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	shaped, err := desB.Run(schemaShaped, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if plain.QPS != shaped.QPS || plain.MeanTTFT != shaped.MeanTTFT || plain.MeanLatency != shaped.MeanLatency {
		t.Errorf("schema-constant shapes drifted from unshaped replay:\n plain  %+v\n shaped %+v", plain, shaped)
	}
	if shaped.PadWaste != 0 {
		t.Errorf("schema-constant shapes have no padding waste, got %.4f", shaped.PadWaste)
	}

	// The live runtime on the unshaped trace reports no shape buckets and
	// no padding waste — the report surface is unchanged for existing
	// traces.
	speedup := (2000 / plan.Metrics.QPS) / 2.0
	rt, err := New(pipe, prof, sched, Options{Speedup: speedup})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Shapes) != 0 || rep.PadWaste != 0 {
		t.Errorf("unshaped replay grew shape artifacts: shapes %+v pad %.4f", rep.Shapes, rep.PadWaste)
	}
}

// TestTelemetryShapeBuckets: the windowed telemetry feed carries per-shape
// TTFT/TPOT quantiles mid-replay on heterogeneous traffic.
func TestTelemetryShapeBuckets(t *testing.T) {
	pipe, prof, sched := caseISetup(t)
	plan, err := engine.Compile(pipe, sched, prof)
	if err != nil {
		t.Fatal(err)
	}
	base, err := trace.Poisson(2500, 1.2*plan.Metrics.QPS, 13)
	if err != nil {
		t.Fatal(err)
	}
	reqs := heavyShapes(t, base)
	speedup := (2500 / plan.Metrics.QPS) / 3.0
	rt, err := New(pipe, prof, sched, Options{Speedup: speedup})
	if err != nil {
		t.Fatal(err)
	}

	sawShapes := make(chan bool, 1)
	go func() {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			w := rt.Telemetry(1e9) // whole-run window
			if len(w.Shapes) >= 2 {
				var n int
				for _, s := range w.Shapes {
					n += s.Count
				}
				sawShapes <- n == w.Completed
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		sawShapes <- false
	}()
	if _, err := rt.Serve(reqs); err != nil {
		t.Fatal(err)
	}
	if !<-sawShapes {
		t.Error("telemetry window never exposed consistent shape buckets mid-replay")
	}
}

// TestRuntimeIterativeShapedSmoke: per-request output lengths compose with
// the §5.3 decode loop — triggers synthesize inside each request's own
// generation, both executors park at identical tokens, and the runtime
// still tracks the simulator within 15%.
func TestRuntimeIterativeShapedSmoke(t *testing.T) {
	pipe, prof, sched := caseIIISetup(t)
	plan, err := engine.Compile(pipe, sched, prof)
	if err != nil {
		t.Fatal(err)
	}
	const n = 1200
	base, err := trace.Poisson(n, 1.2*plan.Metrics.QPS, 21)
	if err != nil {
		t.Fatal(err)
	}
	output, err := trace.LognormalLengths(256, 0.5, 1024)
	if err != nil {
		t.Fatal(err)
	}
	reqs := trace.WithShapes(base, trace.LengthDist{}, output, 23)

	speedup := (float64(n) / plan.Metrics.QPS) / 6.0
	rt, err := New(pipe, prof, sched, Options{Speedup: speedup, FlushTimeout: iterFlush})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != n {
		t.Fatalf("completed %d of %d", rep.Completed, n)
	}
	des, err := sim.NewServeFromPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	res, err := des.Run(reqs, iterFlush)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "shaped iterative QPS vs event-sim", rep.SustainedQPS, res.QPS, 0.15)
	if rep.Stall.Max <= 0 {
		t.Error("iterative shaped replay recorded no stall")
	}
}
