package serve

import (
	"testing"

	"rago/internal/core"
	"rago/internal/obs"
	"rago/internal/trace"
)

// BenchmarkServeObsOverhead is the observability-cost trajectory point CI
// uploads (BENCH_obs.json): the BenchmarkServeCaseIV replay served twice
// per iteration — once with a nil bus (every instrumentation site on its
// zero-cost fast path; nilBusQPS must track the historical ServeCaseIV
// sustainedQPS within 5%) and once with a bus plus an attached
// deep-buffered Tracer (the full per-request firehose) — reporting both
// sustained rates and the traced/nil ratio.
func BenchmarkServeObsOverhead(b *testing.B) {
	pipe, prof, sched := caseIVSetup(b)
	want, ok := (&core.Assembler{Pipe: pipe, Prof: prof}).Evaluate(sched)
	if !ok {
		b.Fatal("schedule infeasible analytically")
	}
	const n = 10000
	reqs, err := trace.Poisson(n, 1.5*want.QPS, 42)
	if err != nil {
		b.Fatal(err)
	}
	speedup := (float64(n) / want.QPS) / 4.0

	run := func(bus *obs.Bus) *Report {
		rt, err := New(pipe, prof, sched, Options{Speedup: speedup, Bus: bus})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := rt.Serve(reqs)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Completed != n {
			b.Fatalf("completed %d of %d", rep.Completed, n)
		}
		return rep
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nilRep := run(nil)

		bus := obs.NewBus()
		tr := obs.NewTracer()
		if err := tr.Attach(bus, 1<<18); err != nil {
			b.Fatal(err)
		}
		tracedRep := run(bus)
		tr.Close()

		b.ReportMetric(nilRep.SustainedQPS, "nilBusQPS")
		b.ReportMetric(tracedRep.SustainedQPS, "tracedQPS")
		b.ReportMetric(tracedRep.SustainedQPS/nilRep.SustainedQPS, "tracedOverNil")
		b.ReportMetric(float64(tr.Dropped()), "tracerDropped")
	}
}
