package serve

import (
	"testing"

	"rago/internal/cache"
	"rago/internal/core"
	"rago/internal/engine"
	"rago/internal/trace"
)

// BenchmarkServeCaseIV is the serving perf trajectory point CI uploads
// (BENCH_serve.json): a 10k-request Poisson replay of Case IV at 1.5x
// analytical capacity and fixed time compression, reporting steady-state
// sustained QPS and p99 TTFT alongside ns/op.
func BenchmarkServeCaseIV(b *testing.B) {
	pipe, prof, sched := caseIVSetup(b)
	want, ok := (&core.Assembler{Pipe: pipe, Prof: prof}).Evaluate(sched)
	if !ok {
		b.Fatal("schedule infeasible analytically")
	}
	const n = 10000
	reqs, err := trace.Poisson(n, 1.5*want.QPS, 42)
	if err != nil {
		b.Fatal(err)
	}
	speedup := (float64(n) / want.QPS) / 4.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt, err := New(pipe, prof, sched, Options{Speedup: speedup})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := rt.Serve(reqs)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Completed != n {
			b.Fatalf("completed %d of %d", rep.Completed, n)
		}
		b.ReportMetric(rep.SustainedQPS, "sustainedQPS")
		b.ReportMetric(rep.TTFT.P99, "p99TTFT_s")
		b.ReportMetric(rep.QPSVsAnalytic, "QPSvsAnalytic")
	}
}

// BenchmarkServeHeterogeneous is the workload-realism trajectory point CI
// uploads (BENCH_shapes.json): a saturating Case I replay under
// heavy-tailed per-request prompt/output lengths, reporting sustained QPS,
// p99 TTFT, the pad-to-max padding-waste fraction, and the throughput
// ratio against the same arrivals served at the schema-constant shape.
func BenchmarkServeHeterogeneous(b *testing.B) {
	pipe, prof, sched := caseISetup(b)
	plan, err := engine.Compile(pipe, sched, prof)
	if err != nil {
		b.Fatal(err)
	}
	const n = 6000
	base, err := trace.Poisson(n, 1, 42)
	if err != nil {
		b.Fatal(err)
	}
	reqs := heavyShapes(b, base)
	shapes := shapesOf(reqs)
	want := plan.ShapeMetrics(shapes)
	for i := range reqs {
		reqs[i].Arrival /= 1.5 * want.QPS
	}
	speedup := (float64(n) / want.QPS) / 4.0

	// Constant-shape baseline on the same arrival process.
	baseline := make([]trace.Request, len(reqs))
	for i, r := range reqs {
		r.PromptTokens, r.OutputTokens = 0, 0
		baseline[i] = r
	}
	brt, err := New(pipe, prof, sched, Options{Speedup: speedup})
	if err != nil {
		b.Fatal(err)
	}
	brep, err := brt.Serve(baseline)
	if err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt, err := New(pipe, prof, sched, Options{Speedup: speedup})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := rt.Serve(reqs)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Completed != n {
			b.Fatalf("completed %d of %d", rep.Completed, n)
		}
		b.ReportMetric(rep.SustainedQPS, "sustainedQPS")
		b.ReportMetric(rep.TTFT.P99, "p99TTFT_s")
		b.ReportMetric(rep.PadWaste, "padWasteFrac")
		b.ReportMetric(rep.SustainedQPS/brep.SustainedQPS, "QPSvsConstantShape")
	}
}

// BenchmarkServeCaseIII is the iterative-retrieval serving trajectory
// point CI uploads (BENCH_iterative.json): a saturating Case III replay
// through the live decode loop, reporting sustained QPS, p99 TTFT, and
// the mean §5.3 stall-per-request alongside ns/op.
func BenchmarkServeCaseIII(b *testing.B) {
	pipe, prof, sched := caseIIISetup(b)
	plan, err := engine.Compile(pipe, sched, prof)
	if err != nil {
		b.Fatal(err)
	}
	const n = 4000
	reqs, err := trace.Poisson(n, 1.5*plan.Metrics.QPS, 42)
	if err != nil {
		b.Fatal(err)
	}
	reqs = trace.WithTriggers(reqs, plan.Round.RoundsPerSeq, pipe.Stages[plan.DecodeIdx].OutTokens, 7)
	speedup := (float64(n) / plan.Metrics.QPS) / 8.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt, err := New(pipe, prof, sched, Options{Speedup: speedup, FlushTimeout: iterFlush})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := rt.Serve(reqs)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Completed != n {
			b.Fatalf("completed %d of %d", rep.Completed, n)
		}
		b.ReportMetric(rep.SustainedQPS, "sustainedQPS")
		b.ReportMetric(rep.TTFT.P99, "p99TTFT_s")
		b.ReportMetric(rep.Stall.Mean, "meanStall_s")
	}
}

// BenchmarkServeCachedCaseI is the prefix/KV-cache trajectory point CI
// uploads (BENCH_cache.json): a hot Zipfian session-affine Case I trace on
// a prefill-bound schedule (2 prefix chips, where prefill credits move
// QPS), served once without a cache as the baseline and then with the
// real cache at batch formation. Reports the cached sustained QPS, the
// cached-vs-uncached throughput ratio (the headline — must clear 1.5x on
// this mix), the measured hit rate, and the saved-prefill-token count.
func BenchmarkServeCachedCaseI(b *testing.B) {
	pipe, prof, sched := caseISetup(b)
	sched.Groups[0].Chips = 2
	plan, err := engine.Compile(pipe, sched, prof)
	if err != nil {
		b.Fatal(err)
	}
	const n = 6000
	reqs := hotTrace(b, n, 42)
	cfg := cache.Config{PrefixTokens: 40_000, ChunkTokens: pipe.Schema.ChunkTokens}
	credits, _, err := cache.ReplayCredits(cfg, reqs, pipe.Schema.PrefixTokens)
	if err != nil {
		b.Fatal(err)
	}
	want := plan.CachedMetrics(nil, credits)
	// Overdrive at 1.5x the cache-aware capacity: the uncached baseline
	// saturates at its own lower ceiling on the same arrivals.
	for i := range reqs {
		reqs[i].Arrival /= 1.5 * want.QPS
	}
	speedup := (float64(n) / want.QPS) / 4.0

	brt, err := New(pipe, prof, sched, Options{Speedup: speedup})
	if err != nil {
		b.Fatal(err)
	}
	brep, err := brt.Serve(reqs)
	if err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := cache.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rt, err := New(pipe, prof, sched, Options{Speedup: speedup, Cache: c})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := rt.Serve(reqs)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Completed != n {
			b.Fatalf("completed %d of %d", rep.Completed, n)
		}
		if rep.Cache == nil {
			b.Fatal("cached replay reported no cache stats")
		}
		b.ReportMetric(rep.SustainedQPS, "sustainedQPS")
		b.ReportMetric(rep.SustainedQPS/brep.SustainedQPS, "QPSvsNoCache")
		b.ReportMetric(rep.Cache.HitRate, "hitRate")
		b.ReportMetric(float64(rep.Cache.SavedTokens), "savedPrefillTok")
		b.ReportMetric(rep.TTFT.P99, "p99TTFT_s")
	}
}

// BenchmarkServeBucketedCaseI is the batch-formation trajectory point CI
// uploads (BENCH_batch.json): a saturating heavy-tailed Case I replay on
// a prefill-bound schedule (2 prefix chips, where padding waste is the
// throughput ceiling), served under FIFO pad-to-max as the baseline and
// then under bucketed formation on the same arrivals. Reports the
// bucketed sustained QPS, p99 TTFT, padding-waste fraction, and the
// headline QPS ratio against FIFO — the refactor's acceptance number.
func BenchmarkServeBucketedCaseI(b *testing.B) {
	pipe, prof, sched := caseISetup(b)
	sched.Groups[0].Chips = 2
	bs := sched
	bs.FormPolicy = engine.PolicyBucketed
	plan, err := engine.Compile(pipe, bs, prof)
	if err != nil {
		b.Fatal(err)
	}
	const n = 6000
	base, err := trace.Poisson(n, 1, 42)
	if err != nil {
		b.Fatal(err)
	}
	reqs := heavyShapes(b, base)
	want := plan.ShapeMetrics(shapesOf(reqs))
	// Overdrive at 1.5x the bucketed capacity: the FIFO baseline
	// saturates at its own lower padded ceiling on the same arrivals.
	for i := range reqs {
		reqs[i].Arrival /= 1.5 * want.QPS
	}
	speedup := (float64(n) / want.QPS) / 4.0

	frt, err := New(pipe, prof, sched, Options{Speedup: speedup})
	if err != nil {
		b.Fatal(err)
	}
	frep, err := frt.Serve(reqs)
	if err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt, err := New(pipe, prof, bs, Options{Speedup: speedup})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := rt.Serve(reqs)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Completed != n {
			b.Fatalf("completed %d of %d", rep.Completed, n)
		}
		b.ReportMetric(rep.SustainedQPS, "sustainedQPS")
		b.ReportMetric(rep.TTFT.P99, "p99TTFT_s")
		b.ReportMetric(rep.PadWaste, "padWasteFrac")
		b.ReportMetric(rep.SustainedQPS/frep.SustainedQPS, "QPSvsFIFO")
	}
}

// BenchmarkServeChunkedCaseI is the chunked-prefill companion point in
// BENCH_batch.json: the same prefill-bound heavy-tailed replay with the
// prefix running 256-token chunked prefill under FIFO order, against the
// unchunked FIFO baseline. Chunking pads each member to the quantum
// instead of the batch max, so the padding waste collapses even without
// reordering.
func BenchmarkServeChunkedCaseI(b *testing.B) {
	pipe, prof, sched := caseISetup(b)
	sched.Groups[0].Chips = 2
	cs := sched
	cs.ChunkQuantum = 256
	plan, err := engine.Compile(pipe, cs, prof)
	if err != nil {
		b.Fatal(err)
	}
	const n = 6000
	base, err := trace.Poisson(n, 1, 42)
	if err != nil {
		b.Fatal(err)
	}
	reqs := heavyShapes(b, base)
	want := plan.ShapeMetrics(shapesOf(reqs))
	for i := range reqs {
		reqs[i].Arrival /= 1.5 * want.QPS
	}
	speedup := (float64(n) / want.QPS) / 4.0

	frt, err := New(pipe, prof, sched, Options{Speedup: speedup})
	if err != nil {
		b.Fatal(err)
	}
	frep, err := frt.Serve(reqs)
	if err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt, err := New(pipe, prof, cs, Options{Speedup: speedup})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := rt.Serve(reqs)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Completed != n {
			b.Fatalf("completed %d of %d", rep.Completed, n)
		}
		b.ReportMetric(rep.SustainedQPS, "sustainedQPS")
		b.ReportMetric(rep.TTFT.P99, "p99TTFT_s")
		b.ReportMetric(rep.PadWaste, "padWasteFrac")
		b.ReportMetric(rep.SustainedQPS/frep.SustainedQPS, "QPSvsFIFO")
	}
}
