package serve

import (
	"math"
	"strings"
	"testing"
	"time"

	"rago/internal/core"
	"rago/internal/engine"
	"rago/internal/hw"
	"rago/internal/pipeline"
	"rago/internal/ragschema"
	"rago/internal/sim"
	"rago/internal/stageperf"
	"rago/internal/trace"
)

// caseIIISetup builds the paper's Case III workload (decoder-initiated
// iterative retrieval, 4 retrievals per sequence: one up front plus three
// during decode) with a schedule whose iterative batch is healthy for its
// decode batch.
func caseIIISetup(t testing.TB) (pipeline.Pipeline, *stageperf.Profiler, core.Schedule) {
	t.Helper()
	schema := ragschema.CaseIII(8e9, 4)
	pipe, err := pipeline.Build(schema)
	if err != nil {
		t.Fatal(err)
	}
	prof := stageperf.New(hw.XPUC, hw.EPYCHost, schema)
	sched := core.Schedule{
		Groups:           []core.GroupSchedule{{Stages: []int{1}, Chips: 16, Batch: 4}},
		RetrievalServers: 16,
		RetrievalBatch:   4,
		DecodeChips:      16,
		DecodeBatch:      32,
		DecodeReplicas:   4,
		IterativeBatch:   16,
	}
	return pipe, prof, sched
}

// iterFlush is the flush timeout the Case III cross-checks run at: long
// enough that iterative rounds form full batches (the regime the §5.3
// batch-formation fixed point prices) instead of being truncated by the
// 50ms default.
const iterFlush = 0.25

// runCaseIII replays a saturating Poisson trace (shared trigger
// positions) through the live runtime for the given schedule and returns
// the compiled plan alongside the measured report. wallBudget is the
// target wall seconds of the replay: decode-loop fidelity is
// wall-sensitive (every round is a real dispatch on a serial worker), so
// regimes with many tiny rounds need lower time compression.
func runCaseIII(t *testing.T, pipe pipeline.Pipeline, prof *stageperf.Profiler, sched core.Schedule, n int, wallBudget float64) (*engine.Plan, *Report) {
	t.Helper()
	plan, err := engine.Compile(pipe, sched, prof)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := trace.Poisson(n, 1.5*plan.Metrics.QPS, 42)
	if err != nil {
		t.Fatal(err)
	}
	reqs = trace.WithTriggers(reqs, plan.Round.RoundsPerSeq, pipe.Stages[plan.DecodeIdx].OutTokens, 7)
	speedup := (float64(n) / plan.Metrics.QPS) / wallBudget
	rt, err := New(pipe, prof, sched, Options{Speedup: speedup, FlushTimeout: iterFlush})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != n {
		t.Fatalf("completed %d of %d", rep.Completed, n)
	}
	if rep.Stall.Mean <= 0 || rep.Stall.P99 < rep.Stall.P50 {
		t.Fatalf("iterative stall quantiles implausible: %+v", rep.Stall)
	}
	return plan, rep
}

// tokenSim runs the §5.3 token-level simulator at the plan's operating
// point: the same decode step pace, the same per-round service latencies
// (partial batches re-profiled through the plan), the same trigger count.
func tokenSim(t *testing.T, plan *engine.Plan) sim.IterativeResult {
	t.Helper()
	res, err := sim.RunIterative(sim.IterativeConfig{
		DecodeBatch:      plan.Sched.DecodeBatch,
		IterBatch:        plan.Sched.IterativeBatch,
		DecodeTokens:     plan.Steps[plan.DecodeIdx].Stage.OutTokens,
		RetrievalsPerSeq: plan.Round.RoundsPerSeq,
		StepTime:         plan.Round.DecodeStep,
		RetrievalLatency: func(b int) float64 { return plan.StepLatency(plan.IterRetrievalSlot(), b) },
		PrefixLatency:    func(b int) float64 { return plan.StepLatency(plan.IterPrefixSlot(), b) },
		Sequences:        400,
		Seed:             3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if want == 0 {
		t.Fatalf("%s: reference value is zero", name)
	}
	if r := got / want; r < 1-tol || r > 1+tol {
		t.Errorf("%s: got %.4f vs reference %.4f (ratio %.2f), want within %.0f%%", name, got, want, r, 100*tol)
	}
}

// TestRuntimeCaseIIICrossCheck is the §5.3 acceptance check: the live
// runtime's saturation throughput and mean stall-per-request on a Case III
// replay must agree, within the established 15% band, with (a) the
// analytical stall fixed point the optimizer prices schedules by, (b) the
// token-level discrete-event simulator RunIterative, and (c) the
// plan-level discrete-event validator ServeSim replaying the identical
// trace with identical trigger positions.
func TestRuntimeCaseIIICrossCheck(t *testing.T) {
	pipe, prof, sched := caseIIISetup(t)
	const n = 4000
	plan, rep := runCaseIII(t, pipe, prof, sched, n, 8)

	// The live stall is compared at the median: wall-clock hiccups at
	// high time compression make a small tail of sequences miss the
	// round they would have joined, right-skewing the live distribution,
	// while the jitter-free references have mean ~= median. The QPS
	// checks (which integrate the whole distribution) keep the mean
	// honest.

	// (a) Analytical: QPS from the assembled metrics, stall from the
	// fixed point.
	within(t, "runtime vs analytic QPS", rep.SustainedQPS, plan.Metrics.QPS, 0.15)
	within(t, "runtime vs analytic stall", rep.Stall.P50, plan.Iter.StallPerRequest, 0.15)

	// (b) Token-level simulator at the same operating point: generation
	// time including stalls bounds both QPS (DecodeBatch sequences in
	// flight) and the stall itself.
	tok := tokenSim(t, plan)
	ideal := float64(plan.Steps[plan.DecodeIdx].Stage.OutTokens) * plan.Round.DecodeStep
	within(t, "runtime vs RunIterative QPS", rep.SustainedQPS,
		float64(plan.Sched.DecodeBatch)/tok.MeanLatency, 0.15)
	within(t, "runtime vs RunIterative stall", rep.Stall.P50, tok.MeanLatency-ideal, 0.15)

	// (c) Plan-level discrete-event validator on the same trace.
	reqs, err := trace.Poisson(n, 1.5*plan.Metrics.QPS, 42)
	if err != nil {
		t.Fatal(err)
	}
	reqs = trace.WithTriggers(reqs, plan.Round.RoundsPerSeq, pipe.Stages[plan.DecodeIdx].OutTokens, 7)
	des, err := sim.NewServeFromPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	res, err := des.Run(reqs, iterFlush)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != n {
		t.Fatalf("event sim completed %d of %d", res.Completed, n)
	}
	within(t, "runtime vs ServeSim QPS", rep.SustainedQPS, res.QPS, 0.15)
	within(t, "runtime vs ServeSim stall", rep.Stall.P50, res.MeanStall, 0.15)
}

// TestRuntimeCaseIIICliff pins the Fig. 9b cliff: an iterative batch of 1
// under the same large decode batch starves the retrieval tier (every
// round pays the full tier latency for one sequence), so live QPS
// degrades by an integer factor against the healthy batching point —
// and the degraded throughput still matches the analytical tier-bound
// prediction and the token-level simulator within 15%.
func TestRuntimeCaseIIICliff(t *testing.T) {
	pipe, prof, sched := caseIIISetup(t)
	good, err := engine.Compile(pipe, sched, prof)
	if err != nil {
		t.Fatal(err)
	}
	// Batch-1 rounds mean thousands of tiny dispatches on the serial
	// tier worker; a short trace at mild compression keeps the replay
	// wall-faithful.
	cliffSched := sched
	cliffSched.IterativeBatch = 1
	const n = 1200
	plan, rep := runCaseIII(t, pipe, prof, cliffSched, n, 10)

	if plan.Metrics.QPS >= 0.5*good.Metrics.QPS {
		t.Fatalf("analytic cliff not steep: %.2f vs %.2f QPS", plan.Metrics.QPS, good.Metrics.QPS)
	}
	within(t, "cliff runtime vs analytic QPS", rep.SustainedQPS, plan.Metrics.QPS, 0.15)
	if rep.SustainedQPS >= 0.5*good.Metrics.QPS {
		t.Errorf("live cliff QPS %.2f did not degrade vs healthy point %.2f", rep.SustainedQPS, good.Metrics.QPS)
	}

	// The token-level simulator models the same tier queueing, so its
	// stall (which exceeds the analytical fixed point's — the closed
	// form prices the throughput bound, not the queueing behind it)
	// must match the live loop.
	tok := tokenSim(t, plan)
	within(t, "cliff runtime vs RunIterative QPS", rep.SustainedQPS,
		float64(plan.Sched.DecodeBatch)/tok.MeanLatency, 0.15)
	ideal := float64(plan.Steps[plan.DecodeIdx].Stage.OutTokens) * plan.Round.DecodeStep
	within(t, "cliff runtime vs RunIterative stall", rep.Stall.Mean, tok.MeanLatency-ideal, 0.15)
}

// TestServerSwitchIterativeDrain hot-swaps between two Case III plans
// mid-replay, under load, with sequences parked in iterative rounds at the
// switch instant: the retired epoch must keep its workers alive until
// every parked sequence resumed, finished its decode loop, and drained —
// zero dropped, zero double-served. Runs under -race in CI.
func TestServerSwitchIterativeDrain(t *testing.T) {
	pipe, prof, sched := caseIIISetup(t)
	small, err := engine.Compile(pipe, sched, prof)
	if err != nil {
		t.Fatal(err)
	}
	bigSched := sched
	bigSched.DecodeBatch = 64
	bigSched.IterativeBatch = 16
	big, err := engine.Compile(pipe, bigSched, prof)
	if err != nil {
		t.Fatal(err)
	}

	const n = 3000
	rate := 1.3 * small.Metrics.QPS
	reqs, err := trace.Poisson(n, rate, 13)
	if err != nil {
		t.Fatal(err)
	}
	reqs = trace.WithTriggers(reqs, small.Round.RoundsPerSeq, pipe.Stages[small.DecodeIdx].OutTokens, 5)
	speedup := (float64(n) / rate) / 3.0
	s, err := NewServer(small, Options{Speedup: speedup, FlushTimeout: iterFlush})
	if err != nil {
		t.Fatal(err)
	}
	var rep *ServerReport
	done := make(chan struct{})
	go func() {
		rep, err = s.Serve(reqs)
		close(done)
	}()
	<-s.Started()
	<-s.AfterVirtual(reqs[n/3].Arrival)
	if err := s.Switch(big); err != nil {
		t.Errorf("switch up: %v", err)
	}
	<-s.AfterVirtual(reqs[2*n/3].Arrival)
	if err := s.Switch(small); err != nil {
		t.Errorf("switch down: %v", err)
	}
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != n || rep.Rejected != 0 {
		t.Fatalf("completed %d rejected %d, want %d/0: parked sequences dropped or double-served across the switch", rep.Completed, rep.Rejected, n)
	}
	if rep.Switches != 2 || len(rep.Epochs) != 3 {
		t.Fatalf("switch history wrong: %d switches, %d epochs", rep.Switches, len(rep.Epochs))
	}
	var admitted int64
	for i, e := range rep.Epochs {
		admitted += e.Admitted
		if e.Admitted == 0 {
			t.Errorf("epoch %d admitted nothing", i)
		}
		if e.DrainedV < e.RetiredV || e.RetiredV < e.StartV {
			t.Errorf("epoch %d lifecycle out of order: %+v", i, e)
		}
	}
	if admitted != int64(n) {
		t.Errorf("epoch admissions sum to %d, want %d (each request on exactly one plan)", admitted, n)
	}
	if rep.Stall.Mean <= 0 {
		t.Errorf("iterative replay measured no stall: %+v", rep.Stall)
	}
}

// TestExecutable: the capability check names the schema for plans the
// engine cannot execute, and accepts everything engine.Compile produces —
// iterative plans included.
func TestExecutable(t *testing.T) {
	if err := Executable(nil); err == nil {
		t.Error("nil plan should be inexecutable")
	}
	pipe, prof, sched := caseIIISetup(t)
	plan, err := engine.Compile(pipe, sched, prof)
	if err != nil {
		t.Fatal(err)
	}
	if err := Executable(plan); err != nil {
		t.Errorf("compiled iterative plan should be executable: %v", err)
	}
	// A hand-built iterative plan without the round structure is the one
	// remaining unsupported shape; the error must name the schema.
	broken := *plan
	broken.Round = nil
	err = Executable(&broken)
	if err == nil {
		t.Fatal("iterative plan without round structure should be rejected")
	}
	if want := pipe.Schema.Name; !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not name schema %q", err, want)
	}
	if _, err := NewServer(&broken, Options{}); err == nil {
		t.Error("NewServer should apply the capability check")
	}
}

// TestRuntimeCaseIIITelemetry polls the windowed feed mid-replay on an
// iterative workload: the virtual round slots must surface in the
// per-stage depth gauges without corrupting the cumulative counters.
func TestRuntimeCaseIIITelemetry(t *testing.T) {
	pipe, prof, sched := caseIIISetup(t)
	plan, err := engine.Compile(pipe, sched, prof)
	if err != nil {
		t.Fatal(err)
	}
	const n = 1500
	reqs, err := trace.Poisson(n, 1.5*plan.Metrics.QPS, 21)
	if err != nil {
		t.Fatal(err)
	}
	speedup := (float64(n) / plan.Metrics.QPS) / 2.0
	rt, err := New(pipe, prof, sched, Options{Speedup: speedup, FlushTimeout: iterFlush})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var rep *Report
	go func() {
		rep, err = rt.Serve(reqs)
		close(done)
	}()
	sawIterDepth := false
	for alive := true; alive; {
		select {
		case <-done:
			alive = false
		case <-time.After(100 * time.Millisecond):
			w := rt.Telemetry(30)
			for _, d := range w.Depths {
				if d.Stage == "iter-retrieval" || d.Stage == "iter-prefix" {
					sawIterDepth = true
				}
			}
		}
	}
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != n {
		t.Fatalf("completed %d of %d", rep.Completed, n)
	}
	if !sawIterDepth {
		t.Error("telemetry never observed a parked iterative round mid-replay")
	}
	if w := rt.Telemetry(1e9); w.Completed != rep.Completed {
		t.Errorf("final cumulative window %+v disagrees with report %d", w, rep.Completed)
	}
	if math.IsNaN(rep.Stall.Mean) || rep.Stall.Mean <= 0 {
		t.Errorf("stall not measured: %+v", rep.Stall)
	}
}
