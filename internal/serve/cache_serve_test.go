package serve

import (
	"math"
	"testing"

	"rago/internal/cache"
	"rago/internal/engine"
	"rago/internal/sim"
	"rago/internal/trace"
)

// hotTrace builds a session-affine Zipfian Case I trace: 5 chunks per
// request (the schema's NeighborsPerQuery) of 100 tokens each, hot
// documents recurring across 64 sessions.
func hotTrace(t testing.TB, n int, seed int64) []trace.Request {
	t.Helper()
	base, err := trace.Poisson(n, 1, seed) // arrivals rescaled by callers
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := trace.WithSessions(base, 64, 0.7, 2000, 5, 1.4, seed)
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

// TestRuntimeCachedCrossCheck is the acceptance check for the cache tier:
// on a hot Zipfian session trace, the live runtime with a real cache at
// batch formation, the discrete-event simulator running the identical
// cache state machine on its own instance, and the credit-replay
// cache-aware analytic must agree on throughput within the established
// 15% band — and the two executors' measured hit rates must sit within 5
// points of each other and of the trace's analytic reuse skew.
func TestRuntimeCachedCrossCheck(t *testing.T) {
	pipe, prof, sched := caseISetup(t)
	sched.Groups[0].Chips = 2 // prefill-bound: credits move QPS
	plan, err := engine.Compile(pipe, sched, prof)
	if err != nil {
		t.Fatal(err)
	}

	const n = 5000
	reqs := hotTrace(t, n, 42)
	cfg := cache.Config{PrefixTokens: 40_000, ChunkTokens: pipe.Schema.ChunkTokens}

	// Analytic leg: replay the trace's chunk tags through a fresh cache
	// for per-request prefix credits, then recost the plan with them.
	credits, replayStats, err := cache.ReplayCredits(cfg, reqs, pipe.Schema.PrefixTokens)
	if err != nil {
		t.Fatal(err)
	}
	want := plan.CachedMetrics(nil, credits)
	if !(want.QPS > plan.Metrics.QPS*1.2) {
		t.Fatalf("hot trace should lift cache-aware analytic QPS well above uncached: %.2f vs %.2f",
			want.QPS, plan.Metrics.QPS)
	}

	// Overdrive at 1.5x the cache-aware capacity (which exceeds the
	// uncached capacity — only a working cache can keep up).
	for i := range reqs {
		reqs[i].Arrival /= 1.5 * want.QPS
	}

	rtCache, err := cache.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	speedup := (float64(n) / want.QPS) / 4.0
	rt, err := New(pipe, prof, sched, Options{Speedup: speedup, Cache: rtCache})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != n {
		t.Fatalf("completed %d of %d", rep.Completed, n)
	}
	if rep.Cache == nil {
		t.Fatal("cached replay reported no cache stats")
	}

	des, err := sim.NewServeFromPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	des.Cache, err = cache.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := des.Run(reqs, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache == nil {
		t.Fatal("cached sim reported no cache stats")
	}

	within(t, "cached runtime QPS vs cache-aware analytic", rep.SustainedQPS, want.QPS, 0.15)
	within(t, "cached runtime QPS vs cached event-sim", rep.SustainedQPS, res.QPS, 0.15)

	// Hit rates: runtime ≈ sim ≈ the trace's intrinsic reuse skew.
	hr, hs, ha := rep.Cache.HitRate, res.Cache.HitRate, replayStats.HitRate
	if ha < 0.5 {
		t.Fatalf("session trace analytic hit rate %.2f implausibly low", ha)
	}
	if math.Abs(hr-hs) > 0.05 {
		t.Errorf("hit rates diverge: runtime %.3f vs sim %.3f (want within 5 points)", hr, hs)
	}
	if math.Abs(hr-ha) > 0.05 {
		t.Errorf("runtime hit rate %.3f vs analytic replay %.3f (want within 5 points)", hr, ha)
	}
	if rep.Cache.SavedTokens <= 0 || res.Cache.SavedTokens <= 0 {
		t.Errorf("saved-prefill accounting empty: runtime %d, sim %d",
			rep.Cache.SavedTokens, res.Cache.SavedTokens)
	}
	// Both executors processed every tagged request through their tier.
	if rep.Cache.Requests != n || res.Cache.Requests != n {
		t.Errorf("cache lookups: runtime %d, sim %d; want %d each", rep.Cache.Requests, res.Cache.Requests, n)
	}
}

// TestCacheInertWhenDisabled: a tagged trace served with no cache must be
// indistinguishable from an untagged one. The discrete-event sim is
// deterministic, so equality is exact — this is the guarantee that chunk
// tags alone (cache off) change nothing.
func TestCacheInertWhenDisabled(t *testing.T) {
	pipe, prof, sched := caseISetup(t)
	plan, err := engine.Compile(pipe, sched, prof)
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	tagged := hotTrace(t, n, 7)
	for i := range tagged {
		tagged[i].Arrival /= 1.5 * plan.Metrics.QPS
	}
	untagged := make([]trace.Request, n)
	for i, r := range tagged {
		r.ChunkIDs = nil
		untagged[i] = r
	}

	desA, err := sim.NewServeFromPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	resTagged, err := desA.Run(tagged, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	desB, err := sim.NewServeFromPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	resPlain, err := desB.Run(untagged, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if resTagged.QPS != resPlain.QPS || resTagged.MeanTTFT != resPlain.MeanTTFT ||
		resTagged.MeanLatency != resPlain.MeanLatency {
		t.Errorf("tags with no cache drifted the sim:\n tagged   %+v\n untagged %+v", resTagged, resPlain)
	}
	if resTagged.Cache != nil {
		t.Errorf("cache-less sim grew cache stats: %+v", resTagged.Cache)
	}

	// The live runtime on the tagged trace with a nil cache keeps the
	// historical report surface: no cache stats, no shape artifacts.
	speedup := (float64(n) / plan.Metrics.QPS) / 2.0
	rt, err := New(pipe, prof, sched, Options{Speedup: speedup})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Serve(tagged)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != n {
		t.Fatalf("completed %d of %d", rep.Completed, n)
	}
	if rep.Cache != nil {
		t.Errorf("cache-less runtime grew cache stats: %+v", rep.Cache)
	}
	if len(rep.Shapes) != 0 || rep.PadWaste != 0 {
		t.Errorf("tagged cache-less replay grew shape artifacts: shapes %+v pad %.4f", rep.Shapes, rep.PadWaste)
	}
}

// TestAnswerTierShortCircuit: with session affinity 1 and one session,
// every request after the first carries the identical retrieved context
// and shape, so the exact-match answer tier short-circuits most of the
// trace in both executors — and every request still completes.
func TestAnswerTierShortCircuit(t *testing.T) {
	pipe, prof, sched := caseISetup(t)
	plan, err := engine.Compile(pipe, sched, prof)
	if err != nil {
		t.Fatal(err)
	}
	const n = 800
	base, err := trace.Poisson(n, plan.Metrics.QPS, 3)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := trace.WithSessions(base, 1, 1.0, 2000, 5, 1.4, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cache.Config{AnswerEntries: 16}

	rtCache, err := cache.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(pipe, prof, sched, Options{Speedup: 50, Cache: rtCache})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != n {
		t.Fatalf("completed %d of %d", rep.Completed, n)
	}
	if rep.Cache == nil || rep.Cache.AnswerHits == 0 {
		t.Fatalf("answer tier never hit: %+v", rep.Cache)
	}

	des, err := sim.NewServeFromPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	des.Cache, err = cache.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := des.Run(reqs, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != n {
		t.Fatalf("sim completed %d of %d", res.Completed, n)
	}
	if res.Cache == nil || res.Cache.AnswerHits == 0 {
		t.Fatalf("sim answer tier never hit: %+v", res.Cache)
	}
	// Short-circuited requests skip decode entirely, so the cached run
	// finishes the trace no slower than arrivals allow and hit counts in
	// the two executors agree on the same deterministic trace structure.
	diff := float64(rep.Cache.AnswerHits-res.Cache.AnswerHits) / float64(n)
	if math.Abs(diff) > 0.1 {
		t.Errorf("answer hits diverge: runtime %d vs sim %d over %d requests",
			rep.Cache.AnswerHits, res.Cache.AnswerHits, n)
	}
}
