package serve

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"rago/internal/cache"
	"rago/internal/engine"
	"rago/internal/obs"
	"rago/internal/perf"
	"rago/internal/roofline"
)

// collector accumulates online serving measurements. All mutation happens
// under one mutex; calls are short (append / counter bump), so contention
// stays negligible next to stage service times. One collector may be
// shared by several dataplanes (the Server's epochs), so gauges are
// additive across them.
type collector struct {
	mu sync.Mutex

	admitted, rejected, completed int
	ttft, tpot, latency           []float64
	stall                         []float64 // iterative decode-loop parked seconds per request
	// shapeP and shapeO record each completion's sequence shape (0 =
	// schema constant), parallel to ttft/tpot, so latency quantiles can
	// be bucketed by request shape after the fact and inside windows.
	shapeP, shapeO      []int
	firstDone, lastDone float64

	// arrV records every arrival's virtual time (admitted and rejected;
	// monotone — the replay loop is sequential) and doneV every
	// completion's, so windowed rates and quantiles can be computed
	// mid-replay. doneV is only roughly ordered (decode slots overlap),
	// so donePMax carries its running prefix maximum: everything before
	// the first index with donePMax > t finished at or before t, which
	// lets a window snapshot binary-search its suffix instead of
	// scanning the whole history.
	arrV     []float64
	doneV    []float64
	donePMax []float64

	stageNames []string
	queuePeak  []int
	depthNow   []int // live queued+in-service gauge per stage
	batches    []int
	fillNum    []int
	fillDen    []int
	// padTok/padTotal accumulate effective vs padded batch tokens per
	// stage (shaped prefix batches only) for padding-waste reporting.
	padTok   []int64
	padTotal []int64
	// chunkBatches/chunkSum count chunked-prefill batches and their total
	// chunk depth, so the report can expose the mean chunks per batch.
	chunkBatches int
	chunkSum     int64

	searches      int
	searchWall    []float64 // wall seconds per real retrieval batch
	searchQueries int
	// Sharded scatter-gather degradation: replica picks that skipped a
	// down replica, and consulted shards dropped from a merge outright.
	shardFellBack int
	shardLost     int
}

// init sizes the per-stage accounting for a plan's slot layout: one entry
// per pipeline stage plus, on iterative plans, the decode loop's two
// virtual round slots.
func (c *collector) init(plan *engine.Plan) {
	n := plan.NumSlots()
	c.stageNames = plan.SlotNames()
	c.queuePeak = make([]int, n)
	c.depthNow = make([]int, n)
	c.batches = make([]int, n)
	c.fillNum = make([]int, n)
	c.fillDen = make([]int, n)
	c.padTok = make([]int64, n)
	c.padTotal = make([]int64, n)
}

func (c *collector) admit(at float64) {
	c.mu.Lock()
	c.admitted++
	c.arrV = append(c.arrV, at)
	c.mu.Unlock()
}

func (c *collector) reject(at float64) {
	c.mu.Lock()
	c.rejected++
	c.arrV = append(c.arrV, at)
	c.mu.Unlock()
}

// enqueued records a request entering a stage queue whose depth (within
// its dataplane) is now depth, bumping the live gauge.
func (c *collector) enqueued(stage, depth int) {
	c.mu.Lock()
	if depth > c.queuePeak[stage] {
		c.queuePeak[stage] = depth
	}
	c.depthNow[stage]++
	c.mu.Unlock()
}

// release drops n requests from a stage's live gauge without a batch
// having been dispatched (decode completions).
func (c *collector) release(stage, n int) {
	c.mu.Lock()
	c.depthNow[stage] -= n
	if c.depthNow[stage] < 0 {
		c.depthNow[stage] = 0
	}
	c.mu.Unlock()
}

// batchServed records one dispatched batch. tok and pad are the batch's
// effective and padded token totals for shaped prefix batches (both 0 when
// no shape-aware costing applied); chunks is the batch's chunk count under
// chunked prefill (0 for whole-prompt batches).
func (c *collector) batchServed(stage, formed, full, tok, pad, chunks int) {
	c.mu.Lock()
	c.batches[stage]++
	c.fillNum[stage] += formed
	c.fillDen[stage] += full
	c.padTok[stage] += int64(tok)
	c.padTotal[stage] += int64(pad)
	if chunks > 0 {
		c.chunkBatches++
		c.chunkSum += int64(chunks)
	}
	c.depthNow[stage] -= formed
	if c.depthNow[stage] < 0 {
		c.depthNow[stage] = 0
	}
	c.mu.Unlock()
}

func (c *collector) searchServed(queries int, wall float64) {
	c.mu.Lock()
	c.searches++
	c.searchQueries += queries
	c.searchWall = append(c.searchWall, wall)
	c.mu.Unlock()
}

func (c *collector) shardDegraded(fellBack, lost int) {
	c.mu.Lock()
	c.shardFellBack += fellBack
	c.shardLost += lost
	c.mu.Unlock()
}

func (c *collector) complete(ttft, tpot, latency, done, stall float64, promptTok, outTok int) {
	c.mu.Lock()
	c.completed++
	c.ttft = append(c.ttft, ttft)
	c.tpot = append(c.tpot, tpot)
	c.latency = append(c.latency, latency)
	c.stall = append(c.stall, stall)
	c.shapeP = append(c.shapeP, promptTok)
	c.shapeO = append(c.shapeO, outTok)
	c.doneV = append(c.doneV, done)
	pm := done
	if n := len(c.donePMax); n > 0 && c.donePMax[n-1] > pm {
		pm = c.donePMax[n-1]
	}
	c.donePMax = append(c.donePMax, pm)
	if c.completed == 1 || done < c.firstDone {
		c.firstDone = done
	}
	if done > c.lastDone {
		c.lastDone = done
	}
	c.mu.Unlock()
}

// Quantiles summarizes one latency distribution (seconds).
type Quantiles struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

func quantilesOf(xs []float64) Quantiles {
	if len(xs) == 0 {
		return Quantiles{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var sum float64
	for _, x := range s {
		sum += x
	}
	rank := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(s)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(s) {
			i = len(s) - 1
		}
		return s[i]
	}
	return Quantiles{
		Mean: sum / float64(len(s)),
		P50:  rank(0.50),
		P95:  rank(0.95),
		P99:  rank(0.99),
		Max:  s[len(s)-1],
	}
}

func (q Quantiles) String() string {
	return fmt.Sprintf("p50 %.4fs  p95 %.4fs  p99 %.4fs  mean %.4fs  max %.4fs",
		q.P50, q.P95, q.P99, q.Mean, q.Max)
}

// QueueStat reports one stage's batching behaviour over the run.
type QueueStat struct {
	// Stage is the pipeline stage name.
	Stage string `json:"stage"`
	// PeakDepth is the deepest its queue got.
	PeakDepth int `json:"peak_depth"`
	// Batches is how many batches were dispatched.
	Batches int `json:"batches"`
	// MeanFill is the mean formed-batch size over the configured size.
	MeanFill float64 `json:"mean_fill"`
	// PadWaste is the stage's padding-waste fraction: tokens spent
	// padding shaped batches to their per-batch maximum over all padded
	// tokens (0 where no shape-aware costing applied).
	PadWaste float64 `json:"pad_waste,omitempty"`
}

// ShapeStat reports latency quantiles for one shape bucket of completed
// requests. Buckets are power-of-two ceilings of the per-request prompt
// and output lengths ("p<=512 o<=256"); requests running at the schema
// constants land in the "schema" bucket, so a constant-shape replay has
// exactly one bucket.
type ShapeStat struct {
	// Bucket labels the shape class.
	Bucket string `json:"bucket"`
	// Count is how many completions fell in the bucket.
	Count int `json:"count"`
	// MeanPromptTokens and MeanOutputTokens are the bucket's observed
	// mean lengths (0 for the "schema" bucket — schema constants), the
	// representative shape an online re-weighting of a plan library's
	// capacity staircase prices the bucket at.
	MeanPromptTokens int `json:"mean_prompt_tokens,omitempty"`
	MeanOutputTokens int `json:"mean_output_tokens,omitempty"`
	// TTFT and TPOT are quantiles over the bucket's completions.
	TTFT Quantiles `json:"ttft"`
	TPOT Quantiles `json:"tpot"`
}

// shapeBucketOf maps a completion's shape to its bucket label and a sort
// key (prompt-major). Unshaped requests bucket as "schema".
func shapeBucketOf(promptTok, outTok int) (string, uint64) {
	if promptTok == 0 && outTok == 0 {
		return "schema", 0
	}
	p, o := roofline.Pow2Up(promptTok), roofline.Pow2Up(outTok)
	part := func(prefix string, raw, ceil int) string {
		if raw == 0 {
			return prefix + "=schema"
		}
		return fmt.Sprintf("%s<=%d", prefix, ceil)
	}
	return part("p", promptTok, p) + " " + part("o", outTok, o), uint64(p)<<32 | uint64(o)
}

// shapeStats buckets parallel ttft/tpot/shape slices into ShapeStats
// sorted by ascending shape. Caller holds the collector lock (or owns the
// slices).
func shapeStats(ttft, tpot []float64, shapeP, shapeO []int) []ShapeStat {
	type agg struct {
		label      string
		key        uint64
		ttft, tpot []float64
		sumP, sumO int
	}
	byBucket := map[string]*agg{}
	for i := range ttft {
		label, key := shapeBucketOf(shapeP[i], shapeO[i])
		a := byBucket[label]
		if a == nil {
			a = &agg{label: label, key: key}
			byBucket[label] = a
		}
		a.ttft = append(a.ttft, ttft[i])
		a.tpot = append(a.tpot, tpot[i])
		a.sumP += shapeP[i]
		a.sumO += shapeO[i]
	}
	aggs := make([]*agg, 0, len(byBucket))
	for _, a := range byBucket {
		aggs = append(aggs, a)
	}
	sort.Slice(aggs, func(i, j int) bool {
		if aggs[i].key != aggs[j].key {
			return aggs[i].key < aggs[j].key
		}
		return aggs[i].label < aggs[j].label
	})
	out := make([]ShapeStat, len(aggs))
	for i, a := range aggs {
		out[i] = ShapeStat{
			Bucket:           a.label,
			Count:            len(a.ttft),
			MeanPromptTokens: a.sumP / len(a.ttft),
			MeanOutputTokens: a.sumO / len(a.ttft),
			TTFT:             quantilesOf(a.ttft),
			TPOT:             quantilesOf(a.tpot),
		}
	}
	return out
}

// Report is the measured behaviour of one trace replay. All latencies are
// virtual (schedule) seconds. It marshals cleanly to JSON for CI
// artifacts and offline analysis.
type Report struct {
	Admitted  int `json:"admitted"`
	Rejected  int `json:"rejected"`
	Completed int `json:"completed"`

	// TTFT is arrival to prefix completion; TPOT the per-output-token
	// decode time; Latency arrival to full generation.
	TTFT    Quantiles `json:"ttft"`
	TPOT    Quantiles `json:"tpot"`
	Latency Quantiles `json:"latency"`
	// Stall is the per-request seconds sequences spent parked in the
	// §5.3 decode loop (batch-formation wait plus round service);
	// all-zero on single-retrieval workloads.
	Stall Quantiles `json:"stall"`

	// Shapes breaks TTFT/TPOT down by per-request shape bucket
	// (power-of-two prompt/output ceilings; constant-shape replays
	// collapse into the single "schema" bucket).
	Shapes []ShapeStat `json:"shapes,omitempty"`
	// PadWaste is the fraction of prefix-batch tokens spent padding
	// heterogeneous prompts to their batch maximum (0 when no shaped
	// batch was served).
	PadWaste float64 `json:"pad_waste,omitempty"`
	// BatchPolicy names the prefix batch-formation policy the run served
	// under ("" on multi-plan runs, where epochs may differ); ChunkQuantum
	// is the chunked-prefill quantum in tokens (0 = whole-prompt).
	BatchPolicy  string `json:"batch_policy,omitempty"`
	ChunkQuantum int    `json:"chunk_quantum,omitempty"`
	// MeanChunkDepth is the mean chunks per chunked prefix batch (0 when
	// chunked prefill was off).
	MeanChunkDepth float64 `json:"mean_chunk_depth,omitempty"`

	// SustainedQPS is completions over the completion span — the
	// saturation throughput when the trace overdrives the schedule.
	SustainedQPS float64 `json:"sustained_qps"`
	// SteadyQPS is the peak windowed completion rate (obs.SteadyRate):
	// the best quarter-span window, so warmup ramp and drain tail don't
	// dilute the steady-state throughput the way the full span does on
	// short runs. 0 when there are too few completions to window.
	SteadyQPS float64 `json:"steady_qps,omitempty"`
	// Span is the virtual completion span the rate is measured over.
	Span float64 `json:"span"`

	// Analytic carries the assembler's prediction for the same schedule,
	// zero-valued unless HasAnalytic (a multi-plan run has no single
	// reference); QPSVsAnalytic is SustainedQPS over Analytic.QPS.
	Analytic      perf.Metrics `json:"analytic"`
	HasAnalytic   bool         `json:"has_analytic"`
	QPSVsAnalytic float64      `json:"qps_vs_analytic,omitempty"`

	// Cache is the reuse cache's final counters (prefix hit rate, saved
	// prefill tokens, evictions, answer-tier hits); nil when no cache was
	// configured.
	Cache *cache.Stats `json:"cache,omitempty"`

	// Queues reports per-stage batching and backlog, decode included.
	Queues []QueueStat `json:"queues,omitempty"`

	// Real-retrieval substrate stats (zero unless a Searcher or Sharded
	// index was set). ShardFallbacks counts replica picks that skipped a
	// down replica; ShardLost counts consulted shards a scatter-gather
	// had to merge without (every replica down — graceful degradation).
	Searches       int       `json:"searches,omitempty"`
	SearchQueries  int       `json:"search_queries,omitempty"`
	SearchWall     Quantiles `json:"search_wall"`
	ShardFallbacks int       `json:"shard_fallbacks,omitempty"`
	ShardLost      int       `json:"shard_lost,omitempty"`

	// Speedup and WallSeconds record the time compression of the run.
	Speedup     float64 `json:"speedup"`
	WallSeconds float64 `json:"wall_seconds"`
}

// report snapshots the collector into a Report. It runs after the owner's
// WaitGroup barrier, so no concurrent mutation remains.
func (c *collector) report(analytic perf.Metrics, hasAnalytic bool, speedup, wall float64) *Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	rep := &Report{
		Admitted:      c.admitted,
		Rejected:      c.rejected,
		Completed:     c.completed,
		TTFT:          quantilesOf(c.ttft),
		TPOT:          quantilesOf(c.tpot),
		Latency:       quantilesOf(c.latency),
		Stall:         quantilesOf(c.stall),
		Analytic:      analytic,
		HasAnalytic:   hasAnalytic,
		Searches:       c.searches,
		SearchQueries:  c.searchQueries,
		SearchWall:     quantilesOf(c.searchWall),
		ShardFallbacks: c.shardFellBack,
		ShardLost:      c.shardLost,
		Speedup:       speedup,
		WallSeconds:   wall,
	}
	var padTok, padTotal int64
	// Shape buckets only add signal on heterogeneous traces; a
	// constant-shape replay would collapse into one "schema" row that
	// just repeats the global quantiles.
	for i := range c.shapeP {
		if c.shapeP[i] != 0 || c.shapeO[i] != 0 {
			rep.Shapes = shapeStats(c.ttft, c.tpot, c.shapeP, c.shapeO)
			break
		}
	}
	if span := c.lastDone - c.firstDone; span > 0 && c.completed > 1 {
		rep.Span = span
		rep.SustainedQPS = float64(c.completed-1) / span
	}
	rep.SteadyQPS = obs.SteadyRate(c.doneV)
	if rep.HasAnalytic && analytic.QPS > 0 {
		rep.QPSVsAnalytic = rep.SustainedQPS / analytic.QPS
	}
	for i, name := range c.stageNames {
		if c.batches[i] == 0 && c.queuePeak[i] == 0 {
			continue
		}
		qs := QueueStat{Stage: name, PeakDepth: c.queuePeak[i], Batches: c.batches[i]}
		if c.fillDen[i] > 0 {
			qs.MeanFill = float64(c.fillNum[i]) / float64(c.fillDen[i])
		}
		if c.padTotal[i] > 0 {
			qs.PadWaste = 1 - float64(c.padTok[i])/float64(c.padTotal[i])
			padTok += c.padTok[i]
			padTotal += c.padTotal[i]
		}
		rep.Queues = append(rep.Queues, qs)
	}
	if padTotal > 0 {
		rep.PadWaste = 1 - float64(padTok)/float64(padTotal)
	}
	if c.chunkBatches > 0 {
		rep.MeanChunkDepth = float64(c.chunkSum) / float64(c.chunkBatches)
	}
	return rep
}

// String renders the latency report the `rago serve` subcommand prints.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "completed %d/%d requests (%d rejected) in %.1fs virtual / %.1fs wall (speedup %.0fx)\n",
		r.Completed, r.Admitted+r.Rejected, r.Rejected, r.Span, r.WallSeconds, r.Speedup)
	fmt.Fprintf(&b, "sustained QPS %.2f", r.SustainedQPS)
	if r.SteadyQPS > 0 {
		fmt.Fprintf(&b, "  steady %.2f", r.SteadyQPS)
	}
	if r.HasAnalytic {
		fmt.Fprintf(&b, "  (analytical %.2f, ratio %.2f)", r.Analytic.QPS, r.QPSVsAnalytic)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "TTFT     %s\n", r.TTFT)
	fmt.Fprintf(&b, "TPOT     %s\n", r.TPOT)
	fmt.Fprintf(&b, "latency  %s\n", r.Latency)
	if r.Stall.Max > 0 {
		fmt.Fprintf(&b, "stall    %s\n", r.Stall)
	}
	for _, s := range r.Shapes {
		fmt.Fprintf(&b, "shape %-18s n %6d  TTFT p99 %.4fs  TPOT p99 %.5fs\n", s.Bucket, s.Count, s.TTFT.P99, s.TPOT.P99)
	}
	if r.PadWaste > 0 {
		fmt.Fprintf(&b, "padding waste %.1f%% of prefix-batch tokens (pad-to-max over mixed shapes)\n", 100*r.PadWaste)
	}
	if r.BatchPolicy != "" && r.BatchPolicy != "fifo" {
		fmt.Fprintf(&b, "batch formation: %s\n", r.BatchPolicy)
	}
	if r.ChunkQuantum > 0 {
		fmt.Fprintf(&b, "chunked prefill: quantum %d tokens, mean %.1f chunks/batch\n", r.ChunkQuantum, r.MeanChunkDepth)
	}
	if r.Cache != nil {
		fmt.Fprintf(&b, "%s\n", r.Cache)
	}
	for _, q := range r.Queues {
		switch {
		case q.Batches > 0 && q.PadWaste > 0:
			fmt.Fprintf(&b, "queue %-15s peak %5d  batches %6d  fill %.2f  pad-waste %.2f\n", q.Stage, q.PeakDepth, q.Batches, q.MeanFill, q.PadWaste)
		case q.Batches > 0:
			fmt.Fprintf(&b, "queue %-15s peak %5d  batches %6d  fill %.2f\n", q.Stage, q.PeakDepth, q.Batches, q.MeanFill)
		default:
			fmt.Fprintf(&b, "queue %-15s peak %5d\n", q.Stage, q.PeakDepth)
		}
	}
	if r.Searches > 0 {
		fmt.Fprintf(&b, "retrieval substrate: %d real batches (%d queries), wall %s\n",
			r.Searches, r.SearchQueries, r.SearchWall)
	}
	return b.String()
}
