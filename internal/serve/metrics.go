package serve

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"rago/internal/perf"
	"rago/internal/pipeline"
)

// collector accumulates online serving measurements. All mutation happens
// under one mutex; calls are short (append / counter bump), so contention
// stays negligible next to stage service times.
type collector struct {
	mu sync.Mutex

	admitted, rejected, completed int
	ttft, tpot, latency           []float64
	firstDone, lastDone           float64

	stageNames []string
	queuePeak  []int
	batches    []int
	fillNum    []int
	fillDen    []int

	searches      int
	searchWall    []float64 // wall seconds per real retrieval batch
	searchQueries int
}

func (c *collector) init(pipe pipeline.Pipeline) {
	n := len(pipe.Stages)
	c.stageNames = make([]string, n)
	for i, st := range pipe.Stages {
		c.stageNames[i] = st.Kind.String()
	}
	c.queuePeak = make([]int, n)
	c.batches = make([]int, n)
	c.fillNum = make([]int, n)
	c.fillDen = make([]int, n)
}

func (c *collector) admit() {
	c.mu.Lock()
	c.admitted++
	c.mu.Unlock()
}

func (c *collector) reject() {
	c.mu.Lock()
	c.rejected++
	c.mu.Unlock()
}

func (c *collector) observeQueue(stage, depth int) {
	c.mu.Lock()
	if depth > c.queuePeak[stage] {
		c.queuePeak[stage] = depth
	}
	c.mu.Unlock()
}

func (c *collector) batchServed(stage, formed, full int) {
	c.mu.Lock()
	c.batches[stage]++
	c.fillNum[stage] += formed
	c.fillDen[stage] += full
	c.mu.Unlock()
}

func (c *collector) searchServed(queries int, wall float64) {
	c.mu.Lock()
	c.searches++
	c.searchQueries += queries
	c.searchWall = append(c.searchWall, wall)
	c.mu.Unlock()
}

func (c *collector) complete(ttft, tpot, latency, done float64) {
	c.mu.Lock()
	c.completed++
	c.ttft = append(c.ttft, ttft)
	c.tpot = append(c.tpot, tpot)
	c.latency = append(c.latency, latency)
	if c.completed == 1 || done < c.firstDone {
		c.firstDone = done
	}
	if done > c.lastDone {
		c.lastDone = done
	}
	c.mu.Unlock()
}

// Quantiles summarizes one latency distribution (seconds).
type Quantiles struct {
	Mean, P50, P95, P99, Max float64
}

func quantilesOf(xs []float64) Quantiles {
	if len(xs) == 0 {
		return Quantiles{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var sum float64
	for _, x := range s {
		sum += x
	}
	rank := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(s)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(s) {
			i = len(s) - 1
		}
		return s[i]
	}
	return Quantiles{
		Mean: sum / float64(len(s)),
		P50:  rank(0.50),
		P95:  rank(0.95),
		P99:  rank(0.99),
		Max:  s[len(s)-1],
	}
}

func (q Quantiles) String() string {
	return fmt.Sprintf("p50 %.4fs  p95 %.4fs  p99 %.4fs  mean %.4fs  max %.4fs",
		q.P50, q.P95, q.P99, q.Mean, q.Max)
}

// QueueStat reports one stage's batching behaviour over the run.
type QueueStat struct {
	// Stage is the pipeline stage name.
	Stage string
	// PeakDepth is the deepest its queue got.
	PeakDepth int
	// Batches is how many batches were dispatched.
	Batches int
	// MeanFill is the mean formed-batch size over the configured size.
	MeanFill float64
}

// Report is the measured behaviour of one trace replay. All latencies are
// virtual (schedule) seconds.
type Report struct {
	Admitted, Rejected, Completed int

	// TTFT is arrival to prefix completion; TPOT the per-output-token
	// decode time; Latency arrival to full generation.
	TTFT, TPOT, Latency Quantiles

	// SustainedQPS is completions over the completion span — the
	// saturation throughput when the trace overdrives the schedule.
	SustainedQPS float64
	// Span is the virtual completion span the rate is measured over.
	Span float64

	// Analytic carries the assembler's prediction for the same schedule;
	// QPSVsAnalytic is SustainedQPS over Analytic.QPS (0 if unavailable).
	Analytic      perf.Metrics
	HasAnalytic   bool
	QPSVsAnalytic float64

	// Queues reports per-stage batching and backlog, decode included.
	Queues []QueueStat

	// Real-retrieval substrate stats (zero unless a Searcher was set).
	Searches      int
	SearchQueries int
	SearchWall    Quantiles

	// Speedup and WallSeconds record the time compression of the run.
	Speedup     float64
	WallSeconds float64
}

// report snapshots the collector into a Report. It runs after Serve's
// WaitGroup barrier, so no concurrent mutation remains.
func (c *collector) report(rt *Runtime) *Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	rep := &Report{
		Admitted:      c.admitted,
		Rejected:      c.rejected,
		Completed:     c.completed,
		TTFT:          quantilesOf(c.ttft),
		TPOT:          quantilesOf(c.tpot),
		Latency:       quantilesOf(c.latency),
		Analytic:      rt.plan.Metrics,
		HasAnalytic:   true,
		Searches:      c.searches,
		SearchQueries: c.searchQueries,
		SearchWall:    quantilesOf(c.searchWall),
		Speedup:       rt.opts.Speedup,
		WallSeconds:   time.Since(rt.clock.start).Seconds(),
	}
	if span := c.lastDone - c.firstDone; span > 0 && c.completed > 1 {
		rep.Span = span
		rep.SustainedQPS = float64(c.completed-1) / span
	}
	if rep.HasAnalytic && rt.plan.Metrics.QPS > 0 {
		rep.QPSVsAnalytic = rep.SustainedQPS / rt.plan.Metrics.QPS
	}
	for i, name := range c.stageNames {
		if c.batches[i] == 0 && c.queuePeak[i] == 0 {
			continue
		}
		qs := QueueStat{Stage: name, PeakDepth: c.queuePeak[i], Batches: c.batches[i]}
		if c.fillDen[i] > 0 {
			qs.MeanFill = float64(c.fillNum[i]) / float64(c.fillDen[i])
		}
		rep.Queues = append(rep.Queues, qs)
	}
	return rep
}

// String renders the latency report the `rago serve` subcommand prints.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "completed %d/%d requests (%d rejected) in %.1fs virtual / %.1fs wall (speedup %.0fx)\n",
		r.Completed, r.Admitted+r.Rejected, r.Rejected, r.Span, r.WallSeconds, r.Speedup)
	fmt.Fprintf(&b, "sustained QPS %.2f", r.SustainedQPS)
	if r.HasAnalytic {
		fmt.Fprintf(&b, "  (analytical %.2f, ratio %.2f)", r.Analytic.QPS, r.QPSVsAnalytic)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "TTFT     %s\n", r.TTFT)
	fmt.Fprintf(&b, "TPOT     %s\n", r.TPOT)
	fmt.Fprintf(&b, "latency  %s\n", r.Latency)
	for _, q := range r.Queues {
		if q.Batches > 0 {
			fmt.Fprintf(&b, "queue %-15s peak %5d  batches %6d  fill %.2f\n", q.Stage, q.PeakDepth, q.Batches, q.MeanFill)
		} else {
			fmt.Fprintf(&b, "queue %-15s peak %5d\n", q.Stage, q.PeakDepth)
		}
	}
	if r.Searches > 0 {
		fmt.Fprintf(&b, "retrieval substrate: %d real batches (%d queries), wall %s\n",
			r.Searches, r.SearchQueries, r.SearchWall)
	}
	return b.String()
}
