package serve

import (
	"math"
	"testing"

	"rago/internal/engine"
	"rago/internal/sim"
	"rago/internal/trace"
)

// formationConfigs are the batch-formation operating points the runtime
// tests sweep: the FIFO baseline, the two shape-aware policies, and
// chunked prefill at a 256-token quantum.
var formationConfigs = []struct {
	name    string
	policy  engine.BatchPolicy
	quantum int
}{
	{"fifo", engine.PolicyFIFO, 0},
	{"bucketed", engine.PolicyBucketed, 0},
	{"sorted", engine.PolicySorted, 0},
	{"chunked", engine.PolicyFIFO, 256},
}

// TestRuntimeBatchPolicyCrossCheck is the acceptance check for the
// batch-formation refactor: for every policy (and for chunked prefill),
// the live runtime, the discrete-event simulator, and the policy-aware
// analytical chain must agree within the established 15% band on the
// same heavy-tailed Case I trace — and the shape-aware policies must
// actually cut padding waste versus the FIFO baseline they replace.
func TestRuntimeBatchPolicyCrossCheck(t *testing.T) {
	pipe, prof, base := caseISetup(t)

	type outcome struct {
		qps, padWaste float64
	}
	results := make(map[string]outcome, len(formationConfigs))

	for _, cfg := range formationConfigs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			sched := base
			sched.FormPolicy = cfg.policy
			sched.ChunkQuantum = cfg.quantum
			plan, err := engine.Compile(pipe, sched, prof)
			if err != nil {
				t.Fatal(err)
			}

			const n = 4000
			reqs, err := trace.Poisson(n, 1, 42) // rescaled below
			if err != nil {
				t.Fatal(err)
			}
			reqs = heavyShapes(t, reqs)
			want := plan.ShapeMetrics(shapesOf(reqs))
			// Overdrive at 1.5x the policy-aware capacity so the replay
			// measures formation under saturation, where padding matters.
			for i := range reqs {
				reqs[i].Arrival /= 1.5 * want.QPS
			}

			speedup := (float64(n) / want.QPS) / 3.0
			rt, err := New(pipe, prof, sched, Options{Speedup: speedup})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := rt.Serve(reqs)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Completed != n {
				t.Fatalf("completed %d of %d", rep.Completed, n)
			}
			if rep.BatchPolicy != cfg.policy.String() || rep.ChunkQuantum != cfg.quantum {
				t.Errorf("report misnames the formation config: %q/%d, want %q/%d",
					rep.BatchPolicy, rep.ChunkQuantum, cfg.policy.String(), cfg.quantum)
			}
			if cfg.quantum > 0 && rep.MeanChunkDepth <= 1 {
				t.Errorf("chunked run reports mean chunk depth %.2f, want > 1", rep.MeanChunkDepth)
			}

			des, err := sim.NewServeFromPlan(plan)
			if err != nil {
				t.Fatal(err)
			}
			res, err := des.Run(reqs, 0.05)
			if err != nil {
				t.Fatal(err)
			}
			if res.Completed != n {
				t.Fatalf("sim completed %d of %d", res.Completed, n)
			}

			within(t, cfg.name+" runtime QPS vs policy-aware analytic", rep.SustainedQPS, want.QPS, 0.15)
			within(t, cfg.name+" runtime QPS vs event-sim", rep.SustainedQPS, res.QPS, 0.15)
			within(t, cfg.name+" runtime mean TTFT vs event-sim", rep.TTFT.Mean, res.MeanTTFT, 0.15)
			if math.Abs(rep.PadWaste-res.PadWaste) > 0.1 {
				t.Errorf("%s padding waste disagrees: runtime %.3f vs sim %.3f", cfg.name, rep.PadWaste, res.PadWaste)
			}
			results[cfg.name] = outcome{qps: rep.SustainedQPS, padWaste: rep.PadWaste}
		})
	}

	fifo, ok := results["fifo"]
	if !ok {
		t.Fatal("FIFO baseline never ran")
	}
	if fifo.padWaste <= 0.3 {
		t.Fatalf("FIFO baseline pad waste %.3f — the heavy-tailed mix should waste much more", fifo.padWaste)
	}
	for _, name := range []string{"bucketed", "sorted", "chunked"} {
		r, ok := results[name]
		if !ok {
			continue // its subtest already failed
		}
		if !(r.padWaste < fifo.padWaste) {
			t.Errorf("%s pad waste %.3f does not improve on FIFO's %.3f", name, r.padWaste, fifo.padWaste)
		}
	}
}

// TestRuntimeFormationInvariants is the policy-invariant property test:
// whatever the formation policy reorders or the chunk quantum splits,
// every admitted request is served exactly once — no starvation, no
// drops, no double-serves — under saturating heavy-tailed load. Sized to
// stay cheap under -race, which is how CI runs it.
func TestRuntimeFormationInvariants(t *testing.T) {
	pipe, prof, base := caseISetup(t)
	for _, cfg := range formationConfigs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			sched := base
			sched.FormPolicy = cfg.policy
			sched.ChunkQuantum = cfg.quantum
			plan, err := engine.Compile(pipe, sched, prof)
			if err != nil {
				t.Fatal(err)
			}
			const n = 800
			reqs, err := trace.Poisson(n, 1, 7)
			if err != nil {
				t.Fatal(err)
			}
			reqs = heavyShapes(t, reqs)
			want := plan.ShapeMetrics(shapesOf(reqs))
			// 2x overdrive: the queue stays deep, so a policy that could
			// starve an unlucky bucket would starve it here.
			for i := range reqs {
				reqs[i].Arrival /= 2 * want.QPS
			}
			rt, err := New(pipe, prof, sched, Options{Speedup: (float64(n) / want.QPS) / 1.5})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := rt.Serve(reqs)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Completed != n || rep.Rejected != 0 {
				t.Errorf("%s: completed %d rejected %d of %d — formation lost or duplicated work",
					cfg.name, rep.Completed, rep.Rejected, n)
			}
			// Per-request latency accounting must cover the completions.
			if rep.Admitted != n || rep.Latency.Mean <= 0 {
				t.Errorf("%s: admitted %d of %d, mean latency %.4f — accounting hole",
					cfg.name, rep.Admitted, n, rep.Latency.Mean)
			}
		})
	}
}
