package serve

import (
	"math"
	"testing"

	"rago/internal/core"
	"rago/internal/hw"
	"rago/internal/pipeline"
	"rago/internal/ragschema"
	"rago/internal/sim"
	"rago/internal/stageperf"
	"rago/internal/trace"
	"rago/internal/vectordb"
)

// caseIVSetup builds the richest non-iterative pipeline (rewriter +
// retrieval + reranker, 5 XPU stages) with the same schedule the
// discrete-event validator is tested on.
func caseIVSetup(t testing.TB) (pipeline.Pipeline, *stageperf.Profiler, core.Schedule) {
	t.Helper()
	schema := ragschema.CaseIV(8e9)
	pipe, err := pipeline.Build(schema)
	if err != nil {
		t.Fatal(err)
	}
	prof := stageperf.New(hw.XPUC, hw.EPYCHost, schema)
	sched := core.Schedule{
		Groups: []core.GroupSchedule{
			{Stages: []int{0, 1}, Chips: 4, Batch: 4},  // rewrite prefix+decode
			{Stages: []int{3, 4}, Chips: 16, Batch: 4}, // rerank + prefix
		},
		RetrievalServers: 16,
		RetrievalBatch:   4,
		DecodeChips:      16,
		DecodeBatch:      64,
		DecodeReplicas:   4,
	}
	return pipe, prof, sched
}

// caseISetup is the simple single-retrieval pipeline from the sim tests.
func caseISetup(t testing.TB) (pipeline.Pipeline, *stageperf.Profiler, core.Schedule) {
	t.Helper()
	schema := ragschema.CaseI(8e9, 1)
	pipe, err := pipeline.Build(schema)
	if err != nil {
		t.Fatal(err)
	}
	prof := stageperf.New(hw.XPUC, hw.EPYCHost, schema)
	sched := core.Schedule{
		Groups:           []core.GroupSchedule{{Stages: []int{1}, Chips: 16, Batch: 8}},
		RetrievalServers: 16,
		RetrievalBatch:   8,
		DecodeChips:      16,
		DecodeBatch:      128,
		DecodeReplicas:   4,
	}
	return pipe, prof, sched
}

// TestRuntimeSaturationMatchesAnalytic is the headline cross-check: a
// 10k-request Poisson trace at 1.5x the analytical capacity, replayed
// through the live concurrent engine, must sustain the assembler's QPS
// within 15% — and agree with the discrete-event validator on the same
// trace.
func TestRuntimeSaturationMatchesAnalytic(t *testing.T) {
	pipe, prof, sched := caseIVSetup(t)
	want, ok := (&core.Assembler{Pipe: pipe, Prof: prof}).Evaluate(sched)
	if !ok {
		t.Fatal("schedule infeasible analytically")
	}
	const n = 10000
	reqs, err := trace.Poisson(n, 1.5*want.QPS, 42)
	if err != nil {
		t.Fatal(err)
	}
	// Compress the ~(n/QPS)-second virtual run into a few wall seconds.
	speedup := (float64(n) / want.QPS) / 4.0
	rt, err := New(pipe, prof, sched, Options{Speedup: speedup})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != n {
		t.Fatalf("completed %d of %d", rep.Completed, n)
	}
	ratio := rep.SustainedQPS / want.QPS
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("runtime QPS %.2f vs analytical %.2f (ratio %.2f), want within 15%%",
			rep.SustainedQPS, want.QPS, ratio)
	}
	if rep.TTFT.P50 <= 0 || rep.TTFT.P99 < rep.TTFT.P50 {
		t.Errorf("TTFT quantiles implausible: %+v", rep.TTFT)
	}
	if math.Abs(rep.TPOT.P50-want.TPOT)/want.TPOT > 0.02 {
		t.Errorf("TPOT p50 %.5f vs analytical %.5f", rep.TPOT.P50, want.TPOT)
	}

	// Cross-check against the discrete-event simulator on the same trace.
	des, err := sim.NewServe(pipe, prof, sched)
	if err != nil {
		t.Fatal(err)
	}
	res, err := des.Run(reqs, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	desRatio := rep.SustainedQPS / res.QPS
	if desRatio < 0.85 || desRatio > 1.15 {
		t.Errorf("runtime QPS %.2f vs event-sim QPS %.2f (ratio %.2f), want within 15%%",
			rep.SustainedQPS, res.QPS, desRatio)
	}
}

// TestRuntimeUnloadedTTFT checks the other calibration end: at batch 1 and
// trivial load the measured TTFT must equal the analytical latency chain.
func TestRuntimeUnloadedTTFT(t *testing.T) {
	pipe, prof, sched := caseISetup(t)
	sched.Groups[0].Batch = 1
	sched.RetrievalBatch = 1
	want, ok := (&core.Assembler{Pipe: pipe, Prof: prof}).Evaluate(sched)
	if !ok {
		t.Fatal("schedule infeasible analytically")
	}
	reqs, err := trace.Poisson(50, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(pipe, prof, sched, Options{Speedup: 200, FlushTimeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 50 {
		t.Fatalf("completed %d of 50", rep.Completed)
	}
	if math.Abs(rep.TTFT.Mean-want.TTFT)/want.TTFT > 0.05 {
		t.Errorf("unloaded TTFT %.4f vs analytical %.4f", rep.TTFT.Mean, want.TTFT)
	}
	if rep.Latency.Mean <= rep.TTFT.Mean {
		t.Errorf("full latency %v should exceed TTFT %v", rep.Latency.Mean, rep.TTFT.Mean)
	}
}

// TestRuntimeAdmissionControl overdrives a tiny in-flight bound with a
// burst and expects open-loop shedding to kick in while every admitted
// request still completes.
func TestRuntimeAdmissionControl(t *testing.T) {
	pipe, prof, sched := caseISetup(t)
	rt, err := New(pipe, prof, sched, Options{Speedup: 400, MaxInFlight: 32})
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	rep, err := rt.Serve(trace.Burst(n))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Admitted+rep.Rejected != n {
		t.Errorf("admitted %d + rejected %d != %d", rep.Admitted, rep.Rejected, n)
	}
	if rep.Rejected == 0 {
		t.Errorf("burst of %d against MaxInFlight=32 should shed load", n)
	}
	if rep.Completed != rep.Admitted {
		t.Errorf("completed %d != admitted %d", rep.Completed, rep.Admitted)
	}
}

// TestRuntimeRealRetrieval puts a live IVF-PQ index on the serving path and
// verifies every retrieval batch actually executed against it.
func TestRuntimeRealRetrieval(t *testing.T) {
	pipe, prof, sched := caseISetup(t)
	const dim = 16
	data := vectordb.GenClustered(1500, dim, 12, 0.4, 3)
	ix, err := vectordb.BuildIVFPQ(data, 16, dim/2, 3)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(pipe, prof, sched, Options{
		Speedup: 300,
		Searcher: func(queries [][]float32) ([][]vectordb.Result, error) {
			return ix.SearchBatch(queries, 10, 4)
		},
		QueryDim: dim,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	reqs, err := trace.Poisson(n, 100, 9)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Serve(reqs)
	if err != nil {
		t.Fatalf("real-retrieval serve failed: %v", err)
	}
	if rep.Completed != n {
		t.Fatalf("completed %d of %d", rep.Completed, n)
	}
	if rep.Searches == 0 || rep.SearchQueries != n {
		t.Errorf("substrate saw %d batches / %d queries, want all %d queries", rep.Searches, rep.SearchQueries, n)
	}
	if rep.SearchWall.Max <= 0 {
		t.Errorf("real search wall time not measured: %+v", rep.SearchWall)
	}
}

// TestRuntimeConcurrentReplay drives the full Case IV engine hard at high
// compression — primarily a data-race canary for `go test -race`.
func TestRuntimeConcurrentReplay(t *testing.T) {
	pipe, prof, sched := caseIVSetup(t)
	rt, err := New(pipe, prof, sched, Options{Speedup: 500, MaxInFlight: 256})
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := trace.Poisson(2000, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed+rep.Rejected != 2000 {
		t.Errorf("completed %d + rejected %d != 2000", rep.Completed, rep.Rejected)
	}
	if rep.Completed == 0 {
		t.Error("nothing completed")
	}
	for _, q := range rep.Queues {
		if q.PeakDepth < 0 || q.MeanFill < 0 || q.MeanFill > 1 {
			t.Errorf("queue stat out of range: %+v", q)
		}
	}
}

func TestRuntimeRejects(t *testing.T) {
	pipe, prof, sched := caseISetup(t)

	// Iterative pipelines are first-class now: a schedule without an
	// iterative batch still fails compilation (schedule validation), but
	// a complete one builds a live runtime.
	iterSchema := ragschema.CaseIII(8e9, 4)
	iterPipe, err := pipeline.Build(iterSchema)
	if err != nil {
		t.Fatal(err)
	}
	iterProf := stageperf.New(hw.XPUC, hw.EPYCHost, iterSchema)
	if _, err := New(iterPipe, iterProf, sched, Options{}); err == nil {
		t.Error("iterative schedule without IterativeBatch should be rejected")
	}
	iterSched := sched
	iterSched.IterativeBatch = 8
	if _, err := New(iterPipe, iterProf, iterSched, Options{}); err != nil {
		t.Errorf("iterative workload with a complete schedule should serve: %v", err)
	}

	bad := sched
	bad.DecodeChips = 0
	if _, err := New(pipe, prof, bad, Options{}); err == nil {
		t.Error("invalid schedule should be rejected")
	}

	if _, err := New(pipe, prof, sched, Options{Searcher: func([][]float32) ([][]vectordb.Result, error) { return nil, nil }}); err == nil {
		t.Error("Searcher without QueryDim should be rejected")
	}

	rt, err := New(pipe, prof, sched, Options{Speedup: 500})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Serve(nil); err == nil {
		t.Error("empty trace should error")
	}
	if _, err := rt.Serve(trace.Burst(10)); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Serve(trace.Burst(10)); err == nil {
		t.Error("second Serve on a single-use runtime should error")
	}
}

// caseVSetup builds the multi-source fan-out stage graph (two parallel
// retrieval sources joining on a reranker) with a fixed schedule.
func caseVSetup(t testing.TB) (pipeline.Pipeline, *stageperf.Profiler, core.Schedule) {
	t.Helper()
	schema := ragschema.CaseV(8e9, 2)
	pipe, err := pipeline.Build(schema)
	if err != nil {
		t.Fatal(err)
	}
	prof := stageperf.New(hw.XPUC, hw.EPYCHost, schema)
	sched := core.Schedule{
		Groups:           []core.GroupSchedule{{Stages: []int{2, 3}, Chips: 16, Batch: 4}}, // rerank + prefix
		RetrievalServers: 8,
		RetrievalBatch:   4,
		DecodeChips:      16,
		DecodeBatch:      64,
		DecodeReplicas:   4,
	}
	return pipe, prof, sched
}

// TestRuntimeCaseVFanOutEndToEnd serves the non-linear stage-graph preset
// through the live concurrent engine: fan-out branches run on parallel
// retrieval workers, the rerank join admits a request only after both
// sources answered, and saturation throughput must match both the
// compiled plan's analytical QPS and the discrete-event validator within
// 15%.
func TestRuntimeCaseVFanOutEndToEnd(t *testing.T) {
	pipe, prof, sched := caseVSetup(t)
	want, ok := (&core.Assembler{Pipe: pipe, Prof: prof}).Evaluate(sched)
	if !ok {
		t.Fatal("schedule infeasible analytically")
	}
	const n = 6000
	reqs, err := trace.Poisson(n, 1.5*want.QPS, 11)
	if err != nil {
		t.Fatal(err)
	}
	speedup := (float64(n) / want.QPS) / 4.0
	rt, err := New(pipe, prof, sched, Options{Speedup: speedup})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != n {
		t.Fatalf("completed %d of %d", rep.Completed, n)
	}
	ratio := rep.SustainedQPS / want.QPS
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("fan-out runtime QPS %.2f vs analytical %.2f (ratio %.2f), want within 15%%",
			rep.SustainedQPS, want.QPS, ratio)
	}
	// Both source tiers must actually have served batches.
	retrQueues := 0
	for _, q := range rep.Queues {
		if q.Stage == "retrieval" && q.Batches > 0 {
			retrQueues++
		}
	}
	if retrQueues != 2 {
		t.Errorf("%d retrieval tiers served batches, want both sources", retrQueues)
	}

	// Cross-check against the discrete-event simulator on the same trace.
	des, err := sim.NewServe(pipe, prof, sched)
	if err != nil {
		t.Fatal(err)
	}
	res, err := des.Run(reqs, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	desRatio := rep.SustainedQPS / res.QPS
	if desRatio < 0.85 || desRatio > 1.15 {
		t.Errorf("fan-out runtime QPS %.2f vs event-sim QPS %.2f (ratio %.2f), want within 15%%",
			rep.SustainedQPS, res.QPS, desRatio)
	}
}

// TestRuntimeCaseVUnloadedTTFT: the live engine must overlap the parallel
// retrieval branches — unloaded TTFT equals the critical path (one
// retrieval + rerank + prefix), not the serialized sum.
func TestRuntimeCaseVUnloadedTTFT(t *testing.T) {
	pipe, prof, sched := caseVSetup(t)
	sched.Groups[0].Batch = 1
	sched.RetrievalBatch = 1
	want, ok := (&core.Assembler{Pipe: pipe, Prof: prof}).Evaluate(sched)
	if !ok {
		t.Fatal("schedule infeasible analytically")
	}
	reqs, err := trace.Poisson(50, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(pipe, prof, sched, Options{Speedup: 200, FlushTimeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 50 {
		t.Fatalf("completed %d of 50", rep.Completed)
	}
	if math.Abs(rep.TTFT.Mean-want.TTFT)/want.TTFT > 0.05 {
		t.Errorf("unloaded fan-out TTFT %.4f vs analytical %.4f (branches must overlap)", rep.TTFT.Mean, want.TTFT)
	}
}
