package serve

import (
	"fmt"
	"math/rand"
	"testing"

	"rago/internal/engine"
	"rago/internal/obs"
	"rago/internal/retrieval"
	"rago/internal/sim"
	"rago/internal/trace"
	"rago/internal/vectordb"
)

// shardedCaseISetup is caseISetup with the retrieval tier sharded for
// real: a 4-shard x 2-replica index over clustered vectors, the profiler
// carrying the shard count and a recall surface calibrated against exact
// ground truth, and the schedule running tuned knobs (nprobe 16, fanout
// 2) so both the analytic model and the live scatter-gather exercise the
// non-default path.
func shardedCaseISetup(t testing.TB) (*engine.Plan, *vectordb.Sharded, Options) {
	t.Helper()
	pipe, prof, sched := caseISetup(t)
	sh, mod, dim := buildShardedSubstrate(t)
	prof.Shards = sh.Shards()
	prof.RecallMod = mod
	sched.NProbe = 16
	sched.ShardFanout = 2
	plan, err := engine.Compile(pipe, sched, prof)
	if err != nil {
		t.Fatal(err)
	}
	return plan, sh, Options{Sharded: sh, SearchK: 10, QueryDim: dim, QuerySeed: 3}
}

// buildShardedSubstrate builds the 4-shard x 2-replica IVF-PQ index over
// clustered vectors plus its recall@10 surface calibrated against exact
// ground truth on an in-distribution query sample.
func buildShardedSubstrate(t testing.TB) (*vectordb.Sharded, *retrieval.RecallModel, int) {
	t.Helper()
	const dim = 16
	data := vectordb.GenClustered(4000, dim, 32, 0.4, 3)
	ix, err := vectordb.BuildIVFPQ(data, 32, dim/2, 3)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := vectordb.NewSharded(ix, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	flat := vectordb.NewFlat(dim)
	if err := flat.Add(data...); err != nil {
		t.Fatal(err)
	}
	queries := make([][]float32, 32)
	rng := rand.New(rand.NewSource(11))
	for i := range queries {
		v := make([]float32, dim)
		for d := range v {
			v[d] = rng.Float32() * 10
		}
		queries[i] = v
	}
	nps, fos := []int{4, 16, 32}, []int{1, 2, 4}
	grid, err := sh.CalibrateRecall(flat, queries, 10, nps, fos)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := retrieval.NewRecallModel(nps, fos, grid)
	if err != nil {
		t.Fatal(err)
	}
	return sh, mod, dim
}

// BenchmarkServeShardedCaseI is the sharded-retrieval trajectory point CI
// uploads (BENCH_retrieval.json): a saturating Case I replay against the
// real 4-shard x 2-replica scatter-gather index at three fanout operating
// points, reporting sustained QPS, p99 TTFT, and the operating point's
// calibrated recall@10 — the latency/quality trade the recall axis puts
// on the frontier, measured end to end.
func BenchmarkServeShardedCaseI(b *testing.B) {
	pipe, prof, sched := caseISetup(b)
	sh, mod, dim := buildShardedSubstrate(b)
	prof.Shards = sh.Shards()
	prof.RecallMod = mod
	sched.NProbe = 16
	for _, fanout := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("fanout=%d", fanout), func(b *testing.B) {
			s := sched
			s.ShardFanout = fanout
			plan, err := engine.Compile(pipe, s, prof)
			if err != nil {
				b.Fatal(err)
			}
			const n = 4000
			reqs, err := trace.Poisson(n, 1.5*plan.Metrics.QPS, 42)
			if err != nil {
				b.Fatal(err)
			}
			speedup := (float64(n) / plan.Metrics.QPS) / 4.0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				srv, err := NewServer(plan, Options{
					Speedup: speedup, Sharded: sh, SearchK: 10, QueryDim: dim, QuerySeed: 3,
				})
				if err != nil {
					b.Fatal(err)
				}
				rep, err := srv.Serve(reqs)
				if err != nil {
					b.Fatal(err)
				}
				if rep.Completed != n {
					b.Fatalf("completed %d of %d", rep.Completed, n)
				}
				b.ReportMetric(rep.SustainedQPS, "sustainedQPS")
				b.ReportMetric(rep.TTFT.P99, "p99TTFT_s")
				b.ReportMetric(plan.Metrics.Recall, "recallAt10")
			}
		})
	}
}

// TestRuntimeShardedThreeWayCrossCheck is the sharded tentpole's
// acceptance gate: the live runtime executing real scatter-gather
// retrieval, the discrete-event simulator mirroring the same fan-out
// state machine, and the analytic model pricing the tuned knobs must
// agree on saturation QPS within 15% — and the plan must carry the
// calibrated recall of its operating point.
func TestRuntimeShardedThreeWayCrossCheck(t *testing.T) {
	plan, _, opts := shardedCaseISetup(t)
	want := plan.Metrics
	if want.Recall <= 0 || want.Recall > 1 {
		t.Fatalf("sharded plan carries recall %v, want a calibrated value in (0, 1]", want.Recall)
	}
	const n = 4000
	reqs, err := trace.Poisson(n, 1.5*want.QPS, 42)
	if err != nil {
		t.Fatal(err)
	}
	opts.Speedup = (float64(n) / want.QPS) / 4.0
	srv, err := NewServer(plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := srv.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != n {
		t.Fatalf("completed %d of %d", rep.Completed, n)
	}
	if rep.Searches == 0 || rep.SearchQueries != n {
		t.Errorf("sharded substrate saw %d batches / %d queries, want all %d queries", rep.Searches, rep.SearchQueries, n)
	}
	if rep.ShardFallbacks != 0 || rep.ShardLost != 0 {
		t.Errorf("healthy replicas reported %d fallbacks / %d lost shards", rep.ShardFallbacks, rep.ShardLost)
	}
	ratio := rep.SustainedQPS / want.QPS
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("live QPS %.2f vs analytic %.2f (ratio %.2f), want within 15%%", rep.SustainedQPS, want.QPS, ratio)
	}

	des, err := sim.NewServeFromPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	res, err := des.Run(reqs, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if r := rep.SustainedQPS / res.QPS; r < 0.85 || r > 1.15 {
		t.Errorf("live QPS %.2f vs event-sim QPS %.2f (ratio %.2f), want within 15%%", rep.SustainedQPS, res.QPS, r)
	}
	if r := res.QPS / want.QPS; r < 0.85 || r > 1.15 {
		t.Errorf("event-sim QPS %.2f vs analytic %.2f (ratio %.2f), want within 15%%", res.QPS, want.QPS, r)
	}
}

// TestRuntimeShardedDegradedReplica takes one replica of one shard down
// mid-fleet: every request must still complete (the scatter falls back to
// the healthy replica) and the degradation must be visible in the report.
func TestRuntimeShardedDegradedReplica(t *testing.T) {
	plan, sh, opts := shardedCaseISetup(t)
	if err := sh.SetReplicaHealth(0, 0, false); err != nil {
		t.Fatal(err)
	}
	const n = 600
	reqs, err := trace.Poisson(n, plan.Metrics.QPS, 7)
	if err != nil {
		t.Fatal(err)
	}
	opts.Speedup = (float64(n) / plan.Metrics.QPS) / 3.0
	srv, err := NewServer(plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := srv.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != n {
		t.Fatalf("completed %d of %d with a replica down", rep.Completed, n)
	}
	if rep.ShardFallbacks == 0 {
		t.Errorf("a downed replica should surface as fallbacks in the report")
	}
	if rep.ShardLost != 0 {
		t.Errorf("no shard lost every replica, yet report counts %d lost merges", rep.ShardLost)
	}
}

// TestShardedObsEventParityServeVsSim: the live sharded runtime and the
// simulator must tell the same scatter-gather story on the bus — every
// retrieval dispatch emits one shard-scatter and one shard-gather
// carrying the schedule's effective fanout, and neither side emits a
// fallback with all replicas healthy.
func TestShardedObsEventParityServeVsSim(t *testing.T) {
	plan, _, opts := shardedCaseISetup(t)
	const n = 400
	reqs, err := trace.Poisson(n, 1.2*plan.Metrics.QPS, 21)
	if err != nil {
		t.Fatal(err)
	}
	opts.Speedup = (float64(n) / plan.Metrics.QPS) / 3.0

	type tally struct{ scatter, gather, fallback int }
	count := func(events <-chan obs.Event, side string) tally {
		var c tally
		for ev := range events {
			switch ev.Kind {
			case obs.KindShardScatter:
				c.scatter++
			case obs.KindShardGather:
				c.gather++
			case obs.KindShardFallback:
				c.fallback++
			default:
				continue
			}
			if ev.Kind != obs.KindShardFallback && ev.N != plan.EffectiveFanout() {
				t.Errorf("%s %v event carries fanout %d, want effective fanout %d", side, ev.Kind, ev.N, plan.EffectiveFanout())
			}
		}
		return c
	}

	bus := obs.NewBus()
	sub := bus.Subscribe(1 << 15)
	opts.Bus = bus
	srv, err := NewServer(plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Serve(reqs); err != nil {
		t.Fatal(err)
	}
	sub.Close()
	live := count(sub.Events(), "live")

	simBus := obs.NewBus()
	simSub := simBus.Subscribe(1 << 15)
	des, err := sim.NewServeFromPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	des.Bus = simBus
	if _, err := des.Run(reqs, 0.05); err != nil {
		t.Fatal(err)
	}
	simSub.Close()
	simulated := count(simSub.Events(), "sim")

	for side, c := range map[string]tally{"live": live, "sim": simulated} {
		if c.scatter == 0 {
			t.Errorf("%s emitted no shard-scatter events on a sharded plan", side)
		}
		if c.scatter != c.gather {
			t.Errorf("%s scatter/gather mismatch: %d vs %d", side, c.scatter, c.gather)
		}
		if c.fallback != 0 {
			t.Errorf("%s emitted %d fallback events with all replicas healthy", side, c.fallback)
		}
	}
}
