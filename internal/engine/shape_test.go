package engine

import (
	"math"
	"testing"

	"rago/internal/ragschema"
)

func caseISchedule() Schedule {
	return Schedule{
		Groups:           []GroupSchedule{{Stages: []int{1}, Chips: 16, Batch: 8}},
		RetrievalServers: 16,
		RetrievalBatch:   8,
		DecodeChips:      16,
		DecodeBatch:      128,
		DecodeReplicas:   4,
	}
}

func TestPadTokens(t *testing.T) {
	cases := map[int]int{0: 64, 1: 64, 64: 64, 65: 128, 512: 512, 513: 576, 4096: 4096}
	for in, want := range cases {
		if got := PadTokens(in); got != want {
			t.Errorf("PadTokens(%d) = %d, want %d", in, got, want)
		}
	}
}

// TestStepLatencyShapedConstantPath: the zero shape — and shapes on
// shape-independent stages — must take the precompiled constant-shape path
// bit for bit. This is the regression guard that keeps shape-less traces
// reproducing their historical results exactly.
func TestStepLatencyShapedConstantPath(t *testing.T) {
	plan, _, pipe := mustCompile(t, ragschema.CaseI(8e9, 1), caseISchedule())
	for idx := range pipe.Stages {
		b := plan.Steps[idx].Batch
		for _, n := range []int{1, b} {
			if got, want := plan.StepLatencyShaped(idx, n, Shape{}), plan.StepLatency(idx, n); got != want {
				t.Errorf("stage %d n=%d: zero shape latency %v != constant path %v", idx, n, got, want)
			}
		}
	}
	// Retrieval ignores shapes entirely.
	ri := plan.RetrievalIdxs[0]
	if got, want := plan.StepLatencyShaped(ri, 8, Shape{PromptTokens: 4096}), plan.StepLatency(ri, 8); got != want {
		t.Errorf("retrieval shaped latency %v != constant %v", got, want)
	}
	// GenTimeFor(0) and GenTimeFor(schema constant) are both exact.
	dec := plan.Steps[plan.DecodeIdx]
	if got := plan.GenTimeFor(0); got != dec.Latency {
		t.Errorf("GenTimeFor(0) = %v, want precompiled %v", got, dec.Latency)
	}
	if got := plan.GenTimeFor(dec.Stage.OutTokens); got != dec.Latency {
		t.Errorf("GenTimeFor(schema %d) = %v, want %v exactly", dec.Stage.OutTokens, got, dec.Latency)
	}
}

// TestStepLatencyShapedMonotone: longer padded prompts must cost the
// prefix strictly more, and a shaped full batch must agree with a direct
// profiler evaluation of the reshaped stage.
func TestStepLatencyShapedMonotone(t *testing.T) {
	plan, _, _ := mustCompile(t, ragschema.CaseI(8e9, 1), caseISchedule())
	pi := plan.PrefixIdx
	b := plan.Steps[pi].Batch
	short := plan.StepLatencyShaped(pi, b, Shape{PromptTokens: 256})
	base := plan.StepLatencyShaped(pi, b, Shape{PromptTokens: 512})
	long := plan.StepLatencyShaped(pi, b, Shape{PromptTokens: 2048})
	if !(short < base && base < long) {
		t.Errorf("prefix latency not monotone in prompt: 256->%v 512->%v 2048->%v", short, base, long)
	}
	// The schema constant (512, already on the pad grid) shaped through
	// the profiler must equal the precompiled full-batch latency.
	if got, want := base, plan.Steps[pi].Latency; math.Abs(got-want) > 1e-12*want {
		t.Errorf("shaped-at-constant latency %v != precompiled %v", got, want)
	}
	// Half a batch of long prompts still costs less than a full one.
	if half := plan.StepLatencyShaped(pi, b/2, Shape{PromptTokens: 2048}); half >= long {
		t.Errorf("partial shaped batch %v should undercut full %v", half, long)
	}
}

func TestPrefixBatchShape(t *testing.T) {
	plan, _, _ := mustCompile(t, ragschema.CaseI(8e9, 1), caseISchedule())
	// All-unshaped batches carry no shape and no padding accounting.
	if sh, tok := plan.PrefixBatchShape([]int{0, 0, 0}); sh != (Shape{}) || tok != 0 {
		t.Errorf("unshaped batch => %+v/%d, want zero", sh, tok)
	}
	// Mixed batch: the padded max governs; unshaped members count at the
	// schema constant (512).
	sh, tok := plan.PrefixBatchShape([]int{100, 0, 1000})
	if sh.PromptTokens != PadTokens(1000) {
		t.Errorf("padded max = %d, want %d", sh.PromptTokens, PadTokens(1000))
	}
	if tok != 100+512+1000 {
		t.Errorf("token sum = %d, want %d", tok, 100+512+1000)
	}
	waste := 1 - float64(tok)/float64(3*sh.PromptTokens)
	if waste <= 0 || waste >= 1 {
		t.Errorf("padding waste %v out of (0,1)", waste)
	}
}

// TestShapeMetrics: the shape-weighted analytical estimate must degrade
// QPS and inflate TTFT for a heavy-tailed mix relative to the constant
// prediction, shrink both for a uniformly short mix, and reduce to the
// compiled Metrics exactly when every request is unshaped.
func TestShapeMetrics(t *testing.T) {
	plan, _, _ := mustCompile(t, ragschema.CaseI(8e9, 1), caseISchedule())

	unshaped := make([]Shape, 500)
	if got := plan.ShapeMetrics(unshaped); got != plan.Metrics {
		t.Errorf("all-unshaped ShapeMetrics %+v != compiled Metrics %+v", got, plan.Metrics)
	}
	if got := plan.ShapeMetrics(nil); got != plan.Metrics {
		t.Errorf("empty ShapeMetrics %+v != compiled Metrics %+v", got, plan.Metrics)
	}

	heavy := make([]Shape, 500)
	for i := range heavy {
		heavy[i] = Shape{PromptTokens: 512, OutputTokens: 256}
		if i%4 == 0 {
			heavy[i] = Shape{PromptTokens: 3072, OutputTokens: 768}
		}
	}
	hm := plan.ShapeMetrics(heavy)
	if !(hm.QPS < plan.Metrics.QPS) {
		t.Errorf("heavy-tailed QPS %v should undercut constant %v", hm.QPS, plan.Metrics.QPS)
	}
	if !(hm.TTFT > plan.Metrics.TTFT) {
		t.Errorf("heavy-tailed TTFT %v should exceed constant %v", hm.TTFT, plan.Metrics.TTFT)
	}
	if !hm.Valid() {
		t.Errorf("shape metrics unphysical: %+v", hm)
	}

	short := make([]Shape, 500)
	for i := range short {
		short[i] = Shape{PromptTokens: 128, OutputTokens: 64}
	}
	sm := plan.ShapeMetrics(short)
	if !(sm.QPS > plan.Metrics.QPS) {
		t.Errorf("short-request QPS %v should exceed constant %v", sm.QPS, plan.Metrics.QPS)
	}
	if !(sm.TTFT < plan.Metrics.TTFT) {
		t.Errorf("short-request TTFT %v should undercut constant %v", sm.TTFT, plan.Metrics.TTFT)
	}
}
