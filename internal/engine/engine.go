// Package engine compiles a (pipeline, schedule) pair into the single
// execution plan every evaluation layer shares. RAGO's premise is that one
// schedule abstraction — task placement, resource allocation, batching
// policy — should drive every way of looking at a RAG workload; Compile is
// where that abstraction is resolved, exactly once, into concrete per-stage
// steps (resource, batch, replicas, profiled latency), per-resource
// occupancies, the iterative-retrieval loop structure, and the assembled
// analytical metrics.
//
// Three executors consume the same *Plan:
//
//   - core.Assembler reads Plan.Metrics (Algorithm 1 step 3);
//   - sim.ServeSim replays traces through Plan.Steps as a discrete-event
//     system;
//   - serve.Runtime executes Plan.Steps for real with goroutines and
//     wall-clock pacing.
//
// A compiled Plan is immutable and safe for concurrent use; partial-batch
// re-profiling (StepLatency) goes through the memoizing stageperf.Profiler.
package engine

import (
	"fmt"
	"math"

	"rago/internal/perf"
	"rago/internal/pipeline"
	"rago/internal/stageperf"
)

// DecodeResource is the Step.Resource value of the decode tier, which is
// not a serial batching resource but a pool of continuous-batching slots.
const DecodeResource = -1

// Step describes how one pipeline stage executes under a schedule.
type Step struct {
	// Stage is the pipeline stage this step runs (copied for locality).
	Stage pipeline.Stage
	// Resource indexes Plan.Resources, or DecodeResource for decode.
	Resource int
	// Chips is the XPU count serving the step (CPU servers for
	// retrieval).
	Chips int
	// Batch is the full batch size the step dispatches at.
	Batch int
	// Replicas is the data-parallel replica count.
	Replicas int
	// Latency is the full-batch service time in seconds (retrieval
	// includes the CPU-to-XPU result transfer).
	Latency float64
	// QPS is the step's steady-state request throughput at Batch.
	QPS float64
}

// Resource is one serial execution unit of the schedule: an XPU placement
// group time-multiplexing its member stages, or one CPU retrieval tier
// (multi-source pipelines get one tier per source).
type Resource struct {
	// Name labels the resource ("group0", "retrieval", "retrieval1").
	Name string
	// Retrieval marks CPU retrieval tiers.
	Retrieval bool
	// Stages are the pipeline stage indices the resource serves.
	Stages []int
	// Occupancy is seconds of resource time per request, including
	// iterative-retrieval load and cross-retrieval pauses; 1/Occupancy
	// is the resource's saturation throughput.
	Occupancy float64
}

// Plan is the compiled execution plan for one (pipeline, schedule) pair.
type Plan struct {
	Pipe  pipeline.Pipeline
	Sched Schedule

	// Steps is parallel to Pipe.Stages.
	Steps []Step
	// Resources lists XPU groups in schedule order, then retrieval
	// tiers in stage order.
	Resources []Resource

	// Succs, Preds, and Entries are the pipeline's stage graph
	// materialized once at compile time, so executors traverse
	// adjacency slices instead of re-deriving them per event.
	Succs   [][]int
	Preds   [][]int
	Entries []int

	// PrefixIdx and DecodeIdx locate the main LLM stages; RetrievalIdxs
	// lists every retrieval stage (empty for retrieval-free pipelines).
	PrefixIdx     int
	DecodeIdx     int
	RetrievalIdxs []int

	// Iter is the §5.3 iterative-retrieval cost structure (zero-valued
	// for single-retrieval workloads).
	Iter IterCost
	// Round is the compiled per-round decode-loop structure the
	// executors run (nil for single-retrieval workloads). Its steps'
	// Resource fields index Resources: iterative rounds occupy the same
	// retrieval tier and prefix group the initial pass runs on.
	Round *IterRound

	// GenTime is the decode tier's full-batch generation time including
	// iterative stalls; Metrics the assembled analytical prediction
	// (QPSPerChip normalized by the chips the schedule allocates).
	GenTime float64
	Metrics perf.Metrics

	// DecodeStep is the per-token decode step latency at the full decode
	// batch — the pace shape-aware executors hold a decode slot at, so a
	// request generating k tokens occupies its slot for k*DecodeStep
	// (GenTimeFor).
	DecodeStep float64

	// ChunkLatency is the service time of one ChunkQuantum-token prefill
	// chunk on the prefix group (0 when chunked prefill is off). Executors
	// run chunked prefix batches as back-to-back chunks at this pace
	// (ChunkPrefill); it is compiled once so the hot path never touches
	// the profiler.
	ChunkLatency float64

	prof *stageperf.Profiler
	// cpScratch, when non-nil, is the critical-path walk's reusable
	// buffer. Only Evaluator-owned scratch plans set it: a compiled Plan
	// stays immutable and concurrency-safe, so its walks allocate.
	cpScratch []float64
}

// Compile resolves a schedule against a pipeline into the shared
// execution plan. It is the only place schedule semantics (placement
// groups, retrieval tiers, decode pool, iterative loop) are interpreted;
// every error a schedule can produce surfaces here, descriptively,
// instead of inside one of the three executors.
func Compile(pipe pipeline.Pipeline, sched Schedule, prof *stageperf.Profiler) (*Plan, error) {
	if err := pipe.ValidateGraph(); err != nil {
		return nil, err
	}
	p := &Plan{}
	p.buildGraph(pipe)
	if err := compileInto(p, pipe, sched, prof, true); err != nil {
		return nil, err
	}
	return p, nil
}

// buildGraph materializes the pipeline's stage graph onto the plan.
func (p *Plan) buildGraph(pipe pipeline.Pipeline) {
	n := len(pipe.Stages)
	p.Succs = make([][]int, n)
	p.Preds = make([][]int, n)
	p.Entries = nil
	for i := 0; i < n; i++ {
		p.Succs[i] = pipe.Succs(i)
	}
	for i, ss := range p.Succs {
		for _, s := range ss {
			p.Preds[s] = append(p.Preds[s], i)
		}
	}
	for i := 0; i < n; i++ {
		if len(p.Preds[i]) == 0 {
			p.Entries = append(p.Entries, i)
		}
	}
}

// Evaluator assembles the analytical metrics of schedules against one
// (pipeline, profiler) pair, reusing a scratch plan between calls. It runs
// the exact compileInto code path Compile runs — bit-identical metrics —
// but re-fills preallocated step/resource/graph storage instead of building
// a fresh immutable Plan per schedule, which is what the schedule search's
// innermost loop (thousands of surviving candidates per plan) needs. Not
// safe for concurrent use; each search worker owns one.
type Evaluator struct {
	pipe pipeline.Pipeline
	prof *stageperf.Profiler
	plan Plan
	err  error
}

// NewEvaluator validates the pipeline graph once and builds the evaluator.
func NewEvaluator(pipe pipeline.Pipeline, prof *stageperf.Profiler) (*Evaluator, error) {
	if err := pipe.ValidateGraph(); err != nil {
		return nil, err
	}
	e := &Evaluator{pipe: pipe, prof: prof}
	e.plan.buildGraph(pipe)
	e.plan.cpScratch = make([]float64, len(pipe.Stages))
	return e, nil
}

// Evaluate compiles sched into the scratch plan and returns its assembled
// metrics; ok is false when the schedule is infeasible.
func (e *Evaluator) Evaluate(sched Schedule) (perf.Metrics, bool) {
	if err := compileInto(&e.plan, e.pipe, sched, e.prof, false); err != nil {
		return perf.Metrics{}, false
	}
	return e.plan.Metrics, true
}

// EvaluateShaped compiles sched into the scratch plan and returns its
// shape-weighted metrics over the given length sample — the policy-aware
// expected-padding pricing (ShapeMetricsWithPolicy at the schedule's own
// FormPolicy and ChunkQuantum) the schedule search scores candidates with
// when formation is a search dimension. An empty sample falls back to the
// constant-shape metrics, bit-identical to Evaluate.
func (e *Evaluator) EvaluateShaped(sched Schedule, shapes []Shape) (perf.Metrics, bool) {
	if err := compileInto(&e.plan, e.pipe, sched, e.prof, false); err != nil {
		return perf.Metrics{}, false
	}
	if len(shapes) == 0 {
		return e.plan.Metrics, true
	}
	return e.plan.ShapeMetrics(shapes), true
}

// compileInto resolves sched against pipe into p, which must carry a
// materialized stage graph for pipe (buildGraph). With alloc set, step and
// resource storage is freshly allocated and defensively copied so the
// result is immutable; without it, p's existing storage is re-filled and
// schedule-owned slices are aliased (the Evaluator's scratch discipline).
// Both paths execute the same arithmetic in the same order.
func compileInto(p *Plan, pipe pipeline.Pipeline, sched Schedule, prof *stageperf.Profiler, alloc bool) error {
	if err := sched.Validate(pipe); err != nil {
		return err
	}

	iter, round, ok := IterativePlan(pipe, prof, sched)
	if !ok {
		return fmt.Errorf("engine: iterative retrieval structure infeasible under schedule")
	}

	p.Pipe = pipe
	p.Sched = sched
	p.PrefixIdx = pipe.Index(pipeline.KindPrefix)
	p.DecodeIdx = pipe.Index(pipeline.KindDecode)
	p.Iter = iter
	p.Round = round
	p.prof = prof
	p.ChunkLatency = 0 // scratch reuse: recomputed below when chunking is on
	if alloc || p.RetrievalIdxs == nil {
		p.RetrievalIdxs = pipe.Indices(pipeline.KindRetrieval)
	}
	if cap(p.Steps) < len(pipe.Stages) {
		p.Steps = make([]Step, len(pipe.Stages))
	}
	p.Steps = p.Steps[:len(pipe.Stages)]
	p.Resources = p.Resources[:0]
	qps := math.Inf(1)

	// Pre-decode XPU groups: time-multiplexed members contribute their
	// batch latency to TTFT and their summed per-request occupancy to
	// the group's throughput (§6.1). The group hosting the main prefix
	// additionally absorbs the iterative prefix passes.
	for gi, g := range sched.Groups {
		if !GroupMemFits(pipe, prof, g) {
			return fmt.Errorf("engine: group %d models exceed %d-chip HBM", gi, g.Chips)
		}
		var occ float64
		for i, idx := range g.Stages {
			// Time-multiplexed groups bound per-phase replication by
			// the work one batch exposes (Fig. 14).
			if len(g.Stages) > 1 && g.ReplicasFor(i) > MaxPhaseReplicas(pipe.Stages[idx], g.Batch) {
				return fmt.Errorf("engine: group %d stage %v over-replicated for its phase work", gi, pipe.Stages[idx].Kind)
			}
			pt := prof.EvalR(pipe.Stages[idx], g.Chips, g.Batch, g.ReplicasFor(i))
			if !pt.OK {
				return fmt.Errorf("engine: stage %v infeasible on %d chips at batch %d", pipe.Stages[idx].Kind, g.Chips, g.Batch)
			}
			if idx == p.PrefixIdx && sched.ChunkQuantum > 0 {
				// Chunked prefill: price one quantum-sized chunk once, then
				// express the stage's analytic contribution in chunk terms —
				// per-request occupancy is the request's own chunk count
				// (members pad to the quantum, not the batch max) and the
				// TTFT contribution is the mean member completion within a
				// full batch, since first tokens unblock at chunk
				// boundaries instead of batch end.
				cpt := prof.EvalR(stageperf.ShapedStage(pipe.Stages[idx], sched.ChunkQuantum), g.Chips, 1, 1)
				if !cpt.OK {
					return fmt.Errorf("engine: chunk quantum %d infeasible for prefix on %d chips", sched.ChunkQuantum, g.Chips)
				}
				p.ChunkLatency = cpt.Latency
				chunks := (pipe.Schema.PrefixTokens + sched.ChunkQuantum - 1) / sched.ChunkQuantum
				perReq := float64(chunks) * cpt.Latency
				pt.Latency = perReq * float64(g.Batch+1) / 2
				pt.QPS = 1 / perReq
			}
			p.Steps[idx] = Step{
				Stage:    pipe.Stages[idx],
				Resource: gi,
				Chips:    g.Chips,
				Batch:    g.Batch,
				Replicas: g.ReplicasFor(i),
				Latency:  pt.Latency,
				QPS:      pt.QPS,
			}
			occ += 1 / pt.QPS
			if idx == p.PrefixIdx {
				occ += iter.PrefixOccupancy
			}
		}
		// Fig. 14: when a retrieval separates collocated stages, the
		// group pauses for the retrieval round before resuming the
		// next inference phase (§7.1's second baseline inefficiency).
		pause, ok := RetrievalPause(pipe, prof, g.Stages, sched.RetrievalServers, g.Batch, sched.NProbe, sched.ShardFanout)
		if !ok {
			return fmt.Errorf("engine: retrieval pause infeasible for group %d", gi)
		}
		occ += pause
		stages := g.Stages
		if alloc {
			stages = append([]int(nil), g.Stages...)
		}
		p.Resources = append(p.Resources, Resource{
			Name:      groupName(gi),
			Stages:    stages,
			Occupancy: occ,
		})
		qps = math.Min(qps, 1/occ)
	}

	// Retrieval tiers: one serial CPU resource per retrieval stage (a
	// multi-source fan-out queries independent corpora on independent
	// pools). The initial retrieval latency sits on the TTFT path;
	// iterative retrievals consume tier throughput (TPOT path).
	for i, ridx := range p.RetrievalIdxs {
		// The schedule's retrieval knobs tune the stage value itself:
		// profiler memoization, partial-batch re-pricing (StepLatency),
		// and both executors then cost the tuned scan automatically.
		rst := pipe.Stages[ridx].Tuned(sched.NProbe, sched.ShardFanout)
		rt := prof.Eval(rst, sched.RetrievalServers, sched.RetrievalBatch)
		if !rt.OK {
			return fmt.Errorf("engine: retrieval infeasible on %d servers at batch %d", sched.RetrievalServers, sched.RetrievalBatch)
		}
		name := "retrieval"
		if len(p.RetrievalIdxs) > 1 {
			name = retrievalName(i)
		}
		p.Steps[ridx] = Step{
			Stage:    rst,
			Resource: len(p.Resources),
			Chips:    sched.RetrievalServers,
			Batch:    sched.RetrievalBatch,
			Replicas: 1,
			Latency:  rt.Latency + prof.RetrievalTransferLatency(),
			QPS:      rt.QPS,
		}
		occ := 1/rt.QPS + iter.RetrievalOccupancy
		p.Resources = append(p.Resources, Resource{
			Name:      name,
			Retrieval: true,
			Stages:    p.RetrievalIdxs[i : i+1],
			Occupancy: occ,
		})
		qps = math.Min(qps, 1/occ)
	}

	// Resolve the iterative round's steps onto the plan's resources: the
	// rounds run on the same retrieval tier and prefix-hosting group the
	// initial pass was just placed on, so reuse those steps' resolved
	// resource indices (iterative schemas are single-source).
	if round != nil {
		round.Retrieval.Resource = p.Steps[p.RetrievalIdxs[0]].Resource
		round.Prefix.Resource = p.Steps[p.PrefixIdx].Resource
	}

	// Decode tier: continuous batching; worst-case TPOT is the step
	// latency plus iterative stalls amortized per token (§5.3).
	dec := prof.EvalR(pipe.Stages[p.DecodeIdx], sched.DecodeChips, sched.DecodeBatch, sched.DecodeReplicasOrOne())
	if !dec.OK {
		return fmt.Errorf("engine: decode infeasible on %d chips at batch %d", sched.DecodeChips, sched.DecodeBatch)
	}
	p.Steps[p.DecodeIdx] = Step{
		Stage:    pipe.Stages[p.DecodeIdx],
		Resource: DecodeResource,
		Chips:    sched.DecodeChips,
		Batch:    sched.DecodeBatch,
		Replicas: sched.DecodeReplicasOrOne(),
		Latency:  dec.Latency,
		QPS:      dec.QPS,
	}
	p.GenTime = dec.Latency + iter.StallPerRequest
	p.DecodeStep = dec.StepLatency
	outTokens := float64(pipe.Stages[p.DecodeIdx].OutTokens)
	qps = math.Min(qps, float64(sched.DecodeBatch)/p.GenTime)

	p.Metrics = perf.Metrics{
		TTFT:       p.criticalPathTTFT(),
		TPOT:       p.GenTime / outTokens,
		QPS:        qps,
		QPSPerChip: qps / float64(sched.ChipsUsed()),
	}
	if len(p.RetrievalIdxs) > 0 {
		// The quality axis: measured recall of the schedule's retrieval
		// operating point (0 when no recall surface is calibrated).
		p.Metrics.Recall = prof.StageRecall(p.Steps[p.RetrievalIdxs[0]].Stage)
	}
	if !p.Metrics.Valid() {
		return fmt.Errorf("engine: schedule assembles to unphysical metrics %v", p.Metrics)
	}
	return nil
}

// groupName and retrievalName return the stable resource names without the
// per-compile Sprintf the scratch evaluator would otherwise pay millions of
// times over a search.
func groupName(i int) string {
	if i < len(smallNames) {
		return "group" + smallNames[i]
	}
	return fmt.Sprintf("group%d", i)
}

func retrievalName(i int) string {
	if i < len(smallNames) {
		return "retrieval" + smallNames[i]
	}
	return fmt.Sprintf("retrieval%d", i)
}

var smallNames = [...]string{"0", "1", "2", "3", "4", "5", "6", "7", "8", "9"}

// criticalPathTTFT is the completion time of the prefix stage on the
// unloaded latency chain: the longest path over full-batch step latencies
// from the pipeline entries through the prefix. On a linear pipeline this
// is the plain sum of every pre-decode stage latency; on a fan-out graph
// parallel branches overlap and only the slowest counts. The walk itself
// lives in criticalPathTTFTWithPrefix (shape.go), which ShapeMetrics also
// uses with the shape-weighted prefix latency.
func (p *Plan) criticalPathTTFT() float64 {
	return p.criticalPathTTFTWithPrefix(p.Steps[p.PrefixIdx].Latency)
}

// CompatibleWith reports whether q executes the same stage graph as p —
// the precondition for hot-swapping a live runtime from one plan to the
// other: request state (per-stage predecessor counts, queue-entry times)
// is shaped by the graph, so only schedules of the same pipeline are
// interchangeable.
func (p *Plan) CompatibleWith(q *Plan) bool {
	if q == nil || len(p.Steps) != len(q.Steps) {
		return false
	}
	for i := range p.Steps {
		if p.Steps[i].Stage.Kind != q.Steps[i].Stage.Kind {
			return false
		}
		if len(p.Succs[i]) != len(q.Succs[i]) {
			return false
		}
		for j := range p.Succs[i] {
			if p.Succs[i][j] != q.Succs[i][j] {
				return false
			}
		}
	}
	return true
}

// NumSlots is the per-request bookkeeping width executors allocate: one
// slot per pipeline stage plus, on iterative plans, one per decode-loop
// round step (IterRetrievalSlot, IterPrefixSlot). The virtual slots sit
// past the pipeline stages so stage indices stay stable either way.
func (p *Plan) NumSlots() int {
	if p.Round != nil {
		return len(p.Steps) + 2
	}
	return len(p.Steps)
}

// IterRetrievalSlot and IterPrefixSlot are the virtual stage indices of
// the decode-loop round steps on iterative plans: executors queue parked
// sequences at these slots exactly like pipeline stages, so the rounds
// share the batching workers (and their serialization) with the initial
// retrieval and prefix. Only meaningful when Round is non-nil.
func (p *Plan) IterRetrievalSlot() int { return len(p.Steps) }
func (p *Plan) IterPrefixSlot() int    { return len(p.Steps) + 1 }

// ResourceStages returns the stage indices resource ri serves, with the
// iterative round's virtual slots appended to their owning resources —
// the one slot layout both executors (the live dataplane and the
// discrete-event simulator) build their per-resource queues from, so
// round batches contend with the regular stages on the same serial
// worker.
func (p *Plan) ResourceStages(ri int) []int {
	stages := p.Resources[ri].Stages
	if p.Round == nil {
		return stages
	}
	if ri == p.Round.Retrieval.Resource {
		stages = append(append([]int(nil), stages...), p.IterRetrievalSlot())
	}
	if ri == p.Round.Prefix.Resource {
		stages = append(append([]int(nil), stages...), p.IterPrefixSlot())
	}
	return stages
}

// SlotName returns the stable, human-readable name of a plan slot:
// pipeline stage kinds below len(Steps) ("rewrite-prefix", "retrieval",
// "prefix", ...), the decode loop's virtual round slots above
// ("iter-retrieval", "iter-prefix"). Per-stage telemetry rows and
// observability span names key on these, so they must stay stable across
// executors — the live runtime, the discrete-event simulator, and any
// trace viewer diffing the two label the same work the same way.
func (p *Plan) SlotName(idx int) string {
	switch {
	case idx < len(p.Steps):
		return p.Pipe.Stages[idx].Kind.String()
	case idx == p.IterRetrievalSlot():
		return "iter-retrieval"
	default:
		return "iter-prefix"
	}
}

// SlotNames returns SlotName for every slot (NumSlots entries).
func (p *Plan) SlotNames() []string {
	names := make([]string, p.NumSlots())
	for i := range names {
		names[i] = p.SlotName(i)
	}
	return names
}

// TrackName returns the stable name of the execution track serving a slot:
// the owning resource's name ("group0", "retrieval", ...) for stages on
// serial workers, "decode" for the continuous-batching decode pool. Span
// exports group work by track.
func (p *Plan) TrackName(idx int) string {
	if st := p.StepAt(idx); st.Resource >= 0 {
		return p.Resources[st.Resource].Name
	}
	return "decode"
}

// TrackNames returns TrackName for every slot (NumSlots entries).
func (p *Plan) TrackNames() []string {
	names := make([]string, p.NumSlots())
	for i := range names {
		names[i] = p.TrackName(i)
	}
	return names
}

// Shards returns the retrieval shard count of the profiler the plan was
// compiled against (0 or 1 means an unsharded tier). Executors use it to
// decide whether retrieval batches run — and trace — as a scatter-gather.
func (p *Plan) Shards() int { return p.prof.Shards }

// EffectiveFanout normalizes the schedule's fanout knob against the shard
// count: values outside [1, Shards] mean consult every shard.
func (p *Plan) EffectiveFanout() int {
	n := p.Shards()
	if fo := p.Sched.ShardFanout; fo >= 1 && fo <= n {
		return fo
	}
	return n
}

// StepAt returns the step at a real or virtual stage index: pipeline
// steps below len(Steps), the iterative round's steps above.
func (p *Plan) StepAt(idx int) Step {
	switch {
	case idx < len(p.Steps):
		return p.Steps[idx]
	case idx == p.IterRetrievalSlot():
		return p.Round.Retrieval
	default:
		return p.Round.Prefix
	}
}

// StepLatency returns the service time of stage idx (real or virtual) at
// the actually formed batch size n: the precompiled latency at the full
// batch, a re-profiled one for partial batches. Infeasible partial points
// fall back to the full-batch latency.
func (p *Plan) StepLatency(idx, n int) float64 {
	st := p.StepAt(idx)
	if n >= st.Batch {
		return st.Latency
	}
	if st.Stage.Kind == pipeline.KindRetrieval {
		if pt := p.prof.Eval(st.Stage, st.Chips, n); pt.OK {
			return pt.Latency + p.prof.RetrievalTransferLatency()
		}
		return st.Latency
	}
	r := st.Replicas
	if r > n {
		r = n
	}
	if pt := p.prof.EvalR(st.Stage, st.Chips, n, r); pt.OK {
		return pt.Latency
	}
	return st.Latency
}

// RetrievalPause returns the per-request idle time of an XPU group whose
// member stages span a retrieval: it must wait for the retrieval round
// between its phases, batch latency amortized over the batch. Spanned
// retrievals that run in parallel (fan-out sources on independent tiers)
// overlap, so the pause is the longest chain over the spanned-retrieval
// DAG, not the sum. nprobe and fanout tune the spanned scans (0 means the
// tier's base configuration); the optimizer's pre-schedule pricing passes
// the cheapest knob values it searches so the pause stays an optimistic
// (admissible) estimate. The boolean is false when the retrieval tier is
// infeasible at this batch. Exposed for the optimizer's incremental
// per-plan search, which prices group choices before full schedules
// exist.
func RetrievalPause(pipe pipeline.Pipeline, prof *stageperf.Profiler, stages []int, servers, batch, nprobe, fanout int) (float64, bool) {
	var spanned []int
	for _, ridx := range pipe.Indices(pipeline.KindRetrieval) {
		before, after := false, false
		for _, idx := range stages {
			if pipe.Reaches(idx, ridx) {
				before = true
			}
			if pipe.Reaches(ridx, idx) {
				after = true
			}
		}
		if before && after {
			spanned = append(spanned, ridx)
		}
	}
	var pause float64
	chain := make(map[int]float64, len(spanned))
	for i, ridx := range spanned { // ascending index == topological order
		rt := prof.Eval(pipe.Stages[ridx].Tuned(nprobe, fanout), servers, batch)
		if !rt.OK {
			return 0, false
		}
		wait := rt.Latency / float64(batch)
		longest := wait
		for _, q := range spanned[:i] {
			if pipe.Reaches(q, ridx) && chain[q]+wait > longest {
				longest = chain[q] + wait
			}
		}
		chain[ridx] = longest
		pause = math.Max(pause, longest)
	}
	return pause, true
}

// GroupMemFits checks that the models collocated on a group fit together
// in the group's aggregate HBM: each distinct model is resident once per
// replica of the widest replication any of its stages uses (per-stage
// checks inside xpusim only see one model at a time).
func GroupMemFits(pipe pipeline.Pipeline, prof *stageperf.Profiler, g GroupSchedule) bool {
	reps := make(map[string]int, len(g.Stages))
	bytes := make(map[string]float64, len(g.Stages))
	for i, idx := range g.Stages {
		m := pipe.Stages[idx].Model
		if m.Name == "" {
			continue // retrieval has no model
		}
		if r := g.ReplicasFor(i); r > reps[m.Name] {
			reps[m.Name] = r
		}
		bytes[m.Name] = m.ParamBytes()
	}
	var need float64
	for name, r := range reps {
		need += bytes[name] * float64(r)
	}
	usable := prof.Sim.Chip.HBMBytes * (1 - prof.Sim.P.HBMReserve) * float64(g.Chips)
	return need <= usable
}

// MaxPhaseReplicas bounds data-parallel replication by the work items one
// batch of the stage exposes (Fig. 14: a time-multiplexed group runs one
// phase at a time, so only that batch's work is available to replicate
// over).
func MaxPhaseReplicas(st pipeline.Stage, batch int) int {
	if st.Kind.Autoregressive() {
		return batch
	}
	items := st.Items
	if items < 1 {
		items = 1
	}
	return batch * items
}
