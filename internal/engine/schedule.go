package engine

import (
	"fmt"
	"strings"

	"rago/internal/pipeline"
)

// GroupSchedule is the resolved policy for one XPU placement group.
type GroupSchedule struct {
	// Stages are pipeline stage indices served by this group.
	Stages []int
	// Chips allocated to the group (power of two).
	Chips int
	// Batch is the request batch size every stage in the group runs at.
	Batch int
	// Replicas holds the per-stage data-parallel replica count,
	// parallel to Stages. Empty means one replica for every stage (all
	// chips cooperate on each batch).
	Replicas []int
}

// ReplicasFor returns the replica count for the i-th stage of the group.
func (g GroupSchedule) ReplicasFor(i int) int {
	if i < len(g.Replicas) && g.Replicas[i] >= 1 {
		return g.Replicas[i]
	}
	return 1
}

// Schedule is one complete scheduling decision: where every stage runs,
// with how many resources, at which batch sizes.
type Schedule struct {
	// Groups covers all pre-decode XPU stages, in pipeline order.
	Groups []GroupSchedule
	// RetrievalServers is the CPU server count for the retrieval tier
	// (0 when the workload performs no retrieval). Multi-source fan-out
	// pipelines run one such tier per source.
	RetrievalServers int
	// RetrievalBatch is the batch size of the initial retrieval.
	RetrievalBatch int
	// DecodeChips and DecodeBatch configure the main LLM decode tier.
	DecodeChips int
	DecodeBatch int
	// DecodeReplicas splits the decode chips into data-parallel groups
	// each running its share of the continuous batch (0 means 1).
	DecodeReplicas int
	// IterativeBatch is the batch size for decoder-initiated
	// retrieval/prefix iterations (§6.1 [III]); 0 when not iterative.
	IterativeBatch int
	// FormPolicy is the prefix stage's batch-formation policy. The zero
	// value (FIFO) reproduces the historical pad-to-max behavior bit for
	// bit; Bucketed and SortedWindow trade arrival order for shape
	// similarity to cut padding waste.
	FormPolicy BatchPolicy
	// ChunkQuantum, when positive, turns on chunked prefill: prefix
	// batches execute as fixed-size token chunks (members pad to the
	// quantum instead of the batch maximum) and each member's first token
	// unblocks at its own chunk boundary. 0 means whole-prompt prefill.
	ChunkQuantum int
	// NProbe is the retrieval tier's probe count (IVF cells scanned per
	// query): more probes buy recall with proportionally more scan bytes.
	// 0 means the tier's base configuration (retrieval.BaseNProbe).
	NProbe int
	// ShardFanout is how many index shards the scatter-gather consults
	// per query on a sharded retrieval tier. 0 means all shards; values
	// below the shard count trade recall for scan volume and gather cost.
	ShardFanout int
}

// DecodeReplicasOrOne normalizes the zero value.
func (s Schedule) DecodeReplicasOrOne() int {
	if s.DecodeReplicas >= 1 {
		return s.DecodeReplicas
	}
	return 1
}

// ChipsUsed is the total XPU count the schedule occupies.
func (s Schedule) ChipsUsed() int {
	total := s.DecodeChips
	for _, g := range s.Groups {
		total += g.Chips
	}
	return total
}

// Describe renders the schedule against its pipeline, in the spirit of the
// paper's Table 4 rows.
func (s Schedule) Describe(p pipeline.Pipeline) string {
	var b strings.Builder
	for _, g := range s.Groups {
		names := make([]string, len(g.Stages))
		for i, idx := range g.Stages {
			names[i] = p.Stages[idx].Kind.String()
			if r := g.ReplicasFor(i); r > 1 {
				names[i] += fmt.Sprintf("(x%d)", r)
			}
		}
		fmt.Fprintf(&b, "[%s chips=%d batch=%d] ", strings.Join(names, "+"), g.Chips, g.Batch)
	}
	if s.RetrievalServers > 0 {
		fmt.Fprintf(&b, "[retrieval servers=%d batch=%d", s.RetrievalServers, s.RetrievalBatch)
		if n := len(p.Indices(pipeline.KindRetrieval)); n > 1 {
			fmt.Fprintf(&b, " x%d sources", n)
		}
		b.WriteString("] ")
	}
	fmt.Fprintf(&b, "[decode chips=%d batch=%d", s.DecodeChips, s.DecodeBatch)
	if r := s.DecodeReplicasOrOne(); r > 1 {
		fmt.Fprintf(&b, " x%d", r)
	}
	if s.IterativeBatch > 0 {
		fmt.Fprintf(&b, " iter-batch=%d", s.IterativeBatch)
	}
	b.WriteString("]")
	if s.FormPolicy != PolicyFIFO {
		fmt.Fprintf(&b, " [form=%s]", s.FormPolicy)
	}
	if s.ChunkQuantum > 0 {
		fmt.Fprintf(&b, " [chunk=%d]", s.ChunkQuantum)
	}
	if s.NProbe > 0 {
		fmt.Fprintf(&b, " [nprobe=%d]", s.NProbe)
	}
	if s.ShardFanout > 0 {
		fmt.Fprintf(&b, " [fanout=%d]", s.ShardFanout)
	}
	return b.String()
}

// Validate checks structural consistency against a pipeline.
func (s Schedule) Validate(p pipeline.Pipeline) error {
	pl := pipeline.Placement{Groups: make([]pipeline.Group, len(s.Groups))}
	for i, g := range s.Groups {
		pl.Groups[i] = pipeline.Group{Stages: g.Stages}
		if g.Chips < 1 {
			return fmt.Errorf("engine: group %d has %d chips", i, g.Chips)
		}
		if g.Batch < 1 {
			return fmt.Errorf("engine: group %d has batch %d", i, g.Batch)
		}
		if len(g.Replicas) != 0 && len(g.Replicas) != len(g.Stages) {
			return fmt.Errorf("engine: group %d replicas/stages length mismatch", i)
		}
		for j := range g.Stages {
			r := g.ReplicasFor(j)
			if r < 1 || g.Chips%r != 0 {
				return fmt.Errorf("engine: group %d stage %d replicas %d do not divide %d chips", i, j, r, g.Chips)
			}
		}
	}
	if err := pl.Validate(p); err != nil {
		return err
	}
	if s.DecodeChips < 1 || s.DecodeBatch < 1 {
		return fmt.Errorf("engine: decode tier unconfigured")
	}
	if r := s.DecodeReplicasOrOne(); s.DecodeChips%r != 0 {
		return fmt.Errorf("engine: decode replicas %d do not divide %d chips", r, s.DecodeChips)
	}
	hasRetrieval := p.Index(pipeline.KindRetrieval) >= 0
	if hasRetrieval && (s.RetrievalServers < 1 || s.RetrievalBatch < 1) {
		return fmt.Errorf("engine: retrieval tier unconfigured")
	}
	if !hasRetrieval && s.RetrievalServers != 0 {
		return fmt.Errorf("engine: retrieval servers set for retrieval-free pipeline")
	}
	if p.Schema.Iterative() && s.IterativeBatch < 1 {
		return fmt.Errorf("engine: iterative workload without iterative batch")
	}
	if s.FormPolicy < PolicyFIFO || s.FormPolicy > PolicySorted {
		return fmt.Errorf("engine: unknown batch-formation policy %d", int(s.FormPolicy))
	}
	if s.ChunkQuantum < 0 {
		return fmt.Errorf("engine: negative chunk quantum %d", s.ChunkQuantum)
	}
	if s.NProbe < 0 {
		return fmt.Errorf("engine: negative nprobe %d", s.NProbe)
	}
	if s.ShardFanout < 0 {
		return fmt.Errorf("engine: negative shard fanout %d", s.ShardFanout)
	}
	if !hasRetrieval && (s.NProbe != 0 || s.ShardFanout != 0) {
		return fmt.Errorf("engine: retrieval knobs set for retrieval-free pipeline")
	}
	return nil
}
