package engine

import (
	"fmt"
	"slices"
)

// Batch-formation policies. PR 5 measured PadWaste ~0.61 on heavy-tailed
// Case I traffic under the implicit FIFO pad-to-max rule both executors
// hardcoded: every prefix batch is costed at the padded maximum of its
// members, so batching a 4k-token prompt with seven 512-token prompts
// wastes most of the prefill FLOPs. This file makes formation an explicit,
// pluggable dimension: a Former is the policy state machine one stage runs
// at batch formation, and the SAME Former code decides batches in the live
// runtime (serve.resource.pick) and the discrete-event simulator
// (sim.trySchedule), preserving the three-way cross-check discipline.
//
// All policies share the ripeness contract of the historical FIFO rule: a
// window dispatches when it can fill a batch, or when its oldest member
// has waited FlushTimeout. On constant-shape traffic every policy
// degenerates to FIFO exactly (one bucket / all sort keys equal), which is
// what keeps the pre-refactor goldens bit-identical under every policy.

// BatchPolicy selects the batch-formation policy of the prefix stage.
// The zero value is FIFO — today's behavior, byte-compatible.
type BatchPolicy int

const (
	// PolicyFIFO dispatches the oldest waiting requests in arrival order
	// and pads the batch to its member maximum.
	PolicyFIFO BatchPolicy = iota
	// PolicyBucketed groups waiting requests into power-of-two prompt
	// length buckets and dispatches the fullest ripe bucket, so batch
	// members pad at most 2x past their own length.
	PolicyBucketed
	// PolicySorted length-sorts the candidate window and dispatches the
	// most similar run of prompts, with a deadline rescue that forces the
	// oldest member into the batch once it has waited FlushTimeout.
	PolicySorted
)

// String renders the CLI spelling.
func (p BatchPolicy) String() string {
	switch p {
	case PolicyFIFO:
		return "fifo"
	case PolicyBucketed:
		return "bucketed"
	case PolicySorted:
		return "sorted"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParseBatchPolicy parses the CLI spelling.
func ParseBatchPolicy(s string) (BatchPolicy, error) {
	switch s {
	case "", "fifo":
		return PolicyFIFO, nil
	case "bucketed":
		return PolicyBucketed, nil
	case "sorted":
		return PolicySorted, nil
	}
	return PolicyFIFO, fmt.Errorf("engine: unknown batch policy %q (want fifo|bucketed|sorted)", s)
}

// FormView is the executor-neutral view of one stage's waiting queue a
// formation policy decides over. Entries are in FIFO (enqueue) order;
// position 0 is the oldest waiting member.
type FormView interface {
	// Len is the window size.
	Len() int
	// EnqueuedAt is the virtual enqueue time of the i-th entry.
	EnqueuedAt(i int) float64
	// PromptTokens is the i-th entry's effective prompt length in tokens
	// (0 = unshaped, costed at the schema constant).
	PromptTokens(i int) int
}

// Former is the batch-formation state machine of one stage. Both
// executors own one (scratch is not shared) and consult it wherever the
// historical code applied the FIFO ripeness rule inline. The zero value
// is not usable — build one with Plan.Former and set Flush to the
// executor's flush timeout.
type Former struct {
	// Policy is the formation policy.
	Policy BatchPolicy
	// Batch is the stage's full batch size.
	Batch int
	// Flush is the max-wait deadline: a window whose oldest member has
	// waited Flush dispatches partial.
	Flush float64
	// DefaultPrompt is the schema prompt length unshaped entries bucket
	// and sort at.
	DefaultPrompt int

	sel     []int       // selected positions, returned from Form
	ord     []int64     // sort scratch: promptLen<<32 | position
	buckets []bucketAgg // bucketed scratch
}

type bucketAgg struct {
	key, count int
	headPos    int
	headEnq    float64
}

// Form decides whether the window dispatches a batch now. n == 0 means
// nothing is ripe. Otherwise n is the batch size, formV is the exact
// virtual time the batch became formable (the drift-free ledger both the
// live pacer and the analytic cross-check depend on), and sel lists the
// selected window positions in ascending order — nil means the FIFO
// prefix [0, n). sel aliases the Former's scratch and is valid until the
// next Form call.
func (f *Former) Form(v FormView, now float64) (n int, formV float64, sel []int) {
	ln := v.Len()
	if ln == 0 {
		return 0, 0, nil
	}
	switch f.Policy {
	case PolicyBucketed:
		return f.formBucketed(v, now, ln)
	case PolicySorted:
		return f.formSorted(v, now, ln)
	}
	return f.formFIFO(v, now, ln)
}

// formFIFO is the historical rule, bit for bit: dispatchable iff the
// window fills a batch or the head has aged past Flush; the batch is the
// FIFO prefix; formV is the last member's enqueue time, or the head's
// flush deadline for deadline-triggered partials.
func (f *Former) formFIFO(v FormView, now float64, ln int) (int, float64, []int) {
	headEnq := v.EnqueuedAt(0)
	if ln < f.Batch && now-headEnq < f.Flush {
		return 0, 0, nil
	}
	n := f.Batch
	if ln < n {
		n = ln
	}
	formV := 0.0
	for i := 0; i < n; i++ {
		if e := v.EnqueuedAt(i); e > formV {
			formV = e
		}
	}
	if n < f.Batch {
		if d := headEnq + f.Flush; d > formV {
			formV = d
		}
	}
	return n, formV, nil
}

// bucketOf maps a prompt length onto the power-of-two bucket grid
// (minimum one PadQuantum). Unshaped entries bucket at the schema
// constant, so constant-shape traffic collapses into a single bucket and
// the policy degenerates to FIFO.
func (f *Former) bucketOf(prompt int) int {
	if prompt <= 0 {
		prompt = f.DefaultPrompt
	}
	b := PadQuantum
	for b < prompt {
		b <<= 1
	}
	return b
}

// formBucketed groups the window into pow2 length buckets (FIFO order
// within each) and dispatches the fullest ripe bucket. A bucket is ripe
// when it fills a batch or its own oldest member has waited Flush. Ties
// break toward the older bucket head, then the smaller bucket key, so
// both executors pick identically. Because the overall window head is
// always some bucket's head, the earliest deadline across buckets equals
// the FIFO head deadline — the executors' park/flush wake-up logic needs
// no policy-specific changes.
func (f *Former) formBucketed(v FormView, now float64, ln int) (int, float64, []int) {
	f.buckets = f.buckets[:0]
	for i := 0; i < ln; i++ {
		key := f.bucketOf(v.PromptTokens(i))
		found := false
		for j := range f.buckets {
			if f.buckets[j].key == key {
				f.buckets[j].count++
				found = true
				break
			}
		}
		if !found {
			f.buckets = append(f.buckets, bucketAgg{key: key, count: 1, headPos: i, headEnq: v.EnqueuedAt(i)})
		}
	}
	best := -1
	for j := range f.buckets {
		b := &f.buckets[j]
		if b.count < f.Batch && now-b.headEnq < f.Flush {
			continue
		}
		if best < 0 {
			best = j
			continue
		}
		w := &f.buckets[best]
		if b.count > w.count || (b.count == w.count && (b.headEnq < w.headEnq || (b.headEnq == w.headEnq && b.key < w.key))) {
			best = j
		}
	}
	if best < 0 {
		return 0, 0, nil
	}
	win := f.buckets[best]
	n := f.Batch
	if win.count < n {
		n = win.count
	}
	f.sel = f.sel[:0]
	formV := 0.0
	for i := win.headPos; i < ln && len(f.sel) < n; i++ {
		if f.bucketOf(v.PromptTokens(i)) != win.key {
			continue
		}
		f.sel = append(f.sel, i)
		if e := v.EnqueuedAt(i); e > formV {
			formV = e
		}
	}
	if win.count < f.Batch {
		if d := win.headEnq + f.Flush; d > formV {
			formV = d
		}
	}
	return n, formV, f.sel
}

// formSorted keeps FIFO's ripeness (window fills a batch, or the head
// aged past Flush) but selects the length-sorted run with the least
// padding spread. When the head triggered the deadline it MUST ship —
// the batch is the run of sorted neighbors ending at the head's sorted
// position (the largest prompts not exceeding the head's own length, so
// the head sets the pad ceiling) — which is what makes the policy
// starvation-free: every member eventually becomes the head.
func (f *Former) formSorted(v FormView, now float64, ln int) (int, float64, []int) {
	headEnq := v.EnqueuedAt(0)
	headRipe := now-headEnq >= f.Flush
	if ln < f.Batch && !headRipe {
		return 0, 0, nil
	}
	n := f.Batch
	if ln < n {
		n = ln
	}
	f.ord = f.ord[:0]
	for i := 0; i < ln; i++ {
		pt := v.PromptTokens(i)
		if pt <= 0 {
			pt = f.DefaultPrompt
		}
		f.ord = append(f.ord, int64(pt)<<32|int64(i))
	}
	slices.Sort(f.ord)
	lo := 0
	if headRipe {
		p := 0
		for j, k := range f.ord {
			if k&0xffffffff == 0 {
				p = j
				break
			}
		}
		lo = p - n + 1
		if lo < 0 {
			lo = 0
		}
	}
	f.sel = f.sel[:0]
	for _, k := range f.ord[lo : lo+n] {
		f.sel = append(f.sel, int(k&0xffffffff))
	}
	slices.Sort(f.sel)
	formV := 0.0
	for _, i := range f.sel {
		if e := v.EnqueuedAt(i); e > formV {
			formV = e
		}
	}
	if n < f.Batch {
		if d := headEnq + f.Flush; d > formV {
			formV = d
		}
	}
	return n, formV, f.sel
}

// Former builds the prefix stage's batch-formation state machine from the
// compiled schedule. The caller sets Flush to its flush timeout; each
// executor owns its own instance (scratch is not shared across
// goroutines).
func (p *Plan) Former() Former {
	return Former{
		Policy:        p.Sched.FormPolicy,
		Batch:         p.Steps[p.PrefixIdx].Batch,
		DefaultPrompt: p.Pipe.Schema.PrefixTokens,
	}
}

// ChunkPrefill computes the chunked-prefill execution of one prefix
// batch: member i's prefill completes doneAt[i] seconds after the batch
// starts service. Prompts are effective member lengths in dispatch order
// (0 = schema constant); each member pads to the chunk quantum (not to
// the batch maximum — that is the whole point), the padded token stream
// is sliced into quantum-sized chunks, and chunks run back to back at the
// precompiled per-chunk latency. A member's first token unblocks as soon
// as ITS chunks are done — the TTFT pipelining chunked prefill buys —
// while the resource stays busy until the last chunk. doneAt is caller
// scratch (grown as needed); the returns are the (possibly regrown)
// scratch, the batch's total service time, and the effective/padded token
// totals for padding-waste accounting.
func (p *Plan) ChunkPrefill(prompts []int, doneAt []float64) ([]float64, float64, int, int) {
	q := p.Sched.ChunkQuantum
	doneAt = doneAt[:0]
	def := p.Pipe.Schema.PrefixTokens
	tok, chunks := 0, 0
	for _, pt := range prompts {
		if pt <= 0 {
			pt = def
		}
		tok += pt
		chunks += (pt + q - 1) / q
		doneAt = append(doneAt, float64(chunks)*p.ChunkLatency)
	}
	total := 0.0
	if len(doneAt) > 0 {
		total = doneAt[len(doneAt)-1]
	}
	return doneAt, total, tok, chunks * q
}
