package engine

import (
	"math"
	"strings"
	"sync"
	"testing"

	"rago/internal/hw"
	"rago/internal/pipeline"
	"rago/internal/ragschema"
	"rago/internal/stageperf"
)

func mustCompile(t *testing.T, schema ragschema.Schema, sched Schedule) (*Plan, *stageperf.Profiler, pipeline.Pipeline) {
	t.Helper()
	pipe, err := pipeline.Build(schema)
	if err != nil {
		t.Fatal(err)
	}
	prof := stageperf.New(hw.XPUC, hw.EPYCHost, schema)
	plan, err := Compile(pipe, sched, prof)
	if err != nil {
		t.Fatal(err)
	}
	return plan, prof, pipe
}

func caseIVSchedule() Schedule {
	return Schedule{
		Groups: []GroupSchedule{
			{Stages: []int{0, 1}, Chips: 4, Batch: 4},  // rewrite prefix+decode
			{Stages: []int{3, 4}, Chips: 16, Batch: 4}, // rerank + prefix
		},
		RetrievalServers: 16,
		RetrievalBatch:   4,
		DecodeChips:      16,
		DecodeBatch:      64,
		DecodeReplicas:   4,
	}
}

// TestCompileGoldenCaseIV is the golden equivalence check: the compiled
// plan's per-stage steps must reproduce the pre-refactor construction —
// a direct profiler evaluation per (stage, chips, batch, replicas) — and
// the assembled metrics must equal the hand-composed latency/occupancy
// chain the analytical Assembler used to build privately.
func TestCompileGoldenCaseIV(t *testing.T) {
	schema := ragschema.CaseIV(8e9)
	sched := caseIVSchedule()
	plan, prof, pipe := mustCompile(t, schema, sched)

	if len(plan.Steps) != len(pipe.Stages) {
		t.Fatalf("plan has %d steps for %d stages", len(plan.Steps), len(pipe.Stages))
	}
	// Golden per-stage steps: XPU group members.
	var wantTTFT float64
	qps := math.Inf(1)
	for gi, g := range sched.Groups {
		var occ float64
		for i, idx := range g.Stages {
			pt := prof.EvalR(pipe.Stages[idx], g.Chips, g.Batch, g.ReplicasFor(i))
			if !pt.OK {
				t.Fatalf("reference evaluation infeasible for stage %d", idx)
			}
			st := plan.Steps[idx]
			if st.Latency != pt.Latency || st.QPS != pt.QPS {
				t.Errorf("stage %d step (lat %v qps %v) != profiler (%v %v)", idx, st.Latency, st.QPS, pt.Latency, pt.QPS)
			}
			if st.Resource != gi || st.Batch != g.Batch || st.Chips != g.Chips {
				t.Errorf("stage %d step routing = %+v, want group %d batch %d chips %d", idx, st, gi, g.Batch, g.Chips)
			}
			wantTTFT += pt.Latency
			occ += 1 / pt.QPS
		}
		if got := plan.Resources[gi].Occupancy; math.Abs(got-occ) > 1e-15 {
			t.Errorf("group %d occupancy %v, want %v", gi, got, occ)
		}
		qps = math.Min(qps, 1/occ)
	}
	// Retrieval tier.
	retrIdx := pipe.Index(pipeline.KindRetrieval)
	rt := prof.Eval(pipe.Stages[retrIdx], sched.RetrievalServers, sched.RetrievalBatch)
	wantRetr := rt.Latency + prof.RetrievalTransferLatency()
	if st := plan.Steps[retrIdx]; st.Latency != wantRetr {
		t.Errorf("retrieval step latency %v, want %v", st.Latency, wantRetr)
	}
	wantTTFT += wantRetr
	qps = math.Min(qps, rt.QPS)
	// Decode tier.
	decIdx := pipe.Index(pipeline.KindDecode)
	dec := prof.EvalR(pipe.Stages[decIdx], sched.DecodeChips, sched.DecodeBatch, sched.DecodeReplicasOrOne())
	if st := plan.Steps[decIdx]; st.Latency != dec.Latency || st.Resource != DecodeResource {
		t.Errorf("decode step = %+v, want latency %v on the decode tier", plan.Steps[decIdx], dec.Latency)
	}
	qps = math.Min(qps, float64(sched.DecodeBatch)/dec.Latency)

	// Assembled metrics: the linear pipeline's critical path is the plain
	// latency sum, throughput the bottleneck resource.
	if math.Abs(plan.Metrics.TTFT-wantTTFT) > 1e-12 {
		t.Errorf("TTFT %v, want %v", plan.Metrics.TTFT, wantTTFT)
	}
	if math.Abs(plan.Metrics.QPS-qps)/qps > 1e-12 {
		t.Errorf("QPS %v, want %v", plan.Metrics.QPS, qps)
	}
	wantTPOT := dec.Latency / float64(pipe.Stages[decIdx].OutTokens)
	if math.Abs(plan.Metrics.TPOT-wantTPOT) > 1e-15 {
		t.Errorf("TPOT %v, want %v", plan.Metrics.TPOT, wantTPOT)
	}
	if want := qps / float64(sched.ChipsUsed()); math.Abs(plan.Metrics.QPSPerChip-want) > 1e-12 {
		t.Errorf("QPS/chip %v, want %v", plan.Metrics.QPSPerChip, want)
	}
}

// TestCompileRejectsDecodeFreePipeline: a schedule over a pipeline with no
// decode stage used to index -1 and panic in the executors; the engine
// must return a descriptive error instead.
func TestCompileRejectsDecodeFreePipeline(t *testing.T) {
	schema := ragschema.CaseI(8e9, 1)
	pipe, err := pipeline.Build(schema)
	if err != nil {
		t.Fatal(err)
	}
	pipe.Stages = pipe.Stages[:len(pipe.Stages)-1] // chop decode off
	prof := stageperf.New(hw.XPUC, hw.EPYCHost, schema)
	sched := Schedule{
		Groups:           []GroupSchedule{{Stages: []int{1}, Chips: 16, Batch: 8}},
		RetrievalServers: 16,
		RetrievalBatch:   8,
		DecodeChips:      16,
		DecodeBatch:      64,
	}
	_, err = Compile(pipe, sched, prof)
	if err == nil {
		t.Fatal("decode-free pipeline must not compile")
	}
	if !strings.Contains(err.Error(), "decode") {
		t.Errorf("error %q should name the missing decode stage", err)
	}
}

func TestCompileRejectsInfeasible(t *testing.T) {
	schema := ragschema.CaseI(8e9, 1)
	pipe, err := pipeline.Build(schema)
	if err != nil {
		t.Fatal(err)
	}
	prof := stageperf.New(hw.XPUC, hw.EPYCHost, schema)
	good := Schedule{
		Groups:           []GroupSchedule{{Stages: []int{1}, Chips: 16, Batch: 8}},
		RetrievalServers: 16,
		RetrievalBatch:   8,
		DecodeChips:      16,
		DecodeBatch:      64,
	}
	bad := good
	bad.DecodeChips = 0
	if _, err := Compile(pipe, bad, prof); err == nil {
		t.Error("invalid schedule must not compile")
	}
	bad = good
	bad.RetrievalServers = 8 // cannot hold the 6.1 TB corpus
	if _, err := Compile(pipe, bad, prof); err == nil {
		t.Error("under-provisioned retrieval tier must not compile")
	}
}

// TestCompileFanOut checks the multi-source stage graph compiles into
// parallel retrieval tiers whose latencies overlap on the TTFT path.
func TestCompileFanOut(t *testing.T) {
	schema := ragschema.CaseV(8e9, 2)
	sched := Schedule{
		Groups:           []GroupSchedule{{Stages: []int{2, 3}, Chips: 16, Batch: 4}}, // rerank+prefix
		RetrievalServers: 8,
		RetrievalBatch:   4,
		DecodeChips:      16,
		DecodeBatch:      64,
		DecodeReplicas:   4,
	}
	plan, prof, pipe := mustCompile(t, schema, sched)
	if len(plan.RetrievalIdxs) != 2 {
		t.Fatalf("retrieval stages = %v, want 2 sources", plan.RetrievalIdxs)
	}
	nRetrRes := 0
	for _, r := range plan.Resources {
		if r.Retrieval {
			nRetrRes++
		}
	}
	if nRetrRes != 2 {
		t.Errorf("retrieval resources = %d, want one tier per source", nRetrRes)
	}
	// TTFT counts the two parallel retrievals once, not twice: it must
	// equal one retrieval + rerank + prefix.
	rt := prof.Eval(pipe.Stages[0], sched.RetrievalServers, sched.RetrievalBatch)
	rr := prof.Eval(pipe.Stages[2], 16, 4)
	pf := prof.Eval(pipe.Stages[3], 16, 4)
	want := rt.Latency + prof.RetrievalTransferLatency() + rr.Latency + pf.Latency
	if math.Abs(plan.Metrics.TTFT-want) > 1e-12 {
		t.Errorf("fan-out TTFT %v, want %v (parallel retrievals overlap)", plan.Metrics.TTFT, want)
	}
}

// TestPlanConcurrentReuse hammers one compiled plan from many goroutines —
// the sharing pattern of the optimizer workers and the serving runtime.
// Primarily a data-race canary for `go test -race`.
func TestPlanConcurrentReuse(t *testing.T) {
	schema := ragschema.CaseIV(8e9)
	sched := caseIVSchedule()
	plan, _, _ := mustCompile(t, schema, sched)
	ref := plan.StepLatency(3, 2)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				for idx := range plan.Steps {
					n := 1 + i%plan.Steps[idx].Batch
					if lat := plan.StepLatency(idx, n); lat <= 0 {
						t.Errorf("stage %d latency at batch %d = %v", idx, n, lat)
						return
					}
				}
				if got := plan.StepLatency(3, 2); got != ref {
					t.Errorf("concurrent StepLatency drifted: %v != %v", got, ref)
					return
				}
				if !plan.Metrics.Valid() {
					t.Error("metrics invalid under concurrent reads")
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestScheduleDescribeFanOut(t *testing.T) {
	schema := ragschema.CaseV(8e9, 2)
	pipe, err := pipeline.Build(schema)
	if err != nil {
		t.Fatal(err)
	}
	sched := Schedule{
		Groups:           []GroupSchedule{{Stages: []int{2, 3}, Chips: 16, Batch: 4}},
		RetrievalServers: 8,
		RetrievalBatch:   4,
		DecodeChips:      16,
		DecodeBatch:      64,
	}
	if err := sched.Validate(pipe); err != nil {
		t.Fatal(err)
	}
	desc := sched.Describe(pipe)
	if !strings.Contains(desc, "x2 sources") {
		t.Errorf("Describe = %q, should mention the source fan-out", desc)
	}
}

// TestRetrievalPauseParallelSources: a group spanning a multi-source
// fan-out waits for the retrieval round once — the sources run on
// independent tiers in parallel — so the pause is the longest branch,
// not the sum over sources.
func TestRetrievalPauseParallelSources(t *testing.T) {
	schema := ragschema.CaseV(8e9, 2)
	schema.QueryRewriterParams = 8e9 // upstream XPU stages so a group can span the fan-out
	pipe, err := pipeline.Build(schema)
	if err != nil {
		t.Fatal(err)
	}
	prof := stageperf.New(hw.XPUC, hw.EPYCHost, schema)
	// Baseline-style group: every pre-decode XPU stage on one pool,
	// spanning both retrieval sources.
	spanning := pipe.PreDecodeXPUStages()
	const servers, batch = 8, 4
	pause, ok := RetrievalPause(pipe, prof, spanning, servers, batch, 0, 0)
	if !ok {
		t.Fatal("pause infeasible")
	}
	rt := prof.Eval(pipe.Stages[pipe.Index(pipeline.KindRetrieval)], servers, batch)
	want := rt.Latency / batch
	if math.Abs(pause-want) > 1e-15 {
		t.Errorf("fan-out pause = %v, want one parallel round %v (not the %v sum)", pause, want, 2*want)
	}
	// A group strictly downstream of the fan-out pauses not at all.
	post := []int{pipe.Index(pipeline.KindRerank), pipe.Index(pipeline.KindPrefix)}
	if pause, ok := RetrievalPause(pipe, prof, post, servers, batch, 0, 0); !ok || pause != 0 {
		t.Errorf("downstream group pause = %v, want 0", pause)
	}
}
