package engine

import (
	"testing"

	"rago/internal/ragschema"
)

func TestEffectivePrompt(t *testing.T) {
	plan, _, _ := mustCompile(t, ragschema.CaseI(8e9, 1), caseISchedule())
	schemaPrompt := plan.Pipe.Schema.PrefixTokens

	cases := []struct {
		prompt, credit, want int
	}{
		{0, 0, 0},     // uncredited schema-constant: 0 encoding preserved
		{256, 0, 256}, // uncredited explicit prompt unchanged
		{256, -5, 256},
		{0, 100, schemaPrompt - 100}, // credit against the schema constant
		{256, 100, 156},
		{256, 255, 1},
		{256, 300, 1},  // over-credit floors at one token
		{256, 9999, 1}, // never zero or negative
	}
	for _, tc := range cases {
		if got := plan.EffectivePrompt(tc.prompt, tc.credit); got != tc.want {
			t.Errorf("EffectivePrompt(%d, %d) = %d, want %d", tc.prompt, tc.credit, got, tc.want)
		}
	}
}

// TestCachedMetricsDegenerate: no credits means CachedMetrics is exactly
// ShapeMetrics (and, for a constant-shape trace, exactly the compiled
// analytic point) — the inertness guarantee at the costing layer.
func TestCachedMetricsDegenerate(t *testing.T) {
	plan, _, _ := mustCompile(t, ragschema.CaseI(8e9, 1), caseISchedule())

	if got, want := plan.CachedMetrics(nil, nil), plan.Metrics; got != want {
		t.Errorf("CachedMetrics(nil, nil) = %+v, want the analytic point %+v", got, want)
	}
	shapes := []Shape{{PromptTokens: 300}, {PromptTokens: 700}, {}}
	if got, want := plan.CachedMetrics(shapes, nil), plan.ShapeMetrics(shapes); got != want {
		t.Errorf("CachedMetrics(shapes, nil) = %+v, want ShapeMetrics %+v", got, want)
	}
	// All-zero credits cost identically to no credits.
	if got, want := plan.CachedMetrics(shapes, make([]int, len(shapes))), plan.ShapeMetrics(shapes); got != want {
		t.Errorf("all-zero credits drifted: %+v vs %+v", got, want)
	}
}

// prefixBoundSchedule is Case I with the prefix tier starved (2 chips
// instead of 16) so the prefill stage, not decode, bounds throughput — the
// regime where a prefix-cache credit moves QPS, not just TTFT.
func prefixBoundSchedule() Schedule {
	s := caseISchedule()
	s.Groups[0].Chips = 2
	return s
}

// TestCachedMetricsImproves: credits can only help — higher QPS, no worse
// TTFT — and a bigger credit helps at least as much.
func TestCachedMetricsImproves(t *testing.T) {
	plan, _, _ := mustCompile(t, ragschema.CaseI(8e9, 1), prefixBoundSchedule())
	base := plan.Metrics

	credits := make([]int, 100)
	for i := range credits {
		if i%2 == 0 {
			credits[i] = plan.Pipe.Schema.RetrievedTokens()
		}
	}
	cached := plan.CachedMetrics(nil, credits)
	if cached.QPS < base.QPS {
		t.Errorf("cached QPS %.2f below uncached %.2f", cached.QPS, base.QPS)
	}
	if cached.TTFT > base.TTFT*1.0001 {
		t.Errorf("cached TTFT %.4f above uncached %.4f", cached.TTFT, base.TTFT)
	}

	all := make([]int, 100)
	for i := range all {
		all[i] = plan.Pipe.Schema.RetrievedTokens()
	}
	full := plan.CachedMetrics(nil, all)
	if full.QPS < cached.QPS {
		t.Errorf("full-hit QPS %.2f below half-hit %.2f", full.QPS, cached.QPS)
	}
}

func TestCachedMetricsAtHitRate(t *testing.T) {
	plan, _, _ := mustCompile(t, ragschema.CaseI(8e9, 1), prefixBoundSchedule())
	base := plan.Metrics
	credit := plan.Pipe.Schema.RetrievedTokens()

	if got := plan.CachedMetricsAtHitRate(0, credit); got != base {
		t.Errorf("hit rate 0 drifted from the analytic point")
	}
	if got := plan.CachedMetricsAtHitRate(0.5, 0); got != base {
		t.Errorf("zero credit drifted from the analytic point")
	}
	half := plan.CachedMetricsAtHitRate(0.5, credit)
	fullRate := plan.CachedMetricsAtHitRate(1, credit)
	over := plan.CachedMetricsAtHitRate(1.7, credit) // clamps to 1
	if fullRate != over {
		t.Errorf("hit rate clamp failed: %+v vs %+v", fullRate, over)
	}
	if !(fullRate.QPS >= half.QPS && half.QPS >= base.QPS) {
		t.Errorf("QPS not monotone in hit rate: base %.2f, half %.2f, full %.2f",
			base.QPS, half.QPS, fullRate.QPS)
	}
	if fullRate.QPS <= base.QPS {
		t.Errorf("full hit rate did not improve QPS: %.2f vs %.2f", fullRate.QPS, base.QPS)
	}
	// Consistency with the trace-driven form: a per-mille two-point credit
	// vector prices identically.
	credits := make([]int, 1000)
	for i := 0; i < 500; i++ {
		credits[i] = credit
	}
	if got := plan.CachedMetrics(nil, credits); got != half {
		t.Errorf("hit-rate form diverged from the credit-vector form: %+v vs %+v", got, half)
	}
}
