package engine

import (
	"rago/internal/pipeline"
	"rago/internal/stageperf"
)

// IterCost aggregates what decoder-initiated iterative retrievals (§5.3)
// cost a schedule: the decode-side stall per request and the extra
// occupancy imposed on the retrieval tier and the prefix group. It is
// zero-valued for single-retrieval workloads.
type IterCost struct {
	// StallPerRequest is the total seconds a sequence spends paused for
	// iterative retrieval+prefix (batch-formation wait included).
	StallPerRequest float64
	// RetrievalOccupancy is retrieval-tier seconds per request consumed
	// by the iterative retrievals.
	RetrievalOccupancy float64
	// PrefixOccupancy is prefix-group seconds per request consumed by
	// processing newly retrieved content.
	PrefixOccupancy float64
}

// IterRound is the compiled per-round structure of the §5.3 decode loop:
// the two steps a parked batch of sequences traverses before rejoining
// continuous decode, plus the loop constants. Where IterCost prices the
// loop in aggregate (the closed-form stall fixed point), IterRound is what
// lets the executors — the discrete-event simulator and the live serving
// runtime — actually run the rounds: park at a trigger, form a batch of
// Retrieval.Batch parked sequences on the retrieval tier, pass the newly
// retrieved content through the prefix group, resume.
type IterRound struct {
	// Retrieval executes one iterative retrieval batch on the retrieval
	// tier; Prefix the pass over the newly retrieved content on the
	// prefix group's chips. Both run at Schedule.IterativeBatch and their
	// Resource fields index Plan.Resources (filled in by Compile), so the
	// rounds occupy the same serial workers the initial retrieval and
	// prefix run on.
	Retrieval Step
	Prefix    Step
	// RoundsPerSeq is the iterative retrieval count per sequence
	// (RetrievalFrequency minus the up-front retrieval).
	RoundsPerSeq int
	// DecodeStep is the per-token decode step latency at the full decode
	// batch (the decode tier's generation latency over its output
	// tokens) — the pace a sequence decodes at between parks.
	DecodeStep float64
}

// minStallDenom caps the batch-formation feedback loop: as the iterative
// batch approaches twice the decode batch, waiting sequences starve the
// trigger supply and the fixed point diverges; real systems limp along via
// continuous batching, which we model as a bounded (20x) slowdown cliff.
const minStallDenom = 0.05

// IterativeCost evaluates the §5.3 stall model for schedule s.
//
// With f retrievals per sequence, one happens up front and n = f-1 during
// decoding. Each iterative round costs the retrieval latency, the prefix
// pass over the newly retrieved content, and a batch-formation wait W: at
// trigger rate lambda = n*b_d/T (b_d active sequences, each firing n times
// over a generation lasting T), filling a batch of b_iter takes
// (b_iter-1)/(2*lambda) on average. Solving the fixed point
//
//	T = D + n*(L_ret + L_prefix) + n*W(T)
//
// gives T = (D + n*L) / (1 - (b_iter-1)/(2*b_d)). T is further lower-
// bounded by the retrieval tier's and prefix group's service rates: if
// iterative demand n*b_d exceeds what the tier sustains at batch b_iter,
// queueing stretches the generation (this is why tiny iterative batches
// hurt large decode batches in Fig. 9b).
func IterativeCost(pipe pipeline.Pipeline, prof *stageperf.Profiler, s Schedule) (IterCost, bool) {
	cost, _, ok := IterativePlan(pipe, prof, s)
	return cost, ok
}

// IterativePlan evaluates the §5.3 stall model (see IterativeCost) and
// additionally compiles the per-round step structure the executors need.
// The round is nil for single-retrieval workloads; its Resource fields are
// left unset (Compile resolves them against the plan's resource list).
func IterativePlan(pipe pipeline.Pipeline, prof *stageperf.Profiler, s Schedule) (IterCost, *IterRound, bool) {
	schema := pipe.Schema
	if !schema.Iterative() {
		return IterCost{}, nil, true
	}
	n := float64(schema.RetrievalFrequency - 1)
	bIter := s.IterativeBatch
	bDec := s.DecodeBatch

	retrIdx := pipe.Index(pipeline.KindRetrieval)
	prefixIdx := pipe.Index(pipeline.KindPrefix)
	if retrIdx < 0 || prefixIdx < 0 {
		return IterCost{}, nil, false
	}
	gi := groupOf(prefixIdx, s)
	if gi < 0 {
		return IterCost{}, nil, false
	}
	prefixChips := s.Groups[gi].Chips

	rt := prof.Eval(pipe.Stages[retrIdx], s.RetrievalServers, bIter)
	if !rt.OK {
		return IterCost{}, nil, false
	}
	// The iterative prefix processes the newly retrieved passages on the
	// prefix group's chips, at whatever replication maximizes its
	// throughput (these passes are pure decode-path overhead; their
	// latency shows up as stall, not TTFT).
	iterStage := pipe.Stages[prefixIdx]
	iterStage.SeqLen = schema.RetrievedTokens()
	if iterStage.SeqLen <= 0 {
		return IterCost{}, nil, false
	}
	var pt stageperf.Point
	for _, cand := range prof.Candidates(iterStage, prefixChips, bIter) {
		if !pt.OK || cand.QPS > pt.QPS {
			pt = cand
		}
	}
	if !pt.OK {
		return IterCost{}, nil, false
	}

	// Decode time without stalls.
	decIdx := pipe.Index(pipeline.KindDecode)
	dec := prof.EvalR(pipe.Stages[decIdx], s.DecodeChips, bDec, s.DecodeReplicasOrOne())
	if !dec.OK {
		return IterCost{}, nil, false
	}
	d := dec.Latency

	roundLat := rt.Latency + pt.Latency + prof.RetrievalTransferLatency()
	denom := 1 - float64(bIter-1)/(2*float64(bDec))
	if denom < minStallDenom {
		denom = minStallDenom
	}
	t := (d + n*roundLat) / denom

	// Throughput lower bounds: the tier must serve n*b_d iterative ops
	// per generation window.
	if tMin := n * float64(bDec) / rt.QPS; t < tMin {
		t = tMin
	}
	if tMin := n * float64(bDec) / pt.QPS; t < tMin {
		t = tMin
	}

	cost := IterCost{
		StallPerRequest:    t - d,
		RetrievalOccupancy: n / rt.QPS,
		PrefixOccupancy:    n / pt.QPS,
	}
	outTokens := pipe.Stages[decIdx].OutTokens
	round := &IterRound{
		Retrieval: Step{
			Stage:    pipe.Stages[retrIdx],
			Resource: -1,
			Chips:    s.RetrievalServers,
			Batch:    bIter,
			Replicas: 1,
			Latency:  rt.Latency + prof.RetrievalTransferLatency(),
			QPS:      rt.QPS,
		},
		Prefix: Step{
			Stage:    iterStage,
			Resource: -1,
			Chips:    prefixChips,
			Batch:    bIter,
			Replicas: pt.Replicas,
			Latency:  pt.Latency,
			QPS:      pt.QPS,
		},
		RoundsPerSeq: schema.RetrievalFrequency - 1,
		DecodeStep:   d / float64(outTokens),
	}
	return cost, round, true
}

// groupOf finds which schedule group serves pipeline stage idx, or -1.
func groupOf(idx int, s Schedule) int {
	for gi, g := range s.Groups {
		for _, st := range g.Stages {
			if st == idx {
				return gi
			}
		}
	}
	return -1
}
