package engine

import (
	"rago/internal/pipeline"
	"rago/internal/stageperf"
)

// IterCost aggregates what decoder-initiated iterative retrievals (§5.3)
// cost a schedule: the decode-side stall per request and the extra
// occupancy imposed on the retrieval tier and the prefix group. It is
// zero-valued for single-retrieval workloads.
type IterCost struct {
	// StallPerRequest is the total seconds a sequence spends paused for
	// iterative retrieval+prefix (batch-formation wait included).
	StallPerRequest float64
	// RetrievalOccupancy is retrieval-tier seconds per request consumed
	// by the iterative retrievals.
	RetrievalOccupancy float64
	// PrefixOccupancy is prefix-group seconds per request consumed by
	// processing newly retrieved content.
	PrefixOccupancy float64
}

// minStallDenom caps the batch-formation feedback loop: as the iterative
// batch approaches twice the decode batch, waiting sequences starve the
// trigger supply and the fixed point diverges; real systems limp along via
// continuous batching, which we model as a bounded (20x) slowdown cliff.
const minStallDenom = 0.05

// IterativeCost evaluates the §5.3 stall model for schedule s.
//
// With f retrievals per sequence, one happens up front and n = f-1 during
// decoding. Each iterative round costs the retrieval latency, the prefix
// pass over the newly retrieved content, and a batch-formation wait W: at
// trigger rate lambda = n*b_d/T (b_d active sequences, each firing n times
// over a generation lasting T), filling a batch of b_iter takes
// (b_iter-1)/(2*lambda) on average. Solving the fixed point
//
//	T = D + n*(L_ret + L_prefix) + n*W(T)
//
// gives T = (D + n*L) / (1 - (b_iter-1)/(2*b_d)). T is further lower-
// bounded by the retrieval tier's and prefix group's service rates: if
// iterative demand n*b_d exceeds what the tier sustains at batch b_iter,
// queueing stretches the generation (this is why tiny iterative batches
// hurt large decode batches in Fig. 9b).
func IterativeCost(pipe pipeline.Pipeline, prof *stageperf.Profiler, s Schedule) (IterCost, bool) {
	schema := pipe.Schema
	if !schema.Iterative() {
		return IterCost{}, true
	}
	n := float64(schema.RetrievalFrequency - 1)
	bIter := s.IterativeBatch
	bDec := s.DecodeBatch

	retrIdx := pipe.Index(pipeline.KindRetrieval)
	prefixIdx := pipe.Index(pipeline.KindPrefix)
	if retrIdx < 0 || prefixIdx < 0 {
		return IterCost{}, false
	}
	gi := groupOf(prefixIdx, s)
	if gi < 0 {
		return IterCost{}, false
	}
	prefixChips := s.Groups[gi].Chips

	rt := prof.Eval(pipe.Stages[retrIdx], s.RetrievalServers, bIter)
	if !rt.OK {
		return IterCost{}, false
	}
	// The iterative prefix processes the newly retrieved passages on the
	// prefix group's chips, at whatever replication maximizes its
	// throughput (these passes are pure decode-path overhead; their
	// latency shows up as stall, not TTFT).
	iterStage := pipe.Stages[prefixIdx]
	iterStage.SeqLen = schema.RetrievedTokens()
	if iterStage.SeqLen <= 0 {
		return IterCost{}, false
	}
	var pt stageperf.Point
	for _, cand := range prof.Candidates(iterStage, prefixChips, bIter) {
		if !pt.OK || cand.QPS > pt.QPS {
			pt = cand
		}
	}
	if !pt.OK {
		return IterCost{}, false
	}

	// Decode time without stalls.
	decIdx := pipe.Index(pipeline.KindDecode)
	dec := prof.EvalR(pipe.Stages[decIdx], s.DecodeChips, bDec, s.DecodeReplicasOrOne())
	if !dec.OK {
		return IterCost{}, false
	}
	d := dec.Latency

	roundLat := rt.Latency + pt.Latency + prof.RetrievalTransferLatency()
	denom := 1 - float64(bIter-1)/(2*float64(bDec))
	if denom < minStallDenom {
		denom = minStallDenom
	}
	t := (d + n*roundLat) / denom

	// Throughput lower bounds: the tier must serve n*b_d iterative ops
	// per generation window.
	if tMin := n * float64(bDec) / rt.QPS; t < tMin {
		t = tMin
	}
	if tMin := n * float64(bDec) / pt.QPS; t < tMin {
		t = tMin
	}

	return IterCost{
		StallPerRequest:    t - d,
		RetrievalOccupancy: n / rt.QPS,
		PrefixOccupancy:    n / pt.QPS,
	}, true
}

// groupOf finds which schedule group serves pipeline stage idx, or -1.
func groupOf(idx int, s Schedule) int {
	for gi, g := range s.Groups {
		for _, st := range g.Stages {
			if st == idx {
				return gi
			}
		}
	}
	return -1
}
