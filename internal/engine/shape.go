package engine

import (
	"math"
	"slices"
	"sort"

	"rago/internal/perf"
	"rago/internal/stageperf"
)

// Shape-aware step costing. RAGO's workload characterization (§4) is built
// on sequence-length distributions, and real RAG traffic has heavy-tailed
// per-request prompt and output lengths; a compiled plan therefore prices
// steps not only by batch size but by the sequence shape of the batch.
//
// The model both executors (the live runtime and the discrete-event
// simulator) share: a prefix batch is costed at the padded maximum of its
// members' prompt lengths — padding to a PadQuantum-token grid, the way
// real serving systems bucket-pad prefill batches, which also bounds the
// number of distinct operating points the memoizing profiler ever sees —
// and each decode slot is held for its own request's output length at a
// per-token step pace priced at the request's own live KV context
// (DecodeStepFor). The padding waste (tokens computed beyond what the
// batch's members needed) is reported so pad-to-max's cost is visible —
// and the batch-formation policies in form.go (bucketed, sorted-window,
// chunked prefill) are the schedulable dimensions that avoid it.

// Shape is the padded sequence shape one batch is costed at. The zero
// value means "schema constant" and takes the precompiled constant-shape
// path bit for bit.
type Shape struct {
	// PromptTokens is the padded prompt (prefix) length in tokens.
	PromptTokens int
	// OutputTokens is the generation length in tokens.
	OutputTokens int
}

// PadQuantum is the token granularity shaped batches are padded to.
const PadQuantum = 64

// PadTokens rounds n up to the padding grid (minimum one quantum).
func PadTokens(n int) int {
	if n <= PadQuantum {
		return PadQuantum
	}
	return (n + PadQuantum - 1) / PadQuantum * PadQuantum
}

// PrefixBatchShape aggregates the member prompt lengths of one prefix
// batch into the padded shape the batch is costed at, plus the sum of the
// members' effective (un-padded) prompt tokens for padding-waste
// accounting. Members with length 0 count at the schema constant. A batch
// whose members are all unshaped returns the zero Shape (and 0 tokens):
// the precompiled constant-shape cost applies and no padding is recorded.
func (p *Plan) PrefixBatchShape(prompts []int) (Shape, int) {
	shaped := false
	def := p.Pipe.Schema.PrefixTokens
	maxRaw, sum := 0, 0
	for _, pr := range prompts {
		if pr > 0 {
			shaped = true
		} else {
			pr = def
		}
		if pr > maxRaw {
			maxRaw = pr
		}
		sum += pr
	}
	if !shaped {
		return Shape{}, 0
	}
	return Shape{PromptTokens: PadTokens(maxRaw)}, sum
}

// StepLatencyShaped returns the service time of stage idx at the actually
// formed batch size n and the given padded batch shape. The zero shape —
// and every stage whose cost does not depend on the per-request shape
// (retrieval, encode, rewrite, rerank, the iterative round slots) — takes
// StepLatency's constant-shape path unchanged, which is what keeps
// shape-less traces reproducing their historical results exactly. Shaped
// prefix points that the profiler finds infeasible (a padded prompt
// overflowing KV cache at this batch) fall back to the constant-shape
// latency, like partial-batch re-profiling does.
func (p *Plan) StepLatencyShaped(idx, n int, sh Shape) float64 {
	if sh.PromptTokens <= 0 || idx != p.PrefixIdx {
		return p.StepLatency(idx, n)
	}
	st := p.Steps[p.PrefixIdx]
	b := n
	if b > st.Batch {
		b = st.Batch
	}
	r := st.Replicas
	if r > b {
		r = b
	}
	shaped := stageperf.ShapedStage(st.Stage, sh.PromptTokens)
	if pt := p.prof.EvalR(shaped, st.Chips, b, r); pt.OK {
		return pt.Latency
	}
	return p.StepLatency(idx, n)
}

// GenTimeFor returns the decode-slot holding time of one request
// generating outTokens tokens (excluding iterative stalls, which accrue
// per round in the executors). 0 means the schema constant and returns the
// precompiled full-batch generation latency bit for bit.
func (p *Plan) GenTimeFor(outTokens int) float64 {
	if outTokens <= 0 {
		return p.Steps[p.DecodeIdx].Latency
	}
	return float64(outTokens) * p.DecodeStep
}

// DecodeStepFor returns the per-token decode pace of one request: a
// shaped prompt grows the request's live KV context (prompt plus half its
// generation, the same mid-generation average the schema uses), so long
// prompts slow their own decode steps instead of riding the schema mean.
// The context pads to the PadQuantum grid, which bounds the distinct
// operating points the memoizing profiler sees. Unshaped requests — and
// shaped contexts the profiler finds infeasible — return the precompiled
// DecodeStep bit for bit.
func (p *Plan) DecodeStepFor(promptTok, outTok int) float64 {
	if promptTok <= 0 {
		return p.DecodeStep
	}
	st := p.Steps[p.DecodeIdx]
	out := outTok
	if out <= 0 {
		out = st.Stage.OutTokens
	}
	shaped := stageperf.ShapedDecodeStage(st.Stage, PadTokens(promptTok+out/2))
	if pt := p.prof.EvalR(shaped, st.Chips, st.Batch, st.Replicas); pt.OK && pt.StepLatency > 0 {
		return pt.StepLatency
	}
	return p.DecodeStep
}

// GenTimeForShape is GenTimeFor with shape-dependent decode pacing: the
// slot holding time of a request with the given effective prompt and
// output lengths. Unshaped prompts take GenTimeFor's precompiled path
// unchanged.
func (p *Plan) GenTimeForShape(promptTok, outTok int) float64 {
	if promptTok <= 0 {
		return p.GenTimeFor(outTok)
	}
	out := outTok
	if out <= 0 {
		out = p.Steps[p.DecodeIdx].Stage.OutTokens
	}
	return float64(out) * p.DecodeStepFor(promptTok, outTok)
}

// ShapeMetrics re-weights the plan's analytical prediction over an
// empirical per-request shape distribution — the reference a heterogeneous
// replay is cross-checked against, exactly as Plan.Metrics is for
// constant-shape traces.
//
// Prefill: at saturation the prefix worker serves full batches of B
// members drawn from the trace, each costed at the padded maximum of its
// members, so the expected batch latency is E[L(pad(max of B draws))] —
// computed exactly from the empirical CDF (P(max <= v) = F(v)^B) with each
// distinct padded length priced through the memoizing profiler. That
// expectation replaces the constant-shape prefix latency in both the TTFT
// critical path and the prefix group's occupancy. Decode: slots free at
// each request's own output length, so the tier's throughput bound is
// DecodeBatch over the mean per-request generation time (iterative stalls
// included), and TPOT is the mean per-token pace. Stages whose cost is
// shape-independent keep their compiled occupancies.
func (p *Plan) ShapeMetrics(shapes []Shape) perf.Metrics {
	return p.ShapeMetricsWithPolicy(shapes, p.Sched.FormPolicy)
}

// ShapeMetricsWithPolicy is ShapeMetrics priced under an explicit
// batch-formation policy, so callers (the schedule search, the
// controller's capacity weighting) can compare policies on one compiled
// plan. The prefix expectation per policy comes from the empirical length
// CDF: FIFO prices E[L(pad(max of B draws))] over the whole
// distribution; Bucketed conditions the same expectation within each
// pow2 length bucket and weights by bucket mass (batches only ever mix
// within a bucket); SortedWindow prices consecutive blocks of the sorted
// length distribution (a saturated sorted window dispatches neighbors).
// Chunked-prefill plans (ChunkQuantum > 0) price the prefix in chunk
// terms instead — per-request occupancy is the request's own expected
// chunk count, and the TTFT contribution is the mean member completion
// within a full batch, reflecting chunk pipelining.
func (p *Plan) ShapeMetricsWithPolicy(shapes []Shape, pol BatchPolicy) perf.Metrics {
	if len(shapes) == 0 {
		return p.Metrics
	}
	dec := p.Steps[p.DecodeIdx]
	var sumGen, sumOut float64
	for _, s := range shapes {
		out := s.OutputTokens
		if out <= 0 {
			out = dec.Stage.OutTokens
		}
		sumGen += p.GenTimeForShape(s.PromptTokens, s.OutputTokens) + p.Iter.StallPerRequest
		sumOut += float64(out)
	}
	n := float64(len(shapes))
	meanGen := sumGen / n

	prefix := p.Steps[p.PrefixIdx]
	var deltaOcc, ttftPrefix float64
	if q := p.Sched.ChunkQuantum; q > 0 {
		var chunks float64
		for _, s := range shapes {
			pt := s.PromptTokens
			if pt <= 0 {
				pt = p.Pipe.Schema.PrefixTokens
			}
			chunks += float64((pt + q - 1) / q)
		}
		perReq := chunks / n * p.ChunkLatency
		schemaChunks := (p.Pipe.Schema.PrefixTokens + q - 1) / q
		deltaOcc = perReq - float64(schemaChunks)*p.ChunkLatency
		ttftPrefix = perReq * float64(prefix.Batch+1) / 2
	} else {
		// Expected full-batch prefix latency over the policy's padded-max
		// distribution.
		elPrefix := p.expectedPrefixLatencyPolicy(shapes, prefix.Batch, pol)
		deltaOcc = (elPrefix - prefix.Latency) / float64(prefix.Batch)
		ttftPrefix = elPrefix
	}

	qps := math.Inf(1)
	for _, res := range p.Resources {
		occ := res.Occupancy
		if slices.Contains(res.Stages, p.PrefixIdx) {
			occ += deltaOcc
		}
		qps = math.Min(qps, 1/occ)
	}
	qps = math.Min(qps, float64(p.Sched.DecodeBatch)/meanGen)

	return perf.Metrics{
		TTFT:       p.criticalPathTTFTWithPrefix(ttftPrefix),
		TPOT:       meanGen / (sumOut / n),
		QPS:        qps,
		QPSPerChip: qps / float64(p.Sched.ChipsUsed()),
		Recall:     p.Metrics.Recall, // shape-independent: the scan's quality axis
	}
}

// paddedPrompts resolves the sample onto the padding grid (unshaped
// entries at the schema constant); shaped is false when every entry rode
// the schema constant.
func (p *Plan) paddedPrompts(shapes []Shape) (padded []int, shaped bool) {
	padded = make([]int, len(shapes))
	for i, s := range shapes {
		pr := s.PromptTokens
		if pr > 0 {
			shaped = true
		} else {
			pr = p.Pipe.Schema.PrefixTokens
		}
		padded[i] = PadTokens(pr)
	}
	return padded, shaped
}

// expectedPrefixLatencyPolicy is the expected full-batch prefix latency
// under a formation policy. With every entry unshaped it degenerates to
// the precompiled latency for every policy.
func (p *Plan) expectedPrefixLatencyPolicy(shapes []Shape, batch int, pol BatchPolicy) float64 {
	padded, shaped := p.paddedPrompts(shapes)
	if !shaped {
		return p.Steps[p.PrefixIdx].Latency
	}
	switch pol {
	case PolicyBucketed:
		// Batches never mix buckets: condition the padded-max expectation
		// within each pow2 bucket and weight by bucket mass.
		sort.Ints(padded)
		var el float64
		n := float64(len(padded))
		for i := 0; i < len(padded); {
			hi := padded[i]
			b := PadQuantum
			for b < hi {
				b <<= 1
			}
			j := i
			for j < len(padded) && padded[j] <= b {
				j++
			}
			el += float64(j-i) / n * p.expectedMaxLatency(padded[i:j], batch)
			i = j
		}
		return el
	case PolicySorted:
		// A saturated sorted window dispatches consecutive sorted runs:
		// partition the sorted sample into blocks of `batch` and price
		// each request at its block's padded maximum.
		sort.Ints(padded)
		var el float64
		n := float64(len(padded))
		for i := 0; i < len(padded); i += batch {
			j := i + batch
			if j > len(padded) {
				j = len(padded)
			}
			el += float64(j-i) / n * p.StepLatencyShaped(p.PrefixIdx, batch, Shape{PromptTokens: padded[j-1]})
		}
		return el
	}
	sort.Ints(padded)
	return p.expectedMaxLatency(padded, batch)
}

// expectedMaxLatency is E[L(max of batch draws)] over a sorted padded
// sample, computed exactly from the empirical CDF (P(max <= v) = F(v)^B)
// with each distinct padded length priced through the memoizing profiler.
func (p *Plan) expectedMaxLatency(padded []int, batch int) float64 {
	n := float64(len(padded))
	var el, fPrev float64
	for i := 0; i < len(padded); {
		v := padded[i]
		j := i
		for j < len(padded) && padded[j] == v {
			j++
		}
		f := math.Pow(float64(j)/n, float64(batch))
		el += (f - fPrev) * p.StepLatencyShaped(p.PrefixIdx, batch, Shape{PromptTokens: v})
		fPrev = f
		i = j
	}
	return el
}

// expectedMaxPadded is E[max of batch draws] over a sorted padded sample
// — the token-space twin of expectedMaxLatency.
func expectedMaxPadded(padded []int, batch int) float64 {
	n := float64(len(padded))
	var ev, fPrev float64
	for i := 0; i < len(padded); {
		v := padded[i]
		j := i
		for j < len(padded) && padded[j] == v {
			j++
		}
		f := math.Pow(float64(j)/n, float64(batch))
		ev += (f - fPrev) * float64(v)
		fPrev = f
		i = j
	}
	return ev
}

// PadEfficiency is the expected effective-to-padded prefill token ratio
// the plan's formation policy achieves on a shape sample (1 = zero
// padding waste; FIFO on the PR 5 heavy-tailed mix sits near 0.39). The
// controller's capacity staircase weights library entries by it, so a
// policy that wastes less prefill earns proportionally more admitted
// load. Empty and all-unshaped samples return 1: constant-shape batches
// pad nothing under any policy.
func (p *Plan) PadEfficiency(shapes []Shape) float64 {
	padded, shaped := p.paddedPrompts(shapes)
	if !shaped || len(padded) == 0 {
		return 1
	}
	var eff float64
	for _, s := range shapes {
		pt := s.PromptTokens
		if pt <= 0 {
			pt = p.Pipe.Schema.PrefixTokens
		}
		eff += float64(pt)
	}
	n := float64(len(padded))
	batch := p.Steps[p.PrefixIdx].Batch
	var padTotal float64
	if q := p.Sched.ChunkQuantum; q > 0 {
		for _, v := range padded {
			padTotal += float64((v + q - 1) / q * q)
		}
	} else {
		switch p.Sched.FormPolicy {
		case PolicyBucketed:
			sort.Ints(padded)
			for i := 0; i < len(padded); {
				hi := padded[i]
				b := PadQuantum
				for b < hi {
					b <<= 1
				}
				j := i
				for j < len(padded) && padded[j] <= b {
					j++
				}
				padTotal += float64(j-i) * expectedMaxPadded(padded[i:j], batch)
				i = j
			}
		case PolicySorted:
			sort.Ints(padded)
			for i := 0; i < len(padded); i += batch {
				j := i + batch
				if j > len(padded) {
					j = len(padded)
				}
				padTotal += float64(j-i) * float64(padded[j-1])
			}
		default:
			sort.Ints(padded)
			padTotal = n * expectedMaxPadded(padded, batch)
		}
	}
	if padTotal <= 0 {
		return 1
	}
	if eff > padTotal {
		return 1
	}
	return eff / padTotal
}

// criticalPathTTFTWithPrefix is criticalPathTTFT with the prefix stage's
// full-batch latency overridden (the shape-weighted expectation).
func (p *Plan) criticalPathTTFTWithPrefix(prefixLatency float64) float64 {
	finish := p.cpScratch
	if finish == nil {
		finish = make([]float64, len(p.Steps))
	} else {
		for i := range finish {
			finish[i] = 0
		}
	}
	for i := range p.Steps {
		if i == p.DecodeIdx {
			continue
		}
		start := 0.0
		for _, j := range p.Preds[i] {
			start = math.Max(start, finish[j])
		}
		lat := p.Steps[i].Latency
		if i == p.PrefixIdx {
			lat = prefixLatency
		}
		finish[i] = start + lat
	}
	return finish[p.PrefixIdx]
}
