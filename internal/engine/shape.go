package engine

import (
	"math"
	"slices"
	"sort"

	"rago/internal/perf"
	"rago/internal/stageperf"
)

// Shape-aware step costing. RAGO's workload characterization (§4) is built
// on sequence-length distributions, and real RAG traffic has heavy-tailed
// per-request prompt and output lengths; a compiled plan therefore prices
// steps not only by batch size but by the sequence shape of the batch.
//
// The model both executors (the live runtime and the discrete-event
// simulator) share: a prefix batch is costed at the padded maximum of its
// members' prompt lengths — padding to a PadQuantum-token grid, the way
// real serving systems bucket-pad prefill batches, which also bounds the
// number of distinct operating points the memoizing profiler ever sees —
// and each decode slot is held for its own request's output length at the
// plan's per-token step pace. The padding waste (tokens computed beyond
// what the batch's members needed) is reported so pad-to-max's cost is
// visible; shape-aware batch formation that avoids it is a recorded
// follow-up, not silently assumed away.

// Shape is the padded sequence shape one batch is costed at. The zero
// value means "schema constant" and takes the precompiled constant-shape
// path bit for bit.
type Shape struct {
	// PromptTokens is the padded prompt (prefix) length in tokens.
	PromptTokens int
	// OutputTokens is the generation length in tokens.
	OutputTokens int
}

// PadQuantum is the token granularity shaped batches are padded to.
const PadQuantum = 64

// PadTokens rounds n up to the padding grid (minimum one quantum).
func PadTokens(n int) int {
	if n <= PadQuantum {
		return PadQuantum
	}
	return (n + PadQuantum - 1) / PadQuantum * PadQuantum
}

// PrefixBatchShape aggregates the member prompt lengths of one prefix
// batch into the padded shape the batch is costed at, plus the sum of the
// members' effective (un-padded) prompt tokens for padding-waste
// accounting. Members with length 0 count at the schema constant. A batch
// whose members are all unshaped returns the zero Shape (and 0 tokens):
// the precompiled constant-shape cost applies and no padding is recorded.
func (p *Plan) PrefixBatchShape(prompts []int) (Shape, int) {
	shaped := false
	def := p.Pipe.Schema.PrefixTokens
	maxRaw, sum := 0, 0
	for _, pr := range prompts {
		if pr > 0 {
			shaped = true
		} else {
			pr = def
		}
		if pr > maxRaw {
			maxRaw = pr
		}
		sum += pr
	}
	if !shaped {
		return Shape{}, 0
	}
	return Shape{PromptTokens: PadTokens(maxRaw)}, sum
}

// StepLatencyShaped returns the service time of stage idx at the actually
// formed batch size n and the given padded batch shape. The zero shape —
// and every stage whose cost does not depend on the per-request shape
// (retrieval, encode, rewrite, rerank, the iterative round slots) — takes
// StepLatency's constant-shape path unchanged, which is what keeps
// shape-less traces reproducing their historical results exactly. Shaped
// prefix points that the profiler finds infeasible (a padded prompt
// overflowing KV cache at this batch) fall back to the constant-shape
// latency, like partial-batch re-profiling does.
func (p *Plan) StepLatencyShaped(idx, n int, sh Shape) float64 {
	if sh.PromptTokens <= 0 || idx != p.PrefixIdx {
		return p.StepLatency(idx, n)
	}
	st := p.Steps[p.PrefixIdx]
	b := n
	if b > st.Batch {
		b = st.Batch
	}
	r := st.Replicas
	if r > b {
		r = b
	}
	shaped := stageperf.ShapedStage(st.Stage, sh.PromptTokens)
	if pt := p.prof.EvalR(shaped, st.Chips, b, r); pt.OK {
		return pt.Latency
	}
	return p.StepLatency(idx, n)
}

// GenTimeFor returns the decode-slot holding time of one request
// generating outTokens tokens (excluding iterative stalls, which accrue
// per round in the executors). 0 means the schema constant and returns the
// precompiled full-batch generation latency bit for bit.
func (p *Plan) GenTimeFor(outTokens int) float64 {
	if outTokens <= 0 {
		return p.Steps[p.DecodeIdx].Latency
	}
	return float64(outTokens) * p.DecodeStep
}

// ShapeMetrics re-weights the plan's analytical prediction over an
// empirical per-request shape distribution — the reference a heterogeneous
// replay is cross-checked against, exactly as Plan.Metrics is for
// constant-shape traces.
//
// Prefill: at saturation the prefix worker serves full batches of B
// members drawn from the trace, each costed at the padded maximum of its
// members, so the expected batch latency is E[L(pad(max of B draws))] —
// computed exactly from the empirical CDF (P(max <= v) = F(v)^B) with each
// distinct padded length priced through the memoizing profiler. That
// expectation replaces the constant-shape prefix latency in both the TTFT
// critical path and the prefix group's occupancy. Decode: slots free at
// each request's own output length, so the tier's throughput bound is
// DecodeBatch over the mean per-request generation time (iterative stalls
// included), and TPOT is the mean per-token pace. Stages whose cost is
// shape-independent keep their compiled occupancies.
func (p *Plan) ShapeMetrics(shapes []Shape) perf.Metrics {
	if len(shapes) == 0 {
		return p.Metrics
	}
	dec := p.Steps[p.DecodeIdx]
	var sumGen, sumOut float64
	for _, s := range shapes {
		out := s.OutputTokens
		if out <= 0 {
			out = dec.Stage.OutTokens
		}
		sumGen += p.GenTimeFor(s.OutputTokens) + p.Iter.StallPerRequest
		sumOut += float64(out)
	}
	n := float64(len(shapes))
	meanGen := sumGen / n

	// Expected full-batch prefix latency over the padded-max distribution.
	prefix := p.Steps[p.PrefixIdx]
	elPrefix := p.expectedPrefixLatency(shapes, prefix.Batch)
	deltaL := elPrefix - prefix.Latency

	qps := math.Inf(1)
	for _, res := range p.Resources {
		occ := res.Occupancy
		if slices.Contains(res.Stages, p.PrefixIdx) {
			occ += deltaL / float64(prefix.Batch)
		}
		qps = math.Min(qps, 1/occ)
	}
	qps = math.Min(qps, float64(p.Sched.DecodeBatch)/meanGen)

	return perf.Metrics{
		TTFT:       p.criticalPathTTFTWithPrefix(elPrefix),
		TPOT:       meanGen / (sumOut / n),
		QPS:        qps,
		QPSPerChip: qps / float64(p.Sched.ChipsUsed()),
	}
}

// expectedPrefixLatency is E[L(pad(max of batch draws))] over the
// empirical prompt distribution (unshaped entries at the schema constant).
// With every entry unshaped it degenerates to the precompiled latency.
func (p *Plan) expectedPrefixLatency(shapes []Shape, batch int) float64 {
	prefix := p.Steps[p.PrefixIdx]
	shaped := false
	padded := make([]int, len(shapes))
	for i, s := range shapes {
		pr := s.PromptTokens
		if pr > 0 {
			shaped = true
		} else {
			pr = p.Pipe.Schema.PrefixTokens
		}
		padded[i] = PadTokens(pr)
	}
	if !shaped {
		return prefix.Latency
	}
	sort.Ints(padded)
	n := float64(len(padded))
	var el, fPrev float64
	for i := 0; i < len(padded); {
		v := padded[i]
		j := i
		for j < len(padded) && padded[j] == v {
			j++
		}
		f := math.Pow(float64(j)/n, float64(batch))
		el += (f - fPrev) * p.StepLatencyShaped(p.PrefixIdx, batch, Shape{PromptTokens: v})
		fPrev = f
		i = j
	}
	return el
}

// criticalPathTTFTWithPrefix is criticalPathTTFT with the prefix stage's
// full-batch latency overridden (the shape-weighted expectation).
func (p *Plan) criticalPathTTFTWithPrefix(prefixLatency float64) float64 {
	finish := p.cpScratch
	if finish == nil {
		finish = make([]float64, len(p.Steps))
	} else {
		for i := range finish {
			finish[i] = 0
		}
	}
	for i := range p.Steps {
		if i == p.DecodeIdx {
			continue
		}
		start := 0.0
		for _, j := range p.Preds[i] {
			start = math.Max(start, finish[j])
		}
		lat := p.Steps[i].Latency
		if i == p.PrefixIdx {
			lat = prefixLatency
		}
		finish[i] = start + lat
	}
	return finish[p.PrefixIdx]
}
