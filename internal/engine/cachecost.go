package engine

import "rago/internal/perf"

// Cache-aware costing. A prefix/KV cache hit (internal/cache) means a
// request's retrieved-context KV is already resident: the prefix stage
// prefills only the uncached suffix. The rule shared by both executors and
// the analytical model is EffectivePrompt — the discounted prompt length a
// credited request is costed at — with the discounted batches priced
// through the existing shaped costing (StepLatencyShaped → the memoizing
// profiler), so a cached batch is just a shaped batch with shorter
// members.

// EffectivePrompt returns the prompt length a request prefills after a
// prefix-cache credit of `credit` tokens. promptTok uses the trace
// encoding (0 = schema constant). A zero credit returns promptTok
// unchanged — preserving the 0 encoding, so uncredited unshaped requests
// keep taking the precompiled constant-shape path bit for bit. A positive
// credit discounts the request's full prompt (explicit or schema
// constant), floored at one token: the query suffix is never cached, so
// some prefill always remains.
func (p *Plan) EffectivePrompt(promptTok, credit int) int {
	if credit <= 0 {
		return promptTok
	}
	base := promptTok
	if base <= 0 {
		base = p.Pipe.Schema.PrefixTokens
	}
	eff := base - credit
	if eff < 1 {
		eff = 1
	}
	return eff
}

// CachedMetrics re-weights the plan's analytical prediction over an
// empirical shape distribution with per-request prefix-cache credits —
// the cache-aware reference a credited replay is cross-checked against,
// exactly as ShapeMetrics is for uncached heterogeneous traces. shapes
// may be empty for a constant-shape trace (every request at the schema
// shape); credits then supplies the length. Decode is untouched: cached
// KV discounts prefill, not generation.
func (p *Plan) CachedMetrics(shapes []Shape, credits []int) perf.Metrics {
	if len(credits) == 0 {
		return p.ShapeMetrics(shapes)
	}
	eff := make([]Shape, len(credits))
	for i := range credits {
		var s Shape
		if i < len(shapes) {
			s = shapes[i]
		}
		s.PromptTokens = p.EffectivePrompt(s.PromptTokens, credits[i])
		eff[i] = s
	}
	return p.ShapeMetrics(eff)
}

// CachedMetricsAtHitRate is the hit-rate-parameterized prefill discount:
// the plan's prediction when a fraction hitRate of (constant-shape)
// requests arrive with a prefix credit of creditTokens and the rest pay
// full prefill. It is the what-if form — sizing a cache or pricing a
// reuse-skew scenario without a concrete trace.
func (p *Plan) CachedMetricsAtHitRate(hitRate float64, creditTokens int) perf.Metrics {
	if hitRate <= 0 || creditTokens <= 0 {
		return p.Metrics
	}
	if hitRate > 1 {
		hitRate = 1
	}
	// A synthetic two-point distribution at per-mille resolution feeds the
	// same empirical-CDF machinery ShapeMetrics uses.
	const res = 1000
	nHit := int(hitRate*res + 0.5)
	credits := make([]int, res)
	for i := 0; i < nHit; i++ {
		credits[i] = creditTokens
	}
	return p.CachedMetrics(nil, credits)
}
