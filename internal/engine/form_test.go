package engine

import (
	"math"
	"testing"

	"rago/internal/ragschema"
)

// sliceView is a FormView over parallel enqueue-time / prompt-length
// slices, the way tests stage a waiting window.
type sliceView struct {
	enq     []float64
	prompts []int
}

func (v sliceView) Len() int                 { return len(v.enq) }
func (v sliceView) EnqueuedAt(i int) float64 { return v.enq[i] }
func (v sliceView) PromptTokens(i int) int   { return v.prompts[i] }

func TestParseBatchPolicy(t *testing.T) {
	for _, c := range []struct {
		in   string
		want BatchPolicy
	}{{"", PolicyFIFO}, {"fifo", PolicyFIFO}, {"bucketed", PolicyBucketed}, {"sorted", PolicySorted}} {
		got, err := ParseBatchPolicy(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseBatchPolicy(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if c.in != "" && got.String() != c.in {
			t.Errorf("String round-trip: %v -> %q, want %q", got, got.String(), c.in)
		}
	}
	if _, err := ParseBatchPolicy("lifo"); err == nil {
		t.Error("ParseBatchPolicy accepted an unknown policy")
	}
}

// TestFormerConstantShapeDegeneracy: on constant shapes every policy must
// make the identical decision FIFO makes — same n, same formV, and a
// selection that is the FIFO prefix — which is what keeps the
// pre-refactor goldens bit-identical under every policy.
func TestFormerConstantShapeDegeneracy(t *testing.T) {
	v := sliceView{
		enq:     []float64{1.0, 1.1, 1.2, 1.3, 1.4, 1.5},
		prompts: []int{0, 0, 0, 0, 0, 0}, // unshaped = schema constant
	}
	for _, full := range []bool{true, false} {
		now := 1.6
		if !full {
			v2 := v
			v2.enq = v.enq[:3]
			v2.prompts = v.prompts[:3]
			v = v2
			now = 1.0 + 0.21 // head aged past flush
		}
		ref := Former{Policy: PolicyFIFO, Batch: 4, Flush: 0.2, DefaultPrompt: 512}
		wantN, wantV, _ := ref.Form(v, now)
		if full && (wantN != 4 || wantV != 1.3) {
			t.Fatalf("FIFO reference: n=%d formV=%v", wantN, wantV)
		}
		for _, pol := range []BatchPolicy{PolicyBucketed, PolicySorted} {
			f := Former{Policy: pol, Batch: 4, Flush: 0.2, DefaultPrompt: 512}
			n, formV, sel := f.Form(v, now)
			if n != wantN || formV != wantV {
				t.Errorf("%v on constant shapes: n=%d formV=%v, want FIFO's %d/%v", pol, n, formV, wantN, wantV)
			}
			for i, p := range sel {
				if p != i {
					t.Errorf("%v selection %v is not the FIFO prefix", pol, sel)
					break
				}
			}
		}
	}
}

// TestFormerRipeness: no policy dispatches an unripe window (short of a
// batch, head younger than Flush).
func TestFormerRipeness(t *testing.T) {
	v := sliceView{enq: []float64{1.0, 1.05}, prompts: []int{300, 4000}}
	for _, pol := range []BatchPolicy{PolicyFIFO, PolicyBucketed, PolicySorted} {
		f := Former{Policy: pol, Batch: 4, Flush: 0.5, DefaultPrompt: 512}
		if n, _, _ := f.Form(v, 1.2); n != 0 {
			t.Errorf("%v dispatched an unripe window (n=%d)", pol, n)
		}
	}
}

// TestFormerBucketedSelection: with two pow2 buckets in the window, the
// fullest ripe bucket ships — short and long prompts never share a batch
// while both buckets can fill.
func TestFormerBucketedSelection(t *testing.T) {
	v := sliceView{
		enq:     []float64{1.0, 1.1, 1.2, 1.3, 1.4, 1.5},
		prompts: []int{3000, 400, 500, 450, 2500, 480},
	}
	f := Former{Policy: PolicyBucketed, Batch: 3, Flush: 10, DefaultPrompt: 512}
	n, formV, sel := f.Form(v, 1.6)
	if n != 3 {
		t.Fatalf("n = %d, want 3", n)
	}
	// The 512-bucket (positions 1,2,3,5) fills first; selection is its
	// FIFO-ordered head run.
	want := []int{1, 2, 3}
	for i := range want {
		if sel[i] != want[i] {
			t.Fatalf("sel = %v, want %v", sel, want)
		}
	}
	if formV != 1.3 {
		t.Errorf("formV = %v, want last member's enqueue 1.3", formV)
	}

	// Drain the short bucket: only the two long prompts remain, unripe
	// until the long head ages out, then they ship together without the
	// batch filling.
	v2 := sliceView{enq: []float64{1.0, 1.4}, prompts: []int{3000, 2500}}
	if n, _, _ := f.Form(v2, 1.5); n != 0 {
		t.Fatalf("long bucket dispatched before its deadline (n=%d)", n)
	}
	n, formV, sel = f.Form(v2, 12.0)
	if n != 2 || sel[0] != 0 || sel[1] != 1 {
		t.Fatalf("deadline flush: n=%d sel=%v, want both long prompts", n, sel)
	}
	if formV != 1.0+10 {
		t.Errorf("deadline-partial formV = %v, want head deadline %v", formV, 11.0)
	}
}

// TestFormerSortedDeadlineRescue: once the head ages past Flush it MUST be
// in the dispatched batch (starvation-freedom), and the batch is the
// sorted run ending at the head so the head sets the pad ceiling.
func TestFormerSortedDeadlineRescue(t *testing.T) {
	// Head is the longest prompt: an unrescued sorter would keep shipping
	// short runs and starve it.
	v := sliceView{
		enq:     []float64{1.0, 2.0, 2.1, 2.2, 2.3},
		prompts: []int{4000, 300, 350, 320, 310},
	}
	f := Former{Policy: PolicySorted, Batch: 2, Flush: 0.5, DefaultPrompt: 512}
	n, _, sel := f.Form(v, 2.4) // head has waited 1.4 > Flush
	if n != 2 {
		t.Fatalf("n = %d, want 2", n)
	}
	found := false
	for _, p := range sel {
		if p == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("deadline rescue failed: head not in sel %v", sel)
	}

	// Without deadline pressure the sorter picks the tightest run: the
	// full window is a batch multiple, and the two closest lengths ship.
	v2 := sliceView{enq: []float64{1.0, 1.1}, prompts: []int{300, 4000}}
	f2 := Former{Policy: PolicySorted, Batch: 2, Flush: 10, DefaultPrompt: 512}
	n, _, sel = f2.Form(v2, 1.2)
	if n != 2 || len(sel) != 2 {
		t.Fatalf("filled window should ship: n=%d sel=%v", n, sel)
	}
}

// TestChunkPrefill pins the chunk ledger math: member i completes at
// (cumulative chunks)·ChunkLatency, the total is the last member's
// completion, and the padded total is chunks·quantum.
func TestChunkPrefill(t *testing.T) {
	sched := caseISchedule()
	sched.ChunkQuantum = 256
	plan, _, _ := mustCompile(t, ragschema.CaseI(8e9, 1), sched)
	if plan.ChunkLatency <= 0 {
		t.Fatalf("ChunkLatency = %v, want > 0", plan.ChunkLatency)
	}
	cl := plan.ChunkLatency
	// prompts: 100 -> 1 chunk, 256 -> 1, 257 -> 2, 0 (schema 512) -> 2.
	doneAt, total, tok, pad := plan.ChunkPrefill([]int{100, 256, 257, 0}, nil)
	wantChunks := []int{1, 2, 4, 6}
	for i, c := range wantChunks {
		if got, want := doneAt[i], float64(c)*cl; math.Abs(got-want) > 1e-12 {
			t.Errorf("doneAt[%d] = %v, want %d chunks = %v", i, got, c, want)
		}
	}
	if math.Abs(total-6*cl) > 1e-12 {
		t.Errorf("total = %v, want %v", total, 6*cl)
	}
	if tok != 100+256+257+512 {
		t.Errorf("effective tokens = %d", tok)
	}
	if pad != 6*256 {
		t.Errorf("padded tokens = %d, want %d", pad, 6*256)
	}
	// Scratch is reset internally: reuse must not accumulate.
	doneAt, total, _, _ = plan.ChunkPrefill([]int{256}, doneAt)
	if len(doneAt) != 1 || math.Abs(total-cl) > 1e-12 {
		t.Errorf("scratch reuse leaked state: doneAt=%v total=%v", doneAt, total)
	}
}

// TestDecodeStepForPacing: decode steps slow with the member's own
// context (longer prompts pay their own KV length), and the schema
// constant reproduces the precompiled step exactly.
func TestDecodeStepForPacing(t *testing.T) {
	plan, _, _ := mustCompile(t, ragschema.CaseI(8e9, 1), caseISchedule())
	schema := plan.Pipe.Schema
	// Unshaped requests ride the precompiled pace bit for bit.
	if got := plan.DecodeStepFor(0, schema.DecodeTokens); got != plan.DecodeStep {
		t.Errorf("unshaped decode step %v != precompiled %v", got, plan.DecodeStep)
	}
	if got, want := plan.GenTimeForShape(0, 300), plan.GenTimeFor(300); got != want {
		t.Errorf("unshaped GenTimeForShape %v != GenTimeFor %v", got, want)
	}
	short := plan.DecodeStepFor(128, schema.DecodeTokens)
	long := plan.DecodeStepFor(4096, schema.DecodeTokens)
	if !(short < long) {
		t.Errorf("decode step not monotone in prompt: 128->%v 4096->%v", short, long)
	}
	if !(long > plan.DecodeStep) {
		t.Errorf("4k-prompt context should pace slower than the schema mean: %v vs %v", long, plan.DecodeStep)
	}
	// GenTimeForShape composes steps·outTok: double the output of a long
	// prompt costs more than double (the KV keeps growing).
	g1 := plan.GenTimeForShape(4096, 256)
	g2 := plan.GenTimeForShape(4096, 512)
	if !(g2 > 2*g1*0.99) {
		t.Errorf("GenTimeForShape(4096, 512)=%v vs 2x(256)=%v", g2, 2*g1)
	}
}

// TestShapeMetricsWithPolicyOrdering: on a heavy-tailed mix the
// shape-aware policies must price a faster expected prefix than FIFO
// pad-to-max, and chunked prefill must beat unchunked FIFO on expected
// TTFT; PadEfficiency must rank bucketed above FIFO.
func TestShapeMetricsWithPolicyOrdering(t *testing.T) {
	plan, _, _ := mustCompile(t, ragschema.CaseI(8e9, 1), caseISchedule())
	// A heavy-tailed mix bigger than one batch: mostly short prompts plus
	// a long tail, so FIFO's expected batch max is tail-dominated while
	// the shape-aware policies mostly form all-short batches.
	var shapes []Shape
	for i := 0; i < 56; i++ {
		shapes = append(shapes, Shape{PromptTokens: 200 + (i*37)%300, OutputTokens: 256})
	}
	for i := 0; i < 8; i++ {
		shapes = append(shapes, Shape{PromptTokens: 2000 + i*250, OutputTokens: 256})
	}
	fifo := plan.ShapeMetricsWithPolicy(shapes, PolicyFIFO)
	buck := plan.ShapeMetricsWithPolicy(shapes, PolicyBucketed)
	sorted := plan.ShapeMetricsWithPolicy(shapes, PolicySorted)
	if !(buck.QPS >= fifo.QPS && sorted.QPS >= fifo.QPS) {
		t.Errorf("policy-aware QPS should not trail FIFO: fifo %.2f bucketed %.2f sorted %.2f",
			fifo.QPS, buck.QPS, sorted.QPS)
	}
	if !(buck.QPS > fifo.QPS || sorted.QPS > fifo.QPS) {
		t.Errorf("neither policy priced an improvement on a heavy-tailed mix (fifo %.2f)", fifo.QPS)
	}

	sched := caseISchedule()
	sched.ChunkQuantum = 256
	chunked, _, _ := mustCompile(t, ragschema.CaseI(8e9, 1), sched)
	cm := chunked.ShapeMetrics(shapes)
	if !(cm.TTFT < fifo.TTFT) {
		t.Errorf("chunked prefill TTFT %.4f should undercut FIFO pad-to-max %.4f", cm.TTFT, fifo.TTFT)
	}

	if eff := plan.PadEfficiency(shapes); eff <= 0 || eff >= 1 {
		t.Errorf("FIFO pad efficiency %.3f implausible for a heavy mix", eff)
	}
	bp := caseISchedule()
	bp.FormPolicy = PolicyBucketed
	bplan, _, _ := mustCompile(t, ragschema.CaseI(8e9, 1), bp)
	if fe, be := plan.PadEfficiency(shapes), bplan.PadEfficiency(shapes); !(be > fe) {
		t.Errorf("bucketed pad efficiency %.3f should exceed FIFO's %.3f", be, fe)
	}
}
