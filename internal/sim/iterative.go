// Package sim is the discrete-event companion to the analytical optimizer:
// it executes scheduling decisions on concrete synthetic workloads instead
// of composing closed-form stage costs.
//
// Two simulators live here. IterativeSim reproduces the decode-idleness
// dynamics of §5.3 (Figs. 9 and 10): a continuous decode batch whose
// sequences pause at random token positions for batched iterative
// retrievals. ServeSim (serve.go) executes a complete RAGO schedule on a
// request trace with batch formation, stage queueing, and continuous
// batching, validating the analytical QPS and TTFT.
package sim

import (
	"fmt"
	"math/rand"

	"rago/internal/trace"
)

// IterativeConfig parameterizes the decode-idleness simulation.
type IterativeConfig struct {
	// DecodeBatch is the number of continuous-batching slots.
	DecodeBatch int
	// IterBatch is how many paused sequences a retrieval round waits to
	// collect before dispatching (Fig. 10's y-axis).
	IterBatch int
	// DecodeTokens is the generation length (256 in the paper).
	DecodeTokens int
	// RetrievalsPerSeq is the *iterative* retrieval count per sequence
	// (the paper's frequency minus the up-front retrieval).
	RetrievalsPerSeq int
	// StepTime is the decode step latency in seconds.
	StepTime float64
	// RetrievalLatency and PrefixLatency are the service times of an
	// iterative round's two phases as functions of the dispatched batch
	// size; nil means zero cost (Fig. 10 isolates pure batching
	// idleness). Each phase is its own serialized server (throughput at
	// batch b is b/latency(b), consistent with the analytical model) and
	// the two pipeline: undersized iterative batches can make the
	// retrieval tier itself the bottleneck — the Fig. 9b regime where
	// growing the iterative batch *reduces* TPOT at large decode
	// batches.
	RetrievalLatency func(batch int) float64
	PrefixLatency    func(batch int) float64
	// Sequences is how many completed sequences to measure (after an
	// equal warm-up); Seed fixes the trigger randomness.
	Sequences int
	Seed      int64
}

// IterativeResult reports the measured decode dynamics.
type IterativeResult struct {
	// MeanLatency is the average wall-clock time per sequence.
	MeanLatency float64
	// NormalizedLatency divides by the stall-free generation time
	// (DecodeTokens * StepTime) — Fig. 10's heatmap value.
	NormalizedLatency float64
	// TPOT is MeanLatency / DecodeTokens.
	TPOT float64
	// Rounds is the number of retrieval rounds dispatched.
	Rounds int
}

// slot is one continuous-batching sequence slot.
type slot struct {
	tokens   int   // tokens generated so far
	triggers []int // remaining trigger positions (ascending)
	waiting  bool  // paused, enqueued for the next retrieval round
	resumeAt float64
	started  float64
}

// RunIterative executes the token-stepped simulation. Decode advances all
// non-paused sequences by one token every StepTime; a sequence hitting a
// trigger position pauses until a round of IterBatch paused sequences has
// been collected and served. Completed sequences are immediately replaced
// (continuous batching), so the trigger supply never deadlocks; if every
// slot is paused and fewer than IterBatch are pending, the round is
// flushed partially — mirroring the timeout real schedulers apply.
func RunIterative(cfg IterativeConfig) (IterativeResult, error) {
	if cfg.DecodeBatch < 1 || cfg.IterBatch < 1 {
		return IterativeResult{}, fmt.Errorf("sim: batches must be positive")
	}
	if cfg.DecodeTokens < 2 || cfg.StepTime <= 0 {
		return IterativeResult{}, fmt.Errorf("sim: need tokens >= 2 and positive step time")
	}
	if cfg.RetrievalsPerSeq < 0 || cfg.Sequences < 1 {
		return IterativeResult{}, fmt.Errorf("sim: need non-negative retrievals and positive sample")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	zero := func(int) float64 { return 0 }
	retrLat := cfg.RetrievalLatency
	if retrLat == nil {
		retrLat = zero
	}
	prefLat := cfg.PrefixLatency
	if prefLat == nil {
		prefLat = zero
	}

	slots := make([]*slot, cfg.DecodeBatch)
	fresh := func(now float64) *slot {
		return &slot{
			triggers: trace.Triggers(cfg.RetrievalsPerSeq, cfg.DecodeTokens, rng),
			started:  now,
		}
	}
	for i := range slots {
		slots[i] = fresh(0)
	}

	warm := cfg.Sequences
	var done, measured, rounds int
	var sumLatency float64
	now := 0.0
	var pending []*slot

	var retrBusy, prefBusy float64
	dispatch := func(k int) {
		start := now
		if retrBusy > start {
			start = retrBusy
		}
		retrBusy = start + retrLat(k)
		start = retrBusy
		if prefBusy > start {
			start = prefBusy
		}
		prefBusy = start + prefLat(k)
		fin := prefBusy
		for _, s := range pending[:k] {
			s.waiting = false
			s.resumeAt = fin
			s.triggers = s.triggers[1:]
		}
		pending = pending[k:]
		rounds++
	}

	for measured < cfg.Sequences {
		// Dispatch full rounds; flush partially when everything is
		// paused (deadlock breaker for IterBatch > DecodeBatch).
		for len(pending) >= cfg.IterBatch {
			dispatch(cfg.IterBatch)
		}
		allPaused := true
		for _, s := range slots {
			if !s.waiting && now >= s.resumeAt {
				allPaused = false
				break
			}
		}
		if allPaused && len(pending) > 0 {
			dispatch(len(pending))
		}

		// One decode step for every active sequence.
		now += cfg.StepTime
		for i, s := range slots {
			if s.waiting || now < s.resumeAt {
				continue
			}
			s.tokens++
			if len(s.triggers) > 0 && s.tokens == s.triggers[0] {
				s.waiting = true
				pending = append(pending, s)
				continue
			}
			if s.tokens >= cfg.DecodeTokens {
				done++
				if done > warm && measured < cfg.Sequences {
					sumLatency += now - s.started
					measured++
				}
				slots[i] = fresh(now)
			}
		}
	}

	mean := sumLatency / float64(measured)
	ideal := float64(cfg.DecodeTokens) * cfg.StepTime
	return IterativeResult{
		MeanLatency:       mean,
		NormalizedLatency: mean / ideal,
		TPOT:              mean / float64(cfg.DecodeTokens),
		Rounds:            rounds,
	}, nil
}
