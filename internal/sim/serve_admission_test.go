package sim

import (
	"testing"

	"rago/internal/trace"
)

// TestServeSimMaxInFlightBurst pins the shed-on-full semantics against
// the one case where they are exactly determined: a simultaneous burst
// against a bound admits precisely MaxInFlight requests and rejects the
// rest — the same accounting the live runtime's admission control
// produces (serve_test.go's TestRuntimeAdmissionControl counterpart).
func TestServeSimMaxInFlightBurst(t *testing.T) {
	pipe, prof, sched := serveSetup(t)
	s, err := NewServe(pipe, prof, sched)
	if err != nil {
		t.Fatal(err)
	}
	const n, bound = 500, 32
	s.MaxInFlight = bound
	res, err := s.Run(trace.Burst(n), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != bound || res.Rejected != n-bound {
		t.Errorf("burst of %d at bound %d: completed %d rejected %d, want exactly %d/%d",
			n, bound, res.Completed, res.Rejected, bound, n-bound)
	}
}

// TestServeSimMaxInFlightAccounting drives an overdriven Poisson trace
// through a small bound: every arrival is either completed or rejected,
// shedding actually happens, and an unbounded run of the same trace
// completes everything.
func TestServeSimMaxInFlightAccounting(t *testing.T) {
	pipe, prof, sched := serveSetup(t)
	const n = 2000
	reqs, err := trace.Poisson(n, 500, 11)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServe(pipe, prof, sched)
	if err != nil {
		t.Fatal(err)
	}
	s.MaxInFlight = 64
	res, err := s.Run(reqs, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed+res.Rejected != n {
		t.Errorf("completed %d + rejected %d != %d", res.Completed, res.Rejected, n)
	}
	if res.Rejected == 0 {
		t.Errorf("overdriven trace against MaxInFlight=64 should shed load")
	}
	open, err := NewServe(pipe, prof, sched)
	if err != nil {
		t.Fatal(err)
	}
	full, err := open.Run(reqs, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if full.Completed != n || full.Rejected != 0 {
		t.Errorf("unbounded run completed %d rejected %d, want %d/0", full.Completed, full.Rejected, n)
	}
}
