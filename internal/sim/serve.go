package sim

import (
	"fmt"
	"math"

	"rago/internal/cache"
	"rago/internal/engine"
	"rago/internal/obs"
	"rago/internal/pipeline"
	"rago/internal/stageperf"
	"rago/internal/trace"
)

// ServeSim executes a compiled execution plan on a request trace as a
// discrete-event system: the plan's resources are time-multiplexed servers
// forming batches per stage, and the decode tier is a pool of
// continuous-batching slots. Requests traverse the pipeline's stage graph —
// fan-out stages run concurrently on their resources and joins wait for
// every predecessor — so linear chains and multi-source fan-outs run
// through the same loop. Iterative plans (§5.3) additionally run the
// decode loop: sequences park at their trigger positions and an iterative
// retrieval+prefix round batches through the same tier and prefix-group
// servers the initial pass uses, mirroring the live serving runtime. It
// exists to validate the analytical assembly: at saturation its throughput
// must match the compiled Plan.Metrics QPS, and unloaded its TTFT must
// match the analytical latency chain.
type ServeSim struct {
	plan *engine.Plan

	// MaxInFlight is the admission bound: arrivals finding this many
	// requests already in the system are rejected, with the same
	// shed-on-full semantics (and Rejected accounting) as
	// serve.Options.MaxInFlight. 0 admits the whole trace.
	MaxInFlight int

	// Bus, when non-nil, receives the same typed event stream the live
	// runtime publishes — admit/reject, stage enqueue/start/finish, decode
	// slot lease/park/resume/finish — with simulated virtual timestamps.
	// Attach an obs.Tracer to get a Chrome trace of the simulated run, or
	// to structurally compare it against a live replay (span parity).
	Bus *obs.Bus

	// Cache mirrors serve.Options.Cache: the identical reuse-cache state
	// machine consulted at the identical points (prefix tier at batch
	// dispatch, answer tier at admission), so simulated hit rates
	// cross-check the live runtime's. Give the simulator its own
	// instance, never the one a live run is mutating.
	Cache *cache.Cache
}

// ServeResult is the measured behaviour of one run.
type ServeResult struct {
	Completed int
	// Rejected counts arrivals shed by the MaxInFlight admission bound.
	Rejected int
	// QPS is completions divided by the completion span.
	QPS float64
	// SteadyQPS is the peak windowed completion rate (obs.SteadyRate over
	// the completion times): the best quarter-span window, insensitive to
	// warmup ramp and drain tail. 0 when too few completions to window.
	SteadyQPS float64
	// MeanTTFT is the average time from arrival to prefix completion.
	MeanTTFT float64
	// MeanLatency is the average time from arrival to full generation.
	MeanLatency float64
	// MeanStall is the average per-request time sequences spent parked
	// in the §5.3 decode loop (0 for single-retrieval plans).
	MeanStall float64
	// PadWaste is the fraction of prefix-batch tokens spent padding
	// heterogeneous prompts to the batch maximum (0 on constant-shape
	// traces, where no padding accounting applies).
	PadWaste float64
	// FirstDone and LastDone bound the completion span in absolute trace
	// time, so results of trace segments simulated on different plans can
	// be combined into one aggregate rate (the controller's sim replay).
	FirstDone, LastDone float64
	// Cache carries the reuse cache's final counters (nil when the run
	// had no cache attached).
	Cache *cache.Stats
}

// NewServe compiles (pipeline, schedule) through the shared engine and
// builds a simulator for the resulting plan.
func NewServe(pipe pipeline.Pipeline, prof *stageperf.Profiler, sched engine.Schedule) (*ServeSim, error) {
	plan, err := engine.Compile(pipe, sched, prof)
	if err != nil {
		return nil, err
	}
	return NewServeFromPlan(plan)
}

// NewServeFromPlan wraps an already-compiled execution plan — the object
// the optimizer's library and the live runtime share — so switching
// decisions can be replayed without recompiling schedules.
func NewServeFromPlan(plan *engine.Plan) (*ServeSim, error) {
	if plan == nil {
		return nil, fmt.Errorf("sim: nil plan")
	}
	if plan.Pipe.Schema.Iterative() && plan.Round == nil {
		return nil, fmt.Errorf("sim: schema %q is iterative but its plan carries no decode-loop round structure; compile it through engine.Compile",
			plan.Pipe.Schema.Name)
	}
	return &ServeSim{plan: plan}, nil
}

// event kinds.
const (
	evArrival = iota
	evStageDone
	evResourceFree
	evFlush
	evDecodePark
	evDecodeDone
)

type event struct {
	at   float64
	kind int
	a, b int // payload: request index / stage or resource index
	seq  int // tie-break for determinism
}

// before reports whether e orders ahead of o. (at, seq) is a total order —
// seq is unique per event — so the pop sequence of any correct heap is the
// same fully sorted sequence; swapping container/heap for the typed heap
// below cannot change simulation results (the chrome-trace goldens pin it).
func (e event) before(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// eventHeap is a hand-rolled binary min-heap over events. container/heap
// funnels every Push and Pop through interface{}, which boxes one event per
// call — on a saturation trace that is two heap allocations per simulated
// event, and it dominated the simulator's allocation profile.
type eventHeap []event

func (h *eventHeap) push(e event) {
	hs := append(*h, e)
	i := len(hs) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !hs[i].before(hs[parent]) {
			break
		}
		hs[i], hs[parent] = hs[parent], hs[i]
		i = parent
	}
	*h = hs
}

func (h *eventHeap) pop() event {
	hs := *h
	top := hs[0]
	n := len(hs) - 1
	hs[0] = hs[n]
	hs = hs[:n]
	*h = hs
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && hs[r].before(hs[c]) {
			c = r
		}
		if !hs[c].before(hs[i]) {
			break
		}
		hs[i], hs[c] = hs[c], hs[i]
		i = c
	}
	return top
}

// stageQueue is a per-stage FIFO with a consumed-head offset, so batch
// dispatch advances an index instead of re-copying the tail of the queue
// (the old `append([]int(nil), q[n:]...)` was one allocation per dispatched
// batch). The storage resets to the front whenever the queue drains, which
// at steady state it does every flush, keeping capacity bounded.
type stageQueue struct {
	buf  []int
	head int
}

func (q *stageQueue) len() int  { return len(q.buf) - q.head }
func (q *stageQueue) peek() int { return q.buf[q.head] }
func (q *stageQueue) push(r int) {
	q.buf = append(q.buf, r)
}

// popN consumes the queue's first n entries. The returned slice aliases the
// queue's storage and is valid only until the next push.
func (q *stageQueue) popN(n int) []int {
	b := q.buf[q.head : q.head+n]
	q.head += n
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return b
}

// popSel consumes the entries at the given head-relative positions
// (ascending — the order formation policies return selections in),
// appending them to out and compacting the survivors in place.
func (q *stageQueue) popSel(sel []int, out []int) []int {
	for _, p := range sel {
		out = append(out, q.buf[q.head+p])
	}
	ln := q.len()
	w := q.head + sel[0]
	k := 0
	for p := sel[0]; p < ln; p++ {
		if k < len(sel) && p == sel[k] {
			k++
			continue
		}
		q.buf[w] = q.buf[q.head+p]
		w++
	}
	q.buf = q.buf[:w]
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return out
}

// simWindow adapts a stage queue onto the executor-neutral view the
// shared formation policy (engine.Former) decides over — the same code
// path the live runtime's batcher consults, so both executors form
// identical batches from identical windows.
type simWindow struct {
	q      *stageQueue
	states []reqState
	idx    int
}

func (w simWindow) Len() int                 { return w.q.len() }
func (w simWindow) EnqueuedAt(i int) float64 { return w.states[w.q.buf[w.q.head+i]].enqAt[w.idx] }
func (w simWindow) PromptTokens(i int) int   { return w.states[w.q.buf[w.q.head+i]].promptTok }

type reqState struct {
	arrival float64
	ttft    float64
	done    float64
	// pending counts unfinished predecessors per stage; a stage becomes
	// ready when its count reaches zero. enqAt records when the request
	// entered each stage's queue (for batch-formation aging; virtual
	// iterative slots included).
	pending []int
	enqAt   []float64
	// promptTok and outTok are the request's sequence shape (0 = schema
	// constant): prefix batches are costed at their members' padded
	// maximum and decode slots are held for the request's own output
	// length, mirroring the live runtime.
	promptTok, outTok int
	// Iterative decode-loop state: the remaining trigger positions, the
	// tokens decoded so far, when the sequence parked, and the
	// accumulated parked time. rounds counts completed parks (event
	// numbering); decStart is when the sequence acquired its decode slot.
	triggers []int
	tok      int
	parkedAt float64
	stall    float64
	rounds   int
	decStart float64
}

// genTokens is the request's generation length (schema constant when
// unshaped).
func (st *reqState) genTokens(schemaOut int) int {
	if st.outTok > 0 {
		return st.outTok
	}
	return schemaOut
}

// Run executes the trace. flushTimeout is how long a partially filled
// batch may wait before being dispatched anyway (0 dispatches immediately,
// which is what unloaded-latency measurements want).
func (s *ServeSim) Run(reqs []trace.Request, flushTimeout float64) (ServeResult, error) {
	if len(reqs) == 0 {
		return ServeResult{}, fmt.Errorf("sim: empty trace")
	}
	plan := s.plan
	nSlots := plan.NumSlots()
	busy := make([]bool, len(plan.Resources))
	queues := make([]stageQueue, nSlots) // per-stage request queues
	states := make([]reqState, len(reqs))

	// Per-resource stage lists with the iterative round's virtual slots
	// appended to their owning resources — the same layout the live
	// dataplane builds, so round batches contend with the regular stages.
	stagesOf := make([][]int, len(plan.Resources))
	for ri := range plan.Resources {
		stagesOf[ri] = plan.ResourceStages(ri)
	}

	h := make(eventHeap, 0, 4*len(reqs))
	seq := 0
	push := func(at float64, kind, a, b int) {
		h.push(event{at: at, kind: kind, a: a, b: b, seq: seq})
		seq++
	}
	decIdx := plan.DecodeIdx
	outTokens := plan.Steps[decIdx].Stage.OutTokens
	bus := s.Bus
	var slotName, slotTrack []string
	if bus != nil {
		slotName = plan.SlotNames()
		slotTrack = plan.TrackNames()
	}
	// Per-request pending/enqAt vectors carved out of two flat backing
	// arrays: two allocations for the whole trace instead of two per
	// request.
	nSteps := len(plan.Steps)
	predCount := make([]int, nSteps)
	for st, ps := range plan.Preds {
		predCount[st] = len(ps)
	}
	pendingBuf := make([]int, len(reqs)*nSteps)
	enqAtBuf := make([]float64, len(reqs)*nSlots)
	for i, r := range reqs {
		pending := pendingBuf[i*nSteps : (i+1)*nSteps : (i+1)*nSteps]
		copy(pending, predCount)
		states[i] = reqState{
			arrival: r.Arrival, pending: pending,
			enqAt:     enqAtBuf[i*nSlots : (i+1)*nSlots : (i+1)*nSlots],
			promptTok: r.PromptTokens, outTok: r.OutputTokens,
		}
		if plan.Round != nil {
			states[i].triggers = r.Triggers
			if states[i].triggers == nil {
				states[i].triggers = trace.TriggersFor(r.ID, plan.Round.RoundsPerSeq, states[i].genTokens(outTokens))
			}
		}
		push(r.Arrival, evArrival, i, 0)
	}

	prefixIdx := plan.PrefixIdx
	// Shared batch formation: a non-FIFO schedule consults the identical
	// engine.Former state machine the live batcher runs — same candidate
	// window, same ripeness rule, same tie-breaks — so both executors form
	// the same batches. Chunked prefill slices each prefix batch into
	// quantum-sized chunks with per-member completion times.
	usePolicy := plan.Sched.FormPolicy != engine.PolicyFIFO
	chunkQ := plan.Sched.ChunkQuantum
	former := plan.Former()
	former.Flush = flushTimeout
	var batchBuf []int
	var doneAt []float64
	decFree := plan.Sched.DecodeBatch
	var decQueue stageQueue
	// Scratch for per-batch prompt-shape aggregation, reused across every
	// dispatched prefix batch.
	var prompts []int
	// Padding accounting: effective vs padded prefix-batch tokens.
	// Constant-shape traces skip per-batch shape aggregation entirely.
	var padTok, padTotal int64
	anyShaped := false
	for _, r := range reqs {
		if r.Shaped() {
			anyShaped = true
			break
		}
	}
	// Reuse-cache gating, mirroring the live dataplane's cacheOn/taggedAny
	// latches: an untagged trace (or nil cache) never touches the cache.
	cacheOn, answerOn := s.Cache.PrefixOn(), s.Cache.AnswerOn()
	anyTagged := false
	for _, r := range reqs {
		if r.Tagged() {
			anyTagged = true
			break
		}
	}
	cacheOn = cacheOn && anyTagged
	answerOn = answerOn && anyTagged
	schemaPrompt := plan.Pipe.Schema.PrefixTokens

	// nextTrigger returns request r's next trigger position, clamped
	// into [tok, the request's own generation length] — decode only moves
	// forward, so an out-of-range or out-of-order recorded trigger parks
	// at the nearest legal token instead of rewinding time (matching the
	// live runtime's clamp).
	nextTrigger := func(r int) int {
		st := &states[r]
		trig := st.triggers[0]
		if out := st.genTokens(outTokens); trig > out {
			trig = out
		}
		if trig < st.tok {
			trig = st.tok
		}
		return trig
	}

	// startSeq admits request r into a decode slot at time now: a single
	// event for the request's own generation length on single-retrieval
	// plans (GenTimeFor takes the precompiled constant-shape path when
	// the request is unshaped), the first decode segment of the §5.3 loop
	// on iterative ones.
	startSeq := func(r int, now float64) {
		states[r].decStart = now
		if bus.Active() {
			bus.Publish(obs.Event{Kind: obs.KindDecodeLease, T: now, Req: reqs[r].ID,
				Slot: decIdx, Stage: slotName[decIdx], Track: "decode"})
		}
		if plan.Round == nil || len(states[r].triggers) == 0 {
			// Shape-dependent pacing: a long prompt grows the live KV
			// context and slows its own decode steps (GenTimeForShape);
			// unshaped requests hold the precompiled constant bit for bit.
			push(now+plan.GenTimeForShape(states[r].promptTok, states[r].outTok), evDecodeDone, r, 0)
			return
		}
		states[r].tok = 0
		push(now+float64(nextTrigger(r))*plan.Round.DecodeStep, evDecodePark, r, 0)
	}

	// nextSegment resumes request r's decode at time now, after a round.
	nextSegment := func(r int, now float64) {
		st := &states[r]
		if len(st.triggers) > 0 {
			push(now+float64(nextTrigger(r)-st.tok)*plan.Round.DecodeStep, evDecodePark, r, 0)
			return
		}
		push(now+float64(st.genTokens(outTokens)-st.tok)*plan.Round.DecodeStep, evDecodeDone, r, 0)
	}

	// enqueue places request r at stage idx's queue (or a decode slot).
	enqueue := func(r, idx int, now float64) {
		if bus.Active() {
			bus.Publish(obs.Event{Kind: obs.KindEnqueue, T: now, Req: reqs[r].ID,
				Slot: idx, Stage: slotName[idx], Track: slotTrack[idx]})
		}
		if idx == decIdx {
			// Continuous batching: each of the DecodeBatch slots holds
			// one sequence for its full generation — iterative parks
			// included — and is only refilled on completion (the
			// profiled latency already assumes all slots decode
			// concurrently).
			if decFree > 0 {
				decFree--
				startSeq(r, now)
			} else {
				decQueue.push(r)
			}
			return
		}
		queues[idx].push(r)
		states[r].enqAt[idx] = now
		if flushTimeout > 0 {
			// Nudge the flush event past the deadline: it must see
			// headAge >= flushTimeout despite float rounding, or a tail
			// partial batch with no later arrivals stalls forever. The
			// relative term keeps the nudge above one ulp at large
			// absolute trace times, where 1e-9 alone would be absorbed.
			ft := now + flushTimeout
			push(ft+1e-9+ft*1e-12, evFlush, idx, 0)
		} else {
			push(now, evFlush, idx, 0)
		}
	}

	// trySchedule dispatches work on resource res if it is idle.
	trySchedule := func(res int, now float64) {
		if busy[res] {
			return
		}
		// Round-robin over stages of this resource: pick the stage
		// with the oldest waiting head among dispatchable queues.
		best := -1
		bestAge := math.Inf(-1)
		selN := 0
		var sel []int
		for _, idx := range stagesOf[res] {
			if queues[idx].len() == 0 {
				continue
			}
			head := queues[idx].peek()
			headAge := now - states[head].enqAt[idx]
			if usePolicy && idx == prefixIdx {
				// Policy formation over the whole waiting window — the
				// same Former.Form call the live batcher makes.
				pn, _, ps := former.Form(simWindow{&queues[idx], states, idx}, now)
				if pn == 0 {
					continue
				}
				if headAge > bestAge {
					bestAge, best = headAge, idx
				}
				selN, sel = pn, ps
				continue
			}
			if queues[idx].len() < plan.StepAt(idx).Batch && headAge < flushTimeout {
				continue
			}
			if headAge > bestAge {
				bestAge, best = headAge, idx
			}
		}
		if best < 0 {
			return
		}
		var n int
		var batch []int
		if usePolicy && best == prefixIdx {
			n = selN
			batchBuf = queues[best].popSel(sel, batchBuf[:0])
			batch = batchBuf
		} else {
			n = plan.StepAt(best).Batch
			if n > queues[best].len() {
				n = queues[best].len()
			}
			batch = queues[best].popN(n)
		}
		busy[res] = true
		// Service time: the profiled latency at the formed batch size —
		// prefix batches additionally costed at their members' padded
		// maximum prompt length (or their chunked-prefill schedule), with
		// the padding overhead accounted.
		lat := plan.StepLatency(best, n)
		chunked := chunkQ > 0 && best == prefixIdx
		if best == prefixIdx && (chunked || anyShaped || cacheOn) {
			prompts = prompts[:0]
			for _, r := range batch {
				pt := states[r].promptTok
				if cacheOn && reqs[r].Tagged() {
					// Prefix-cache lookup at batch dispatch — the same
					// serialized Access sequence the live runtime's single
					// prefix worker performs, so hit rates converge.
					base := pt
					if base <= 0 {
						base = schemaPrompt
					}
					credit := s.Cache.Access(reqs[r].ChunkIDs, base)
					pt = plan.EffectivePrompt(pt, credit)
					if bus.Active() {
						kind := obs.KindCacheMiss
						if credit > 0 {
							kind = obs.KindCacheHit
						}
						bus.Publish(obs.Event{Kind: kind, T: now, Req: reqs[r].ID,
							Slot: best, Stage: slotName[best], Track: plan.Resources[res].Name, N: credit})
					}
				}
				prompts = append(prompts, pt)
			}
			if chunked {
				// Chunked prefill: members pad to the quantum, not the
				// batch maximum, and each member's first token unblocks at
				// its own chunk boundary while the resource stays busy
				// until the last chunk.
				var total float64
				var ctok, cpad int
				doneAt, total, ctok, cpad = plan.ChunkPrefill(prompts, doneAt)
				lat = total
				padTok += int64(ctok)
				padTotal += int64(cpad)
			} else if sh, tok := plan.PrefixBatchShape(prompts); sh != (engine.Shape{}) {
				lat = plan.StepLatencyShaped(best, n, sh)
				padTok += int64(tok)
				padTotal += int64(n * sh.PromptTokens)
			}
		}
		if bus.Active() {
			// Mirror the live runtime's scatter-gather bracket on sharded
			// retrieval batches: one scatter at dispatch, one gather at the
			// modeled finish, N = the shards consulted. The simulator's
			// replicas are always healthy, so it never emits a fallback —
			// matching a live run with no replicas down.
			if plan.Shards() > 1 && plan.StepAt(best).Stage.Kind == pipeline.KindRetrieval {
				bus.Publish(obs.Event{Kind: obs.KindShardScatter, T: now, Req: reqs[batch[0]].ID,
					Slot: best, Stage: slotName[best], Track: plan.Resources[res].Name, N: plan.EffectiveFanout()})
				bus.Publish(obs.Event{Kind: obs.KindShardGather, T: now + lat, Req: reqs[batch[0]].ID,
					Slot: best, Stage: slotName[best], Track: plan.Resources[res].Name, N: plan.EffectiveFanout(), Dur: lat})
			}
			for i, r := range batch {
				fin, dur := now+lat, lat
				if chunked {
					fin, dur = now+doneAt[i], doneAt[i]
				}
				bus.Publish(obs.Event{Kind: obs.KindStageStart, T: now, Req: reqs[r].ID,
					Slot: best, Stage: slotName[best], Track: plan.Resources[res].Name, N: n})
				bus.Publish(obs.Event{Kind: obs.KindStageFinish, T: fin, Req: reqs[r].ID,
					Slot: best, Stage: slotName[best], Track: plan.Resources[res].Name, N: n, Dur: dur})
			}
		}
		for i, r := range batch {
			if chunked {
				push(now+doneAt[i], evStageDone, r, best)
			} else {
				push(now+lat, evStageDone, r, best)
			}
		}
		push(now+lat, evResourceFree, res, 0)
	}

	// ready moves request r into stage idx once its predecessors finish.
	ready := func(r, idx int, now float64) {
		enqueue(r, idx, now)
		if res := plan.StepAt(idx).Resource; res >= 0 {
			trySchedule(res, now)
		}
	}

	var firstDone, lastDone float64
	var sumTTFT, sumLat, sumStall float64
	doneV := make([]float64, 0, len(reqs))
	completed, rejected, inflight := 0, 0, 0

	for len(h) > 0 {
		e := h.pop()
		now := e.at
		switch e.kind {
		case evArrival:
			// Shed-on-full admission control, matching the live
			// runtime's Rejected accounting.
			if s.MaxInFlight > 0 && inflight >= s.MaxInFlight {
				rejected++
				if bus.Active() {
					bus.Publish(obs.Event{Kind: obs.KindReject, T: now, Req: reqs[e.a].ID})
				}
				continue
			}
			inflight++
			if bus.Active() {
				bus.Publish(obs.Event{Kind: obs.KindAdmit, T: now, Req: reqs[e.a].ID})
			}
			// Exact-match answer-cache hit: the request completes at its
			// arrival instant without touching any server (TTFT, latency,
			// and stall all zero), mirroring the live dataplane's admit.
			if answerOn && reqs[e.a].Tagged() &&
				s.Cache.AnswerLookup(reqs[e.a].ChunkIDs, states[e.a].promptTok, states[e.a].outTok) {
				if bus.Active() {
					bus.Publish(obs.Event{Kind: obs.KindCacheAnswerHit, T: now, Req: reqs[e.a].ID})
				}
				states[e.a].done = now
				completed++
				inflight--
				doneV = append(doneV, now)
				if completed == 1 {
					firstDone = now
				}
				lastDone = now
				continue
			}
			for _, idx := range plan.Entries {
				ready(e.a, idx, now)
			}
		case evFlush:
			if res := plan.StepAt(e.a).Resource; res >= 0 {
				trySchedule(res, now)
			}
		case evResourceFree:
			busy[e.a] = false
			trySchedule(e.a, now)
		case evDecodePark:
			// The sequence reached a trigger position: park it (slot
			// held) and queue the iterative retrieval half of the round.
			st := &states[e.a]
			st.tok = nextTrigger(e.a)
			st.triggers = st.triggers[1:]
			st.parkedAt = now
			st.rounds++
			if bus.Active() {
				bus.Publish(obs.Event{Kind: obs.KindDecodePark, T: now, Req: reqs[e.a].ID,
					Slot: decIdx, Stage: "decode", Track: "decode", N: st.rounds})
			}
			ready(e.a, plan.IterRetrievalSlot(), now)
		case evStageDone:
			r, idx := e.a, e.b
			if plan.Round != nil {
				switch idx {
				case plan.IterRetrievalSlot():
					ready(r, plan.IterPrefixSlot(), now)
					continue
				case plan.IterPrefixSlot():
					states[r].stall += now - states[r].parkedAt
					if bus.Active() {
						bus.Publish(obs.Event{Kind: obs.KindDecodeResume, T: now, Req: reqs[r].ID,
							Slot: decIdx, Stage: "decode", Track: "decode",
							N: states[r].rounds, Dur: now - states[r].parkedAt})
					}
					nextSegment(r, now)
					continue
				}
			}
			if idx == prefixIdx {
				states[r].ttft = now - states[r].arrival
			}
			for _, succ := range plan.Succs[idx] {
				states[r].pending[succ]--
				if states[r].pending[succ] == 0 {
					ready(r, succ, now)
				}
			}
		case evDecodeDone:
			r := e.a
			states[r].done = now
			completed++
			inflight--
			if bus.Active() {
				bus.Publish(obs.Event{Kind: obs.KindDecodeFinish, T: now, Req: reqs[r].ID,
					Slot: decIdx, Stage: "decode", Track: "decode",
					Dur: now - states[r].decStart})
			}
			doneV = append(doneV, now)
			if completed == 1 {
				firstDone = now
			}
			lastDone = now
			sumTTFT += states[r].ttft
			sumLat += now - states[r].arrival
			sumStall += states[r].stall
			if answerOn && reqs[r].Tagged() {
				s.Cache.AnswerStore(reqs[r].ChunkIDs, states[r].promptTok, states[r].outTok)
			}
			decFree++
			if decQueue.len() > 0 {
				nxt := decQueue.popN(1)[0]
				decFree--
				startSeq(nxt, now)
			}
		}
	}
	if completed == 0 {
		return ServeResult{}, fmt.Errorf("sim: no request completed")
	}
	span := lastDone - firstDone
	qps := math.Inf(1)
	if span > 0 {
		qps = float64(completed-1) / span
	}
	res := ServeResult{
		Completed:   completed,
		Rejected:    rejected,
		QPS:         qps,
		SteadyQPS:   obs.SteadyRate(doneV),
		MeanTTFT:    sumTTFT / float64(completed),
		MeanLatency: sumLat / float64(completed),
		MeanStall:   sumStall / float64(completed),
		FirstDone:   firstDone,
		LastDone:    lastDone,
	}
	if padTotal > 0 {
		res.PadWaste = 1 - float64(padTok)/float64(padTotal)
	}
	if s.Cache != nil {
		st := s.Cache.Stats()
		res.Cache = &st
	}
	return res, nil
}
