package sim

import (
	"container/heap"
	"fmt"
	"math"

	"rago/internal/core"
	"rago/internal/pipeline"
	"rago/internal/stageperf"
	"rago/internal/trace"
)

// ServeSim executes a complete RAGO schedule on a request trace as a
// discrete-event system: placement groups are time-multiplexed servers
// forming batches per stage, the retrieval tier is its own server, and the
// decode tier is a pool of continuous-batching slots. It exists to
// validate the analytical assembly: at saturation its throughput must
// match Assembler.Evaluate's QPS, and unloaded its TTFT must match the
// analytical latency chain.
type ServeSim struct {
	pipe  pipeline.Pipeline
	prof  *stageperf.Profiler
	sched core.Schedule

	// steps maps pipeline stage index -> execution step metadata.
	steps []step
}

// step describes how one pipeline stage executes under the schedule.
type step struct {
	stage    pipeline.Stage
	resource int // index into resources; -1 for the decode tier
	batch    int
	latency  float64 // service time for a full batch
}

// ServeResult is the measured behaviour of one run.
type ServeResult struct {
	Completed int
	// QPS is completions divided by the completion span.
	QPS float64
	// MeanTTFT is the average time from arrival to prefix completion.
	MeanTTFT float64
	// MeanLatency is the average time from arrival to full generation.
	MeanLatency float64
}

// NewServe builds a simulator for a validated (pipeline, schedule) pair.
// Iterative-retrieval workloads are served by IterativeSim instead; this
// executor covers single-retrieval pipelines.
func NewServe(pipe pipeline.Pipeline, prof *stageperf.Profiler, sched core.Schedule) (*ServeSim, error) {
	if pipe.Schema.Iterative() {
		return nil, fmt.Errorf("sim: ServeSim covers single-retrieval pipelines; use RunIterative for §5.3 workloads")
	}
	if err := sched.Validate(pipe); err != nil {
		return nil, err
	}
	s := &ServeSim{pipe: pipe, prof: prof, sched: sched, steps: make([]step, len(pipe.Stages))}
	res := 0
	for gi, g := range sched.Groups {
		for i, idx := range g.Stages {
			pt := prof.EvalR(pipe.Stages[idx], g.Chips, g.Batch, g.ReplicasFor(i))
			if !pt.OK {
				return nil, fmt.Errorf("sim: stage %v infeasible under schedule", pipe.Stages[idx].Kind)
			}
			s.steps[idx] = step{stage: pipe.Stages[idx], resource: gi, batch: g.Batch, latency: pt.Latency}
		}
		res = gi + 1
	}
	if retrIdx := pipe.Index(pipeline.KindRetrieval); retrIdx >= 0 {
		pt := prof.Eval(pipe.Stages[retrIdx], sched.RetrievalServers, sched.RetrievalBatch)
		if !pt.OK {
			return nil, fmt.Errorf("sim: retrieval infeasible under schedule")
		}
		s.steps[retrIdx] = step{
			stage:    pipe.Stages[retrIdx],
			resource: res,
			batch:    sched.RetrievalBatch,
			latency:  pt.Latency + prof.RetrievalTransferLatency(),
		}
	}
	decIdx := pipe.Index(pipeline.KindDecode)
	dec := prof.EvalR(pipe.Stages[decIdx], sched.DecodeChips, sched.DecodeBatch, sched.DecodeReplicasOrOne())
	if !dec.OK {
		return nil, fmt.Errorf("sim: decode infeasible under schedule")
	}
	s.steps[decIdx] = step{stage: pipe.Stages[decIdx], resource: -1, batch: sched.DecodeBatch, latency: dec.Latency}
	return s, nil
}

// event kinds.
const (
	evArrival = iota
	evResourceDone
	evFlush
	evDecodeDone
)

type event struct {
	at   float64
	kind int
	a, b int // payload: request index / resource index
	seq  int // tie-break for determinism
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

type reqState struct {
	arrival  float64
	stagePos int // index into pipe.Stages of the NEXT stage to run
	ttft     float64
	done     float64
	enqueued float64
}

// Run executes the trace. flushTimeout is how long a partially filled
// batch may wait before being dispatched anyway (0 dispatches immediately,
// which is what unloaded-latency measurements want).
func (s *ServeSim) Run(reqs []trace.Request, flushTimeout float64) (ServeResult, error) {
	if len(reqs) == 0 {
		return ServeResult{}, fmt.Errorf("sim: empty trace")
	}
	nRes := 0
	for _, st := range s.steps {
		if st.resource >= nRes {
			nRes = st.resource + 1
		}
	}
	type resState struct {
		busy bool
	}
	resources := make([]resState, nRes)
	queues := make([][]int, len(s.pipe.Stages)) // per-stage request queues
	states := make([]reqState, len(reqs))

	var h eventHeap
	seq := 0
	push := func(at float64, kind, a, b int) {
		heap.Push(&h, event{at: at, kind: kind, a: a, b: b, seq: seq})
		seq++
	}
	for i, r := range reqs {
		states[i] = reqState{arrival: r.Arrival, stagePos: 0}
		push(r.Arrival, evArrival, i, 0)
	}

	decIdx := s.pipe.Index(pipeline.KindDecode)
	decFree := s.sched.DecodeBatch
	var decQueue []int

	// enqueue places request r at its current stage's queue.
	enqueue := func(r int, now float64) {
		pos := states[r].stagePos
		if pos == decIdx {
			// Continuous batching: each of the DecodeBatch slots holds
			// one sequence for the full-batch generation wall time
			// (the profiled latency already assumes all slots decode
			// concurrently).
			if decFree > 0 {
				decFree--
				push(now+s.steps[decIdx].latency, evDecodeDone, r, 0)
			} else {
				decQueue = append(decQueue, r)
			}
			return
		}
		queues[pos] = append(queues[pos], r)
		states[r].enqueued = now
		if flushTimeout > 0 {
			push(now+flushTimeout, evFlush, pos, 0)
		} else {
			push(now, evFlush, pos, 0)
		}
	}

	// trySchedule dispatches work on resource res if it is idle.
	var trySchedule func(res int, now float64)
	trySchedule = func(res int, now float64) {
		if resources[res].busy {
			return
		}
		// Round-robin over stages of this resource: pick the stage
		// with the oldest waiting head among dispatchable queues.
		best := -1
		bestAge := math.Inf(-1)
		for idx, st := range s.steps {
			if st.resource != res || len(queues[idx]) == 0 {
				continue
			}
			head := queues[idx][0]
			ready := len(queues[idx]) >= st.batch || now-states[head].enqueued >= flushTimeout
			if !ready {
				continue
			}
			age := now - states[head].enqueued
			if age > bestAge {
				bestAge, best = age, idx
			}
		}
		if best < 0 {
			return
		}
		st := s.steps[best]
		n := st.batch
		if n > len(queues[best]) {
			n = len(queues[best])
		}
		batch := queues[best][:n]
		queues[best] = append([]int(nil), queues[best][n:]...)
		resources[res].busy = true
		// Service time: the profiled latency at the formed batch size.
		pt := s.stageLatency(best, n)
		for _, r := range batch {
			push(now+pt, evResourceDone, r, res)
		}
		// A zero-payload marker to free the resource.
		push(now+pt, evResourceDone, -1, res)
	}

	var firstDone, lastDone float64
	var sumTTFT, sumLat float64
	completed := 0
	prefixIdx := s.pipe.Index(pipeline.KindPrefix)

	for h.Len() > 0 {
		e := heap.Pop(&h).(event)
		now := e.at
		switch e.kind {
		case evArrival:
			enqueue(e.a, now)
			if res := s.steps[states[e.a].stagePos].resource; res >= 0 {
				trySchedule(res, now)
			}
		case evFlush:
			if res := s.steps[e.a].resource; res >= 0 {
				trySchedule(res, now)
			}
		case evResourceDone:
			if e.a < 0 {
				resources[e.b].busy = false
				trySchedule(e.b, now)
				break
			}
			r := e.a
			if states[r].stagePos == prefixIdx {
				states[r].ttft = now - states[r].arrival
			}
			states[r].stagePos++
			enqueue(r, now)
			if next := states[r].stagePos; next < len(s.steps) {
				if res := s.steps[next].resource; res >= 0 {
					trySchedule(res, now)
				}
			}
		case evDecodeDone:
			r := e.a
			states[r].done = now
			completed++
			if completed == 1 {
				firstDone = now
			}
			lastDone = now
			sumTTFT += states[r].ttft
			sumLat += now - states[r].arrival
			decFree++
			if len(decQueue) > 0 {
				nxt := decQueue[0]
				decQueue = decQueue[1:]
				decFree--
				push(now+s.steps[decIdx].latency, evDecodeDone, nxt, 0)
			}
		}
	}
	if completed == 0 {
		return ServeResult{}, fmt.Errorf("sim: no request completed")
	}
	span := lastDone - firstDone
	qps := math.Inf(1)
	if span > 0 {
		qps = float64(completed-1) / span
	}
	return ServeResult{
		Completed:   completed,
		QPS:         qps,
		MeanTTFT:    sumTTFT / float64(completed),
		MeanLatency: sumLat / float64(completed),
	}, nil
}

// stageLatency returns the service time of stage idx at actual batch n.
func (s *ServeSim) stageLatency(idx, n int) float64 {
	st := s.steps[idx]
	if n == st.batch {
		return st.latency
	}
	// Partially filled batch: profile at the formed size.
	if st.stage.Kind == pipeline.KindRetrieval {
		pt := s.prof.Eval(st.stage, s.sched.RetrievalServers, n)
		if pt.OK {
			return pt.Latency + s.prof.RetrievalTransferLatency()
		}
		return st.latency
	}
	for gi, g := range s.sched.Groups {
		if gi != st.resource {
			continue
		}
		for i, sidx := range g.Stages {
			if sidx == idx {
				pt := s.prof.EvalR(st.stage, g.Chips, n, minInt(g.ReplicasFor(i), n))
				if pt.OK {
					return pt.Latency
				}
			}
		}
	}
	return st.latency
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
