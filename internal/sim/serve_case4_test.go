package sim

import (
	"testing"

	"rago/internal/core"
	"rago/internal/hw"
	"rago/internal/pipeline"
	"rago/internal/ragschema"
	"rago/internal/stageperf"
	"rago/internal/trace"
)

// TestServeSimCaseIV pushes a full rewriter+reranker pipeline through the
// event simulator and checks it against the analytical assembly — the
// richest non-iterative pipeline shape (5 XPU stages + retrieval).
func TestServeSimCaseIV(t *testing.T) {
	schema := ragschema.CaseIV(8e9)
	pipe, err := pipeline.Build(schema)
	if err != nil {
		t.Fatal(err)
	}
	prof := stageperf.New(hw.XPUC, hw.EPYCHost, schema)
	sched := core.Schedule{
		Groups: []core.GroupSchedule{
			{Stages: []int{0, 1}, Chips: 4, Batch: 4},  // rewrite prefix+decode
			{Stages: []int{3, 4}, Chips: 16, Batch: 4}, // rerank + prefix
		},
		RetrievalServers: 16,
		RetrievalBatch:   4,
		DecodeChips:      16,
		DecodeBatch:      64,
		DecodeReplicas:   4,
	}
	asm := &core.Assembler{Pipe: pipe, Prof: prof}
	want, ok := asm.Evaluate(sched)
	if !ok {
		t.Fatal("schedule infeasible analytically")
	}
	s, err := NewServe(pipe, prof, sched)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(trace.Burst(2000), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	ratio := res.QPS / want.QPS
	if ratio < 0.80 || ratio > 1.20 {
		t.Errorf("Case IV simulated QPS %.1f vs analytical %.1f (ratio %.2f)", res.QPS, want.QPS, ratio)
	}
	// Under a saturating burst the mean TTFT is queue-dominated; it
	// just has to be positive and finite.
	if res.MeanTTFT <= 0 {
		t.Errorf("mean TTFT = %v, want positive", res.MeanTTFT)
	}
}
