package sim

import (
	"math"
	"testing"

	"rago/internal/core"
	"rago/internal/hw"
	"rago/internal/pipeline"
	"rago/internal/ragschema"
	"rago/internal/stageperf"
	"rago/internal/trace"
)

func iterCfg(decodeBatch, iterBatch int) IterativeConfig {
	return IterativeConfig{
		DecodeBatch:      decodeBatch,
		IterBatch:        iterBatch,
		DecodeTokens:     256,
		RetrievalsPerSeq: 3, // 4 retrievals: 1 up front + 3 iterative
		StepTime:         0.01,
		Sequences:        400,
		Seed:             1,
	}
}

func TestIterativeNoRetrievalsIsIdeal(t *testing.T) {
	cfg := iterCfg(16, 4)
	cfg.RetrievalsPerSeq = 0
	r, err := RunIterative(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.NormalizedLatency-1.0) > 0.01 {
		t.Errorf("no-retrieval normalized latency = %v, want 1.0", r.NormalizedLatency)
	}
	if r.Rounds != 0 {
		t.Errorf("rounds = %d, want 0", r.Rounds)
	}
}

func TestIterativeBatchOneNoIdleness(t *testing.T) {
	// Fig. 10b bottom row: iterative batch 1 with zero-latency rounds
	// costs nothing — every trigger dispatches immediately.
	r, err := RunIterative(iterCfg(64, 1))
	if err != nil {
		t.Fatal(err)
	}
	if r.NormalizedLatency > 1.05 {
		t.Errorf("iter-batch-1 normalized latency = %v, want ~1.0", r.NormalizedLatency)
	}
}

func TestIterativeEqualBatchesIdleness(t *testing.T) {
	// Fig. 10b diagonal: matching iterative and decode batch sizes
	// produces severe idleness (paper: 1.71x at 4/4 up to 3.08x at
	// 256/256; 2.77x at 64/64).
	r, err := RunIterative(iterCfg(64, 64))
	if err != nil {
		t.Fatal(err)
	}
	if r.NormalizedLatency < 1.8 || r.NormalizedLatency > 3.8 {
		t.Errorf("64/64 normalized latency = %v, want ~2.8 (paper 2.77)", r.NormalizedLatency)
	}
}

func TestIterativeIdlenessGrowsAlongDiagonal(t *testing.T) {
	// Paper diagonal: 1.71 (4/4) < 2.34 (16/16) < 2.77 (64/64).
	var prev float64
	for _, b := range []int{4, 16, 64} {
		r, err := RunIterative(iterCfg(b, b))
		if err != nil {
			t.Fatal(err)
		}
		if r.NormalizedLatency <= prev {
			t.Errorf("diagonal not increasing at %d/%d: %v <= %v", b, b, r.NormalizedLatency, prev)
		}
		prev = r.NormalizedLatency
	}
}

func TestIterativeSmallRatioIsCheap(t *testing.T) {
	// Fig. 10b: decode batch 64 with iterative batch <= 16 stays below
	// ~1.2x (paper 1.14 at 16, 1.07 at 8 ... on the 64-row).
	r16, err := RunIterative(iterCfg(64, 16))
	if err != nil {
		t.Fatal(err)
	}
	if r16.NormalizedLatency > 1.4 {
		t.Errorf("64/16 normalized latency = %v, want <= 1.4 (paper 1.14)", r16.NormalizedLatency)
	}
	r64, err := RunIterative(iterCfg(64, 64))
	if err != nil {
		t.Fatal(err)
	}
	if r64.NormalizedLatency <= r16.NormalizedLatency {
		t.Errorf("larger iterative batch should cost more at fixed decode batch")
	}
}

func TestIterativeWithRoundLatency(t *testing.T) {
	// Non-zero retrieval+prefix latency must add to TPOT (Fig. 9a).
	fast, err := RunIterative(iterCfg(16, 4))
	if err != nil {
		t.Fatal(err)
	}
	cfg := iterCfg(16, 4)
	cfg.RetrievalLatency = func(int) float64 { return 0.03 }
	cfg.PrefixLatency = func(int) float64 { return 0.02 }
	slow, err := RunIterative(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if slow.TPOT <= fast.TPOT {
		t.Errorf("round latency should raise TPOT: %v vs %v", slow.TPOT, fast.TPOT)
	}
	// Each sequence pays ~3 rounds of 50ms: TPOT delta ~ 3*0.05/256.
	wantDelta := 3 * 0.05 / 256.0
	gotDelta := slow.TPOT - fast.TPOT
	if gotDelta < wantDelta*0.5 || gotDelta > wantDelta*4 {
		t.Errorf("TPOT delta = %v, want ~%v", gotDelta, wantDelta)
	}
}

func TestIterativeDeterministic(t *testing.T) {
	a, err := RunIterative(iterCfg(32, 8))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunIterative(iterCfg(32, 8))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestIterativeConfigValidation(t *testing.T) {
	bad := iterCfg(0, 1)
	if _, err := RunIterative(bad); err == nil {
		t.Errorf("zero decode batch should error")
	}
	bad = iterCfg(4, 4)
	bad.StepTime = 0
	if _, err := RunIterative(bad); err == nil {
		t.Errorf("zero step time should error")
	}
	bad = iterCfg(4, 4)
	bad.Sequences = 0
	if _, err := RunIterative(bad); err == nil {
		t.Errorf("zero sample should error")
	}
}

// serveSetup builds a Case I pipeline, profiler and a simple schedule.
func serveSetup(t *testing.T) (pipeline.Pipeline, *stageperf.Profiler, core.Schedule) {
	t.Helper()
	schema := ragschema.CaseI(8e9, 1)
	pipe, err := pipeline.Build(schema)
	if err != nil {
		t.Fatal(err)
	}
	prof := stageperf.New(hw.XPUC, hw.EPYCHost, schema)
	sched := core.Schedule{
		Groups:           []core.GroupSchedule{{Stages: []int{1}, Chips: 16, Batch: 8}},
		RetrievalServers: 16,
		RetrievalBatch:   8,
		DecodeChips:      16,
		DecodeBatch:      128,
		DecodeReplicas:   4,
	}
	return pipe, prof, sched
}

func TestServeSimThroughputMatchesAnalytic(t *testing.T) {
	pipe, prof, sched := serveSetup(t)
	asm := &core.Assembler{Pipe: pipe, Prof: prof}
	want, ok := asm.Evaluate(sched)
	if !ok {
		t.Fatal("schedule infeasible analytically")
	}
	s, err := NewServe(pipe, prof, sched)
	if err != nil {
		t.Fatal(err)
	}
	// Saturating burst: throughput should match the analytical QPS
	// within 15% (batch-formation edges and drain effects cost a bit).
	res, err := s.Run(trace.Burst(3000), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	ratio := res.QPS / want.QPS
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("simulated QPS %.1f vs analytical %.1f (ratio %.2f), want within 15%%", res.QPS, want.QPS, ratio)
	}
}

func TestServeSimUnloadedTTFT(t *testing.T) {
	pipe, prof, sched := serveSetup(t)
	// Batch-1 schedule so the analytical latency chain and the
	// unloaded simulated TTFT coincide.
	sched.Groups[0].Batch = 1
	sched.RetrievalBatch = 1
	asm := &core.Assembler{Pipe: pipe, Prof: prof}
	want, ok := asm.Evaluate(sched)
	if !ok {
		t.Fatal("schedule infeasible analytically")
	}
	s, err := NewServe(pipe, prof, sched)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := trace.Poisson(50, 1, 5) // 1 QPS: effectively unloaded
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(reqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MeanTTFT-want.TTFT)/want.TTFT > 0.05 {
		t.Errorf("unloaded simulated TTFT %.4f vs analytical %.4f", res.MeanTTFT, want.TTFT)
	}
	if res.Completed != 50 {
		t.Errorf("completed %d of 50", res.Completed)
	}
	if res.MeanLatency <= res.MeanTTFT {
		t.Errorf("full latency %v should exceed TTFT %v", res.MeanLatency, res.MeanTTFT)
	}
}

func TestServeSimRejects(t *testing.T) {
	pipe, prof, sched := serveSetup(t)
	// Iterative pipelines simulate now; an incomplete schedule (no
	// iterative batch) still fails compilation, a complete one builds.
	iterSchema := ragschema.CaseIII(8e9, 4)
	iterPipe, err := pipeline.Build(iterSchema)
	if err != nil {
		t.Fatal(err)
	}
	iterProf := stageperf.New(hw.XPUC, hw.EPYCHost, iterSchema)
	if _, err := NewServe(iterPipe, iterProf, sched); err == nil {
		t.Errorf("iterative schedule without IterativeBatch should be rejected")
	}
	iterSched := sched
	iterSched.IterativeBatch = 8
	if _, err := NewServe(iterPipe, iterProf, iterSched); err != nil {
		t.Errorf("iterative workload with a complete schedule should simulate: %v", err)
	}
	bad := sched
	bad.DecodeChips = 0
	if _, err := NewServe(pipe, prof, bad); err == nil {
		t.Errorf("invalid schedule should be rejected")
	}
	s, err := NewServe(pipe, prof, sched)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(nil, 0); err == nil {
		t.Errorf("empty trace should error")
	}
}
