package sim

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"rago/internal/engine"
	"rago/internal/hw"
	"rago/internal/obs"
	"rago/internal/pipeline"
	"rago/internal/ragschema"
	"rago/internal/stageperf"
	"rago/internal/trace"
)

// TestChromeTraceGoldenCaseI pins the Chrome trace_event export for a
// tiny 5-request Case I burst, byte for byte: the simulator is
// single-threaded and deterministic, the tracer assembles events in
// published order, and the exporter sorts everything it emits — so the
// golden catches silent drift anywhere along the event → span → export
// chain. Regenerate deliberately with UPDATE_GOLDEN=1 after inspecting
// the new trace in https://ui.perfetto.dev.
func TestChromeTraceGoldenCaseI(t *testing.T) {
	schema := ragschema.CaseI(8e9, 1)
	pipe, err := pipeline.Build(schema)
	if err != nil {
		t.Fatal(err)
	}
	prof := stageperf.New(hw.XPUC, hw.EPYCHost, schema)
	sched := engine.Schedule{
		Groups:           []engine.GroupSchedule{{Stages: []int{1}, Chips: 16, Batch: 8}},
		RetrievalServers: 16,
		RetrievalBatch:   8,
		DecodeChips:      16,
		DecodeBatch:      128,
		DecodeReplicas:   4,
	}
	plan, err := engine.Compile(pipe, sched, prof)
	if err != nil {
		t.Fatal(err)
	}

	bus := obs.NewBus()
	tr := obs.NewTracer()
	if err := tr.Attach(bus, 1<<12); err != nil {
		t.Fatal(err)
	}
	des, err := NewServeFromPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	des.Bus = bus
	if _, err := des.Run(trace.Burst(5), 0); err != nil {
		t.Fatal(err)
	}
	tr.Close()
	if tr.Dropped() != 0 {
		t.Fatalf("tracer dropped %d of a 5-request burst", tr.Dropped())
	}

	raw, err := tr.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace_case1.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(raw))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with UPDATE_GOLDEN=1)", err)
	}
	if !bytes.Equal(raw, want) {
		t.Fatalf("chrome trace drifted from golden (got %d bytes, want %d); "+
			"inspect in Perfetto, then UPDATE_GOLDEN=1 if intended.\ngot:\n%s",
			len(raw), len(want), raw)
	}
}
