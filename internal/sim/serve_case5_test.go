package sim

import (
	"math"
	"testing"

	"rago/internal/core"
	"rago/internal/hw"
	"rago/internal/pipeline"
	"rago/internal/ragschema"
	"rago/internal/stageperf"
	"rago/internal/trace"
)

// caseVSetup builds the multi-source fan-out pipeline (2 parallel
// retrieval sources joining on a reranker) with a fixed schedule.
func caseVSetup(t *testing.T) (pipeline.Pipeline, *stageperf.Profiler, core.Schedule) {
	t.Helper()
	schema := ragschema.CaseV(8e9, 2)
	pipe, err := pipeline.Build(schema)
	if err != nil {
		t.Fatal(err)
	}
	prof := stageperf.New(hw.XPUC, hw.EPYCHost, schema)
	sched := core.Schedule{
		Groups:           []core.GroupSchedule{{Stages: []int{2, 3}, Chips: 16, Batch: 4}}, // rerank + prefix
		RetrievalServers: 8,
		RetrievalBatch:   4,
		DecodeChips:      16,
		DecodeBatch:      64,
		DecodeReplicas:   4,
	}
	return pipe, prof, sched
}

// TestServeSimCaseVFanOut pushes the non-linear stage graph through the
// event simulator: both retrieval branches must execute (the join waits
// for the slower one) and saturation throughput must match the compiled
// plan's analytical QPS.
func TestServeSimCaseVFanOut(t *testing.T) {
	pipe, prof, sched := caseVSetup(t)
	want, ok := (&core.Assembler{Pipe: pipe, Prof: prof}).Evaluate(sched)
	if !ok {
		t.Fatal("schedule infeasible analytically")
	}
	s, err := NewServe(pipe, prof, sched)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(trace.Burst(2000), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	ratio := res.QPS / want.QPS
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("Case V simulated QPS %.1f vs analytical %.1f (ratio %.2f), want within 15%%", res.QPS, want.QPS, ratio)
	}
	if res.Completed != 2000 {
		t.Errorf("completed %d of 2000", res.Completed)
	}
}

// TestServeSimCaseVUnloadedTTFT: at batch 1 and trivial load the measured
// TTFT must equal the critical path — the two parallel retrievals overlap,
// so the chain is one retrieval + rerank + prefix, not two retrievals.
func TestServeSimCaseVUnloadedTTFT(t *testing.T) {
	pipe, prof, sched := caseVSetup(t)
	sched.Groups[0].Batch = 1
	sched.RetrievalBatch = 1
	want, ok := (&core.Assembler{Pipe: pipe, Prof: prof}).Evaluate(sched)
	if !ok {
		t.Fatal("schedule infeasible analytically")
	}
	s, err := NewServe(pipe, prof, sched)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := trace.Poisson(50, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(reqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MeanTTFT-want.TTFT)/want.TTFT > 0.05 {
		t.Errorf("unloaded fan-out TTFT %.4f vs analytical %.4f (branches must overlap)", res.MeanTTFT, want.TTFT)
	}
}

// TestServeSimCaseIILongContext completes the cross-check matrix over the
// servable Table 3 cases (I and IV live in sim_test.go/serve_case4_test.go;
// III is iterative and modeled by RunIterative): the long-context pipeline
// with its real-time encode stage must also agree with the compiled plan's
// analytical QPS at saturation.
func TestServeSimCaseIILongContext(t *testing.T) {
	schema := ragschema.CaseII(8e9, 100_000)
	pipe, err := pipeline.Build(schema)
	if err != nil {
		t.Fatal(err)
	}
	prof := stageperf.New(hw.XPUC, hw.EPYCHost, schema)
	sched := core.Schedule{
		Groups: []core.GroupSchedule{
			{Stages: []int{0}, Chips: 32, Batch: 2}, // encode
			{Stages: []int{2}, Chips: 16, Batch: 4}, // prefix
		},
		RetrievalServers: 1,
		RetrievalBatch:   4,
		DecodeChips:      16,
		DecodeBatch:      64,
		DecodeReplicas:   4,
	}
	want, ok := (&core.Assembler{Pipe: pipe, Prof: prof}).Evaluate(sched)
	if !ok {
		t.Fatal("schedule infeasible analytically")
	}
	s, err := NewServe(pipe, prof, sched)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(trace.Burst(500), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	ratio := res.QPS / want.QPS
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("Case II simulated QPS %.2f vs analytical %.2f (ratio %.2f), want within 15%%", res.QPS, want.QPS, ratio)
	}
}
