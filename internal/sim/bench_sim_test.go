package sim

import (
	"testing"

	"rago/internal/core"
	"rago/internal/hw"
	"rago/internal/pipeline"
	"rago/internal/ragschema"
	"rago/internal/stageperf"
	"rago/internal/trace"
)

// BenchmarkServeSimCaseIV measures the discrete-event simulator's hot path
// on the richest non-iterative pipeline (rewriter + retrieval + reranker,
// 5 XPU stages) at saturation: a 2000-request burst, the same workload
// TestServeSimCaseIV validates. Plan compilation happens once outside the
// timer — the benchmark isolates the event loop (typed event heap, batch
// formation, continuous-batching decode pool). The reported
// sim-requests/sec metric is completed simulated requests per wall second.
func BenchmarkServeSimCaseIV(b *testing.B) {
	schema := ragschema.CaseIV(8e9)
	pipe, err := pipeline.Build(schema)
	if err != nil {
		b.Fatal(err)
	}
	prof := stageperf.New(hw.XPUC, hw.EPYCHost, schema)
	sched := core.Schedule{
		Groups: []core.GroupSchedule{
			{Stages: []int{0, 1}, Chips: 4, Batch: 4},
			{Stages: []int{3, 4}, Chips: 16, Batch: 4},
		},
		RetrievalServers: 16,
		RetrievalBatch:   4,
		DecodeChips:      16,
		DecodeBatch:      64,
		DecodeReplicas:   4,
	}
	s, err := NewServe(pipe, prof, sched)
	if err != nil {
		b.Fatal(err)
	}
	reqs := trace.Burst(2000)
	b.ReportAllocs()
	b.ResetTimer()
	completed := 0
	for i := 0; i < b.N; i++ {
		res, err := s.Run(reqs, 0.05)
		if err != nil {
			b.Fatal(err)
		}
		completed += res.Completed
	}
	b.ReportMetric(float64(completed)/b.Elapsed().Seconds(), "sim-requests/sec")
}

// BenchmarkServeSimCaseIII measures the event loop with the §5.3 iterative
// decode loop live: sequences park at trigger positions and round batches
// contend with the initial pass for the same prefix-group servers, which
// multiplies the events per request versus the single-retrieval cases.
func BenchmarkServeSimCaseIII(b *testing.B) {
	schema := ragschema.CaseIII(8e9, 4)
	pipe, err := pipeline.Build(schema)
	if err != nil {
		b.Fatal(err)
	}
	prof := stageperf.New(hw.XPUC, hw.EPYCHost, schema)
	sched := core.Schedule{
		Groups:           []core.GroupSchedule{{Stages: []int{1}, Chips: 16, Batch: 8}},
		RetrievalServers: 16,
		RetrievalBatch:   8,
		DecodeChips:      16,
		DecodeBatch:      128,
		DecodeReplicas:   4,
		IterativeBatch:   8,
	}
	s, err := NewServe(pipe, prof, sched)
	if err != nil {
		b.Fatal(err)
	}
	reqs := trace.Burst(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(reqs, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}
