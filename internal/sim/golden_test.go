package sim

import (
	"testing"

	"rago/internal/engine"
	"rago/internal/hw"
	"rago/internal/pipeline"
	"rago/internal/ragschema"
	"rago/internal/stageperf"
	"rago/internal/trace"
)

// Golden constant-shape results, captured from the discrete-event
// simulator immediately before per-request shapes were introduced. The
// shape-aware costing path must leave shape-less traces on the exact
// historical numbers — the simulator is deterministic, so these are
// compared bit for bit. A drift here means the refactor changed the
// constant-shape semantics, not just added a shaped path.
func TestServeSimConstantShapeGolden(t *testing.T) {
	schema := ragschema.CaseI(8e9, 1)
	pipe, err := pipeline.Build(schema)
	if err != nil {
		t.Fatal(err)
	}
	prof := stageperf.New(hw.XPUC, hw.EPYCHost, schema)
	sched := engine.Schedule{
		Groups:           []engine.GroupSchedule{{Stages: []int{1}, Chips: 16, Batch: 8}},
		RetrievalServers: 16,
		RetrievalBatch:   8,
		DecodeChips:      16,
		DecodeBatch:      128,
		DecodeReplicas:   4,
	}
	plan, err := engine.Compile(pipe, sched, prof)
	if err != nil {
		t.Fatal(err)
	}
	const wantAnalyticQPS = 203.7367379897685
	if plan.Metrics.QPS != wantAnalyticQPS {
		t.Errorf("analytic QPS drifted: %.17g, want %.17g", plan.Metrics.QPS, wantAnalyticQPS)
	}
	reqs, err := trace.Poisson(3000, 1.5*plan.Metrics.QPS, 42)
	if err != nil {
		t.Fatal(err)
	}
	want := ServeResult{
		Completed:   3000,
		QPS:         205.08542593602056,
		MeanTTFT:    0.073760364094233991,
		MeanLatency: 3.2074139114869626,
	}
	// Every formation policy degenerates to FIFO on constant-shape
	// traffic (one bucket / all sort keys equal), so the pre-refactor
	// golden must reproduce bit for bit under each of them.
	for _, pol := range []engine.BatchPolicy{engine.PolicyFIFO, engine.PolicyBucketed, engine.PolicySorted} {
		ps := sched
		ps.FormPolicy = pol
		plan, err := engine.Compile(pipe, ps, prof)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewServeFromPlan(plan)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run(reqs, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if r.Completed != want.Completed || r.QPS != want.QPS ||
			r.MeanTTFT != want.MeanTTFT || r.MeanLatency != want.MeanLatency {
			t.Errorf("constant-shape Case I under %v drifted from the pre-shape golden:\n got  Completed=%d QPS=%.17g MeanTTFT=%.17g MeanLatency=%.17g\n want Completed=%d QPS=%.17g MeanTTFT=%.17g MeanLatency=%.17g",
				pol, r.Completed, r.QPS, r.MeanTTFT, r.MeanLatency,
				want.Completed, want.QPS, want.MeanTTFT, want.MeanLatency)
		}
		if r.PadWaste != 0 {
			t.Errorf("constant-shape trace under %v accrued padding waste %.17g", pol, r.PadWaste)
		}
	}
}

// TestServeSimIterativeConstantShapeGolden pins the §5.3 decode-loop path
// the same way: per-request output lengths must not move shape-less
// iterative replays off their historical numbers.
func TestServeSimIterativeConstantShapeGolden(t *testing.T) {
	schema := ragschema.CaseIII(8e9, 4)
	pipe, err := pipeline.Build(schema)
	if err != nil {
		t.Fatal(err)
	}
	prof := stageperf.New(hw.XPUC, hw.EPYCHost, schema)
	sched := engine.Schedule{
		Groups:           []engine.GroupSchedule{{Stages: []int{1}, Chips: 16, Batch: 8}},
		RetrievalServers: 16,
		RetrievalBatch:   8,
		DecodeChips:      16,
		DecodeBatch:      128,
		DecodeReplicas:   4,
		IterativeBatch:   8,
	}
	plan, err := engine.Compile(pipe, sched, prof)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := trace.Poisson(1500, 1.5*plan.Metrics.QPS, 42)
	if err != nil {
		t.Fatal(err)
	}
	want := ServeResult{
		Completed: 1500,
		QPS:       88.442242484580802,
		MeanTTFT:  0.36255653386005227,
		MeanStall: 0.81148571334212116,
	}
	for _, pol := range []engine.BatchPolicy{engine.PolicyFIFO, engine.PolicyBucketed, engine.PolicySorted} {
		ps := sched
		ps.FormPolicy = pol
		plan, err := engine.Compile(pipe, ps, prof)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewServeFromPlan(plan)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run(reqs, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if r.Completed != want.Completed || r.QPS != want.QPS ||
			r.MeanTTFT != want.MeanTTFT || r.MeanStall != want.MeanStall {
			t.Errorf("constant-shape Case III under %v drifted from the pre-shape golden:\n got  Completed=%d QPS=%.17g MeanTTFT=%.17g MeanStall=%.17g\n want Completed=%d QPS=%.17g MeanTTFT=%.17g MeanStall=%.17g",
				pol, r.Completed, r.QPS, r.MeanTTFT, r.MeanStall,
				want.Completed, want.QPS, want.MeanTTFT, want.MeanStall)
		}
	}
}

// TestServeSimShapedBehaviour: on a shaped trace the simulator's padding
// accounting engages and heavy-tailed shapes strictly cost throughput
// versus the same arrivals at constant shape.
func TestServeSimShapedBehaviour(t *testing.T) {
	schema := ragschema.CaseI(8e9, 1)
	pipe, err := pipeline.Build(schema)
	if err != nil {
		t.Fatal(err)
	}
	prof := stageperf.New(hw.XPUC, hw.EPYCHost, schema)
	sched := engine.Schedule{
		Groups:           []engine.GroupSchedule{{Stages: []int{1}, Chips: 16, Batch: 8}},
		RetrievalServers: 16,
		RetrievalBatch:   8,
		DecodeChips:      16,
		DecodeBatch:      128,
		DecodeReplicas:   4,
	}
	plan, err := engine.Compile(pipe, sched, prof)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := trace.Poisson(3000, 1.5*plan.Metrics.QPS, 42)
	if err != nil {
		t.Fatal(err)
	}
	prompt, err := trace.LognormalLengths(512, 0.8, 4096)
	if err != nil {
		t.Fatal(err)
	}
	output, err := trace.LognormalLengths(256, 0.7, 1024)
	if err != nil {
		t.Fatal(err)
	}
	shaped := trace.WithShapes(reqs, prompt, output, 3)

	sPlain, err := NewServeFromPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := sPlain.Run(reqs, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	sShaped, err := NewServeFromPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := sShaped.Run(shaped, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !(heavy.QPS < plain.QPS) {
		t.Errorf("heavy-tailed shapes should cost throughput: %.2f vs constant %.2f", heavy.QPS, plain.QPS)
	}
	if heavy.PadWaste <= 0.05 || heavy.PadWaste >= 0.9 {
		t.Errorf("padding waste %.3f implausible", heavy.PadWaste)
	}
	if !(heavy.MeanTTFT > plain.MeanTTFT) {
		t.Errorf("padded prefill should stretch TTFT: %.4f vs %.4f", heavy.MeanTTFT, plain.MeanTTFT)
	}
}
