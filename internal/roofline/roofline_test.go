package roofline

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOpTime(t *testing.T) {
	cases := []struct {
		name                      string
		flops, bytes, comp, memBW float64
		want                      float64
	}{
		{"compute bound", 1e12, 1e9, 1e12, 1e10, 1.0},
		{"memory bound", 1e9, 1e10, 1e12, 1e9, 10.0},
		{"balanced", 2e12, 2e9, 1e12, 1e9, 2.0},
		{"zero work", 0, 0, 1e12, 1e9, 0},
		{"zero flops", 0, 1e9, 1e12, 1e9, 1.0},
		{"zero bytes", 1e12, 0, 1e12, 1e9, 1.0},
	}
	for _, c := range cases {
		if got := OpTime(c.flops, c.bytes, c.comp, c.memBW); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: OpTime = %v, want %v", c.name, got, c.want)
		}
	}
	if got := OpTime(1, 1, 0, 1); !math.IsInf(got, 1) {
		t.Errorf("dead compute should be +Inf, got %v", got)
	}
	if got := OpTime(1, 1, 1, 0); !math.IsInf(got, 1) {
		t.Errorf("dead memory should be +Inf, got %v", got)
	}
}

func TestCommTime(t *testing.T) {
	if got := CommTime(1e9, 1e9); got != 1.0 {
		t.Errorf("CommTime = %v, want 1", got)
	}
	if got := CommTime(0, 1e9); got != 0 {
		t.Errorf("CommTime(0) = %v, want 0", got)
	}
	if got := CommTime(1, 0); !math.IsInf(got, 1) {
		t.Errorf("dead link should be +Inf, got %v", got)
	}
}

func TestMatmulEfficiency(t *testing.T) {
	// Large operands approach full efficiency.
	if e := MatmulEfficiency(4096, 8192, 4096, 256); e < 0.90 {
		t.Errorf("large matmul efficiency = %v, want > 0.90", e)
	}
	// A 32-row operand on a 256-wide array pays a fill penalty of
	// ~32/(32+64) = 1/3 on top of the K/N tiling losses.
	e32 := MatmulEfficiency(32, 4096, 4096, 256)
	if e32 > 0.35 || e32 < 0.20 {
		t.Errorf("short-prefix efficiency = %v, want ~0.22-0.33", e32)
	}
	// Efficiency is monotone in m for fixed k, n.
	prev := 0.0
	for _, m := range []int{1, 8, 64, 256, 1024, 4096} {
		e := MatmulEfficiency(m, 4096, 4096, 256)
		if e < prev {
			t.Errorf("efficiency not monotone at m=%d: %v < %v", m, e, prev)
		}
		prev = e
	}
	if e := MatmulEfficiency(0, 10, 10, 256); e != 0 {
		t.Errorf("degenerate matmul efficiency = %v, want 0", e)
	}
	if e := MatmulEfficiency(10, 10, 10, 1); e != 1 {
		t.Errorf("scalar array should have efficiency 1, got %v", e)
	}
}

func TestMatmulEfficiencyBounded(t *testing.T) {
	f := func(m, k, n uint16) bool {
		e := MatmulEfficiency(int(m)+1, int(k)+1, int(n)+1, 256)
		return e > 0 && e <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceBytes(t *testing.T) {
	if got := AllReduceBytes(100, 1); got != 0 {
		t.Errorf("single-chip all-reduce = %v, want 0", got)
	}
	if got := AllReduceBytes(100, 2); got != 100 {
		t.Errorf("two-chip all-reduce = %v, want 100 (2*1/2*size)", got)
	}
	got := AllReduceBytes(100, 8)
	want := 2.0 * 7.0 / 8.0 * 100
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("eight-chip all-reduce = %v, want %v", got, want)
	}
}

func TestPow2Helpers(t *testing.T) {
	for _, c := range []struct{ in, want int }{{0, 1}, {1, 1}, {2, 2}, {3, 4}, {64, 64}, {65, 128}} {
		if got := Pow2Up(c.in); got != c.want {
			t.Errorf("Pow2Up(%d) = %d, want %d", c.in, got, c.want)
		}
	}
	got := Pow2Range(1, 16)
	want := []int{1, 2, 4, 8, 16}
	if len(got) != len(want) {
		t.Fatalf("Pow2Range(1,16) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Pow2Range(1,16) = %v, want %v", got, want)
		}
	}
	if got := Pow2Range(3, 10); len(got) != 2 || got[0] != 4 || got[1] != 8 {
		t.Errorf("Pow2Range(3,10) = %v, want [4 8]", got)
	}
	if got := Pow2Range(8, 4); got != nil {
		t.Errorf("Pow2Range(8,4) = %v, want nil", got)
	}
}
