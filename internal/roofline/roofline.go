// Package roofline implements the primitive cost equations the paper's
// simulators are built from (§4, Fig. 4):
//
//	T_op   = max(F_i / P_comp(F_i), D_i / B_mem(D_i))   (inference operator)
//	T_comm = S_ij / B_net                               (inter-operator link)
//
// together with the systolic-array efficiency model that derates peak
// compute for small matrix operands, which is what makes short-sequence
// prefix and small-batch decode land far below peak on TPU-class hardware.
package roofline

import "math"

// OpTime returns the roofline execution time for an operator needing flops
// floating-point operations and bytes of memory traffic, on a device with
// effective compute rate compFLOPS (FLOP/s) and effective memory bandwidth
// memBW (bytes/s). Zero-work operators take zero time; a non-positive rate
// on an axis with non-zero work yields +Inf (the operator can never run).
func OpTime(flops, bytes, compFLOPS, memBW float64) float64 {
	var tComp, tMem float64
	switch {
	case flops <= 0:
		tComp = 0
	case compFLOPS <= 0:
		return math.Inf(1)
	default:
		tComp = flops / compFLOPS
	}
	switch {
	case bytes <= 0:
		tMem = 0
	case memBW <= 0:
		return math.Inf(1)
	default:
		tMem = bytes / memBW
	}
	return math.Max(tComp, tMem)
}

// CommTime returns S/B_net, the time to move size bytes over a link of
// netBW bytes/s. Zero size costs zero; a dead link with non-zero traffic
// costs +Inf.
func CommTime(size, netBW float64) float64 {
	if size <= 0 {
		return 0
	}
	if netBW <= 0 {
		return math.Inf(1)
	}
	return size / netBW
}

// MatmulEfficiency estimates the fraction of peak a weight-stationary
// systolic array of dimension array x array achieves on an (m x k) x (k x n)
// matrix multiplication.
//
// K and N are spatial dimensions: K maps to array rows (padded up to a
// multiple of the array and paying a 2*array-cycle pipeline fill per pass)
// and N to array columns (padded). M is temporal — activation rows stream
// through the loaded weight tile — so short row counts pay a fill/drain
// penalty of roughly a quarter array of cycles per tile (double-buffered
// weight loads hide the rest), modeled as m/(m+array/4). The penalty never
// pushes a weight-streaming GEMV below its memory roofline: at m=1 the
// compute derating roughly matches the weight-read time, which is what
// production accelerators exhibit for small-batch decode.
func MatmulEfficiency(m, k, n, array int) float64 {
	if m <= 0 || k <= 0 || n <= 0 {
		return 0
	}
	if array <= 1 {
		return 1
	}
	fill := array / 4
	effM := float64(m) / float64(m+fill)
	effN := float64(n) / float64(ceilMul(n, array))
	effK := float64(k) / float64(k+2*array)
	return effM * effN * effK
}

func ceilMul(x, m int) int {
	return (x + m - 1) / m * m
}

// AllReduceBytes returns the total per-chip bytes moved by a bandwidth-
// optimal ring all-reduce of a payload of size bytes across n chips:
// 2*(n-1)/n * size. For n <= 1 it is zero.
func AllReduceBytes(size float64, n int) float64 {
	if n <= 1 || size <= 0 {
		return 0
	}
	return 2 * float64(n-1) / float64(n) * size
}

// Pow2Up returns the smallest power of two >= x (x >= 1).
func Pow2Up(x int) int {
	if x <= 1 {
		return 1
	}
	p := 1
	for p < x {
		p <<= 1
	}
	return p
}

// Pow2Range returns all powers of two in [lo, hi] inclusive. The result is
// empty when hi < lo or hi < 1.
func Pow2Range(lo, hi int) []int {
	if lo < 1 {
		lo = 1
	}
	var out []int
	for p := 1; p <= hi; p <<= 1 {
		if p >= lo {
			out = append(out, p)
		}
	}
	return out
}
