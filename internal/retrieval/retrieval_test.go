package retrieval

import (
	"math"
	"testing"
	"testing/quick"

	"rago/internal/hw"
)

func hyperscaleSystem(servers, qpr int) System {
	return System{DB: HyperscaleDB(), Host: hw.EPYCHost, Servers: servers, QueriesPerRetrieval: qpr}
}

func TestHyperscaleDBMatchesPaper(t *testing.T) {
	db := HyperscaleDB()
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	// §4: 64B vectors x 96 bytes = 5.6 TiB.
	gotTiB := db.Bytes() / (1 << 40)
	if math.Abs(gotTiB-5.59) > 0.05 {
		t.Errorf("database size = %.2f TiB, want ~5.6 TiB", gotTiB)
	}
	// §3.3: leaf bytes per query ~= N * B * P_scan = 6.14 GB; internal
	// levels add only a little.
	leaf := db.NumVectors * db.CodeBytes * db.ScanFraction
	total := db.BytesScannedPerQuery()
	if total < leaf {
		t.Errorf("total scan %.3g < leaf scan %.3g", total, leaf)
	}
	if total > leaf*1.10 {
		t.Errorf("internal levels should be <10%% of leaf scan: total=%.3g leaf=%.3g", total, leaf)
	}
}

func TestMinServers(t *testing.T) {
	// §4: minimum 16 servers for host memory capacity.
	if got := MinServers(HyperscaleDB(), hw.EPYCHost); got != 16 {
		t.Errorf("MinServers = %d, want 16", got)
	}
}

func TestValidateShardTooBig(t *testing.T) {
	s := hyperscaleSystem(8, 1) // 8 servers cannot hold 5.6 TiB
	if err := s.Validate(); err == nil {
		t.Errorf("8-server deployment should fail memory validation")
	}
}

func TestSaturatedThroughput(t *testing.T) {
	// 16 servers x 460 GB/s x 80% / 6.2 GB per query ~= 950 QPS.
	s := hyperscaleSystem(16, 1)
	qps, err := s.MaxQPS()
	if err != nil {
		t.Fatal(err)
	}
	if qps < 800 || qps < 0 || qps > 1100 {
		t.Errorf("saturated retrieval QPS = %.0f, want ~950", qps)
	}
	// Doubling servers doubles throughput (each holds half the shard).
	s32 := hyperscaleSystem(32, 1)
	qps32, err := s32.MaxQPS()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(qps32-2*qps)/qps > 0.01 {
		t.Errorf("32-server QPS = %.0f, want ~2x 16-server %.0f", qps32, qps)
	}
}

func TestLatencyFlatBelowCoreSaturation(t *testing.T) {
	// §7.2 / Fig. 19a: below ~16-21 queries, batching does not change
	// latency (per-core bound); past saturation latency grows.
	s := hyperscaleSystem(16, 1)
	r1, err := s.Estimate(1)
	if err != nil {
		t.Fatal(err)
	}
	r16, err := s.Estimate(16)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r16.Latency-r1.Latency)/r1.Latency > 0.02 {
		t.Errorf("latency should be flat below core saturation: b=1 %.4f vs b=16 %.4f", r1.Latency, r16.Latency)
	}
	r256, err := s.Estimate(256)
	if err != nil {
		t.Fatal(err)
	}
	if r256.Latency < 4*r16.Latency {
		t.Errorf("large batches should be bandwidth-bound: b=256 latency %.4f vs b=16 %.4f", r256.Latency, r16.Latency)
	}
}

func TestSingleQueryLatencyScale(t *testing.T) {
	// One query scans 6.14GB/16 = 384 MB per shard at 18 GB/s on one
	// core: ~21 ms, plus small internal-level scans.
	s := hyperscaleSystem(16, 1)
	r, err := s.Estimate(1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Latency < 0.018 || r.Latency > 0.030 {
		t.Errorf("single-query latency = %.4fs, want ~21ms", r.Latency)
	}
}

func TestQPSSaturatesAtMaxQPS(t *testing.T) {
	s := hyperscaleSystem(16, 1)
	maxQPS, err := s.MaxQPS()
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Estimate(1024)
	if err != nil {
		t.Fatal(err)
	}
	if r.QPS > maxQPS*1.001 {
		t.Errorf("batch throughput %.0f exceeds saturation %.0f", r.QPS, maxQPS)
	}
	if r.QPS < maxQPS*0.95 {
		t.Errorf("large batch should approach saturation: %.0f vs %.0f", r.QPS, maxQPS)
	}
}

func TestMultiQueryRetrievalHalvesThroughput(t *testing.T) {
	// Fig. 6: doubling queries per retrieval roughly halves retrieval
	// throughput.
	base, err := hyperscaleSystem(16, 1).MaxQPS()
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []int{2, 4, 8} {
		got, err := hyperscaleSystem(16, q).MaxQPS()
		if err != nil {
			t.Fatal(err)
		}
		want := base / float64(q)
		if math.Abs(got-want)/want > 0.01 {
			t.Errorf("q=%d: MaxQPS = %.0f, want %.0f", q, got, want)
		}
	}
}

func TestScanFractionScalesWork(t *testing.T) {
	// Fig. 7b: scanning 1% instead of 0.1% means ~10x the work.
	db01 := HyperscaleDB()
	db1 := HyperscaleDB()
	db1.ScanFraction = 0.01
	ratio := db1.BytesScannedPerQuery() / db01.BytesScannedPerQuery()
	if ratio < 8 || ratio > 11 {
		t.Errorf("scan bytes ratio 1%%/0.1%% = %.2f, want ~10", ratio)
	}
}

func TestLongContextDB(t *testing.T) {
	// §5.2: 1M-token context -> ~7.8K chunks of 128 tokens; FP16 768-dim
	// vectors; brute-force scan.
	db := LongContextDB(1_000_000)
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	if db.NumVectors < 7000 || db.NumVectors > 8000 {
		t.Errorf("1M-token chunks = %v, want ~7813", db.NumVectors)
	}
	if db.Levels != 1 || db.ScanFraction != 1 {
		t.Errorf("long-context DB should be flat full-scan")
	}
	// Paper: caching 10K vectors for 1M tokens needs ~15 MB.
	mb := LongContextDB(1_280_000).Bytes() / 1e6
	if mb < 12 || mb > 18 {
		t.Errorf("1.28M-token DB = %.1f MB, want ~15 MB", mb)
	}
	// Retrieval latency is microseconds — negligible vs. inference.
	s := System{DB: db, Host: hw.EPYCHost, Servers: 1, QueriesPerRetrieval: 1}
	r, err := s.Estimate(1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Latency > 0.002 {
		t.Errorf("long-context retrieval latency = %.6fs, want < 2ms (§5.2: <1%% of total)", r.Latency)
	}
}

func TestTransferTimeNegligible(t *testing.T) {
	// §4c: 5 documents x 100 tokens x 2 bytes = 1 KB -> tens of
	// microseconds at PCIe rates.
	tt := TransferTime(500, 2, DefaultPCIeBW)
	if tt <= 0 || tt > 1e-6*100 {
		t.Errorf("transfer time = %v, want positive and < 100us", tt)
	}
	if TransferTime(0, 2, DefaultPCIeBW) != 0 {
		t.Errorf("zero tokens should transfer in zero time")
	}
	if TransferTime(500, 2, 0) <= 0 {
		t.Errorf("zero bandwidth should fall back to default PCIe")
	}
}

func TestEstimateErrors(t *testing.T) {
	s := hyperscaleSystem(16, 1)
	if _, err := s.Estimate(0); err == nil {
		t.Errorf("batch 0 should error")
	}
	bad := s
	bad.QueriesPerRetrieval = 0
	if _, err := bad.Estimate(1); err == nil {
		t.Errorf("zero queries per retrieval should error")
	}
	badDB := s
	badDB.DB.ScanFraction = 1.5
	if _, err := badDB.Estimate(1); err == nil {
		t.Errorf("scan fraction > 1 should error")
	}
}

// Property: QPS is non-decreasing in batch size and latency non-decreasing
// in batch size.
func TestBatchMonotonicity(t *testing.T) {
	s := hyperscaleSystem(16, 1)
	f := func(rawA, rawB uint8) bool {
		a := int(rawA)%512 + 1
		b := int(rawB)%512 + 1
		if a > b {
			a, b = b, a
		}
		ra, err1 := s.Estimate(a)
		rb, err2 := s.Estimate(b)
		if err1 != nil || err2 != nil {
			return false
		}
		return rb.QPS >= ra.QPS*0.999 && rb.Latency >= ra.Latency*0.999
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: bytes scanned per query scales linearly with scan fraction at
// the leaves (dominant term) within a few percent.
func TestScanBytesScaling(t *testing.T) {
	f := func(raw uint8) bool {
		frac := (float64(raw%100) + 1) / 1000 // 0.001 .. 0.1
		db := HyperscaleDB()
		db.ScanFraction = frac
		got := db.BytesScannedPerQuery()
		leaf := db.NumVectors * db.CodeBytes * frac
		return got >= leaf && got < leaf*1.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
