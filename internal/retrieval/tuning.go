package retrieval

import (
	"fmt"
	"math"
	"sort"
)

// BaseNProbe is the probe count the package's default ScanFraction values
// correspond to: a DB description prices its configured ScanFraction at
// this nprobe, and Tuned scales linearly from there (IVF scan work is
// proportional to probed cells for a balanced index). It matches the
// serving CLI's default -nprobe.
const BaseNProbe = 8

// shardGatherSeconds is the per-consulted-shard cost of the scatter-gather
// aggregator: issuing the sub-query, receiving the partial top-k, and
// merging it. Tens of microseconds on a host — small against a leaf scan,
// but monotone in fanout so the optimizer sees the gather cost of
// consulting more shards.
const shardGatherSeconds = 20e-6

// Tuned returns the database as searched at the given nprobe and
// shard-fanout: the scan fraction scales by nprobe/BaseNProbe (more probed
// cells, proportionally more leaf bytes) and by fanout/shards (cells on
// shards outside the fanout budget are not scanned). Zero or negative
// nprobe keeps the base probe count; fanout outside [1, shards] means all
// shards. The scan fraction is clamped to (0, 1].
func (d DB) Tuned(nprobe, fanout, shards int) DB {
	scale := 1.0
	if nprobe > 0 {
		scale *= float64(nprobe) / float64(BaseNProbe)
	}
	if shards > 0 && fanout > 0 && fanout < shards {
		scale *= float64(fanout) / float64(shards)
	}
	t := d
	t.ScanFraction = math.Min(1, d.ScanFraction*scale)
	if t.ScanFraction <= 0 {
		t.ScanFraction = d.ScanFraction
	}
	return t
}

// GatherLatency is the scatter-gather aggregation time for one retrieval
// consulting fanout shards (0 or negative means a single merge hop).
func GatherLatency(fanout int) float64 {
	if fanout < 1 {
		fanout = 1
	}
	return float64(fanout) * shardGatherSeconds
}

// RecallModel is a measured recall@k surface over (nprobe, fanout),
// calibrated offline against exact ground truth (vectordb's
// Sharded.CalibrateRecall produces the grid) and interpolated bilinearly
// between grid points. It is the quality leg of the retrieval cost model:
// the analytic planner prices latency and throughput from the roofline and
// recall from this surface, so the optimizer's Pareto frontier can carry a
// measured quality axis instead of treating retrieval accuracy as fixed.
type RecallModel struct {
	// NProbes and Fanouts are the calibrated grid axes, strictly ascending.
	NProbes []int
	Fanouts []int
	// Grid[i][j] is measured recall@k at NProbes[i], Fanouts[j].
	Grid [][]float64
}

// NewRecallModel validates and wraps a calibrated recall grid.
func NewRecallModel(nprobes, fanouts []int, grid [][]float64) (*RecallModel, error) {
	if len(nprobes) == 0 || len(fanouts) == 0 {
		return nil, fmt.Errorf("retrieval: recall model needs non-empty axes")
	}
	if !sort.IntsAreSorted(nprobes) || !sort.IntsAreSorted(fanouts) {
		return nil, fmt.Errorf("retrieval: recall model axes must be ascending")
	}
	for i := 1; i < len(nprobes); i++ {
		if nprobes[i] == nprobes[i-1] {
			return nil, fmt.Errorf("retrieval: duplicate nprobe %d in recall model", nprobes[i])
		}
	}
	for i := 1; i < len(fanouts); i++ {
		if fanouts[i] == fanouts[i-1] {
			return nil, fmt.Errorf("retrieval: duplicate fanout %d in recall model", fanouts[i])
		}
	}
	if len(grid) != len(nprobes) {
		return nil, fmt.Errorf("retrieval: recall grid has %d rows, want %d", len(grid), len(nprobes))
	}
	for i, row := range grid {
		if len(row) != len(fanouts) {
			return nil, fmt.Errorf("retrieval: recall grid row %d has %d cols, want %d", i, len(row), len(fanouts))
		}
		for j, r := range row {
			if r < 0 || r > 1 || math.IsNaN(r) {
				return nil, fmt.Errorf("retrieval: recall grid[%d][%d] = %v outside [0,1]", i, j, r)
			}
		}
	}
	return &RecallModel{
		NProbes: append([]int(nil), nprobes...),
		Fanouts: append([]int(nil), fanouts...),
		Grid:    append([][]float64(nil), grid...),
	}, nil
}

// Recall interpolates the calibrated surface at (nprobe, fanout), clamping
// to the grid's range. Zero or negative nprobe means BaseNProbe; zero or
// negative fanout means the largest calibrated fanout (all shards).
func (m *RecallModel) Recall(nprobe, fanout int) float64 {
	if m == nil {
		return 0
	}
	if nprobe <= 0 {
		nprobe = BaseNProbe
	}
	if fanout <= 0 {
		fanout = m.Fanouts[len(m.Fanouts)-1]
	}
	i0, i1, ti := gridPos(m.NProbes, nprobe)
	j0, j1, tj := gridPos(m.Fanouts, fanout)
	r0 := m.Grid[i0][j0]*(1-tj) + m.Grid[i0][j1]*tj
	r1 := m.Grid[i1][j0]*(1-tj) + m.Grid[i1][j1]*tj
	return r0*(1-ti) + r1*ti
}

// MaxRecall returns the surface's best value (highest nprobe, full fanout)
// — the admissible recall upper bound the schedule search prunes with.
func (m *RecallModel) MaxRecall() float64 {
	if m == nil {
		return 0
	}
	best := 0.0
	for _, row := range m.Grid {
		for _, r := range row {
			if r > best {
				best = r
			}
		}
	}
	return best
}

// gridPos locates v on an ascending axis: bracketing indices and the
// interpolation weight toward the upper one. Out-of-range values clamp.
func gridPos(axis []int, v int) (lo, hi int, t float64) {
	if v <= axis[0] {
		return 0, 0, 0
	}
	last := len(axis) - 1
	if v >= axis[last] {
		return last, last, 0
	}
	hi = sort.SearchInts(axis, v)
	if axis[hi] == v {
		return hi, hi, 0
	}
	lo = hi - 1
	t = float64(v-axis[lo]) / float64(axis[hi]-axis[lo])
	return lo, hi, t
}
