// Package retrieval is the vector-search performance model (§4b of the
// paper). It implements the published ScaNN cost model [83]: a query walks
// a balanced multi-level tree, performing a vector-scan operator at each
// level; each scan is timed by a roofline over per-core scan throughput
// (one thread per query, batches parallelized across cores) and achievable
// host memory bandwidth.
//
// Large databases are sharded across servers with independent indexes;
// queries fan out to every shard and results are aggregated (§4b), so
// cluster latency equals shard latency and cluster throughput is bounded by
// the aggregate bandwidth divided by total bytes scanned per query.
//
// The same machinery covers Case II's brute-force kNN over small real-time
// databases (a single full-scan level over FP16 vectors).
package retrieval

import (
	"fmt"
	"math"

	"rago/internal/hw"
	"rago/internal/roofline"
)

// DB describes a vector database and how aggressively it is searched.
type DB struct {
	// NumVectors is the database size (the paper's hyperscale corpus
	// holds 64 billion 768-dim passages).
	NumVectors float64
	// Dim is the embedding dimensionality.
	Dim int
	// CodeBytes is the per-vector size at the leaf level: 96 bytes
	// after product quantization (1 byte per 8 dims), or Dim*2 for the
	// FP16 brute-force databases of Case II.
	CodeBytes float64
	// Levels is the tree depth (3 for the hyperscale setup: balanced
	// fanout (64e9)^(1/3) ~= 4000; 1 means a flat full scan).
	Levels int
	// Fanout is children per node for multi-level trees.
	Fanout int
	// ScanFraction is the fraction of leaf (database) vectors each
	// query is compared against (0.001 by default, §4: >90% recall).
	ScanFraction float64
}

// Validate reports an error for malformed database descriptions.
func (d DB) Validate() error {
	if d.NumVectors <= 0 || d.Dim <= 0 || d.CodeBytes <= 0 {
		return fmt.Errorf("retrieval: database has non-positive size fields")
	}
	if d.Levels < 1 {
		return fmt.Errorf("retrieval: tree depth %d < 1", d.Levels)
	}
	if d.Levels > 1 && d.Fanout < 2 {
		return fmt.Errorf("retrieval: multi-level tree needs fanout >= 2, got %d", d.Fanout)
	}
	if d.ScanFraction <= 0 || d.ScanFraction > 1 {
		return fmt.Errorf("retrieval: scan fraction %v outside (0,1]", d.ScanFraction)
	}
	return nil
}

// Bytes returns the database footprint at the leaf level.
func (d DB) Bytes() float64 { return d.NumVectors * d.CodeBytes }

// BytesScannedPerQuery returns the total bytes one query compares against
// across all tree levels and shards (§3.3: N_dbvec * B_vec * P_scan plus
// the much smaller internal-level scans).
func (d DB) BytesScannedPerQuery() float64 {
	var total float64
	for _, lv := range d.levelScans() {
		total += lv
	}
	return total
}

// levelScans returns the bytes scanned per query at each level, root
// first. Internal levels store quantized centroids (CodeBytes each, as
// ScaNN does); the fraction of a level scanned interpolates geometrically
// between 1 at the root and ScanFraction at the leaves, which matches the
// balanced configurations produced by the tree-tuning procedure of [83].
func (d DB) levelScans() []float64 {
	if d.Levels == 1 {
		return []float64{d.NumVectors * d.CodeBytes * d.ScanFraction}
	}
	scans := make([]float64, d.Levels)
	for i := 0; i < d.Levels; i++ {
		// Level i (0 = root scan over first-level centroids) holds
		// NumVectors / Fanout^(Levels-1-i) entries.
		entries := d.NumVectors / math.Pow(float64(d.Fanout), float64(d.Levels-1-i))
		// Fraction scanned at this level: ScanFraction^(i/(Levels-1)).
		frac := math.Pow(d.ScanFraction, float64(i)/float64(d.Levels-1))
		scans[i] = entries * frac * d.CodeBytes
	}
	return scans
}

// HyperscaleDB is the paper's default retrieval corpus: 64 billion 768-dim
// vectors, PQ-compressed to 96 bytes (5.6 TiB), three-level balanced tree
// with 4K fanout, scanning 0.1% of the database per query.
func HyperscaleDB() DB {
	return DB{
		NumVectors:   64e9,
		Dim:          768,
		CodeBytes:    96,
		Levels:       3,
		Fanout:       4096,
		ScanFraction: 0.001,
	}
}

// LongContextDB is Case II's per-request database: contextTokens of
// user-uploaded text chunked at 128 tokens with small overlaps, embedded
// as 768-dim FP16 vectors and searched by brute-force kNN (§5.2).
func LongContextDB(contextTokens int) DB {
	chunks := math.Ceil(float64(contextTokens) / 128)
	if chunks < 1 {
		chunks = 1
	}
	return DB{
		NumVectors:   chunks,
		Dim:          768,
		CodeBytes:    768 * 2,
		Levels:       1,
		ScanFraction: 1,
	}
}

// System is a deployed retrieval tier: a database sharded across servers.
type System struct {
	DB      DB
	Host    hw.CPUHost
	Servers int
	// QueriesPerRetrieval is the number of query vectors issued per
	// retrieval operation (Case I evaluates 1-8; rewriters that
	// decompose questions also issue several).
	QueriesPerRetrieval int
}

// Validate reports an error when the deployment cannot hold the database.
func (s System) Validate() error {
	if err := s.DB.Validate(); err != nil {
		return err
	}
	if err := s.Host.Validate(); err != nil {
		return err
	}
	if s.Servers < 1 {
		return fmt.Errorf("retrieval: need at least one server")
	}
	if s.QueriesPerRetrieval < 1 {
		return fmt.Errorf("retrieval: queries per retrieval %d < 1", s.QueriesPerRetrieval)
	}
	if need := s.DB.Bytes() / float64(s.Servers); need > s.Host.MemBytes {
		return fmt.Errorf("retrieval: shard of %.3g bytes exceeds host memory %.3g (need >= %d servers)",
			need, s.Host.MemBytes, MinServers(s.DB, s.Host))
	}
	return nil
}

// MinServers returns the smallest server count whose aggregate DRAM holds
// the database (§4: 16 servers for the 5.6 TiB corpus).
func MinServers(db DB, host hw.CPUHost) int {
	return int(math.Ceil(db.Bytes() / host.MemBytes))
}

// Result is the evaluated performance of one retrieval batch size.
type Result struct {
	// Latency is seconds from issuing a batch of retrievals to having
	// aggregated results.
	Latency float64
	// QPS is the steady-state retrieval operations per second the tier
	// sustains at this batch size.
	QPS float64
	// Batch echoes the evaluated retrieval batch size.
	Batch int
}

// Estimate evaluates a batch of retrieval operations. Each retrieval
// issues QueriesPerRetrieval query vectors; all shards scan in parallel.
//
// Per the paper's model, each level's scan is timed as
// max(D/(min(Q,cores)*perCoreBW), D/(memBW*util)) where D is that level's
// total bytes for the whole batch on one shard.
func (s System) Estimate(batch int) (Result, error) {
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	if batch < 1 {
		return Result{}, fmt.Errorf("retrieval: batch %d < 1", batch)
	}
	queries := batch * s.QueriesPerRetrieval
	compBW := float64(min(queries, s.Host.Cores)) * s.Host.ScanBWPerCore
	memBW := s.Host.MemBW * s.Host.MemBWUtil

	var latency float64
	for _, perQuery := range s.DB.levelScans() {
		shardBytes := perQuery / float64(s.Servers) * float64(queries)
		latency += roofline.OpTime(0, shardBytes, 0, math.Min(compBW, memBW))
	}
	if latency <= 0 {
		return Result{}, fmt.Errorf("retrieval: degenerate zero-work scan")
	}
	return Result{Latency: latency, QPS: float64(batch) / latency, Batch: batch}, nil
}

// MaxQPS returns the saturated throughput of the tier: the aggregate
// effective memory bandwidth across shards divided by the bytes a single
// retrieval must scan.
func (s System) MaxQPS() (float64, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	perRetrieval := s.DB.BytesScannedPerQuery() * float64(s.QueriesPerRetrieval)
	agg := float64(s.Servers) * s.Host.MemBW * s.Host.MemBWUtil
	return agg / perRetrieval, nil
}

// TransferTime models the CPU-to-XPU shipment of retrieved documents over
// PCIe (§4c): tokens * bytesPerToken / pcieBW. With five 100-token
// documents at 2 bytes/token this is ~1 KB — negligible, but modeled so
// the end-to-end assembly is complete.
func TransferTime(tokens int, bytesPerToken, pcieBW float64) float64 {
	if tokens <= 0 {
		return 0
	}
	if pcieBW <= 0 {
		pcieBW = DefaultPCIeBW
	}
	return float64(tokens) * bytesPerToken / pcieBW
}

// DefaultPCIeBW is a typical host-to-accelerator link (tens of GB/s, §4c).
const DefaultPCIeBW = 32e9

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
