package stageperf

import (
	"math"
	"testing"

	"rago/internal/hw"
	"rago/internal/pipeline"
	"rago/internal/ragschema"
)

func profilerFor(t *testing.T, s ragschema.Schema) (*Profiler, pipeline.Pipeline) {
	t.Helper()
	p, err := pipeline.Build(s)
	if err != nil {
		t.Fatal(err)
	}
	return New(hw.XPUC, hw.EPYCHost, s), p
}

func stage(t *testing.T, p pipeline.Pipeline, k pipeline.Kind) pipeline.Stage {
	t.Helper()
	i := p.Index(k)
	if i < 0 {
		t.Fatalf("pipeline has no %v stage", k)
	}
	return p.Stages[i]
}

func TestDBForHyperscale(t *testing.T) {
	db := DBFor(ragschema.CaseI(8e9, 1))
	if db.Levels != 3 || db.Fanout != 4096 {
		t.Errorf("hyperscale tree = %d levels fanout %d, want 3/4096", db.Levels, db.Fanout)
	}
	if db.CodeBytes != 96 {
		t.Errorf("PQ code = %v bytes, want 96 (768/8)", db.CodeBytes)
	}
	if db.ScanFraction != 0.001 {
		t.Errorf("scan fraction = %v, want 0.001", db.ScanFraction)
	}
}

func TestDBForLongContext(t *testing.T) {
	db := DBFor(ragschema.CaseII(70e9, 1_000_000))
	if db.Levels != 1 || db.ScanFraction != 1 {
		t.Errorf("long-context DB should be flat brute force")
	}
	if db.CodeBytes != 768*2 {
		t.Errorf("long-context codes = %v bytes, want FP16 768-dim", db.CodeBytes)
	}
}

func TestMinRetrievalServers(t *testing.T) {
	p, _ := profilerFor(t, ragschema.CaseI(8e9, 1))
	if got := p.MinRetrievalServers(); got != 16 {
		t.Errorf("hyperscale min servers = %d, want 16", got)
	}
	p2, _ := profilerFor(t, ragschema.CaseII(70e9, 100_000))
	if got := p2.MinRetrievalServers(); got != 1 {
		t.Errorf("long-context min servers = %d, want 1", got)
	}
}

func TestEvalPrefixAndDecode(t *testing.T) {
	prof, pl := profilerFor(t, ragschema.CaseI(8e9, 1))
	pre := prof.Eval(stage(t, pl, pipeline.KindPrefix), 1, 1)
	if !pre.OK || pre.Latency <= 0 || pre.QPS <= 0 {
		t.Fatalf("prefix point = %+v", pre)
	}
	if pre.StepLatency != 0 {
		t.Errorf("prefix has no step latency, got %v", pre.StepLatency)
	}
	dec := prof.Eval(stage(t, pl, pipeline.KindDecode), 1, 64)
	if !dec.OK || dec.StepLatency <= 0 {
		t.Fatalf("decode point = %+v", dec)
	}
	// Full generation = 256 steps.
	if math.Abs(dec.Latency-256*dec.StepLatency) > 1e-9 {
		t.Errorf("decode latency %v != 256 x step %v", dec.Latency, dec.StepLatency)
	}
	// The paper's tuned baseline observes prefix:decode time ratios of
	// roughly 1.2-1.4:1 at serving batch sizes (§7.1); check that our
	// calibration lands in a compatible band at decode batch 128.
	dec128 := prof.Eval(stage(t, pl, pipeline.KindDecode), 1, 128)
	if !dec128.OK {
		t.Fatalf("decode batch 128 infeasible")
	}
	ratio := (1 / pre.QPS) / (1 / dec128.QPS)
	if ratio < 0.8 || ratio > 2.0 {
		t.Errorf("prefix:decode per-request cost ratio = %.2f, want in [0.8, 2.0]", ratio)
	}
}

func TestEvalRetrievalMatchesSystem(t *testing.T) {
	prof, pl := profilerFor(t, ragschema.CaseI(8e9, 1))
	r := prof.Eval(stage(t, pl, pipeline.KindRetrieval), 16, 32)
	if !r.OK {
		t.Fatalf("retrieval point not OK")
	}
	if r.Latency < 0.015 || r.Latency > 0.050 {
		t.Errorf("retrieval batch latency = %v, want tens of ms", r.Latency)
	}
	// 8 servers cannot hold the corpus.
	if bad := prof.Eval(stage(t, pl, pipeline.KindRetrieval), 8, 32); bad.OK {
		t.Errorf("8-server retrieval should be infeasible")
	}
}

func TestEvalEncode(t *testing.T) {
	prof, pl := profilerFor(t, ragschema.CaseII(70e9, 1_000_000))
	enc := prof.Eval(stage(t, pl, pipeline.KindEncode), 1, 1)
	if !enc.OK {
		t.Fatalf("encode point not OK")
	}
	// ~1M tokens on one chip at ~1M tokens/s -> around a second.
	if enc.Latency < 0.3 || enc.Latency > 3.0 {
		t.Errorf("1M-token encode latency = %v s, want ~1s", enc.Latency)
	}
	// Encoder throughput is batch-independent (chunk supply abundant).
	enc4 := prof.Eval(stage(t, pl, pipeline.KindEncode), 1, 4)
	if math.Abs(enc4.QPS-enc.QPS)/enc.QPS > 0.05 {
		t.Errorf("encode QPS changed with request batch: %v vs %v", enc4.QPS, enc.QPS)
	}
	// More chips, more throughput.
	enc8 := prof.Eval(stage(t, pl, pipeline.KindEncode), 8, 1)
	if enc8.QPS < enc.QPS*4 {
		t.Errorf("8-chip encode QPS %v not ~8x 1-chip %v", enc8.QPS, enc.QPS)
	}
}

func TestEvalRerank(t *testing.T) {
	prof, pl := profilerFor(t, ragschema.CaseIV(70e9))
	rr := prof.Eval(stage(t, pl, pipeline.KindRerank), 1, 4)
	if !rr.OK {
		t.Fatalf("rerank point not OK")
	}
	// Reranking 16 x 100-token passages with a 120M encoder is fast
	// (§5.4: negligible).
	if rr.Latency > 0.050 {
		t.Errorf("rerank latency = %v, want < 50ms", rr.Latency)
	}
}

func TestEvalRewriteDecodeSlowerThanRewritePrefix(t *testing.T) {
	// §5.4: the rewriter's autoregressive decode dominates its cost.
	prof, pl := profilerFor(t, ragschema.CaseIV(70e9))
	rp := prof.Eval(stage(t, pl, pipeline.KindRewritePrefix), 1, 4)
	rd := prof.Eval(stage(t, pl, pipeline.KindRewriteDecode), 1, 4)
	if !rp.OK || !rd.OK {
		t.Fatalf("rewrite points not OK: %+v %+v", rp, rd)
	}
	if rd.Latency < 5*rp.Latency {
		t.Errorf("rewrite decode (%v) should dwarf rewrite prefix (%v)", rd.Latency, rp.Latency)
	}
}

func TestEvalInfeasibleAndDegenerate(t *testing.T) {
	prof, pl := profilerFor(t, ragschema.CaseI(405e9, 1))
	// 405B prefix cannot fit on one chip.
	if pt := prof.Eval(stage(t, pl, pipeline.KindPrefix), 1, 1); pt.OK {
		t.Errorf("405B on one chip should be infeasible")
	}
	if pt := prof.Eval(stage(t, pl, pipeline.KindPrefix), 0, 1); pt.OK {
		t.Errorf("zero chips should be infeasible")
	}
	if pt := prof.Eval(stage(t, pl, pipeline.KindPrefix), 8, 0); pt.OK {
		t.Errorf("zero batch should be infeasible")
	}
}

func TestEvalMemoization(t *testing.T) {
	prof, pl := profilerFor(t, ragschema.CaseI(8e9, 1))
	st := stage(t, pl, pipeline.KindPrefix)
	a := prof.Eval(st, 2, 8)
	b := prof.Eval(st, 2, 8)
	if a != b {
		t.Errorf("memoized evaluation differs: %+v vs %+v", a, b)
	}
}

func TestTransferLatencyNegligible(t *testing.T) {
	prof, _ := profilerFor(t, ragschema.CaseI(8e9, 1))
	tt := prof.RetrievalTransferLatency()
	if tt <= 0 || tt > 1e-4 {
		t.Errorf("transfer latency = %v, want positive and < 0.1ms", tt)
	}
}

func TestRetrievalQPSIndependentOfGenModel(t *testing.T) {
	// Retrieval cost depends only on the database and query count, not
	// on which LLM consumes the results.
	p8, pl8 := profilerFor(t, ragschema.CaseI(8e9, 1))
	p70, pl70 := profilerFor(t, ragschema.CaseI(70e9, 1))
	a := p8.Eval(stage(t, pl8, pipeline.KindRetrieval), 16, 64)
	b := p70.Eval(stage(t, pl70, pipeline.KindRetrieval), 16, 64)
	if a != b {
		t.Errorf("retrieval point differs across LLM sizes: %+v vs %+v", a, b)
	}
}

// TestMemoConsistency: the replica-level and candidate caches must be
// pure memoization — identical results with and without them, across
// repeat queries and the in-place filtering merge.go performs on
// Candidates results.
func TestMemoConsistency(t *testing.T) {
	schema := ragschema.CaseIV(8e9)
	pipe, err := pipeline.Build(schema)
	if err != nil {
		t.Fatal(err)
	}
	cached := New(hw.XPUC, hw.EPYCHost, schema)
	cold := New(hw.XPUC, hw.EPYCHost, schema)
	cold.NoMemo = true
	for _, st := range pipe.Stages {
		for _, chips := range []int{4, 16} {
			for _, batch := range []int{1, 8} {
				for _, reps := range []int{1, 2, 4} {
					a := cached.EvalR(st, chips, batch, reps)
					b := cached.EvalR(st, chips, batch, reps) // memo hit
					c := cold.EvalR(st, chips, batch, reps)
					if a != b || a != c {
						t.Fatalf("EvalR(%v,%d,%d,%d) inconsistent: %+v / %+v / %+v",
							st.Kind, chips, batch, reps, a, b, c)
					}
				}
				// Candidates returns the cache's own slice (read-only by
				// contract): repeated calls must alias the same backing
				// store and match a cold profiler's values.
				a := cached.Candidates(st, chips, batch)
				b := cached.Candidates(st, chips, batch)
				if len(a) > 0 && &a[0] != &b[0] {
					t.Fatalf("Candidates(%v,%d,%d) re-allocated on a cache hit", st.Kind, chips, batch)
				}
				c := cold.Candidates(st, chips, batch)
				if len(b) != len(c) {
					t.Fatalf("Candidates(%v,%d,%d) length drifted after caller mutation: %d vs %d",
						st.Kind, chips, batch, len(b), len(c))
				}
				for i := range b {
					if b[i] != c[i] {
						t.Fatalf("Candidates(%v,%d,%d)[%d] inconsistent: %+v vs %+v",
							st.Kind, chips, batch, i, b[i], c[i])
					}
				}
			}
		}
	}
}

// TestShapedStage: per-request prompt lengths reshape prefix-type stages
// only, the profiler prices longer shapes strictly higher, and the zero
// shape is the identity (the constant-shape regression guard).
func TestShapedStage(t *testing.T) {
	prof, pl := profilerFor(t, ragschema.CaseI(8e9, 1))
	pre := stage(t, pl, pipeline.KindPrefix)

	if got := ShapedStage(pre, 0); got != pre {
		t.Errorf("zero shape must be the identity, got %+v", got)
	}
	long := ShapedStage(pre, 4*pre.SeqLen)
	if long.SeqLen != 4*pre.SeqLen || long.Kind != pre.Kind || long.Items != pre.Items {
		t.Fatalf("shaped prefix = %+v", long)
	}
	base := prof.Eval(pre, 8, 4)
	shaped := prof.Eval(long, 8, 4)
	if !base.OK || !shaped.OK {
		t.Fatalf("points infeasible: %+v / %+v", base, shaped)
	}
	if shaped.Latency <= base.Latency {
		t.Errorf("4x prompt latency %v should exceed baseline %v", shaped.Latency, base.Latency)
	}

	// Decode and retrieval are shape-free here: decode slots are held for
	// a request's own output length at the plan's precompiled per-token
	// pace instead of re-profiling the stage.
	dec := stage(t, pl, pipeline.KindDecode)
	if got := ShapedStage(dec, 2048); got != dec {
		t.Errorf("decode must ignore prompt shapes, got %+v", got)
	}
	retr := stage(t, pl, pipeline.KindRetrieval)
	if got := ShapedStage(retr, 9999); got != retr {
		t.Errorf("retrieval must ignore shapes, got %+v", got)
	}
}

// TestEnvelope cross-checks the memoized roofline envelope against a
// direct enumeration of Candidates over every power-of-two batch: the
// envelope must be exactly the pointwise optimum (no operating point beats
// it, some operating point attains each axis), repeated queries must be
// identical, and a memo-less profiler must agree.
func TestEnvelope(t *testing.T) {
	schema := ragschema.CaseIV(8e9)
	pipe, err := pipeline.Build(schema)
	if err != nil {
		t.Fatal(err)
	}
	cached := New(hw.XPUC, hw.EPYCHost, schema)
	cold := New(hw.XPUC, hw.EPYCHost, schema)
	cold.NoMemo = true
	for _, st := range pipe.Stages {
		for _, chips := range []int{4, 16} {
			for _, maxBatch := range []int{1, 16} {
				env := cached.Envelope(st, chips, maxBatch)

				// Brute-force the optimum from the candidate points.
				ref := Envelope{MinLatency: math.Inf(1)}
				for b := 1; b <= maxBatch; b <<= 1 {
					for _, pt := range cached.Candidates(st, chips, b) {
						ref.OK = true
						ref.MinLatency = math.Min(ref.MinLatency, pt.Latency)
						ref.MaxQPS = math.Max(ref.MaxQPS, pt.QPS)
					}
				}
				if env != ref {
					t.Fatalf("Envelope(%v,%d,%d) = %+v, enumeration says %+v",
						st.Kind, chips, maxBatch, env, ref)
				}
				if env.OK && (math.IsInf(env.MinLatency, 0) || env.MaxQPS <= 0) {
					t.Fatalf("Envelope(%v,%d,%d) feasible but degenerate: %+v",
						st.Kind, chips, maxBatch, env)
				}
				if again := cached.Envelope(st, chips, maxBatch); again != env {
					t.Fatalf("Envelope(%v,%d,%d) memo hit diverged: %+v vs %+v",
						st.Kind, chips, maxBatch, again, env)
				}
				if c := cold.Envelope(st, chips, maxBatch); c != env {
					t.Fatalf("Envelope(%v,%d,%d) NoMemo diverged: %+v vs %+v",
						st.Kind, chips, maxBatch, c, env)
				}
			}
		}
	}
}

// TestEnvelopeBoundsCandidates pins the admissibility property the
// branch-and-bound relies on: every feasible operating point at any batch
// within the bound is weakly inside the envelope.
func TestEnvelopeBoundsCandidates(t *testing.T) {
	prof, pl := profilerFor(t, ragschema.CaseI(8e9, 1))
	for _, k := range []pipeline.Kind{pipeline.KindPrefix, pipeline.KindDecode, pipeline.KindRetrieval} {
		st := stage(t, pl, k)
		chips := 16
		env := prof.Envelope(st, chips, 64)
		if !env.OK {
			t.Fatalf("%v envelope infeasible at 16 chips", k)
		}
		for b := 1; b <= 64; b <<= 1 {
			for _, pt := range prof.Candidates(st, chips, b) {
				if pt.Latency < env.MinLatency || pt.QPS > env.MaxQPS {
					t.Fatalf("%v point %+v escapes envelope %+v", k, pt, env)
				}
			}
		}
	}
}
