// Package stageperf implements step 1 of the paper's Algorithm 1: the
// performance of each RAG pipeline stage evaluated individually under
// varying resource allocations and batch sizes, using the calibrated
// analytical models (xpusim for inference stages, retrieval for the vector
// search tier).
//
// A Profiler memoizes evaluations, since the schedule search (steps 2-3)
// revisits the same (stage, resources, batch) points across thousands of
// candidate schedules.
package stageperf

import (
	"fmt"
	"math"
	"sync"

	"rago/internal/hw"
	"rago/internal/pipeline"
	"rago/internal/ragschema"
	"rago/internal/retrieval"
	"rago/internal/xpusim"
)

// Point is the evaluated performance of one stage at one operating point.
type Point struct {
	// Latency is the time the stage takes to serve one batch end to end
	// (for autoregressive stages: the full generation of the batch).
	Latency float64
	// QPS is the stage's steady-state request throughput on these
	// resources at this batch size.
	QPS float64
	// StepLatency is the per-token step time for autoregressive stages
	// (worst-case TPOT contribution); zero otherwise.
	StepLatency float64
	// Replicas is the data-parallel replica count this point assumes:
	// the stage's chips are split into Replicas groups each serving its
	// share of the batch. 1 means all chips cooperate on every batch.
	Replicas int
	// OK is false when the operating point is infeasible (model or KV
	// cache does not fit, shard exceeds host memory, ...).
	OK bool
}

// encodeChunkBatch is the internal chunk-level batch the database encoder
// runs at; context chunks are abundant (thousands per request) so the
// encoder always has full batches available.
const encodeChunkBatch = 64

// Profiler evaluates pipeline stages against a hardware catalog. It is
// safe for concurrent use: the schedule search fans plans out across
// goroutines that share one profiler.
type Profiler struct {
	Sim    xpusim.Simulator
	Host   hw.CPUHost
	Schema ragschema.Schema

	// NoMemo disables every memoization layer so each evaluation runs
	// the underlying analytical models from scratch. It exists for the
	// Optimize benchmark that quantifies what the caches buy; leave it
	// false everywhere else.
	NoMemo bool

	// Shards is the retrieval tier's shard count (0 or 1 means an
	// unsharded index): it scales fanout-restricted scan volume and adds
	// the scatter-gather merge cost. RecallMod, when set, is the
	// calibrated recall@k surface over (nprobe, fanout) — nil keeps
	// Recall at 0 everywhere (the pre-quality-axis behavior). Both are
	// configuration, set before the first evaluation: the memo caches key
	// on stage values only.
	Shards    int
	RecallMod *retrieval.RecallModel

	retrDB retrieval.DB
	mu     sync.Mutex
	cache  map[cacheKey]Point
	rcache map[rcacheKey]Point
	ccache map[cacheKey][]Point
	ecache map[cacheKey]Envelope
}

// cacheKey memoizes on the full stage shape (pipeline.Stage is comparable):
// the optimizer evaluates synthesized stages — e.g. iterative-retrieval
// prefix passes — that share a Kind with a main stage but differ in shape.
type cacheKey struct {
	stage pipeline.Stage
	chips int
	batch int
}

// rcacheKey memoizes resolved replication points: the frontier search and
// the engine's plan compiler revisit identical (stage, chips, batch,
// replicas) tuples across thousands of candidate schedules, and the
// replica arithmetic plus the base-cache round-trip are worth skipping.
type rcacheKey struct {
	stage    pipeline.Stage
	chips    int
	batch    int
	replicas int
}

// New builds a profiler for one workload on one hardware generation.
func New(chip hw.XPU, host hw.CPUHost, schema ragschema.Schema) *Profiler {
	return &Profiler{
		Sim:    xpusim.New(chip),
		Host:   host,
		Schema: schema,
		retrDB: DBFor(schema),
		cache:  make(map[cacheKey]Point),
		rcache: make(map[rcacheKey]Point),
		ccache: make(map[cacheKey][]Point),
		ecache: make(map[cacheKey]Envelope),
	}
}

// DBFor derives the retrieval database description from a schema: PQ-coded
// multi-level trees for large offline corpora (§4), flat FP16 brute-force
// scans for real-time long-context databases (§5.2).
func DBFor(s ragschema.Schema) retrieval.DB {
	if s.ContextTokens > 0 || s.ScanFraction >= 1 {
		chunk := s.ChunkTokens
		if chunk <= 0 {
			chunk = 128
		}
		return retrieval.DB{
			NumVectors:   math.Max(s.DBVectors, 1),
			Dim:          s.VectorDim,
			CodeBytes:    float64(s.VectorDim) * 2,
			Levels:       1,
			ScanFraction: 1,
		}
	}
	db := retrieval.DB{
		NumVectors:   s.DBVectors,
		Dim:          s.VectorDim,
		CodeBytes:    math.Max(float64(s.VectorDim)/8, 1), // PQ: 1 byte per 8 dims
		ScanFraction: s.ScanFraction,
	}
	switch {
	case s.DBVectors >= 1e9:
		db.Levels = 3
		db.Fanout = 4096
	case s.DBVectors >= 1e6:
		db.Levels = 2
		db.Fanout = int(math.Ceil(math.Sqrt(s.DBVectors)))
	default:
		db.Levels = 1
		db.ScanFraction = 1
	}
	return db
}

// DB returns the derived retrieval database description.
func (p *Profiler) DB() retrieval.DB { return p.retrDB }

// MinRetrievalServers returns the smallest server count that holds the
// database in host memory.
func (p *Profiler) MinRetrievalServers() int {
	n := retrieval.MinServers(p.retrDB, p.Host)
	if n < 1 {
		n = 1
	}
	return n
}

// Eval returns the performance of stage st given chips accelerators (or,
// for retrieval, `chips` CPU servers) and the given request batch size,
// with all chips cooperating on every batch (one replica).
func (p *Profiler) Eval(st pipeline.Stage, chips, batch int) Point {
	return p.EvalR(st, chips, batch, 1)
}

// ShapedStage returns st with a per-request prompt length applied:
// promptTokens replaces the sequence length of prefix-type stages; zero
// (and every other stage kind) is the identity. Decode stages reshape
// through ShapedDecodeStage instead — their shape axis is the live KV
// context, not the prompt. Evaluating the returned stage through the
// profiler memoizes per shape for free — the caches key on the full
// comparable Stage value — which is what makes per-batch shape-aware
// costing affordable inside the executors' hot loops.
func ShapedStage(st pipeline.Stage, promptTokens int) pipeline.Stage {
	switch st.Kind {
	case pipeline.KindRewritePrefix, pipeline.KindPrefix:
		if promptTokens > 0 {
			st.SeqLen = promptTokens
		}
	}
	return st
}

// ShapedDecodeStage returns st with a per-request live KV context
// applied: ctxLen replaces the average context of decode-type stages, so
// long prompts price (and pace) their own decode steps instead of riding
// the schema mean. Zero ctxLen — and every non-decode kind — is the
// identity, keeping unshaped requests on the precompiled constant path
// bit for bit. Memoization works exactly as for ShapedStage.
func ShapedDecodeStage(st pipeline.Stage, ctxLen int) pipeline.Stage {
	switch st.Kind {
	case pipeline.KindRewriteDecode, pipeline.KindDecode:
		if ctxLen > 0 {
			st.CtxLen = ctxLen
		}
	}
	return st
}

// EvalR evaluates st with its chips split into `replicas` data-parallel
// groups of chips/replicas each; an incoming batch is split evenly across
// replicas (latency follows the per-replica sub-batch, throughput sums
// across replicas). Retrieval does not replicate — its servers already
// shard the database — so replicas must be 1 there.
func (p *Profiler) EvalR(st pipeline.Stage, chips, batch, replicas int) Point {
	if chips < 1 || batch < 1 || replicas < 1 || chips%replicas != 0 {
		return Point{}
	}
	key := rcacheKey{st, chips, batch, replicas}
	if !p.NoMemo {
		p.mu.Lock()
		pt, ok := p.rcache[key]
		p.mu.Unlock()
		if ok {
			return pt
		}
	}
	pt := p.evalReplicated(st, chips, batch, replicas)
	if !p.NoMemo {
		p.mu.Lock()
		p.rcache[key] = pt
		p.mu.Unlock()
	}
	return pt
}

func (p *Profiler) evalReplicated(st pipeline.Stage, chips, batch, replicas int) Point {
	if st.Kind == pipeline.KindRetrieval {
		if replicas != 1 {
			return Point{}
		}
		return p.evalCached(st, chips, batch)
	}
	group := chips / replicas
	sub := (batch + replicas - 1) / replicas
	base := p.evalCached(st, group, sub)
	if !base.OK {
		return Point{}
	}
	return Point{
		Latency:     base.Latency,
		QPS:         float64(replicas) * base.QPS,
		StepLatency: base.StepLatency,
		Replicas:    replicas,
		OK:          true,
	}
}

// Candidates returns the Pareto-optimal replication choices for st at
// (chips, batch): low-replica points minimize latency, high-replica points
// maximize throughput. At most a handful of points survive. Results are
// memoized per (stage, chips, batch) and the cached slice itself is
// returned — callers must treat it as read-only (the schedule search calls
// this in its innermost loops, where a defensive copy per call was a
// measurable share of all allocation).
func (p *Profiler) Candidates(st pipeline.Stage, chips, batch int) []Point {
	key := cacheKey{st, chips, batch}
	if !p.NoMemo {
		p.mu.Lock()
		cached, ok := p.ccache[key]
		p.mu.Unlock()
		if ok {
			return cached
		}
	}
	out := p.candidates(st, chips, batch)
	if !p.NoMemo {
		p.mu.Lock()
		p.ccache[key] = out
		p.mu.Unlock()
	}
	return out
}

// Envelope is the roofline optimum of one stage over every batching and
// replication option a schedule search may use: no operating point of the
// stage on these resources, at any batch in [1, the queried bound] and any
// replica count, beats MinLatency on latency or MaxQPS on throughput. The
// schedule search's branch-and-bound uses envelopes as admissible bounds —
// optimistic on both axes by construction — to prune whole plans before
// profiling their candidate schedules.
type Envelope struct {
	// MinLatency is the smallest batch service latency of any operating
	// point (best-case TTFT contribution of the stage).
	MinLatency float64
	// MaxQPS is the highest steady-state throughput of any operating
	// point (best-case occupancy contribution, 1/MaxQPS).
	MaxQPS float64
	// OK is false when no operating point is feasible at all, in which
	// case no schedule using this stage at these resources exists.
	OK bool
}

// Envelope computes the stage's envelope over power-of-two batches in
// [1, maxBatch] and every replica candidate, memoized per
// (stage, chips, maxBatch).
func (p *Profiler) Envelope(st pipeline.Stage, chips, maxBatch int) Envelope {
	key := cacheKey{st, chips, maxBatch}
	if !p.NoMemo {
		p.mu.Lock()
		env, ok := p.ecache[key]
		p.mu.Unlock()
		if ok {
			return env
		}
	}
	env := Envelope{MinLatency: math.Inf(1)}
	for b := 1; b <= maxBatch; b <<= 1 {
		for _, pt := range p.Candidates(st, chips, b) {
			env.OK = true
			if pt.Latency < env.MinLatency {
				env.MinLatency = pt.Latency
			}
			if pt.QPS > env.MaxQPS {
				env.MaxQPS = pt.QPS
			}
		}
	}
	if !p.NoMemo {
		p.mu.Lock()
		p.ecache[key] = env
		p.mu.Unlock()
	}
	return env
}

func (p *Profiler) candidates(st pipeline.Stage, chips, batch int) []Point {
	var pts []Point
	for r := 1; r <= chips; r <<= 1 {
		pt := p.EvalR(st, chips, batch, r)
		if pt.OK {
			pts = append(pts, pt)
		}
		if st.Kind == pipeline.KindRetrieval {
			break
		}
	}
	// Pareto prune on (latency down, QPS up), preserving replica order.
	var out []Point
	for i, a := range pts {
		dominated := false
		for j, b := range pts {
			if i == j {
				continue
			}
			if b.Latency <= a.Latency && b.QPS >= a.QPS && (b.Latency < a.Latency || b.QPS > a.QPS) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, a)
		}
	}
	return out
}

func (p *Profiler) evalCached(st pipeline.Stage, chips, batch int) Point {
	if p.NoMemo {
		pt := p.eval(st, chips, batch)
		pt.Replicas = 1
		return pt
	}
	key := cacheKey{st, chips, batch}
	p.mu.Lock()
	pt, ok := p.cache[key]
	p.mu.Unlock()
	if ok {
		return pt
	}
	pt = p.eval(st, chips, batch)
	pt.Replicas = 1
	p.mu.Lock()
	p.cache[key] = pt
	p.mu.Unlock()
	return pt
}

func (p *Profiler) eval(st pipeline.Stage, chips, batch int) Point {
	switch st.Kind {
	case pipeline.KindRetrieval:
		return p.evalRetrieval(st, chips, batch)
	case pipeline.KindEncode:
		return p.evalEncode(st, chips, batch)
	case pipeline.KindRewritePrefix, pipeline.KindPrefix:
		r, err := p.Sim.Prefix(st.Model, st.SeqLen, batch, chips)
		if err != nil {
			return Point{}
		}
		return Point{Latency: r.Latency, QPS: r.Throughput, OK: true}
	case pipeline.KindRerank:
		r, err := p.Sim.Prefix(st.Model, st.SeqLen, batch*st.Items, chips)
		if err != nil {
			return Point{}
		}
		return Point{Latency: r.Latency, QPS: r.Throughput / float64(st.Items), OK: true}
	case pipeline.KindRewriteDecode, pipeline.KindDecode:
		r, err := p.Sim.DecodeStep(st.Model, batch, st.CtxLen, chips)
		if err != nil {
			return Point{}
		}
		lat := float64(st.OutTokens) * r.Latency
		return Point{
			Latency:     lat,
			QPS:         float64(batch) / lat,
			StepLatency: r.Latency,
			OK:          true,
		}
	default:
		return Point{}
	}
}

// evalRetrieval treats chips as server count. The stage's NProbe and
// ShardFanout tune the scan: probe count scales leaf bytes linearly,
// fanout restriction drops the probed cells on unconsulted shards, and a
// sharded deployment pays a per-consulted-shard gather cost on top of the
// parallel scan.
func (p *Profiler) evalRetrieval(st pipeline.Stage, servers, batch int) Point {
	sys := retrieval.System{
		DB:                  p.retrDB.Tuned(st.NProbe, st.ShardFanout, p.Shards),
		Host:                p.Host,
		Servers:             servers,
		QueriesPerRetrieval: p.Schema.QueriesPerRetrieval,
	}
	r, err := sys.Estimate(batch)
	if err != nil {
		return Point{}
	}
	lat := r.Latency
	if p.Shards > 1 {
		fo := st.ShardFanout
		if fo <= 0 || fo > p.Shards {
			fo = p.Shards
		}
		lat += retrieval.GatherLatency(fo)
	}
	return Point{Latency: lat, QPS: float64(batch) / lat, OK: true}
}

// StageRecall returns the calibrated recall@k of a retrieval stage's
// (nprobe, fanout) operating point; 0 for non-retrieval stages or when no
// recall model is attached.
func (p *Profiler) StageRecall(st pipeline.Stage) float64 {
	if st.Kind != pipeline.KindRetrieval {
		return 0
	}
	return p.RecallMod.Recall(st.NProbe, st.ShardFanout)
}

// MaxRecall returns the attached recall surface's best value — the
// admissible upper bound the schedule search prunes recall with; 0 when no
// model is attached.
func (p *Profiler) MaxRecall() float64 { return p.RecallMod.MaxRecall() }

// evalEncode processes batch requests of st.Items chunks each at a fixed
// internal chunk batch; chunk supply is abundant so throughput is the
// chunk-processing rate divided by chunks per request. Unlike the
// latency-critical prefix stages, encoding is a pure throughput stage, so
// the throughput-optimal sharding is chosen (pipeline parallelism keeps
// small encoders efficient across many chips where tensor parallelism
// would shred their matmul shapes).
func (p *Profiler) evalEncode(st pipeline.Stage, chips, batch int) Point {
	cands := p.Sim.PrefixCandidates(st.Model, st.SeqLen, encodeChunkBatch, chips)
	if len(cands) == 0 {
		return Point{}
	}
	r := cands[0]
	for _, c := range cands[1:] {
		if c.Throughput > r.Throughput {
			r = c
		}
	}
	chunksPerSec := r.Throughput // chunk throughput at steady state
	if chunksPerSec <= 0 {
		return Point{}
	}
	totalChunks := float64(batch) * float64(st.Items)
	lat := totalChunks / chunksPerSec
	if lat < r.Latency {
		lat = r.Latency
	}
	return Point{Latency: lat, QPS: float64(batch) / lat, OK: true}
}

// RetrievalTransferLatency is the CPU-to-XPU result shipment per request
// (§4c) — modeled for completeness, negligible in practice.
func (p *Profiler) RetrievalTransferLatency() float64 {
	return retrieval.TransferTime(p.Schema.RetrievedTokens(), 2, retrieval.DefaultPCIeBW)
}

// String summarizes the profiler configuration.
func (p *Profiler) String() string {
	return fmt.Sprintf("stageperf{chip=%s schema=%s}", p.Sim.Chip.Name, p.Schema.Name)
}
