// Package cache models retrieved-context reuse as a first-class serving
// dimension: a token-budget prefix/KV cache keyed by retrieved-chunk ID
// sequences, plus an optional exact-match answer tier that short-circuits
// the whole pipeline.
//
// Real RAG traffic (RAGPulse) has heavy query/document reuse — hot
// documents recur across requests and sessions — yet a cache-less serving
// stack pays full prefill for every retrieved context. The prefix tier
// captures exactly the reusable part: a request whose retrieved-chunk ID
// sequence shares a cached prefix with earlier traffic gets a "prefix
// credit" of ChunkTokens per matched chunk, and the executors prefill only
// the uncached suffix (through the engine's shaped costing). The tier is a
// model of a KV-block cache, not a byte store: entries are chunk-ID prefix
// chains with token costs, evicted LRU under a total token budget, the way
// real serving systems bound KV cache memory.
//
// The same *Cache state machine runs in the live concurrent runtime
// (internal/serve) and the discrete-event simulator (internal/sim) — each
// executor owns its own instance — so measured hit rates cross-check the
// way latencies and throughput already do, and ReplayCredits provides the
// analytic third leg: the trace's intrinsic reuse skew at a configuration.
package cache

import (
	"fmt"
	"sync"
)

// Config sizes the cache tiers. The zero value disables both.
type Config struct {
	// PrefixTokens is the prefix tier's capacity in cached KV tokens
	// (the real resource a KV cache consumes). 0 disables the tier.
	PrefixTokens int
	// ChunkTokens is the prefill-token credit one cached chunk is worth —
	// the workload's retrieved-passage length (ragschema.Schema.ChunkTokens).
	// Required positive when the prefix tier is enabled.
	ChunkTokens int
	// AnswerEntries is the exact-match answer tier's capacity in entries.
	// 0 disables the tier.
	AnswerEntries int
}

func (c Config) validate() error {
	if c.PrefixTokens < 0 || c.ChunkTokens < 0 || c.AnswerEntries < 0 {
		return fmt.Errorf("cache: negative Config fields")
	}
	if c.PrefixTokens > 0 && c.ChunkTokens <= 0 {
		return fmt.Errorf("cache: prefix tier needs a positive ChunkTokens (the per-chunk prefill credit)")
	}
	if c.PrefixTokens > 0 && c.PrefixTokens < c.ChunkTokens {
		return fmt.Errorf("cache: PrefixTokens budget %d below one chunk (%d tokens)", c.PrefixTokens, c.ChunkTokens)
	}
	return nil
}

// Stats is a point-in-time snapshot of the cache counters. Rates are over
// the whole lifetime of the instance.
type Stats struct {
	// Requests counts prefix-tier lookups (one per tagged request);
	// Hits the lookups that matched a non-empty cached prefix.
	Requests int64 `json:"requests"`
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	// HitRate is Hits/Requests (0 when no lookups happened).
	HitRate float64 `json:"hit_rate"`
	// SavedTokens is the total prefill-token credit granted — tokens the
	// executors did not prefill because their KV was cached.
	SavedTokens int64 `json:"saved_tokens"`
	// Evictions counts chunk entries evicted by the token budget;
	// CachedTokens/CachedChunks are the tier's current occupancy.
	Evictions    int64 `json:"evictions"`
	CachedTokens int64 `json:"cached_tokens"`
	CachedChunks int   `json:"cached_chunks"`

	// Answer-tier counters (all zero when the tier is disabled).
	AnswerHits      int64 `json:"answer_hits,omitempty"`
	AnswerMisses    int64 `json:"answer_misses,omitempty"`
	AnswerEvictions int64 `json:"answer_evictions,omitempty"`
	AnswerEntries   int   `json:"answer_entries,omitempty"`
}

// node is one cached chunk-ID prefix (a chain link: depth k means the
// sequence ids[:k] is cached). Nodes form an intrusive LRU list. Answer-tier
// nodes additionally carry the corpus generation they were stored under.
type node struct {
	hash       uint64
	depth      int // chunks in the prefix
	last       int // chunk ID at position depth-1 (weak collision check)
	gen        uint64
	prev, next *node
}

// Cache is a concurrency-safe two-tier reuse cache. All methods are
// nil-safe in the sense conventional for optional serving components: the
// executors guard on the pointer, so a nil *Cache never reaches a method.
type Cache struct {
	cfg Config

	mu sync.Mutex
	// Prefix tier: chunk-ID prefix chains under a token budget.
	entries    map[uint64]*node
	head, tail *node // LRU list: head = most recent
	usedTokens int64

	// Answer tier: exact-match (chunk IDs, shape) entries under a count
	// budget, same intrusive-LRU discipline. generation is the corpus
	// generation stamp: Invalidate bumps it, and an answer stored under an
	// older generation misses (the corpus its answer was derived from no
	// longer exists). Prefix chains are keyed by chunk IDs alone and stay
	// valid across corpus updates that preserve IDs.
	generation      uint64
	answers         map[uint64]*node
	ahead, atail    *node
	hits, misses    int64
	savedTokens     int64
	evictions       int64
	answerHits      int64
	answerMisses    int64
	answerEvictions int64
}

// New builds a cache under cfg. A Config disabling both tiers is rejected:
// a cache that can never hold anything is a configuration error, not a
// degenerate mode (executors model "no cache" as a nil *Cache).
func New(cfg Config) (*Cache, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.PrefixTokens == 0 && cfg.AnswerEntries == 0 {
		return nil, fmt.Errorf("cache: Config disables both tiers (use a nil *Cache for no caching)")
	}
	return &Cache{
		cfg:     cfg,
		entries: make(map[uint64]*node),
		answers: make(map[uint64]*node),
	}, nil
}

// Config returns the configuration the cache was built with.
func (c *Cache) Config() Config { return c.cfg }

// PrefixOn reports whether the prefix tier is enabled. Nil-safe, so
// executors can gate their batch-formation fast path on one call.
func (c *Cache) PrefixOn() bool { return c != nil && c.cfg.PrefixTokens > 0 }

// AnswerOn reports whether the exact-match answer tier is enabled.
func (c *Cache) AnswerOn() bool { return c != nil && c.cfg.AnswerEntries > 0 }

// fnv1a over a chunk-ID sequence prefix, incremental per position.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvMix(h uint64, id int) uint64 {
	v := uint64(id)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// Access is the prefix tier's combined lookup-and-admit: it finds the
// longest cached prefix of ids (touching every matched link), admits the
// chain (so an identical follow-up request hits end to end), and returns
// the prefill-token credit — matched chunks times ChunkTokens, capped so at
// least one uncached token always remains to prefill (the query suffix is
// never cached). Chains longer than the token budget are admitted
// truncated: the links that fit are cached, the over-budget tail is not —
// admitting the whole chain and letting eviction drop the shallow links
// would leave an unmatched suffix that can never hit. baseTokens is the
// request's full prompt length; ids empty, the tier disabled, or
// baseTokens < 2 return 0 without touching any counter.
func (c *Cache) Access(ids []int, baseTokens int) int {
	if c.cfg.PrefixTokens == 0 || len(ids) == 0 || baseTokens < 2 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.missesOrHit(ids)

	matched := 0
	maxDepth := c.cfg.PrefixTokens / c.cfg.ChunkTokens
	h := uint64(fnvOffset)
	for k, id := range ids {
		if k >= maxDepth {
			break // partial-chain admission: deeper links can never fit
		}
		h = fnvMix(h, id)
		if matched == k { // still on the cached prefix
			if n := c.entries[h]; n != nil && n.depth == k+1 && n.last == id {
				matched = k + 1
				c.touch(n)
				continue
			}
		}
		// First miss: admit this link and every deeper one fresh.
		c.insert(h, k+1, id)
	}
	c.evict()

	credit := matched * c.cfg.ChunkTokens
	if max := baseTokens - 1; credit > max {
		credit = max
	}
	c.savedTokens += int64(credit)
	return credit
}

// missesOrHit bumps the request counter; the hit/miss split is resolved by
// the caller's matched count, so peek at the first link here (the chain is
// admitted whole, making "first link cached" equivalent to "credit > 0").
func (c *Cache) missesOrHit(ids []int) {
	h := fnvMix(fnvOffset, ids[0])
	if n := c.entries[h]; n != nil && n.depth == 1 && n.last == ids[0] {
		c.hits++
	} else {
		c.misses++
	}
}

// touch moves n to the LRU head.
func (c *Cache) touch(n *node) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}

func (c *Cache) unlink(n *node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *Cache) pushFront(n *node) {
	n.prev, n.next = nil, c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *Cache) insert(h uint64, depth, last int) {
	if old := c.entries[h]; old != nil {
		// Hash collision or stale chain: replace (the tier is a model,
		// not a correctness-critical store; FNV-64 collisions are noise).
		c.unlink(old)
		c.usedTokens -= int64(c.cfg.ChunkTokens)
	}
	n := &node{hash: h, depth: depth, last: last}
	c.entries[h] = n
	c.pushFront(n)
	c.usedTokens += int64(c.cfg.ChunkTokens)
}

// evict drops LRU entries until the token budget holds.
func (c *Cache) evict() {
	for c.usedTokens > int64(c.cfg.PrefixTokens) && c.tail != nil {
		n := c.tail
		c.unlink(n)
		delete(c.entries, n.hash)
		c.usedTokens -= int64(c.cfg.ChunkTokens)
		c.evictions++
	}
}

// answerKey hashes the exact-match identity of a request: its retrieved
// context plus its sequence shape.
func answerKey(ids []int, promptTok, outTok int) uint64 {
	h := uint64(fnvOffset)
	for _, id := range ids {
		h = fnvMix(h, id)
	}
	h = fnvMix(h, promptTok)
	h = fnvMix(h, outTok)
	return h
}

// AnswerLookup reports whether an identical request (same retrieved-chunk
// sequence and sequence shape) has a cached answer — the semantic tier's
// short-circuit: on true, the executors complete the request immediately,
// skipping retrieval, prefill, and decode entirely. An entry stored before
// the last Invalidate is stale — its answer was derived from a corpus that
// no longer exists — so it misses and is dropped.
func (c *Cache) AnswerLookup(ids []int, promptTok, outTok int) bool {
	if c.cfg.AnswerEntries == 0 || len(ids) == 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	h := answerKey(ids, promptTok, outTok)
	n := c.answers[h]
	if n == nil {
		c.answerMisses++
		return false
	}
	if n.gen != c.generation {
		c.aunlink(n)
		delete(c.answers, h)
		c.answerMisses++
		return false
	}
	c.answerHits++
	if c.ahead != n {
		c.aunlink(n)
		c.apushFront(n)
	}
	return true
}

// Invalidate marks a corpus update (an index rebuild or document refresh):
// the corpus generation advances, so every answer cached before this call
// misses from now on. Prefix chains survive — they cache KV by retrieved-
// chunk identity, which an update that keeps chunk IDs does not stale.
// Stale answer entries are dropped lazily on lookup rather than swept here,
// keeping Invalidate O(1) on the serving path.
func (c *Cache) Invalidate() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.generation++
}

// Generation returns the current corpus generation (bumped by Invalidate).
func (c *Cache) Generation() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.generation
}

// AnswerStore records a completed request's answer for exact-match reuse.
func (c *Cache) AnswerStore(ids []int, promptTok, outTok int) {
	if c.cfg.AnswerEntries == 0 || len(ids) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	h := answerKey(ids, promptTok, outTok)
	if n := c.answers[h]; n != nil {
		n.gen = c.generation // re-derived under the current corpus
		if c.ahead != n {
			c.aunlink(n)
			c.apushFront(n)
		}
		return
	}
	n := &node{hash: h, gen: c.generation}
	c.answers[h] = n
	c.apushFront(n)
	for len(c.answers) > c.cfg.AnswerEntries && c.atail != nil {
		old := c.atail
		c.aunlink(old)
		delete(c.answers, old.hash)
		c.answerEvictions++
	}
}

func (c *Cache) aunlink(n *node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.ahead = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.atail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *Cache) apushFront(n *node) {
	n.prev, n.next = nil, c.ahead
	if c.ahead != nil {
		c.ahead.prev = n
	}
	c.ahead = n
	if c.atail == nil {
		c.atail = n
	}
}

// Stats snapshots the counters. Safe to call concurrently with Access.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{
		Requests:        c.hits + c.misses,
		Hits:            c.hits,
		Misses:          c.misses,
		SavedTokens:     c.savedTokens,
		Evictions:       c.evictions,
		CachedTokens:    c.usedTokens,
		CachedChunks:    len(c.entries),
		AnswerHits:      c.answerHits,
		AnswerMisses:    c.answerMisses,
		AnswerEvictions: c.answerEvictions,
		AnswerEntries:   len(c.answers),
	}
	if s.Requests > 0 {
		s.HitRate = float64(s.Hits) / float64(s.Requests)
	}
	return s
}

// String renders the stats line the serve report prints.
func (s Stats) String() string {
	out := fmt.Sprintf("prefix cache: %d/%d hits (rate %.2f), saved %d prefill tokens, %d evictions, %d chunks (%d tokens) resident",
		s.Hits, s.Requests, s.HitRate, s.SavedTokens, s.Evictions, s.CachedChunks, s.CachedTokens)
	if s.AnswerHits+s.AnswerMisses > 0 {
		out += fmt.Sprintf("; answer cache: %d/%d hits, %d entries",
			s.AnswerHits, s.AnswerHits+s.AnswerMisses, s.AnswerEntries)
	}
	return out
}
