package cache

import "rago/internal/trace"

// ReplayCredits replays a trace through a fresh prefix cache offline, in
// arrival order, and returns the per-request prefill-token credits plus
// the final counters. This is the analytic leg of the cache cross-check:
// it measures the trace's intrinsic reuse skew at a configuration — what
// hit rate and token savings the content stream itself supports — which
// the live runtime's and the simulator's measured rates are validated
// against, and which cache-aware analytical metrics
// (engine.Plan.CachedMetrics) are weighted by.
//
// basePrompt is the prompt length assumed for unshaped requests (the
// schema's PrefixTokens constant); shaped requests use their own.
func ReplayCredits(cfg Config, reqs []trace.Request, basePrompt int) ([]int, Stats, error) {
	c, err := New(cfg)
	if err != nil {
		return nil, Stats{}, err
	}
	credits := make([]int, len(reqs))
	for i, r := range reqs {
		base := r.PromptTokens
		if base <= 0 {
			base = basePrompt
		}
		credits[i] = c.Access(r.ChunkIDs, base)
	}
	return credits, c.Stats(), nil
}
