package cache

import (
	"strings"
	"sync"
	"testing"

	"rago/internal/trace"
)

func mustNew(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},                                    // both tiers disabled
		{PrefixTokens: 100},                   // prefix tier without ChunkTokens
		{PrefixTokens: 50, ChunkTokens: 100},  // budget below one chunk
		{PrefixTokens: -1, ChunkTokens: 100},  // negative
		{AnswerEntries: -3},                   // negative
		{PrefixTokens: 100, ChunkTokens: -10}, // negative
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) accepted an invalid config", cfg)
		}
	}
	if _, err := New(Config{PrefixTokens: 1000, ChunkTokens: 100}); err != nil {
		t.Errorf("prefix-only config rejected: %v", err)
	}
	if _, err := New(Config{AnswerEntries: 8}); err != nil {
		t.Errorf("answer-only config rejected: %v", err)
	}
}

func TestNilSafety(t *testing.T) {
	var c *Cache
	if c.PrefixOn() || c.AnswerOn() {
		t.Error("nil cache reports a tier enabled")
	}
}

func TestAccessAdmitThenHit(t *testing.T) {
	c := mustNew(t, Config{PrefixTokens: 10_000, ChunkTokens: 100})
	base := 512

	// Cold lookup: nothing cached, zero credit, but the chain admits.
	if got := c.Access([]int{3, 7, 9}, base); got != 0 {
		t.Fatalf("cold Access credit = %d, want 0", got)
	}
	// Identical follow-up: full chain cached. Credit = 3 chunks.
	if got := c.Access([]int{3, 7, 9}, base); got != 300 {
		t.Fatalf("warm Access credit = %d, want 300", got)
	}
	// Shared two-chunk prefix, diverging third chunk: partial credit.
	if got := c.Access([]int{3, 7, 11}, base); got != 200 {
		t.Fatalf("prefix Access credit = %d, want 200", got)
	}
	// The divergent chain was admitted too.
	if got := c.Access([]int{3, 7, 11}, base); got != 300 {
		t.Fatalf("readmitted Access credit = %d, want 300", got)
	}
	// Same IDs in a different order share no prefix with {3,...}? They do
	// share ids[0]=3; {7,3,9} starts at 7 — no cached prefix, zero credit.
	if got := c.Access([]int{7, 3, 9}, base); got != 0 {
		t.Fatalf("reordered Access credit = %d, want 0 (prefix keying is order-sensitive)", got)
	}

	st := c.Stats()
	if st.Requests != 5 || st.Hits != 3 || st.Misses != 2 {
		t.Errorf("stats = %d requests, %d hits, %d misses; want 5/3/2", st.Requests, st.Hits, st.Misses)
	}
	if st.SavedTokens != 800 {
		t.Errorf("saved tokens = %d, want 800", st.SavedTokens)
	}
	if st.HitRate != 0.6 {
		t.Errorf("hit rate = %g, want 0.6", st.HitRate)
	}
}

func TestCreditCappedBelowPrompt(t *testing.T) {
	c := mustNew(t, Config{PrefixTokens: 10_000, ChunkTokens: 100})
	ids := []int{1, 2, 3, 4, 5}
	c.Access(ids, 512)
	// Full chain worth 500, but the prompt is only 300 tokens: the credit
	// must leave at least one token to prefill (the query suffix).
	if got := c.Access(ids, 300); got != 299 {
		t.Errorf("capped credit = %d, want 299", got)
	}
	// baseTokens < 2 can never grant a credit and must not touch counters.
	before := c.Stats().Requests
	if got := c.Access(ids, 1); got != 0 {
		t.Errorf("Access(base=1) credit = %d, want 0", got)
	}
	if c.Access(nil, 512) != 0 {
		t.Error("Access(no ids) granted a credit")
	}
	if after := c.Stats().Requests; after != before {
		t.Errorf("guarded Access bumped Requests %d -> %d", before, after)
	}
}

func TestLRUEviction(t *testing.T) {
	// Budget of 3 chunks.
	c := mustNew(t, Config{PrefixTokens: 300, ChunkTokens: 100})
	c.Access([]int{1, 2, 3}, 512) // fills the budget exactly
	st := c.Stats()
	if st.CachedChunks != 3 || st.CachedTokens != 300 || st.Evictions != 0 {
		t.Fatalf("after fill: %d chunks, %d tokens, %d evictions; want 3/300/0", st.CachedChunks, st.CachedTokens, st.Evictions)
	}
	// A new chain displaces the old one, LRU first.
	c.Access([]int{9, 8}, 512)
	st = c.Stats()
	if st.CachedChunks != 3 || st.Evictions != 2 {
		t.Fatalf("after displace: %d chunks, %d evictions; want 3 chunks, 2 evictions", st.CachedChunks, st.Evictions)
	}
	if st.CachedTokens > int64(c.Config().PrefixTokens) {
		t.Fatalf("occupancy %d exceeds budget %d", st.CachedTokens, c.Config().PrefixTokens)
	}
	// {1,2} links were evicted (they were least recent); the new chain and
	// the survivor of the old one determine credits.
	if got := c.Access([]int{9, 8}, 512); got != 200 {
		t.Errorf("fresh chain credit = %d, want 200", got)
	}
}

func TestTouchKeepsHotChainResident(t *testing.T) {
	// Budget of 4 chunks; the hot 2-chunk chain is touched between
	// insertions of cold chains, so evictions should fall on the cold ones.
	c := mustNew(t, Config{PrefixTokens: 400, ChunkTokens: 100})
	hot := []int{1, 2}
	c.Access(hot, 512)
	for i := 0; i < 5; i++ {
		if got := c.Access(hot, 512); got != 200 {
			t.Fatalf("hot chain round %d credit = %d, want 200", i, got)
		}
		c.Access([]int{100 + i, 200 + i}, 512) // cold chain churns the tail
	}
	if got := c.Access(hot, 512); got != 200 {
		t.Errorf("hot chain evicted despite touches: credit %d, want 200", got)
	}
}

func TestAnswerTier(t *testing.T) {
	c := mustNew(t, Config{AnswerEntries: 2})
	ids := []int{4, 5}
	if c.AnswerLookup(ids, 512, 256) {
		t.Fatal("cold answer lookup hit")
	}
	c.AnswerStore(ids, 512, 256)
	if !c.AnswerLookup(ids, 512, 256) {
		t.Fatal("stored answer missed")
	}
	// Shape is part of the identity.
	if c.AnswerLookup(ids, 512, 128) {
		t.Error("answer hit across a different output length")
	}
	// Capacity 2: storing a third entry evicts the LRU one.
	c.AnswerStore([]int{6}, 512, 256)
	c.AnswerLookup(ids, 512, 256) // touch the first entry
	c.AnswerStore([]int{7}, 512, 256)
	st := c.Stats()
	if st.AnswerEntries != 2 || st.AnswerEvictions != 1 {
		t.Fatalf("answer tier: %d entries, %d evictions; want 2/1", st.AnswerEntries, st.AnswerEvictions)
	}
	if !c.AnswerLookup(ids, 512, 256) {
		t.Error("touched answer entry was evicted instead of the LRU one")
	}
	if c.AnswerLookup([]int{6}, 512, 256) {
		t.Error("LRU answer entry survived past capacity")
	}
	// Untagged requests bypass the tier entirely.
	if c.AnswerLookup(nil, 512, 256) {
		t.Error("untagged answer lookup hit")
	}
}

func TestStatsString(t *testing.T) {
	c := mustNew(t, Config{PrefixTokens: 1000, ChunkTokens: 100, AnswerEntries: 4})
	c.Access([]int{1}, 64)
	c.Access([]int{1}, 64)
	c.AnswerStore([]int{1}, 64, 32)
	c.AnswerLookup([]int{1}, 64, 32)
	s := c.Stats().String()
	for _, want := range []string{"prefix cache: 1/2 hits", "answer cache: 1/1 hits"} {
		if !strings.Contains(s, want) {
			t.Errorf("Stats.String() = %q, missing %q", s, want)
		}
	}
}

// TestConcurrentAccess hammers every public method from many goroutines;
// run under -race this is the tier's concurrency-safety proof, and the
// final snapshot must still satisfy the structural invariants.
func TestConcurrentAccess(t *testing.T) {
	c := mustNew(t, Config{PrefixTokens: 2_000, ChunkTokens: 100, AnswerEntries: 8})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				ids := []int{g % 4, i % 7, i % 13}
				c.Access(ids, 512)
				if i%3 == 0 {
					c.AnswerStore(ids, 512, 256)
					c.AnswerLookup(ids, 512, 256)
				}
				if i%50 == 0 {
					c.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Requests != 8*500 {
		t.Errorf("requests = %d, want %d", st.Requests, 8*500)
	}
	if st.Hits+st.Misses != st.Requests {
		t.Errorf("hits %d + misses %d != requests %d", st.Hits, st.Misses, st.Requests)
	}
	if st.CachedTokens > 2_000 {
		t.Errorf("occupancy %d exceeds budget", st.CachedTokens)
	}
	if st.AnswerEntries > 8 {
		t.Errorf("answer entries %d exceed capacity", st.AnswerEntries)
	}
}

func TestReplayCreditsDeterministic(t *testing.T) {
	reqs, err := trace.Poisson(400, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err = trace.WithDocZipf(reqs, 500, 5, 1.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{PrefixTokens: 20_000, ChunkTokens: 100}
	credits, st, err := ReplayCredits(cfg, reqs, 512)
	if err != nil {
		t.Fatal(err)
	}
	if len(credits) != len(reqs) {
		t.Fatalf("credits length %d != %d requests", len(credits), len(reqs))
	}
	if credits[0] != 0 {
		t.Errorf("first request got credit %d from an empty cache", credits[0])
	}
	var sum int64
	for i, cr := range credits {
		if cr < 0 || cr > 511 {
			t.Fatalf("credit[%d] = %d outside [0, 511]", i, cr)
		}
		sum += int64(cr)
	}
	if sum != st.SavedTokens {
		t.Errorf("sum of credits %d != stats saved tokens %d", sum, st.SavedTokens)
	}
	if st.HitRate <= 0.3 {
		t.Errorf("Zipfian trace hit rate %.2f implausibly low", st.HitRate)
	}
	// A second replay of the same trace through a fresh cache is identical.
	credits2, st2, err := ReplayCredits(cfg, reqs, 512)
	if err != nil {
		t.Fatal(err)
	}
	if st2 != st {
		t.Errorf("replay stats drifted: %+v vs %+v", st2, st)
	}
	for i := range credits {
		if credits[i] != credits2[i] {
			t.Fatalf("credit[%d] drifted: %d vs %d", i, credits[i], credits2[i])
		}
	}
}

// Regression: a chain longer than the token budget must be admitted
// truncated. The old behavior admitted all links and let eviction drop the
// shallowest ones, so the surviving deep suffix could never match and the
// hottest long-context chains earned zero credit forever.
func TestPartialChainAdmission(t *testing.T) {
	// Budget of 4 chunks; the hot chain has 6.
	c := mustNew(t, Config{PrefixTokens: 400, ChunkTokens: 100})
	over := []int{1, 2, 3, 4, 5, 6}
	if got := c.Access(over, 2048); got != 0 {
		t.Fatalf("cold over-budget chain credit = %d, want 0", got)
	}
	st := c.Stats()
	if st.CachedChunks != 4 || st.Evictions != 0 {
		t.Fatalf("after truncated admission: %d chunks, %d evictions; want 4 chunks, 0 evictions", st.CachedChunks, st.Evictions)
	}
	// The identical follow-up must earn the truncated prefix's full credit.
	if got := c.Access(over, 2048); got != 400 {
		t.Errorf("over-budget chain repeat credit = %d, want 400", got)
	}
	// A request sharing only the prefix earns the same credit.
	if got := c.Access([]int{1, 2, 3, 4, 9, 10}, 2048); got != 400 {
		t.Errorf("shared-prefix credit = %d, want 400", got)
	}
	if st := c.Stats(); st.CachedTokens > int64(c.Config().PrefixTokens) {
		t.Errorf("occupancy %d exceeds budget %d", st.CachedTokens, c.Config().PrefixTokens)
	}
}

// Regression: a corpus update (Invalidate) must flush answer-tier hits —
// the stored answers were derived from the old corpus — while prefix
// chains, keyed by retrieved-chunk identity, keep their credits.
func TestInvalidateFlushesAnswersKeepsPrefixes(t *testing.T) {
	c := mustNew(t, Config{PrefixTokens: 10_000, ChunkTokens: 100, AnswerEntries: 8})
	ids := []int{1, 2, 3}
	c.Access(ids, 512)
	c.AnswerStore(ids, 512, 256)
	if !c.AnswerLookup(ids, 512, 256) {
		t.Fatal("stored answer missed before invalidation")
	}
	if c.Generation() != 0 {
		t.Fatalf("fresh cache generation = %d, want 0", c.Generation())
	}

	c.Invalidate()

	if c.Generation() != 1 {
		t.Fatalf("generation after Invalidate = %d, want 1", c.Generation())
	}
	if c.AnswerLookup(ids, 512, 256) {
		t.Error("stale answer served after corpus invalidation")
	}
	if st := c.Stats(); st.AnswerEntries != 0 {
		t.Errorf("stale answer entry still resident after missed lookup: %d entries", st.AnswerEntries)
	}
	// Prefix chains survive: same chain still earns full credit.
	if got := c.Access(ids, 512); got != 300 {
		t.Errorf("prefix credit after invalidation = %d, want 300", got)
	}
	// Re-stored answers hit again under the new generation.
	c.AnswerStore(ids, 512, 256)
	if !c.AnswerLookup(ids, 512, 256) {
		t.Error("answer re-stored under the new generation missed")
	}
	// Re-storing an existing entry restamps it.
	c.Invalidate()
	c.AnswerStore(ids, 512, 256) // node exists (stale); store restamps
	if !c.AnswerLookup(ids, 512, 256) {
		t.Error("restamped answer entry missed")
	}
	// Nil-safety of the new methods.
	var nilC *Cache
	nilC.Invalidate()
	if nilC.Generation() != 0 {
		t.Error("nil cache generation != 0")
	}
}
