package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestJSONRoundtrip(t *testing.T) {
	reqs, err := Poisson(100, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	reqs = WithTriggers(reqs, 3, 256, 3)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, "roundtrip", reqs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("got %d requests, want %d", len(got), len(reqs))
	}
	for i := range got {
		if got[i].Arrival != reqs[i].Arrival || got[i].ID != i {
			t.Fatalf("mismatch at %d: %+v vs %+v", i, got[i], reqs[i])
		}
		if len(got[i].Triggers) != len(reqs[i].Triggers) {
			t.Fatalf("triggers lost at %d", i)
		}
		for j := range got[i].Triggers {
			if got[i].Triggers[j] != reqs[i].Triggers[j] {
				t.Fatalf("trigger mismatch at %d/%d", i, j)
			}
		}
	}
}

func TestCSVRoundtrip(t *testing.T) {
	reqs := WithTriggers(Burst(20), 2, 128, 5)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("got %d requests, want %d", len(got), len(reqs))
	}
	for i := range got {
		if got[i].Arrival != 0 || len(got[i].Triggers) != 2 {
			t.Fatalf("row %d corrupted: %+v", i, got[i])
		}
	}
}

func TestReadNormalizes(t *testing.T) {
	// Out-of-order arrivals and sparse IDs must come back sorted, dense.
	in := `{"requests":[{"id":7,"arrival":2.5},{"id":3,"arrival":0.5},{"id":9,"arrival":1.0}]}`
	got, err := ReadJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 1.0, 2.5}
	for i, r := range got {
		if r.ID != i || r.Arrival != want[i] {
			t.Fatalf("normalize failed at %d: %+v", i, r)
		}
	}
	if _, err := ReadJSON(strings.NewReader(`{"requests":[{"arrival":-1}]}`)); err == nil {
		t.Error("negative arrival should error")
	}
	// Externally recorded logs may carry extra metadata per request.
	got, err = ReadJSON(strings.NewReader(`{"requests":[{"arrival":1.0,"output_tokens":128}]}`))
	if err != nil || len(got) != 1 {
		t.Errorf("unknown fields should be ignored, got %v (%v)", got, err)
	}
	if _, err := ReadCSV(strings.NewReader("arrival,triggers\n1.0,2;x\n")); err == nil {
		t.Error("bad trigger should error")
	}
	if _, err := ReadCSV(strings.NewReader("arrival\n1.0\nnope\n")); err == nil {
		t.Error("bad arrival past the header should error")
	}
}

// TestShapeRoundtrip: per-request prompt/output lengths survive both file
// formats exactly, and the two formats agree with each other.
func TestShapeRoundtrip(t *testing.T) {
	reqs, err := Poisson(60, 30, 8)
	if err != nil {
		t.Fatal(err)
	}
	prompt, err := LognormalLengths(512, 0.6, 4096)
	if err != nil {
		t.Fatal(err)
	}
	output, err := LognormalLengths(128, 0.8, 1024)
	if err != nil {
		t.Fatal(err)
	}
	reqs = WithShapes(WithTriggers(reqs, 2, 256, 8), prompt, output, 8)

	var jbuf, cbuf bytes.Buffer
	if err := WriteJSON(&jbuf, "shapes", reqs); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&cbuf, reqs); err != nil {
		t.Fatal(err)
	}
	fromJSON, err := ReadJSON(&jbuf)
	if err != nil {
		t.Fatal(err)
	}
	fromCSV, err := ReadCSV(&cbuf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		for _, got := range [][]Request{fromJSON, fromCSV} {
			if got[i].PromptTokens != reqs[i].PromptTokens || got[i].OutputTokens != reqs[i].OutputTokens {
				t.Fatalf("shape lost at %d: %+v vs %+v", i, got[i], reqs[i])
			}
			if got[i].Arrival != reqs[i].Arrival || len(got[i].Triggers) != 2 {
				t.Fatalf("non-shape fields corrupted at %d: %+v", i, got[i])
			}
		}
	}
}

// TestShapelessBackCompat: traces recorded before the shape fields existed
// (PR-3-era layout) must keep loading, with shapes defaulting to the
// schema constant (0).
func TestShapelessBackCompat(t *testing.T) {
	oldJSON := `{"name":"pr3","requests":[
		{"id":0,"arrival":0.5,"triggers":[10,20]},
		{"id":1,"arrival":1.25}]}`
	oldCSV := "arrival,triggers\n0.5,10;20\n1.25,\n"
	fromJSON, err := ReadJSON(strings.NewReader(oldJSON))
	if err != nil {
		t.Fatal(err)
	}
	fromCSV, err := ReadCSV(strings.NewReader(oldCSV))
	if err != nil {
		t.Fatal(err)
	}
	for _, got := range [][]Request{fromJSON, fromCSV} {
		if len(got) != 2 {
			t.Fatalf("got %d requests, want 2", len(got))
		}
		for i, r := range got {
			if r.Shaped() {
				t.Errorf("shape-less trace produced a shaped request %d: %+v", i, r)
			}
		}
		if len(got[0].Triggers) != 2 {
			t.Errorf("triggers lost from shape-less trace: %+v", got[0])
		}
	}
}

// TestMalformedShapesRejected: negative or garbage shape fields must be
// rejected descriptively, not silently served.
func TestMalformedShapesRejected(t *testing.T) {
	cases := []struct {
		name string
		read func() error
		frag string
	}{
		{"json-negative-prompt", func() error {
			_, err := ReadJSON(strings.NewReader(`{"requests":[{"arrival":1,"prompt_tokens":-4}]}`))
			return err
		}, "prompt_tokens"},
		{"json-negative-output", func() error {
			_, err := ReadJSON(strings.NewReader(`{"requests":[{"arrival":1,"output_tokens":-1}]}`))
			return err
		}, "output_tokens"},
		{"csv-bad-prompt", func() error {
			_, err := ReadCSV(strings.NewReader("arrival,triggers,prompt_tokens,output_tokens\n1.0,,abc,\n"))
			return err
		}, "prompt_tokens"},
		{"csv-bad-output", func() error {
			_, err := ReadCSV(strings.NewReader("1.0,,128,12.5\n"))
			return err
		}, "output_tokens"},
		{"csv-negative-output", func() error {
			_, err := ReadCSV(strings.NewReader("1.0,,128,-2\n"))
			return err
		}, "output_tokens"},
	}
	for _, tc := range cases {
		err := tc.read()
		if err == nil {
			t.Errorf("%s: malformed shape accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%s: error %q should mention %q", tc.name, err, tc.frag)
		}
	}
}

func TestSaveLoad(t *testing.T) {
	dir := t.TempDir()
	reqs, err := Diurnal(200, 30, 0.5, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"t.json", "t.csv"} {
		path := filepath.Join(dir, name)
		if err := Save(path, reqs); err != nil {
			t.Fatal(err)
		}
		got, err := Load(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(reqs) {
			t.Fatalf("%s: got %d requests, want %d", name, len(got), len(reqs))
		}
		for i := range got {
			// CSV stores float64 with full round-trip precision.
			if got[i].Arrival != reqs[i].Arrival {
				t.Fatalf("%s: arrival mismatch at %d", name, i)
			}
		}
	}
	precious := filepath.Join(dir, "t.txt")
	if err := os.WriteFile(precious, []byte("keep me"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Save(precious, reqs); err == nil {
		t.Error("unknown extension should error on save")
	}
	if data, err := os.ReadFile(precious); err != nil || string(data) != "keep me" {
		t.Errorf("failed Save must not touch the existing file, got %q (%v)", data, err)
	}
	if _, err := Load(filepath.Join(dir, "t.txt")); err == nil {
		t.Error("unknown extension should error on load")
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file should error")
	}
}
