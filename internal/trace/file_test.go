package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestJSONRoundtrip(t *testing.T) {
	reqs, err := Poisson(100, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	reqs = WithTriggers(reqs, 3, 256, 3)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, "roundtrip", reqs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("got %d requests, want %d", len(got), len(reqs))
	}
	for i := range got {
		if got[i].Arrival != reqs[i].Arrival || got[i].ID != i {
			t.Fatalf("mismatch at %d: %+v vs %+v", i, got[i], reqs[i])
		}
		if len(got[i].Triggers) != len(reqs[i].Triggers) {
			t.Fatalf("triggers lost at %d", i)
		}
		for j := range got[i].Triggers {
			if got[i].Triggers[j] != reqs[i].Triggers[j] {
				t.Fatalf("trigger mismatch at %d/%d", i, j)
			}
		}
	}
}

func TestCSVRoundtrip(t *testing.T) {
	reqs := WithTriggers(Burst(20), 2, 128, 5)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("got %d requests, want %d", len(got), len(reqs))
	}
	for i := range got {
		if got[i].Arrival != 0 || len(got[i].Triggers) != 2 {
			t.Fatalf("row %d corrupted: %+v", i, got[i])
		}
	}
}

func TestReadNormalizes(t *testing.T) {
	// Out-of-order arrivals and sparse IDs must come back sorted, dense.
	in := `{"requests":[{"id":7,"arrival":2.5},{"id":3,"arrival":0.5},{"id":9,"arrival":1.0}]}`
	got, err := ReadJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 1.0, 2.5}
	for i, r := range got {
		if r.ID != i || r.Arrival != want[i] {
			t.Fatalf("normalize failed at %d: %+v", i, r)
		}
	}
	if _, err := ReadJSON(strings.NewReader(`{"requests":[{"arrival":-1}]}`)); err == nil {
		t.Error("negative arrival should error")
	}
	// Externally recorded logs may carry extra metadata per request.
	got, err = ReadJSON(strings.NewReader(`{"requests":[{"arrival":1.0,"output_tokens":128}]}`))
	if err != nil || len(got) != 1 {
		t.Errorf("unknown fields should be ignored, got %v (%v)", got, err)
	}
	if _, err := ReadCSV(strings.NewReader("arrival,triggers\n1.0,2;x\n")); err == nil {
		t.Error("bad trigger should error")
	}
	if _, err := ReadCSV(strings.NewReader("arrival\n1.0\nnope\n")); err == nil {
		t.Error("bad arrival past the header should error")
	}
}

func TestSaveLoad(t *testing.T) {
	dir := t.TempDir()
	reqs, err := Diurnal(200, 30, 0.5, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"t.json", "t.csv"} {
		path := filepath.Join(dir, name)
		if err := Save(path, reqs); err != nil {
			t.Fatal(err)
		}
		got, err := Load(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(reqs) {
			t.Fatalf("%s: got %d requests, want %d", name, len(got), len(reqs))
		}
		for i := range got {
			// CSV stores float64 with full round-trip precision.
			if got[i].Arrival != reqs[i].Arrival {
				t.Fatalf("%s: arrival mismatch at %d", name, i)
			}
		}
	}
	precious := filepath.Join(dir, "t.txt")
	if err := os.WriteFile(precious, []byte("keep me"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Save(precious, reqs); err == nil {
		t.Error("unknown extension should error on save")
	}
	if data, err := os.ReadFile(precious); err != nil || string(data) != "keep me" {
		t.Errorf("failed Save must not touch the existing file, got %q (%v)", data, err)
	}
	if _, err := Load(filepath.Join(dir, "t.txt")); err == nil {
		t.Error("unknown extension should error on load")
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file should error")
	}
}
