package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Per-request sequence-length sampling. Production RAG traffic (RAGPulse)
// has heavy-tailed per-request prompt and output lengths; these samplers
// decorate a trace with seed-deterministic shapes so the executors can be
// driven with realistic length mixes instead of the schema-wide constants.
//
// A LengthDist is validated at construction: degenerate parameters
// (0-token outputs, an upper clamp below one token, a median outside the
// clamp) are rejected with descriptive errors rather than producing
// unservable requests, and every sample is clamped into [1, Max] so a
// heavy tail can never exceed the model context the caller budgets.

// distKind enumerates the supported length distributions.
type distKind int

const (
	distUnset distKind = iota
	distConstant
	distLognormal
	distEmpirical
)

// LengthBucket is one bin of an empirical length histogram.
type LengthBucket struct {
	// Tokens is the length requests in this bucket have.
	Tokens int
	// Weight is the bucket's relative frequency (any positive scale).
	Weight float64
}

// LengthDist draws per-request token lengths. The zero value is "unset"
// and leaves the corresponding Request field at 0 (schema constant).
// Construct via ConstantLengths, LognormalLengths, or EmpiricalLengths.
type LengthDist struct {
	kind distKind

	value     int     // constant
	mu, sigma float64 // lognormal (of the underlying normal)
	max       int     // upper clamp, tokens

	// Empirical histogram, bucket tokens ascending with cumulative
	// weights normalized to 1.
	tokens []int
	cum    []float64
}

// IsZero reports whether the distribution is unset.
func (d LengthDist) IsZero() bool { return d.kind == distUnset }

// Max returns the distribution's upper clamp in tokens (0 when unset).
func (d LengthDist) Max() int { return d.max }

// ConstantLengths returns a degenerate distribution: every request gets
// exactly n tokens.
func ConstantLengths(n int) (LengthDist, error) {
	if n < 1 {
		return LengthDist{}, fmt.Errorf("trace: constant length %d tokens is unservable (need >= 1)", n)
	}
	return LengthDist{kind: distConstant, value: n, max: n}, nil
}

// LognormalLengths returns a lognormal length distribution with the given
// median (tokens) and log-scale sigma, clamped into [1, max]. Sigma around
// 0.6-1.0 reproduces the heavy tails of real RAG request logs; sigma 0 is
// the constant median.
func LognormalLengths(median, sigma float64, max int) (LengthDist, error) {
	if median < 1 {
		return LengthDist{}, fmt.Errorf("trace: lognormal median %g tokens is unservable (need >= 1)", median)
	}
	if sigma < 0 {
		return LengthDist{}, fmt.Errorf("trace: lognormal sigma must be non-negative, got %g", sigma)
	}
	if max < 1 {
		return LengthDist{}, fmt.Errorf("trace: length clamp %d tokens is unservable (need >= 1; cap it at the model context)", max)
	}
	if float64(max) < median {
		return LengthDist{}, fmt.Errorf("trace: lognormal median %g exceeds the %d-token clamp", median, max)
	}
	return LengthDist{kind: distLognormal, mu: math.Log(median), sigma: sigma, max: max}, nil
}

// EmpiricalLengths returns a histogram distribution over the given buckets
// (RAGPulse-style recorded length histograms), clamped into [1, max].
// Buckets may arrive in any order; weights are normalized internally.
func EmpiricalLengths(buckets []LengthBucket, max int) (LengthDist, error) {
	if len(buckets) == 0 {
		return LengthDist{}, fmt.Errorf("trace: empirical length histogram is empty")
	}
	if max < 1 {
		return LengthDist{}, fmt.Errorf("trace: length clamp %d tokens is unservable (need >= 1; cap it at the model context)", max)
	}
	bs := append([]LengthBucket(nil), buckets...)
	sort.Slice(bs, func(i, j int) bool { return bs[i].Tokens < bs[j].Tokens })
	var total float64
	for _, b := range bs {
		if b.Tokens < 1 {
			return LengthDist{}, fmt.Errorf("trace: empirical bucket at %d tokens is unservable (need >= 1)", b.Tokens)
		}
		if b.Tokens > max {
			return LengthDist{}, fmt.Errorf("trace: empirical bucket at %d tokens exceeds the %d-token clamp", b.Tokens, max)
		}
		if b.Weight <= 0 || math.IsNaN(b.Weight) || math.IsInf(b.Weight, 0) {
			return LengthDist{}, fmt.Errorf("trace: empirical bucket at %d tokens has non-positive weight %g", b.Tokens, b.Weight)
		}
		total += b.Weight
	}
	d := LengthDist{kind: distEmpirical, max: max, tokens: make([]int, len(bs)), cum: make([]float64, len(bs))}
	run := 0.0
	for i, b := range bs {
		run += b.Weight / total
		d.tokens[i] = b.Tokens
		d.cum[i] = run
	}
	d.cum[len(d.cum)-1] = 1 // absorb rounding so the last bucket is reachable
	return d, nil
}

// Sample draws one length. Unset distributions return 0 (schema constant);
// every real draw is clamped into [1, Max].
func (d LengthDist) Sample(rng *rand.Rand) int {
	switch d.kind {
	case distConstant:
		return d.value
	case distLognormal:
		n := int(math.Round(math.Exp(d.mu + d.sigma*rng.NormFloat64())))
		if n < 1 {
			n = 1
		}
		if n > d.max {
			n = d.max
		}
		return n
	case distEmpirical:
		u := rng.Float64()
		i := sort.SearchFloat64s(d.cum, u)
		if i >= len(d.tokens) {
			i = len(d.tokens) - 1
		}
		return d.tokens[i]
	default:
		return 0
	}
}

// WithShapes decorates requests with per-request prompt and output lengths
// drawn from the given distributions, deterministically by seed. An unset
// distribution leaves the corresponding field untouched — 0 (schema
// constant) on synthetic traces, or whatever a recorded trace already
// carries — so one-sided shaping (e.g. redrawing outputs over a trace's
// recorded prompts) composes without destroying data.
func WithShapes(reqs []Request, prompt, output LengthDist, seed int64) []Request {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Request, len(reqs))
	for i, r := range reqs {
		if !prompt.IsZero() {
			r.PromptTokens = prompt.Sample(rng)
		}
		if !output.IsZero() {
			r.OutputTokens = output.Sample(rng)
		}
		out[i] = r
	}
	return out
}
