package trace

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPoisson(t *testing.T) {
	reqs, err := Poisson(1000, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 1000 {
		t.Fatalf("got %d requests", len(reqs))
	}
	// Arrivals strictly increasing, IDs dense.
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Arrival <= reqs[i-1].Arrival {
			t.Fatalf("arrivals not increasing at %d", i)
		}
		if reqs[i].ID != i {
			t.Fatalf("ID %d at position %d", reqs[i].ID, i)
		}
	}
	// Mean inter-arrival ~ 1/rate within 15%.
	mean := reqs[len(reqs)-1].Arrival / float64(len(reqs))
	if mean < 0.017 || mean > 0.023 {
		t.Errorf("mean inter-arrival = %v, want ~0.02", mean)
	}
	if _, err := Poisson(10, 0, 1); err == nil {
		t.Errorf("zero rate should error")
	}
	if _, err := Poisson(-1, 1, 1); err == nil {
		t.Errorf("negative n should error")
	}
}

func TestPoissonDeterministic(t *testing.T) {
	a, _ := Poisson(50, 10, 7)
	b, _ := Poisson(50, 10, 7)
	for i := range a {
		if a[i].Arrival != b[i].Arrival {
			t.Fatalf("non-deterministic at %d", i)
		}
	}
}

func TestBurst(t *testing.T) {
	reqs := Burst(16)
	if len(reqs) != 16 {
		t.Fatalf("got %d", len(reqs))
	}
	for _, r := range reqs {
		if r.Arrival != 0 {
			t.Errorf("burst arrival = %v, want 0", r.Arrival)
		}
	}
}

func TestTriggers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := Triggers(4, 256, rng)
	if len(tr) != 4 {
		t.Fatalf("got %d triggers", len(tr))
	}
	for i, p := range tr {
		if p < 1 || p > 255 {
			t.Errorf("trigger %d out of (0,256)", p)
		}
		if i > 0 && p <= tr[i-1] {
			t.Errorf("triggers not strictly ascending")
		}
	}
	if Triggers(0, 256, rng) != nil {
		t.Errorf("zero triggers should be nil")
	}
	if Triggers(3, 1, rng) != nil {
		t.Errorf("too-short decode should be nil")
	}
	// Requesting more triggers than positions clamps.
	if got := Triggers(100, 5, rng); len(got) != 4 {
		t.Errorf("clamped triggers = %d, want 4", len(got))
	}
}

func TestWithTriggers(t *testing.T) {
	reqs := WithTriggers(Burst(8), 4, 256, 9)
	for _, r := range reqs {
		if len(r.Triggers) != 4 {
			t.Fatalf("request %d has %d triggers", r.ID, len(r.Triggers))
		}
	}
	again := WithTriggers(Burst(8), 4, 256, 9)
	for i := range reqs {
		for j := range reqs[i].Triggers {
			if reqs[i].Triggers[j] != again[i].Triggers[j] {
				t.Fatalf("non-deterministic triggers")
			}
		}
	}
}

// Property: trigger positions are always strictly ascending and in range.
func TestTriggersProperty(t *testing.T) {
	f := func(seed int64, rawN, rawLen uint8) bool {
		n := int(rawN)%8 + 1
		length := int(rawLen)%500 + 2
		rng := rand.New(rand.NewSource(seed))
		tr := Triggers(n, length, rng)
		prev := 0
		for _, p := range tr {
			if p <= prev || p >= length {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
