package trace

import (
	"fmt"
	"math/rand"
	"sort"
)

// Reuse-aware workload decorators. Real RAG traffic (RAGPulse) has heavy
// query/document reuse: hot documents recur across requests, and a
// session's follow-up questions re-retrieve its earlier context. These
// decorators tag requests with the retrieved-chunk IDs that reuse
// structure implies, which is what the prefix/KV cache tier
// (internal/cache) keys on. Both are pure functions of their seed,
// matching the package's determinism contract.

// WithDocZipf tags each request with perRequest distinct retrieved-chunk
// IDs drawn Zipfian from a corpus of `corpus` chunks at the given skew
// (rand.Zipf's s parameter; must exceed 1 — larger is hotter). The drawn
// IDs are sorted ascending, so the hottest (lowest-ID) chunks lead each
// request's prompt: two requests sharing hot documents share a chunk-ID
// *prefix*, the way a popularity-ordered context assembler maximizes KV
// reuse.
func WithDocZipf(reqs []Request, corpus, perRequest int, skew float64, seed int64) ([]Request, error) {
	if err := validateReuse(corpus, perRequest, skew); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, skew, 1, uint64(corpus-1))
	out := make([]Request, len(reqs))
	for i, r := range reqs {
		r.ChunkIDs = drawChunks(zipf, perRequest, corpus)
		out[i] = r
	}
	return out, nil
}

// WithSessions overlays session affinity on the Zipfian popularity model:
// each request joins one of `sessions` sessions, and with probability
// `affinity` reuses its session's previous retrieval context verbatim (a
// follow-up question over the same documents — a full prefix-cache hit by
// construction); otherwise it draws a fresh Zipfian context that becomes
// the session's working set. Requests are processed in slice order, so
// apply this to an arrival-sorted trace.
func WithSessions(reqs []Request, sessions int, affinity float64, corpus, perRequest int, skew float64, seed int64) ([]Request, error) {
	if err := validateReuse(corpus, perRequest, skew); err != nil {
		return nil, err
	}
	if sessions < 1 {
		return nil, fmt.Errorf("trace: need at least 1 session, got %d", sessions)
	}
	if affinity < 0 || affinity > 1 {
		return nil, fmt.Errorf("trace: session affinity must be in [0,1], got %g", affinity)
	}
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, skew, 1, uint64(corpus-1))
	ctx := make([][]int, sessions) // each session's current working set
	out := make([]Request, len(reqs))
	for i, r := range reqs {
		s := rng.Intn(sessions)
		if ctx[s] != nil && rng.Float64() < affinity {
			r.ChunkIDs = append([]int(nil), ctx[s]...)
		} else {
			r.ChunkIDs = drawChunks(zipf, perRequest, corpus)
			ctx[s] = r.ChunkIDs
		}
		out[i] = r
	}
	return out, nil
}

func validateReuse(corpus, perRequest int, skew float64) error {
	if corpus < 2 {
		return fmt.Errorf("trace: need a corpus of at least 2 chunks, got %d", corpus)
	}
	if perRequest < 1 {
		return fmt.Errorf("trace: need at least 1 chunk per request, got %d", perRequest)
	}
	if perRequest > corpus {
		return fmt.Errorf("trace: %d chunks per request exceed the %d-chunk corpus", perRequest, corpus)
	}
	if skew <= 1 {
		return fmt.Errorf("trace: Zipf skew must exceed 1, got %g", skew)
	}
	return nil
}

// drawChunks draws n distinct Zipfian chunk IDs and sorts them ascending
// (hot chunks first in the prompt).
func drawChunks(zipf *rand.Zipf, n, corpus int) []int {
	seen := make(map[int]bool, n)
	out := make([]int, 0, n)
	for len(out) < n {
		id := int(zipf.Uint64())
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}
