package trace

import (
	"testing"
)

func basePoisson(t *testing.T, n int) []Request {
	t.Helper()
	reqs, err := Poisson(n, 25, 42)
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

func TestWithDocZipfTagsEveryRequest(t *testing.T) {
	reqs, err := WithDocZipf(basePoisson(t, 300), 1000, 5, 1.3, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range reqs {
		if !r.Tagged() {
			t.Fatalf("request %d untagged", i)
		}
		if len(r.ChunkIDs) != 5 {
			t.Fatalf("request %d has %d chunks, want 5", i, len(r.ChunkIDs))
		}
		seen := map[int]bool{}
		for j, id := range r.ChunkIDs {
			if id < 0 || id >= 1000 {
				t.Fatalf("request %d chunk %d outside the corpus", i, id)
			}
			if seen[id] {
				t.Fatalf("request %d repeats chunk %d", i, id)
			}
			seen[id] = true
			if j > 0 && r.ChunkIDs[j-1] > id {
				t.Fatalf("request %d chunks not ascending: %v", i, r.ChunkIDs)
			}
		}
	}
}

// TestZipfSkewConcentrates sanity-checks the popularity model: a hotter
// skew concentrates mass on fewer distinct chunks across the trace.
func TestZipfSkewConcentrates(t *testing.T) {
	distinct := func(skew float64) int {
		reqs, err := WithDocZipf(basePoisson(t, 500), 5000, 5, skew, 42)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[int]bool{}
		for _, r := range reqs {
			for _, id := range r.ChunkIDs {
				seen[id] = true
			}
		}
		return len(seen)
	}
	mild, hot := distinct(1.1), distinct(2.5)
	if hot >= mild {
		t.Errorf("skew 2.5 touched %d distinct chunks, skew 1.1 touched %d; hotter should touch fewer", hot, mild)
	}
}

func TestWithSessionsAffinityReplaysContext(t *testing.T) {
	// affinity 1 with a single session: after the first request, every
	// request replays the same context verbatim.
	reqs, err := WithSessions(basePoisson(t, 50), 1, 1.0, 1000, 5, 1.3, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(reqs); i++ {
		if len(reqs[i].ChunkIDs) != len(reqs[0].ChunkIDs) {
			t.Fatalf("request %d context length differs", i)
		}
		for j := range reqs[i].ChunkIDs {
			if reqs[i].ChunkIDs[j] != reqs[0].ChunkIDs[j] {
				t.Fatalf("request %d diverged from the session context: %v vs %v", i, reqs[i].ChunkIDs, reqs[0].ChunkIDs)
			}
		}
	}
	// affinity 0: every request draws fresh (contexts may still coincide by
	// chance on a small corpus, so assert at least some divergence).
	reqs, err = WithSessions(basePoisson(t, 50), 1, 0.0, 100000, 5, 1.05, 43)
	if err != nil {
		t.Fatal(err)
	}
	diverged := false
	for i := 1; i < len(reqs) && !diverged; i++ {
		for j := range reqs[i].ChunkIDs {
			if reqs[i].ChunkIDs[j] != reqs[0].ChunkIDs[j] {
				diverged = true
				break
			}
		}
	}
	if !diverged {
		t.Error("affinity 0 never drew a fresh context")
	}
}

func TestReuseValidation(t *testing.T) {
	reqs := basePoisson(t, 10)
	cases := []struct {
		name string
		err  func() error
	}{
		{"tiny corpus", func() error { _, err := WithDocZipf(reqs, 1, 1, 1.3, 42); return err }},
		{"zero per-request", func() error { _, err := WithDocZipf(reqs, 100, 0, 1.3, 42); return err }},
		{"per-request over corpus", func() error { _, err := WithDocZipf(reqs, 4, 5, 1.3, 42); return err }},
		{"skew at 1", func() error { _, err := WithDocZipf(reqs, 100, 5, 1.0, 42); return err }},
		{"zero sessions", func() error { _, err := WithSessions(reqs, 0, 0.5, 100, 5, 1.3, 42); return err }},
		{"affinity over 1", func() error { _, err := WithSessions(reqs, 4, 1.5, 100, 5, 1.3, 42); return err }},
	}
	for _, tc := range cases {
		if tc.err() == nil {
			t.Errorf("%s: decorator accepted invalid parameters", tc.name)
		}
	}
}

// TestReuseGoldenDeterminism pins the decorators' byte streams the same
// way golden_test.go pins the generators': saved reuse-tagged traces and
// cross-executor hit-rate comparisons assume a seed regenerates the exact
// tag sequence.
func TestReuseGoldenDeterminism(t *testing.T) {
	cases := []struct {
		name string
		gen  func() ([]Request, error)
		want string
	}{
		{"doc-zipf", func() ([]Request, error) {
			return WithDocZipf(basePoisson(t, 200), 2000, 5, 1.4, 42)
		}, "bb6082bf1f22cdb1a0cab69294f339df313b1431cecf3ac9a7689cb454ef6141"},
		{"sessions", func() ([]Request, error) {
			return WithSessions(basePoisson(t, 200), 16, 0.6, 2000, 5, 1.4, 42)
		}, "7fdcc47a462b2c6d7d0f2aef2afb1775d505958b59b200d5a0e77bf02078978b"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reqs, err := tc.gen()
			if err != nil {
				t.Fatal(err)
			}
			got := traceDigest(t, reqs)
			if got != tc.want {
				t.Errorf("%s trace digest drifted:\n got  %s\n want %s\n(seeded decorators must be byte-stable; if the change is intentional, update the golden)",
					tc.name, got, tc.want)
			}
			again, err := tc.gen()
			if err != nil {
				t.Fatal(err)
			}
			if d := traceDigest(t, again); d != got {
				t.Errorf("%s not deterministic across calls: %s vs %s", tc.name, d, got)
			}
		})
	}
}
