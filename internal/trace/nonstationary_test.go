package trace

import (
	"math"
	"testing"
)

// meanGap returns the mean inter-arrival time of a trace.
func meanGap(reqs []Request) float64 {
	if len(reqs) < 2 {
		return 0
	}
	return (reqs[len(reqs)-1].Arrival - reqs[0].Arrival) / float64(len(reqs)-1)
}

func sameTrace(t *testing.T, a, b []Request) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Arrival != b[i].Arrival || a[i].ID != b[i].ID {
			t.Fatalf("non-deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestDiurnal(t *testing.T) {
	const (
		n      = 20000
		base   = 50.0
		amp    = 0.8
		period = 100.0
	)
	reqs, err := Diurnal(n, base, amp, period, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != n {
		t.Fatalf("got %d requests", len(reqs))
	}
	for i := 1; i < n; i++ {
		if reqs[i].Arrival < reqs[i-1].Arrival || reqs[i].ID != i {
			t.Fatalf("arrivals out of order or IDs not dense at %d", i)
		}
	}
	// The first half of each period is the crest, the second the trough;
	// arrival counts there must reflect the modulation.
	crest, trough := 0, 0
	for _, r := range reqs {
		switch phase := math.Mod(r.Arrival, period) / period; {
		case phase < 0.5:
			crest++
		default:
			trough++
		}
	}
	ratio := float64(crest) / float64(trough)
	// Integrated rate over the crest half vs the trough half:
	// (1 + 2*amp/pi) / (1 - 2*amp/pi) ~= 3.1 at amp=0.8.
	want := (1 + 2*amp/math.Pi) / (1 - 2*amp/math.Pi)
	if ratio < 0.8*want || ratio > 1.2*want {
		t.Errorf("crest/trough arrival ratio %.2f, want ~%.2f", ratio, want)
	}

	again, _ := Diurnal(n, base, amp, period, 4)
	sameTrace(t, reqs, again)

	for _, bad := range []func() ([]Request, error){
		func() ([]Request, error) { return Diurnal(-1, base, amp, period, 1) },
		func() ([]Request, error) { return Diurnal(10, 0, amp, period, 1) },
		func() ([]Request, error) { return Diurnal(10, base, -0.1, period, 1) },
		func() ([]Request, error) { return Diurnal(10, base, 1.5, period, 1) },
		func() ([]Request, error) { return Diurnal(10, base, amp, 0, 1) },
	} {
		if _, err := bad(); err == nil {
			t.Error("invalid diurnal parameters should error")
		}
	}
}

func TestMMPP(t *testing.T) {
	const n = 20000
	rates := []float64{5, 100}
	reqs, err := MMPP(n, rates, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != n {
		t.Fatalf("got %d requests", len(reqs))
	}
	// Long-run mean rate is the harmonic of state throughputs weighted by
	// equal sojourn time: total arrivals over total time across states.
	meanRate := (rates[0] + rates[1]) / 2
	if g := meanGap(reqs); g < 0.5/meanRate || g > 2/meanRate {
		t.Errorf("mean gap %.5f implausible for mean rate %.1f", g, meanRate)
	}
	// Burstiness: the squared coefficient of variation of gaps must exceed
	// 1 (Poisson) clearly.
	var sum, sum2 float64
	for i := 1; i < n; i++ {
		g := reqs[i].Arrival - reqs[i-1].Arrival
		sum += g
		sum2 += g * g
	}
	mean := sum / float64(n-1)
	cv2 := (sum2/float64(n-1) - mean*mean) / (mean * mean)
	if cv2 < 1.5 {
		t.Errorf("MMPP gap CV^2 = %.2f, want clearly over-dispersed (> 1.5)", cv2)
	}

	again, _ := MMPP(n, rates, 10, 7)
	sameTrace(t, reqs, again)

	if _, err := MMPP(10, nil, 10, 1); err == nil {
		t.Error("no states should error")
	}
	if _, err := MMPP(10, []float64{5, 0}, 10, 1); err == nil {
		t.Error("zero state rate should error")
	}
	if _, err := MMPP(10, rates, 0, 1); err == nil {
		t.Error("zero sojourn should error")
	}
}

func TestGamma(t *testing.T) {
	const (
		n    = 20000
		rate = 40.0
	)
	for _, shape := range []float64{0.3, 1, 4} {
		reqs, err := Gamma(n, rate, shape, 11)
		if err != nil {
			t.Fatal(err)
		}
		if len(reqs) != n {
			t.Fatalf("got %d requests", len(reqs))
		}
		if g := meanGap(reqs); math.Abs(g-1/rate)/(1/rate) > 0.1 {
			t.Errorf("shape %g: mean gap %.5f, want ~%.5f", shape, g, 1/rate)
		}
		var sum, sum2 float64
		for i := 1; i < n; i++ {
			g := reqs[i].Arrival - reqs[i-1].Arrival
			sum += g
			sum2 += g * g
		}
		mean := sum / float64(n-1)
		cv2 := (sum2/float64(n-1) - mean*mean) / (mean * mean)
		// Gamma gaps have CV^2 = 1/shape.
		if want := 1 / shape; cv2 < 0.7*want || cv2 > 1.3*want {
			t.Errorf("shape %g: gap CV^2 = %.2f, want ~%.2f", shape, cv2, want)
		}
		again, _ := Gamma(n, rate, shape, 11)
		sameTrace(t, reqs, again)
	}

	if _, err := Gamma(10, 0, 1, 1); err == nil {
		t.Error("zero rate should error")
	}
	if _, err := Gamma(10, 1, 0, 1); err == nil {
		t.Error("zero shape should error")
	}
}
